// Command cyclegen lists, summarizes, and exports the standard drive
// cycles and synthesized route profiles.
//
// Usage:
//
//	cyclegen                    # table of all standard cycles
//	cyclegen -cycle US06        # stats for one cycle
//	cyclegen -cycle NEDC -csv nedc.csv   # export speed trace
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"evclimate/internal/drivecycle"
	"evclimate/internal/powertrain"
	"evclimate/internal/telemetry"
)

func main() {
	name := flag.String("cycle", "", "cycle name (empty: list all)")
	csvPath := flag.String("csv", "", "export the 1 Hz profile to this CSV file")
	dt := flag.Float64("dt", 1, "sample period for export (s)")
	pprofAddr := flag.String("pprof", "", "serve pprof and expvar on this address (e.g. localhost:6060)")
	flag.Parse()

	if *pprofAddr != "" {
		dbg, err := telemetry.StartDebugServer(*pprofAddr, nil)
		fatalIf(err)
		defer dbg.Close()
		fmt.Printf("debug server on http://%s\n", dbg.Addr)
	}

	pt, err := powertrain.New(powertrain.NissanLeaf())
	fatalIf(err)

	if *name == "" {
		fmt.Printf("%-9s %7s %8s %8s %8s %6s %9s\n", "cycle", "dur(s)", "dist(km)", "avg km/h", "max km/h", "stops", "Wh/km")
		for _, n := range drivecycle.Names() {
			c, err := drivecycle.ByName(n)
			fatalIf(err)
			p := c.Profile(1)
			s := p.Stats()
			e := pt.Energy(p)
			fmt.Printf("%-9s %7.0f %8.2f %8.1f %8.1f %6d %9.1f\n",
				n, s.Duration, s.DistanceKm, s.AvgSpeedKmh, s.MaxSpeedKmh, s.Stops, e.ConsumptionWhKm)
		}
		return
	}

	c, err := drivecycle.ByName(*name)
	fatalIf(err)
	p := c.Profile(*dt)
	s := p.Stats()
	e := pt.Energy(p)
	fmt.Printf("cycle       %s\n", c.Name)
	fmt.Printf("duration    %.0f s\n", s.Duration)
	fmt.Printf("distance    %.2f km\n", s.DistanceKm)
	fmt.Printf("avg speed   %.1f km/h (max %.1f)\n", s.AvgSpeedKmh, s.MaxSpeedKmh)
	fmt.Printf("stops       %d (idle %.0f %%)\n", s.Stops, 100*s.IdleFraction)
	fmt.Printf("accel       +%.2f / %.2f m/s²\n", s.MaxAccel, s.MaxDecel)
	fmt.Printf("traction    %.1f Wh/km (Nissan Leaf model; regen %.2f kWh, peak %.1f kW)\n",
		e.ConsumptionWhKm, e.RegenKWh, e.PeakPowerW/1000)
	fmt.Printf("est. range  %.0f km on 21.3 kWh usable (no HVAC)\n", pt.RangeKm(p, 21.3, 0))
	fmt.Printf("            %.0f km with a 3 kW HVAC load\n", pt.RangeKm(p, 21.3, 3000))

	if *csvPath != "" {
		fatalIf(export(*csvPath, p, pt))
		fmt.Printf("exported    %s\n", *csvPath)
	}
}

func export(path string, p *drivecycle.Profile, pt *powertrain.Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"time_s", "speed_ms", "accel_ms2", "motor_W"}); err != nil {
		return err
	}
	for _, s := range p.Samples {
		row := []string{
			strconv.FormatFloat(s.Time, 'g', 8, 64),
			strconv.FormatFloat(s.Speed, 'g', 8, 64),
			strconv.FormatFloat(s.Accel, 'g', 8, 64),
			strconv.FormatFloat(pt.PowerAt(s), 'g', 8, 64),
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cyclegen:", err)
		os.Exit(1)
	}
}
