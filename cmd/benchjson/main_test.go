package main

import (
	"runtime"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: evclimate
cpu: AMD EPYC 7B13
BenchmarkSweep16Sequential-8   	     183	   6321207 ns/op	         2.531 scenarios/s	 2152865 B/op	   30920 allocs/op
BenchmarkSweep16Parallel-8     	    1024	   1100000 ns/op	        14.50 scenarios/s
PASS
ok  	evclimate	4.211s
pkg: evclimate/internal/sim
BenchmarkForecast	 4954735	       238.4 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	evclimate/internal/sim	1.902s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "AMD EPYC 7B13" {
		t.Errorf("header = (%q, %q, %q)", rep.Goos, rep.Goarch, rep.CPU)
	}
	if rep.MaxProcs != runtime.GOMAXPROCS(0) || rep.NumCPU != runtime.NumCPU() {
		t.Errorf("snapshot parallelism = (%d, %d), want (%d, %d)",
			rep.MaxProcs, rep.NumCPU, runtime.GOMAXPROCS(0), runtime.NumCPU())
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}

	seq := rep.Benchmarks[0]
	if seq.Name != "BenchmarkSweep16Sequential" || seq.Procs != 8 || seq.Pkg != "evclimate" {
		t.Errorf("bench 0 = %+v", seq)
	}
	if seq.Iterations != 183 {
		t.Errorf("bench 0 iterations = %d, want 183", seq.Iterations)
	}
	for unit, want := range map[string]float64{
		"ns/op": 6321207, "scenarios/s": 2.531, "B/op": 2152865, "allocs/op": 30920,
	} {
		if got := seq.Metrics[unit]; got != want {
			t.Errorf("bench 0 %s = %v, want %v", unit, got, want)
		}
	}

	fc := rep.Benchmarks[2]
	if fc.Name != "BenchmarkForecast" || fc.Procs != 1 || fc.Pkg != "evclimate/internal/sim" {
		t.Errorf("bench 2 = %+v", fc)
	}
	if fc.Metrics["ns/op"] != 238.4 || fc.Metrics["allocs/op"] != 0 {
		t.Errorf("bench 2 metrics = %v", fc.Metrics)
	}
}

func report(name string, ns float64) *Report {
	return &Report{Benchmarks: []Benchmark{
		{Name: name, Procs: 1, Iterations: 10, Metrics: map[string]float64{"ns/op": ns}},
	}}
}

func TestGate(t *testing.T) {
	base := report("BenchmarkMPCSolveStep", 1000)
	cases := []struct {
		name  string
		fresh *Report
		ok    bool
	}{
		{"improvement", report("BenchmarkMPCSolveStep", 500), true},
		{"unchanged", report("BenchmarkMPCSolveStep", 1000), true},
		{"within tolerance", report("BenchmarkMPCSolveStep", 1140), true},
		{"beyond tolerance", report("BenchmarkMPCSolveStep", 1200), false},
		{"missing from fresh", report("BenchmarkOther", 100), false},
	}
	for _, tc := range cases {
		msg, err := Gate(tc.fresh, base, "BenchmarkMPCSolveStep", 0.15)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected gate failure: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: gate passed (%q), want failure", tc.name, msg)
		}
	}
	// Missing from the baseline is also a hard failure (a renamed
	// benchmark must not silently disable the gate).
	if _, err := Gate(report("BenchmarkMPCSolveStep", 100), report("BenchmarkOther", 100),
		"BenchmarkMPCSolveStep", 0.15); err == nil {
		t.Error("missing baseline entry passed the gate")
	}
}

func TestGateRejectsMissingNsOp(t *testing.T) {
	fresh := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkMPCSolveStep", Metrics: map[string]float64{"B/op": 0}},
	}}
	if _, err := Gate(fresh, report("BenchmarkMPCSolveStep", 1000), "BenchmarkMPCSolveStep", 0.15); err == nil {
		t.Error("fresh result without ns/op passed the gate")
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	rep, err := Parse(strings.NewReader("random line\nBenchmarkBroken abc\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Errorf("parsed %d benchmarks from noise, want 0", len(rep.Benchmarks))
	}
}
