package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: evclimate
cpu: AMD EPYC 7B13
BenchmarkSweep16Sequential-8   	     183	   6321207 ns/op	         2.531 scenarios/s	 2152865 B/op	   30920 allocs/op
BenchmarkSweep16Parallel-8     	    1024	   1100000 ns/op	        14.50 scenarios/s
PASS
ok  	evclimate	4.211s
pkg: evclimate/internal/sim
BenchmarkForecast	 4954735	       238.4 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	evclimate/internal/sim	1.902s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "AMD EPYC 7B13" {
		t.Errorf("header = (%q, %q, %q)", rep.Goos, rep.Goarch, rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}

	seq := rep.Benchmarks[0]
	if seq.Name != "BenchmarkSweep16Sequential" || seq.Procs != 8 || seq.Pkg != "evclimate" {
		t.Errorf("bench 0 = %+v", seq)
	}
	if seq.Iterations != 183 {
		t.Errorf("bench 0 iterations = %d, want 183", seq.Iterations)
	}
	for unit, want := range map[string]float64{
		"ns/op": 6321207, "scenarios/s": 2.531, "B/op": 2152865, "allocs/op": 30920,
	} {
		if got := seq.Metrics[unit]; got != want {
			t.Errorf("bench 0 %s = %v, want %v", unit, got, want)
		}
	}

	fc := rep.Benchmarks[2]
	if fc.Name != "BenchmarkForecast" || fc.Procs != 1 || fc.Pkg != "evclimate/internal/sim" {
		t.Errorf("bench 2 = %+v", fc)
	}
	if fc.Metrics["ns/op"] != 238.4 || fc.Metrics["allocs/op"] != 0 {
		t.Errorf("bench 2 metrics = %v", fc.Metrics)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	rep, err := Parse(strings.NewReader("random line\nBenchmarkBroken abc\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Errorf("parsed %d benchmarks from noise, want 0", len(rep.Benchmarks))
	}
}
