// Command benchjson converts `go test -bench` text output into a stable
// JSON snapshot, so benchmark results can be committed and diffed across
// commits by machines instead of eyeballs.
//
// Usage:
//
//	go test -run '^$' -bench 'Sweep16' -benchmem . | benchjson -o BENCH_sweep.json
//
// The parser understands the standard benchmark line format — name with
// -GOMAXPROCS suffix, iteration count, then (value, unit) pairs — and
// keeps custom b.ReportMetric units alongside ns/op, B/op, and
// allocs/op. Header lines (goos, goarch, pkg, cpu) are carried into the
// snapshot; pkg scopes the benchmark names that follow it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Pkg is the import path of the package that declared the benchmark.
	Pkg string `json:"pkg"`
	// Name is the benchmark name without the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is GOMAXPROCS while the benchmark ran (1 when unsuffixed).
	Procs int `json:"procs"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value: ns/op, B/op, allocs/op, and any custom
	// b.ReportMetric units. encoding/json sorts the keys, keeping the
	// snapshot diff-stable.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole snapshot.
type Report struct {
	// Goos, Goarch, and CPU echo the `go test` environment header.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// MaxProcs and NumCPU record the snapshot machine's parallelism:
	// GOMAXPROCS and the core count when the snapshot was taken. A
	// "parallel" benchmark committed from a MaxProcs=1 box measured no
	// parallelism at all — exactly the shape that hid the non-scaling
	// sweep — so the snapshot now carries enough context to catch it.
	MaxProcs int `json:"maxprocs,omitempty"`
	NumCPU   int `json:"numcpu,omitempty"`
	// Benchmarks are the parsed results in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	gate := flag.String("gate", "", "baseline snapshot to gate against: exit 1 when the gated benchmark's ns/op regresses beyond -gate-tol")
	gateBench := flag.String("gate-bench", "BenchmarkMPCSolveStep", "comma-separated benchmark names the -gate check compares")
	gateTol := flag.Float64("gate-tol", 0.15, "allowed fractional ns/op regression for -gate")
	flag.Parse()

	rep, err := Parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench` output in)"))
	}

	if *gate != "" {
		base, err := loadReport(*gate)
		if err != nil {
			fatal(err)
		}
		for _, name := range strings.Split(*gateBench, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			msg, err := Gate(rep, base, name, *gateTol)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintln(os.Stderr, "benchjson:", msg)
		}
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks written to %s\n", len(rep.Benchmarks), *out)
	}
}

// Parse reads `go test -bench` output and collects the report. Non-
// benchmark lines (PASS, ok, test logs) are ignored, so the full test
// output can be piped in unfiltered.
func Parse(r io.Reader) (*Report, error) {
	// benchjson runs in the same pipeline (and on the same machine) as
	// the benchmark process, so its own runtime view records the
	// snapshot environment.
	rep := &Report{MaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if !ok {
				continue
			}
			b.Pkg = pkg
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	return rep, sc.Err()
}

// parseLine parses one result line:
//
//	BenchmarkName-8   	    183	   6321207 ns/op	 2152865 B/op	  2.5 scenarios/s
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Procs: 1, Metrics: make(map[string]float64, (len(f)-2)/2)}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = n
	for i := 2; i < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}

// loadReport reads a committed snapshot back for gating.
func loadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// find returns the first benchmark with the given name.
func (r *Report) find(name string) *Benchmark {
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Name == name {
			return &r.Benchmarks[i]
		}
	}
	return nil
}

// Gate compares the named benchmark's ns/op between a fresh report and a
// committed baseline. It returns an error when the benchmark is missing
// from either report or when the fresh time exceeds baseline·(1+tol) —
// the CI regression gate for the MPC solve path. On success it returns a
// one-line summary of the comparison.
func Gate(fresh, baseline *Report, name string, tol float64) (string, error) {
	fb := fresh.find(name)
	if fb == nil {
		return "", fmt.Errorf("gate: %s missing from fresh results", name)
	}
	bb := baseline.find(name)
	if bb == nil {
		return "", fmt.Errorf("gate: %s missing from baseline", name)
	}
	fNS, ok := fb.Metrics["ns/op"]
	if !ok || fNS <= 0 {
		return "", fmt.Errorf("gate: %s has no ns/op in fresh results", name)
	}
	bNS, ok := bb.Metrics["ns/op"]
	if !ok || bNS <= 0 {
		return "", fmt.Errorf("gate: %s has no ns/op in baseline", name)
	}
	ratio := fNS / bNS
	if ratio > 1+tol {
		return "", fmt.Errorf("gate: %s regressed %.1f%%: %.0f ns/op vs baseline %.0f ns/op (tolerance %.0f%%)",
			name, (ratio-1)*100, fNS, bNS, tol*100)
	}
	return fmt.Sprintf("gate: %s ok: %.0f ns/op vs baseline %.0f ns/op (%+.1f%%, tolerance %.0f%%)",
		name, fNS, bNS, (ratio-1)*100, tol*100), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
