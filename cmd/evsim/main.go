// Command evsim runs one closed-loop co-simulation: a drive cycle, an
// ambient condition, and a climate controller, and reports the metrics the
// paper evaluates (average HVAC power, ΔSoH, SoC statistics, comfort).
//
// Usage:
//
//	evsim -cycle ECE_EUDC -controller mpc -ambient 35
//	evsim -cycle UDDS -controller onoff -ambient 0 -csv trace.csv
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"evclimate/internal/battery"
	"evclimate/internal/cabin"
	"evclimate/internal/control"
	"evclimate/internal/core"
	"evclimate/internal/drivecycle"
	"evclimate/internal/runner"
	"evclimate/internal/sim"
	"evclimate/internal/telemetry"
)

func main() {
	cycleName := flag.String("cycle", "ECE_EUDC", "drive cycle: "+strings.Join(drivecycle.Names(), ", "))
	ctrlName := flag.String("controller", "mpc", "controller: onoff|fuzzy|pid|mpc")
	ambient := flag.Float64("ambient", 35, "ambient temperature (°C)")
	solar := flag.Float64("solar", 400, "solar thermal load (W)")
	target := flag.Float64("target", 24, "cabin target temperature (°C)")
	band := flag.Float64("comfort", 3, "comfort-zone half width (°C)")
	soak := flag.Bool("soak", false, "start with a heat-soaked cabin at ambient temperature")
	csvPath := flag.String("csv", "", "write the full trace to this CSV file")
	traceOut := flag.String("trace", "", "write a JSONL step trace to this file")
	traceTiming := flag.Bool("trace-timing", false, "keep wall-clock latency in the step trace (nondeterministic)")
	metricsOut := flag.String("metrics", "", "write a deterministic Prometheus text metrics dump to this file (wall-clock series excluded; -pprof's /metrics serves them live)")
	manifestOut := flag.String("manifest", "", "write the deterministic run manifest to this file")
	pprofAddr := flag.String("pprof", "", "serve pprof, expvar, and /metrics on this address (e.g. localhost:6060)")
	ckptPath := flag.String("checkpoint", "", "checkpoint file: written every -checkpoint-every steps (and on SIGINT/SIGTERM), resumed with -resume")
	ckptEvery := flag.Int("checkpoint-every", 300, "checkpoint cadence in control steps (needs -checkpoint)")
	resume := flag.Bool("resume", false, "resume the run from -checkpoint (bit-identical to an uninterrupted run)")
	flag.Parse()

	if *resume && *ckptPath == "" {
		fatalIf(fmt.Errorf("-resume needs -checkpoint"))
	}

	cyc, err := drivecycle.ByName(*cycleName)
	fatalIf(err)
	profile := cyc.Profile(1).WithAmbient(*ambient).WithSolar(*solar)

	cfg := sim.DefaultConfig(profile)
	cfg.TargetC = *target
	cfg.ComfortBandC = *band
	cfg.InitialCabinC = *target
	if *soak {
		cfg.UseAmbientStart = true
	}

	hvac, err := cabin.New(cfg.Cabin)
	fatalIf(err)

	var ctrl control.Controller
	switch strings.ToLower(*ctrlName) {
	case "onoff", "on/off":
		ctrl = control.NewOnOff(hvac)
	case "fuzzy":
		ctrl = control.NewFuzzy(hvac)
	case "pid":
		ctrl = control.NewPID(hvac)
	case "mpc", "lifetime", "lifetime-aware", "mpc-economy", "mpc-comfort":
		mcfg := core.DefaultConfig()
		switch strings.ToLower(*ctrlName) {
		case "mpc-economy":
			mcfg.Weights = core.EconomyWeights()
		case "mpc-comfort":
			mcfg.Weights = core.ComfortWeights()
		}
		mpc, err := core.New(mcfg)
		fatalIf(err)
		ctrl = mpc
		cfg.ControlDt = mcfg.Dt
		cfg.ForecastSteps = mcfg.Horizon
	default:
		fatalIf(fmt.Errorf("unknown controller %q (want onoff|fuzzy|pid|mpc|mpc-economy|mpc-comfort)", *ctrlName))
	}

	// Observability wiring: a registry plus (for -trace) a step-trace
	// ring feeding one sink for the run.
	var reg *telemetry.Registry
	var rec *telemetry.StepTrace
	if *traceOut != "" || *metricsOut != "" || *manifestOut != "" || *pprofAddr != "" {
		reg = telemetry.NewRegistry()
		if *traceOut != "" {
			rec = telemetry.NewStepTrace(0)
		}
		cfg.Telemetry = telemetry.NewSink(reg, rec,
			telemetry.L("cycle", *cycleName),
			telemetry.L("controller", strings.ToLower(*ctrlName)))
	}
	if *pprofAddr != "" {
		dbg, err := telemetry.StartDebugServer(*pprofAddr, reg)
		fatalIf(err)
		defer dbg.Close()
		fmt.Printf("debug server on http://%s — /debug/pprof, /debug/vars, /metrics\n", dbg.Addr)
	}

	eng, err := sim.New(cfg)
	fatalIf(err)

	// Durability wiring: a SIGINT/SIGTERM drains the run at the next
	// control step, flushing a final checkpoint (when -checkpoint is
	// set) so the exact step can be resumed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ro := sim.RunOptions{Context: ctx}
	if *ckptPath != "" {
		ro.CheckpointEvery = *ckptEvery
		ro.OnCheckpoint = func(ck *sim.Checkpoint) error {
			return writeCheckpoint(*ckptPath, ck)
		}
		if *resume {
			ck, err := readCheckpoint(*ckptPath)
			fatalIf(err)
			ro.Resume = ck
			fmt.Printf("resuming from %s (step %d, %s)\n", *ckptPath, ck.Step, ck.Controller)
		}
	}
	res, err := eng.RunWith(ctrl, ro)
	if err != nil && ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "evsim: interrupted: %v\n", err)
		if *ckptPath != "" {
			fmt.Fprintf(os.Stderr, "evsim: checkpoint flushed; resume with -checkpoint %s -resume\n", *ckptPath)
		} else {
			fmt.Fprintln(os.Stderr, "evsim: re-run with -checkpoint FILE to make runs resumable")
		}
		os.Exit(3)
	}
	fatalIf(err)
	if *ckptPath != "" {
		// A finished run needs no checkpoint; leaving one behind would
		// invite resuming a completed trajectory.
		os.Remove(*ckptPath)
	}

	st := profile.Stats()
	fmt.Printf("cycle        %s  (%.0f s, %.2f km, max %.0f km/h)\n", *cycleName, st.Duration, st.DistanceKm, st.MaxSpeedKmh)
	fmt.Printf("controller   %s\n", res.Controller)
	fmt.Printf("ambient      %.1f °C, solar %.0f W, target %.1f ± %.1f °C\n", *ambient, *solar, *target, *band)
	fmt.Printf("avg HVAC     %.2f kW   (motor %.2f kW, total %.2f kW)\n", res.AvgHVACW/1000, res.AvgMotorW/1000, res.AvgTotalW/1000)
	fmt.Printf("HVAC energy  %.3f kWh\n", res.HVACEnergyKWh)
	fmt.Printf("SoC          %.2f %% → %.2f %%  (dev %.3f, avg %.2f)\n", 90.0, res.FinalSoC, res.SoCDev, res.SoCAvg)
	fmt.Printf("ΔSoH         %.5f %% per cycle → ≈ %.0f cycles to end of life\n", res.DeltaSoH, battery.LifetimeCycles(res.DeltaSoH))
	fmt.Printf("comfort      %.1f %% of time outside zone, RMS error %.2f °C\n", 100*res.ComfortViolationFrac, res.RMSTrackingErrC)
	if mpc, ok := ctrl.(*core.Controller); ok {
		fmt.Printf("MPC solver   %+v\n", mpc.Stats())
	}

	if *csvPath != "" {
		fatalIf(writeCSV(*csvPath, res))
		fmt.Printf("trace        written to %s\n", *csvPath)
	}

	if *traceOut != "" {
		fatalIf(writeFileWith(*traceOut, func(f *os.File) error {
			return telemetry.WriteJSONL(f, rec.Spans(), *traceTiming)
		}))
		fmt.Printf("step trace   %d spans written to %s\n", len(rec.Spans()), *traceOut)
	}
	if *metricsOut != "" {
		fatalIf(writeFileWith(*metricsOut, func(f *os.File) error {
			return reg.Snapshot(telemetry.DeterministicFilter).WritePrometheus(f)
		}))
		fmt.Printf("metrics      written to %s\n", *metricsOut)
	}
	if *manifestOut != "" {
		// The manifest reuses the sweep engine's scenario fingerprint so a
		// single evsim run and the equivalent sweep job hash identically.
		job := runner.Job{Cycle: *cycleName, Controller: runner.ControllerSpec{Label: res.Controller}, Config: cfg}
		fp := telemetry.FormatFingerprint(job.Fingerprint())
		man := telemetry.NewManifest("evsim")
		man.AddRun(telemetry.RunInfo{
			Label:       "run",
			Fingerprint: fp,
			Jobs: []telemetry.JobInfo{{
				Cycle:       *cycleName,
				Controller:  res.Controller,
				Fingerprint: fp,
			}},
		})
		man.Finalize(telemetry.GitDescribe(""), reg.Snapshot(telemetry.DeterministicFilter))
		fatalIf(man.WriteFile(*manifestOut))
		fmt.Printf("manifest     written to %s\n", *manifestOut)
	}
}

// writeCheckpoint persists a checkpoint atomically (temp file + fsync +
// rename) so an interrupt during the write never corrupts the previous
// checkpoint.
func writeCheckpoint(path string, ck *sim.Checkpoint) error {
	data, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func readCheckpoint(path string) (*sim.Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ck sim.Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	return &ck, nil
}

// writeFileWith creates path and hands it to fn, closing on all paths.
func writeFileWith(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeCSV(path string, res *sim.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"time_s", "cabin_C", "outside_C", "motor_W", "heater_W", "cooler_W", "fan_W", "hvac_W", "total_W", "soc_pct", "supply_C", "coil_C", "recirc", "airflow_kg_s"}); err != nil {
		return err
	}
	tr := res.Trace
	for i := range tr.Time {
		rec := []float64{
			tr.Time[i], tr.CabinC[i], tr.OutsideC[i], tr.MotorW[i],
			tr.HeaterW[i], tr.CoolerW[i], tr.FanW[i], tr.HVACW[i],
			tr.TotalW[i], tr.SoC[i],
			tr.Inputs[i].SupplyTempC, tr.Inputs[i].CoilTempC,
			tr.Inputs[i].Recirc, tr.Inputs[i].AirFlowKgS,
		}
		row := make([]string, len(rec))
		for j, v := range rec {
			row[j] = strconv.FormatFloat(v, 'g', 8, 64)
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "evsim:", err)
		os.Exit(1)
	}
}
