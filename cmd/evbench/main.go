// Command evbench regenerates the paper's evaluation: every figure and
// table of Sec. IV (Fig. 1, Fig. 5, Fig. 6, Fig. 7, Fig. 8, Table I).
//
// Usage:
//
//	evbench                 # run everything (several minutes: ~30 MPC runs)
//	evbench -exp fig7       # run one experiment (fig1|fig5|fig6|fig7|fig8|table1)
//	evbench -ambient 30     # override the hot-day ambient temperature
//	evbench -quick          # truncate profiles to 200 s for a fast smoke run
//	evbench -workers 8      # sweep worker-pool size (default GOMAXPROCS)
//	evbench -exp faults     # fault-injection sweep (opt-in, like ablate)
//	evbench -exp faults -fault-scenarios stuck,noisy   # a subset
//
// Crash-safe sweeps: -journal DIR records every finished job in an
// fsync'd write-ahead log; after a crash or Ctrl-C, the same command
// plus -resume replays the finished jobs and continues the rest
// (bit-identical to an uninterrupted run). -job-timeout bounds each
// job's wall-clock; -retries re-runs crashed or timed-out jobs with
// backoff; -checkpoint-every N checkpoints in-flight jobs every N sim
// steps so resumption continues mid-cycle.
//
// Distributed sweeps: -serve ADDR coordinates the "dist" scenario grid
// over the crash-tolerant fabric (internal/fabric), leasing sharded
// work units to any number of `evbench -join URL` workers on this or
// other machines. Workers that die are reaped and their units
// reassigned; with -journal the coordinator itself survives a crash
// and resumes. The stitched result — trace, metrics, manifest — is
// byte-identical to `evbench -exp dist` run single-process.
//
// All scenario grids execute on the internal/runner worker pool; results
// are deterministic for any worker count. One result cache is shared
// across the whole invocation, so experiments that evaluate the same
// scenario (e.g. Fig. 5 and Fig. 6) simulate it once. With -journal the
// cache also persists to disk beside the journal.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"evclimate/internal/experiments"
	"evclimate/internal/fabric"
	"evclimate/internal/faults"
	"evclimate/internal/runner"
	"evclimate/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entrypoint: it parses args, executes the selected
// experiments, and returns the process exit code — 0 only when every
// selected experiment (and every job inside it) succeeded, 2 for usage
// errors, 3 for an interrupted (resumable) run, 1 otherwise.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("evbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment to run: all|fig1|fig5|fig6|fig7|fig8|table1 (opt-in: ablate|faults|fleet|dist|cold)")
	ambient := fs.Float64("ambient", 35, "hot-day ambient temperature (°C) for figs 5-8")
	solar := fs.Float64("solar", 400, "solar thermal load (W)")
	quick := fs.Bool("quick", false, "truncate profiles to 200 s for a fast smoke run")
	workers := fs.Int("workers", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
	batch := fs.Int("batch", 0, "lockstep-batch lanes for eligible sweep jobs (0 = default 16, negative = scalar only)")
	scenarios := fs.String("fault-scenarios", "",
		"comma-separated fault scenarios for -exp faults (default: all of "+
			strings.Join(faults.BuiltinNames(), ",")+")")
	traceOut := fs.String("trace", "", "write a deterministic JSONL step trace to this file")
	traceSteps := fs.Int("trace-steps", 0, "per-job step-trace ring capacity (0 = default 4096)")
	metricsOut := fs.String("metrics", "", "write a deterministic Prometheus text metrics dump to this file (wall-clock series excluded; -pprof's /metrics serves them live)")
	manifestOut := fs.String("manifest", "", "write the deterministic run manifest to this file")
	pprofAddr := fs.String("pprof", "", "serve pprof, expvar, and /metrics on this address (e.g. localhost:6060)")
	journalDir := fs.String("journal", "", "directory for the crash-safe job journal (one JSONL log per sweep)")
	resume := fs.Bool("resume", false, "resume existing journals in -journal, replaying finished jobs")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job watchdog deadline (0 = none)")
	retries := fs.Int("retries", 0, "retry attempts for crashed or timed-out jobs (total attempts = retries+1)")
	checkpointEvery := fs.Int("checkpoint-every", 0, "checkpoint in-flight jobs every N sim steps (needs -journal)")
	fsyncEvery := fs.Int("fsync-every", 1, "fsync the journal every N records")
	serve := fs.String("serve", "", "coordinate the selected distributable sweep (dist, or -exp cold) over the fabric on this address (e.g. :7070)")
	join := fs.String("join", "", "join a fabric coordinator as a worker (e.g. http://host:7070)")
	unitSize := fs.Int("unit", 0, "jobs per leased fabric work unit (0 = default)")
	leaseTTL := fs.Duration("lease-ttl", 0, "fabric lease heartbeat deadline (0 = default)")
	spillDir := fs.String("spill", "", "spill the coordinator's collected records to segments in this directory (bounds coordinator memory; needs -serve)")
	callTimeout := fs.Duration("call-timeout", 0, "fabric worker per-request deadline (0 = derived from the lease TTL; needs -join)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *checkpointEvery > 0 && *journalDir == "" {
		fmt.Fprintln(stderr, "evbench: -checkpoint-every needs -journal")
		return 2
	}
	if *resume && *journalDir == "" {
		fmt.Fprintln(stderr, "evbench: -resume needs -journal")
		return 2
	}
	if *serve != "" && *join != "" {
		fmt.Fprintln(stderr, "evbench: -serve and -join are mutually exclusive")
		return 2
	}
	if *spillDir != "" && *serve == "" {
		fmt.Fprintln(stderr, "evbench: -spill needs -serve")
		return 2
	}
	if *callTimeout != 0 && *join == "" {
		fmt.Fprintln(stderr, "evbench: -call-timeout needs -join")
		return 2
	}

	cache := runner.NewCache()
	opts := experiments.Options{AmbientC: *ambient, SolarW: *solar, Workers: *workers, BatchSize: *batch, Cache: cache, Ctx: ctx}
	if *quick {
		opts.MaxProfileS = 200
	}
	opts.JobTimeout = *jobTimeout
	if *retries > 0 {
		opts.Retry = runner.RetryPolicy{MaxAttempts: *retries + 1}
	}
	if *journalDir != "" {
		opts.Journal = &runner.JournalConfig{
			Dir:             *journalDir,
			Resume:          *resume,
			FsyncEvery:      *fsyncEvery,
			CheckpointEvery: *checkpointEvery,
		}
	}

	// A joining worker is a pure executor: it pulls leased units, runs
	// them through the local pool, and streams records back. All
	// artifacts (trace, metrics, manifest, journal) live with the
	// coordinator, so the worker path skips the wiring below entirely.
	if *join != "" {
		return joinFabric(ctx, *join, *callTimeout, cache, opts, stdout, stderr)
	}

	// Observability wiring: one registry and trace log shared by every
	// sweep of the invocation. The cache is disabled when tracing or
	// collecting metrics — a cache hit skips the simulation, which would
	// make the emitted series depend on job duplication.
	if *metricsOut != "" || *manifestOut != "" || *pprofAddr != "" || *traceOut != "" {
		opts.Telemetry = telemetry.NewRegistry()
		opts.Cache = nil
		cache = nil
	}
	if *traceOut != "" {
		opts.TraceLog = &telemetry.TraceLog{}
		opts.TraceSteps = *traceSteps
	}
	if *manifestOut != "" {
		opts.Manifest = telemetry.NewManifest("evbench")
	}
	if *pprofAddr != "" {
		dbg, err := telemetry.StartDebugServer(*pprofAddr, opts.Telemetry)
		if err != nil {
			fmt.Fprintf(stderr, "evbench: pprof listener: %v\n", err)
			return 1
		}
		defer dbg.Close()
		fmt.Fprintf(stdout, "[debug server on http://%s — /debug/pprof, /debug/vars, /metrics]\n\n", dbg.Addr)
	}

	// The disk cache persists beside the journal, keyed by scenario
	// fingerprint — any spec or code change fingerprints differently, so
	// stale entries can never hit.
	cachePath := ""
	if cache != nil && *journalDir != "" {
		cachePath = filepath.Join(*journalDir, "cache.json")
		if *resume {
			if err := cache.LoadFile(cachePath); err != nil {
				fmt.Fprintf(stderr, "evbench: cache load: %v (starting cold)\n", err)
			}
		}
	}

	// Experiment failures are aggregated, not fatal: every selected
	// experiment gets to run (and journal its progress) before the
	// process reports the combined outcome.
	var failures []string
	run := func(name string, fn func() error) {
		if *serve != "" {
			return // serving the fabric replaces the experiment loop
		}
		if *exp != "all" && *exp != name {
			return
		}
		if ctx.Err() != nil {
			return // draining: don't start new experiments
		}
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(stderr, "evbench: %s: %v\n", name, err)
			failures = append(failures, name)
			return
		}
		fmt.Fprintf(stdout, "[%s completed in %s]\n\n", name, time.Since(start).Truncate(time.Millisecond))
	}

	run("fig1", func() error {
		rows, err := experiments.Fig1(experiments.Fig1Config{})
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.RenderFig1(rows))
		return nil
	})

	run("fig5", func() error {
		traces, err := experiments.Fig5(opts)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.RenderFig5(traces))
		return nil
	})

	run("fig6", func() error {
		pts, err := experiments.Fig6(opts)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.RenderFig6(pts))
		return nil
	})

	if (*exp == "all" || *exp == "fig7" || *exp == "fig8") && *serve == "" && ctx.Err() == nil {
		start := time.Now()
		cycles, err := experiments.RunCycles(opts)
		if err != nil {
			fmt.Fprintf(stderr, "evbench: cycles: %v\n", err)
			failures = append(failures, "fig7/fig8")
		} else {
			if *exp != "fig8" {
				fmt.Fprint(stdout, experiments.RenderFig7(experiments.Fig7(cycles)))
				fmt.Fprintln(stdout)
			}
			if *exp != "fig7" {
				fmt.Fprint(stdout, experiments.RenderFig8(experiments.Fig8(cycles)))
			}
			// Driving-range view of the same runs (the paper's second
			// objective, reported via [12]'s estimation approach).
			rows, err := experiments.RangeComparison(cycles, 21.3)
			if err != nil {
				fmt.Fprintf(stderr, "evbench: range: %v\n", err)
				failures = append(failures, "range")
			} else {
				fmt.Fprintln(stdout)
				fmt.Fprint(stdout, experiments.RenderRange(rows))
			}
			fmt.Fprintf(stdout, "[fig7/fig8 completed in %s]\n\n", time.Since(start).Truncate(time.Millisecond))
		}
	}

	run("table1", func() error {
		rows, err := experiments.Table1(opts, nil)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.RenderTable1(rows))
		return nil
	})

	// Ablations are opt-in (not part of "all"): four sweeps of full MPC
	// runs take several extra minutes.
	runExplicit := func(name string, fn func() error) {
		if *exp != name {
			return
		}
		run(name, fn)
	}
	runExplicit("ablate", func() error {
		for _, a := range []struct {
			title string
			fn    func() ([]experiments.AblationRow, error)
		}{
			{"MPC horizon length", func() ([]experiments.AblationRow, error) { return experiments.AblateHorizon(opts, nil) }},
			{"SoC-deviation weight w2", func() ([]experiments.AblationRow, error) { return experiments.AblateSoCDevWeight(opts, nil) }},
			{"SQP iteration budget", func() ([]experiments.AblationRow, error) { return experiments.AblateSQPBudget(opts, nil) }},
			{"control period", func() ([]experiments.AblationRow, error) { return experiments.AblateControlPeriod(opts, nil) }},
		} {
			rows, err := a.fn()
			if err != nil {
				return err
			}
			fmt.Fprint(stdout, experiments.RenderAblation(a.title, rows))
			fmt.Fprintln(stdout)
		}
		return nil
	})

	runExplicit("faults", func() error {
		var names []string
		if *scenarios != "" {
			names = strings.Split(*scenarios, ",")
		}
		rows, err := experiments.FaultSweep(opts, names)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.RenderFaultSweep(rows))
		return nil
	})

	// The cold-climate integrated thermal sweep: soaked pack, heat-pump
	// HVAC, co-scheduling MPC vs the cabin-only controllers.
	runExplicit("cold", func() error {
		sw, err := experiments.RunCold(opts)
		if err != nil {
			return err
		}
		rows, err := experiments.ColdRows(sw)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.RenderCold(rows))
		return sweepFailures(sw)
	})

	// The single-process form of the distributable sweep — the baseline
	// the fabric's output is byte-compared against (and the overhead
	// reference for EXPERIMENTS.md).
	runExplicit("dist", func() error {
		sw, err := experiments.RunDist(opts)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.RenderDist(sw))
		return sweepFailures(sw)
	})

	runExplicit("fleet", func() error {
		summary, err := experiments.RunFleet(experiments.FleetConfig{
			Trips: 10, Workers: *workers, Ctx: ctx,
			Journal: opts.Journal, JobTimeout: opts.JobTimeout, Retry: opts.Retry,
		})
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.RenderFleet(summary))
		return nil
	})

	if !strings.Contains("all fig1 fig5 fig6 fig7 fig8 table1 ablate fleet faults dist cold", *exp) {
		fmt.Fprintf(stderr, "evbench: unknown experiment %q\n", *exp)
		return 2
	}

	if *serve != "" && ctx.Err() == nil {
		// -serve coordinates the selected distributable sweep; "dist" is
		// the default workload, -exp cold serves the cold-climate grid.
		name := "dist"
		if *exp == "cold" {
			name = "cold"
		}
		start := time.Now()
		if err := serveFabric(ctx, name, *serve, *unitSize, *leaseTTL, *spillDir, cache, opts, stdout); err != nil && ctx.Err() == nil {
			fmt.Fprintf(stderr, "evbench: %s: %v\n", name, err)
			failures = append(failures, name)
		} else if err == nil {
			fmt.Fprintf(stdout, "[%s completed in %s]\n\n", name, time.Since(start).Truncate(time.Millisecond))
		}
	}

	if cache != nil {
		if hits, misses, entries := cache.Stats(); hits > 0 {
			fmt.Fprintf(stdout, "[sweep cache: %d hits, %d misses, %d scenarios — %s of simulation re-use]\n",
				hits, misses, entries, cache.Saved().Truncate(time.Millisecond))
		}
	}
	if cachePath != "" {
		if err := cache.SaveFile(cachePath); err != nil {
			fmt.Fprintf(stderr, "evbench: cache save: %v\n", err)
		}
	}

	// The observability artifacts are written even on failure or drain —
	// a partial manifest with resume lineage is exactly what a post-
	// mortem needs.
	code := 0
	if *traceOut != "" {
		if err := writeFileWith(*traceOut, func(f *os.File) error {
			return opts.TraceLog.WriteJSONL(f, false)
		}); err != nil {
			fmt.Fprintf(stderr, "evbench: trace: %v\n", err)
			code = 1
		} else {
			fmt.Fprintf(stdout, "[step trace: %d spans written to %s]\n", opts.TraceLog.Len(), *traceOut)
		}
	}
	if *metricsOut != "" {
		// The file dump is the deterministic subset — byte-identical at
		// any worker count. Wall-clock series stay on the live /metrics
		// endpoint and in JobResult.Elapsed.
		if err := writeFileWith(*metricsOut, func(f *os.File) error {
			return opts.Telemetry.Snapshot(telemetry.DeterministicFilter).WritePrometheus(f)
		}); err != nil {
			fmt.Fprintf(stderr, "evbench: metrics: %v\n", err)
			code = 1
		} else {
			fmt.Fprintf(stdout, "[metrics written to %s]\n", *metricsOut)
		}
	}
	if *manifestOut != "" {
		opts.Manifest.Finalize(telemetry.GitDescribe(""), opts.Telemetry.Snapshot(telemetry.DeterministicFilter))
		if err := opts.Manifest.WriteFile(*manifestOut); err != nil {
			fmt.Fprintf(stderr, "evbench: manifest: %v\n", err)
			code = 1
		} else {
			fmt.Fprintf(stdout, "[run manifest written to %s]\n", *manifestOut)
		}
	}

	if ctx.Err() != nil {
		fmt.Fprintln(stderr, "evbench: interrupted; journal and checkpoints flushed")
		if *journalDir != "" && *resume {
			fmt.Fprintln(stderr, "evbench: re-run the same command to continue")
		} else if *journalDir != "" {
			fmt.Fprintf(stderr, "evbench: resume with: evbench %s -resume\n", strings.Join(args, " "))
		} else {
			fmt.Fprintln(stderr, "evbench: re-run with -journal DIR to make sweeps resumable")
		}
		return 3
	}
	if len(failures) > 0 {
		fmt.Fprintf(stderr, "evbench: %d experiment(s) failed: %s\n", len(failures), strings.Join(failures, ", "))
		return 1
	}
	return code
}

// serveFabric coordinates a named distributable sweep over the fabric:
// shard, lease to joining workers, journal completions, and stitch the
// byte-identical sweep once every unit lands. Shares the caller's
// observability and journal wiring, so -trace/-metrics/-manifest/
// -journal/-resume mean the same thing they do single-process. Workers
// rebuild the spec by name from the shared FabricSpecs registry.
func serveFabric(ctx context.Context, name, addr string, unitSize int, leaseTTL time.Duration, spillDir string, cache *runner.Cache, opts experiments.Options, stdout io.Writer) error {
	var params map[string]string
	var render func(*runner.Sweep) (string, error)
	switch name {
	case "cold":
		params = experiments.ColdParams(opts)
		render = func(sw *runner.Sweep) (string, error) {
			rows, err := experiments.ColdRows(sw)
			if err != nil {
				return "", err
			}
			return experiments.RenderCold(rows), nil
		}
	default:
		params = experiments.DistParams(opts)
		render = func(sw *runner.Sweep) (string, error) {
			return experiments.RenderDist(sw), nil
		}
	}
	spec, err := experiments.FabricSpecs().Build(name, params)
	if err != nil {
		return err
	}
	var spill *fabric.SpillConfig
	if spillDir != "" {
		spill = &fabric.SpillConfig{Dir: spillDir}
	}
	coord, err := fabric.NewCoordinator(fabric.CoordinatorConfig{
		Spec:       spec,
		SpecName:   name,
		Params:     params,
		Label:      name,
		UnitSize:   unitSize,
		LeaseTTL:   leaseTTL,
		Spill:      spill,
		Journal:    opts.Journal,
		Telemetry:  opts.Telemetry,
		TraceLog:   opts.TraceLog,
		TraceSteps: opts.TraceSteps,
		Manifest:   opts.Manifest,
		Cache:      cache,
	})
	if err != nil {
		return err
	}
	defer coord.Close()
	if err := coord.Serve(addr); err != nil {
		return err
	}
	p := coord.Snapshot()
	fmt.Fprintf(stdout, "[coordinating %d jobs in %d units on %s — workers join with: evbench -join http://%s]\n",
		p.Jobs, p.Units, coord.Addr, coord.Addr)
	if n := coord.Resumed(); n > 0 {
		fmt.Fprintf(stdout, "[resumed: %d job(s) replayed from the journal]\n", n)
	}
	if err := coord.Wait(ctx); err != nil {
		return err // interrupted: journal is flushed, -resume continues
	}
	sw, err := coord.Stitch()
	if err != nil {
		return err
	}
	// Let every worker hear the Done reply before the listener goes away,
	// so they all exit promptly instead of retrying a dead port.
	coord.Drain(5 * time.Second)
	out, err := render(sw)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, out)
	return sweepFailures(sw)
}

// joinFabric runs the worker side of the fabric until the coordinator
// reports the sweep done, returning an evbench exit code.
func joinFabric(ctx context.Context, url string, callTimeout time.Duration, cache *runner.Cache, opts experiments.Options, stdout, stderr io.Writer) int {
	w := fabric.NewWorker(fabric.WorkerConfig{
		URL:         url,
		Specs:       experiments.FabricSpecs(),
		Workers:     opts.Workers,
		JobTimeout:  opts.JobTimeout,
		Retry:       opts.Retry,
		CallTimeout: callTimeout,
		Cache:       cache,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, "evbench: worker: "+format+"\n", args...)
		},
	})
	done, err := w.Run(ctx)
	switch {
	case err != nil && ctx.Err() != nil:
		fmt.Fprintln(stderr, "evbench: worker interrupted; the coordinator reclaims its lease")
		return 3
	case err != nil:
		fmt.Fprintf(stderr, "evbench: worker: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "[worker done: %d job(s) completed here]\n", done)
	return 0
}

// sweepFailures folds a stitched sweep's per-job errors into one error.
func sweepFailures(sw *runner.Sweep) error {
	failed := 0
	for i := range sw.Jobs {
		if sw.Jobs[i].Err != nil {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d jobs failed", failed, len(sw.Jobs))
	}
	return nil
}

// writeFileWith creates path and hands it to fn, closing on all paths.
func writeFileWith(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
