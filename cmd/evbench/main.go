// Command evbench regenerates the paper's evaluation: every figure and
// table of Sec. IV (Fig. 1, Fig. 5, Fig. 6, Fig. 7, Fig. 8, Table I).
//
// Usage:
//
//	evbench                 # run everything (several minutes: ~30 MPC runs)
//	evbench -exp fig7       # run one experiment (fig1|fig5|fig6|fig7|fig8|table1)
//	evbench -ambient 30     # override the hot-day ambient temperature
//	evbench -quick          # truncate profiles to 200 s for a fast smoke run
//	evbench -workers 8      # sweep worker-pool size (default GOMAXPROCS)
//	evbench -exp faults     # fault-injection sweep (opt-in, like ablate)
//	evbench -exp faults -fault-scenarios stuck,noisy   # a subset
//
// All scenario grids execute on the internal/runner worker pool; results
// are deterministic for any worker count. One result cache is shared
// across the whole invocation, so experiments that evaluate the same
// scenario (e.g. Fig. 5 and Fig. 6) simulate it once.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"evclimate/internal/experiments"
	"evclimate/internal/faults"
	"evclimate/internal/runner"
	"evclimate/internal/telemetry"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all|fig1|fig5|fig6|fig7|fig8|table1")
	ambient := flag.Float64("ambient", 35, "hot-day ambient temperature (°C) for figs 5-8")
	solar := flag.Float64("solar", 400, "solar thermal load (W)")
	quick := flag.Bool("quick", false, "truncate profiles to 200 s for a fast smoke run")
	workers := flag.Int("workers", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
	scenarios := flag.String("fault-scenarios", "",
		"comma-separated fault scenarios for -exp faults (default: all of "+
			strings.Join(faults.BuiltinNames(), ",")+")")
	traceOut := flag.String("trace", "", "write a deterministic JSONL step trace to this file")
	traceSteps := flag.Int("trace-steps", 0, "per-job step-trace ring capacity (0 = default 4096)")
	metricsOut := flag.String("metrics", "", "write a deterministic Prometheus text metrics dump to this file (wall-clock series excluded; -pprof's /metrics serves them live)")
	manifestOut := flag.String("manifest", "", "write the deterministic run manifest to this file")
	pprofAddr := flag.String("pprof", "", "serve pprof, expvar, and /metrics on this address (e.g. localhost:6060)")
	flag.Parse()

	cache := runner.NewCache()
	opts := experiments.Options{AmbientC: *ambient, SolarW: *solar, Workers: *workers, Cache: cache}
	if *quick {
		opts.MaxProfileS = 200
	}

	// Observability wiring: one registry and trace log shared by every
	// sweep of the invocation. The cache is disabled when tracing or
	// collecting metrics — a cache hit skips the simulation, which would
	// make the emitted series depend on job duplication.
	if *metricsOut != "" || *manifestOut != "" || *pprofAddr != "" || *traceOut != "" {
		opts.Telemetry = telemetry.NewRegistry()
		opts.Cache = nil
	}
	if *traceOut != "" {
		opts.TraceLog = &telemetry.TraceLog{}
		opts.TraceSteps = *traceSteps
	}
	if *manifestOut != "" {
		opts.Manifest = telemetry.NewManifest("evbench")
	}
	if *pprofAddr != "" {
		dbg, err := telemetry.StartDebugServer(*pprofAddr, opts.Telemetry)
		if err != nil {
			fmt.Fprintf(os.Stderr, "evbench: pprof listener: %v\n", err)
			os.Exit(1)
		}
		defer dbg.Close()
		fmt.Printf("[debug server on http://%s — /debug/pprof, /debug/vars, /metrics]\n\n", dbg.Addr)
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "evbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %s]\n\n", name, time.Since(start).Truncate(time.Millisecond))
	}

	run("fig1", func() error {
		rows, err := experiments.Fig1(experiments.Fig1Config{})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig1(rows))
		return nil
	})

	run("fig5", func() error {
		traces, err := experiments.Fig5(opts)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig5(traces))
		return nil
	})

	run("fig6", func() error {
		pts, err := experiments.Fig6(opts)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig6(pts))
		return nil
	})

	if *exp == "all" || *exp == "fig7" || *exp == "fig8" {
		start := time.Now()
		cycles, err := experiments.RunCycles(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "evbench: cycles: %v\n", err)
			os.Exit(1)
		}
		if *exp != "fig8" {
			fmt.Print(experiments.RenderFig7(experiments.Fig7(cycles)))
			fmt.Println()
		}
		if *exp != "fig7" {
			fmt.Print(experiments.RenderFig8(experiments.Fig8(cycles)))
		}
		// Driving-range view of the same runs (the paper's second
		// objective, reported via [12]'s estimation approach).
		if rows, err := experiments.RangeComparison(cycles, 21.3); err == nil {
			fmt.Println()
			fmt.Print(experiments.RenderRange(rows))
		}
		fmt.Printf("[fig7/fig8 completed in %s]\n\n", time.Since(start).Truncate(time.Millisecond))
	}

	run("table1", func() error {
		rows, err := experiments.Table1(opts, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable1(rows))
		return nil
	})

	// Ablations are opt-in (not part of "all"): four sweeps of full MPC
	// runs take several extra minutes.
	runExplicit := func(name string, fn func() error) {
		if *exp != name {
			return
		}
		run(name, fn)
	}
	runExplicit("ablate", func() error {
		for _, a := range []struct {
			title string
			fn    func() ([]experiments.AblationRow, error)
		}{
			{"MPC horizon length", func() ([]experiments.AblationRow, error) { return experiments.AblateHorizon(opts, nil) }},
			{"SoC-deviation weight w2", func() ([]experiments.AblationRow, error) { return experiments.AblateSoCDevWeight(opts, nil) }},
			{"SQP iteration budget", func() ([]experiments.AblationRow, error) { return experiments.AblateSQPBudget(opts, nil) }},
			{"control period", func() ([]experiments.AblationRow, error) { return experiments.AblateControlPeriod(opts, nil) }},
		} {
			rows, err := a.fn()
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderAblation(a.title, rows))
			fmt.Println()
		}
		return nil
	})

	runExplicit("faults", func() error {
		var names []string
		if *scenarios != "" {
			names = strings.Split(*scenarios, ",")
		}
		rows, err := experiments.FaultSweep(opts, names)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFaultSweep(rows))
		return nil
	})

	runExplicit("fleet", func() error {
		summary, err := experiments.RunFleet(experiments.FleetConfig{Trips: 10, Workers: *workers})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFleet(summary))
		return nil
	})

	if !strings.Contains("all fig1 fig5 fig6 fig7 fig8 table1 ablate fleet faults", *exp) {
		fmt.Fprintf(os.Stderr, "evbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	if hits, misses, entries := cache.Stats(); hits > 0 {
		fmt.Printf("[sweep cache: %d hits, %d misses, %d scenarios — %s of simulation re-use]\n",
			hits, misses, entries, cache.Saved().Truncate(time.Millisecond))
	}

	if *traceOut != "" {
		fatalIf("trace", writeFileWith(*traceOut, func(f *os.File) error {
			return opts.TraceLog.WriteJSONL(f, false)
		}))
		fmt.Printf("[step trace: %d spans written to %s]\n", opts.TraceLog.Len(), *traceOut)
	}
	if *metricsOut != "" {
		// The file dump is the deterministic subset — byte-identical at
		// any worker count. Wall-clock series stay on the live /metrics
		// endpoint and in JobResult.Elapsed.
		fatalIf("metrics", writeFileWith(*metricsOut, func(f *os.File) error {
			return opts.Telemetry.Snapshot(telemetry.DeterministicFilter).WritePrometheus(f)
		}))
		fmt.Printf("[metrics written to %s]\n", *metricsOut)
	}
	if *manifestOut != "" {
		opts.Manifest.Finalize(telemetry.GitDescribe(""), opts.Telemetry.Snapshot(telemetry.DeterministicFilter))
		fatalIf("manifest", opts.Manifest.WriteFile(*manifestOut))
		fmt.Printf("[run manifest written to %s]\n", *manifestOut)
	}
}

// writeFileWith creates path and hands it to fn, closing on all paths.
func writeFileWith(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatalIf(what string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "evbench: %s: %v\n", what, err)
		os.Exit(1)
	}
}
