package main

import (
	"bytes"
	"context"
	"net"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes the testable entrypoint and returns (exit code, stdout,
// stderr).
func runCLI(ctx context.Context, args ...string) (int, string, string) {
	var out, errOut bytes.Buffer
	code := run(ctx, args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestUsageErrorsExitTwo(t *testing.T) {
	cases := [][]string{
		{"-exp", "nope"},
		{"-no-such-flag"},
		{"-resume"},                           // needs -journal
		{"-checkpoint-every", "50"},           // needs -journal
		{"-serve", ":0", "-join", "http://x"}, // one role per process
	}
	for _, args := range cases {
		if code, _, _ := runCLI(context.Background(), args...); code != 2 {
			t.Errorf("evbench %v: exit %d, want 2", args, code)
		}
	}
}

func TestFig1ExitsZero(t *testing.T) {
	code, out, errOut := runCLI(context.Background(), "-exp", "fig1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "fig1 completed") {
		t.Errorf("stdout missing completion note: %s", out)
	}
}

// TestFailedJobsExitNonZero is the regression pin for the old behavior
// of exiting 0 despite failed sweep jobs: an impossible per-job deadline
// fails every job, and the process must say so in its exit code and
// failure summary.
func TestFailedJobsExitNonZero(t *testing.T) {
	code, _, errOut := runCLI(context.Background(),
		"-exp", "fig5", "-quick", "-job-timeout", "1ns")
	if code != 1 {
		t.Fatalf("exit %d with all jobs timing out, want 1; stderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "experiment(s) failed") {
		t.Errorf("stderr missing failure summary: %s", errOut)
	}
}

func TestInterruptedExitsThreeWithResumeHint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the signal arrived before any experiment started
	code, _, errOut := runCLI(ctx, "-exp", "fig1")
	if code != 3 {
		t.Fatalf("exit %d when interrupted, want 3; stderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "-journal") {
		t.Errorf("stderr missing the resume hint: %s", errOut)
	}

	dir := t.TempDir()
	code, _, errOut = runCLI(ctx, "-exp", "fig1", "-journal", dir)
	if code != 3 || !strings.Contains(errOut, "-resume") {
		t.Errorf("journaled interrupt: exit %d, stderr %q — want 3 with a -resume hint", code, errOut)
	}
}

// TestServeJoinDistRoundTrip drives the distributed surface end to end:
// one -serve coordinator and one -join worker in the same process, over
// a real TCP port, finishing the quick dist sweep with exit 0 on both
// sides. The worker ignores its own -quick/-ambient flags — it rebuilds
// the sweep from the coordinator's wire params, which is what keeps the
// two expansions identical.
func TestServeJoinDistRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	type outcome struct {
		code        int
		out, errOut string
	}
	served := make(chan outcome, 1)
	go func() {
		code, out, errOut := runCLI(context.Background(), "-serve", addr, "-quick", "-workers", "2")
		served <- outcome{code, out, errOut}
	}()

	code, out, errOut := runCLI(context.Background(), "-join", "http://"+addr, "-workers", "2")
	if code != 0 {
		t.Fatalf("worker: exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "worker done") {
		t.Errorf("worker stdout missing completion note: %s", out)
	}

	sr := <-served
	if sr.code != 0 {
		t.Fatalf("coordinator: exit %d, stderr: %s", sr.code, sr.errOut)
	}
	for _, want := range []string{"coordinating", "Distributable sweep", "dist completed"} {
		if !strings.Contains(sr.out, want) {
			t.Errorf("coordinator stdout missing %q: %s", want, sr.out)
		}
	}
}

// TestServeJoinColdRoundTrip is the cold-climate counterpart of the
// dist round trip: the coordinator serves the thermal-plant sweep by
// its registered fabric name, the joining worker rebuilds the identical
// expansion (including the thermal Base config) from the wire params,
// and the stitched result renders the co-scheduling table.
func TestServeJoinColdRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	type outcome struct {
		code        int
		out, errOut string
	}
	served := make(chan outcome, 1)
	go func() {
		code, out, errOut := runCLI(context.Background(),
			"-exp", "cold", "-serve", addr, "-quick", "-workers", "2")
		served <- outcome{code, out, errOut}
	}()

	code, out, errOut := runCLI(context.Background(), "-join", "http://"+addr, "-workers", "2")
	if code != 0 {
		t.Fatalf("worker: exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "worker done") {
		t.Errorf("worker stdout missing completion note: %s", out)
	}

	sr := <-served
	if sr.code != 0 {
		t.Fatalf("coordinator: exit %d, stderr: %s", sr.code, sr.errOut)
	}
	for _, want := range []string{"coordinating", "Cold-climate sweep", "Thermal", "cold completed"} {
		if !strings.Contains(sr.out, want) {
			t.Errorf("coordinator stdout missing %q: %s", want, sr.out)
		}
	}
}

// TestJournalResumeRoundTrip drives the full CLI surface: a journaled
// run, the exists-without-resume refusal, and a -resume re-run that
// replays from the journal (and the persisted disk cache) successfully.
func TestJournalResumeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-exp", "fig5", "-quick", "-workers", "2", "-journal", dir}
	code, _, errOut := runCLI(context.Background(), args...)
	if code != 0 {
		t.Fatalf("journaled run: exit %d, stderr: %s", code, errOut)
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "*.journal")); len(m) == 0 {
		t.Fatal("no journal written")
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "cache.json")); len(m) == 0 {
		t.Fatal("no disk cache written")
	}

	// Same command without -resume must refuse to clobber the journal.
	code, _, errOut = runCLI(context.Background(), args...)
	if code != 1 || !strings.Contains(errOut, "already exists") {
		t.Fatalf("re-run without -resume: exit %d, stderr %q — want 1 with 'already exists'", code, errOut)
	}

	code, _, errOut = runCLI(context.Background(), append(args, "-resume")...)
	if code != 0 {
		t.Fatalf("resumed run: exit %d, stderr: %s", code, errOut)
	}
}
