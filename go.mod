module evclimate

go 1.22
