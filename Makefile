GO ?= go

.PHONY: all build test race vet bench bench-json bench-gate clean test-faults test-resume test-fabric test-netchaos test-thermal test-batch fuzz-qp check

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The sweep engine's concurrency guarantees run under the race detector;
# everything else gets the plain run (race-instrumenting the full MPC
# suite takes too long for a default target).
race:
	$(GO) test -race ./internal/runner/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Machine-readable benchmark snapshot: the sweep-engine scaling benches
# plus the co-simulation hot-path benches, parsed into BENCH_sweep.json
# so regressions diff across commits. The telemetry pair (RunOnOff vs
# RunOnOffTelemetry) bounds the observability overhead. The second
# snapshot, BENCH_solver.json, covers the MPC solve path — the cold/warm
# pairs (QPInteriorPoint vs ...Warm, LUSolve120 vs LUSolveInto120) bound
# the workspace-reuse win, and the -benchmem allocs/op column pins the
# allocation-free hot path.
bench-json:
	{ $(GO) test -run '^$$' -bench 'Sweep16|SweepScalar|SweepBatch|CoSimOnOff' -benchmem . ; \
	  $(GO) test -run '^$$' -bench 'Forecast|RunOnOff' -benchmem ./internal/sim ; } \
	| $(GO) run ./cmd/benchjson -o BENCH_sweep.json
	$(GO) test -run '^$$' -bench 'MPCSolveStep|QPInteriorPoint|QPStructured|SQPSolveWarm|LUSolve' -benchmem . \
	| $(GO) run ./cmd/benchjson -o BENCH_solver.json

# Solver-path regression gate: rerun the solver benches and fail (exit 1)
# when the ns/op of BenchmarkMPCSolveStep or its co-scheduling
# counterpart BenchmarkMPCSolveStepThermal regresses more than 15 %
# against the committed BENCH_solver.json — the backstop that keeps the
# structured backend's ≥10× win from eroding silently at either decision
# stride. On pass, the snapshot is rewritten in place so
# `git diff BENCH_solver.json` shows the drift. The 3 s benchtime
# matches how the committed snapshot was produced; short runs are too
# noisy to gate at 15 % on shared CI hardware.
#
# The second gate reruns the sweep benches and fails when the batched
# sweep throughput bench (BenchmarkSweepBatch, the fix for the
# non-scaling parallel sweep) regresses more than 35 % in ns/op — wider
# than the solver tolerance because whole-sweep wall-clock on shared
# runners swings far more than a single solve step.
bench-gate:
	$(GO) test -run '^$$' -bench 'MPCSolveStep|QPInteriorPoint|QPStructured|SQPSolveWarm|LUSolve' -benchmem -benchtime 3s . \
	| $(GO) run ./cmd/benchjson -gate BENCH_solver.json \
	  -gate-bench 'BenchmarkMPCSolveStep,BenchmarkMPCSolveStepThermal' -o BENCH_solver.json
	$(GO) test -run '^$$' -bench 'Sweep16|SweepScalar|SweepBatch|CoSimOnOff' -benchmem -benchtime 3s . \
	| $(GO) run ./cmd/benchjson -gate BENCH_sweep.json \
	  -gate-bench 'BenchmarkSweepBatch' -gate-tol 0.35 -o BENCH_sweep.json

# Fault-injection and observability conformance under the race detector:
# the injector and supervisor unit tests, the telemetry registry/trace
# suite, the fault-axis and telemetry worker-count determinism proofs,
# the golden manifest, and the closed-loop safety property / ladder
# golden. The long fault-conformance sweep (TestFaultConformance) is
# excluded via -short where it self-skips.
test-faults:
	$(GO) test -race ./internal/faults/... ./internal/control/... ./internal/sqp/... ./internal/telemetry/...
	$(GO) test -race -short -run 'Fault|Telemetry|GoldenManifest' ./internal/runner/...
	$(GO) test -race -run 'TestSupervised' ./internal/sim/...

# Crash-safety suite under the race detector: journal WAL round-trip,
# torn-tail tolerance, the SIGKILL kill-and-resume byte-identity proof,
# watchdog/retry/escalation, mid-job checkpoint resume, the sim-level
# checkpoint bit-exactness property, and the evbench exit-code contract —
# plus a short fuzz smoke of the journal parser (the file a crashed
# process leaves behind is untrusted input).
test-resume:
	$(GO) test -race -run 'Journal|Watchdog|Retry|Backoff|Checkpoint|Escalation|Kill' ./internal/runner/...
	$(GO) test -run 'Checkpoint|Restore' ./internal/sim/...
	$(GO) test ./cmd/evbench/...
	$(GO) test -fuzz=FuzzParseJournal -fuzztime=10s ./internal/runner/

# Distributed-fabric suite under the race detector: the sharding /
# lease / quarantine unit tests, the topology byte-identity proof
# (1 and 3 workers vs single-process), the chaos test (subprocess
# workers, SIGKILL one mid-run, restart the coordinator from its
# journal), and the evbench -serve/-join CLI round trip.
test-fabric:
	$(GO) test -race ./internal/fabric/...
	$(GO) test -run 'ServeJoin' ./cmd/evbench/

# Network-chaos suite under the race detector: the seeded fault
# transport/proxy unit tests, the transport-hardening regressions (body
# caps, payload checksums, idempotent completion, flap breaker, the
# per-call deadline that unsticks black-holed workers), the spill-store
# bounded-memory proof, and the chaos matrix — every seeded fault
# schedule must stitch byte-identical artifacts to a single-process
# run. The explicit -timeout leaves headroom over the injected delays
# and black-hole windows on slow shared runners.
test-netchaos:
	$(GO) test -race -timeout 10m ./internal/netchaos/...
	$(GO) test -race -timeout 10m -run 'NetChaos|Complete|FlapBreaker|CallDeadline|SpillStore|MemStore|DuplicateCompletion' ./internal/fabric/

# Cold-climate thermal suite: the battery thermal network and heat-pump
# unit tests, depot preconditioning, the calendar/cycle-stress aging
# model, the co-scheduling MPC extension (structured-vs-dense
# equivalence on the enlarged stage problem), and the sim-level thermal
# integration — end-to-end cold runs, checkpoint bit-exactness with
# thermal state, and the bitwise trajectory golden.
test-thermal:
	$(GO) test ./internal/thermal/... ./internal/charging/...
	$(GO) test -run 'Thermal|Calendar|CycleStress' ./internal/battery/... ./internal/core/... ./internal/sim/...
	$(GO) test -run 'Cold' ./internal/experiments/...

# Coverage-guided fuzzing of the QP interior-point solver: the dense
# 2-variable front door (FuzzSolve) and the stage-structured KKT backend
# (FuzzStageKKT — ill-conditioned, non-SPD, degenerate, and
# band-violating stage QPs; go test fuzzes one target per invocation, so
# the two run back to back).
fuzz-qp:
	$(GO) test -fuzz='^FuzzSolve$$' -fuzztime=1m ./internal/qp/
	$(GO) test -fuzz='^FuzzStageKKT$$' -fuzztime=1m ./internal/qp/

# Batched-execution suite: the SoA integrator and batched-controller
# unit tests, the sim-level batch-vs-scalar bit-equivalence properties
# (controllers × cycles × batch sizes, fault injection, checkpoint/
# resume on batch boundaries), and the pool's batch planning /
# sweep-equivalence tests under the race detector.
test-batch:
	$(GO) test -run 'Batch' ./internal/ode/... ./internal/control/... ./internal/sim/...
	$(GO) test -race -run 'Batch|PlanUnits' ./internal/runner/...

# Pre-merge gate: full build + vet + tests, fault, crash-safety,
# distributed-fabric, network-chaos, cold-climate thermal, and
# batched-execution suites, and short fuzz smokes of the QP solver and
# the journal parser.
check: all test-faults test-resume test-fabric test-netchaos test-thermal test-batch
	$(GO) test -fuzz='^FuzzSolve$$' -fuzztime=10s ./internal/qp/
	$(GO) test -fuzz='^FuzzStageKKT$$' -fuzztime=10s ./internal/qp/
