GO ?= go

.PHONY: all build test race vet bench clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The sweep engine's concurrency guarantees run under the race detector;
# everything else gets the plain run (race-instrumenting the full MPC
# suite takes too long for a default target).
race:
	$(GO) test -race ./internal/runner/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

clean:
	$(GO) clean ./...
