package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpeedConversionRoundTrip(t *testing.T) {
	f := func(kmh float64) bool {
		if !IsFinite(kmh) {
			return true
		}
		return ApproxEqual(MsToKmh(KmhToMs(kmh)), kmh, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKnownSpeedConversions(t *testing.T) {
	cases := []struct{ kmh, ms float64 }{
		{0, 0},
		{3.6, 1},
		{36, 10},
		{120, 33.3333333333333},
	}
	for _, c := range cases {
		if got := KmhToMs(c.kmh); !ApproxEqual(got, c.ms, 1e-9) {
			t.Errorf("KmhToMs(%v) = %v, want %v", c.kmh, got, c.ms)
		}
	}
}

func TestTemperatureConversionRoundTrip(t *testing.T) {
	f := func(c float64) bool {
		if !IsFinite(c) {
			return true
		}
		return ApproxEqual(KToC(CToK(c)), c, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCToKZeroCelsius(t *testing.T) {
	if got := CToK(0); got != 273.15 {
		t.Errorf("CToK(0) = %v, want 273.15", got)
	}
	if got := CToK(-273.15); got != 0 {
		t.Errorf("CToK(-273.15) = %v, want 0", got)
	}
}

func TestEnergyConversions(t *testing.T) {
	if got := KWhToJ(1); got != 3.6e6 {
		t.Errorf("KWhToJ(1) = %v, want 3.6e6", got)
	}
	if got := JToKWh(3.6e6); got != 1 {
		t.Errorf("JToKWh(3.6e6) = %v, want 1", got)
	}
	if got := WhToJ(1); got != 3600 {
		t.Errorf("WhToJ(1) = %v, want 3600", got)
	}
	if got := JToWh(7200); got != 2 {
		t.Errorf("JToWh(7200) = %v, want 2", got)
	}
}

func TestSlopePercentToAngle(t *testing.T) {
	// 100 % slope is 45 degrees.
	if got := SlopePercentToAngle(100); !ApproxEqual(got, math.Pi/4, 1e-12) {
		t.Errorf("SlopePercentToAngle(100) = %v, want pi/4", got)
	}
	if got := SlopePercentToAngle(0); got != 0 {
		t.Errorf("SlopePercentToAngle(0) = %v, want 0", got)
	}
	// Small-angle behaviour: 1 % slope ~ 0.01 rad.
	if got := SlopePercentToAngle(1); !ApproxEqual(got, 0.0099996667, 1e-6) {
		t.Errorf("SlopePercentToAngle(1) = %v", got)
	}
	// Antisymmetric.
	if SlopePercentToAngle(-5) != -SlopePercentToAngle(5) {
		t.Error("SlopePercentToAngle is not antisymmetric")
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestClampProperty(t *testing.T) {
	f := func(v, a, b float64) bool {
		if !IsFinite(v) || !IsFinite(a) || !IsFinite(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		got := Clamp(v, lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Clamp(0, 1, -1) did not panic")
		}
	}()
	Clamp(0, 1, -1)
}

func TestLerp(t *testing.T) {
	if got := Lerp(0, 10, 0.5); got != 5 {
		t.Errorf("Lerp(0,10,0.5) = %v, want 5", got)
	}
	if got := Lerp(2, 2, 0.73); got != 2 {
		t.Errorf("Lerp(2,2,.73) = %v, want 2", got)
	}
	if got := Lerp(0, 10, 0); got != 0 {
		t.Errorf("Lerp endpoints wrong: %v", got)
	}
	if got := Lerp(0, 10, 1); got != 10 {
		t.Errorf("Lerp endpoints wrong: %v", got)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1, 1, 1e-12) {
		t.Error("exact equality not detected")
	}
	if !ApproxEqual(1e9, 1e9+1, 1e-6) {
		t.Error("relative tolerance not applied")
	}
	if ApproxEqual(1, 2, 1e-6) {
		t.Error("1 and 2 reported equal")
	}
	if !ApproxEqual(0, 1e-15, 1e-12) {
		t.Error("absolute tolerance not applied near zero")
	}
}

func TestIsFinite(t *testing.T) {
	if !IsFinite(1.5) {
		t.Error("1.5 should be finite")
	}
	if IsFinite(math.NaN()) {
		t.Error("NaN should not be finite")
	}
	if IsFinite(math.Inf(1)) || IsFinite(math.Inf(-1)) {
		t.Error("Inf should not be finite")
	}
}
