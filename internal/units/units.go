// Package units collects physical constants, unit conversions, and small
// numeric helpers shared by the vehicle, cabin, and battery models.
//
// All models in this repository work in SI units internally:
// meters, seconds, kilograms, watts, joules, kelvin-sized degrees Celsius.
// The helpers here exist so that model code never embeds magic conversion
// factors inline.
package units

import "math"

// Physical constants.
const (
	// Gravity is the standard gravitational acceleration in m/s².
	Gravity = 9.80665

	// AirDensity is the density of air at sea level and 20 °C in kg/m³.
	AirDensity = 1.204

	// AirCp is the specific heat capacity of dry air at constant
	// pressure in J/(kg·K).
	AirCp = 1005.0

	// SecondsPerHour converts hours to seconds.
	SecondsPerHour = 3600.0

	// SecondsPerDay converts days to seconds (calendar-aging kernels).
	SecondsPerDay = 86400.0
)

// KmhToMs converts a speed in km/h to m/s.
func KmhToMs(kmh float64) float64 { return kmh / 3.6 }

// MsToKmh converts a speed in m/s to km/h.
func MsToKmh(ms float64) float64 { return ms * 3.6 }

// CToK converts degrees Celsius to kelvin.
func CToK(c float64) float64 { return c + 273.15 }

// KToC converts kelvin to degrees Celsius.
func KToC(k float64) float64 { return k - 273.15 }

// WhToJ converts watt-hours to joules.
func WhToJ(wh float64) float64 { return wh * SecondsPerHour }

// JToWh converts joules to watt-hours.
func JToWh(j float64) float64 { return j / SecondsPerHour }

// KWhToJ converts kilowatt-hours to joules.
func KWhToJ(kwh float64) float64 { return kwh * 1000 * SecondsPerHour }

// JToKWh converts joules to kilowatt-hours.
func JToKWh(j float64) float64 { return j / (1000 * SecondsPerHour) }

// SlopePercentToAngle converts a road slope expressed as a percentage
// (100 % == 45°) to the corresponding angle in radians, following Eq. 3
// of the paper: angle = arctan(slope/100).
func SlopePercentToAngle(percent float64) float64 {
	return math.Atan(percent / 100)
}

// Clamp limits v to the closed interval [lo, hi]. It panics if lo > hi.
func Clamp(v, lo, hi float64) float64 {
	if lo > hi {
		panic("units: Clamp called with lo > hi")
	}
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}

// Lerp linearly interpolates between a and b with parameter t in [0, 1].
// t outside [0, 1] extrapolates.
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// ApproxEqual reports whether a and b agree to within tol absolutely or
// relatively (whichever is looser). tol must be positive.
func ApproxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

// IsFinite reports whether v is neither NaN nor ±Inf.
func IsFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
