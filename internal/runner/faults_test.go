package runner

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"evclimate/internal/core"
	"evclimate/internal/faults"
	"evclimate/internal/sim"
	"evclimate/internal/sqp"
)

// faultSweepSpec exercises every injector class on a short cycle: sensor
// noise and dropout (seeded draws), a forecast corruption, and a solver
// budget squeeze, against both a baseline pair and the full supervised
// ladder. The zero faults.Spec entry keeps an unfaulted control cell in
// the same sweep.
func faultSweepSpec() Spec {
	mcfg := core.DefaultConfig()
	mcfg.SQP = sqp.Options{MaxIter: 8, Tol: 1e-4}
	return Spec{
		Controllers: []ControllerSpec{
			OnOffSpec(1),
			FuzzySpec(1),
			SupervisedMPCSpec(core.SupervisedConfig{MPC: mcfg}, mcfg.Dt),
		},
		Cycles: []CycleSpec{{Name: "ECE15"}},
		Envs:   []Env{{AmbientC: 35, SolarW: 400}},
		Faults: []faults.Spec{
			{},
			{
				Name: "gauntlet",
				Sensor: []faults.SensorFault{
					{Signal: faults.CabinTemp, Mode: faults.Noise, Value: 0.6, Window: faults.Window{StartS: 10, EndS: 120}},
					{Signal: faults.OutsideTemp, Mode: faults.Dropout, Rate: 0.5, Window: faults.Window{StartS: 20, EndS: 140}},
					{Signal: faults.SoC, Mode: faults.Quantize, Value: 1, Window: faults.Window{StartS: 0, EndS: 150}},
				},
				Forecast: []faults.ForecastFault{
					{Mode: faults.ForecastCorrupt, SigmaW: 2000, Window: faults.Window{StartS: 30, EndS: 110}},
				},
				Solver: []faults.SolverFault{
					{MaxIter: 1, Window: faults.Window{StartS: 60, EndS: 100}},
				},
			},
		},
		MaxProfileS: 150,
		BaseSeed:    7,
		// Start the cabin inside the comfort band so the thermostat
		// actually switches — a soaked start saturates every controller
		// full-cool for the whole short profile, masking sensor noise.
		Mutate: func(cfg *sim.Config, _ *Job) { cfg.InitialCabinC = 24.5 },
	}
}

// TestFaultExpansion checks the fault axis threads into jobs: one job per
// (fault, controller) pair, the faulted jobs carrying the spec and the
// cell seed into sim.Config, the unfaulted job carrying neither.
func TestFaultExpansion(t *testing.T) {
	jobs, err := Expand(faultSweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 6 {
		t.Fatalf("jobs = %d, want 6 (2 faults × 3 controllers)", len(jobs))
	}
	for _, j := range jobs {
		if j.Fault == nil {
			if j.Config.Faults != nil {
				t.Errorf("job %d: unfaulted job has sim fault config", j.Index)
			}
			continue
		}
		if j.Fault.Name != "gauntlet" || j.Config.Faults != j.Fault {
			t.Errorf("job %d: fault not threaded into sim config", j.Index)
		}
		if j.Config.FaultSeed != j.Seed {
			t.Errorf("job %d: fault seed %d != job seed %d", j.Index, j.Config.FaultSeed, j.Seed)
		}
	}
	// The fault axis must split the cache fingerprint: same cell, same
	// controller, different fault → different key.
	if k0, k6 := jobs[0].Fingerprint(), jobs[3].Fingerprint(); k0 == k6 {
		t.Error("faulted and unfaulted jobs share a cache fingerprint")
	}
}

// TestFaultReplayAcrossWorkers is the determinism proof extended to fault
// injection: every seeded draw (noise, dropout, forecast corruption) must
// replay bit-identically whether the sweep runs sequentially or spread
// over a worker pool.
func TestFaultReplayAcrossWorkers(t *testing.T) {
	seq, err := Run(context.Background(), faultSweepSpec(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.FirstErr(); err != nil {
		t.Fatal(err)
	}
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	par, err := Run(context.Background(), faultSweepSpec(), Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if err := par.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if len(seq.Jobs) != len(par.Jobs) {
		t.Fatalf("job counts differ: %d vs %d", len(seq.Jobs), len(par.Jobs))
	}
	for i := range seq.Jobs {
		tag := fmt.Sprintf("job %d (%s)", i, seq.Jobs[i].Job.Controller.Label)
		if seq.Jobs[i].Job.Fault != nil {
			tag += " under " + seq.Jobs[i].Job.Fault.Name
		}
		identicalResults(t, tag, seq.Jobs[i].Result, par.Jobs[i].Result)
	}
	// The faulted runs must actually differ from the clean ones, or the
	// injector never fired and the test proves nothing.
	for i := 0; i < 3; i++ {
		clean, faulted := seq.Jobs[i].Result, seq.Jobs[i+3].Result
		if clean.AvgHVACW == faulted.AvgHVACW && clean.ComfortViolationFrac == faulted.ComfortViolationFrac {
			t.Errorf("%s: faulted run identical to clean run", seq.Jobs[i].Job.Controller.Label)
		}
	}
}

// TestFaultConformance is the acceptance sweep: all three controller
// families must keep satisfying the physical invariants under every
// built-in fault scenario. Faults corrupt only what controllers observe,
// so actuator limits, SoC bounds, and energy closure must hold exactly as
// in clean runs; two tolerances widen. The comfort budget grows because a
// stuck or dropped cabin sensor legitimately costs comfort, and the
// actuator slack grows from the clean-run 10 W to 100 W (~1.6 % of
// actuator authority) because a controller whose temperature estimate is
// wrong commands reheat-style heater/cooler overlap the true mix
// temperature turns into real watts on both actuators.
func TestFaultConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("fault conformance sweep is minutes of simulation")
	}
	tol := sim.DefaultTolerances()
	tol.MaxComfortViolationFrac = 0.6
	tol.ActuatorSlack = 100
	for _, name := range faults.BuiltinNames() {
		flt, err := faults.Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec := Spec{
				Controllers: conformanceControllers(),
				Cycles:      []CycleSpec{{Name: "ECE_EUDC"}},
				Envs:        []Env{{AmbientC: 35, SolarW: 400}},
				Faults:      []faults.Spec{flt},
				MaxProfileS: 500,
				BaseSeed:    11,
			}
			sw, err := Run(context.Background(), spec, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := range sw.Jobs {
				jr := &sw.Jobs[i]
				if jr.Err != nil {
					t.Errorf("%s: run failed: %v", jr.Job.Controller.Label, jr.Err)
					continue
				}
				if err := sim.CheckInvariants(jr.Job.Config, jr.Result, tol); err != nil {
					t.Errorf("%s violates invariants under %q: %v", jr.Job.Controller.Label, name, err)
				}
			}
		})
	}
}
