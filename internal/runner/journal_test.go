package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"evclimate/internal/cabin"
	"evclimate/internal/control"
	"evclimate/internal/sim"
	"evclimate/internal/telemetry"
)

// journalOpts is the standard journaled-sweep option set of these tests:
// a pinned Git stamp (so create and resume agree without shelling out)
// plus fresh telemetry so metric reconstruction is observable.
func journalOpts(dir string, resume bool) (Options, *telemetry.Registry, *telemetry.TraceLog) {
	reg := telemetry.NewRegistry()
	tl := &telemetry.TraceLog{}
	return Options{
		Workers:       2,
		Telemetry:     reg,
		TraceLog:      tl,
		ManifestLabel: "jtest",
		Journal:       &JournalConfig{Dir: dir, Resume: resume, Git: "test-build"},
	}, reg, tl
}

// deterministicJSON renders a registry's deterministic metric subset for
// byte comparison across runs.
func deterministicJSON(t *testing.T, reg *telemetry.Registry) []byte {
	t.Helper()
	data, err := json.Marshal(reg.Snapshot(telemetry.DeterministicFilter))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// traceJSONL renders a trace log without wall-clock timing for byte
// comparison across runs.
func traceJSONL(t *testing.T, tl *telemetry.TraceLog) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tl.WriteJSONL(&buf, false); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func findJournal(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.journal"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("journal files in %s: %v (err %v)", dir, matches, err)
	}
	return matches[0]
}

func TestJournalWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts, _, _ := journalOpts(dir, false)
	sw, err := Run(context.Background(), quickSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.JobErrors(); err != nil {
		t.Fatal(err)
	}

	rep, err := ReadJournal(findJournal(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Torn {
		t.Error("clean journal reported torn")
	}
	h := rep.Header
	if h.Version != JournalVersion || h.Label != "jtest" || h.Git != "test-build" || h.Jobs != 8 {
		t.Errorf("header = %+v", h)
	}
	jobs, err := Expand(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if want := telemetry.FormatFingerprint(SweepFingerprint(jobs)); h.SweepFingerprint != want {
		t.Errorf("header fingerprint %s, want %s", h.SweepFingerprint, want)
	}
	if len(rep.Records) != 8 {
		t.Fatalf("journal has %d records, want 8", len(rep.Records))
	}
	for i := range jobs {
		rec := rep.Records[i]
		if rec == nil {
			t.Fatalf("job %d missing from journal", i)
		}
		if rec.Fingerprint != telemetry.FormatFingerprint(jobs[i].Fingerprint()) {
			t.Errorf("job %d fingerprint %s", i, rec.Fingerprint)
		}
		if rec.Seed != jobs[i].Seed {
			t.Errorf("job %d seed %d, want %d", i, rec.Seed, jobs[i].Seed)
		}
		if rec.Result == nil || rec.Err != "" {
			t.Errorf("job %d: result %v, err %q", i, rec.Result, rec.Err)
		}
		if len(rec.Spans) == 0 || len(rec.Metrics) == 0 {
			t.Errorf("job %d: %d spans, %d metrics journaled", i, len(rec.Spans), len(rec.Metrics))
		}
	}
}

// TestJournalResumeReplaysByteIdentical is the tentpole determinism
// pin: a resumed sweep — every job replayed from the journal — must
// reproduce the results, stitched trace, and deterministic metrics of a
// plain single-worker run byte for byte.
func TestJournalResumeReplaysByteIdentical(t *testing.T) {
	dir := t.TempDir()
	opts, _, _ := journalOpts(dir, false)
	first, err := Run(context.Background(), quickSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.JobErrors(); err != nil {
		t.Fatal(err)
	}

	// Reference: no journal, one worker.
	refReg := telemetry.NewRegistry()
	refTl := &telemetry.TraceLog{}
	ref, err := Run(context.Background(), quickSpec(),
		Options{Workers: 1, Telemetry: refReg, TraceLog: refTl})
	if err != nil {
		t.Fatal(err)
	}

	// Resume: everything replays, nothing simulates.
	ropts, reg, tl := journalOpts(dir, true)
	man := telemetry.NewManifest("test")
	ropts.Manifest = man
	sw, err := Run(context.Background(), quickSpec(), ropts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sw.Jobs {
		if !sw.Jobs[i].Replayed {
			t.Errorf("job %d not replayed", i)
		}
		identicalResults(t, fmt.Sprintf("job %d", i), sw.Jobs[i].Result, ref.Jobs[i].Result)
	}
	if got, want := deterministicJSON(t, reg), deterministicJSON(t, refReg); !bytes.Equal(got, want) {
		t.Errorf("replayed metrics differ from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
	if got, want := traceJSONL(t, tl), traceJSONL(t, refTl); !bytes.Equal(got, want) {
		t.Error("replayed stitched trace differs from uninterrupted run")
	}
	if len(man.Resume) != 1 || man.Resume[0].ReplayedJobs != 8 {
		t.Errorf("manifest resume lineage = %+v", man.Resume)
	}
}

// TestJournalResumeAfterInterrupt drains a sweep mid-flight via context
// cancellation, then resumes it: the stitched outcome must match an
// uninterrupted run bit for bit.
func TestJournalResumeAfterInterrupt(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	opts, _, _ := journalOpts(dir, false)
	opts.Progress = func(done, total int, jr *JobResult) {
		if done == 3 {
			cancel()
		}
	}
	first, err := Run(ctx, quickSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	aborted := 0
	for i := range first.Jobs {
		if first.Jobs[i].Err != nil {
			aborted++
		}
	}
	if aborted == 0 {
		t.Fatal("cancellation aborted no jobs; cannot exercise resume")
	}

	refReg := telemetry.NewRegistry()
	refTl := &telemetry.TraceLog{}
	ref, err := Run(context.Background(), quickSpec(),
		Options{Workers: 1, Telemetry: refReg, TraceLog: refTl})
	if err != nil {
		t.Fatal(err)
	}

	ropts, reg, tl := journalOpts(dir, true)
	sw, err := Run(context.Background(), quickSpec(), ropts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.JobErrors(); err != nil {
		t.Fatal(err)
	}
	replayed := 0
	for i := range sw.Jobs {
		if sw.Jobs[i].Replayed {
			replayed++
		}
		identicalResults(t, fmt.Sprintf("job %d", i), sw.Jobs[i].Result, ref.Jobs[i].Result)
	}
	if replayed == 0 {
		t.Error("resume replayed nothing despite journaled records")
	}
	t.Logf("interrupted with %d jobs aborted, resumed replaying %d", aborted, replayed)
	if got, want := deterministicJSON(t, reg), deterministicJSON(t, refReg); !bytes.Equal(got, want) {
		t.Errorf("resumed metrics differ from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
	if got, want := traceJSONL(t, tl), traceJSONL(t, refTl); !bytes.Equal(got, want) {
		t.Error("resumed stitched trace differs from uninterrupted run")
	}
}

func TestJournalExistsWithoutResumeErrors(t *testing.T) {
	dir := t.TempDir()
	opts, _, _ := journalOpts(dir, false)
	if _, err := Run(context.Background(), quickSpec(), opts); err != nil {
		t.Fatal(err)
	}
	again, _, _ := journalOpts(dir, false)
	_, err := Run(context.Background(), quickSpec(), again)
	if err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("re-run without Resume: err = %v, want 'already exists'", err)
	}
}

func TestJournalResumeRefusesMismatch(t *testing.T) {
	dir := t.TempDir()
	h := JournalHeader{
		Kind: "header", Version: JournalVersion, Label: "m",
		SweepFingerprint: "00000000deadbeef", Git: "g1", GoVersion: "go", Jobs: 4,
	}
	path := filepath.Join(dir, "m.journal")
	j, err := createJournal(path, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	cases := []struct {
		name string
		want JournalHeader
		frag string
	}{
		{"version", func() JournalHeader { w := h; w.Version = 2; return w }(), "schema"},
		{"fingerprint", func() JournalHeader { w := h; w.SweepFingerprint = "00000000feedface"; return w }(), "spec or seed changed"},
		{"git", func() JournalHeader { w := h; w.Git = "g2"; return w }(), "this build is"},
		{"goversion", func() JournalHeader { w := h; w.GoVersion = "go9.9"; return w }(), "toolchains"},
		{"jobs", func() JournalHeader { w := h; w.Jobs = 5; return w }(), "jobs"},
	}
	for _, tc := range cases {
		_, err := resumeJournal(path, tc.want, 1)
		if !errors.Is(err, ErrJournalMismatch) {
			t.Errorf("%s mismatch: err = %v, want ErrJournalMismatch", tc.name, err)
		} else if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s mismatch: err %q does not mention %q", tc.name, err, tc.frag)
		}
	}
	if _, err := resumeJournal(path, h, 1); err != nil {
		t.Errorf("matching header refused: %v", err)
	}
}

// TestJournalResumeRefusesSilentRerun: resuming into a directory that
// holds this label's journal under a *different* sweep fingerprint —
// the spec or seed drifted since the journal was written — must fail
// with the typed mismatch error and a remediation hint, not silently
// open a fresh journal and re-run every finished job.
func TestJournalResumeRefusesSilentRerun(t *testing.T) {
	dir := t.TempDir()
	opts, _, _ := journalOpts(dir, false)
	if _, err := Run(context.Background(), quickSpec(), opts); err != nil {
		t.Fatal(err)
	}

	drifted := quickSpec()
	drifted.BaseSeed++ // new fingerprint, same label
	ropts, _, _ := journalOpts(dir, true)
	_, err := Run(context.Background(), drifted, ropts)
	if !errors.Is(err, ErrJournalMismatch) {
		t.Fatalf("drifted resume: err = %v, want ErrJournalMismatch", err)
	}
	for _, frag := range []string{"spec, seed, or profile changed", "start over"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("drifted resume: err %q does not mention %q", err, frag)
		}
	}
	// An unrelated label in the same directory is not a conflict.
	other, _, _ := journalOpts(dir, true)
	other.ManifestLabel = "other"
	if _, err := Run(context.Background(), drifted, other); err != nil {
		t.Errorf("fresh label in shared dir refused: %v", err)
	}
}

// TestJournalLeaseRecordsRoundTrip: fabric lease events journal through
// the same append-only log as job records and replay in append order,
// without perturbing job replay.
func TestJournalLeaseRecordsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jobs, err := Expand(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	jnl, err := OpenJournal(&JournalConfig{Dir: dir, Git: "test-build"}, "lease", jobs)
	if err != nil {
		t.Fatal(err)
	}
	events := []LeaseRecord{
		{Event: "grant", Unit: 0, Worker: "a", Lease: 1},
		{Event: "expire", Unit: 0, Worker: "a", Lease: 1},
		{Event: "grant", Unit: 0, Worker: "b", Lease: 2},
		{Event: "quarantine", Unit: 0, Worker: "b", Lease: 2},
	}
	for i := range events {
		if err := jnl.AppendLease(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := ReadJournal(findJournal(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 0 {
		t.Errorf("lease events leaked into job records: %d", len(rep.Records))
	}
	if len(rep.Leases) != len(events) {
		t.Fatalf("replayed %d lease events, want %d", len(rep.Leases), len(events))
	}
	for i, got := range rep.Leases {
		want := events[i]
		want.Kind = "lease"
		if got != want {
			t.Errorf("lease %d = %+v, want %+v", i, got, want)
		}
	}

	// Resuming a journal that holds lease events still works.
	jnl2, err := OpenJournal(&JournalConfig{Dir: dir, Resume: true, Git: "test-build"}, "lease", jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(jnl2.ReplayedLeases()); got != len(events) {
		t.Errorf("resume replayed %d lease events, want %d", got, len(events))
	}
	jnl2.Close()
}

func TestJournalTornTailToleratedAndTruncated(t *testing.T) {
	dir := t.TempDir()
	h := JournalHeader{
		Kind: "header", Version: JournalVersion,
		SweepFingerprint: "00000000deadbeef", Git: "g", GoVersion: "go", Jobs: 3,
	}
	path := filepath.Join(dir, "t.journal")
	j, err := createJournal(path, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := j.Append(&JournalRecord{Kind: "job", Index: i, Fingerprint: "00", Seed: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	clean, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	// A crash mid-append leaves a torn final line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"kind":"job","index":2,"fingerp`)
	f.Close()

	rep, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("torn journal rejected: %v", err)
	}
	if !rep.Torn {
		t.Error("torn tail not flagged")
	}
	if len(rep.Records) != 2 {
		t.Errorf("torn journal has %d records, want 2", len(rep.Records))
	}
	if rep.ValidLen != clean.Size() {
		t.Errorf("ValidLen %d, want %d", rep.ValidLen, clean.Size())
	}

	// Resume truncates the torn tail; subsequent appends land cleanly.
	j2, err := resumeJournal(path, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(&JournalRecord{Kind: "job", Index: 2, Fingerprint: "00", Seed: 2}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	rep2, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Torn || len(rep2.Records) != 3 {
		t.Errorf("after resume: torn %v, %d records, want clean 3", rep2.Torn, len(rep2.Records))
	}
}

func TestJournalCorruptMiddleErrors(t *testing.T) {
	header := `{"kind":"header","version":1,"sweep_fingerprint":"00","git":"g","go_version":"go","jobs":2}`
	rec := `{"kind":"job","index":0,"fingerprint":"00","seed":1,"elapsed_ns":5}`
	_, err := ParseJournal([]byte(header + "\n" + "NOT JSON\n" + rec + "\n"))
	if err == nil || !strings.Contains(err.Error(), "corrupt journal record at line 2") {
		t.Errorf("corrupt middle line: err = %v", err)
	}
	if _, err := ParseJournal(nil); err == nil {
		t.Error("empty journal accepted")
	}
	if _, err := ParseJournal([]byte("garbage\n")); err == nil || !strings.Contains(err.Error(), "header") {
		t.Errorf("garbage header: err = %v", err)
	}
}

// TestJournalFailedJobRerunOnResume pins the WAL semantics for failures:
// a failed job is journaled for diagnostics but re-executed on resume.
func TestJournalFailedJobRerunOnResume(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int32
	spec := Spec{
		Controllers: []ControllerSpec{{
			Label:     "On/Off",
			ControlDt: 1,
			New: func() (control.Controller, error) {
				if calls.Add(1) == 1 {
					return nil, errors.New("transient constructor failure")
				}
				m, err := cabin.New(cabin.Default())
				if err != nil {
					return nil, err
				}
				return control.NewOnOff(m), nil
			},
		}},
		Cycles:      []CycleSpec{{Name: "ECE15"}},
		Envs:        []Env{{AmbientC: 35, SolarW: 400}},
		MaxProfileS: 120,
		BaseSeed:    11,
	}

	opts, _, _ := journalOpts(dir, false)
	first, err := Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Jobs[0].Err == nil {
		t.Fatal("flaky job unexpectedly succeeded on first run")
	}
	rep, err := ReadJournal(findJournal(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if rec := rep.Records[0]; rec == nil || rec.Err == "" || rec.Result != nil {
		t.Fatalf("failed job journaled as %+v", rec)
	}

	ropts, _, _ := journalOpts(dir, true)
	sw, err := Run(context.Background(), spec, ropts)
	if err != nil {
		t.Fatal(err)
	}
	jr := &sw.Jobs[0]
	if jr.Err != nil || jr.Replayed {
		t.Fatalf("resume: err %v, replayed %v — want a fresh successful run", jr.Err, jr.Replayed)
	}
	rep, err = ReadJournal(findJournal(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if rec := rep.Records[0]; rec == nil || rec.Err != "" || rec.Result == nil {
		t.Errorf("re-run not journaled over the failure: %+v", rec)
	}
}

// TestChecksumRecordRoundTrip: the checksum survives a JSON round trip
// (the coordinator re-marshals what it decoded), is stable across
// calls, and changes when any payload value changes.
func TestChecksumRecordRoundTrip(t *testing.T) {
	rec := &JournalRecord{
		Kind: "job", Index: 7, Fingerprint: "00deadbeef00caf3", Seed: -42,
		Attempts: 2, ElapsedNs: 123456789,
		Result: &sim.Result{AvgHVACW: 512.25, DeltaSoH: 0.00125},
		Spans:  []telemetry.StepSpan{{Job: 7, Step: 1, TimeS: 2.5}},
		Metrics: telemetry.Snapshot{
			{Name: "a_total", Kind: "counter", Value: 3},
		},
	}
	sum, err := ChecksumRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum) != 16 {
		t.Fatalf("checksum %q, want fixed-width hex", sum)
	}
	if again, _ := ChecksumRecord(rec); again != sum {
		t.Errorf("checksum not stable: %s vs %s", sum, again)
	}
	// Wire round trip: decode + re-marshal must hash identically.
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back JournalRecord
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if got, _ := ChecksumRecord(&back); got != sum {
		t.Errorf("round-tripped checksum %s, want %s", got, sum)
	}
	// Any value change changes the sum.
	back.Result.DeltaSoH += 1e-9
	if got, _ := ChecksumRecord(&back); got == sum {
		t.Error("checksum unchanged after mutating the result payload")
	}
}
