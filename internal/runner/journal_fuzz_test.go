package runner

import (
	"testing"
)

// FuzzParseJournal hardens the resume path against arbitrary journal
// bytes — the file a crashed process leaves behind is untrusted input.
// Invariants: no panics; on success ValidLen is a sane byte offset and
// the valid prefix re-parses cleanly (same records, never torn), which
// is exactly what resumeJournal relies on when it truncates a torn tail.
func FuzzParseJournal(f *testing.F) {
	header := `{"kind":"header","version":1,"label":"x","sweep_fingerprint":"00000000deadbeef","git":"g","go_version":"go1","jobs":2}`
	rec0 := `{"kind":"job","index":0,"fingerprint":"00000000deadbeef","seed":1,"elapsed_ns":5,"result":{"Controller":"On/Off"}}`
	rec1 := `{"kind":"job","index":1,"fingerprint":"00000000feedface","seed":2,"elapsed_ns":7,"err":"boom"}`
	f.Add([]byte(header + "\n" + rec0 + "\n" + rec1 + "\n"))
	f.Add([]byte(header + "\n" + rec0 + "\n" + `{"kind":"job","ind`))     // crash mid-append
	f.Add([]byte(header + "\n" + rec0 + "\n" + "garbage\n"))              // corrupt final line
	f.Add([]byte(header + "\n" + "garbage\n" + rec0 + "\n"))              // corrupt middle line
	f.Add([]byte(header + "\n" + rec0 + "\n" + rec0 + "\n"))              // duplicate index: last wins
	f.Add([]byte(header + "\n\n" + rec0 + "\n\n"))                        // blank lines
	f.Add([]byte(header + "\n" + `{"kind":"job","index":-1}` + "\n"))     // negative index
	f.Add([]byte(header + "\n" + `{"kind":"header","version":1}` + "\n")) // header where a job belongs
	f.Add([]byte(header))                                                 // header without newline
	f.Add([]byte("\n\n"))
	f.Add([]byte(""))
	f.Add([]byte("not a journal\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := ParseJournal(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if rep.ValidLen < 0 || rep.ValidLen > int64(len(data)) {
			t.Fatalf("ValidLen %d outside [0, %d]", rep.ValidLen, len(data))
		}
		if rep.Header.Kind != "header" {
			t.Fatalf("accepted journal without header record: %+v", rep.Header)
		}
		prefix, err := ParseJournal(data[:rep.ValidLen])
		if err != nil {
			t.Fatalf("valid prefix does not re-parse: %v", err)
		}
		if prefix.Torn {
			t.Fatal("valid prefix parses as torn")
		}
		if len(prefix.Records) != len(rep.Records) {
			t.Fatalf("prefix has %d records, original %d", len(prefix.Records), len(rep.Records))
		}
		for idx := range rep.Records {
			if prefix.Records[idx] == nil {
				t.Fatalf("record %d lost in prefix re-parse", idx)
			}
		}
	})
}
