package runner

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"

	"evclimate/internal/cabin"
	"evclimate/internal/control"
	"evclimate/internal/drivecycle"
	"evclimate/internal/sim"
)

// quickSpec is a cheap 2×2×2 grid (8 jobs, baselines only) used by most
// tests: two short cycles, two ambients, On/Off + fuzzy.
func quickSpec() Spec {
	return Spec{
		Controllers: []ControllerSpec{OnOffSpec(1), FuzzySpec(1)},
		Cycles:      []CycleSpec{{Name: "ECE15"}, {Name: "UDDS"}},
		Envs:        []Env{{AmbientC: 35, SolarW: 400}, {AmbientC: 0}},
		MaxProfileS: 150,
		BaseSeed:    42,
	}
}

func TestExpandOrderStable(t *testing.T) {
	jobs, err := Expand(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 8 {
		t.Fatalf("jobs = %d, want 8", len(jobs))
	}
	// Cycles outermost, envs next, controllers innermost.
	want := []struct {
		cycle   string
		ambient float64
		ctrl    string
	}{
		{"ECE15", 35, "On/Off"}, {"ECE15", 35, "Fuzzy-based"},
		{"ECE15", 0, "On/Off"}, {"ECE15", 0, "Fuzzy-based"},
		{"UDDS", 35, "On/Off"}, {"UDDS", 35, "Fuzzy-based"},
		{"UDDS", 0, "On/Off"}, {"UDDS", 0, "Fuzzy-based"},
	}
	for i, w := range want {
		j := jobs[i]
		if j.Index != i {
			t.Errorf("job %d: index %d", i, j.Index)
		}
		if j.Cycle != w.cycle || j.Env.AmbientC != w.ambient || j.Controller.Label != w.ctrl {
			t.Errorf("job %d = (%s, %v, %s), want (%s, %v, %s)",
				i, j.Cycle, j.Env.AmbientC, j.Controller.Label, w.cycle, w.ambient, w.ctrl)
		}
		if j.Config.Profile == nil || j.Config.Profile.Duration() > 150 {
			t.Errorf("job %d: profile not prepared/truncated", i)
		}
		if j.Config.Profile.Samples[0].AmbientC != w.ambient {
			t.Errorf("job %d: ambient %v not applied", i, w.ambient)
		}
	}
	// Identical specs expand identically (replay).
	again, err := Expand(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Seed != again[i].Seed {
			t.Errorf("job %d: seed not reproducible: %d vs %d", i, jobs[i].Seed, again[i].Seed)
		}
	}
	// Seeds are pairwise distinct.
	seen := map[int64]int{}
	for i, j := range jobs {
		if prev, dup := seen[j.Seed]; dup {
			t.Errorf("jobs %d and %d share seed %d", prev, i, j.Seed)
		}
		seen[j.Seed] = i
	}
}

func TestExpandErrors(t *testing.T) {
	if _, err := Expand(Spec{Cycles: []CycleSpec{{Name: "ECE15"}}}); err == nil {
		t.Error("no controllers: want error")
	}
	if _, err := Expand(Spec{Controllers: []ControllerSpec{OnOffSpec(1)}}); err == nil {
		t.Error("no cycles: want error")
	}
	spec := Spec{Controllers: []ControllerSpec{OnOffSpec(1)}, Cycles: []CycleSpec{{Name: "NOPE"}}}
	if _, err := Expand(spec); err == nil {
		t.Error("unknown cycle: want error")
	}
	spec.Cycles = []CycleSpec{{}}
	if _, err := Expand(spec); err == nil {
		t.Error("empty cycle spec: want error")
	}
}

// identicalResults asserts two results are bit-identical, traces included.
func identicalResults(t *testing.T, tag string, a, b *sim.Result) {
	t.Helper()
	if a == nil || b == nil {
		t.Fatalf("%s: nil result (%v, %v)", tag, a, b)
	}
	scalar := func(name string, x, y float64) {
		if math.Float64bits(x) != math.Float64bits(y) {
			t.Errorf("%s: %s differs: %v vs %v", tag, name, x, y)
		}
	}
	scalar("AvgHVACW", a.AvgHVACW, b.AvgHVACW)
	scalar("AvgTotalW", a.AvgTotalW, b.AvgTotalW)
	scalar("DeltaSoH", a.DeltaSoH, b.DeltaSoH)
	scalar("SoCDev", a.SoCDev, b.SoCDev)
	scalar("FinalSoC", a.FinalSoC, b.FinalSoC)
	scalar("ComfortViolationFrac", a.ComfortViolationFrac, b.ComfortViolationFrac)
	scalar("RMSTrackingErrC", a.RMSTrackingErrC, b.RMSTrackingErrC)
	traces := [][2][]float64{
		{a.Trace.Time, b.Trace.Time}, {a.Trace.CabinC, b.Trace.CabinC},
		{a.Trace.HVACW, b.Trace.HVACW}, {a.Trace.TotalW, b.Trace.TotalW},
		{a.Trace.SoC, b.Trace.SoC},
	}
	for ti, pair := range traces {
		if len(pair[0]) != len(pair[1]) {
			t.Fatalf("%s: trace %d length %d vs %d", tag, ti, len(pair[0]), len(pair[1]))
		}
		for i := range pair[0] {
			if math.Float64bits(pair[0][i]) != math.Float64bits(pair[1][i]) {
				t.Fatalf("%s: trace %d diverges at step %d: %v vs %v",
					tag, ti, i, pair[0][i], pair[1][i])
			}
		}
	}
}

// TestParallelMatchesSequential is the determinism proof for the sweep
// engine: the same spec run with one worker and with many workers must be
// element-wise bit-identical.
func TestParallelMatchesSequential(t *testing.T) {
	seq, err := Run(context.Background(), quickSpec(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.FirstErr(); err != nil {
		t.Fatal(err)
	}
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4 // oversubscribe to force interleaving even on small boxes
	}
	par, err := Run(context.Background(), quickSpec(), Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if err := par.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if len(seq.Jobs) != len(par.Jobs) {
		t.Fatalf("job counts differ: %d vs %d", len(seq.Jobs), len(par.Jobs))
	}
	for i := range seq.Jobs {
		tag := fmt.Sprintf("job %d (%s on %s)", i, seq.Jobs[i].Job.Controller.Label, seq.Jobs[i].Job.Cycle)
		if par.Jobs[i].Job.Index != i {
			t.Errorf("%s: parallel output out of order", tag)
		}
		identicalResults(t, tag, seq.Jobs[i].Result, par.Jobs[i].Result)
	}
}

// panicController diverges on purpose partway through a run.
type panicController struct{ steps int }

func (c *panicController) Name() string { return "panicky" }
func (c *panicController) Reset()       { c.steps = 0 }
func (c *panicController) Decide(control.StepContext) cabin.Inputs {
	c.steps++
	if c.steps > 3 {
		panic("scenario diverged")
	}
	return cabin.Inputs{AirFlowKgS: 0.05, SupplyTempC: 20, CoilTempC: 20}
}

func TestPanicCaptured(t *testing.T) {
	spec := quickSpec()
	spec.Controllers = []ControllerSpec{
		OnOffSpec(1),
		{Label: "panicky", New: func() (control.Controller, error) { return &panicController{}, nil }},
	}
	spec.Cycles = spec.Cycles[:1]
	spec.Envs = spec.Envs[:1]
	sw, err := Run(context.Background(), spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Jobs[0].Err != nil || sw.Jobs[0].Result == nil {
		t.Errorf("healthy job infected: %+v", sw.Jobs[0].Err)
	}
	if sw.Jobs[1].Err == nil || !strings.Contains(sw.Jobs[1].Err.Error(), "panicked") {
		t.Errorf("panic not captured: %v", sw.Jobs[1].Err)
	}
	if err := sw.FirstErr(); err == nil || !strings.Contains(err.Error(), "panicky") {
		t.Errorf("FirstErr = %v, want the panicking job", err)
	}
}

func TestConstructorErrorIsolated(t *testing.T) {
	spec := quickSpec()
	boom := errors.New("boom")
	spec.Controllers = []ControllerSpec{
		{Label: "broken", New: func() (control.Controller, error) { return nil, boom }},
		OnOffSpec(1),
	}
	spec.Cycles = spec.Cycles[:1]
	spec.Envs = spec.Envs[:1]
	sw, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(sw.Jobs[0].Err, boom) {
		t.Errorf("constructor error lost: %v", sw.Jobs[0].Err)
	}
	if sw.Jobs[1].Err != nil {
		t.Errorf("sibling job failed: %v", sw.Jobs[1].Err)
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before dispatch: nothing should run
	sw, err := Run(ctx, quickSpec(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ranAny := false
	for i := range sw.Jobs {
		if sw.Jobs[i].Result != nil {
			ranAny = true
		} else if !errors.Is(sw.Jobs[i].Err, context.Canceled) {
			t.Errorf("job %d: err = %v, want context.Canceled", i, sw.Jobs[i].Err)
		}
	}
	if ranAny {
		t.Log("some jobs raced ahead of cancellation (allowed)")
	}
}

func TestProgress(t *testing.T) {
	var mu sync.Mutex
	var dones []int
	sw, err := Run(context.Background(), quickSpec(), Options{
		Workers: 4,
		Progress: func(done, total int, jr *JobResult) {
			mu.Lock()
			defer mu.Unlock()
			if total != 8 {
				t.Errorf("total = %d, want 8", total)
			}
			if jr.Result == nil && jr.Err == nil {
				t.Error("progress delivered empty result")
			}
			dones = append(dones, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if len(dones) != 8 {
		t.Fatalf("progress calls = %d, want 8", len(dones))
	}
	for i, d := range dones {
		if d != i+1 {
			t.Errorf("done sequence %v not strictly increasing", dones)
			break
		}
	}
}

func TestCells(t *testing.T) {
	sw, err := Run(context.Background(), quickSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cells := sw.Cells()
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	for _, cell := range cells {
		if len(cell) != 2 {
			t.Fatalf("cell size = %d, want 2", len(cell))
		}
		m := CellMap(cell)
		if m["On/Off"] == nil || m["Fuzzy-based"] == nil {
			t.Errorf("cell map incomplete: %v", m)
		}
		if cell[0].Job.Cycle != cell[1].Job.Cycle || cell[0].Job.Env != cell[1].Job.Env {
			t.Errorf("cell mixes scenarios: %+v vs %+v", cell[0].Job, cell[1].Job)
		}
	}
}

func TestCacheHitsAndInvalidation(t *testing.T) {
	cache := NewCache()
	spec := quickSpec()
	spec.Cycles = spec.Cycles[:1]

	first, err := Run(context.Background(), spec, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if err := first.FirstErr(); err != nil {
		t.Fatal(err)
	}
	for i := range first.Jobs {
		if first.Jobs[i].Cached {
			t.Errorf("job %d cached on first run", i)
		}
	}

	second, err := Run(context.Background(), spec, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for i := range second.Jobs {
		if !second.Jobs[i].Cached {
			t.Errorf("job %d not cached on identical re-run", i)
		}
		if second.Jobs[i].Result != first.Jobs[i].Result {
			t.Errorf("job %d: cache returned a different result pointer", i)
		}
	}
	hits, _, entries := cache.Stats()
	if hits != len(spec.Controllers)*2 || entries != len(spec.Controllers)*2 {
		t.Errorf("cache stats: hits %d entries %d", hits, entries)
	}

	// Any scenario change must invalidate the cell.
	changed := spec
	changed.Envs = []Env{{AmbientC: 36, SolarW: 400}, {AmbientC: 0}}
	third, err := Run(context.Background(), changed, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if third.Jobs[0].Cached {
		t.Error("changed ambient still hit the cache")
	}
	if !third.Jobs[2].Cached {
		t.Error("unchanged cold cell missed the cache")
	}
}

func TestGenProfileSharedWithinCycle(t *testing.T) {
	var mu sync.Mutex
	genSeeds := []int64{}
	spec := quickSpec()
	spec.Cycles = []CycleSpec{{
		Label: "gen",
		Gen: func(seed int64) (*drivecycle.Profile, error) {
			mu.Lock()
			genSeeds = append(genSeeds, seed)
			mu.Unlock()
			c, err := drivecycle.ByName("ECE15")
			if err != nil {
				return nil, err
			}
			return c.Profile(1), nil
		},
	}}
	jobs, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(genSeeds) != 1 {
		t.Fatalf("Gen called %d times, want once per cycle", len(genSeeds))
	}
	// Every job of the cycle shares the same generated base; the env
	// application clones it, but within one env the profile pointer is
	// shared read-only across controllers.
	if jobs[0].Config.Profile != jobs[1].Config.Profile {
		t.Error("controllers of one cell do not share the generated profile")
	}
	// Replay derives the same cycle seed.
	genSeeds = genSeeds[:0]
	if _, err := Expand(spec); err != nil {
		t.Fatal(err)
	}
	if len(genSeeds) != 1 {
		t.Fatalf("Gen called %d times on replay", len(genSeeds))
	}
}
