package runner

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"evclimate/internal/sim"
	"evclimate/internal/telemetry"
)

// JournalVersion is the journal schema version; resuming refuses
// journals written by a different schema.
const JournalVersion = 1

// ErrJournalMismatch reports a journal whose header does not describe
// the sweep being resumed — a different spec, seed, schema, or build.
// Resuming such a journal would stitch results from two different
// experiments, so the pool refuses with a hard, typed error (never a
// silent re-run); every wrapped message carries a remediation hint.
var ErrJournalMismatch = errors.New("runner: journal does not match this sweep")

// JournalConfig enables the crash-safe job journal on a sweep: an
// append-only JSONL write-ahead log recording each job's fingerprint,
// seed, and result as it completes, so an interrupted sweep can resume
// and skip finished work.
type JournalConfig struct {
	// Dir is the directory holding the journal (and any mid-job
	// checkpoint files); created if missing.
	Dir string
	// Resume allows continuing an existing journal. Without it, a
	// pre-existing journal for the same sweep is an error — silently
	// overwriting finished work is never the right default.
	Resume bool
	// FsyncEvery is the fsync cadence in records (≤ 0 = every record).
	// Larger values trade the tail of the journal on a hard crash for
	// less write amplification.
	FsyncEvery int
	// CheckpointEvery, when positive, checkpoints each in-flight job's
	// simulation state every CheckpointEvery control steps so a resumed
	// sweep continues interrupted jobs mid-cycle instead of restarting
	// them.
	CheckpointEvery int
	// Git overrides the code-version stamp in the journal header
	// (default telemetry.GitDescribe("")). Resume refuses a journal
	// whose stamp differs — results from two code versions must not be
	// stitched together.
	Git string
}

// JournalHeader is the journal's first record: the identity of the
// sweep it belongs to. Resume validates every field.
type JournalHeader struct {
	Kind    string `json:"kind"` // "header"
	Version int    `json:"version"`
	// Label is the sweep's manifest label.
	Label string `json:"label,omitempty"`
	// SweepFingerprint hashes every job fingerprint in expansion order
	// (see SweepFingerprint), rendered as fixed-width hex.
	SweepFingerprint string `json:"sweep_fingerprint"`
	// Git is the code version that wrote the journal.
	Git string `json:"git"`
	// GoVersion is the writing toolchain.
	GoVersion string `json:"go_version"`
	// Jobs is the expansion's job count.
	Jobs int `json:"jobs"`
}

// JournalRecord is one completed job: enough to replay the job's
// result, step spans, and metric contribution without re-simulating.
// Failed jobs are journaled too (Err set, Result nil) for diagnostics,
// but resume re-runs them.
type JournalRecord struct {
	Kind        string `json:"kind"` // "job"
	Index       int    `json:"index"`
	Fingerprint string `json:"fingerprint"`
	Seed        int64  `json:"seed"`
	Attempts    int    `json:"attempts,omitempty"`
	Cached      bool   `json:"cached,omitempty"`
	ElapsedNs   int64  `json:"elapsed_ns"`
	// EscalatedTo is the fallback controller label that produced the
	// result when retry escalation engaged.
	EscalatedTo string               `json:"escalated_to,omitempty"`
	Err         string               `json:"err,omitempty"`
	Result      *sim.Result          `json:"result,omitempty"`
	Spans       []telemetry.StepSpan `json:"spans,omitempty"`
	// Metrics is the job's private registry snapshot; replay merges it
	// into the sweep registry so resumed manifests match uninterrupted
	// ones.
	Metrics telemetry.Snapshot `json:"metrics,omitempty"`
}

// ChecksumRecord returns the FNV-1a hash of the record's canonical
// JSON form as fixed-width hex — the payload integrity check the
// fabric's completion protocol runs over the wire. The hash is
// representation-stable: Go's encoder emits struct fields in
// declaration order and shortest-round-trip floats, so a decoded
// record re-marshals to the same bytes the sender hashed, and any
// in-transit corruption that changed a value changes the sum.
func ChecksumRecord(rec *JournalRecord) (string, error) {
	data, err := json.Marshal(rec)
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write(data)
	return telemetry.FormatFingerprint(h.Sum64()), nil
}

// LeaseRecord journals one fabric lease event: a unit granted to a
// worker, an expired lease reclaimed, or a unit quarantined. Leases are
// audit and telemetry records — resume correctness derives from job
// records alone (every lease outstanding at crash time is implicitly
// expired by the restart).
type LeaseRecord struct {
	Kind string `json:"kind"` // "lease"
	// Event is "grant", "expire", or "quarantine".
	Event string `json:"event"`
	// Unit is the leased work unit's index.
	Unit int `json:"unit"`
	// Worker is the holding worker's self-reported identity.
	Worker string `json:"worker"`
	// Lease is the coordinator-assigned lease id.
	Lease uint64 `json:"lease"`
}

// JournalReplay is a parsed journal: the header, the latest record per
// job index, and whether the final record was torn (a crash mid-write).
type JournalReplay struct {
	Header  JournalHeader
	Records map[int]*JournalRecord
	// Leases are the fabric lease events, in append order.
	Leases []LeaseRecord
	// Torn reports that the final line failed to parse and was dropped.
	Torn bool
	// ValidLen is the byte length of the parseable prefix; resuming
	// truncates the file here before appending.
	ValidLen int64
}

// SweepFingerprint hashes every job's scenario fingerprint in expansion
// order — the identity a journal is keyed by. Unlike the manifest's run
// fingerprint it excludes the base seed as a separate word; the per-job
// fingerprints already pin the derived seeds.
func SweepFingerprint(jobs []Job) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := range jobs {
		binary.LittleEndian.PutUint64(buf[:], jobs[i].Fingerprint())
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Journal is an append-only JSONL write-ahead log of completed sweep
// jobs. Appends are serialized and fsync'd on the configured cadence;
// a record is durable once its fsync batch lands.
type Journal struct {
	mu         sync.Mutex
	path       string
	f          *os.File
	header     JournalHeader
	fsyncEvery int
	sinceSync  int
	replay     map[int]*JournalRecord
	leases     []LeaseRecord
}

// journalFileName derives the journal file name from the sweep label
// and fingerprint, so distinct sweeps in one directory never collide.
func journalFileName(label string, fp uint64) string {
	s := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, label)
	if s == "" {
		s = "sweep"
	}
	return fmt.Sprintf("%s-%s.journal", s, telemetry.FormatFingerprint(fp))
}

// OpenJournal creates the journal for a job list, or resumes an
// existing one when cfg.Resume is set (refusing on any header
// mismatch). A pre-existing journal without Resume is an error. The
// sweep pool opens its journal here; the distributed fabric's
// coordinator uses the same format (and therefore the same resume
// semantics) for its lease/completion log.
func OpenJournal(cfg *JournalConfig, label string, jobs []Job) (*Journal, error) {
	return openSweepJournal(cfg, label, jobs)
}

// openSweepJournal implements OpenJournal.
func openSweepJournal(cfg *JournalConfig, label string, jobs []Job) (*Journal, error) {
	git := cfg.Git
	if git == "" {
		git = telemetry.GitDescribe("")
	}
	fp := SweepFingerprint(jobs)
	h := JournalHeader{
		Kind:             "header",
		Version:          JournalVersion,
		Label:            label,
		SweepFingerprint: telemetry.FormatFingerprint(fp),
		Git:              git,
		GoVersion:        runtime.Version(),
		Jobs:             len(jobs),
	}
	path := filepath.Join(cfg.Dir, journalFileName(label, fp))
	if _, err := os.Stat(path); err == nil {
		if !cfg.Resume {
			return nil, fmt.Errorf("runner: journal %s already exists; resume it or remove it to start over", path)
		}
		return resumeJournal(path, h, cfg.FsyncEvery)
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, err
	}
	// Resume asked for, but no journal exists under this sweep's
	// fingerprint. If the directory holds journals for the same label
	// under a different fingerprint, the spec, seed, or profile changed
	// since they were written — silently starting a fresh journal here
	// would quietly re-run every finished job, so refuse with the typed
	// mismatch error instead.
	if cfg.Resume {
		if stale := siblingJournals(cfg.Dir, label, path); len(stale) > 0 {
			return nil, fmt.Errorf("%w: no journal for sweep %s in %s, but found %s — "+
				"the spec, seed, or profile changed since that journal was written; "+
				"re-run the original spec to resume it, or drop -resume (or point "+
				"-journal at a fresh directory) to deliberately start over",
				ErrJournalMismatch, h.SweepFingerprint, cfg.Dir, strings.Join(stale, ", "))
		}
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	return createJournal(path, h, cfg.FsyncEvery)
}

// siblingJournals lists journals in dir that share a sweep label with
// path but record a different fingerprint — the signature of a -resume
// whose spec drifted from the journaled run.
func siblingJournals(dir, label string, path string) []string {
	prefix := strings.TrimSuffix(filepath.Base(journalFileName(label, 0)), "0000000000000000.journal")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var stale []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, prefix) && strings.HasSuffix(name, ".journal") &&
			name != filepath.Base(path) {
			stale = append(stale, name)
		}
	}
	return stale
}

// createJournal starts a fresh journal with the given header.
func createJournal(path string, h JournalHeader, fsyncEvery int) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{path: path, f: f, header: h, fsyncEvery: fsyncEvery}
	line, err := json.Marshal(h)
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// resumeJournal reopens an existing journal for appending after
// validating its header against the sweep being run and truncating any
// torn final record.
func resumeJournal(path string, want JournalHeader, fsyncEvery int) (*Journal, error) {
	rep, err := ReadJournal(path)
	if err != nil {
		return nil, err
	}
	got := rep.Header
	switch {
	case got.Version != want.Version:
		return nil, fmt.Errorf("%w: %s was written by journal schema v%d, this build writes v%d — "+
			"finish the run with the build that wrote it, or remove the journal to start over",
			ErrJournalMismatch, path, got.Version, want.Version)
	case got.SweepFingerprint != want.SweepFingerprint:
		return nil, fmt.Errorf("%w: %s records sweep %s, this spec expands to %s (spec or seed changed) — "+
			"re-run the original spec, or remove the journal to start over",
			ErrJournalMismatch, path, got.SweepFingerprint, want.SweepFingerprint)
	case got.Git != want.Git:
		return nil, fmt.Errorf("%w: %s was written at code version %s, this build is %s — "+
			"results from two builds must not be stitched; check out %s to finish the run, "+
			"or remove the journal to start over on this build",
			ErrJournalMismatch, path, got.Git, want.Git, got.Git)
	case got.GoVersion != want.GoVersion:
		return nil, fmt.Errorf("%w: %s was written by %s, this binary is built with %s — "+
			"floating-point results can differ across toolchains; rebuild with %s to finish "+
			"the run, or remove the journal to start over",
			ErrJournalMismatch, path, got.GoVersion, want.GoVersion, got.GoVersion)
	case got.Jobs != want.Jobs:
		return nil, fmt.Errorf("%w: %s records %d jobs, this sweep has %d — "+
			"re-run the original spec, or remove the journal to start over",
			ErrJournalMismatch, path, got.Jobs, want.Jobs)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	// Drop the torn tail (if any) so appended records start on a clean
	// line; then position at the new end.
	if err := f.Truncate(rep.ValidLen); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(rep.ValidLen, 0); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{path: path, f: f, header: got, fsyncEvery: fsyncEvery,
		replay: rep.Records, leases: rep.Leases}, nil
}

// ReadJournal parses a journal file. See ParseJournal.
func ReadJournal(path string) (*JournalReplay, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseJournal(data)
}

// ParseJournal parses journal bytes. A truncated or corrupt final line
// — the signature of a crash mid-append — is tolerated and dropped;
// corruption anywhere else is an error, because silently skipping
// middle records would resurrect lost work as "finished". When the
// same job index appears more than once (a failed job re-run by an
// earlier resume), the last record wins.
func ParseJournal(data []byte) (*JournalReplay, error) {
	rep := &JournalReplay{Records: make(map[int]*JournalRecord)}
	pos := 0
	lineNo := 0
	sawHeader := false
	for pos < len(data) {
		nl := bytes.IndexByte(data[pos:], '\n')
		complete := nl >= 0
		var line []byte
		next := len(data)
		if complete {
			line = data[pos : pos+nl]
			next = pos + nl + 1
		} else {
			line = data[pos:]
		}
		lineNo++
		last := next >= len(data)
		if len(bytes.TrimSpace(line)) == 0 {
			pos = next
			continue
		}
		if !sawHeader {
			var h JournalHeader
			if err := json.Unmarshal(line, &h); err != nil || h.Kind != "header" {
				return nil, fmt.Errorf("runner: journal line 1 is not a header record")
			}
			rep.Header = h
			sawHeader = true
			pos = next
			rep.ValidLen = int64(pos)
			continue
		}
		var r JournalRecord
		err := json.Unmarshal(line, &r)
		if err == nil && r.Kind != "job" && r.Kind != "lease" {
			err = fmt.Errorf("runner: journal record kind %q", r.Kind)
		}
		if err == nil && r.Kind == "job" && r.Index < 0 {
			err = fmt.Errorf("runner: journal job record with negative index")
		}
		if err != nil || !complete {
			if last {
				// Torn final record: the crash interrupted this append.
				rep.Torn = true
				return rep, nil
			}
			return nil, fmt.Errorf("runner: corrupt journal record at line %d: %v", lineNo, err)
		}
		if r.Kind == "lease" {
			var lr LeaseRecord
			if err := json.Unmarshal(line, &lr); err != nil {
				return nil, fmt.Errorf("runner: corrupt journal lease record at line %d: %v", lineNo, err)
			}
			rep.Leases = append(rep.Leases, lr)
		} else {
			rec := r
			rep.Records[rec.Index] = &rec
		}
		pos = next
		rep.ValidLen = int64(pos)
	}
	if !sawHeader {
		return nil, errors.New("runner: journal is empty (no header record)")
	}
	return rep, nil
}

// Append journals one completed job and fsyncs on the configured
// cadence. Safe for concurrent workers.
func (j *Journal) Append(rec *JournalRecord) error {
	return j.appendLine(rec)
}

// AppendLease journals one fabric lease event on the same fsync
// cadence as job records.
func (j *Journal) AppendLease(rec *LeaseRecord) error {
	rec.Kind = "lease"
	return j.appendLine(rec)
}

// appendLine marshals and appends one record of any kind.
func (j *Journal) appendLine(rec any) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	j.sinceSync++
	if j.fsyncEvery <= 1 || j.sinceSync >= j.fsyncEvery {
		j.sinceSync = 0
		return j.f.Sync()
	}
	return nil
}

// Replayed returns the journal's record for a job index, or nil.
func (j *Journal) Replayed(index int) *JournalRecord { return j.replay[index] }

// ReplayedLeases returns the lease events a resumed journal carried, in
// append order (nil for a fresh journal).
func (j *Journal) ReplayedLeases() []LeaseRecord { return j.leases }

// Header returns the journal's header.
func (j *Journal) Header() JournalHeader { return j.header }

// Path returns the journal file's path.
func (j *Journal) Path() string { return j.path }

// Close fsyncs and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// checkpointPath is the mid-job checkpoint file for a job, beside the
// journal and keyed by the job's scenario fingerprint.
func (j *Journal) checkpointPath(job *Job) string {
	return filepath.Join(filepath.Dir(j.path),
		fmt.Sprintf("ckpt-%s.json", telemetry.FormatFingerprint(job.Fingerprint())))
}
