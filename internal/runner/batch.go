package runner

import (
	"context"
	"math"
	"time"

	"evclimate/internal/control"
	"evclimate/internal/sim"
	"evclimate/internal/telemetry"
)

// This file is the pool's batched execution path: eligible jobs are
// grouped into sim.BatchRunner units and simulated N vehicles at a
// time over SoA state. Every lane's result is bit-identical to the
// scalar path (sim's batch equivalence property), so batching is purely
// a scheduling decision — and one made from the expansion order alone,
// keeping sweep outputs worker-count-deterministic.

// DefaultBatchSize is the lane count per batch when Options.BatchSize
// is zero. Sixteen lanes keep the SoA state well inside L1 while
// amortizing the time loop enough that wider batches stop paying.
const DefaultBatchSize = 16

// batchKey groups jobs that can share one lockstep batch: same
// controller family (same constructor) and the same time grid.
type batchKey struct {
	label, key string
	dt         float64
	sub        int
	steps      int
	forecast   int
}

// batchingEnabled reports whether this sweep's options allow batched
// execution at all. Journal, record streaming, retry, and watchdog
// sweeps need per-job execution control (per-job registries, per-job
// deadlines, attempt loops), so they keep the scalar path.
func (pe *poolEnv) batchingEnabled() bool {
	o := &pe.opts
	return o.BatchSize >= 0 &&
		o.Journal == nil &&
		o.OnRecord == nil &&
		o.Retry.MaxAttempts <= 1 &&
		o.JobTimeout == 0
}

// batchKeyFor computes a job's batch group, probing the controller
// family once (per Label+Key) for an SoA fast path. Jobs that cannot
// batch — thermal lanes, non-batchable controllers, degenerate grids —
// report ok=false and run scalar.
func (pe *poolEnv) batchKeyFor(job *Job, probe map[[2]string]bool) (batchKey, bool) {
	cfg := &job.Config
	if cfg.Thermal != nil || cfg.Profile == nil {
		return batchKey{}, false
	}
	pk := [2]string{job.Controller.Label, job.Controller.Key}
	batchable, seen := probe[pk]
	if !seen {
		batchable = false
		if job.Controller.New != nil {
			if c, err := job.Controller.New(); err == nil {
				batchable = control.Batchable(c)
			}
		}
		probe[pk] = batchable
	}
	if !batchable {
		return batchKey{}, false
	}
	// Mirror sim.New's defaulting so the key matches what NewBatch will
	// validate.
	dt := cfg.ControlDt
	if dt <= 0 {
		dt = cfg.Profile.Dt
	}
	if dt <= 0 {
		return batchKey{}, false
	}
	sub := cfg.PlantSubSteps
	if sub <= 0 {
		sub = 5
	}
	steps := int(math.Ceil(cfg.Profile.Duration() / dt))
	if steps <= 0 {
		return batchKey{}, false
	}
	return batchKey{
		label:    job.Controller.Label,
		key:      job.Controller.Key,
		dt:       dt,
		sub:      sub,
		steps:    steps,
		forecast: cfg.ForecastSteps,
	}, true
}

// planUnits schedules the not-yet-run jobs into execution units:
// singleton units for scalar jobs, and batches of up to BatchSize lanes
// for groups sharing a batchKey. Grouping walks the expansion order and
// flushes leftover partial groups in first-seen key order, so the plan
// is a pure function of the job list — independent of workers and of
// wall-clock.
func (pe *poolEnv) planUnits(ran []bool) [][]int {
	size := pe.opts.BatchSize
	if size == 0 {
		size = DefaultBatchSize
	}
	var units [][]int
	if size <= 1 || !pe.batchingEnabled() {
		for i := range pe.jobs {
			if !ran[i] {
				units = append(units, []int{i})
			}
		}
		return units
	}
	probe := make(map[[2]string]bool)
	groups := make(map[batchKey][]int)
	var order []batchKey
	for i := range pe.jobs {
		if ran[i] {
			continue
		}
		key, ok := pe.batchKeyFor(&pe.jobs[i], probe)
		if !ok {
			units = append(units, []int{i})
			continue
		}
		if _, seen := groups[key]; !seen {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
		if len(groups[key]) == size {
			units = append(units, groups[key])
			groups[key] = nil
		}
	}
	for _, k := range order {
		if g := groups[k]; len(g) > 0 {
			units = append(units, g)
		}
	}
	return units
}

// runBatch executes one multi-job unit, writing each lane's JobResult
// into out. Cache hits leave the batch lane by lane; anything that
// keeps the batch from running as one — a lane failing construction, a
// panicking controller, an integration error — falls the surviving
// lanes back to the scalar runOne path, which attributes errors
// per job. Lanes left untouched by a context abort stay zero for the
// pool's final ctx.Err fill.
func (pe *poolEnv) runBatch(ctx context.Context, unit []int, out []JobResult) {
	opts := &pe.opts
	live := make([]int, 0, len(unit))
	for _, i := range unit {
		job := &pe.jobs[i]
		if opts.Cache != nil {
			if res, saved, ok := opts.Cache.get(job.Fingerprint()); ok {
				out[i] = JobResult{Job: *job, Result: res, Cached: true, Saved: saved, Attempts: 1}
				pe.shared.cached.Inc()
				pe.shared.seconds.Observe(0)
				continue
			}
		}
		live = append(live, i)
	}
	switch len(live) {
	case 0:
		return
	case 1:
		out[live[0]] = pe.runOne(ctx, live[0])
		return
	}
	if results := pe.executeBatch(ctx, live); results != nil {
		for k, i := range live {
			out[i] = results[k]
		}
		return
	}
	if ctx.Err() != nil {
		return
	}
	for _, i := range live {
		if ctx.Err() != nil {
			return
		}
		out[i] = pe.runOne(ctx, i)
	}
}

// executeBatch runs the live lanes as one sim.BatchRunner invocation.
// A nil return means "retry these lanes on the scalar path" — the
// batched core refuses nothing the scalar path would accept, so a
// fallback either reproduces the same per-lane errors with proper
// attribution or succeeds where a sibling lane poisoned the batch.
func (pe *poolEnv) executeBatch(ctx context.Context, live []int) (results []JobResult) {
	opts := &pe.opts
	defer func() {
		if recover() != nil {
			results = nil // a panicking lane re-runs scalar, which captures it
		}
	}()
	start := time.Now()
	nl := len(live)
	cfgs := make([]sim.Config, nl)
	recs := make([]*telemetry.StepTrace, nl)
	for k, i := range live {
		job := &pe.jobs[i]
		cfg := job.Config
		if opts.Telemetry != nil || pe.traces != nil {
			if pe.traces != nil {
				recs[k] = telemetry.NewStepTrace(opts.TraceSteps)
			}
			cfg.Telemetry = telemetry.NewSink(opts.Telemetry, recs[k], jobLabels(job)...)
		}
		cfgs[k] = cfg
	}
	br, err := sim.NewBatch(cfgs)
	if err != nil {
		return nil
	}
	ctrls := make([]control.Controller, nl)
	for k, i := range live {
		spec := &pe.jobs[i].Controller
		if spec.New == nil {
			return nil
		}
		c, err := spec.New()
		if err != nil {
			return nil
		}
		ctrls[k] = c
	}
	bc := control.Batch(ctrls)
	rs, err := br.RunWith(bc, sim.BatchRunOptions{Context: ctx})
	if err != nil {
		return nil
	}
	// Wall-clock is shared equally across lanes: per-lane attribution of
	// a fused loop is not observable, and these series are excluded from
	// deterministic comparisons anyway.
	share := time.Since(start) / time.Duration(nl)
	results = make([]JobResult, nl)
	for k, i := range live {
		job := &pe.jobs[i]
		if opts.Cache != nil {
			opts.Cache.put(job.Fingerprint(), rs[k], share)
		}
		pe.shared.ok.Inc()
		pe.shared.seconds.Observe(share.Seconds())
		if pe.traces != nil {
			pe.traces[i] = recs[k]
		}
		results[k] = JobResult{
			Job:      *job,
			Result:   rs[k],
			Instance: bc.Lane(k),
			Elapsed:  share,
			Attempts: 1,
		}
	}
	return results
}
