package runner

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"math"
	"os"
	"strconv"
	"sync"
	"time"

	"evclimate/internal/sim"
)

// Cache is an opt-in, concurrency-safe result cache keyed by a hash of
// the full scenario configuration (controller identity, sim parameters,
// seed, and profile contents). Repeated sweeps — e.g. re-rendering
// Table I after a weights change — skip unchanged cells. Cached results
// are shared pointers and must be treated as read-only.
type Cache struct {
	mu           sync.Mutex
	m            map[uint64]cacheEntry
	hits, misses int
	saved        time.Duration
}

// cacheEntry pairs a result with the wall-clock its simulation cost, so
// hits can report how much time they saved.
type cacheEntry struct {
	res     *sim.Result
	elapsed time.Duration
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{m: make(map[uint64]cacheEntry)}
}

func (c *Cache) get(key uint64) (*sim.Result, time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if ok {
		c.hits++
		c.saved += e.elapsed
	} else {
		c.misses++
	}
	return e.res, e.elapsed, ok
}

func (c *Cache) put(key uint64, res *sim.Result, elapsed time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = cacheEntry{res: res, elapsed: elapsed}
}

// Put inserts a result under its scenario fingerprint with the
// wall-clock its simulation cost. The fabric coordinator publishes
// every successful completion through here, so later hits on the same
// fingerprint — a reassigned unit, a joining worker — skip the
// simulation entirely. Results are shared pointers; callers must treat
// them as read-only after insertion.
func (c *Cache) Put(key uint64, res *sim.Result, elapsed time.Duration) {
	c.put(key, res, elapsed)
}

// Get returns the cached result for a scenario fingerprint, counting
// the lookup in the hit/miss statistics.
func (c *Cache) Get(key uint64) (*sim.Result, bool) {
	res, _, ok := c.get(key)
	return res, ok
}

// Stats returns the hit/miss counters and the number of cached cells.
func (c *Cache) Stats() (hits, misses, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.m)
}

// Saved returns the cumulative wall-clock that cache hits avoided
// re-spending: the sum of the original execution times of every hit.
func (c *Cache) Saved() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saved
}

// cacheFileVersion is the on-disk cache schema; LoadFile discards
// files written by a different schema.
const cacheFileVersion = 1

// cacheFile is the serialized form of a Cache: results keyed by their
// scenario fingerprint in hex. Invalidation is inherent in the key —
// any spec, seed, or profile change produces a new fingerprint, so
// stale entries are simply never hit.
type cacheFile struct {
	Version int                       `json:"version"`
	Entries map[string]cacheFileEntry `json:"entries"`
}

type cacheFileEntry struct {
	Result    *sim.Result `json:"result"`
	ElapsedNs int64       `json:"elapsed_ns"`
}

// Save writes the cache's wire form — the same content-addressed JSON
// the disk file holds — to w. It is the payload the fabric's /cache
// endpoint serves, so a worker joining a sweep inherits every result
// the coordinator has already collected.
func (c *Cache) Save(w io.Writer) error {
	c.mu.Lock()
	cf := cacheFile{Version: cacheFileVersion, Entries: make(map[string]cacheFileEntry, len(c.m))}
	for k, e := range c.m {
		cf.Entries[fmt.Sprintf("%016x", k)] = cacheFileEntry{Result: e.res, ElapsedNs: int64(e.elapsed)}
	}
	c.mu.Unlock()
	return json.NewEncoder(w).Encode(&cf)
}

// Load merges a cache wire form read from r into this one. Unreadable
// or version-mismatched payloads are discarded wholesale — a cache can
// always be rebuilt, so suspicion means invalidation, never failure.
// Existing entries win over incoming ones.
func (c *Cache) Load(r io.Reader) error {
	var cf cacheFile
	if err := json.NewDecoder(r).Decode(&cf); err != nil {
		return nil
	}
	if cf.Version != cacheFileVersion {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range cf.Entries {
		key, err := strconv.ParseUint(k, 16, 64)
		if err != nil || e.Result == nil {
			continue
		}
		if _, ok := c.m[key]; !ok {
			c.m[key] = cacheEntry{res: e.Result, elapsed: time.Duration(e.ElapsedNs)}
		}
	}
	return nil
}

// SaveFile persists the cache beside a sweep's journal, atomically
// (temp file + rename). Entries survive process restarts; a later
// LoadFile restores them.
func (c *Cache) SaveFile(path string) error {
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile merges a saved cache into this one. A missing file is not
// an error (a first run has nothing to load); see Load for the
// invalidation policy.
func (c *Cache) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return err
	}
	defer f.Close()
	return c.Load(f)
}

// Fingerprint hashes everything that determines the job's outcome: the
// controller label/key, the derived seed, every scalar field of the sim
// configuration, and the complete profile contents. Two jobs with equal
// fingerprints simulate identical scenarios.
func (j *Job) Fingerprint() uint64 {
	h := fnv.New64a()
	io.WriteString(h, j.Controller.Label)
	io.WriteString(h, "\x00")
	io.WriteString(h, j.Controller.Key)
	// The scalar configuration, minus pointer-valued fields: pointers
	// would print as addresses and change on every expansion, so their
	// contents are hashed separately below.
	cfg := j.Config
	cfg.Profile = nil
	eff := cfg.Powertrain.Efficiency
	cfg.Powertrain.Efficiency = nil
	flt := cfg.Faults
	cfg.Faults = nil
	th := cfg.Thermal
	cfg.Thermal = nil
	// Telemetry never changes the simulated trajectory, and a sink's %+v
	// would print pointer addresses — fingerprints must not depend on it.
	cfg.Telemetry = nil
	fmt.Fprintf(h, "\x00%d\x00%+v", j.Seed, cfg)
	if !flt.Empty() {
		// The fault spec is pure data; its %+v prints the full schedule.
		fmt.Fprintf(h, "\x00faults:%+v", *flt)
	}
	if th != nil {
		// The thermal-network config is pure data.
		fmt.Fprintf(h, "\x00thermal:%+v", *th)
	}

	var buf [8]byte
	word := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	if eff != nil {
		word(eff.RatedPowerW)
		for _, v := range eff.SpeedsMs {
			word(v)
		}
		for _, v := range eff.LoadFracs {
			word(v)
		}
		for _, row := range eff.Eta {
			for _, v := range row {
				word(v)
			}
		}
	}

	p := j.Config.Profile
	fmt.Fprintf(h, "\x00%s\x00%d\x00", p.Name, len(p.Samples))
	word(p.Dt)
	for i := range p.Samples {
		s := &p.Samples[i]
		word(s.Time)
		word(s.Speed)
		word(s.Accel)
		word(s.SlopePercent)
		word(s.AmbientC)
		word(s.SolarW)
		word(s.WindMs)
	}
	return h.Sum64()
}
