// Package runner is the parallel scenario-sweep engine: it takes a
// declarative sweep specification — sets of controllers, drive cycles,
// ambient conditions, targets, and seeds — expands it into a stable,
// spec-ordered job list, executes the jobs across a worker pool, and
// aggregates the sim.Results in spec order regardless of scheduling.
//
// Guarantees:
//
//   - Deterministic replay: job i of a spec always simulates exactly the
//     same scenario with the same derived seed, so a sweep run with any
//     worker count produces bit-identical results to the sequential run
//     (proven by TestParallelMatchesSequential).
//   - Stable output order: Sweep.Jobs[i] corresponds to the i-th job of
//     the expansion, independent of completion order.
//   - Fault isolation: a panicking scenario is captured into its
//     JobResult.Err; the remaining jobs still run.
//   - Cancellation: a cancelled context stops dispatch; jobs that never
//     ran carry the context error.
//
// The expansion order is cycles (outermost), then environments, then
// targets, then fault scenarios, then controllers (innermost), so one
// "cell" — every controller on one scenario — occupies a contiguous block
// of the output (see Sweep.Cells).
package runner

import (
	"fmt"

	"evclimate/internal/control"
	"evclimate/internal/drivecycle"
	"evclimate/internal/faults"
	"evclimate/internal/sim"
)

// Env is one ambient-condition cell of a sweep: a constant outside
// temperature and solar load applied onto each cycle's profile.
type Env struct {
	// AmbientC is the outside air temperature, °C.
	AmbientC float64
	// SolarW is the solar thermal load on the cabin, W.
	SolarW float64
}

// CycleSpec names one drive-profile source. Exactly one of Name, Profile,
// or Gen must be set.
type CycleSpec struct {
	// Name resolves a standard cycle through drivecycle.ByName and
	// samples it at 1 s.
	Name string
	// Profile uses an explicit, fully prepared profile. The profile is
	// treated as read-only and may be shared between jobs.
	Profile *drivecycle.Profile
	// Gen synthesizes a profile from the cycle's derived seed (Monte-
	// Carlo sweeps). It is called once per cycle during expansion; all
	// controllers and environments of the cycle share the result.
	Gen func(seed int64) (*drivecycle.Profile, error)
	// Label overrides the cycle label recorded in Job.Cycle (defaults to
	// the resolved profile name).
	Label string
}

// ControllerSpec names a controller family and builds fresh instances.
// Instances are never shared between jobs, so New must return an
// independent controller each call and be safe to call concurrently.
type ControllerSpec struct {
	// Label identifies the controller in results and in the cache key.
	Label string
	// Key distinguishes controller configurations that share a label in
	// the result cache; set it when the same Label can carry different
	// tuning (see MPCSpec).
	Key string
	// ControlDt overrides the sim control period for this controller
	// (0 = the sweep template's period).
	ControlDt float64
	// ForecastSteps is the preview window handed to the controller.
	ForecastSteps int
	// New builds a fresh controller instance.
	New func() (control.Controller, error)
	// Fallbacks, when the pool retries a failed job (Options.Retry),
	// are tried in order on successive attempts — the degradation
	// ladder as a retry-escalation policy: full MPC → short-horizon
	// MPC → fuzzy. The last rung repeats once exhausted. Fallbacks do
	// not enter the job fingerprint; escalated results are never
	// cached.
	Fallbacks []ControllerSpec
}

// Spec is a declarative sweep: the cross-product of Cycles × Envs ×
// Targets × Controllers, each cell one closed-loop simulation.
type Spec struct {
	// Controllers are the compared controller families (innermost
	// expansion dimension).
	Controllers []ControllerSpec
	// Cycles are the drive-profile sources (outermost dimension).
	Cycles []CycleSpec
	// Envs are the ambient conditions applied to each cycle. Empty
	// leaves the cycles' profiles untouched (they already carry their
	// environment).
	Envs []Env
	// Targets are the cabin target temperatures. Empty inherits the
	// template's target (24 °C by default).
	Targets []float64
	// Faults are the fault scenarios swept over each scenario cell
	// (between targets and controllers in the expansion). Empty runs
	// fault-free; include faults.Spec{} (the empty scenario) alongside
	// real ones to compare faulted against clean runs in one sweep.
	Faults []faults.Spec
	// ComfortBandC is the comfort-zone half width (0 = template value).
	ComfortBandC float64
	// MaxProfileS truncates every profile (0 = full length).
	MaxProfileS float64
	// BaseSeed seeds the per-job and per-cycle derived seeds. Two sweeps
	// with equal specs and seeds are bit-identical.
	BaseSeed int64
	// StartFromAmbient starts each run from a soaked cabin instead of a
	// cabin preconditioned at the target temperature.
	StartFromAmbient bool
	// Base optionally overrides the simulation template (powertrain,
	// cabin, BMS, settle time, sub-steps). Its Profile field is ignored.
	Base *sim.Config
	// Mutate, when set, adjusts each job's final sim configuration after
	// expansion (applied before hashing, so the cache sees the change).
	Mutate func(cfg *sim.Config, job *Job)
}

// Job is one fully resolved scenario, ready to execute.
type Job struct {
	// Index is the job's position in the expansion.
	Index int
	// Cycle is the cycle label.
	Cycle string
	// Controller is the controller family to instantiate.
	Controller ControllerSpec
	// Env is the applied ambient cell (zero when Spec.Envs was empty).
	Env Env
	// TargetC is the cabin target temperature.
	TargetC float64
	// Fault is the injected fault scenario (nil when Spec.Faults was
	// empty or the cell is the empty scenario).
	Fault *faults.Spec
	// Seed is the job's derived deterministic seed (never a shared RNG):
	// mixed from Spec.BaseSeed and Index with splitmix64.
	Seed int64
	// Config is the complete simulation configuration.
	Config sim.Config
}

// deriveSeed mixes a base seed and an index into an independent stream
// seed (splitmix64 finalizer) — per-job determinism without shared RNG.
func deriveSeed(base int64, index int) int64 {
	z := uint64(base) + 0x9E3779B97F4A7C15*uint64(index+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// resolveProfile builds a cycle's base profile (before environment).
// maxS is the sweep's MaxProfileS: named cycles sample only that span up
// front (identical to sampling fully and truncating, without building
// the tail); explicit and generated profiles are truncated by Expand.
func (c *CycleSpec) resolveProfile(cycleSeed int64, maxS float64) (*drivecycle.Profile, error) {
	switch {
	case c.Gen != nil:
		return c.Gen(cycleSeed)
	case c.Profile != nil:
		return c.Profile, nil
	case c.Name != "":
		cyc, err := drivecycle.ByName(c.Name)
		if err != nil {
			return nil, err
		}
		return cyc.ProfileSpan(1, maxS), nil
	}
	return nil, fmt.Errorf("runner: cycle spec needs Name, Profile, or Gen")
}

// Expand resolves the spec into its ordered job list. Profiles are
// resolved once per (cycle, env) pair and shared read-only between the
// jobs of that cell.
func Expand(spec Spec) ([]Job, error) {
	if len(spec.Controllers) == 0 {
		return nil, fmt.Errorf("runner: spec has no controllers")
	}
	if len(spec.Cycles) == 0 {
		return nil, fmt.Errorf("runner: spec has no cycles")
	}
	envs := spec.Envs
	applyEnv := true
	if len(envs) == 0 {
		envs = []Env{{}}
		applyEnv = false
	}

	var jobs []Job
	for ci := range spec.Cycles {
		cs := &spec.Cycles[ci]
		// The cycle seed is deliberately distinct from job seeds so every
		// controller/environment of one generated cycle shares a profile.
		base, err := cs.resolveProfile(deriveSeed(spec.BaseSeed^0x5EED, ci), spec.MaxProfileS)
		if err != nil {
			return nil, fmt.Errorf("runner: cycle %d: %w", ci, err)
		}
		label := cs.Label
		if label == "" {
			label = base.Name
		}
		base = base.Truncate(spec.MaxProfileS)
		for _, env := range envs {
			p := base
			if applyEnv {
				p = p.WithEnv(env.AmbientC, env.SolarW)
			}
			targets := spec.Targets
			if len(targets) == 0 {
				targets = []float64{templateTarget(spec.Base, p)}
			}
			for _, target := range targets {
				fltSpecs := spec.Faults
				if len(fltSpecs) == 0 {
					fltSpecs = []faults.Spec{{}}
				}
				for _, flt := range fltSpecs {
					for _, ctrl := range spec.Controllers {
						cfg := templateConfig(spec.Base, p)
						cfg.TargetC = target
						if spec.ComfortBandC > 0 {
							cfg.ComfortBandC = spec.ComfortBandC
						}
						if spec.StartFromAmbient {
							cfg.UseAmbientStart = true
						} else {
							cfg.InitialCabinC = target
						}
						if ctrl.ControlDt > 0 {
							cfg.ControlDt = ctrl.ControlDt
						}
						cfg.ForecastSteps = ctrl.ForecastSteps

						job := Job{
							Index:      len(jobs),
							Cycle:      label,
							Controller: ctrl,
							Env:        env,
							TargetC:    target,
							Seed:       deriveSeed(spec.BaseSeed, len(jobs)),
							Config:     cfg,
						}
						if !flt.Empty() {
							f := flt
							job.Fault = &f
							job.Config.Faults = &f
							job.Config.FaultSeed = job.Seed
						}
						if spec.Mutate != nil {
							spec.Mutate(&job.Config, &job)
						}
						jobs = append(jobs, job)
					}
				}
			}
		}
	}
	return jobs, nil
}

// templateConfig copies the sweep's simulation template for one profile.
func templateConfig(base *sim.Config, p *drivecycle.Profile) sim.Config {
	if base == nil {
		return sim.DefaultConfig(p)
	}
	cfg := *base
	cfg.Profile = p
	return cfg
}

// templateTarget returns the template's target temperature.
func templateTarget(base *sim.Config, p *drivecycle.Profile) float64 {
	return templateConfig(base, p).TargetC
}
