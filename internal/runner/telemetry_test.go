package runner

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"evclimate/internal/faults"
	"evclimate/internal/telemetry"
)

// telemetrySpec is the observability test scenario: truncated ECE_EUDC,
// both cheap baselines, a clean run plus the stuck-sensor fault so every
// label dimension (cycle, controller, scenario) is exercised.
func telemetrySpec(t *testing.T) Spec {
	t.Helper()
	stuck, err := faults.Builtin("stuck")
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Controllers: []ControllerSpec{OnOffSpec(1), FuzzySpec(1)},
		Cycles:      []CycleSpec{{Name: "ECE_EUDC"}},
		Envs:        []Env{{AmbientC: 35, SolarW: 400}},
		Faults:      []faults.Spec{{Name: "none"}, stuck},
		MaxProfileS: 150,
		BaseSeed:    20150601,
	}
}

// telemetryArtifacts runs the spec with full observability wiring and
// returns the three deterministic artifacts: the stitched JSONL step
// trace, the deterministic-filtered Prometheus dump, and the manifest.
func telemetryArtifacts(t *testing.T, workers int) (trace, metrics, manifest []byte) {
	t.Helper()
	reg := telemetry.NewRegistry()
	tl := &telemetry.TraceLog{}
	man := telemetry.NewManifest("test")
	sw, err := Run(context.Background(), telemetrySpec(t), Options{
		Workers:       workers,
		Telemetry:     reg,
		TraceLog:      tl,
		Manifest:      man,
		ManifestLabel: "telemetry-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if sw.Metrics == nil {
		t.Fatal("Sweep.Metrics nil despite Options.Telemetry")
	}

	var tb bytes.Buffer
	if err := tl.WriteJSONL(&tb, false); err != nil {
		t.Fatal(err)
	}
	var mb bytes.Buffer
	if err := reg.Snapshot(telemetry.DeterministicFilter).WritePrometheus(&mb); err != nil {
		t.Fatal(err)
	}
	man.Finalize("test-fixed-version", reg.Snapshot(telemetry.DeterministicFilter))
	var mfb bytes.Buffer
	if err := man.Write(&mfb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), mb.Bytes(), mfb.Bytes()
}

// TestSweepTelemetryWorkerCountDeterminism pins the acceptance criterion:
// the JSONL trace, the deterministic metric dump, and the run manifest
// are byte-identical whether the sweep runs sequentially or across a
// worker pool.
func TestSweepTelemetryWorkerCountDeterminism(t *testing.T) {
	tr1, me1, ma1 := telemetryArtifacts(t, 1)
	tr4, me4, ma4 := telemetryArtifacts(t, 4)

	if !bytes.Equal(tr1, tr4) {
		t.Errorf("JSONL step trace differs between 1 and 4 workers:\n--- workers=1 ---\n%.2000s\n--- workers=4 ---\n%.2000s", tr1, tr4)
	}
	if !bytes.Equal(me1, me4) {
		t.Errorf("deterministic metric dump differs between 1 and 4 workers:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", me1, me4)
	}
	if !bytes.Equal(ma1, ma4) {
		t.Errorf("manifest differs between 1 and 4 workers:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", ma1, ma4)
	}
	if len(tr1) == 0 {
		t.Error("step trace is empty — jobs emitted no spans")
	}
	for _, want := range []string{"sim_steps_total", "runner_jobs_total", `scenario="stuck"`} {
		if !strings.Contains(string(me1), want) {
			t.Errorf("metric dump missing %q", want)
		}
	}
}

// TestSweepTelemetryRace hammers one shared registry from the sweep's
// worker pool while a reader concurrently snapshots it — the test's
// value is under `go test -race`.
func TestSweepTelemetryRace(t *testing.T) {
	reg := telemetry.NewRegistry()
	tl := &telemetry.TraceLog{}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := reg.Snapshot(nil)
			var sb strings.Builder
			if err := snap.WritePrometheus(&sb); err != nil {
				t.Errorf("concurrent WritePrometheus: %v", err)
				return
			}
		}
	}()

	sw, err := Run(context.Background(), telemetrySpec(t), Options{
		Workers:   8,
		Telemetry: reg,
		TraceLog:  tl,
	})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.FirstErr(); err != nil {
		t.Fatal(err)
	}

	// Atomic adds commute: the final step count equals the sum of every
	// job's simulated steps regardless of interleaving.
	var steps float64
	for _, m := range reg.Snapshot(nil) {
		if m.Name == "sim_steps_total" {
			steps += m.Value
		}
	}
	if want := float64(tl.Len()); steps != want {
		t.Errorf("sim_steps_total sums to %.0f, want %.0f (= traced spans)", steps, want)
	}
}

// TestGoldenManifest pins the deterministic identity of the truncated
// ECE_EUDC telemetry sweep: every job's derived seed and scenario
// fingerprint, and the sweep fingerprint over them. A failure here means
// seed derivation, spec expansion order, or the fingerprint hash changed
// — all of which silently invalidate cached results and recorded
// manifests, so any change must be deliberate (update the goldens in the
// same commit that changes the scheme).
func TestGoldenManifest(t *testing.T) {
	jobs, err := Expand(telemetrySpec(t))
	if err != nil {
		t.Fatal(err)
	}
	ri := ManifestRunInfo("golden", 20150601, jobs)

	const wantSweepFP = "c9914d5283a5952a"
	want := []struct {
		cycle, controller, scenario string
		seed                        int64
		fp                          string
	}{
		{"ECE_EUDC", "On/Off", "", -2711457506983803706, "ffca455e0ff0cfc7"},
		{"ECE_EUDC", "Fuzzy-based", "", 5494506592831746107, "05a787340d42ede3"},
		{"ECE_EUDC", "On/Off", "stuck", -1735793612705131672, "c1912879e577f43a"},
		{"ECE_EUDC", "Fuzzy-based", "stuck", -3557642015698659178, "b650281f5f02ec07"},
	}

	if len(ri.Jobs) != len(want) {
		t.Fatalf("expanded to %d jobs, want %d", len(ri.Jobs), len(want))
	}
	if ri.Fingerprint != wantSweepFP {
		t.Errorf("sweep fingerprint = %q, want %q", ri.Fingerprint, wantSweepFP)
	}
	for i, w := range want {
		j := ri.Jobs[i]
		if j.Cycle != w.cycle || j.Controller != w.controller || j.Scenario != w.scenario {
			t.Errorf("job %d = (%s, %s, %q), want (%s, %s, %q)",
				i, j.Cycle, j.Controller, j.Scenario, w.cycle, w.controller, w.scenario)
		}
		if j.Seed != w.seed {
			t.Errorf("job %d seed = %d, want %d", i, j.Seed, w.seed)
		}
		if j.Fingerprint != w.fp {
			t.Errorf("job %d fingerprint = %q, want %q", i, j.Fingerprint, w.fp)
		}
	}
	if t.Failed() {
		t.Logf("actual golden values:\nsweep %s", ri.Fingerprint)
		for _, j := range ri.Jobs {
			t.Logf("  {%q, %q, %q, %d, %q},", j.Cycle, j.Controller, j.Scenario, j.Seed, j.Fingerprint)
		}
	}
}
