package runner

import (
	"fmt"

	"evclimate/internal/cabin"
	"evclimate/internal/control"
	"evclimate/internal/core"
)

// Canned controller specs for the paper's three methodologies. Labels
// match the controllers' Name() strings, so Result.Controller and
// Job.Controller.Label agree.

// OnOffSpec is the switching thermostat baseline at the given control
// period (0 = the sweep template's period).
func OnOffSpec(controlDt float64) ControllerSpec {
	return ControllerSpec{
		Label:     "On/Off",
		ControlDt: controlDt,
		New: func() (control.Controller, error) {
			m, err := cabin.New(cabin.Default())
			if err != nil {
				return nil, err
			}
			return control.NewOnOff(m), nil
		},
	}
}

// FuzzySpec is the fuzzy-based baseline at the given control period.
func FuzzySpec(controlDt float64) ControllerSpec {
	return ControllerSpec{
		Label:     "Fuzzy-based",
		ControlDt: controlDt,
		New: func() (control.Controller, error) {
			m, err := cabin.New(cabin.Default())
			if err != nil {
				return nil, err
			}
			return control.NewFuzzy(m), nil
		},
	}
}

// MPCSpec is the battery lifetime-aware MPC with the given configuration,
// running at controlDt (0 = the MPC's own prediction period cfg.Dt). The
// preview window covers the MPC horizon even when the controller is
// called more often than it predicts.
func MPCSpec(cfg core.Config, controlDt float64) ControllerSpec {
	if cfg.Horizon <= 0 {
		cfg.Horizon = core.DefaultConfig().Horizon
	}
	if cfg.Dt <= 0 {
		cfg.Dt = core.DefaultConfig().Dt
	}
	if controlDt <= 0 {
		controlDt = cfg.Dt
	}
	steps := cfg.Horizon * int(cfg.Dt/controlDt+0.5)
	if steps < cfg.Horizon {
		steps = cfg.Horizon
	}
	return ControllerSpec{
		Label:         "Battery Lifetime-aware",
		Key:           fmt.Sprintf("%+v", cfg),
		ControlDt:     controlDt,
		ForecastSteps: steps,
		New: func() (control.Controller, error) {
			return core.New(cfg)
		},
	}
}

// ThermalMPCSpec is the cold-climate co-scheduling MPC: the lifetime-
// aware controller with the battery-thermal extension enabled, deciding
// cabin HVAC and battery heater/chiller jointly. Pair it with a sim
// template whose Thermal network matches the controller's prediction
// model (the sweep's Base config).
func ThermalMPCSpec(cfg core.Config, controlDt float64) ControllerSpec {
	if !cfg.Thermal.Enabled {
		cfg.Thermal = core.DefaultThermalOptions()
	}
	sp := MPCSpec(cfg, controlDt)
	sp.Label = "Thermal Co-scheduling"
	return sp
}

// MPCEscalation is the retry-escalation ladder for an MPC spec: a
// short-horizon MPC (mirroring core.NewSupervised's fallback rung —
// horizon max(4, N/3), halved SQP budget), then the fuzzy baseline.
// Attach it to an MPC ControllerSpec's Fallbacks so a job the watchdog
// killed retries on progressively cheaper controllers instead of
// failing outright.
func MPCEscalation(cfg core.Config, controlDt float64) []ControllerSpec {
	if cfg.Horizon <= 0 {
		cfg.Horizon = core.DefaultConfig().Horizon
	}
	if cfg.Dt <= 0 {
		cfg.Dt = core.DefaultConfig().Dt
	}
	short := cfg
	short.Horizon = cfg.Horizon / 3
	if short.Horizon < 4 {
		short.Horizon = 4
	}
	if short.SQP.MaxIter > 1 {
		short.SQP.MaxIter /= 2
	}
	return []ControllerSpec{MPCSpec(short, controlDt), FuzzySpec(controlDt)}
}

// SupervisedMPCSpec is the battery lifetime-aware MPC wrapped in the full
// degradation ladder (full MPC → short-horizon MPC → fuzzy → on/off safe
// mode) behind the control.Supervisor watchdog. This is the controller
// fault sweeps exercise: the bare MPC spec has no recovery structure.
func SupervisedMPCSpec(cfg core.SupervisedConfig, controlDt float64) ControllerSpec {
	// Mirror the defaulting core.New applies, without mutating cfg (a
	// zero cfg.MPC means "use core.DefaultConfig" to NewSupervised).
	horizon, dt := cfg.MPC.Horizon, cfg.MPC.Dt
	if horizon <= 0 {
		horizon = core.DefaultConfig().Horizon
	}
	if dt <= 0 {
		dt = core.DefaultConfig().Dt
	}
	if controlDt <= 0 {
		controlDt = dt
	}
	steps := horizon * int(dt/controlDt+0.5)
	if steps < horizon {
		steps = horizon
	}
	return ControllerSpec{
		Label:         "Supervised MPC",
		Key:           fmt.Sprintf("%+v", cfg),
		ControlDt:     controlDt,
		ForecastSteps: steps,
		New: func() (control.Controller, error) {
			return core.NewSupervised(cfg)
		},
	}
}
