package runner

// Sweep-level batch-vs-scalar equivalence. The sim package's property
// tests prove each batched lane bit-identical to a scalar run; these
// tests pin the pool's half of the contract — unit planning follows the
// expansion order alone, engages only where eligible, and a batched
// sweep's results are bit-identical to the scalar pool at any worker
// count or batch size.

import (
	"context"
	"reflect"
	"testing"
)

// batchSweepSpec is a small grid whose jobs all qualify for batching:
// two batchable controller families over two cycles sharing a truncated
// time grid, two environments, one target — 8 jobs, 4 per family.
func batchSweepSpec() Spec {
	return Spec{
		Controllers: []ControllerSpec{OnOffSpec(1), FuzzySpec(1)},
		Cycles:      []CycleSpec{{Name: "ECE15"}, {Name: "UDDS"}},
		Envs:        []Env{{AmbientC: 35, SolarW: 400}, {AmbientC: 10}},
		Targets:     []float64{24},
		MaxProfileS: 150,
		BaseSeed:    99,
	}
}

// TestBatchSweepMatchesScalar runs the same spec through the scalar pool
// and through batched pools at several (workers, batch size) points and
// requires bitwise-identical results job for job.
func TestBatchSweepMatchesScalar(t *testing.T) {
	ctx := context.Background()
	spec := batchSweepSpec()
	base, err := Run(ctx, spec, Options{Workers: 1, BatchSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := base.FirstErr(); err != nil {
		t.Fatal(err)
	}

	variants := []struct {
		name string
		opts Options
	}{
		{"default batch, 1 worker", Options{Workers: 1}},
		{"default batch, 4 workers", Options{Workers: 4}},
		{"batch of 3, 4 workers", Options{Workers: 4, BatchSize: 3}},
	}
	for _, v := range variants {
		sw, err := Run(ctx, spec, v.opts)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if err := sw.FirstErr(); err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if len(sw.Jobs) != len(base.Jobs) {
			t.Fatalf("%s: %d jobs, want %d", v.name, len(sw.Jobs), len(base.Jobs))
		}
		for i := range sw.Jobs {
			jr, br := &sw.Jobs[i], &base.Jobs[i]
			if jr.Job.Index != br.Job.Index || jr.Job.Seed != br.Job.Seed {
				t.Fatalf("%s: job %d identity mismatch", v.name, i)
			}
			if !reflect.DeepEqual(jr.Result, br.Result) {
				t.Errorf("%s: job %d (%s on %s): batched result differs from scalar",
					v.name, i, jr.Job.Controller.Label, jr.Job.Cycle)
			}
		}
	}
}

// TestPlanUnitsDeterministic pins the planner: units cover every pending
// job exactly once, lanes of one unit share a controller family, the
// grid above actually forms multi-lane batches, and the plan is a pure
// function of the job list.
func TestPlanUnitsDeterministic(t *testing.T) {
	jobs, err := Expand(batchSweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	plan := func(opts Options) [][]int {
		pe := &poolEnv{opts: opts, jobs: jobs}
		return pe.planUnits(make([]bool, len(jobs)))
	}

	units := plan(Options{})
	seen := make(map[int]bool)
	batched := 0
	for _, u := range units {
		if len(u) == 0 {
			t.Fatal("empty unit")
		}
		label := jobs[u[0]].Controller.Label
		for _, i := range u {
			if seen[i] {
				t.Fatalf("job %d scheduled twice", i)
			}
			seen[i] = true
			if jobs[i].Controller.Label != label {
				t.Fatalf("unit mixes controller families %q and %q", label, jobs[i].Controller.Label)
			}
		}
		if len(u) > 1 {
			batched++
		}
	}
	if len(seen) != len(jobs) {
		t.Fatalf("plan covers %d of %d jobs", len(seen), len(jobs))
	}
	if batched == 0 {
		t.Fatal("no multi-lane units: batching never engaged on an all-eligible grid")
	}
	if again := plan(Options{}); !reflect.DeepEqual(units, again) {
		t.Fatal("plan is not deterministic for a fixed job list")
	}

	// Disabling batching — explicitly or via a mode that needs per-job
	// execution control — degenerates the plan to singletons.
	for _, opts := range []Options{
		{BatchSize: -1},
		{Retry: RetryPolicy{MaxAttempts: 2}},
	} {
		for _, u := range plan(opts) {
			if len(u) != 1 {
				t.Fatalf("opts %+v: expected singleton units, got lane count %d", opts, len(u))
			}
		}
	}
}
