package runner

import (
	"context"
	"testing"

	"evclimate/internal/core"
	"evclimate/internal/sim"
	"evclimate/internal/sqp"
)

// The conformance suite: every controller family must satisfy the
// physical invariants of sim.CheckInvariants on every standard scenario —
// SoC bounded and consumed, actuator limits respected, cabin settled into
// the comfort band, and the energy bookkeeping closed. New controllers
// plug in by adding a ControllerSpec; new scenarios by adding a cell.

// conformanceControllers returns the three controller families of the
// paper. The MPC runs with a reduced SQP budget: the invariants do not
// depend on squeezing out the last milli-percent of the objective, and
// the suite covers many cells.
func conformanceControllers() []ControllerSpec {
	mcfg := core.DefaultConfig()
	mcfg.SQP = sqp.Options{MaxIter: 10, Tol: 1e-4}
	return []ControllerSpec{
		OnOffSpec(1),
		FuzzySpec(1),
		MPCSpec(mcfg, mcfg.Dt),
	}
}

func TestControllerConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance sweep is minutes of simulation")
	}
	cells := []struct {
		name        string
		spec        Spec
		tol         sim.Tolerances
		startSoaked bool
	}{
		{
			// The paper's headline scenario: hot day, full urban cycle.
			name: "ECE15_hot",
			spec: Spec{
				Cycles: []CycleSpec{{Name: "ECE15"}},
				Envs:   []Env{{AmbientC: 35, SolarW: 400}},
			},
			tol: sim.DefaultTolerances(),
		},
		{
			// Longer urban cycle, hot day, truncated for test time.
			name: "UDDS_hot",
			spec: Spec{
				Cycles:      []CycleSpec{{Name: "UDDS"}},
				Envs:        []Env{{AmbientC: 35, SolarW: 400}},
				MaxProfileS: 400,
			},
			tol: sim.DefaultTolerances(),
		},
		{
			// Aggressive highway cycle on a freezing day: heating mode,
			// heavy regen. Regen charging makes the Peukert bookkeeping
			// looser, so the closure tolerance widens.
			name: "US06_cold",
			spec: Spec{
				Cycles:      []CycleSpec{{Name: "US06"}},
				Envs:        []Env{{AmbientC: 0, SolarW: 0}},
				MaxProfileS: 300,
			},
			tol: func() sim.Tolerances {
				tol := sim.DefaultTolerances()
				tol.EnergyClosureRel = 0.25
				return tol
			}(),
		},
	}

	for _, cell := range cells {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			t.Parallel()
			spec := cell.spec
			spec.Controllers = conformanceControllers()
			sw, err := Run(context.Background(), spec, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := range sw.Jobs {
				jr := &sw.Jobs[i]
				if jr.Err != nil {
					t.Errorf("%s: run failed: %v", jr.Job.Controller.Label, jr.Err)
					continue
				}
				if err := sim.CheckInvariants(jr.Job.Config, jr.Result, cell.tol); err != nil {
					t.Errorf("%s violates invariants: %v", jr.Job.Controller.Label, err)
				}
			}
		})
	}
}
