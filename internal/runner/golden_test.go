package runner

import (
	"context"
	"math"
	"testing"

	"evclimate/internal/core"
)

// Golden regression pin: the three controllers on the first 600 s of the
// ECE_EUDC cycle, hot day (35 °C, 400 W solar), soaked cabin, default
// configurations. The
// committed values were produced by this exact scenario; a change beyond
// tolerance means the simulation physics, a controller, or the sweep
// engine changed behaviour — bump the goldens only when that change is
// intended and understood.
//
// Tolerances are relative (1e-3) for the power and degradation metrics to
// absorb cross-architecture FMA/rounding differences, and absolute for
// the comfort violation fraction (a ratio of step counts).

type goldenRow struct {
	label                string
	avgHVACW             float64
	deltaSoH             float64
	comfortViolationFrac float64
}

func goldenControllers() []ControllerSpec {
	return []ControllerSpec{
		OnOffSpec(1),
		FuzzySpec(1),
		MPCSpec(core.DefaultConfig(), 0),
	}
}

var goldens = []goldenRow{
	{"On/Off", 6232.32, 0.01262321064, 0.4736842105},
	{"Fuzzy-based", 3953.730325, 0.01028015854, 0.8989473684},
	// MPC row regenerated for the stage-structured solver backend
	// (stage-major decision vector, block-diagonal BFGS, exact
	// heater/cooler complementarity on the emitted move).
	{"Battery Lifetime-aware", 4855.581178, 0.01172499523, 0.3368421053},
}

func TestGoldenRegression(t *testing.T) {
	spec := Spec{
		Controllers:      goldenControllers(),
		Cycles:           []CycleSpec{{Name: "ECE_EUDC"}},
		Envs:             []Env{{AmbientC: 35, SolarW: 400}},
		MaxProfileS:      600,
		StartFromAmbient: true,
	}
	sw, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if len(sw.Jobs) != len(goldens) {
		t.Fatalf("jobs = %d, want %d", len(sw.Jobs), len(goldens))
	}
	relClose := func(got, want, tol float64) bool {
		return math.Abs(got-want) <= tol*math.Abs(want)
	}
	for i, g := range goldens {
		jr := &sw.Jobs[i]
		if jr.Job.Controller.Label != g.label {
			t.Errorf("job %d: controller %q, want %q", i, jr.Job.Controller.Label, g.label)
			continue
		}
		res := jr.Result
		if !relClose(res.AvgHVACW, g.avgHVACW, 1e-3) {
			t.Errorf("%s: AvgHVACW = %.10g, golden %.10g", g.label, res.AvgHVACW, g.avgHVACW)
		}
		if !relClose(res.DeltaSoH, g.deltaSoH, 1e-3) {
			t.Errorf("%s: DeltaSoH = %.10g, golden %.10g", g.label, res.DeltaSoH, g.deltaSoH)
		}
		if math.Abs(res.ComfortViolationFrac-g.comfortViolationFrac) > 5e-3 {
			t.Errorf("%s: ComfortViolationFrac = %.10g, golden %.10g",
				g.label, res.ComfortViolationFrac, g.comfortViolationFrac)
		}
	}
}
