package runner

import (
	"context"
	"errors"
	"time"
)

// ErrJobPanicked wraps a panic captured from a job's simulation, so
// retry policies can distinguish a crashed job (retryable) from a
// configuration error (not).
var ErrJobPanicked = errors.New("panicked")

// RetryPolicy bounds re-execution of jobs that crash or overrun the
// watchdog. Only panics and watchdog deadline overruns are retried;
// deterministic failures (bad config, solver divergence reported as an
// error) would fail identically again and are not.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first
	// (≤ 1 = no retry).
	MaxAttempts int
	// BaseBackoff is the first retry's delay (0 = 100 ms). Attempt n
	// waits BaseBackoff·2ⁿ⁻¹, capped at MaxBackoff, with seeded jitter
	// in [delay/2, delay].
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (0 = 5 s).
	MaxBackoff time.Duration
}

// Retryable reports whether a job failure is worth re-running: a
// captured panic or a watchdog timeout. Parent-context cancellation is
// not retryable — the sweep is shutting down.
func Retryable(err error) bool {
	return errors.Is(err, ErrJobPanicked) || errors.Is(err, context.DeadlineExceeded)
}

// Delay is the wait before retry attempt n (n ≥ 1 counts failed
// attempts so far): exponential growth with a deterministic jitter
// derived from the seed and attempt number (splitmix64), so retry
// schedules are reproducible per job yet decorrelated across the pool.
// It is the single backoff policy of the stack: job retry and the
// fabric's lease reclaim both derive their waits here, so the two
// paths cannot drift.
func (p RetryPolicy) Delay(seed int64, attempt int) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxB := p.MaxBackoff
	if maxB <= 0 {
		maxB = 5 * time.Second
	}
	d := base
	for i := 1; i < attempt && d < maxB; i++ {
		d *= 2
	}
	if d > maxB {
		d = maxB
	}
	// Jitter in [d/2, d], seeded by (job seed, attempt).
	half := d / 2
	if half <= 0 {
		return d
	}
	jit := time.Duration(uint64(deriveSeed(seed^0x0BACC0FF, attempt)) % uint64(half+1))
	return half + jit
}

// sleepBackoff waits the attempt's backoff or returns early (false)
// when the context cancels.
func sleepBackoff(ctx context.Context, p RetryPolicy, seed int64, attempt int) bool {
	t := time.NewTimer(p.Delay(seed, attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// fallbackSpec returns the controller spec for the retry after
// `failed` failed attempts, escalating through the job's fallback
// ladder (Fallbacks[0] after the first failure, and so on; the last
// rung repeats once exhausted). Nil when the job has no fallbacks.
func fallbackSpec(primary *ControllerSpec, failed int) *ControllerSpec {
	if len(primary.Fallbacks) == 0 || failed <= 0 {
		return nil
	}
	i := failed - 1
	if i >= len(primary.Fallbacks) {
		i = len(primary.Fallbacks) - 1
	}
	return &primary.Fallbacks[i]
}
