package runner

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"evclimate/internal/control"
	"evclimate/internal/sim"
	"evclimate/internal/telemetry"
)

// Options tunes sweep execution.
type Options struct {
	// Workers is the worker-pool size (0 = GOMAXPROCS).
	Workers int
	// Cache, when non-nil, skips jobs whose scenario fingerprint already
	// holds a result (opt-in; see Cache).
	Cache *Cache
	// Progress, when non-nil, is called after each job completes with
	// the number of finished jobs, the total, and the finished job's
	// result. Calls are serialized; done is strictly increasing.
	Progress func(done, total int, jr *JobResult)
	// Telemetry, when non-nil, is the sweep's shared metric registry:
	// each job runs under a sink labeled by cycle, controller, and fault
	// scenario over this registry, and the pool counts job outcomes and
	// durations on it. Atomic metric updates commute, so the aggregated
	// deterministic series are worker-count-independent. Note that cache
	// hits skip the simulation and therefore emit no per-step metrics.
	Telemetry *telemetry.Registry
	// TraceLog, when non-nil, collects every job's step spans, stitched
	// in expansion order after all jobs finish — deterministic at any
	// worker count. It works with or without a Telemetry registry.
	TraceLog *telemetry.TraceLog
	// TraceSteps caps each job's step-trace ring when TraceLog is set
	// (0 = telemetry.DefaultTraceCap).
	TraceSteps int
	// Manifest, when non-nil, receives one RunInfo per Run call: the
	// sweep label, base seed, and every job's seed and fingerprint.
	Manifest *telemetry.Manifest
	// ManifestLabel names the sweep in the manifest.
	ManifestLabel string
	// Journal, when non-nil, enables the crash-safe job journal (and,
	// with CheckpointEvery, mid-job state checkpoints): each completed
	// job is appended to an fsync'd JSONL log, and a re-run with Resume
	// set replays finished jobs instead of re-simulating them. The
	// journal refuses to resume a sweep whose fingerprint or code
	// version changed.
	Journal *JournalConfig
	// OnRecord, when non-nil, receives each completed job's journal-form
	// record — exactly what journal mode appends — whether or not a disk
	// journal is configured. Jobs then run with job-private registries as
	// in journal mode, so each record carries the job's complete metric
	// contribution (requires Options.Telemetry). The distributed fabric's
	// workers stream these records back to their coordinator. Calls come
	// from worker goroutines; the callback must be concurrency-safe.
	OnRecord func(rec *JournalRecord)
	// JobTimeout, when positive, is the per-job watchdog: a wall-clock
	// deadline threaded into the simulation and checked every control
	// step, so a hung or runaway job aborts without stalling the pool.
	JobTimeout time.Duration
	// Retry re-runs jobs that panic or exceed the watchdog, with
	// exponential backoff and optional escalation through the job's
	// controller fallback ladder (ControllerSpec.Fallbacks).
	Retry RetryPolicy
	// BatchSize groups eligible jobs into lockstep SoA batches
	// (sim.BatchRunner): jobs sharing a batchable controller family and
	// a time grid are simulated N vehicles at a time, which is where the
	// sweep's throughput comes from on few-core machines. 0 uses
	// DefaultBatchSize; negative disables batching. Grouping follows
	// expansion order and is independent of Workers, so sweep outputs
	// stay worker-count-deterministic; each lane's result is bit-identical
	// to the scalar path. Batching disengages automatically for sweeps
	// running a journal, record streaming, retries, or a job watchdog —
	// those paths need per-job execution control.
	BatchSize int
}

// JobResult is one executed job's outcome.
type JobResult struct {
	// Job is the scenario that ran.
	Job Job
	// Result is the simulation outcome (nil on error). Cached results
	// are shared between sweeps and must be treated as read-only.
	Result *sim.Result
	// Err is the job's failure, including captured panics; other jobs
	// are unaffected.
	Err error
	// Elapsed is the job's wall-clock execution time, set on success,
	// error, and panic paths alike (0 on cache hit).
	Elapsed time.Duration
	// Saved, on a cache hit, is the wall-clock the cached result
	// originally cost — the time the hit avoided re-spending.
	Saved time.Duration
	// Cached reports that the result came from the cache.
	Cached bool
	// Instance is the controller instance that produced Result (nil on
	// cache hit), for post-run diagnostics such as solver statistics.
	Instance control.Controller
	// Attempts is the number of execution attempts the job took
	// (1 = first try; 0 only for jobs that never ran).
	Attempts int
	// AttemptErrs are the failures of earlier attempts when retry is
	// enabled; Err is the final attempt's outcome.
	AttemptErrs []error
	// Replayed reports the result came from a sweep journal instead of
	// a fresh simulation.
	Replayed bool
	// EscalatedTo, when retry escalation engaged, is the label of the
	// fallback controller that produced the final result.
	EscalatedTo string
}

// Sweep is an executed spec: results in expansion (spec) order.
type Sweep struct {
	// Spec is the expanded specification.
	Spec Spec
	// Jobs holds one result per job, in expansion order regardless of
	// scheduling.
	Jobs []JobResult
	// Metrics is the sweep-level metric snapshot, taken from the
	// Options.Telemetry registry after every job finished (nil when the
	// sweep ran without telemetry). It includes wall-clock series; apply
	// telemetry.DeterministicFilter before comparing across runs.
	Metrics telemetry.Snapshot
}

// FirstErr returns the first failed job's error, or nil.
func (s *Sweep) FirstErr() error {
	for i := range s.Jobs {
		if err := s.Jobs[i].Err; err != nil {
			return fmt.Errorf("runner: job %d (%s on %s): %w",
				s.Jobs[i].Job.Index, s.Jobs[i].Job.Controller.Label, s.Jobs[i].Job.Cycle, err)
		}
	}
	return nil
}

// JobErrors aggregates every failed job into one error (nil when all
// succeeded), so callers surface the complete failure list instead of
// only the first casualty.
func (s *Sweep) JobErrors() error {
	var errs []error
	for i := range s.Jobs {
		if err := s.Jobs[i].Err; err != nil {
			errs = append(errs, fmt.Errorf("job %d (%s on %s): %w",
				s.Jobs[i].Job.Index, s.Jobs[i].Job.Controller.Label, s.Jobs[i].Job.Cycle, err))
		}
	}
	return errors.Join(errs...)
}

// Failed returns the failed jobs' results in expansion order (empty
// when every job succeeded) — the aggregation CLI exit codes report.
func (s *Sweep) Failed() []*JobResult {
	var failed []*JobResult
	for i := range s.Jobs {
		if s.Jobs[i].Err != nil {
			failed = append(failed, &s.Jobs[i])
		}
	}
	return failed
}

// Cells groups the results into scenario cells: one block per
// (cycle, env, target, fault) combination holding every controller's
// result, in expansion order. Controllers are the innermost dimension, so
// cells are contiguous blocks of len(Spec.Controllers).
func (s *Sweep) Cells() [][]JobResult {
	n := len(s.Spec.Controllers)
	if n == 0 {
		return nil
	}
	cells := make([][]JobResult, 0, len(s.Jobs)/n)
	for i := 0; i+n <= len(s.Jobs); i += n {
		cells = append(cells, s.Jobs[i:i+n])
	}
	return cells
}

// CellMap keys one cell's results by controller label.
func CellMap(cell []JobResult) map[string]*sim.Result {
	out := make(map[string]*sim.Result, len(cell))
	for i := range cell {
		out[cell[i].Job.Controller.Label] = cell[i].Result
	}
	return out
}

// Run expands the spec and executes it on the worker pool. The returned
// error covers spec problems only; per-job failures (including captured
// panics) are reported in JobResult.Err — check Sweep.FirstErr.
func Run(ctx context.Context, spec Spec, opts Options) (*Sweep, error) {
	jobs, err := Expand(spec)
	if err != nil {
		return nil, err
	}
	results, err := RunJobs(ctx, jobs, opts)
	if err != nil {
		return nil, err
	}
	sw := &Sweep{Spec: spec, Jobs: results}
	if opts.Telemetry != nil {
		sw.Metrics = opts.Telemetry.Snapshot(nil)
	}
	if opts.Manifest != nil {
		opts.Manifest.AddRun(ManifestRunInfo(opts.ManifestLabel, spec.BaseSeed, jobs))
	}
	return sw, nil
}

// ManifestRunInfo builds the manifest record of one sweep: every job's
// seed and fingerprint plus a sweep fingerprint hashing the base seed
// and the job fingerprints in expansion order. The pool records it for
// every Run call; the distributed fabric's coordinator records the
// identical structure, so a fabric manifest is byte-comparable to a
// single-process one.
func ManifestRunInfo(label string, baseSeed int64, jobs []Job) telemetry.RunInfo {
	ri := telemetry.RunInfo{Label: label, BaseSeed: baseSeed, Jobs: make([]telemetry.JobInfo, 0, len(jobs))}
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(baseSeed))
	h.Write(buf[:])
	for i := range jobs {
		j := &jobs[i]
		fp := j.Fingerprint()
		binary.LittleEndian.PutUint64(buf[:], fp)
		h.Write(buf[:])
		info := telemetry.JobInfo{
			Index:       j.Index,
			Cycle:       j.Cycle,
			Controller:  j.Controller.Label,
			Seed:        j.Seed,
			Fingerprint: telemetry.FormatFingerprint(fp),
		}
		if j.Fault != nil {
			info.Scenario = j.Fault.Name
		}
		ri.Jobs = append(ri.Jobs, info)
	}
	ri.Fingerprint = telemetry.FormatFingerprint(h.Sum64())
	return ri
}

// RunJobs executes an explicit job list across the worker pool and
// returns results in job order.
func RunJobs(ctx context.Context, jobs []Job, opts Options) ([]JobResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	out := make([]JobResult, len(jobs))
	ran := make([]bool, len(jobs))

	// Per-job step-trace rings, stitched into the TraceLog in expansion
	// order after the pool drains so the log is worker-count-independent.
	var traces []*telemetry.StepTrace
	if opts.TraceLog != nil {
		traces = make([]*telemetry.StepTrace, len(jobs))
	}
	pe := &poolEnv{opts: opts, jobs: jobs, traces: traces}
	pe.resolveCounters()

	// Journal mode: open (or resume) the write-ahead log and replay the
	// finished jobs before any worker starts.
	if opts.Journal != nil {
		jnl, err := openSweepJournal(opts.Journal, opts.ManifestLabel, jobs)
		if err != nil {
			return nil, err
		}
		defer jnl.Close()
		pe.jnl = jnl
		replayed := 0
		for i := range jobs {
			rec := jnl.Replayed(jobs[i].Index)
			if rec == nil || rec.Err != "" {
				continue // never journaled, or failed: re-run it
			}
			jr, err := pe.replay(&jobs[i], i, rec)
			if err != nil {
				return nil, err
			}
			out[i] = jr
			ran[i] = true
			replayed++
		}
		if replayed > 0 && opts.Manifest != nil {
			opts.Manifest.AddResume(telemetry.ResumeInfo{
				Journal:          jnl.Path(),
				SweepFingerprint: jnl.Header().SweepFingerprint,
				ReplayedJobs:     replayed,
				Git:              jnl.Header().Git,
			})
		}
	}

	// Schedule the remaining jobs into units — single jobs, or SoA
	// batches of jobs sharing a batchable controller and a time grid.
	// Units are planned from the expansion order alone, so scheduling is
	// independent of the worker count.
	units := pe.planUnits(ran)

	feed := make(chan []int)
	go func() {
		defer close(feed)
		for _, u := range units {
			select {
			case feed <- u:
			case <-ctx.Done():
				return
			}
		}
	}()

	var mu sync.Mutex // serializes progress callbacks and the done count
	done := 0
	// Replayed jobs report progress up front, in expansion order.
	if opts.Progress != nil {
		for i := range out {
			if ran[i] {
				done++
				opts.Progress(done, len(jobs), &out[i])
			}
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for unit := range feed {
				if ctx.Err() != nil {
					return
				}
				if len(unit) == 1 {
					i := unit[0]
					out[i] = pe.runOne(ctx, i)
					ran[i] = true
					if opts.Progress != nil {
						mu.Lock()
						done++
						opts.Progress(done, len(jobs), &out[i])
						mu.Unlock()
					}
					continue
				}
				pe.runBatch(ctx, unit, out)
				for _, i := range unit {
					if ctx.Err() != nil && out[i].Result == nil && out[i].Err == nil {
						continue // aborted lane: filled with ctx.Err below
					}
					ran[i] = true
				}
				if opts.Progress != nil {
					mu.Lock()
					for _, i := range unit {
						if !ran[i] {
							continue
						}
						done++
						opts.Progress(done, len(jobs), &out[i])
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	for i := range out {
		if !ran[i] {
			out[i] = JobResult{Job: jobs[i], Err: ctx.Err()}
		}
	}
	if opts.TraceLog != nil {
		for i := range traces {
			if traces[i] == nil {
				continue
			}
			spans := traces[i].Spans()
			for k := range spans {
				spans[k].Job = jobs[i].Index
			}
			opts.TraceLog.Append(spans...)
		}
	}
	return out, nil
}

// jobLabels are the base labels every metric of one job's sink carries.
func jobLabels(j *Job) []telemetry.Label {
	ls := []telemetry.Label{telemetry.L("cycle", j.Cycle), telemetry.L("controller", j.Controller.Label)}
	if j.Fault != nil && j.Fault.Name != "" {
		ls = append(ls, telemetry.L("scenario", j.Fault.Name))
	}
	return ls
}

// execute runs one attempt of a job under the given controller spec
// (the job's own, or an escalation fallback), capturing panics into the
// result error so one diverging scenario cannot kill the sweep. The
// sink, when non-nil, replaces the job config's Telemetry for this
// execution (the fingerprint ignores it, so caching is unaffected).
func execute(job *Job, spec *ControllerSpec, cache *Cache, sink telemetry.Sink, ro sim.RunOptions) (jr JobResult) {
	jr.Job = *job
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			jr.Result = nil
			jr.Err = fmt.Errorf("runner: job %d (%s on %s) %w: %v",
				job.Index, spec.Label, job.Cycle, ErrJobPanicked, r)
		}
		// Error and panic paths keep their wall-clock too; only cache
		// hits report zero (their cost is in Saved).
		if !jr.Cached && jr.Elapsed == 0 {
			jr.Elapsed = time.Since(start)
		}
	}()

	// Escalated attempts run a different controller than the
	// fingerprint names, so their results never enter (or come from)
	// the cache.
	useCache := cache != nil && spec == &job.Controller
	var key uint64
	if useCache {
		key = job.Fingerprint()
		if res, saved, ok := cache.get(key); ok {
			jr.Result = res
			jr.Cached = true
			jr.Saved = saved
			return jr
		}
	}

	cfg := job.Config
	if sink != nil {
		cfg.Telemetry = sink
	}
	r, err := sim.New(cfg)
	if err != nil {
		jr.Err = err
		return jr
	}
	if spec.New == nil {
		jr.Err = fmt.Errorf("runner: controller %q has no constructor", spec.Label)
		return jr
	}
	ctrl, err := spec.New()
	if err != nil {
		jr.Err = err
		return jr
	}
	res, err := r.RunWith(ctrl, ro)
	if err != nil {
		jr.Err = err
		return jr
	}
	jr.Result = res
	jr.Instance = ctrl
	jr.Elapsed = time.Since(start)
	if useCache {
		cache.put(key, res, jr.Elapsed)
	}
	return jr
}
