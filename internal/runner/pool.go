package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"evclimate/internal/control"
	"evclimate/internal/sim"
)

// Options tunes sweep execution.
type Options struct {
	// Workers is the worker-pool size (0 = GOMAXPROCS).
	Workers int
	// Cache, when non-nil, skips jobs whose scenario fingerprint already
	// holds a result (opt-in; see Cache).
	Cache *Cache
	// Progress, when non-nil, is called after each job completes with
	// the number of finished jobs, the total, and the finished job's
	// result. Calls are serialized; done is strictly increasing.
	Progress func(done, total int, jr *JobResult)
}

// JobResult is one executed job's outcome.
type JobResult struct {
	// Job is the scenario that ran.
	Job Job
	// Result is the simulation outcome (nil on error). Cached results
	// are shared between sweeps and must be treated as read-only.
	Result *sim.Result
	// Err is the job's failure, including captured panics; other jobs
	// are unaffected.
	Err error
	// Elapsed is the job's wall-clock execution time (0 on cache hit).
	Elapsed time.Duration
	// Cached reports that the result came from the cache.
	Cached bool
	// Instance is the controller instance that produced Result (nil on
	// cache hit), for post-run diagnostics such as solver statistics.
	Instance control.Controller
}

// Sweep is an executed spec: results in expansion (spec) order.
type Sweep struct {
	// Spec is the expanded specification.
	Spec Spec
	// Jobs holds one result per job, in expansion order regardless of
	// scheduling.
	Jobs []JobResult
}

// FirstErr returns the first failed job's error, or nil.
func (s *Sweep) FirstErr() error {
	for i := range s.Jobs {
		if err := s.Jobs[i].Err; err != nil {
			return fmt.Errorf("runner: job %d (%s on %s): %w",
				s.Jobs[i].Job.Index, s.Jobs[i].Job.Controller.Label, s.Jobs[i].Job.Cycle, err)
		}
	}
	return nil
}

// Cells groups the results into scenario cells: one block per
// (cycle, env, target, fault) combination holding every controller's
// result, in expansion order. Controllers are the innermost dimension, so
// cells are contiguous blocks of len(Spec.Controllers).
func (s *Sweep) Cells() [][]JobResult {
	n := len(s.Spec.Controllers)
	if n == 0 {
		return nil
	}
	cells := make([][]JobResult, 0, len(s.Jobs)/n)
	for i := 0; i+n <= len(s.Jobs); i += n {
		cells = append(cells, s.Jobs[i:i+n])
	}
	return cells
}

// CellMap keys one cell's results by controller label.
func CellMap(cell []JobResult) map[string]*sim.Result {
	out := make(map[string]*sim.Result, len(cell))
	for i := range cell {
		out[cell[i].Job.Controller.Label] = cell[i].Result
	}
	return out
}

// Run expands the spec and executes it on the worker pool. The returned
// error covers spec problems only; per-job failures (including captured
// panics) are reported in JobResult.Err — check Sweep.FirstErr.
func Run(ctx context.Context, spec Spec, opts Options) (*Sweep, error) {
	jobs, err := Expand(spec)
	if err != nil {
		return nil, err
	}
	results, err := RunJobs(ctx, jobs, opts)
	if err != nil {
		return nil, err
	}
	return &Sweep{Spec: spec, Jobs: results}, nil
}

// RunJobs executes an explicit job list across the worker pool and
// returns results in job order.
func RunJobs(ctx context.Context, jobs []Job, opts Options) ([]JobResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	out := make([]JobResult, len(jobs))
	ran := make([]bool, len(jobs))

	feed := make(chan int)
	go func() {
		defer close(feed)
		for i := range jobs {
			select {
			case feed <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var mu sync.Mutex // serializes progress callbacks and the done count
	done := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				if ctx.Err() != nil {
					return
				}
				out[i] = execute(&jobs[i], opts.Cache)
				ran[i] = true
				if opts.Progress != nil {
					mu.Lock()
					done++
					opts.Progress(done, len(jobs), &out[i])
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	for i := range out {
		if !ran[i] {
			out[i] = JobResult{Job: jobs[i], Err: ctx.Err()}
		}
	}
	return out, nil
}

// execute runs one job, capturing panics into the result error so one
// diverging scenario cannot kill the sweep.
func execute(job *Job, cache *Cache) (jr JobResult) {
	jr.Job = *job
	defer func() {
		if r := recover(); r != nil {
			jr.Result = nil
			jr.Err = fmt.Errorf("runner: job %d (%s on %s) panicked: %v",
				job.Index, job.Controller.Label, job.Cycle, r)
		}
	}()

	var key uint64
	if cache != nil {
		key = job.Fingerprint()
		if res, ok := cache.get(key); ok {
			jr.Result = res
			jr.Cached = true
			return jr
		}
	}

	start := time.Now()
	r, err := sim.New(job.Config)
	if err != nil {
		jr.Err = err
		return jr
	}
	if job.Controller.New == nil {
		jr.Err = fmt.Errorf("runner: controller %q has no constructor", job.Controller.Label)
		return jr
	}
	ctrl, err := job.Controller.New()
	if err != nil {
		jr.Err = err
		return jr
	}
	res, err := r.Run(ctrl)
	if err != nil {
		jr.Err = err
		return jr
	}
	jr.Result = res
	jr.Instance = ctrl
	jr.Elapsed = time.Since(start)
	if cache != nil {
		cache.put(key, res)
	}
	return jr
}
