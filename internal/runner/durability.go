package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"time"

	"evclimate/internal/sim"
	"evclimate/internal/telemetry"
)

// This file is the pool's durability path: per-job execution with
// journal replay, watchdog deadlines, bounded retry with ladder
// escalation, and mid-job state checkpoints. The zero-option path in
// pool.go routes through the same runOne, paying only nil checks.

// poolEnv carries one RunJobs call's shared execution state into the
// workers.
type poolEnv struct {
	opts   Options
	jobs   []Job
	jnl    *Journal
	traces []*telemetry.StepTrace

	// shared holds the outcome instruments on the sweep registry. In
	// journal mode it stays zero: outcomes land on each job's private
	// registry instead, so a journal record carries the job's complete
	// metric contribution and replay reconstructs it exactly.
	shared jobCounters

	// Durability bookkeeping, always on the shared registry under the
	// "resume_" prefix that DeterministicFilter excludes — how often a
	// sweep was interrupted or retried must not perturb its manifest.
	telReplayed, telRecords, telCkpts *telemetry.Counter
	telRetried, telTimeouts           *telemetry.Counter
}

// jobCounters are the per-outcome instruments of the pool.
type jobCounters struct {
	ok, fail, cached *telemetry.Counter
	seconds          *telemetry.Histogram
}

// resolveJobCounters registers the pool's outcome instruments on a
// registry (all four, so journal-mode private registries always merge
// a complete set).
func resolveJobCounters(reg *telemetry.Registry) jobCounters {
	if reg == nil {
		return jobCounters{}
	}
	return jobCounters{
		ok:      reg.Counter("runner_jobs_total", telemetry.L("result", "ok")),
		fail:    reg.Counter("runner_jobs_total", telemetry.L("result", "error")),
		cached:  reg.Counter("runner_jobs_total", telemetry.L("result", "cached")),
		seconds: reg.Histogram("runner_job_seconds", telemetry.LatencyBuckets),
	}
}

// recordMode reports whether jobs run with private registries and
// produce journal-form records: journal mode, or an OnRecord stream
// (the fabric worker path).
func (pe *poolEnv) recordMode() bool {
	return pe.opts.Journal != nil || pe.opts.OnRecord != nil
}

// resolveCounters registers the pool's instruments once, up front.
// Durability counters register only when their feature is enabled, so
// sweeps that never journal or retry keep their metric snapshots
// unchanged.
func (pe *poolEnv) resolveCounters() {
	reg := pe.opts.Telemetry
	if reg == nil {
		return
	}
	if !pe.recordMode() {
		pe.shared = resolveJobCounters(reg)
	} else {
		pe.telReplayed = reg.Counter("resume_journal_replayed_total")
		pe.telRecords = reg.Counter("resume_journal_records_total")
		if pe.opts.Journal != nil && pe.opts.Journal.CheckpointEvery > 0 {
			pe.telCkpts = reg.Counter("resume_checkpoints_total")
		}
	}
	if pe.opts.Retry.MaxAttempts > 1 {
		pe.telRetried = reg.Counter("resume_retries_total")
	}
	if pe.opts.JobTimeout > 0 {
		pe.telTimeouts = reg.Counter("resume_watchdog_timeouts_total")
	}
}

// ReplayRecord reconstructs a finished job's result from its
// journal-form record after validating the record's fingerprint
// against the job — the shared replay path of journal resume and the
// fabric coordinator's stitch. The caller folds rec.Metrics and
// rec.Spans into its own registry and trace log.
func ReplayRecord(job *Job, rec *JournalRecord) (JobResult, error) {
	fp := telemetry.FormatFingerprint(job.Fingerprint())
	if rec.Fingerprint != fp {
		return JobResult{}, fmt.Errorf("%w: record for job %d has fingerprint %s, this expansion has %s",
			ErrJournalMismatch, job.Index, rec.Fingerprint, fp)
	}
	if rec.Result == nil {
		return JobResult{}, fmt.Errorf("runner: journal record for job %d has no result", job.Index)
	}
	return JobResult{
		Job:         *job,
		Result:      rec.Result,
		Elapsed:     time.Duration(rec.ElapsedNs),
		Cached:      rec.Cached,
		Attempts:    rec.Attempts,
		EscalatedTo: rec.EscalatedTo,
		Replayed:    true,
	}, nil
}

// replay reconstructs a finished job from its journal record: the
// result, the step-trace ring, and the metric contribution, exactly as
// the live execution produced them.
func (pe *poolEnv) replay(job *Job, i int, rec *JournalRecord) (JobResult, error) {
	jr, err := ReplayRecord(job, rec)
	if err != nil {
		return JobResult{}, err
	}
	if pe.traces != nil {
		ring := telemetry.NewStepTrace(pe.opts.TraceSteps)
		for k := range rec.Spans {
			ring.Record(rec.Spans[k])
		}
		pe.traces[i] = ring
	}
	if pe.opts.Telemetry != nil {
		if err := pe.opts.Telemetry.Merge(rec.Metrics); err != nil {
			return JobResult{}, fmt.Errorf("runner: replay job %d: %w", job.Index, err)
		}
	}
	pe.telReplayed.Inc()
	return jr, nil
}

// runOne executes one job under the configured durability policy:
// watchdog deadline, bounded retry with escalation, journal append,
// and checkpoint-file lifecycle.
func (pe *poolEnv) runOne(ctx context.Context, i int) JobResult {
	job := &pe.jobs[i]
	opts := &pe.opts
	maxAttempts := opts.Retry.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var ckPath string
	if pe.jnl != nil && opts.Journal.CheckpointEvery > 0 {
		ckPath = pe.jnl.checkpointPath(job)
	}

	var jr JobResult
	var rec *telemetry.StepTrace
	var priv *telemetry.Registry
	var attemptErrs []error
	spec := &job.Controller
	for attempt := 1; ; attempt++ {
		jr, rec, priv = pe.executeAttempt(ctx, job, spec, ckPath)
		jr.Attempts = attempt
		if spec != &job.Controller {
			jr.EscalatedTo = spec.Label
		}
		if jr.Err == nil || attempt >= maxAttempts || ctx.Err() != nil || !Retryable(jr.Err) {
			break
		}
		attemptErrs = append(attemptErrs, jr.Err)
		pe.telRetried.Inc()
		if errors.Is(jr.Err, context.DeadlineExceeded) {
			pe.telTimeouts.Inc()
		}
		if next := fallbackSpec(&job.Controller, attempt); next != nil {
			spec = next
		}
		if !sleepBackoff(ctx, opts.Retry, job.Seed, attempt) {
			break
		}
	}
	jr.AttemptErrs = attemptErrs
	if pe.traces != nil {
		pe.traces[i] = rec
	}

	// Outcome accounting lands on the job's registry: the shared one
	// normally, the job-private one in journal mode.
	jc := pe.shared
	if priv != nil {
		jc = resolveJobCounters(priv)
	}
	switch {
	case jr.Err != nil:
		jc.fail.Inc()
	case jr.Cached:
		jc.cached.Inc()
	default:
		jc.ok.Inc()
	}
	jc.seconds.Observe(jr.Elapsed.Seconds())

	var metrics telemetry.Snapshot
	if priv != nil {
		metrics = priv.Snapshot(nil)
	}
	// Journal the outcome — except a shutdown-in-progress abort, which
	// resumes from its checkpoint instead of replaying a partial result.
	if (pe.jnl != nil || pe.opts.OnRecord != nil) && ctx.Err() == nil {
		jrec := &JournalRecord{
			Kind:        "job",
			Index:       job.Index,
			Fingerprint: telemetry.FormatFingerprint(job.Fingerprint()),
			Seed:        job.Seed,
			Attempts:    jr.Attempts,
			Cached:      jr.Cached,
			ElapsedNs:   jr.Elapsed.Nanoseconds(),
			EscalatedTo: jr.EscalatedTo,
			Result:      jr.Result,
			Metrics:     metrics,
		}
		if rec != nil {
			jrec.Spans = rec.Spans()
		}
		if jr.Err != nil {
			jrec.Err = jr.Err.Error()
			jrec.Result = nil
		}
		if pe.jnl != nil {
			if err := pe.jnl.Append(jrec); err != nil && jr.Err == nil {
				jr.Err = fmt.Errorf("runner: journal append: %w", err)
			}
		}
		if pe.opts.OnRecord != nil {
			pe.opts.OnRecord(jrec)
		}
		pe.telRecords.Inc()
	}
	if priv != nil && opts.Telemetry != nil {
		if err := opts.Telemetry.Merge(metrics); err != nil && jr.Err == nil {
			jr.Err = fmt.Errorf("runner: telemetry merge: %w", err)
		}
	}
	// A finished job needs no mid-run checkpoint anymore.
	if ckPath != "" && jr.Err == nil {
		os.Remove(ckPath)
	}
	return jr
}

// executeAttempt runs a single attempt of a job: fresh telemetry
// sinks (so a retried attempt never double-counts the failed one),
// optional mid-run checkpoint resume, the watchdog deadline, and
// periodic checkpoint flushes.
func (pe *poolEnv) executeAttempt(ctx context.Context, job *Job, spec *ControllerSpec, ckPath string) (JobResult, *telemetry.StepTrace, *telemetry.Registry) {
	opts := &pe.opts

	var resume *jobCheckpoint
	if ckPath != "" {
		// A checkpoint from a different controller (an earlier attempt
		// before escalation) cannot resume this one; start from scratch.
		if jc, err := readJobCheckpoint(ckPath, job); err == nil && jc != nil && jc.Checkpoint.Controller == spec.Label {
			resume = jc
		}
	}

	var rec *telemetry.StepTrace
	var priv *telemetry.Registry
	var sink telemetry.Sink
	if opts.Telemetry != nil || pe.traces != nil {
		if pe.traces != nil {
			rec = telemetry.NewStepTrace(opts.TraceSteps)
		}
		reg := opts.Telemetry
		if pe.recordMode() && reg != nil {
			priv = telemetry.NewRegistry()
			reg = priv
		}
		// Replay the checkpoint's telemetry into this attempt's fresh
		// sinks, so a mid-run resume emits the same spans and metrics an
		// uninterrupted execution would.
		if resume != nil && priv != nil {
			if err := priv.Merge(resume.Metrics); err != nil {
				priv = telemetry.NewRegistry()
				reg = priv
				resume = nil
			}
		}
		if resume != nil && rec != nil {
			for k := range resume.Spans {
				rec.Record(resume.Spans[k])
			}
		}
		sink = telemetry.NewSink(reg, rec, jobLabels(job)...)
	}

	jctx := ctx
	if opts.JobTimeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, opts.JobTimeout)
		defer cancel()
	}
	ro := sim.RunOptions{Context: jctx}
	if resume != nil {
		ro.Resume = resume.Checkpoint
	}
	if ckPath != "" {
		ro.CheckpointEvery = opts.Journal.CheckpointEvery
		ro.OnCheckpoint = func(ck *sim.Checkpoint) error {
			pe.telCkpts.Inc()
			var spans []telemetry.StepSpan
			if rec != nil {
				spans = rec.Spans()
			}
			var ms telemetry.Snapshot
			if priv != nil {
				ms = priv.Snapshot(nil)
			}
			return writeJobCheckpoint(ckPath, job, ck, spans, ms)
		}
	}
	return execute(job, spec, opts.Cache, sink, ro), rec, priv
}

// jobCheckpoint is the on-disk form of one job's mid-run state: the
// simulation checkpoint plus the telemetry the job emitted up to it.
type jobCheckpoint struct {
	Fingerprint string               `json:"fingerprint"`
	Checkpoint  *sim.Checkpoint      `json:"checkpoint"`
	Spans       []telemetry.StepSpan `json:"spans,omitempty"`
	Metrics     telemetry.Snapshot   `json:"metrics,omitempty"`
}

// writeJobCheckpoint persists a job checkpoint atomically (write to a
// temp file, fsync, rename) so a crash never leaves a half-written
// checkpoint under the real name.
func writeJobCheckpoint(path string, job *Job, ck *sim.Checkpoint, spans []telemetry.StepSpan, metrics telemetry.Snapshot) error {
	data, err := json.Marshal(jobCheckpoint{
		Fingerprint: telemetry.FormatFingerprint(job.Fingerprint()),
		Checkpoint:  ck,
		Spans:       spans,
		Metrics:     metrics,
	})
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readJobCheckpoint loads a job's mid-run checkpoint. A missing,
// unparseable, or mismatched file yields nil: checkpoints accelerate
// resumption, they are never required for correctness, so anything
// suspect means "start from scratch".
func readJobCheckpoint(path string, job *Job) (*jobCheckpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var jc jobCheckpoint
	if err := json.Unmarshal(data, &jc); err != nil {
		return nil, nil
	}
	if jc.Checkpoint == nil || jc.Fingerprint != telemetry.FormatFingerprint(job.Fingerprint()) {
		return nil, nil
	}
	return &jc, nil
}
