package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"evclimate/internal/cabin"
	"evclimate/internal/control"
	"evclimate/internal/sim"
	"evclimate/internal/telemetry"
)

// slowController delegates to an inner controller but sleeps per Decide,
// simulating a hung or runaway job without perturbing the trajectory.
type slowController struct {
	inner control.Controller
	delay time.Duration
}

func (c *slowController) Name() string { return c.inner.Name() }
func (c *slowController) Reset()       { c.inner.Reset() }
func (c *slowController) Decide(sc control.StepContext) cabin.Inputs {
	time.Sleep(c.delay)
	return c.inner.Decide(sc)
}
func (c *slowController) StateSnapshot() (json.RawMessage, error) {
	return c.inner.(control.Snapshotter).StateSnapshot()
}
func (c *slowController) RestoreState(b json.RawMessage) error {
	return c.inner.(control.Snapshotter).RestoreState(b)
}

func newOnOff() (control.Controller, error) {
	m, err := cabin.New(cabin.Default())
	if err != nil {
		return nil, err
	}
	return control.NewOnOff(m), nil
}

// oneJobSpec is a single-cycle, single-env scenario under one controller.
func oneJobSpec(ctrl ControllerSpec) Spec {
	return Spec{
		Controllers: []ControllerSpec{ctrl},
		Cycles:      []CycleSpec{{Name: "ECE15"}},
		Envs:        []Env{{AmbientC: 35, SolarW: 400}},
		MaxProfileS: 150,
		BaseSeed:    7,
	}
}

// TestWatchdogTimeoutEscalatesToFallback is the acceptance scenario: a
// hung job is killed by the per-job watchdog, retried, escalated down
// the controller ladder, and finishes — without stalling the pool (a
// fast sibling job completes on its first attempt meanwhile).
func TestWatchdogTimeoutEscalatesToFallback(t *testing.T) {
	slow := ControllerSpec{
		Label:     "Slow",
		ControlDt: 1,
		New: func() (control.Controller, error) {
			inner, err := newOnOff()
			if err != nil {
				return nil, err
			}
			return &slowController{inner: inner, delay: 20 * time.Millisecond}, nil
		},
		Fallbacks: []ControllerSpec{OnOffSpec(1)},
	}
	spec := oneJobSpec(slow)
	spec.Controllers = append(spec.Controllers, FuzzySpec(1)) // fast sibling

	reg := telemetry.NewRegistry()
	sw, err := Run(context.Background(), spec, Options{
		Workers:    2,
		Telemetry:  reg,
		JobTimeout: 100 * time.Millisecond,
		Retry:      RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	jr := &sw.Jobs[0]
	if jr.Err != nil {
		t.Fatalf("escalated job failed: %v (attempts %d)", jr.Err, jr.Attempts)
	}
	if jr.Attempts != 2 || len(jr.AttemptErrs) != 1 {
		t.Errorf("attempts %d, attempt errors %v", jr.Attempts, jr.AttemptErrs)
	}
	if !errors.Is(jr.AttemptErrs[0], context.DeadlineExceeded) {
		t.Errorf("first attempt error %v, want deadline exceeded", jr.AttemptErrs[0])
	}
	if jr.EscalatedTo != "On/Off" {
		t.Errorf("EscalatedTo %q, want On/Off", jr.EscalatedTo)
	}
	if jr.Result == nil || jr.Result.Controller != "On/Off" {
		t.Fatalf("result %+v, want an On/Off run", jr.Result)
	}
	sibling := &sw.Jobs[1]
	if sibling.Err != nil || sibling.Attempts != 1 {
		t.Errorf("sibling job: err %v, attempts %d — pool stalled?", sibling.Err, sibling.Attempts)
	}

	// The escalated result matches a plain run of the fallback on the
	// same scenario (same derived seed, same config shape).
	ref, err := Run(context.Background(), oneJobSpec(OnOffSpec(1)), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The sibling changes seed derivation for job 0? No: index 0 either way.
	identicalResults(t, "escalated vs plain fallback", jr.Result, ref.Jobs[0].Result)

	// Watchdog and retry bookkeeping landed on the resume_* counters.
	for _, name := range []string{"resume_retries_total", "resume_watchdog_timeouts_total"} {
		if v := counterValue(t, reg, name); v != 1 {
			t.Errorf("%s = %v, want 1", name, v)
		}
	}
}

// counterValue finds a counter total in a registry snapshot.
func counterValue(t *testing.T, reg *telemetry.Registry, name string) float64 {
	t.Helper()
	for _, m := range reg.Snapshot(nil) {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("counter %q not registered", name)
	return 0
}

// TestEscalationNeverCached pins the cache-poisoning guard: a result
// produced by a fallback controller must not enter the cache under the
// primary controller's fingerprint.
func TestEscalationNeverCached(t *testing.T) {
	var calls atomic.Int32
	flaky := ControllerSpec{
		Label:     "Flaky",
		ControlDt: 1,
		New: func() (control.Controller, error) {
			if calls.Add(1) == 1 {
				panic("first attempt dies")
			}
			return newOnOff()
		},
		Fallbacks: []ControllerSpec{OnOffSpec(1)},
	}
	cache := NewCache()
	sw, err := Run(context.Background(), oneJobSpec(flaky), Options{
		Workers: 1,
		Cache:   cache,
		Retry:   RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Jobs[0].Err != nil || sw.Jobs[0].EscalatedTo != "On/Off" {
		t.Fatalf("job: err %v, escalated %q", sw.Jobs[0].Err, sw.Jobs[0].EscalatedTo)
	}
	if _, _, entries := cache.Stats(); entries != 0 {
		t.Errorf("escalated result entered the cache (%d entries)", entries)
	}
}

func TestRetryOnPanicThenSuccess(t *testing.T) {
	var calls atomic.Int32
	flaky := ControllerSpec{
		Label:     "Flaky",
		ControlDt: 1,
		New: func() (control.Controller, error) {
			if calls.Add(1) == 1 {
				panic("first attempt dies")
			}
			return newOnOff()
		},
	}
	sw, err := Run(context.Background(), oneJobSpec(flaky), Options{
		Workers: 1,
		Retry:   RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	jr := &sw.Jobs[0]
	if jr.Err != nil {
		t.Fatalf("retried job failed: %v", jr.Err)
	}
	if jr.Attempts != 2 || len(jr.AttemptErrs) != 1 || !errors.Is(jr.AttemptErrs[0], ErrJobPanicked) {
		t.Errorf("attempts %d, attempt errors %v", jr.Attempts, jr.AttemptErrs)
	}
	if jr.EscalatedTo != "" {
		t.Errorf("EscalatedTo %q without fallbacks", jr.EscalatedTo)
	}
}

func TestRetryExhaustionAndNonRetryable(t *testing.T) {
	dies := ControllerSpec{
		Label:     "Dies",
		ControlDt: 1,
		New:       func() (control.Controller, error) { panic("always") },
	}
	sw, err := Run(context.Background(), oneJobSpec(dies), Options{
		Workers: 1,
		Retry:   RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	jr := &sw.Jobs[0]
	if jr.Err == nil || !errors.Is(jr.Err, ErrJobPanicked) {
		t.Fatalf("err = %v, want panic error", jr.Err)
	}
	if jr.Attempts != 3 || len(jr.AttemptErrs) != 2 {
		t.Errorf("attempts %d, attempt errors %d — retries not exhausted", jr.Attempts, len(jr.AttemptErrs))
	}

	// A deterministic failure (constructor error) is not retryable:
	// re-running the same broken scenario can only waste the budget.
	broken := ControllerSpec{
		Label:     "Broken",
		ControlDt: 1,
		New:       func() (control.Controller, error) { return nil, errors.New("bad config") },
	}
	sw, err = Run(context.Background(), oneJobSpec(broken), Options{
		Workers: 1,
		Retry:   RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if jr := &sw.Jobs[0]; jr.Err == nil || jr.Attempts != 1 || len(jr.AttemptErrs) != 0 {
		t.Errorf("non-retryable failure: err %v, attempts %d, attempt errors %d",
			jr.Err, jr.Attempts, len(jr.AttemptErrs))
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseBackoff: 100 * time.Millisecond, MaxBackoff: 5 * time.Second}
	for attempt := 1; attempt <= 8; attempt++ {
		d := p.Delay(42, attempt)
		if d != p.Delay(42, attempt) {
			t.Fatalf("attempt %d: backoff not deterministic", attempt)
		}
		bound := p.BaseBackoff << (attempt - 1)
		if bound > p.MaxBackoff || bound <= 0 {
			bound = p.MaxBackoff
		}
		if d < bound/2 || d > bound {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, d, bound/2, bound)
		}
	}
	if p.Delay(1, 1) == p.Delay(2, 1) &&
		p.Delay(1, 2) == p.Delay(2, 2) &&
		p.Delay(1, 3) == p.Delay(2, 3) {
		t.Error("jitter ignores the seed across three attempts")
	}
}

// cancelAtController cancels a context at its N-th Decide call — a
// deterministic way to interrupt a sweep mid-job. It impersonates the
// inner controller's name so checkpoints written under it resume cleanly.
type cancelAtController struct {
	inner  control.Controller
	cancel context.CancelFunc
	at     int
	n      int
}

func (c *cancelAtController) Name() string { return c.inner.Name() }
func (c *cancelAtController) Reset()       { c.inner.Reset() }
func (c *cancelAtController) Decide(sc control.StepContext) cabin.Inputs {
	c.n++
	if c.cancel != nil && c.n == c.at {
		c.cancel()
	}
	return c.inner.Decide(sc)
}
func (c *cancelAtController) StateSnapshot() (json.RawMessage, error) {
	return c.inner.(control.Snapshotter).StateSnapshot()
}
func (c *cancelAtController) RestoreState(b json.RawMessage) error {
	return c.inner.(control.Snapshotter).RestoreState(b)
}

// TestMidJobCheckpointResume is the mid-cycle acceptance pin: a job
// drained partway through leaves a checkpoint; the resumed sweep
// continues it mid-cycle and the final result, trace, and metrics are
// bit-identical to an uninterrupted run. Metric equality doubly proves
// the checkpoint was used — restarting from step 0 would double-count
// the pre-drain steps merged from the checkpoint.
func TestMidJobCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	interrupted := ControllerSpec{
		Label:     "On/Off",
		ControlDt: 1,
		New: func() (control.Controller, error) {
			inner, err := newOnOff()
			if err != nil {
				return nil, err
			}
			return &cancelAtController{inner: inner, cancel: cancel, at: 80}, nil
		},
	}
	spec := oneJobSpec(interrupted)
	jcfg := &JournalConfig{Dir: dir, CheckpointEvery: 25, Git: "test-build"}
	reg1 := telemetry.NewRegistry()
	first, err := Run(ctx, spec, Options{
		Workers: 1, Telemetry: reg1, TraceLog: &telemetry.TraceLog{}, Journal: jcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if first.Jobs[0].Err == nil {
		t.Fatal("drained job unexpectedly completed")
	}

	// The graceful drain flushed a mid-cycle checkpoint.
	jobs, err := Expand(oneJobSpec(OnOffSpec(1)))
	if err != nil {
		t.Fatal(err)
	}
	ckPath := filepath.Join(dir, fmt.Sprintf("ckpt-%s.json", telemetry.FormatFingerprint(jobs[0].Fingerprint())))
	data, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatalf("no checkpoint after drain: %v", err)
	}
	var jc jobCheckpoint
	if err := json.Unmarshal(data, &jc); err != nil {
		t.Fatal(err)
	}
	if jc.Checkpoint == nil || jc.Checkpoint.Step < 25 {
		t.Fatalf("checkpoint step %v, want a mid-cycle state", jc.Checkpoint)
	}
	t.Logf("drained at step %d of 150", jc.Checkpoint.Step)

	// Resume under the plain controller (same label, same fingerprint).
	reg2 := telemetry.NewRegistry()
	tl2 := &telemetry.TraceLog{}
	sw, err := Run(context.Background(), oneJobSpec(OnOffSpec(1)), Options{
		Workers: 1, Telemetry: reg2, TraceLog: tl2,
		Journal: &JournalConfig{Dir: dir, Resume: true, CheckpointEvery: 25, Git: "test-build"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Jobs[0].Err != nil {
		t.Fatal(sw.Jobs[0].Err)
	}
	if sw.Jobs[0].Replayed {
		t.Error("drained job must re-run from its checkpoint, not replay")
	}

	refReg := telemetry.NewRegistry()
	refTl := &telemetry.TraceLog{}
	ref, err := Run(context.Background(), oneJobSpec(OnOffSpec(1)),
		Options{Workers: 1, Telemetry: refReg, TraceLog: refTl})
	if err != nil {
		t.Fatal(err)
	}
	identicalResults(t, "checkpoint-resumed", sw.Jobs[0].Result, ref.Jobs[0].Result)
	if got, want := deterministicJSON(t, reg2), deterministicJSON(t, refReg); !bytes.Equal(got, want) {
		t.Errorf("resumed metrics differ from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
	if got, want := traceJSONL(t, tl2), traceJSONL(t, refTl); !bytes.Equal(got, want) {
		t.Error("resumed trace differs from uninterrupted run")
	}
	if _, err := os.Stat(ckPath); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("checkpoint not removed after success: %v", err)
	}
}

// TestCheckpointFromDifferentControllerIgnored: after escalation, a
// checkpoint written by the primary controller must not resume the
// fallback mid-trajectory.
func TestCheckpointIgnoredOnFingerprintMismatch(t *testing.T) {
	jobs, err := Expand(oneJobSpec(OnOffSpec(1)))
	if err != nil {
		t.Fatal(err)
	}
	job := &jobs[0]
	path := filepath.Join(t.TempDir(), "ck.json")
	ck := &sim.Checkpoint{Version: sim.CheckpointVersion, Controller: "On/Off", Step: 3}
	if err := writeJobCheckpoint(path, job, ck, nil, nil); err != nil {
		t.Fatal(err)
	}
	got, err := readJobCheckpoint(path, job)
	if err != nil || got == nil || got.Checkpoint.Step != 3 {
		t.Fatalf("round-trip: %+v, %v", got, err)
	}
	// A different job (different fingerprint) must not see it.
	other := *job
	other.Seed++
	if got, err := readJobCheckpoint(path, &other); err != nil || got != nil {
		t.Errorf("foreign checkpoint accepted: %+v, %v", got, err)
	}
	// Corruption degrades to a cold start, never an error.
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := readJobCheckpoint(path, job); err != nil || got != nil {
		t.Errorf("corrupt checkpoint: %+v, %v", got, err)
	}
}

func TestCacheDiskPersistence(t *testing.T) {
	cache := NewCache()
	first, err := Run(context.Background(), quickSpec(), Options{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if err := first.JobErrors(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := cache.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	loaded := NewCache()
	if err := loaded.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	sw, err := Run(context.Background(), quickSpec(), Options{Workers: 2, Cache: loaded})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sw.Jobs {
		if !sw.Jobs[i].Cached {
			t.Errorf("job %d missed the persisted cache", i)
		}
		identicalResults(t, fmt.Sprintf("job %d", i), sw.Jobs[i].Result, first.Jobs[i].Result)
	}

	// Corruption invalidates silently: a cache is an accelerator, not a
	// source of truth.
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	cold := NewCache()
	if err := cold.LoadFile(path); err != nil {
		t.Fatalf("corrupt cache file: %v, want silent invalidation", err)
	}
	if _, _, entries := cold.Stats(); entries != 0 {
		t.Errorf("corrupt cache loaded %d entries", entries)
	}

	// A future schema version is ignored the same way.
	vdata, _ := json.Marshal(map[string]any{"version": 99, "entries": map[string]any{}})
	if err := os.WriteFile(path, vdata, 0o644); err != nil {
		t.Fatal(err)
	}
	versioned := NewCache()
	if err := versioned.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, _, entries := versioned.Stats(); entries != 0 {
		t.Errorf("future-version cache loaded %d entries", entries)
	}

	// Missing file is a clean cold start.
	if err := NewCache().LoadFile(filepath.Join(t.TempDir(), "missing.json")); err != nil {
		t.Errorf("missing cache file: %v", err)
	}
}
