package runner

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"evclimate/internal/control"
	"evclimate/internal/telemetry"
)

// The kill-and-resume integration test runs a journaled sweep in a
// subprocess (this test binary re-executing itself), SIGKILLs it once
// the journal holds at least one record, then resumes the journal
// in-process and checks the stitched outcome — results, trace, metrics —
// against an uninterrupted single-worker run, byte for byte. SIGKILL
// (unlike the context-drain test) exercises the torn-tail path for real:
// the process may die mid-append.

const (
	killHelperEnv = "EVC_KILLRESUME_HELPER"
	killDirEnv    = "EVC_KILLRESUME_DIR"
)

// killSpec paces each job to hundreds of milliseconds (2 ms per control
// step) so the parent reliably lands its SIGKILL mid-sweep. The sleep
// does not perturb the trajectory, so the reference run matches bit for
// bit.
func killSpec() Spec {
	slow := func(inner ControllerSpec) ControllerSpec {
		newInner := inner.New
		inner.New = func() (control.Controller, error) {
			c, err := newInner()
			if err != nil {
				return nil, err
			}
			return &slowController{inner: c, delay: 2 * time.Millisecond}, nil
		}
		return inner
	}
	return Spec{
		Controllers: []ControllerSpec{slow(OnOffSpec(1)), slow(FuzzySpec(1))},
		Cycles:      []CycleSpec{{Name: "ECE15"}, {Name: "UDDS"}},
		Envs:        []Env{{AmbientC: 35, SolarW: 400}},
		MaxProfileS: 120,
		BaseSeed:    77,
	}
}

// TestKillResumeHelper is the subprocess body, inert in normal runs.
func TestKillResumeHelper(t *testing.T) {
	if os.Getenv(killHelperEnv) != "1" {
		t.Skip("subprocess helper for TestKillAndResumeByteIdentical")
	}
	_, err := Run(context.Background(), killSpec(), Options{
		Workers:       1,
		Telemetry:     telemetry.NewRegistry(),
		TraceLog:      &telemetry.TraceLog{},
		ManifestLabel: "kill",
		Journal:       &JournalConfig{Dir: os.Getenv(killDirEnv), Git: "kill-test", FsyncEvery: 1},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func TestKillAndResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestKillResumeHelper$", "-test.v")
	cmd.Env = append(os.Environ(), killHelperEnv+"=1", killDirEnv+"="+dir)
	var childOut bytes.Buffer
	cmd.Stdout, cmd.Stderr = &childOut, &childOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Kill as soon as the journal holds one durable record. The journal
	// may be mid-append at kill time — exactly the torn tail the parser
	// must tolerate.
	journalPath := filepath.Join(dir, "kill-"+telemetry.FormatFingerprint(mustSweepFingerprint(t))+".journal")
	deadline := time.Now().Add(30 * time.Second)
	killed := false
	for time.Now().Before(deadline) {
		if rep, err := ReadJournal(journalPath); err == nil && len(rep.Records) >= 1 {
			cmd.Process.Kill() // SIGKILL: no handlers, no flushes
			killed = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	err := cmd.Wait()
	if !killed {
		t.Fatalf("journal never gained a record; child: %v\n%s", err, childOut.String())
	}
	rep, rerr := ReadJournal(journalPath)
	if rerr != nil {
		t.Fatalf("journal unreadable after SIGKILL: %v", rerr)
	}
	t.Logf("killed child with %d/4 jobs journaled (torn tail: %v)", len(rep.Records), rep.Torn)

	// Resume in-process at a different worker count.
	reg := telemetry.NewRegistry()
	tl := &telemetry.TraceLog{}
	man := telemetry.NewManifest("test")
	sw, err := Run(context.Background(), killSpec(), Options{
		Workers: 4, Telemetry: reg, TraceLog: tl, Manifest: man, ManifestLabel: "kill",
		Journal: &JournalConfig{Dir: dir, Resume: true, Git: "kill-test", FsyncEvery: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.JobErrors(); err != nil {
		t.Fatal(err)
	}
	replayed := 0
	for i := range sw.Jobs {
		if sw.Jobs[i].Replayed {
			replayed++
		}
	}
	if replayed < 1 {
		t.Error("resume replayed no journaled jobs")
	}
	if len(man.Resume) != 1 || man.Resume[0].ReplayedJobs != replayed {
		t.Errorf("manifest resume lineage %+v (replayed %d)", man.Resume, replayed)
	}

	// Reference: uninterrupted, single worker, no journal.
	refReg := telemetry.NewRegistry()
	refTl := &telemetry.TraceLog{}
	ref, err := Run(context.Background(), killSpec(),
		Options{Workers: 1, Telemetry: refReg, TraceLog: refTl})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sw.Jobs {
		identicalResults(t, fmt.Sprintf("job %d", i), sw.Jobs[i].Result, ref.Jobs[i].Result)
	}
	if got, want := deterministicJSON(t, reg), deterministicJSON(t, refReg); !bytes.Equal(got, want) {
		t.Errorf("stitched metrics differ from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
	if got, want := traceJSONL(t, tl), traceJSONL(t, refTl); !bytes.Equal(got, want) {
		t.Error("stitched trace differs from uninterrupted run")
	}
}

func mustSweepFingerprint(t *testing.T) uint64 {
	t.Helper()
	jobs, err := Expand(killSpec())
	if err != nil {
		t.Fatal(err)
	}
	return SweepFingerprint(jobs)
}
