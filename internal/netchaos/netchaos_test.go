package netchaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"
)

// echoServer answers every POST with its own request body and every GET
// with a fixed payload, so tests can see exactly what crossed the wire.
func echoServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			data, _ := io.ReadAll(r.Body)
			if len(data) > 0 {
				w.Write(data)
				return
			}
		}
		w.Write([]byte("0123456789abcdef0123456789abcdef"))
	}))
	t.Cleanup(srv.Close)
	return srv
}

// post sends body through the transport and returns status, response
// body, and error.
func post(t *testing.T, tr *Transport, url, body string, timeout time.Duration) (int, string, error) {
	t.Helper()
	client := &http.Client{Transport: tr}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, string(data), err
}

// TestScheduleDeterminism: the same seed fires the same faults at the
// same call indexes; a different seed fires a different pattern.
func TestScheduleDeterminism(t *testing.T) {
	sched := func(seed int64) Schedule {
		return Schedule{Seed: seed, Rules: []Rule{{Fault: Reset, Rate: 0.4}}}
	}
	pattern := func(seed int64) string {
		tr := NewTransport(sched(seed), nil)
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if _, _, fire := tr.decide("/x"); fire {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	a, b := pattern(7), pattern(7)
	if a != b {
		t.Errorf("same seed, different fault pattern:\n%s\n%s", a, b)
	}
	if c := pattern(8); c == a {
		t.Errorf("different seeds fired identically: %s", c)
	}
	if !strings.Contains(a, "1") || !strings.Contains(a, "0") {
		t.Errorf("rate 0.4 pattern degenerate: %s", a)
	}
}

// TestRuleWindowAndPath: rules gate on path and per-path call window.
func TestRuleWindowAndPath(t *testing.T) {
	tr := NewTransport(Schedule{Seed: 1, Rules: []Rule{
		{Fault: Reset, Path: "/complete", Rate: 1, From: 2, To: 4},
	}}, nil)
	fires := func(path string) bool { _, _, f := tr.decide(path); return f }
	for i, want := range []bool{false, false, true, true, false} {
		if got := fires("/complete"); got != want {
			t.Errorf("/complete call %d: fire=%v, want %v", i, got, want)
		}
	}
	// Other paths keep their own counters and never match.
	for i := 0; i < 5; i++ {
		if fires("/lease") {
			t.Errorf("/lease call %d fired a /complete-scoped rule", i)
		}
	}
}

// TestLatencyFault delays the call but delivers it intact.
func TestLatencyFault(t *testing.T) {
	srv := echoServer(t)
	tr := NewTransport(Schedule{Seed: 3, Rules: []Rule{
		{Fault: Latency, Rate: 1, Delay: 50 * time.Millisecond},
	}}, nil)
	start := time.Now()
	status, body, err := post(t, tr, srv.URL+"/x", "hello", 0)
	if err != nil || status != 200 || body != "hello" {
		t.Fatalf("latency call: status=%d body=%q err=%v", status, body, err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Errorf("call took %v, want ≥ 50ms injected latency", d)
	}
	if n := tr.Injected()[Latency]; n != 1 {
		t.Errorf("Injected[Latency] = %d, want 1", n)
	}
}

// TestResetFault fails the call with a connection-reset error.
func TestResetFault(t *testing.T) {
	srv := echoServer(t)
	tr := NewTransport(Schedule{Seed: 3, Rules: []Rule{{Fault: Reset, Rate: 1}}}, nil)
	_, _, err := post(t, tr, srv.URL+"/x", "hello", 0)
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("reset call err = %v, want ECONNRESET", err)
	}
}

// TestBlackHoleFault holds the call until the context deadline — the
// caller's timeout is the only way out, which is the point.
func TestBlackHoleFault(t *testing.T) {
	srv := echoServer(t)
	tr := NewTransport(Schedule{Seed: 3, Rules: []Rule{{Fault: BlackHole, Rate: 1}}}, nil)
	start := time.Now()
	_, _, err := post(t, tr, srv.URL+"/x", "hello", 80*time.Millisecond)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("black-holed call err = %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Errorf("black-holed call returned after %v, before the deadline", d)
	}
}

// TestTornBodyFault truncates the response mid-read.
func TestTornBodyFault(t *testing.T) {
	srv := echoServer(t)
	tr := NewTransport(Schedule{Seed: 3, Rules: []Rule{{Fault: TornBody, Rate: 1, KeepBytes: 4}}}, nil)
	client := &http.Client{Transport: tr}
	resp, err := client.Post(srv.URL+"/x", "text/plain", strings.NewReader("0123456789"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn body read err = %v (got %q), want unexpected EOF", err, data)
	}
	if string(data) != "0123" {
		t.Errorf("torn body delivered %q, want the first 4 bytes", data)
	}
}

// TestCorruptRequestFault flips exactly one byte of the request body,
// deterministically per call index.
func TestCorruptRequestFault(t *testing.T) {
	srv := echoServer(t)
	body := strings.Repeat("payload-", 8)
	corrupted := func(seed int64) string {
		tr := NewTransport(Schedule{Seed: seed, Rules: []Rule{{Fault: CorruptRequest, Rate: 1}}}, nil)
		_, echoed, err := post(t, tr, srv.URL+"/x", body, 0)
		if err != nil {
			t.Fatal(err)
		}
		return echoed
	}
	got := corrupted(9)
	if got == body {
		t.Fatal("corrupt-request fault delivered the body unmodified")
	}
	diffs := 0
	for i := range body {
		if got[i] != body[i] {
			diffs++
		}
	}
	if diffs != 1 {
		t.Errorf("corruption flipped %d bytes, want exactly 1", diffs)
	}
	if again := corrupted(9); again != got {
		t.Errorf("same seed corrupted differently:\n%q\n%q", got, again)
	}
}

// TestDuplicateFault delivers the request twice: the server sees two
// copies, the client one response.
func TestDuplicateFault(t *testing.T) {
	var bodies []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		data, _ := io.ReadAll(r.Body)
		bodies = append(bodies, string(data))
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	tr := NewTransport(Schedule{Seed: 3, Rules: []Rule{{Fault: Duplicate, Rate: 1}}}, nil)
	status, body, err := post(t, tr, srv.URL+"/x", "once", 0)
	if err != nil || status != 200 || body != "ok" {
		t.Fatalf("duplicated call: status=%d body=%q err=%v", status, body, err)
	}
	if len(bodies) != 2 || bodies[0] != "once" || bodies[1] != "once" {
		t.Fatalf("server saw %q, want two identical deliveries", bodies)
	}
}

// TestProxyForwardsCleanly: a rate-0 proxy is a transparent TCP pipe.
func TestProxyForwardsCleanly(t *testing.T) {
	srv := echoServer(t)
	p, err := NewProxy(ProxyConfig{Target: strings.TrimPrefix(srv.URL, "http://"), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	status, body, err := post(t, NewTransport(Schedule{}, nil), "http://"+p.Addr+"/x", "ping", 0)
	if err != nil || status != 200 || body != "ping" {
		t.Fatalf("proxied call: status=%d body=%q err=%v", status, body, err)
	}
}

// TestProxyBlackHole: a black-holed connection never answers; the
// client's deadline fires.
func TestProxyBlackHole(t *testing.T) {
	srv := echoServer(t)
	p, err := NewProxy(ProxyConfig{
		Target: strings.TrimPrefix(srv.URL, "http://"), Seed: 1, BlackHoleRate: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	client := &http.Client{Timeout: 100 * time.Millisecond}
	_, err = client.Get("http://" + p.Addr + "/x")
	if err == nil {
		t.Fatal("black-holed proxy connection answered")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("black-holed call err = %v, want timeout", err)
	}
}

// TestProxyReset cuts the response stream after a few bytes.
func TestProxyReset(t *testing.T) {
	srv := echoServer(t)
	p, err := NewProxy(ProxyConfig{
		Target: strings.TrimPrefix(srv.URL, "http://"), Seed: 1, ResetRate: 1, ResetAfter: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	resp, err := http.Get("http://" + p.Addr + "/x")
	if err == nil {
		defer resp.Body.Close()
		if _, err = io.ReadAll(resp.Body); err == nil {
			t.Fatal("reset proxy connection delivered a full response")
		}
	}
}

// TestProxyDelay adds the configured latency to every connection.
func TestProxyDelay(t *testing.T) {
	srv := echoServer(t)
	p, err := NewProxy(ProxyConfig{
		Target: strings.TrimPrefix(srv.URL, "http://"), Seed: 1, Delay: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Separate connections per request: disable keep-alives.
	tr := &http.Transport{DisableKeepAlives: true}
	client := &http.Client{Transport: tr}
	start := time.Now()
	resp, err := client.Get("http://" + p.Addr + "/x")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Errorf("delayed connection answered in %v, want ≥ 60ms", d)
	}
}

// TestStringer pins the fault names used in logs and test output.
func TestStringer(t *testing.T) {
	want := map[Fault]string{
		Latency: "latency", Reset: "reset", BlackHole: "black-hole",
		TornBody: "torn-body", CorruptRequest: "corrupt-request", Duplicate: "duplicate",
	}
	for f, s := range want {
		if f.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(f), f.String(), s)
		}
	}
	if got := fmt.Sprint(Fault(99)); got != "fault(99)" {
		t.Errorf("unknown fault prints %q", got)
	}
}

var _ = bytes.MinRead // keep bytes imported if unused paths change
