// Package netchaos injects deterministic, seeded network faults into
// HTTP traffic, so the distributed fabric's tolerance of real network
// pathologies — latency spikes, connection resets, partitions, torn or
// corrupted bodies, duplicated deliveries — can be tested exactly and
// replayed exactly.
//
// The package mirrors internal/faults' seeding discipline: every fault
// decision is a pure function of the schedule seed, the rule's index,
// and a per-path call counter (splitmix64 finalizer). No shared RNG
// state exists, so two transports built from the same Schedule fire the
// same faults at the same calls, and a chaos run replays bit-identically
// — as long as calls to any one path are issued sequentially, which is
// how a fabric worker drives its coordinator (the lease loop, the
// heartbeat ticker, and completion are each sequential streams).
//
// Two injection points are provided:
//
//   - Transport, an http.RoundTripper wrapper, faults individual
//     protocol calls on the client side: delay them, reset them, hold
//     them black-holed until their context deadline, tear or corrupt
//     their bodies, or deliver them twice.
//   - Proxy, a TCP listener proxy, faults whole connections between a
//     client and a server it fronts: added latency, mid-stream resets,
//     and black-holed accepts — the server-side pathologies a
//     RoundTripper cannot express.
package netchaos

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"syscall"
	"time"
)

// Fault is one class of injected network pathology.
type Fault int

const (
	// Latency delays the call before forwarding it.
	Latency Fault = iota
	// Reset fails the call with a connection-reset error without
	// delivering it.
	Reset
	// BlackHole holds the call until its context expires — a partition
	// or a silently dropped TCP flow. Callers without a deadline hang
	// forever, which is exactly the bug class this fault exists to
	// expose.
	BlackHole
	// TornBody delivers the request but truncates the response body
	// mid-stream — the server processed the call, the client never
	// learns the outcome.
	TornBody
	// CorruptRequest flips one byte of the outgoing request body — an
	// in-transit corruption the receiver must detect and reject.
	CorruptRequest
	// Duplicate delivers the request twice, back to back — a retried
	// send whose first copy was not actually lost.
	Duplicate
)

// String implements fmt.Stringer.
func (f Fault) String() string {
	switch f {
	case Latency:
		return "latency"
	case Reset:
		return "reset"
	case BlackHole:
		return "black-hole"
	case TornBody:
		return "torn-body"
	case CorruptRequest:
		return "corrupt-request"
	case Duplicate:
		return "duplicate"
	default:
		return fmt.Sprintf("fault(%d)", int(f))
	}
}

// Rule schedules one fault class onto matching calls.
type Rule struct {
	// Fault is the pathology to inject.
	Fault Fault
	// Path restricts the rule to one URL path ("" = every path).
	Path string
	// Rate is the per-call firing probability in [0, 1]; values ≥ 1
	// fire on every matching call.
	Rate float64
	// From and To bound the rule to a half-open per-path call-index
	// window [From, To); both zero means always active. Indexes count
	// matching calls through one Transport, starting at 0.
	From, To int
	// Delay is Latency's injected delay (0 = 100 ms).
	Delay time.Duration
	// KeepBytes is how much of the response body TornBody delivers
	// before tearing (0 = half of what the server sent).
	KeepBytes int
}

// active reports whether the rule covers per-path call index n.
func (r *Rule) active(path string, n uint64) bool {
	if r.Path != "" && r.Path != path {
		return false
	}
	if r.From == 0 && r.To == 0 {
		return true
	}
	return n >= uint64(r.From) && n < uint64(r.To)
}

// Schedule is a seeded set of fault rules. The zero Schedule injects
// nothing.
type Schedule struct {
	// Seed drives every fault decision; equal seeds replay equal runs.
	Seed int64
	// Rules are evaluated in order; the first firing rule wins, so one
	// call suffers at most one fault.
	Rules []Rule
}

// splitmix64 is the SplitMix64 finalizer — the same mixer the sweep
// engine and the fault-injection layer use for per-draw seeds.
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// ruleSalt decorrelates rules sharing a seed ("chaos" + golden ratio).
func ruleSalt(rule int) uint64 { return 0xC4A05 + uint64(rule)*0x9E3779B9 }

// draw returns the deterministic uint64 for (seed, rule, call).
func draw(seed int64, rule int, call uint64) uint64 {
	return splitmix64(splitmix64(uint64(seed)^ruleSalt(rule)) + 0x632BE59BD9B4E019*(call+1))
}

// uniform maps a draw onto [0, 1).
func uniform(u uint64) float64 { return float64(u>>11) / (1 << 53) }

// Transport is a fault-injecting http.RoundTripper. It wraps a base
// transport and applies the schedule's first firing rule to each call.
// Safe for concurrent use; determinism holds per path as long as calls
// to that path are sequential.
type Transport struct {
	base  http.RoundTripper
	sched Schedule

	mu       sync.Mutex
	calls    map[string]uint64 // per-path call counter
	injected map[Fault]int     // per-fault injection tally
}

// NewTransport wraps base (nil = http.DefaultTransport) with the
// schedule's faults.
func NewTransport(sched Schedule, base http.RoundTripper) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{
		base:     base,
		sched:    sched,
		calls:    make(map[string]uint64),
		injected: make(map[Fault]int),
	}
}

// Injected returns how often each fault class fired so far — test
// assertions that the scenario actually exercised its pathology.
func (t *Transport) Injected() map[Fault]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[Fault]int, len(t.injected))
	for f, n := range t.injected {
		out[f] = n
	}
	return out
}

// errReset is the injected connection-reset failure. net/http retries
// nothing on POST, so the caller's own retry policy is what's under
// test.
func errReset() error {
	return &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
}

// decide picks the fault (if any) for this call and advances the path
// counter. The winning rule and its draw are returned for
// parameterizing the fault deterministically.
func (t *Transport) decide(path string) (rule *Rule, rdraw uint64, fire bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.calls[path]
	t.calls[path] = n + 1
	for i := range t.sched.Rules {
		r := &t.sched.Rules[i]
		if !r.active(path, n) {
			continue
		}
		u := draw(t.sched.Seed, i, n)
		if r.Rate < 1 && uniform(u) >= r.Rate {
			continue
		}
		t.injected[r.Fault]++
		return r, u, true
	}
	return nil, 0, false
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	rule, u, fire := t.decide(req.URL.Path)
	if !fire {
		return t.base.RoundTrip(req)
	}
	switch rule.Fault {
	case Latency:
		d := rule.Delay
		if d <= 0 {
			d = 100 * time.Millisecond
		}
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.base.RoundTrip(req)

	case Reset:
		closeBody(req)
		return nil, errReset()

	case BlackHole:
		closeBody(req)
		<-req.Context().Done()
		return nil, req.Context().Err()

	case TornBody:
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		resp.Body = &tornBody{inner: resp.Body, keep: rule.KeepBytes}
		resp.ContentLength = -1
		return resp, nil

	case CorruptRequest:
		if err := corruptRequest(req, u); err != nil {
			return nil, err
		}
		return t.base.RoundTrip(req)

	case Duplicate:
		// First delivery: a cloned request whose response is drained and
		// dropped — the sender never sees it, exactly like a retry whose
		// original was not actually lost.
		if dup, err := cloneRequest(req); err == nil {
			if resp, err := t.base.RoundTrip(dup); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		return t.base.RoundTrip(req)

	default:
		return t.base.RoundTrip(req)
	}
}

// closeBody releases a request body that will never be sent.
func closeBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

// cloneRequest copies a request with a replayable body (GetBody is set
// by http.NewRequest for the buffer types the fabric sends).
func cloneRequest(req *http.Request) (*http.Request, error) {
	dup := req.Clone(req.Context())
	if req.Body == nil || req.GetBody == nil {
		return dup, nil
	}
	body, err := req.GetBody()
	if err != nil {
		return nil, err
	}
	dup.Body = body
	return dup, nil
}

// corruptRequest flips one deterministic byte of the request body.
func corruptRequest(req *http.Request, u uint64) error {
	if req.Body == nil {
		return nil
	}
	data, err := io.ReadAll(req.Body)
	req.Body.Close()
	if err != nil {
		return err
	}
	if len(data) > 0 {
		data[int(splitmix64(u)%uint64(len(data)))] ^= 0xFF
	}
	req.Body = io.NopCloser(bytes.NewReader(data))
	req.ContentLength = int64(len(data))
	req.GetBody = func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(data)), nil
	}
	return nil
}

// tornBody delivers keep bytes (0 = half of what arrives) and then
// fails with io.ErrUnexpectedEOF, like a connection cut mid-response.
type tornBody struct {
	inner io.ReadCloser
	keep  int
	read  int
	buf   []byte
	eof   bool
}

func (b *tornBody) Read(p []byte) (int, error) {
	if b.buf == nil {
		// Buffer the whole (small, protocol-sized) body so "half" is
		// well-defined without a Content-Length.
		data, err := io.ReadAll(b.inner)
		if err != nil {
			return 0, err
		}
		keep := b.keep
		if keep <= 0 {
			keep = len(data) / 2
		}
		if keep > len(data) {
			keep = len(data)
		}
		b.buf = data[:keep]
	}
	if b.read >= len(b.buf) {
		b.eof = true
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, b.buf[b.read:])
	b.read += n
	return n, nil
}

func (b *tornBody) Close() error { return b.inner.Close() }
