package netchaos

import (
	"io"
	"net"
	"sync"
	"time"
)

// ProxyConfig schedules connection-level faults onto a TCP proxy.
// Rates are per-accepted-connection probabilities; decisions derive
// from (Seed, connection index) exactly like Transport's per-call
// draws, so a proxy chaos run replays the same per-connection fates.
type ProxyConfig struct {
	// Target is the backend to forward to (host:port).
	Target string
	// Seed drives every per-connection fault decision.
	Seed int64
	// BlackHoleRate is the probability a connection is accepted but
	// never forwarded: the client's bytes are read and discarded, and
	// nothing ever comes back — a partitioned or wedged backend.
	BlackHoleRate float64
	// ResetRate is the probability a connection is torn down after
	// forwarding at most ResetAfter bytes of the response.
	ResetRate float64
	// ResetAfter bounds the response bytes delivered before an injected
	// reset (0 = 64).
	ResetAfter int
	// Delay is added before forwarding each accepted connection — a
	// slow network or an overloaded accept queue.
	Delay time.Duration
	// DelayRate is the probability Delay applies (0 with a non-zero
	// Delay means every connection).
	DelayRate float64
}

// Proxy is a fault-injecting TCP proxy. Point a client at Addr and the
// proxy forwards to Target, applying the configured connection fates.
type Proxy struct {
	cfg ProxyConfig
	ln  net.Listener
	// Addr is the proxy's listen address.
	Addr string

	mu     sync.Mutex
	conns  uint64
	active map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// track registers a live connection so Close can tear it down; it
// returns false when the proxy is already closed.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.active[c] = struct{}{}
	return true
}

// untrack forgets a finished connection.
func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.active, c)
	p.mu.Unlock()
}

// NewProxy starts a proxy on 127.0.0.1:0.
func NewProxy(cfg ProxyConfig) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{cfg: cfg, ln: ln, Addr: ln.Addr().String(), active: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Close stops accepting and tears down in-flight connections.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for c := range p.active {
		c.Close() // unblocks the copy loops; serve exits promptly
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

// fate decides a connection's injected pathology from its index.
type fate int

const (
	fateForward fate = iota
	fateBlackHole
	fateReset
)

// nextFate draws the next connection's fate and whether it is delayed.
func (p *Proxy) nextFate() (fate, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.conns
	p.conns++
	if p.cfg.BlackHoleRate > 0 && uniform(draw(p.cfg.Seed, 0, n)) < p.cfg.BlackHoleRate {
		return fateBlackHole, false
	}
	if p.cfg.ResetRate > 0 && uniform(draw(p.cfg.Seed, 1, n)) < p.cfg.ResetRate {
		return fateReset, false
	}
	delayed := p.cfg.Delay > 0 &&
		(p.cfg.DelayRate <= 0 || uniform(draw(p.cfg.Seed, 2, n)) < p.cfg.DelayRate)
	return fateForward, delayed
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		f, delayed := p.nextFate()
		p.wg.Add(1)
		go p.serve(conn, f, delayed)
	}
}

// serve runs one accepted connection to its fate.
func (p *Proxy) serve(client net.Conn, f fate, delayed bool) {
	defer p.wg.Done()
	defer client.Close()
	if !p.track(client) {
		return
	}
	defer p.untrack(client)

	if f == fateBlackHole {
		// Swallow whatever the client sends; never answer. The client's
		// own deadline is its only way out.
		io.Copy(io.Discard, client)
		return
	}
	if delayed {
		time.Sleep(p.cfg.Delay)
	}
	backend, err := net.Dial("tcp", p.cfg.Target)
	if err != nil {
		return
	}
	defer backend.Close()
	if !p.track(backend) {
		return
	}
	defer p.untrack(backend)

	// client -> backend runs freely; backend -> client is where a reset
	// fate cuts the stream.
	done := make(chan struct{})
	go func() {
		io.Copy(backend, client)
		// Half-close so the backend sees EOF on the request stream.
		if t, ok := backend.(*net.TCPConn); ok {
			t.CloseWrite()
		}
		close(done)
	}()
	if f == fateReset {
		limit := p.cfg.ResetAfter
		if limit <= 0 {
			limit = 64
		}
		io.CopyN(client, backend, int64(limit))
		// An abortive close: SO_LINGER 0 sends RST, the genuine
		// connection-reset the client-side retry logic must absorb.
		if t, ok := client.(*net.TCPConn); ok {
			t.SetLinger(0)
		}
	} else {
		io.Copy(client, backend)
	}
	client.Close()
	<-done
}
