// Package bms implements the Battery Management System: it monitors the
// pack during a drive, enforces overcharge/overdischarge and power-limit
// protections (paper Sec. I), records the SoC trajectory, and evaluates
// the cycle stress statistics (SoCdev, SoCavg) and SoH degradation that
// the climate controller optimizes against (Algorithm 1, lines 20 and 23).
package bms

import (
	"errors"
	"fmt"

	"evclimate/internal/battery"
	"evclimate/internal/units"
)

// Config assembles a BMS.
type Config struct {
	// Pack is the battery pack parameter set.
	Pack battery.Params
	// SoH is the degradation model parameter set.
	SoH battery.SoHParams
	// InitialSoC is the SoC at drive start, percent.
	InitialSoC float64
	// MinSoC is the overdischarge protection threshold, percent.
	MinSoC float64
	// MaxSoC is the overcharge protection threshold, percent.
	MaxSoC float64
	// MaxDischargeW and MaxChargeW limit pack power (both positive).
	MaxDischargeW, MaxChargeW float64
}

// DefaultConfig returns a Leaf-pack BMS starting from a 90 % charge.
func DefaultConfig() Config {
	return Config{
		Pack:          battery.LeafPack(),
		SoH:           battery.DefaultSoHParams(),
		InitialSoC:    90,
		MinSoC:        10,
		MaxSoC:        100,
		MaxDischargeW: 90e3,
		MaxChargeW:    40e3,
	}
}

// Validate reports invalid configurations.
func (c *Config) Validate() error {
	if err := c.Pack.Validate(); err != nil {
		return err
	}
	if err := c.SoH.Validate(); err != nil {
		return err
	}
	switch {
	case c.InitialSoC < 0 || c.InitialSoC > 100:
		return fmt.Errorf("bms: initial SoC %v outside [0, 100]", c.InitialSoC)
	case c.MinSoC < 0 || c.MaxSoC > 100 || c.MinSoC >= c.MaxSoC:
		return fmt.Errorf("bms: SoC window [%v, %v] invalid", c.MinSoC, c.MaxSoC)
	case c.MaxDischargeW <= 0 || c.MaxChargeW < 0:
		return errors.New("bms: power limits must be positive (charge nonnegative)")
	}
	return nil
}

// Protection events counted by the BMS.
type Events struct {
	// DischargeClipped counts steps where the discharge request exceeded
	// MaxDischargeW.
	DischargeClipped int
	// ChargeClipped counts steps where regen exceeded MaxChargeW.
	ChargeClipped int
	// OverdischargeBlocked counts steps denied because SoC ≤ MinSoC.
	OverdischargeBlocked int
	// OverchargeBlocked counts regen steps denied because SoC ≥ MaxSoC.
	OverchargeBlocked int
}

// BMS monitors one pack through a drive.
type BMS struct {
	cfg    Config
	pack   *battery.Pack
	trace  []float64
	events Events
	// throughput accounting
	dischargeJ, regenJ float64
}

// New builds a BMS and its pack.
func New(cfg Config) (*BMS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pack, err := battery.NewPack(cfg.Pack, cfg.InitialSoC)
	if err != nil {
		return nil, err
	}
	return &BMS{cfg: cfg, pack: pack, trace: []float64{cfg.InitialSoC}}, nil
}

// Config returns the BMS configuration.
func (b *BMS) Config() Config { return b.cfg }

// SoC returns the current state of charge in percent.
func (b *BMS) SoC() float64 { return b.pack.SoC() }

// Events returns the protection event counters.
func (b *BMS) Events() Events { return b.events }

// Step applies a power request (W, positive = discharge) for dt seconds.
// The BMS clips the request to the pack power limits and blocks requests
// that would violate the SoC protection window, then updates the pack and
// the SoC trace. It returns the power actually applied and the new SoC.
func (b *BMS) Step(requestW, dt float64) (appliedW, soc float64) {
	applied := requestW
	if applied > b.cfg.MaxDischargeW {
		applied = b.cfg.MaxDischargeW
		b.events.DischargeClipped++
	}
	if applied < -b.cfg.MaxChargeW {
		applied = -b.cfg.MaxChargeW
		b.events.ChargeClipped++
	}
	if applied > 0 && b.pack.SoC() <= b.cfg.MinSoC {
		applied = 0
		b.events.OverdischargeBlocked++
	}
	if applied < 0 && b.pack.SoC() >= b.cfg.MaxSoC {
		applied = 0
		b.events.OverchargeBlocked++
	}
	soc = b.pack.Step(applied, dt)
	b.trace = append(b.trace, soc)
	if applied > 0 {
		b.dischargeJ += applied * dt
	} else {
		b.regenJ += -applied * dt
	}
	return applied, soc
}

// Grow preallocates capacity for n further Step calls so the per-step
// trace appends never regrow the slice mid-run.
func (b *BMS) Grow(n int) {
	if want := len(b.trace) + n; cap(b.trace) < want {
		out := make([]float64, len(b.trace), want)
		copy(out, b.trace)
		b.trace = out
	}
}

// Trace returns a copy of the SoC trajectory recorded so far (percent,
// one entry per Step plus the initial SoC).
func (b *BMS) Trace() []float64 {
	out := make([]float64, len(b.trace))
	copy(out, b.trace)
	return out
}

// DischargedKWh returns gross discharged energy.
func (b *BMS) DischargedKWh() float64 { return units.JToKWh(b.dischargeJ) }

// RegeneratedKWh returns gross regenerated energy.
func (b *BMS) RegeneratedKWh() float64 { return units.JToKWh(b.regenJ) }

// CycleStats returns SoCdev and SoCavg (Eqs. 16–17) over the recorded
// trace.
func (b *BMS) CycleStats() (dev, avg float64, err error) {
	return battery.CycleStats(b.trace)
}

// DeltaSoH evaluates the degradation model (Eq. 15) over the recorded
// trace — Algorithm 1 line 23.
func (b *BMS) DeltaSoH() (float64, error) {
	return b.cfg.SoH.DeltaSoHFromTrace(b.trace)
}

// State is the BMS's serializable mutable state: everything Step and the
// metrics evaluators touch. The Config is deliberately not part of it —
// a State is restored into a BMS built from the same Config, and the
// restored BMS then steps bit-for-bit like the original.
type State struct {
	// SoC is the pack state of charge, percent.
	SoC float64 `json:"soc"`
	// Trace is the SoC trajectory recorded so far.
	Trace []float64 `json:"trace"`
	// Events are the protection counters.
	Events Events `json:"events"`
	// DischargeJ and RegenJ are the gross throughput accumulators.
	DischargeJ float64 `json:"discharge_j"`
	RegenJ     float64 `json:"regen_j"`
}

// State captures the BMS state for checkpointing. The trace is copied;
// the snapshot does not alias the BMS.
func (b *BMS) State() State {
	return State{
		SoC:        b.pack.SoC(),
		Trace:      b.Trace(),
		Events:     b.events,
		DischargeJ: b.dischargeJ,
		RegenJ:     b.regenJ,
	}
}

// SetState replaces the BMS state with a snapshot taken from a BMS with
// the same Config. The trace is copied in.
func (b *BMS) SetState(st State) error {
	if len(st.Trace) == 0 {
		return errors.New("bms: state has empty SoC trace")
	}
	pack, err := battery.NewPack(b.cfg.Pack, st.SoC)
	if err != nil {
		return err
	}
	b.pack = pack
	b.trace = append(b.trace[:0:0], st.Trace...)
	b.events = st.Events
	b.dischargeJ, b.regenJ = st.DischargeJ, st.RegenJ
	return nil
}

// Reset restores the initial SoC and clears the trace, counters, and
// throughput, ready for another drive cycle.
func (b *BMS) Reset() error {
	pack, err := battery.NewPack(b.cfg.Pack, b.cfg.InitialSoC)
	if err != nil {
		return err
	}
	b.pack = pack
	b.trace = []float64{b.cfg.InitialSoC}
	b.events = Events{}
	b.dischargeJ, b.regenJ = 0, 0
	return nil
}
