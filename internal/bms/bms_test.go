package bms

import (
	"math"
	"testing"
)

func newBMS(t *testing.T, mutate func(*Config)) *BMS {
	t.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.InitialSoC = 150 },
		func(c *Config) { c.MinSoC = 80; c.MaxSoC = 70 },
		func(c *Config) { c.MaxDischargeW = 0 },
		func(c *Config) { c.MaxChargeW = -1 },
		func(c *Config) { c.Pack.NominalVoltageV = 0 },
		func(c *Config) { c.SoH.Alpha = 0 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestStepRecordsTrace(t *testing.T) {
	b := newBMS(t, nil)
	for i := 0; i < 10; i++ {
		b.Step(10e3, 1)
	}
	tr := b.Trace()
	if len(tr) != 11 {
		t.Fatalf("trace length = %d, want 11", len(tr))
	}
	if tr[0] != 90 {
		t.Errorf("trace[0] = %v, want initial 90", tr[0])
	}
	// SoC must be non-increasing under pure discharge.
	for i := 1; i < len(tr); i++ {
		if tr[i] > tr[i-1] {
			t.Errorf("SoC rose during discharge at %d: %v → %v", i, tr[i-1], tr[i])
		}
	}
	// Trace returns a copy.
	tr[0] = 0
	if b.Trace()[0] != 90 {
		t.Error("Trace exposed internal storage")
	}
}

func TestDischargePowerClipping(t *testing.T) {
	b := newBMS(t, nil)
	applied, _ := b.Step(500e3, 1)
	if applied != b.Config().MaxDischargeW {
		t.Errorf("applied = %v, want clip to %v", applied, b.Config().MaxDischargeW)
	}
	if b.Events().DischargeClipped != 1 {
		t.Errorf("clip event not counted: %+v", b.Events())
	}
}

func TestChargePowerClipping(t *testing.T) {
	b := newBMS(t, nil)
	applied, _ := b.Step(-500e3, 1)
	if applied != -b.Config().MaxChargeW {
		t.Errorf("applied = %v, want clip to %v", applied, -b.Config().MaxChargeW)
	}
	if b.Events().ChargeClipped != 1 {
		t.Errorf("clip event not counted: %+v", b.Events())
	}
}

func TestOverdischargeProtection(t *testing.T) {
	b := newBMS(t, func(c *Config) { c.InitialSoC = 10.0001; c.MinSoC = 10 })
	// Drain past the floor: the BMS must block further discharge.
	var blocked bool
	for i := 0; i < 5000; i++ {
		applied, soc := b.Step(50e3, 1)
		if soc <= 10 && applied == 0 {
			blocked = true
			break
		}
	}
	if !blocked {
		t.Fatal("overdischarge was never blocked")
	}
	if b.Events().OverdischargeBlocked == 0 {
		t.Error("overdischarge events not counted")
	}
	if b.SoC() < 9.9 {
		t.Errorf("SoC %v fell well below the protection floor", b.SoC())
	}
}

func TestOverchargeProtection(t *testing.T) {
	b := newBMS(t, func(c *Config) { c.InitialSoC = 99.9999 })
	var blocked bool
	for i := 0; i < 1000; i++ {
		applied, soc := b.Step(-30e3, 1)
		if soc >= 100 && applied == 0 {
			blocked = true
			break
		}
	}
	if !blocked {
		t.Fatal("overcharge was never blocked")
	}
	if b.Events().OverchargeBlocked == 0 {
		t.Error("overcharge events not counted")
	}
}

func TestThroughputAccounting(t *testing.T) {
	b := newBMS(t, nil)
	b.Step(36e3, 100) // 1 kWh discharge
	b.Step(-36e3, 50) // 0.5 kWh regen
	if got := b.DischargedKWh(); math.Abs(got-1) > 1e-9 {
		t.Errorf("discharged = %v kWh, want 1", got)
	}
	if got := b.RegeneratedKWh(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("regenerated = %v kWh, want 0.5", got)
	}
}

func TestCycleStatsAndDeltaSoH(t *testing.T) {
	b := newBMS(t, nil)
	for i := 0; i < 600; i++ {
		b.Step(20e3, 1)
	}
	dev, avg, err := b.CycleStats()
	if err != nil {
		t.Fatal(err)
	}
	if dev <= 0 {
		t.Errorf("dev = %v, want > 0 for a discharging trace", dev)
	}
	if avg >= 90 || avg <= 0 {
		t.Errorf("avg = %v, want in (0, 90)", avg)
	}
	d, err := b.DeltaSoH()
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Errorf("ΔSoH = %v, want > 0", d)
	}
}

func TestPeakShavingReducesDeltaSoH(t *testing.T) {
	// The core premise of the paper: the same total energy drawn as a
	// flat load degrades the battery less than a peaky load, because the
	// SoC trajectory deviates less from its mean path.
	flat := newBMS(t, nil)
	peaky := newBMS(t, nil)
	for i := 0; i < 1200; i++ {
		flat.Step(15e3, 1)
		if i%120 < 30 {
			peaky.Step(60e3, 1)
		} else {
			peaky.Step(0, 1)
		}
	}
	dFlat, err := flat.DeltaSoH()
	if err != nil {
		t.Fatal(err)
	}
	dPeaky, err := peaky.DeltaSoH()
	if err != nil {
		t.Fatal(err)
	}
	if dFlat >= dPeaky {
		t.Errorf("flat load ΔSoH %v should be below peaky %v", dFlat, dPeaky)
	}
}

func TestReset(t *testing.T) {
	b := newBMS(t, nil)
	b.Step(50e3, 100)
	b.Step(500e3, 1)
	if err := b.Reset(); err != nil {
		t.Fatal(err)
	}
	if b.SoC() != 90 {
		t.Errorf("SoC after reset = %v, want 90", b.SoC())
	}
	if len(b.Trace()) != 1 {
		t.Errorf("trace after reset has %d entries", len(b.Trace()))
	}
	if b.Events() != (Events{}) {
		t.Errorf("events not cleared: %+v", b.Events())
	}
	if b.DischargedKWh() != 0 {
		t.Error("throughput not cleared")
	}
}
