package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
)

// JobInfo identifies one executed scenario in the manifest.
type JobInfo struct {
	// Index is the job's position in its sweep expansion.
	Index int `json:"index"`
	// Cycle, Controller, and Scenario name the scenario cell (Scenario
	// is the fault-scenario name, empty for clean runs).
	Cycle      string `json:"cycle"`
	Controller string `json:"controller"`
	Scenario   string `json:"scenario,omitempty"`
	// Seed is the job's derived deterministic seed.
	Seed int64 `json:"seed"`
	// Fingerprint is the job's scenario hash (the sweep cache key),
	// rendered as fixed-width hex so JSON consumers keep all 64 bits.
	Fingerprint string `json:"fingerprint"`
}

// RunInfo is one sweep (or single run) recorded in the manifest.
type RunInfo struct {
	// Label names the sweep (the experiment harness, for evbench).
	Label string `json:"label,omitempty"`
	// BaseSeed is the sweep's base seed; per-job seeds derive from it.
	BaseSeed int64 `json:"base_seed"`
	// Fingerprint summarizes the whole sweep: a hash over the base seed
	// and every job fingerprint, in expansion order.
	Fingerprint string `json:"fingerprint"`
	// Jobs lists the executed scenarios in expansion order.
	Jobs []JobInfo `json:"jobs"`
}

// Manifest is the deterministic record of one tool invocation: which
// scenarios ran with which seeds and config fingerprints, under which
// code version, with a metric snapshot filtered to deterministic series.
// Two invocations of the same spec and seed on the same commit produce
// byte-identical manifests at any worker count; it is the receipt that
// makes a results directory reproducible.
type Manifest struct {
	mu sync.Mutex

	// Tool names the producing binary ("evbench", "evsim").
	Tool string `json:"tool"`
	// Git is `git describe --always --dirty` at run time (see
	// GitDescribe), "unknown" outside a repository.
	Git string `json:"git"`
	// GoVersion is the building toolchain.
	GoVersion string `json:"go_version"`
	// Runs are the recorded sweeps, in execution order.
	Runs []RunInfo `json:"runs"`
	// Resume is the resume lineage: one entry per journal this
	// invocation replayed finished jobs from. Empty for uninterrupted
	// runs; it is the only manifest section a resumed run is allowed to
	// differ in.
	Resume []ResumeInfo `json:"resume,omitempty"`
	// Metrics is the deterministic metric snapshot taken at Finalize.
	Metrics Snapshot `json:"metrics,omitempty"`
}

// ResumeInfo records one journal a resumed invocation replayed from.
type ResumeInfo struct {
	// Journal is the journal file's path.
	Journal string `json:"journal"`
	// SweepFingerprint is the journal header's sweep fingerprint.
	SweepFingerprint string `json:"sweep_fingerprint"`
	// ReplayedJobs counts the finished jobs taken from the journal
	// instead of re-executing.
	ReplayedJobs int `json:"replayed_jobs"`
	// Git is the journal header's code version.
	Git string `json:"git,omitempty"`
}

// NewManifest starts a manifest for the named tool.
func NewManifest(tool string) *Manifest {
	return &Manifest{Tool: tool, Git: "unknown", GoVersion: runtime.Version()}
}

// FormatFingerprint renders a 64-bit scenario hash the way manifests
// store it.
func FormatFingerprint(fp uint64) string { return fmt.Sprintf("%016x", fp) }

// AddRun appends one sweep's record. Safe for concurrent callers,
// though deterministic manifests require a deterministic append order —
// the harnesses run their sweeps sequentially.
func (m *Manifest) AddRun(r RunInfo) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.Runs = append(m.Runs, r)
	m.mu.Unlock()
}

// AddResume appends one journal's resume-lineage record. Safe for
// concurrent callers.
func (m *Manifest) AddResume(r ResumeInfo) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.Resume = append(m.Resume, r)
	m.mu.Unlock()
}

// Finalize stamps the code version and the metric snapshot. Pass the
// registry's Snapshot(DeterministicFilter) to keep the manifest
// byte-stable across runs.
func (m *Manifest) Finalize(git string, metrics Snapshot) {
	m.mu.Lock()
	if git != "" {
		m.Git = git
	}
	m.Metrics = metrics
	m.mu.Unlock()
}

// Write writes the manifest as indented JSON with a stable field
// order.
func (m *Manifest) Write(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile writes the manifest next to the results it describes.
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// GitDescribe returns `git describe --always --dirty --tags` for the
// given directory ("" = current), or "unknown" when git or the
// repository is unavailable. Deterministic for a given commit state.
func GitDescribe(dir string) string {
	cmd := exec.Command("git", "describe", "--always", "--dirty", "--tags")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
