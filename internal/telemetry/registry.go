package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a concurrency-safe metrics registry. Instrument lookup
// takes a mutex and may allocate; the instruments themselves are
// lock-free (atomic adds and stores), so resolve once, then hammer from
// any number of sweep workers.
//
// All instrument methods tolerate a nil receiver as a no-op, so code
// threaded with an optional registry can keep its hot path branch-free.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
}

// series is one registered instrument with its identity.
type series struct {
	name    string
	labels  []Label
	kind    string // "counter" | "gauge" | "histogram"
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// ident canonicalizes an instrument identity: name plus labels sorted by
// key. Labels are copied before sorting so callers' slices stay intact.
func ident(name string, labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return name, nil
	}
	ls := append([]Label{}, labels...)
	sort.SliceStable(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	sb.WriteByte('}')
	return sb.String(), ls
}

// lookup returns the series for (name, labels), creating it with mk on
// first use and panicking on a kind mismatch (a programming error: one
// name must keep one kind).
func (r *Registry) lookup(name, kind string, labels []Label, mk func(*series)) *series {
	id, ls := ident(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[id]
	if !ok {
		s = &series{name: name, labels: ls, kind: kind}
		mk(s)
		r.series[id] = s
		return s
	}
	if s.kind != kind {
		panic(fmt.Sprintf("telemetry: %q registered as %s, requested as %s", name, s.kind, kind))
	}
	return s
}

// Counter returns the counter for (name, labels), registering it on
// first use. Safe for concurrent callers; nil receiver returns a no-op
// nil instrument.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, "counter", labels, func(s *series) { s.counter = &Counter{} }).counter
}

// Gauge returns the gauge for (name, labels).
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, "gauge", labels, func(s *series) { s.gauge = &Gauge{} }).gauge
}

// Histogram returns the fixed-bucket histogram for (name, labels). The
// buckets are upper bounds in increasing order (an implicit +Inf bucket
// is appended); they are fixed at first registration — later calls with
// different buckets reuse the original layout.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, "histogram", labels, func(s *series) { s.hist = newHistogram(buckets) }).hist
}

// Counter is a monotonically increasing float64 with an atomic hot path.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (no-op on a nil receiver).
func (c *Counter) Add(v float64) {
	if c == nil {
		return
	}
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current total (0 on a nil receiver).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a last-write-wins float64 with an atomic hot path.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v (no-op on a nil receiver).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: counts per bucket, total count,
// and sum, all maintained with atomics. Bucket bounds never change after
// construction, so Observe is lock-free.
type Histogram struct {
	uppers []float64       // sorted upper bounds; the +Inf bucket is counts[len(uppers)]
	counts []atomic.Uint64 // len(uppers)+1
	sum    Counter
	count  atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	up := append([]float64{}, buckets...)
	sort.Float64s(up)
	return &Histogram{uppers: up, counts: make([]atomic.Uint64, len(up)+1)}
}

// Observe records one sample (no-op on a nil receiver).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.uppers, v) // first bucket with upper ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on a nil receiver).
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Default bucket layouts shared by the stack's emitters.
var (
	// IterationBuckets covers solver iteration counts (SQP majors, QP
	// interior-point iterations).
	IterationBuckets = []float64{1, 2, 3, 5, 8, 12, 17, 25, 35, 50, 75, 100}
	// LatencyBuckets covers control-step wall-clock latencies in
	// seconds, 50 µs to ~3 s.
	LatencyBuckets = []float64{50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1, 3}
)

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	// Upper is the bucket's inclusive upper bound; +Inf for the last.
	Upper float64 `json:"-"`
	// Count is the cumulative count of observations ≤ Upper.
	Count uint64 `json:"count"`
}

// MarshalJSON emits the bound as a string ("le" in Prometheus parlance)
// because encoding/json rejects +Inf as a number.
func (b BucketCount) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.Upper, 1) {
		le = strconv.FormatFloat(b.Upper, 'g', -1, 64)
	}
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, le, b.Count)), nil
}

// Metric is one instrument's state in a snapshot.
type Metric struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Labels []Label `json:"labels,omitempty"`
	// Value is the counter total, the gauge value, or the histogram sum.
	Value float64 `json:"value"`
	// Count is the histogram observation count.
	Count uint64 `json:"count,omitempty"`
	// Buckets are the histogram's cumulative buckets.
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, sorted by name then
// label identity — byte-stable for equal registry contents.
type Snapshot []Metric

// DeterministicFilter accepts every metric whose value is a pure
// function of scenario and seed, rejecting wall-clock-derived series by
// the naming convention that their names end in "_seconds", "_ns", or
// "_real_time_factor" (a duration ratio is as machine-dependent as the
// duration itself), durability bookkeeping (journal replays,
// checkpoints, watchdog retries) by the "resume_" name prefix — how many
// jobs were replayed or retried depends on when a sweep was interrupted,
// not on what it computed, and a resumed run's manifest must match an
// uninterrupted run's — and distributed-fabric bookkeeping (leases
// granted/expired/reclaimed, worker liveness) by the "fabric_" prefix:
// which worker ran which unit is scheduling, not physics, and a fabric
// run's manifest must match the single-process run's byte for byte. The
// run manifest snapshots through this filter so equal runs produce
// byte-identical manifests.
func DeterministicFilter(name string) bool {
	return !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_ns") &&
		!strings.HasSuffix(name, "_real_time_factor") &&
		!strings.HasPrefix(name, "resume_") &&
		!strings.HasPrefix(name, "fabric_")
}

// Snapshot copies the registry's current state. A nil filter keeps every
// metric; otherwise only names the filter accepts are included. A nil
// registry yields a nil snapshot.
func (r *Registry) Snapshot(filter func(name string) bool) Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ids := make([]string, 0, len(r.series))
	for id := range r.series {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make(Snapshot, 0, len(ids))
	for _, id := range ids {
		s := r.series[id]
		if filter != nil && !filter(s.name) {
			continue
		}
		m := Metric{Name: s.name, Kind: s.kind, Labels: s.labels}
		switch s.kind {
		case "counter":
			m.Value = s.counter.Value()
		case "gauge":
			m.Value = s.gauge.Value()
		case "histogram":
			h := s.hist
			m.Value = h.Sum()
			m.Count = h.Count()
			var cum uint64
			m.Buckets = make([]BucketCount, len(h.counts))
			for i := range h.counts {
				cum += h.counts[i].Load()
				upper := math.Inf(1)
				if i < len(h.uppers) {
					upper = h.uppers[i]
				}
				m.Buckets[i] = BucketCount{Upper: upper, Count: cum}
			}
		}
		out = append(out, m)
	}
	r.mu.Unlock()
	return out
}
