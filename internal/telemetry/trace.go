package telemetry

import "sync"

// StepSpan is the trace record of one control step: what the controller
// saw, what it commanded, what its optimizer spent, and where the
// supervision ladder stood. Every field except LatencyNs is a pure
// function of the scenario and its seed.
type StepSpan struct {
	// Job is the sweep job index that produced the span (0 for single
	// runs; the sweep engine tags spans after the job completes).
	Job int `json:"job"`
	// Step is the control-step index within the run.
	Step int `json:"step"`
	// TimeS is the simulation time at the start of the step.
	TimeS float64 `json:"t"`
	// CabinC, OutsideC are the true plant temperatures at the step.
	CabinC   float64 `json:"cabin_c"`
	OutsideC float64 `json:"outside_c"`
	// SoCPct is the battery state of charge after the step; SoCDeltaPct
	// the change over the step (negative = discharge).
	SoCPct      float64 `json:"soc_pct"`
	SoCDeltaPct float64 `json:"soc_delta_pct"`
	// HVACW is the total HVAC electrical power applied over the step.
	HVACW float64 `json:"hvac_w"`
	// SupplyC, CoilC, Recirc, AirFlowKgS are the applied HVAC command.
	SupplyC    float64 `json:"supply_c"`
	CoilC      float64 `json:"coil_c"`
	Recirc     float64 `json:"recirc"`
	AirFlowKgS float64 `json:"airflow_kg_s"`
	// SolverIters and QPIters are the optimizing controller's SQP major
	// and accumulated QP interior-point iterations for the step's solve;
	// SolverStatus its termination status. Empty/zero for non-optimizing
	// controllers.
	SolverIters  int    `json:"solver_iters,omitempty"`
	QPIters      int    `json:"qp_iters,omitempty"`
	SolverStatus string `json:"solver_status,omitempty"`
	// Rung is the supervision-ladder level that produced the applied
	// output (0 = most capable); -1 when the controller is unsupervised.
	// Stage is the rung's name.
	Rung  int    `json:"rung"`
	Stage string `json:"stage,omitempty"`
	// FaultsActive counts fault injections whose schedule window covers
	// this step.
	FaultsActive int `json:"faults_active,omitempty"`
	// PackC is the battery-pack temperature after the step; COP the
	// heat-pump conversion factor applied to cabin heating this step;
	// BattHeatW and BattChillW the battery-branch commands. All zero (and
	// omitted) outside thermal-network runs.
	PackC      float64 `json:"pack_c,omitempty"`
	COP        float64 `json:"cop,omitempty"`
	BattHeatW  float64 `json:"batt_heat_w,omitempty"`
	BattChillW float64 `json:"batt_chill_w,omitempty"`
	// LatencyNs is the wall-clock time of the controller decision
	// (Decide plus actuator clamping). It is the one nondeterministic
	// span field; deterministic exports omit it.
	LatencyNs int64 `json:"latency_ns,omitempty"`
}

// StepTrace is a bounded, concurrency-safe ring buffer of step spans:
// one per run (or per sweep job), sized so a pathological run cannot
// exhaust memory. When full, the oldest spans are overwritten and
// counted in Dropped.
type StepTrace struct {
	mu      sync.Mutex
	buf     []StepSpan
	start   int // index of the oldest span
	n       int // number of valid spans
	dropped uint64
}

// DefaultTraceCap is the ring capacity used when NewStepTrace gets a
// nonpositive capacity — enough for a 4-hour drive at a 5 s control
// period.
const DefaultTraceCap = 4096

// NewStepTrace returns a recorder holding the last capacity spans
// (DefaultTraceCap when capacity ≤ 0).
func NewStepTrace(capacity int) *StepTrace {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &StepTrace{buf: make([]StepSpan, 0, capacity)}
}

// Record appends one span, overwriting the oldest when full.
func (t *StepTrace) Record(s StepSpan) {
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, s)
		t.n++
	} else {
		t.buf[t.start] = s
		t.start = (t.start + 1) % cap(t.buf)
		t.dropped++
	}
	t.mu.Unlock()
}

// Spans returns the recorded spans oldest-first, as a copy.
func (t *StepTrace) Spans() []StepSpan {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StepSpan, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(t.start+i)%len(t.buf)])
	}
	return out
}

// Dropped returns the number of spans overwritten by the ring.
func (t *StepTrace) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// TraceLog accumulates spans across runs in a deterministic order: the
// sweep engine appends each job's spans, in job order, after the sweep
// completes. It is the sweep-level counterpart of the per-run ring.
type TraceLog struct {
	mu    sync.Mutex
	spans []StepSpan
}

// Append adds spans to the log.
func (l *TraceLog) Append(spans ...StepSpan) {
	l.mu.Lock()
	l.spans = append(l.spans, spans...)
	l.mu.Unlock()
}

// Spans returns a copy of the accumulated spans.
func (l *TraceLog) Spans() []StepSpan {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]StepSpan{}, l.spans...)
}

// Len returns the number of accumulated spans.
func (l *TraceLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.spans)
}
