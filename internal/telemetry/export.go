package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteJSONL writes spans as one JSON object per line, in order. When
// includeTiming is false (the deterministic mode), the wall-clock
// LatencyNs field is zeroed so two runs of the same scenario and seed
// produce byte-identical traces at any worker count.
func WriteJSONL(w io.Writer, spans []StepSpan, includeTiming bool) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range spans {
		s := spans[i]
		if !includeTiming {
			s.LatencyNs = 0
		}
		if err := enc.Encode(&s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONL writes the log's spans; see the package-level WriteJSONL.
func (l *TraceLog) WriteJSONL(w io.Writer, includeTiming bool) error {
	l.mu.Lock()
	spans := l.spans
	err := WriteJSONL(w, spans, includeTiming)
	l.mu.Unlock()
	return err
}

// fmtFloat renders a float the way Prometheus text exposition expects.
func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value for text exposition.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// promName sanitizes a metric or label name into the Prometheus charset.
func promName(name string) string {
	var sb strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// labelBlock renders {k="v",...} with optional extra pairs appended.
func labelBlock(labels []Label, extra ...Label) string {
	all := append(append([]Label{}, labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, promName(l.Key), escapeLabel(l.Value))
	}
	sb.WriteByte('}')
	return sb.String()
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per metric name, histograms as
// cumulative _bucket{le}/_sum/_count series. The snapshot is sorted, so
// equal registry contents produce byte-identical output.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	typed := map[string]bool{}
	for _, m := range s {
		name := promName(m.Name)
		if !typed[name] {
			typed[name] = true
			if _, err := fmt.Fprintf(bw, "# TYPE %s %s\n", name, m.Kind); err != nil {
				return err
			}
		}
		switch m.Kind {
		case "histogram":
			for _, b := range m.Buckets {
				fmt.Fprintf(bw, "%s_bucket%s %d\n", name, labelBlock(m.Labels, L("le", fmtFloat(b.Upper))), b.Count)
			}
			fmt.Fprintf(bw, "%s_sum%s %s\n", name, labelBlock(m.Labels), fmtFloat(m.Value))
			fmt.Fprintf(bw, "%s_count%s %d\n", name, labelBlock(m.Labels), m.Count)
		default:
			fmt.Fprintf(bw, "%s%s %s\n", name, labelBlock(m.Labels), fmtFloat(m.Value))
		}
	}
	return bw.Flush()
}
