package telemetry

import (
	"strings"
	"testing"
)

func buildManifest() *Manifest {
	m := NewManifest("test")
	m.AddRun(RunInfo{
		Label:       "sweep",
		BaseSeed:    42,
		Fingerprint: FormatFingerprint(0xdeadbeef),
		Jobs: []JobInfo{
			{Index: 0, Cycle: "ECE_EUDC", Controller: "On/Off", Seed: 7, Fingerprint: FormatFingerprint(1)},
			{Index: 1, Cycle: "ECE_EUDC", Controller: "Fuzzy-based", Scenario: "stuck", Seed: 8, Fingerprint: FormatFingerprint(2)},
		},
	})
	reg := NewRegistry()
	reg.Counter("sim_steps_total", L("controller", "On/Off")).Add(120)
	reg.Histogram("step_latency_seconds", LatencyBuckets).Observe(0.001)
	m.Finalize("v1.2.3-4-gabcdef", reg.Snapshot(DeterministicFilter))
	return m
}

func TestManifestDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := buildManifest().Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildManifest().Write(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("equal manifests rendered differently")
	}
	out := a.String()
	for _, want := range []string{
		`"tool": "test"`,
		`"git": "v1.2.3-4-gabcdef"`,
		`"base_seed": 42`,
		`"fingerprint": "00000000deadbeef"`,
		`"scenario": "stuck"`,
		`"sim_steps_total"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("manifest missing %s in:\n%s", want, out)
		}
	}
	// The wall-clock histogram must not survive the deterministic filter.
	if strings.Contains(out, "step_latency_seconds") {
		t.Error("manifest leaked a wall-clock metric")
	}
}

func TestGitDescribeUnavailable(t *testing.T) {
	if got := GitDescribe(t.TempDir()); got != "unknown" {
		t.Errorf("GitDescribe outside a repo = %q, want unknown", got)
	}
}
