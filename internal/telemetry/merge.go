package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
)

// This file is the journal-replay side of the metrics registry: a
// Snapshot that was serialized into a sweep journal (per-job metric
// state) can be folded back into a live registry, so a resumed sweep's
// final registry — replayed jobs merged, fresh jobs recorded live — is
// identical to an uninterrupted run's.

// UnmarshalJSON parses the {"le": "...", "count": N} form MarshalJSON
// emits, restoring the +Inf upper bound from its string spelling.
func (b *BucketCount) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    string `json:"le"`
		Count uint64 `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.LE == "+Inf" {
		b.Upper = math.Inf(1)
	} else {
		v, err := strconv.ParseFloat(raw.LE, 64)
		if err != nil {
			return fmt.Errorf("telemetry: bucket bound %q: %w", raw.LE, err)
		}
		b.Upper = v
	}
	b.Count = raw.Count
	return nil
}

// Merge folds a snapshot into the registry: counters add their totals,
// gauges take the snapshot's value (each per-job gauge series lives
// under job-unique labels, so last-write-wins is exact), and histograms
// add their de-cumulated per-bucket counts, observation counts, and
// sums. Instruments are registered on first use, so merging into an
// empty registry reconstructs the snapshot exactly. Counter totals and
// bucket counts are small integers, which float64 addition carries
// exactly, so merge order cannot perturb the result.
func (r *Registry) Merge(snap Snapshot) error {
	if r == nil {
		return nil
	}
	for i := range snap {
		m := &snap[i]
		switch m.Kind {
		case "counter":
			r.Counter(m.Name, m.Labels...).Add(m.Value)
		case "gauge":
			r.Gauge(m.Name, m.Labels...).Set(m.Value)
		case "histogram":
			if len(m.Buckets) == 0 {
				return fmt.Errorf("telemetry: merge histogram %q: no buckets", m.Name)
			}
			uppers := make([]float64, 0, len(m.Buckets)-1)
			for _, b := range m.Buckets {
				if !math.IsInf(b.Upper, 1) {
					uppers = append(uppers, b.Upper)
				}
			}
			h := r.Histogram(m.Name, uppers, m.Labels...)
			if len(h.counts) != len(m.Buckets) {
				return fmt.Errorf("telemetry: merge histogram %q: %d buckets, registry has %d", m.Name, len(m.Buckets), len(h.counts))
			}
			for j, u := range uppers {
				if h.uppers[j] != u {
					return fmt.Errorf("telemetry: merge histogram %q: bucket bound %v, registry has %v", m.Name, u, h.uppers[j])
				}
			}
			var prev uint64
			for j := range m.Buckets {
				if c := m.Buckets[j].Count; c >= prev {
					h.counts[j].Add(c - prev)
					prev = c
				} else {
					return fmt.Errorf("telemetry: merge histogram %q: non-cumulative bucket counts", m.Name)
				}
			}
			h.count.Add(m.Count)
			h.sum.Add(m.Value)
		default:
			return fmt.Errorf("telemetry: merge: unknown metric kind %q for %q", m.Kind, m.Name)
		}
	}
	return nil
}
