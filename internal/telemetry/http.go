package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
)

// debugRegistry backs the process-wide expvar "telemetry" variable: the
// registry of the most recently started debug server. expvar.Publish is
// global and once-only, so the variable indirects through this pointer.
var debugRegistry atomic.Pointer[Registry]

func init() {
	expvar.Publish("telemetry", expvar.Func(func() any {
		return debugRegistry.Load().Snapshot(nil)
	}))
}

// DebugServer is a localhost diagnostics listener: net/http/pprof
// profiles, expvar (including the registry snapshot under the
// "telemetry" var), and the registry as Prometheus text on /metrics.
type DebugServer struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string

	srv *http.Server
	ln  net.Listener
}

// StartDebugServer binds addr (e.g. "localhost:6060") and serves:
//
//	/debug/pprof/...  CPU, heap, goroutine, ... profiles
//	/debug/vars       expvar JSON (memstats + telemetry snapshot)
//	/metrics          Prometheus text exposition of reg
//
// The server runs until Close. Pass a nil registry to expose only the
// pprof and expvar endpoints.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	debugRegistry.Store(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.Snapshot(nil).WritePrometheus(w)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return &DebugServer{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// Close stops the listener.
func (d *DebugServer) Close() error { return d.srv.Close() }
