// Package telemetry is the observability layer of the co-simulation
// stack: a concurrency-safe metrics registry (counters, gauges, and
// fixed-bucket histograms with atomic hot paths), a ring-buffered
// per-control-step trace recorder, exporters for JSONL traces and
// Prometheus-style text exposition, and a deterministic run manifest.
//
// The package is dependency-free (standard library only) and is threaded
// through the stack behind the Sink interface: sim.Runner emits one
// StepSpan per control step, the MPC and its solvers report iteration
// and status counters, the supervisor records ladder transitions, and
// the sweep engine aggregates per-worker metrics into one sweep-level
// snapshot. The zero-cost default is Nop: a sink whose Active method
// reports false, letting hot paths skip span construction entirely, and
// whose instruments are nil pointers with nil-tolerant no-op methods.
//
// Determinism: every metric and span field except wall-clock timing is a
// pure function of the scenario and its seed, so two runs of the same
// spec produce byte-identical exports at any worker count. Wall-clock
// metrics are segregated by naming convention — names ending in
// "_seconds", "_ns", or "_real_time_factor" — and excluded by
// DeterministicFilter, which the run manifest applies to its metric
// snapshot.
package telemetry

// Label is one key=value metric dimension. Sweep-level sinks label
// instruments by scenario, controller, and cycle.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for Label{Key: key, Value: value}.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Sink receives telemetry from one simulation run. Implementations must
// be safe for use from the single goroutine driving the run; distinct
// runs get distinct sinks (sharing one Registry underneath is safe).
//
// Instrument lookups allocate; hot paths should resolve instruments once
// and reuse them across steps.
type Sink interface {
	// Active reports whether the sink records anything. Emitters may
	// (and should) skip building spans and reading clocks when false.
	Active() bool
	// Step records one control-step span.
	Step(s *StepSpan)
	// Counter, Gauge, and Histogram resolve labeled instruments in the
	// sink's registry, with the sink's base labels prepended. They
	// return nil (a no-op instrument) when the sink has no registry.
	Counter(name string, labels ...Label) *Counter
	Gauge(name string, labels ...Label) *Gauge
	Histogram(name string, buckets []float64, labels ...Label) *Histogram
}

// Nop is the zero-cost default sink: inactive, records nothing, and
// hands out nil instruments whose methods are no-ops.
var Nop Sink = nopSink{}

type nopSink struct{}

func (nopSink) Active() bool                      { return false }
func (nopSink) Step(*StepSpan)                    {}
func (nopSink) Counter(string, ...Label) *Counter { return nil }
func (nopSink) Gauge(string, ...Label) *Gauge     { return nil }
func (nopSink) Histogram(string, []float64, ...Label) *Histogram {
	return nil
}

// sink is the live implementation: a registry for metrics, an optional
// recorder for spans, and base labels stamped on every instrument.
type sink struct {
	reg  *Registry
	rec  *StepTrace
	base []Label
}

// NewSink builds a live sink over the given registry and step-trace
// recorder. Either may be nil: a nil registry discards metrics, a nil
// recorder discards spans (but the sink stays Active, so spans are still
// built — use Nop to disable telemetry entirely). Base labels are
// prepended to every instrument lookup.
func NewSink(reg *Registry, rec *StepTrace, base ...Label) Sink {
	return &sink{reg: reg, rec: rec, base: base}
}

func (s *sink) Active() bool { return true }

func (s *sink) Step(span *StepSpan) {
	if s.rec != nil {
		s.rec.Record(*span)
	}
}

func (s *sink) labels(labels []Label) []Label {
	if len(s.base) == 0 {
		return labels
	}
	out := make([]Label, 0, len(s.base)+len(labels))
	out = append(out, s.base...)
	return append(out, labels...)
}

func (s *sink) Counter(name string, labels ...Label) *Counter {
	if s.reg == nil {
		return nil
	}
	return s.reg.Counter(name, s.labels(labels)...)
}

func (s *sink) Gauge(name string, labels ...Label) *Gauge {
	if s.reg == nil {
		return nil
	}
	return s.reg.Gauge(name, s.labels(labels)...)
}

func (s *sink) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	if s.reg == nil {
		return nil
	}
	return s.reg.Histogram(name, buckets, s.labels(labels)...)
}

// WithLabels wraps a sink so every instrument carries the extra labels —
// e.g. the supervised ladder labels its two MPC stages "mpc-full" and
// "mpc-short" on one shared sink. Wrapping Nop returns Nop.
func WithLabels(s Sink, labels ...Label) Sink {
	if s == nil || !s.Active() || len(labels) == 0 {
		if s == nil {
			return Nop
		}
		return s
	}
	if ls, ok := s.(*sink); ok {
		return &sink{reg: ls.reg, rec: ls.rec, base: append(append([]Label{}, ls.base...), labels...)}
	}
	return &labeledSink{Sink: s, extra: labels}
}

// labeledSink decorates a foreign Sink implementation with extra labels.
type labeledSink struct {
	Sink
	extra []Label
}

func (l *labeledSink) with(labels []Label) []Label {
	return append(append([]Label{}, l.extra...), labels...)
}

func (l *labeledSink) Counter(name string, labels ...Label) *Counter {
	return l.Sink.Counter(name, l.with(labels)...)
}

func (l *labeledSink) Gauge(name string, labels ...Label) *Gauge {
	return l.Sink.Gauge(name, l.with(labels)...)
}

func (l *labeledSink) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	return l.Sink.Histogram(name, buckets, l.with(labels)...)
}
