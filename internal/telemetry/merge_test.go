package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

// populate fills a registry with one instrument of each kind, labeled
// the way sweep jobs label their series.
func populate(reg *Registry) {
	reg.Counter("sim_steps_total", L("cycle", "ECE15")).Add(150)
	reg.Counter("sim_steps_total", L("cycle", "UDDS")).Add(120)
	reg.Gauge("supervisor_level", L("cycle", "ECE15")).Set(2)
	h := reg.Histogram("solver_iterations", []float64{1, 2, 5, 10}, L("cycle", "ECE15"))
	for _, v := range []float64{0.5, 1.5, 3, 7, 20} {
		h.Observe(v)
	}
}

// TestMergeReconstructsSnapshot pins the journal-replay contract: a
// snapshot merged into an empty registry reproduces the original
// snapshot byte for byte — including after a JSON round trip, which is
// how snapshots travel through journal records.
func TestMergeReconstructsSnapshot(t *testing.T) {
	src := NewRegistry()
	populate(src)
	snap := src.Snapshot(nil)

	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}

	dst := NewRegistry()
	if err := dst.Merge(decoded); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := snap.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := dst.Snapshot(nil).WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("merged registry differs from source:\n%s\nvs\n%s", b.String(), a.String())
	}
}

// TestMergeAccumulates: merging two job snapshots sums counters and
// histograms exactly, matching a registry that recorded both jobs live.
func TestMergeAccumulates(t *testing.T) {
	live := NewRegistry()
	populate(live)
	populate(live)

	merged := NewRegistry()
	one := NewRegistry()
	populate(one)
	snap := one.Snapshot(nil)
	if err := merged.Merge(snap); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(snap); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := live.Snapshot(nil).WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := merged.Snapshot(nil).WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("double merge != double record:\n%s\nvs\n%s", b.String(), a.String())
	}
}

// TestMergeConcurrent is the fabric coordinator's merge contract under
// the race detector: N per-job snapshot registries folded into one
// shared registry from concurrent goroutines — the shape of completion
// records arriving from parallel workers — produce the exact Prometheus
// text a sequential merge does. Counters and bucket counts are small
// integers, which float64 addition carries exactly, so interleaving
// cannot perturb the totals; per-job gauges live under job-unique
// labels, so last-write-wins never races across jobs.
func TestMergeConcurrent(t *testing.T) {
	const n = 24
	snaps := make([]Snapshot, n)
	for i := range snaps {
		reg := NewRegistry()
		populate(reg)
		// A job-unique gauge series per snapshot (distinct label value),
		// plus extra per-cycle counts so every snapshot is distinct.
		reg.Counter("sim_steps_total", L("cycle", "ECE15")).Add(float64(i))
		reg.Gauge("supervisor_level", L("job", FormatFingerprint(uint64(i)))).Set(float64(i % 4))
		snaps[i] = reg.Snapshot(nil)
	}

	seq := NewRegistry()
	for _, s := range snaps {
		if err := seq.Merge(s); err != nil {
			t.Fatal(err)
		}
	}

	conc := NewRegistry()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := range snaps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = conc.Merge(snaps[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	var a, b bytes.Buffer
	if err := seq.Snapshot(nil).WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := conc.Snapshot(nil).WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("concurrent merge differs from sequential:\n%s\nvs\n%s", b.String(), a.String())
	}
}

func TestMergeRejectsMalformedHistograms(t *testing.T) {
	dst := NewRegistry()
	if err := dst.Merge(Snapshot{{Name: "h", Kind: "histogram"}}); err == nil {
		t.Error("histogram without buckets accepted")
	}
	if err := dst.Merge(Snapshot{{Name: "x", Kind: "exotic"}}); err == nil {
		t.Error("unknown metric kind accepted")
	}
	// Non-cumulative bucket counts are corrupt.
	bad := Snapshot{{
		Name: "h2", Kind: "histogram", Count: 3, Value: 1,
		Buckets: []BucketCount{{Upper: 1, Count: 5}, {Upper: math.Inf(1), Count: 2}},
	}}
	if err := dst.Merge(bad); err == nil {
		t.Error("non-cumulative buckets accepted")
	}
}

func TestBucketCountJSONRoundTrip(t *testing.T) {
	for _, b := range []BucketCount{{Upper: 0.5, Count: 3}, {Upper: math.Inf(1), Count: 9}} {
		data, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		var got BucketCount
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("%s: %v", data, err)
		}
		if got.Count != b.Count || (got.Upper != b.Upper && !(math.IsInf(got.Upper, 1) && math.IsInf(b.Upper, 1))) {
			t.Errorf("round trip %+v -> %s -> %+v", b, data, got)
		}
	}
	var bad BucketCount
	if err := json.Unmarshal([]byte(`{"le":"nope","count":1}`), &bad); err == nil {
		t.Error("unparseable bucket bound accepted")
	}
}
