package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_requests_total", L("kind", "unit")).Add(3)

	dbg, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + dbg.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, `test_requests_total{kind="unit"} 3`) {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, `"telemetry"`) {
		t.Error("/debug/vars missing telemetry var")
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestDebugServerNilRegistry(t *testing.T) {
	dbg, err := StartDebugServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()
	resp, err := http.Get("http://" + dbg.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/metrics with nil registry: status %d", resp.StatusCode)
	}
}
