package telemetry

import (
	"strings"
	"testing"
)

func TestStepTraceRing(t *testing.T) {
	tr := NewStepTrace(4)
	for i := 0; i < 7; i++ {
		tr.Record(StepSpan{Step: i})
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("len = %d, want 4", len(spans))
	}
	for i, s := range spans {
		if s.Step != 3+i {
			t.Errorf("span %d step = %d, want %d (oldest-first)", i, s.Step, 3+i)
		}
	}
	if tr.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", tr.Dropped())
	}
}

func TestWriteJSONLDeterministic(t *testing.T) {
	spans := []StepSpan{
		{Job: 1, Step: 0, TimeS: 0, CabinC: 24, Rung: -1, LatencyNs: 12345},
		{Job: 1, Step: 1, TimeS: 5, CabinC: 24.5, Rung: 0, Stage: "mpc-full", SolverIters: 7, SolverStatus: "converged", LatencyNs: 54321},
	}
	var a, b strings.Builder
	if err := WriteJSONL(&a, spans, false); err != nil {
		t.Fatal(err)
	}
	spans[0].LatencyNs = 999 // timing noise must not leak into the export
	if err := WriteJSONL(&b, spans, false); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("deterministic export changed with latency")
	}
	if strings.Contains(a.String(), "latency_ns") {
		t.Error("deterministic export leaked latency_ns")
	}
	if lines := strings.Count(a.String(), "\n"); lines != 2 {
		t.Errorf("got %d lines, want 2", lines)
	}
	if !strings.Contains(a.String(), `"solver_status":"converged"`) {
		t.Errorf("missing solver status in %s", a.String())
	}

	var c strings.Builder
	if err := WriteJSONL(&c, spans, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.String(), "latency_ns") {
		t.Error("timing export dropped latency_ns")
	}
}

func TestTraceLogAppendOrder(t *testing.T) {
	var l TraceLog
	l.Append(StepSpan{Job: 0, Step: 0}, StepSpan{Job: 0, Step: 1})
	l.Append(StepSpan{Job: 1, Step: 0})
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	s := l.Spans()
	if s[2].Job != 1 {
		t.Errorf("append order broken: %+v", s)
	}
}
