package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers one registry from many goroutines —
// the sweep-worker pattern — and checks the totals. Run under -race.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const workers = 16
	const perWorker = 2000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Shared instrument, resolved per worker (must be the same
			// underlying counter) plus a per-worker labeled series.
			shared := reg.Counter("steps_total")
			own := reg.Counter("worker_steps_total", L("worker", string(rune('a'+w))))
			h := reg.Histogram("iters", IterationBuckets)
			g := reg.Gauge("level")
			for i := 0; i < perWorker; i++ {
				shared.Inc()
				own.Add(0.5)
				h.Observe(float64(i % 40))
				g.Set(float64(w))
			}
		}(w)
	}
	wg.Wait()

	if got := reg.Counter("steps_total").Value(); got != workers*perWorker {
		t.Errorf("steps_total = %v, want %v", got, workers*perWorker)
	}
	h := reg.Histogram("iters", IterationBuckets)
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %v, want %v", got, workers*perWorker)
	}
	snap := reg.Snapshot(nil)
	if len(snap) != 3+workers {
		t.Errorf("snapshot has %d series, want %d", len(snap), 3+workers)
	}
}

func TestNilInstrumentsAreNoops(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(3)
	r.Histogram("z", IterationBuckets).Observe(1)
	if r.Snapshot(nil) != nil {
		t.Error("nil registry snapshot should be nil")
	}
	if Nop.Active() {
		t.Error("Nop must be inactive")
	}
	Nop.Counter("x").Add(1)
	Nop.Step(&StepSpan{})
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0, 1, 2, 5, 7, 11, 100} {
		h.Observe(v)
	}
	// Cumulative: ≤1: {0,1}=2, ≤5: +{2,5}=4, ≤10: +{7}=5, +Inf: 7.
	want := []uint64{2, 4, 5, 7}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum != want[i] {
			t.Errorf("bucket %d cumulative = %d, want %d", i, cum, want[i])
		}
	}
	if h.Sum() != 126 {
		t.Errorf("sum = %v, want 126", h.Sum())
	}
}

func TestSnapshotDeterministicAndFiltered(t *testing.T) {
	build := func() *Registry {
		reg := NewRegistry()
		reg.Counter("b_total", L("cycle", "UDDS")).Add(2)
		reg.Counter("a_total").Add(1)
		reg.Histogram("lat_seconds", LatencyBuckets).Observe(0.01)
		reg.Counter("saved_ns").Add(123)
		return reg
	}
	s1, s2 := build().Snapshot(nil), build().Snapshot(nil)
	var w1, w2 strings.Builder
	if err := s1.WritePrometheus(&w1); err != nil {
		t.Fatal(err)
	}
	if err := s2.WritePrometheus(&w2); err != nil {
		t.Fatal(err)
	}
	if w1.String() != w2.String() {
		t.Error("equal registries rendered differently")
	}
	if !strings.Contains(w1.String(), `b_total{cycle="UDDS"} 2`) {
		t.Errorf("missing labeled counter in:\n%s", w1.String())
	}
	if !strings.Contains(w1.String(), `lat_seconds_bucket`) {
		t.Errorf("missing histogram buckets in:\n%s", w1.String())
	}

	det := build().Snapshot(DeterministicFilter)
	for _, m := range det {
		if strings.HasSuffix(m.Name, "_seconds") || strings.HasSuffix(m.Name, "_ns") {
			t.Errorf("deterministic snapshot kept %q", m.Name)
		}
	}
	if len(det) != 2 {
		t.Errorf("deterministic snapshot has %d series, want 2", len(det))
	}
}

func TestWithLabels(t *testing.T) {
	reg := NewRegistry()
	s := NewSink(reg, nil, L("cycle", "ECE15"))
	WithLabels(s, L("stage", "mpc-full")).Counter("solves_total").Inc()
	snap := reg.Snapshot(nil)
	if len(snap) != 1 {
		t.Fatalf("got %d series", len(snap))
	}
	m := snap[0]
	if len(m.Labels) != 2 || m.Labels[0].Key != "cycle" || m.Labels[1].Key != "stage" {
		t.Errorf("labels = %+v", m.Labels)
	}
	if WithLabels(Nop, L("k", "v")).Active() {
		t.Error("labeled Nop must stay inactive")
	}
}

func TestCounterAddFloat(t *testing.T) {
	var c Counter
	c.Add(0.25)
	c.Add(0.75)
	if math.Abs(c.Value()-1) > 1e-15 {
		t.Errorf("value = %v", c.Value())
	}
}
