// Package sim is the co-simulation engine that plays the role of the
// paper's MATLAB/Simulink + AMESim setup (Sec. IV-A): it integrates the
// continuous EV plant — power train, cabin thermal model, and battery —
// with RK4 at a finer step than the controller period, closes the loop
// with a climate controller each control period, and records the traces
// and metrics (average HVAC power, ΔSoH, comfort statistics) that the
// paper's figures and tables report.
package sim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"evclimate/internal/battery"
	"evclimate/internal/bms"
	"evclimate/internal/cabin"
	"evclimate/internal/control"
	"evclimate/internal/drivecycle"
	"evclimate/internal/faults"
	"evclimate/internal/ode"
	"evclimate/internal/powertrain"
	"evclimate/internal/telemetry"
	"evclimate/internal/thermal"
	"evclimate/internal/units"
)

// Config assembles one co-simulation run.
type Config struct {
	// Profile is the drive profile (speed, slope, ambient, solar).
	Profile *drivecycle.Profile
	// Powertrain parameterizes the traction model.
	Powertrain powertrain.Params
	// Cabin parameterizes the HVAC plant.
	Cabin cabin.Params
	// BMS parameterizes the battery and its management.
	BMS bms.Config
	// TargetC is the desired cabin temperature.
	TargetC float64
	// ComfortBandC is the comfort-zone half-width around TargetC
	// (constraint C2). Default 3 °C.
	ComfortBandC float64
	// InitialCabinC is the cabin temperature at drive start; when NaN or
	// unset (zero along with UseAmbientStart), the first sample's ambient
	// temperature is used (a soaked car).
	InitialCabinC float64
	// UseAmbientStart forces InitialCabinC to the initial ambient.
	UseAmbientStart bool
	// ControlDt is the controller period in seconds (default Profile.Dt).
	ControlDt float64
	// PlantSubSteps is the number of RK4 plant sub-steps per control
	// period (default 5) — the plant/controller rate mismatch that makes
	// this a co-simulation rather than a single discretized model.
	PlantSubSteps int
	// ForecastSteps is the number of preview steps handed to the
	// controller (default 0: no preview; the MPC sets its own horizon).
	ForecastSteps int
	// SettleS excludes the initial pull-down transient from the comfort
	// statistics (default 300 s).
	SettleS float64
	// Faults, when non-nil and non-empty, is the fault scenario injected
	// between the plant and the controller: every control step's
	// StepContext is corrupted per the schedule before the controller
	// sees it, while the plant keeps integrating the true signals.
	Faults *faults.Spec
	// FaultSeed seeds the fault schedule's random draws; runs with equal
	// configs and seeds replay bit-identically.
	FaultSeed int64
	// Thermal, when non-nil, attaches the cold-climate battery thermal
	// network (internal/thermal): the pack exchanges heat with cabin,
	// coolant loop, and ambient, cabin heating runs through the heat pump
	// (PTC below cutoff), the battery heater/chiller branch commands in
	// cabin.Inputs actuate, Joule losses self-heat the pack, and the run
	// reports pack-temperature and calendar-aging metrics. Nil keeps the
	// paper's cabin-only co-simulation bit-for-bit.
	Thermal *thermal.Config
	// Telemetry, when non-nil and active, receives one StepSpan per
	// control step plus step counters and latency histograms. Nil (or
	// telemetry.Nop) adds no per-step work; the sweep engine excludes this
	// field from scenario fingerprints.
	Telemetry telemetry.Sink
}

// Trace records the closed-loop trajectories.
type Trace struct {
	// Time holds the control-step timestamps.
	Time []float64
	// CabinC, OutsideC are temperatures at those instants.
	CabinC, OutsideC []float64
	// MotorW, HeaterW, CoolerW, FanW, HVACW, TotalW are the power terms
	// applied over each step.
	MotorW, HeaterW, CoolerW, FanW, HVACW, TotalW []float64
	// SoC is the battery state of charge after each step, percent.
	SoC []float64
	// PackC is the battery-pack temperature after each step (thermal
	// runs only; nil otherwise).
	PackC []float64
	// Inputs are the HVAC inputs applied over each step.
	Inputs []cabin.Inputs
}

// growFloats returns s with capacity for at least n elements, keeping
// its values; the result aliases s when no growth is needed.
func growFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s
	}
	out := make([]float64, len(s), n)
	copy(out, s)
	return out
}

// growInputs is growFloats for the inputs column.
func growInputs(s []cabin.Inputs, n int) []cabin.Inputs {
	if cap(s) >= n {
		return s
	}
	out := make([]cabin.Inputs, len(s), n)
	copy(out, s)
	return out
}

// growTrace preallocates every trace column to the run's known step
// count so the per-step appends never regrow a slice mid-run. A fresh
// trace gets all ten float columns carved out of one slab allocation;
// a resumed trace grows its existing columns in place.
func growTrace(tr *Trace, n int, thermal bool) {
	if tr.Time == nil && tr.Inputs == nil {
		slab := make([]float64, 10*n)
		tr.Time = slab[0*n : 0*n : 1*n]
		tr.CabinC = slab[1*n : 1*n : 2*n]
		tr.OutsideC = slab[2*n : 2*n : 3*n]
		tr.MotorW = slab[3*n : 3*n : 4*n]
		tr.HeaterW = slab[4*n : 4*n : 5*n]
		tr.CoolerW = slab[5*n : 5*n : 6*n]
		tr.FanW = slab[6*n : 6*n : 7*n]
		tr.HVACW = slab[7*n : 7*n : 8*n]
		tr.TotalW = slab[8*n : 8*n : 9*n]
		tr.SoC = slab[9*n : 9*n : 10*n]
		if thermal {
			tr.PackC = make([]float64, 0, n)
		}
		tr.Inputs = make([]cabin.Inputs, 0, n)
		return
	}
	tr.Time = growFloats(tr.Time, n)
	tr.CabinC = growFloats(tr.CabinC, n)
	tr.OutsideC = growFloats(tr.OutsideC, n)
	tr.MotorW = growFloats(tr.MotorW, n)
	tr.HeaterW = growFloats(tr.HeaterW, n)
	tr.CoolerW = growFloats(tr.CoolerW, n)
	tr.FanW = growFloats(tr.FanW, n)
	tr.HVACW = growFloats(tr.HVACW, n)
	tr.TotalW = growFloats(tr.TotalW, n)
	tr.SoC = growFloats(tr.SoC, n)
	if thermal {
		tr.PackC = growFloats(tr.PackC, n)
	}
	tr.Inputs = growInputs(tr.Inputs, n)
}

// Result bundles a run's trace and summary metrics.
type Result struct {
	// Controller is the controller name.
	Controller string
	// Trace holds the full trajectories.
	Trace Trace
	// AvgHVACW is the mean HVAC electrical power (Fig. 8 / Table I).
	AvgHVACW float64
	// AvgMotorW is the mean traction power.
	AvgMotorW float64
	// AvgTotalW is the mean total battery power.
	AvgTotalW float64
	// HVACEnergyKWh is the integrated HVAC energy.
	HVACEnergyKWh float64
	// DeltaSoH is the SoH degradation for the cycle, percent (Fig. 7 /
	// Table I).
	DeltaSoH float64
	// SoCDev and SoCAvg are the battery stress statistics (Eqs. 16–17).
	SoCDev, SoCAvg float64
	// FinalSoC is the SoC at drive end.
	FinalSoC float64
	// CalendarDeltaSoH is the calendar-aging (storage) capacity loss over
	// the cycle, percent — Arrhenius in pack temperature, SoC-dependent
	// (thermal runs only; the cycle DeltaSoH above is additionally scaled
	// by the pack-temperature cycle stress factor).
	CalendarDeltaSoH float64
	// PackMeanC, PackMinC, and PackFinalC summarize the pack-temperature
	// trajectory (thermal runs only).
	PackMeanC, PackMinC, PackFinalC float64
	// HeatPumpFrac is the fraction of heating steps served by the heat
	// pump (vs PTC); AvgCOP the mean heating conversion factor over the
	// heat-pump steps (thermal runs only).
	HeatPumpFrac float64
	AvgCOP       float64
	// ThermalEnergyDefectJ is the thermal network's closing energy-ledger
	// defect — should be roundoff-small (thermal runs only).
	ThermalEnergyDefectJ float64
	// ComfortViolationFrac is the fraction of post-settling time spent
	// outside the comfort zone.
	ComfortViolationFrac float64
	// RMSTrackingErrC is the post-settling RMS of Tz − Ttarget.
	RMSTrackingErrC float64
	// Events are the BMS protection counters.
	Events bms.Events
}

// Runner holds the instantiated models for repeated runs.
type Runner struct {
	cfg   Config
	pt    *powertrain.Model
	hvac  *cabin.Model
	motor []float64 // precomputed P_e per profile sample

	// Preview scratch, reused across control steps so forecast does not
	// allocate three slices per step (see forecast for the aliasing
	// contract).
	fcMotor, fcOutside, fcSolar []float64

	// Plant-integration state reused across steps: the RK4 workspace,
	// the one-lane state vector, and the per-step values (zero-order-held
	// inputs, frozen pack temperature) the persistent RHS closure reads.
	// Rebuilding a closure and integrator per step allocates; these
	// fields keep the loop's integration allocation-free.
	integ ode.BatchRK4
	x1    [1]float64
	odeIn cabin.Inputs
	odeTb float64

	// st is the in-flight run's loop state (nil between runs); Snapshot
	// reads it. pendingResume is a checkpoint primed by Restore for the
	// next run.
	st            *runState
	pendingResume *Checkpoint
}

// New validates the configuration and precomputes the motor power
// profile (Algorithm 1, lines 2–5).
func New(cfg Config) (*Runner, error) {
	r, err := buildRunner(cfg)
	if err != nil {
		return nil, err
	}
	r.motor = r.pt.PowerProfile(r.cfg.Profile)
	return r, nil
}

// buildRunner validates the configuration and builds a Runner without the
// motor power profile. NewBatch uses it to share one profile across
// lanes that drive the same cycle with the same powertrain instead of
// recomputing the traction power per lane.
func buildRunner(cfg Config) (*Runner, error) {
	return buildRunnerShared(cfg, nil)
}

// buildRunnerShared is buildRunner with a cross-lane validation memo:
// batch lanes usually share profile pointers (one per cycle/environment
// cell), so NewBatch validates each distinct profile once instead of
// once per lane. A nil memo validates unconditionally.
func buildRunnerShared(cfg Config, validated map[*drivecycle.Profile]bool) (*Runner, error) {
	if cfg.Profile == nil {
		return nil, errors.New("sim: nil profile")
	}
	if !validated[cfg.Profile] {
		if err := cfg.Profile.Validate(); err != nil {
			return nil, err
		}
		if validated != nil {
			validated[cfg.Profile] = true
		}
	}
	if cfg.ControlDt <= 0 {
		cfg.ControlDt = cfg.Profile.Dt
	}
	if cfg.PlantSubSteps <= 0 {
		cfg.PlantSubSteps = 5
	}
	if cfg.ComfortBandC <= 0 {
		cfg.ComfortBandC = 3
	}
	if cfg.SettleS < 0 {
		return nil, fmt.Errorf("sim: negative settle time %v", cfg.SettleS)
	}
	if cfg.SettleS == 0 {
		cfg.SettleS = 120
	}
	pt, err := powertrain.New(cfg.Powertrain)
	if err != nil {
		return nil, err
	}
	hvac, err := cabin.New(cfg.Cabin)
	if err != nil {
		return nil, err
	}
	if err := cfg.BMS.Validate(); err != nil {
		return nil, err
	}
	if cfg.Thermal != nil {
		if err := cfg.Thermal.Validate(); err != nil {
			return nil, err
		}
	}
	return &Runner{cfg: cfg, pt: pt, hvac: hvac}, nil
}

// MotorPower returns the precomputed P_e at time t (zero-order hold).
func (r *Runner) MotorPower(t float64) float64 {
	idx := int(math.Floor(t / r.cfg.Profile.Dt))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(r.motor) {
		idx = len(r.motor) - 1
	}
	return r.motor[idx]
}

// forecast builds the preview window starting at time t. The returned
// slices alias the Runner's scratch buffers and are overwritten by the
// next call: consumers must copy what they keep across steps (the MPC
// resamples into its own horizon arrays; the fault injector's corrupt
// mode copies before mutating).
func (r *Runner) forecast(t float64, steps int) control.Forecast {
	if steps <= 0 {
		return control.Forecast{}
	}
	if cap(r.fcMotor) < steps {
		r.fcMotor = make([]float64, steps)
		r.fcOutside = make([]float64, steps)
		r.fcSolar = make([]float64, steps)
	}
	f := control.Forecast{
		Dt:          r.cfg.ControlDt,
		MotorPowerW: r.fcMotor[:steps],
		OutsideC:    r.fcOutside[:steps],
		SolarW:      r.fcSolar[:steps],
	}
	for k := 0; k < steps; k++ {
		tk := t + float64(k)*r.cfg.ControlDt
		s := r.cfg.Profile.At(tk)
		f.MotorPowerW[k] = r.MotorPower(tk)
		f.OutsideC[k] = s.AmbientC
		f.SolarW[k] = s.SolarW
	}
	return f
}

// Run simulates the whole profile under the given controller and returns
// the trace and metrics. The controller is Reset before the run.
func (r *Runner) Run(ctrl control.Controller) (*Result, error) {
	return r.RunWith(ctrl, RunOptions{})
}

// RunWith simulates the profile like Run, with durability controls: a
// per-step cancellation context (the watchdog hook), periodic state
// checkpoints, and resumption from a prior checkpoint. A resumed run's
// remaining trajectory is bit-for-bit identical to the uninterrupted
// run's. The controller is Reset before the run (and then restored, when
// resuming).
func (r *Runner) RunWith(ctrl control.Controller, opts RunOptions) (*Result, error) {
	cfg := r.cfg
	ctrl.Reset()
	b, err := bms.New(cfg.BMS)
	if err != nil {
		return nil, err
	}

	tz := cfg.InitialCabinC
	if cfg.UseAmbientStart {
		tz = cfg.Profile.Samples[0].AmbientC
	}

	dur := cfg.Profile.Duration()
	n := int(math.Ceil(dur / cfg.ControlDt))
	if n <= 0 {
		return nil, errors.New("sim: profile too short for one control step")
	}

	res := &Result{Controller: ctrl.Name()}
	tr := &res.Trace

	// The fault injector sits between the plant and the controller: it
	// corrupts what the controller observes, never what the plant does.
	var inj *faults.Injector
	if !cfg.Faults.Empty() {
		inj = cfg.Faults.New(cfg.FaultSeed)
	}

	// Telemetry is resolved once; when the sink is inactive the loop pays
	// only a boolean test per step.
	tel := cfg.Telemetry
	telOn := tel != nil && tel.Active()
	var (
		telSteps   *telemetry.Counter
		telLatency *telemetry.Histogram
		telPack    *telemetry.Gauge
		telCOP     *telemetry.Gauge
		telHPSteps *telemetry.Counter
		telPTC     *telemetry.Counter
		solver     control.SolveReporter
		ladder     control.LadderReporter
	)
	if telOn {
		telSteps = tel.Counter("sim_steps_total")
		telLatency = tel.Histogram("sim_step_latency_seconds", telemetry.LatencyBuckets)
		if cfg.Thermal != nil {
			telPack = tel.Gauge("sim_pack_temp_c")
			telCOP = tel.Gauge("sim_heatpump_cop")
			telHPSteps = tel.Counter("sim_heatpump_steps_total")
			telPTC = tel.Counter("sim_ptc_steps_total")
		}
		solver, _ = ctrl.(control.SolveReporter)
		ladder, _ = ctrl.(control.LadderReporter)
		// Late-bind the run's sink into the controller so solver and
		// ladder metrics land under this run's labels even when the
		// controller came from a zero-argument sweep constructor.
		if b, ok := ctrl.(control.TelemetryBinder); ok {
			b.BindTelemetry(tel)
		}
	}

	// The loop state lives on the Runner while the run is in flight so
	// Snapshot can capture it from an OnCheckpoint hook.
	st := &runState{ctrl: ctrl, b: b, inj: inj, res: res, n: n, tz: tz}
	if cfg.Thermal != nil {
		th, err := thermal.NewState(*cfg.Thermal, cfg.Profile.Samples[0].AmbientC)
		if err != nil {
			return nil, err
		}
		st.th = th
		st.cal = battery.DefaultCalendarParams()
	}
	r.st = st
	defer func() { r.st = nil }()

	if opts.Resume == nil && r.pendingResume != nil {
		opts.Resume = r.pendingResume
		r.pendingResume = nil
	}
	if opts.Resume != nil {
		if err := r.restore(st, opts.Resume); err != nil {
			return nil, err
		}
	}

	// The plant RHS closure is built once per run: the per-step state it
	// reads (the zero-order-held inputs, the frozen pack temperature)
	// flows through Runner fields, and the environment comes from a
	// sampler whose constant-field fast path returns the same bits
	// Profile.At interpolates.
	env := drivecycle.NewEnvSampler(cfg.Profile)
	sys := ode.BatchSystem(func(tt float64, x, dxdt []float64) {
		amb, sol := env.At(tt)
		dxdt[0] = r.hvac.CabinDerivative(x[0], r.odeIn, amb, sol)
	})
	if st.th != nil {
		// The pack→cabin conduction enters the cabin ODE with the pack
		// temperature frozen over the control period (the network itself
		// steps once per period below).
		kbc := cfg.Thermal.Network.UAPackCabinWK
		mc := cfg.Cabin.ThermalCapacitanceJK
		sys = func(tt float64, x, dxdt []float64) {
			amb, sol := env.At(tt)
			dxdt[0] = r.hvac.CabinDerivative(x[0], r.odeIn, amb, sol) + kbc*(r.odeTb-x[0])/mc
		}
	}
	sub := cfg.ControlDt / float64(cfg.PlantSubSteps)

	// Preallocate the trace to the known step count (after any resume
	// has restored its shorter prefix), so the per-step appends below
	// never regrow a slice mid-run.
	growTrace(tr, n, st.th != nil)
	b.Grow(n)

	for st.k < n {
		k := st.k
		t := float64(k) * cfg.ControlDt
		if opts.Context != nil {
			if cerr := opts.Context.Err(); cerr != nil {
				// Graceful drain: flush a final checkpoint so the caller
				// can resume from this exact step; the context error wins
				// over any checkpoint-sink failure.
				if opts.OnCheckpoint != nil {
					if ck, snapErr := r.Snapshot(); snapErr == nil {
						_ = opts.OnCheckpoint(ck)
					}
				}
				return nil, fmt.Errorf("sim: run aborted at step %d/%d: %w", k, n, cerr)
			}
		}
		amb, sol := env.At(t)
		pe := r.MotorPower(t)
		socBefore := b.SoC()

		ctx := control.StepContext{
			Time:         t,
			Dt:           cfg.ControlDt,
			CabinTempC:   st.tz,
			OutsideC:     amb,
			SolarW:       sol,
			MotorPowerW:  pe,
			SoC:          b.SoC(),
			TargetC:      cfg.TargetC,
			ComfortLowC:  cfg.TargetC - cfg.ComfortBandC,
			ComfortHighC: cfg.TargetC + cfg.ComfortBandC,
			Forecast:     r.forecast(t, cfg.ForecastSteps),
		}
		if st.th != nil {
			ctx.PackTempC = st.th.PackC()
			ctx.PackThermal = true
		}
		if inj != nil {
			inj.Apply(k, &ctx)
		}
		var stepStart time.Time
		if telOn {
			stepStart = time.Now()
		}
		in := ctrl.Decide(ctx)
		mix := r.hvac.ClampForEnvironmentInPlace(&in, amb, st.tz)
		var stepLatency time.Duration
		if telOn {
			stepLatency = time.Since(stepStart)
		}
		pw := r.hvac.PowersFor(in, mix)

		// Cabin heating runs through the heat pump in thermal runs: the
		// plant's delivered heat pw.HeaterW·EtaHeat is unchanged, only the
		// electrical conversion follows the COP at the current ambient (or
		// the PTC efficiency below the cutoff).
		heaterElecW := pw.HeaterW
		hpEff, hpPTC := 0.0, false
		if st.th != nil && pw.HeaterW > 0 {
			hpEff, hpPTC = st.th.Heating(amb)
			heaterElecW = pw.HeaterW * cfg.Cabin.EtaHeat / hpEff
		}
		hvacW := pw.Total() - pw.HeaterW + heaterElecW

		// Integrate the cabin plant over the control period with the
		// inputs held (zero-order hold), sampling ambient continuously
		// through the persistent RHS closure built above.
		r.odeIn = in
		if st.th != nil {
			r.odeTb = st.th.PackC()
		}
		r.x1[0] = st.tz
		if err := r.integ.IntegrateInto(sys, r.x1[:], t, t+cfg.ControlDt, sub); err != nil {
			return nil, fmt.Errorf("sim: plant integration failed at t=%v: %w", t, err)
		}

		total := pe + hvacW + cfg.Powertrain.AccessoryW
		if st.th != nil {
			// Pack Joule self-heating at the pre-branch current feeds the
			// thermal network and drains the battery; the (clamped) battery
			// heater/chiller electrical draw adds on top.
			iPack := total / cfg.BMS.Pack.NominalVoltageV
			jouleW := iPack * iPack * st.th.PackResistanceOhm()
			fl := st.th.Step(st.tz, amb, jouleW, in.BattHeatW, in.BattChillW, cfg.ControlDt)
			total += fl.HeaterElecW + fl.ChillerElecW + jouleW
		}
		_, soc := b.Step(total, cfg.ControlDt)
		if st.th != nil {
			// Calendar aging accrues continuously at the pack temperature and
			// the storage SoC, with the sqrt(t) kernel evaluated at the pack's
			// running age.
			age := st.cal
			age.AgeDays += t / units.SecondsPerDay
			st.calPct += age.LossPercent(st.th.PackC(), soc, cfg.ControlDt)
			if pw.HeaterW > 0 {
				if hpPTC {
					st.ptcSteps++
				} else {
					st.hpSteps++
					st.copSum += hpEff
				}
			}
		}

		if telOn {
			telSteps.Inc()
			telLatency.Observe(stepLatency.Seconds())
			span := telemetry.StepSpan{
				Step:         k,
				TimeS:        t,
				CabinC:       st.tz,
				OutsideC:     amb,
				SoCPct:       soc,
				SoCDeltaPct:  soc - socBefore,
				HVACW:        hvacW,
				SupplyC:      in.SupplyTempC,
				CoilC:        in.CoilTempC,
				Recirc:       in.Recirc,
				AirFlowKgS:   in.AirFlowKgS,
				Rung:         -1,
				FaultsActive: inj.ActiveAt(t),
				LatencyNs:    stepLatency.Nanoseconds(),
			}
			if solver != nil {
				si := solver.LastSolve()
				span.SolverIters = si.Iterations
				span.QPIters = si.QPIterations
				span.SolverStatus = si.Status
			}
			if ladder != nil {
				span.Rung = ladder.Level()
				span.Stage = ladder.ActiveStage()
			}
			if st.th != nil {
				span.PackC = st.th.PackC()
				span.BattHeatW = in.BattHeatW
				span.BattChillW = in.BattChillW
				telPack.Set(st.th.PackC())
				if pw.HeaterW > 0 {
					span.COP = hpEff
					telCOP.Set(hpEff)
					if hpPTC {
						telPTC.Inc()
					} else {
						telHPSteps.Inc()
					}
				}
			}
			tel.Step(&span)
		}

		tr.Time = append(tr.Time, t)
		tr.CabinC = append(tr.CabinC, st.tz)
		tr.OutsideC = append(tr.OutsideC, amb)
		tr.MotorW = append(tr.MotorW, pe)
		tr.HeaterW = append(tr.HeaterW, heaterElecW)
		tr.CoolerW = append(tr.CoolerW, pw.CoolerW)
		tr.FanW = append(tr.FanW, pw.FanW)
		tr.HVACW = append(tr.HVACW, hvacW)
		tr.TotalW = append(tr.TotalW, total)
		tr.SoC = append(tr.SoC, soc)
		if st.th != nil {
			tr.PackC = append(tr.PackC, st.th.PackC())
		}
		tr.Inputs = append(tr.Inputs, in)

		st.hvacJ += hvacW * cfg.ControlDt
		st.motorJ += pe * cfg.ControlDt
		st.totalJ += total * cfg.ControlDt

		if t >= cfg.SettleS {
			st.comfortCount++
			err := st.tz - cfg.TargetC
			st.trackSq += err * err
			if st.tz < ctx.ComfortLowC || st.tz > ctx.ComfortHighC {
				st.comfortViol++
			}
		}

		st.tz = r.x1[0]
		st.k++

		if opts.CheckpointEvery > 0 && opts.OnCheckpoint != nil && st.k < n && st.k%opts.CheckpointEvery == 0 {
			ck, err := r.Snapshot()
			if err != nil {
				return nil, fmt.Errorf("sim: checkpoint at step %d: %w", st.k, err)
			}
			if err := opts.OnCheckpoint(ck); err != nil {
				return nil, fmt.Errorf("sim: checkpoint at step %d: %w", st.k, err)
			}
		}
	}

	simT := float64(n) * cfg.ControlDt
	res.AvgHVACW = st.hvacJ / simT
	res.AvgMotorW = st.motorJ / simT
	res.AvgTotalW = st.totalJ / simT
	res.HVACEnergyKWh = st.hvacJ / 3.6e6
	res.FinalSoC = b.SoC()
	res.Events = b.Events()
	dev, avg, err := b.CycleStats()
	if err != nil {
		return nil, err
	}
	res.SoCDev, res.SoCAvg = dev, avg
	dsoh, err := b.DeltaSoH()
	if err != nil {
		return nil, err
	}
	res.DeltaSoH = dsoh
	if st.th != nil {
		// Cold (or hot) cycling accelerates cycle fade: scale the cycle term
		// by the U-shaped pack-temperature stress factor, and report the
		// calendar (storage) term alongside.
		res.DeltaSoH = dsoh * battery.CycleStressFactor(st.th.MeanPackC())
		res.CalendarDeltaSoH = st.calPct
		res.PackMeanC = st.th.MeanPackC()
		res.PackMinC = st.th.MinPackC()
		res.PackFinalC = st.th.PackC()
		res.ThermalEnergyDefectJ = st.th.EnergyDefectJ()
		if heatSteps := st.hpSteps + st.ptcSteps; heatSteps > 0 {
			res.HeatPumpFrac = float64(st.hpSteps) / float64(heatSteps)
		}
		if st.hpSteps > 0 {
			res.AvgCOP = st.copSum / float64(st.hpSteps)
		}
	}
	if st.comfortCount > 0 {
		res.ComfortViolationFrac = st.comfortViol / st.comfortCount
		res.RMSTrackingErrC = math.Sqrt(st.trackSq / st.comfortCount)
	}
	return res, nil
}

// defaultPowertrain is the shared Leaf parameter set DefaultConfig hands
// out. Building it once keeps every defaulted configuration ==-equal in
// its Powertrain field (one efficiency-map pointer), which is what lets
// sweep jobs share motor power profiles; the map is immutable after
// construction throughout the codebase.
var defaultPowertrain = powertrain.NissanLeaf()

// DefaultConfig returns the experiment baseline: Nissan Leaf power train,
// the default single-zone HVAC, the Leaf pack at 90 % SoC, 24 °C target
// with a ±3 °C comfort zone, 1 s control period, and a pre-conditioned
// cabin starting at the target temperature (the paper's Fig. 5 traces
// start inside the comfort zone; set UseAmbientStart for soak studies).
func DefaultConfig(p *drivecycle.Profile) Config {
	return Config{
		Profile:       p,
		Powertrain:    defaultPowertrain,
		Cabin:         cabin.Default(),
		BMS:           bms.DefaultConfig(),
		TargetC:       24,
		ComfortBandC:  3,
		InitialCabinC: 24,
		ControlDt:     1,
		PlantSubSteps: 5,
	}
}
