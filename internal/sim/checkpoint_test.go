package sim

import (
	"encoding/json"
	"math/rand"
	"testing"

	"evclimate/internal/control"
	"evclimate/internal/core"
	"evclimate/internal/drivecycle"
)

// TestCheckpointResumeBitExact is the property pin for state
// checkpointing: for every (cycle, controller) pair, snapshotting at a
// randomly chosen control step, JSON round-tripping the checkpoint
// through bytes (as the runner's checkpoint files do), and resuming on a
// fresh Runner and fresh controller instance reproduces the remaining
// trajectory bit for bit — and the resumed result still satisfies the
// physical invariants.
func TestCheckpointResumeBitExact(t *testing.T) {
	cycles := []string{"ECE15", "UDDS", "US06"}
	controllers := []struct {
		name      string
		controlDt float64
		forecast  int
		make      func(t *testing.T) control.Controller
	}{
		{"On/Off", 1, 0, func(t *testing.T) control.Controller {
			return control.NewOnOff(hvacModel(t))
		}},
		{"Fuzzy-based", 1, 0, func(t *testing.T) control.Controller {
			return control.NewFuzzy(hvacModel(t))
		}},
		{"MPC", 5, 0, func(t *testing.T) control.Controller {
			c, err := core.New(core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			return c
		}},
	}
	// The random snapshot steps are drawn from a fixed seed so a failure
	// reproduces exactly.
	rng := rand.New(rand.NewSource(20260806))

	for _, cyc := range cycles {
		for _, ctor := range controllers {
			t.Run(cyc+"/"+ctor.name, func(t *testing.T) {
				c, err := drivecycle.ByName(cyc)
				if err != nil {
					t.Fatal(err)
				}
				prof := c.Profile(1).WithAmbient(35).WithSolar(400).Truncate(240)
				cfg := DefaultConfig(prof)
				cfg.ControlDt = ctor.controlDt
				if ctor.name == "MPC" {
					cfg.ForecastSteps = core.DefaultConfig().Horizon
				}
				steps := int(prof.Duration() / cfg.ControlDt)
				at := 1 + rng.Intn(steps-1)

				// Reference run, snapshotting once at the chosen step.
				r, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				var ckBytes []byte
				ref, err := r.RunWith(ctor.make(t), RunOptions{
					CheckpointEvery: at,
					OnCheckpoint: func(ck *Checkpoint) error {
						if ckBytes == nil {
							ckBytes, err = json.Marshal(ck)
							return err
						}
						return nil
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				if ckBytes == nil {
					t.Fatalf("no checkpoint emitted at step %d of %d", at, steps)
				}

				// Resume from the serialized checkpoint on fresh instances.
				var ck Checkpoint
				if err := json.Unmarshal(ckBytes, &ck); err != nil {
					t.Fatal(err)
				}
				if ck.Step != at {
					t.Fatalf("checkpoint at step %d, want %d", ck.Step, at)
				}
				r2, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := r2.RunWith(ctor.make(t), RunOptions{Resume: &ck})
				if err != nil {
					t.Fatalf("resume from step %d/%d: %v", at, steps, err)
				}

				refJSON, err := json.Marshal(ref)
				if err != nil {
					t.Fatal(err)
				}
				resJSON, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				if string(refJSON) != string(resJSON) {
					t.Errorf("resume from step %d/%d diverges from uninterrupted run", at, steps)
				}
				tol := DefaultTolerances()
				if cyc == "US06" {
					// Aggressive highway cycle: heavy regen loosens the
					// Peukert bookkeeping (same widening as the runner's
					// conformance suite).
					tol.EnergyClosureRel = 0.25
				}
				if err := CheckInvariants(cfg, res, tol); err != nil {
					t.Errorf("resumed result violates invariants: %v", err)
				}
			})
		}
	}
}

// TestRestorePrimesNextRun covers the explicit Snapshot/Restore API: a
// checkpoint captured mid-run primes a later RunWith via Restore, and
// Restore refuses misuse (nil checkpoint, wrong controller, in-flight).
func TestRestorePrimesNextRun(t *testing.T) {
	cfg := DefaultConfig(hotProfile().Truncate(200))
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ck *Checkpoint
	ref, err := r.RunWith(control.NewOnOff(hvacModel(t)), RunOptions{
		CheckpointEvery: 60,
		OnCheckpoint: func(c *Checkpoint) error {
			if ck == nil {
				ck = c
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil {
		t.Fatal("no checkpoint emitted")
	}

	r2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Restore(nil); err == nil {
		t.Error("Restore(nil) accepted")
	}
	if err := r2.Restore(ck); err != nil {
		t.Fatal(err)
	}
	res, err := r2.RunWith(control.NewOnOff(hvacModel(t)), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(ref)
	b, _ := json.Marshal(res)
	if string(a) != string(b) {
		t.Error("Restore-primed run diverges from uninterrupted run")
	}

	// A checkpoint from one controller cannot resume another.
	r3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r3.Restore(ck); err != nil {
		t.Fatal(err)
	}
	if _, err := r3.RunWith(control.NewFuzzy(hvacModel(t)), RunOptions{}); err == nil {
		t.Error("On/Off checkpoint resumed a fuzzy controller")
	}
}
