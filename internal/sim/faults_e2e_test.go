package sim_test

import (
	"math"
	"math/rand"
	"testing"

	"evclimate/internal/cabin"
	"evclimate/internal/control"
	"evclimate/internal/core"
	"evclimate/internal/drivecycle"
	"evclimate/internal/faults"
	"evclimate/internal/sim"
	"evclimate/internal/sqp"
)

// This file holds the closed-loop fault tests: the safety property of the
// supervised controllers under randomized fault schedules, and the golden
// ladder walk — the pinned demote/re-promote trajectory of the supervised
// MPC through a solver-budget brownout.

// guard wraps a controller and fails the test the moment it emits a
// non-finite or out-of-envelope input vector — before the plant's own
// clamp can hide it.
type guard struct {
	t     *testing.T
	inner control.Controller
	p     cabin.Params
}

func (g *guard) Name() string { return g.inner.Name() }
func (g *guard) Reset()       { g.inner.Reset() }

func (g *guard) Decide(ctx control.StepContext) cabin.Inputs {
	in := g.inner.Decide(ctx)
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"SupplyTempC", in.SupplyTempC},
		{"CoilTempC", in.CoilTempC},
		{"Recirc", in.Recirc},
		{"AirFlowKgS", in.AirFlowKgS},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			g.t.Fatalf("%s emitted non-finite %s at t=%v: %+v", g.inner.Name(), f.name, ctx.Time, in)
		}
	}
	const eps = 1e-9
	if in.AirFlowKgS < g.p.MinAirFlowKgS-eps || in.AirFlowKgS > g.p.MaxAirFlowKgS+eps {
		g.t.Fatalf("%s air flow %v outside [%v, %v] at t=%v",
			g.inner.Name(), in.AirFlowKgS, g.p.MinAirFlowKgS, g.p.MaxAirFlowKgS, ctx.Time)
	}
	if in.Recirc < -eps || in.Recirc > 1+eps {
		g.t.Fatalf("%s recirc %v outside [0, 1] at t=%v", g.inner.Name(), in.Recirc, ctx.Time)
	}
	return in
}

// randFaultSpec draws an adversarial schedule: several sensor faults with
// extreme parameters, a forecast fault, and a solver squeeze, all with
// random windows inside the profile.
func randFaultSpec(r *rand.Rand, durS float64) faults.Spec {
	win := func() faults.Window {
		a := r.Float64() * durS
		b := a + r.Float64()*(durS-a)
		return faults.Window{StartS: a, EndS: b}
	}
	sensors := []faults.Signal{faults.CabinTemp, faults.OutsideTemp, faults.SoC}
	modes := []faults.Mode{faults.Dropout, faults.StuckAt, faults.Bias, faults.Noise, faults.Quantize}
	var s faults.Spec
	s.Name = "randomized"
	for i := 0; i < 1+r.Intn(3); i++ {
		s.Sensor = append(s.Sensor, faults.SensorFault{
			Signal: sensors[r.Intn(len(sensors))],
			Mode:   modes[r.Intn(len(modes))],
			Value:  -50 + r.Float64()*100, // stuck-at / bias / noise sd / quantum
			Rate:   r.Float64(),
			Window: win(),
		})
	}
	fmodes := []faults.ForecastMode{faults.ForecastLoss, faults.ForecastTruncate, faults.ForecastCorrupt}
	s.Forecast = []faults.ForecastFault{{
		Mode:   fmodes[r.Intn(len(fmodes))],
		Keep:   r.Intn(3),
		SigmaW: r.Float64() * 10000,
		Window: win(),
	}}
	if r.Intn(2) == 0 {
		s.Solver = []faults.SolverFault{{MaxIter: 1 + r.Intn(2), Window: win()}}
	}
	return s
}

func shortMPCConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Horizon = 6
	cfg.SQP = sqp.Options{MaxIter: 5, Tol: 1e-3}
	return cfg
}

// supervisedFamilies wraps each of the three controller families in a
// Supervisor — the MPC in the full four-stage ladder, the baselines as
// single-stage ladders (exercising the last-resort clamp path).
func supervisedFamilies(t *testing.T) map[string]func() control.Controller {
	t.Helper()
	model := func() *cabin.Model {
		m, err := cabin.New(cabin.Default())
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	single := func(name string, c control.Controller) control.Controller {
		s, err := control.NewSupervisor("", control.SupervisorConfig{}, control.Stage{Name: name, Controller: c})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	return map[string]func() control.Controller{
		"onoff": func() control.Controller { return single("onoff", control.NewOnOff(model())) },
		"fuzzy": func() control.Controller { return single("fuzzy", control.NewFuzzy(model())) },
		"mpc": func() control.Controller {
			s, err := core.NewSupervised(core.SupervisedConfig{MPC: shortMPCConfig()})
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
}

// TestSupervisedOutputsSafeUnderRandomFaults is the safety property of
// the degradation ladder: whatever a randomized fault schedule feeds the
// controller — dropped sensors, absurd stuck values, corrupted previews,
// a starved solver — the Supervisor never lets a non-finite or
// out-of-envelope input vector reach the plant.
func TestSupervisedOutputsSafeUnderRandomFaults(t *testing.T) {
	envs := map[string]*drivecycle.Profile{
		"hot":  drivecycle.ECE15().Profile(1).WithAmbient(35).WithSolar(400).Truncate(150),
		"cold": drivecycle.ECE15().Profile(1).WithAmbient(0).Truncate(150),
	}
	p := cabin.Default()
	for fam, mk := range supervisedFamilies(t) {
		for env, prof := range envs {
			for trial := 0; trial < 3; trial++ {
				r := rand.New(rand.NewSource(int64(1000*trial) + int64(len(fam)) + int64(len(env))))
				flt := randFaultSpec(r, prof.Duration())
				cfg := sim.DefaultConfig(prof)
				cfg.Faults = &flt
				cfg.FaultSeed = int64(trial + 1)
				runner, err := sim.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := runner.Run(&guard{t: t, inner: mk(), p: p}); err != nil {
					t.Fatalf("%s/%s trial %d: %v", fam, env, trial, err)
				}
			}
		}
	}
}

// TestSupervisedLadderGolden pins the demote/re-promote walk: a
// solver-budget brownout (1 SQP iteration per solve, 100 s ≤ t < 200 s)
// must push the supervised MPC down the ladder and sustained clean
// operation must walk it back to the full controller before the drive
// ends.
func TestSupervisedLadderGolden(t *testing.T) {
	prof := drivecycle.ECEEUDC().Profile(1).WithAmbient(35).WithSolar(400).Truncate(400)
	flt := faults.Spec{
		Name:   "solver-brownout",
		Solver: []faults.SolverFault{{MaxIter: 1, Window: faults.Window{StartS: 100, EndS: 200}}},
	}
	cfg := sim.DefaultConfig(prof)
	cfg.ControlDt = 2
	cfg.Faults = &flt
	cfg.FaultSeed = 3
	sup, err := core.NewSupervised(core.SupervisedConfig{
		MPC: shortMPCConfig(),
		Supervisor: control.SupervisorConfig{
			DemoteAfter:  3,
			PromoteAfter: 20,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	runner, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Run(sup); err != nil {
		t.Fatal(err)
	}

	tr := sup.Transitions()
	if len(tr) == 0 {
		t.Fatal("brownout caused no ladder transitions")
	}
	var demotions, promotions int
	for _, m := range tr {
		if m.To > m.From {
			demotions++
			if m.Time < 100 || m.Time >= 200 {
				t.Errorf("demotion outside the fault window: %+v", m)
			}
		} else {
			promotions++
		}
	}
	if demotions == 0 || promotions == 0 {
		t.Fatalf("walk missing a direction: %d demotions, %d promotions (%+v)", demotions, promotions, tr)
	}
	if sup.Level() != 0 || sup.Health() != control.Healthy {
		t.Fatalf("did not recover to the full MPC: level %d, health %v", sup.Level(), sup.Health())
	}
	// The pinned walk (bit-identical replay is part of the contract):
	// demote full→short→fuzzy inside the brownout, one premature
	// re-promotion attempt that bounces straight back down, then the
	// staged recovery to the full MPC once the window closes.
	want := []struct {
		step, from, to int
	}{
		{52, 0, 1}, {55, 1, 2}, {75, 2, 1}, {78, 1, 2}, {98, 2, 1}, {119, 1, 0},
	}
	if len(tr) != len(want) {
		t.Fatalf("transition count %d, golden %d: %+v", len(tr), len(want), tr)
	}
	for i, w := range want {
		if tr[i].Step != w.step || tr[i].From != w.from || tr[i].To != w.to {
			t.Errorf("transition %d = step %d %d→%d, golden step %d %d→%d",
				i, tr[i].Step, tr[i].From, tr[i].To, w.step, w.from, w.to)
		}
	}
}
