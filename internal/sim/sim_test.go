package sim

import (
	"math"
	"testing"

	"evclimate/internal/cabin"
	"evclimate/internal/control"
	"evclimate/internal/drivecycle"
)

func hotProfile() *drivecycle.Profile {
	return drivecycle.ECEEUDC().Profile(1).WithAmbient(35).WithSolar(400)
}

func coldProfile() *drivecycle.Profile {
	return drivecycle.ECEEUDC().Profile(1).WithAmbient(0)
}

func newRunner(t *testing.T, p *drivecycle.Profile, mutate func(*Config)) *Runner {
	t.Helper()
	cfg := DefaultConfig(p)
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func hvacModel(t *testing.T) *cabin.Model {
	t.Helper()
	m, err := cabin.New(cabin.Default())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil profile accepted")
	}
	cfg := DefaultConfig(hotProfile())
	cfg.Powertrain.MassKg = -1
	if _, err := New(cfg); err == nil {
		t.Error("bad powertrain accepted")
	}
	cfg = DefaultConfig(hotProfile())
	cfg.Cabin.EtaCool = 2
	if _, err := New(cfg); err == nil {
		t.Error("bad cabin accepted")
	}
	cfg = DefaultConfig(hotProfile())
	cfg.BMS.InitialSoC = 500
	if _, err := New(cfg); err == nil {
		t.Error("bad BMS accepted")
	}
	cfg = DefaultConfig(hotProfile())
	cfg.SettleS = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative settle accepted")
	}
}

func TestOnOffCoolsIntoComfortZone(t *testing.T) {
	r := newRunner(t, hotProfile(), nil)
	res, err := r.Run(control.NewOnOff(hvacModel(t)))
	if err != nil {
		t.Fatal(err)
	}
	// Starting pre-conditioned at the target, the controller must hold
	// the comfort zone against a 35 °C day.
	if res.ComfortViolationFrac > 0.1 {
		t.Errorf("comfort violation fraction = %v, want ≤ 0.1", res.ComfortViolationFrac)
	}
	if res.AvgHVACW <= 200 {
		t.Errorf("average HVAC power = %v W on a hot day, implausibly low", res.AvgHVACW)
	}
	if res.AvgHVACW > 6000 {
		t.Errorf("average HVAC power = %v W exceeds unit capacity", res.AvgHVACW)
	}
	// SoC must fall over the drive.
	if res.FinalSoC >= 90 {
		t.Errorf("final SoC = %v, want < initial 90", res.FinalSoC)
	}
	if res.DeltaSoH <= 0 {
		t.Errorf("ΔSoH = %v, want > 0", res.DeltaSoH)
	}
}

func TestFuzzyTracksTighterThanOnOff(t *testing.T) {
	r := newRunner(t, hotProfile(), nil)
	m := hvacModel(t)
	onoff, err := r.Run(control.NewOnOff(m))
	if err != nil {
		t.Fatal(err)
	}
	fz, err := r.Run(control.NewFuzzy(m))
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 5: the fuzzy controller stabilizes temperature far more
	// tightly than On/Off.
	if fz.RMSTrackingErrC >= onoff.RMSTrackingErrC {
		t.Errorf("fuzzy RMS %.3f should beat On/Off %.3f", fz.RMSTrackingErrC, onoff.RMSTrackingErrC)
	}
	// Fig. 8: fuzzy uses less average HVAC power than On/Off.
	if fz.AvgHVACW >= onoff.AvgHVACW {
		t.Errorf("fuzzy avg HVAC %.0f W should beat On/Off %.0f W", fz.AvgHVACW, onoff.AvgHVACW)
	}
}

func TestHeatingModeWorks(t *testing.T) {
	r := newRunner(t, coldProfile(), nil)
	m := hvacModel(t)
	for _, ctrl := range []control.Controller{control.NewOnOff(m), control.NewFuzzy(m), control.NewPID(m)} {
		res, err := r.Run(ctrl)
		if err != nil {
			t.Fatalf("%s: %v", ctrl.Name(), err)
		}
		if res.ComfortViolationFrac > 0.15 {
			t.Errorf("%s: comfort violation %v on cold day", ctrl.Name(), res.ComfortViolationFrac)
		}
		// Heating on a 0 °C day costs kilowatt-scale power.
		if res.AvgHVACW < 300 {
			t.Errorf("%s: avg HVAC %v W implausibly low for 0 °C", ctrl.Name(), res.AvgHVACW)
		}
		// Heater, not cooler, must dominate.
		var heat, cool float64
		for i := range res.Trace.HeaterW {
			heat += res.Trace.HeaterW[i]
			cool += res.Trace.CoolerW[i]
		}
		if heat <= cool {
			t.Errorf("%s: heater energy %v ≤ cooler %v on a cold day", ctrl.Name(), heat, cool)
		}
	}
}

func TestTraceShapesConsistent(t *testing.T) {
	r := newRunner(t, hotProfile(), nil)
	res, err := r.Run(control.NewOnOff(hvacModel(t)))
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	n := len(tr.Time)
	for name, l := range map[string]int{
		"CabinC": len(tr.CabinC), "OutsideC": len(tr.OutsideC),
		"MotorW": len(tr.MotorW), "HVACW": len(tr.HVACW),
		"TotalW": len(tr.TotalW), "SoC": len(tr.SoC), "Inputs": len(tr.Inputs),
		"HeaterW": len(tr.HeaterW), "CoolerW": len(tr.CoolerW), "FanW": len(tr.FanW),
	} {
		if l != n {
			t.Errorf("trace %s length %d != %d", name, l, n)
		}
	}
	// HVAC = heater + cooler + fan, total = motor + HVAC + accessories.
	for i := 0; i < n; i++ {
		if math.Abs(tr.HVACW[i]-(tr.HeaterW[i]+tr.CoolerW[i]+tr.FanW[i])) > 1e-9 {
			t.Fatalf("HVAC power decomposition broken at %d", i)
		}
		if math.Abs(tr.TotalW[i]-(tr.MotorW[i]+tr.HVACW[i]+300)) > 1e-9 {
			t.Fatalf("total power decomposition broken at %d", i)
		}
	}
}

func TestConstantControllerEnergyBookkeeping(t *testing.T) {
	// A constant ventilation-only controller: HVAC energy is just fan
	// power × time.
	p := drivecycle.ECE15().Profile(1).WithAmbient(24)
	r := newRunner(t, p, nil)
	m := hvacModel(t)
	minFlow := m.Params().MinAirFlowKgS
	ctrl := &control.Constant{Model: m, Inputs: cabin.Inputs{
		SupplyTempC: 24, CoilTempC: 24, Recirc: 0.5, AirFlowKgS: minFlow,
	}}
	res, err := r.Run(ctrl)
	if err != nil {
		t.Fatal(err)
	}
	wantFan := m.Params().FanCoeffW * minFlow * minFlow
	if math.Abs(res.AvgHVACW-wantFan) > 1 {
		t.Errorf("avg HVAC = %v, want fan-only %v", res.AvgHVACW, wantFan)
	}
}

func TestSoCMonotoneWithoutRegen(t *testing.T) {
	// On a flat constant-speed profile there is no regen, so SoC must be
	// non-increasing.
	route := &drivecycle.Route{
		Name:     "flat",
		Segments: []drivecycle.RouteSegment{{LengthKm: 5, SpeedKmh: 60, AmbientC: 30, SolarW: 200}},
	}
	p, err := route.Profile(1)
	if err != nil {
		t.Fatal(err)
	}
	r := newRunner(t, p, nil)
	res, err := r.Run(control.NewFuzzy(hvacModel(t)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Trace.SoC); i++ {
		// Final deceleration regenerates; allow only tiny increases there.
		if res.Trace.SoC[i] > res.Trace.SoC[i-1]+0.05 {
			t.Fatalf("SoC jumped at %d: %v → %v", i, res.Trace.SoC[i-1], res.Trace.SoC[i])
		}
	}
	if res.FinalSoC >= 90 {
		t.Error("no energy consumed over 5 km")
	}
}

func TestMotorPowerZeroOrderHold(t *testing.T) {
	r := newRunner(t, hotProfile(), nil)
	// Beyond the profile end, the last sample's power is held.
	if got, want := r.MotorPower(1e9), r.MotorPower(r.cfg.Profile.Duration()); got != want {
		t.Errorf("MotorPower clamp: %v vs %v", got, want)
	}
	if got, want := r.MotorPower(-5), r.MotorPower(0); got != want {
		t.Errorf("MotorPower clamp low: %v vs %v", got, want)
	}
}

func TestForecastContents(t *testing.T) {
	p := hotProfile()
	r := newRunner(t, p, func(c *Config) { c.ForecastSteps = 10 })
	f := r.forecast(100, 10)
	if f.Len() != 10 {
		t.Fatalf("forecast length = %d", f.Len())
	}
	if f.Dt != 1 {
		t.Errorf("forecast dt = %v", f.Dt)
	}
	for k := 0; k < 10; k++ {
		if f.OutsideC[k] != 35 {
			t.Errorf("forecast ambient[%d] = %v, want 35", k, f.OutsideC[k])
		}
		if f.MotorPowerW[k] != r.MotorPower(100+float64(k)) {
			t.Errorf("forecast motor[%d] mismatch", k)
		}
	}
	// Zero steps → empty forecast.
	if r.forecast(0, 0).Len() != 0 {
		t.Error("empty forecast not empty")
	}
}

func TestInitialCabinOverride(t *testing.T) {
	p := hotProfile()
	r := newRunner(t, p, nil) // default: pre-conditioned at target
	res, err := r.Run(control.NewFuzzy(hvacModel(t)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.CabinC[0] != 24 {
		t.Errorf("initial cabin = %v, want 24", res.Trace.CabinC[0])
	}
	// Soak start: cabin begins at ambient.
	soaked := newRunner(t, p, func(c *Config) { c.UseAmbientStart = true })
	sres, err := soaked.Run(control.NewFuzzy(hvacModel(t)))
	if err != nil {
		t.Fatal(err)
	}
	if sres.Trace.CabinC[0] != 35 {
		t.Errorf("soaked initial cabin = %v, want 35", sres.Trace.CabinC[0])
	}
	// The soaked run must pull the cabin down toward the target by the
	// end of the cycle.
	last := sres.Trace.CabinC[len(sres.Trace.CabinC)-1]
	if last > 28 {
		t.Errorf("soaked cabin only reached %.1f °C by cycle end", last)
	}
}

func TestCoarserControlPeriod(t *testing.T) {
	p := hotProfile()
	r := newRunner(t, p, func(c *Config) { c.ControlDt = 5; c.PlantSubSteps = 10 })
	res, err := r.Run(control.NewFuzzy(hvacModel(t)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Time) != int(math.Ceil(p.Duration()/5)) {
		t.Errorf("trace length %d with 5 s control period", len(res.Trace.Time))
	}
	if res.ComfortViolationFrac > 0.2 {
		t.Errorf("comfort violation %v at 5 s period", res.ComfortViolationFrac)
	}
}

func TestPIDBetweenOnOffAndFuzzy(t *testing.T) {
	r := newRunner(t, hotProfile(), nil)
	m := hvacModel(t)
	pid, err := r.Run(control.NewPID(m))
	if err != nil {
		t.Fatal(err)
	}
	if pid.ComfortViolationFrac > 0.15 {
		t.Errorf("PID comfort violation %v", pid.ComfortViolationFrac)
	}
}

func TestMildAmbientUsesLittlePower(t *testing.T) {
	// At 21 °C with modest solar, holding 24 °C is nearly free
	// (Table I row 21 °C: 0.29–0.9 kW).
	p := drivecycle.ECEEUDC().Profile(1).WithAmbient(21).WithSolar(200)
	r := newRunner(t, p, nil)
	res, err := r.Run(control.NewFuzzy(hvacModel(t)))
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgHVACW > 1200 {
		t.Errorf("avg HVAC at 21 °C = %v W, want ≲ 1 kW", res.AvgHVACW)
	}
}

func TestRunDeterministic(t *testing.T) {
	// Two fresh runner+controller pairs on identical configs must produce
	// bit-identical trajectories — the property the parallel sweep engine
	// builds its replay guarantee on.
	run := func() *Result {
		p := hotProfile().Truncate(300)
		r := newRunner(t, p, nil)
		res, err := r.Run(control.NewFuzzy(hvacModel(t)))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Trace.Time) != len(b.Trace.Time) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a.Trace.Time), len(b.Trace.Time))
	}
	for i := range a.Trace.Time {
		for name, pair := range map[string][2]float64{
			"CabinC": {a.Trace.CabinC[i], b.Trace.CabinC[i]},
			"HVACW":  {a.Trace.HVACW[i], b.Trace.HVACW[i]},
			"SoC":    {a.Trace.SoC[i], b.Trace.SoC[i]},
		} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				t.Fatalf("%s diverges at step %d: %v vs %v", name, i, pair[0], pair[1])
			}
		}
	}
	if math.Float64bits(a.DeltaSoH) != math.Float64bits(b.DeltaSoH) {
		t.Errorf("DeltaSoH differs: %v vs %v", a.DeltaSoH, b.DeltaSoH)
	}
}
