package sim

import (
	"math"
	"testing"

	"evclimate/internal/core"
	"evclimate/internal/drivecycle"
)

// fnv1a64 folds a float64 sequence into an FNV-1a hash of the IEEE-754
// bit patterns. Any single-bit change anywhere in the trajectory changes
// the digest.
func fnv1a64(h uint64, vals []float64) uint64 {
	const prime = 1099511628211
	for _, v := range vals {
		b := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (b >> s) & 0xff
			h *= prime
		}
	}
	return h
}

// mpcTrajectoryHash is the FNV-1a digest of the MPC controller's full
// closed-loop trajectory on ECE15 (hot soak, 35 °C / 400 W solar):
// per control step, the four applied HVAC inputs followed by the cabin
// temperature. Computed on linux/amd64; Go does not fuse multiply-adds
// on amd64, so the pin is stable across amd64 hosts. Regenerate (run
// with -run TestMPCTrajectoryBitwiseGolden -v after an intended solver
// or model change) rather than loosening — this pin exists to catch
// *unintended* bit drift in the stage-structured solve path, which the
// tolerance-based goldens in internal/runner cannot see.
const mpcTrajectoryHash = 0x70da48337552c5aa

// TestMPCTrajectoryBitwiseGolden pins the MPC/ECE15 trajectory bitwise.
func TestMPCTrajectoryBitwiseGolden(t *testing.T) {
	mpc, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prof := drivecycle.ECE15().Profile(1).WithAmbient(35).WithSolar(400)
	cfg := DefaultConfig(prof)
	cfg.ControlDt = core.DefaultConfig().Dt
	cfg.ForecastSteps = core.DefaultConfig().Horizon
	cfg.UseAmbientStart = true
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(mpc)
	if err != nil {
		t.Fatal(err)
	}
	tr := &res.Trace
	if len(tr.Inputs) == 0 || len(tr.Inputs) != len(tr.CabinC) {
		t.Fatalf("trace shape: %d inputs, %d temps", len(tr.Inputs), len(tr.CabinC))
	}
	const offset64 = 14695981039346656037
	h := uint64(offset64)
	for i, in := range tr.Inputs {
		h = fnv1a64(h, []float64{
			in.SupplyTempC, in.CoilTempC, in.Recirc, in.AirFlowKgS, tr.CabinC[i],
		})
	}
	if h != mpcTrajectoryHash {
		t.Fatalf("MPC/ECE15 trajectory hash = %#016x, golden %#016x (%d steps)",
			h, uint64(mpcTrajectoryHash), len(tr.Inputs))
	}
}
