package sim

import (
	"testing"

	"evclimate/internal/cabin"
	"evclimate/internal/control"
	"evclimate/internal/telemetry"
)

// BenchmarkForecast measures the per-step cost of building the preview
// window. The Runner reuses its scratch slices across calls, so steady-
// state allocations must be zero — the pre-reuse implementation
// allocated three slices per control step.
func BenchmarkForecast(b *testing.B) {
	cfg := DefaultConfig(hotProfile())
	cfg.ForecastSteps = 12
	r, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	r.forecast(0, cfg.ForecastSteps) // warm the scratch buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := float64(i%600) * cfg.ControlDt
		f := r.forecast(t, cfg.ForecastSteps)
		if f.Len() != cfg.ForecastSteps {
			b.Fatalf("forecast length %d, want %d", f.Len(), cfg.ForecastSteps)
		}
	}
}

// TestForecastReuseZeroAlloc pins the reuse contract: after the first
// call, forecast performs no allocations.
func TestForecastReuseZeroAlloc(t *testing.T) {
	cfg := DefaultConfig(hotProfile())
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.forecast(0, 12)
	allocs := testing.AllocsPerRun(100, func() {
		r.forecast(30, 12)
	})
	if allocs != 0 {
		t.Errorf("forecast allocates %.1f objects per call after warm-up, want 0", allocs)
	}
}

// BenchmarkRunOnOff measures a full truncated run with telemetry off —
// the no-op sink baseline the telemetry acceptance criterion compares
// against.
func BenchmarkRunOnOff(b *testing.B) {
	benchmarkRun(b, nil)
}

// BenchmarkRunOnOffTelemetry is the same run with a live sink recording
// spans and metrics.
func BenchmarkRunOnOffTelemetry(b *testing.B) {
	reg := telemetry.NewRegistry()
	benchmarkRun(b, telemetry.NewSink(reg, telemetry.NewStepTrace(0)))
}

func benchmarkRun(b *testing.B, sink telemetry.Sink) {
	cfg := DefaultConfig(hotProfile().Truncate(200))
	cfg.ForecastSteps = 12
	cfg.Telemetry = sink
	r, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	m, err := cabin.New(cfg.Cabin)
	if err != nil {
		b.Fatal(err)
	}
	ctrl := control.NewOnOff(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(ctrl); err != nil {
			b.Fatal(err)
		}
	}
}
