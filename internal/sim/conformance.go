package sim

import (
	"fmt"
	"math"
)

// This file is the conformance layer: the shared physical invariants
// every climate controller — On/Off, fuzzy, MPC, or any future one —
// must satisfy on every drive cycle. The checks run over a completed
// Result against its Config; sim and runner tests apply them to all
// controllers on the standard cycles.

// Tolerances parameterizes CheckInvariants.
type Tolerances struct {
	// MaxComfortViolationFrac bounds the fraction of post-settling time
	// the cabin may spend outside the comfort zone.
	MaxComfortViolationFrac float64
	// EnergyClosureRel bounds the relative mismatch between the
	// integrated battery power and the energy drawn from the pack. The
	// plant applies Peukert rate-capacity accounting and a charge
	// efficiency, so the nominal balance closes only within a margin.
	EnergyClosureRel float64
	// ActuatorSlack is the absolute slack (W) allowed on the actuator
	// power limits and on the heater/cooler mutual exclusion, absorbing
	// clamp round-off and optimizer dust (the MPC's SQP can leave a few
	// watts on the inactive actuator).
	ActuatorSlack float64
}

// DefaultTolerances returns the conformance defaults: 35 % comfort
// violation budget (the On/Off baseline rides the band edges by design),
// 15 % energy closure, 10 W actuator slack (0.2 % of the actuator
// limits — far below any physically meaningful simultaneous operation).
func DefaultTolerances() Tolerances {
	return Tolerances{
		MaxComfortViolationFrac: 0.35,
		EnergyClosureRel:        0.15,
		ActuatorSlack:           10,
	}
}

// CheckInvariants verifies the shared physical invariants on a completed
// run and returns an error describing the first violation:
//
//  1. All traces are finite, equal length, and non-empty.
//  2. SoC stays within [0, 100] and is monotonically consumed whenever
//     the battery is discharging (it may rise only on regen steps, i.e.
//     when the total power is negative).
//  3. HVAC powers respect the actuator bounds C8–C10 and are never
//     negative; heater and cooler never run simultaneously beyond the
//     clamp slack.
//  4. The cabin temperature settles into the comfort band: the
//     post-settling violation fraction stays within tolerance and the
//     final temperature is inside the band.
//  5. Energy bookkeeping closes: ∫ TotalW dt matches the energy drawn
//     from the battery (ΔSoC × nominal pack energy) within tolerance.
func CheckInvariants(cfg Config, res *Result, tol Tolerances) error {
	// Normalize the defaulted fields the same way New does, so a raw
	// (pre-validation) config checks correctly.
	if cfg.ControlDt <= 0 && cfg.Profile != nil {
		cfg.ControlDt = cfg.Profile.Dt
	}
	if cfg.ComfortBandC <= 0 {
		cfg.ComfortBandC = 3
	}

	tr := &res.Trace
	n := len(tr.Time)
	if n == 0 {
		return fmt.Errorf("sim: conformance: empty trace")
	}
	if len(tr.Inputs) != n {
		return fmt.Errorf("sim: conformance: inputs length %d != %d", len(tr.Inputs), n)
	}
	for name, s := range map[string][]float64{
		"CabinC": tr.CabinC, "OutsideC": tr.OutsideC, "MotorW": tr.MotorW,
		"HeaterW": tr.HeaterW, "CoolerW": tr.CoolerW, "FanW": tr.FanW,
		"HVACW": tr.HVACW, "TotalW": tr.TotalW, "SoC": tr.SoC,
	} {
		if len(s) != n {
			return fmt.Errorf("sim: conformance: trace %s length %d != %d", name, len(s), n)
		}
		for i, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("sim: conformance: trace %s[%d] not finite: %v", name, i, v)
			}
		}
	}

	// SoC window and conditional monotonicity.
	prev := cfg.BMS.InitialSoC
	for i, soc := range tr.SoC {
		if soc < 0 || soc > 100 {
			return fmt.Errorf("sim: conformance: SoC[%d] = %v outside [0, 100]", i, soc)
		}
		if tr.TotalW[i] >= 0 && soc > prev+1e-12 {
			return fmt.Errorf("sim: conformance: SoC rose %v → %v at step %d while discharging (%.1f W)",
				prev, soc, i, tr.TotalW[i])
		}
		prev = soc
	}
	if res.FinalSoC >= cfg.BMS.InitialSoC {
		return fmt.Errorf("sim: conformance: final SoC %v did not consume charge from %v",
			res.FinalSoC, cfg.BMS.InitialSoC)
	}

	// Actuator bounds.
	p := cfg.Cabin
	for i := 0; i < n; i++ {
		switch {
		case tr.HeaterW[i] < 0 || tr.HeaterW[i] > p.MaxHeaterPowerW+tol.ActuatorSlack:
			return fmt.Errorf("sim: conformance: heater power %v W outside [0, %v] at step %d",
				tr.HeaterW[i], p.MaxHeaterPowerW, i)
		case tr.CoolerW[i] < 0 || tr.CoolerW[i] > p.MaxCoolerPowerW+tol.ActuatorSlack:
			return fmt.Errorf("sim: conformance: cooler power %v W outside [0, %v] at step %d",
				tr.CoolerW[i], p.MaxCoolerPowerW, i)
		case tr.FanW[i] < 0 || tr.FanW[i] > p.MaxFanPowerW+tol.ActuatorSlack:
			return fmt.Errorf("sim: conformance: fan power %v W outside [0, %v] at step %d",
				tr.FanW[i], p.MaxFanPowerW, i)
		case tr.HeaterW[i] > tol.ActuatorSlack && tr.CoolerW[i] > tol.ActuatorSlack:
			return fmt.Errorf("sim: conformance: heater (%v W) and cooler (%v W) both active at step %d",
				tr.HeaterW[i], tr.CoolerW[i], i)
		}
		in := tr.Inputs[i]
		if in.AirFlowKgS < p.MinAirFlowKgS-1e-9 || in.AirFlowKgS > p.MaxAirFlowKgS+1e-9 {
			return fmt.Errorf("sim: conformance: air flow %v outside [%v, %v] at step %d",
				in.AirFlowKgS, p.MinAirFlowKgS, p.MaxAirFlowKgS, i)
		}
		if in.Recirc < -1e-9 || in.Recirc > p.MaxRecirc+1e-9 {
			return fmt.Errorf("sim: conformance: recirculation %v outside [0, %v] at step %d",
				in.Recirc, p.MaxRecirc, i)
		}
	}

	// Comfort settling.
	if res.ComfortViolationFrac > tol.MaxComfortViolationFrac {
		return fmt.Errorf("sim: conformance: comfort violation fraction %.3f exceeds %.3f",
			res.ComfortViolationFrac, tol.MaxComfortViolationFrac)
	}
	final := tr.CabinC[n-1]
	lo, hi := cfg.TargetC-cfg.ComfortBandC, cfg.TargetC+cfg.ComfortBandC
	if final < lo-0.5 || final > hi+0.5 {
		return fmt.Errorf("sim: conformance: final cabin temperature %.2f °C outside comfort band [%v, %v]",
			final, lo, hi)
	}

	// Energy bookkeeping: ∫ TotalW dt vs energy drawn from the pack.
	var drawnJ float64
	for i := 0; i < n; i++ {
		drawnJ += tr.TotalW[i] * cfg.ControlDt
	}
	packJ := (cfg.BMS.InitialSoC - res.FinalSoC) / 100 * cfg.BMS.Pack.EnergyKWh() * 3.6e6
	if drawnJ <= 0 {
		return fmt.Errorf("sim: conformance: non-positive integrated battery energy %v J", drawnJ)
	}
	if rel := math.Abs(drawnJ-packJ) / drawnJ; rel > tol.EnergyClosureRel {
		return fmt.Errorf("sim: conformance: energy bookkeeping open by %.1f%%: ∫P dt = %.0f J, pack ΔSoC energy = %.0f J",
			100*rel, drawnJ, packJ)
	}
	return nil
}
