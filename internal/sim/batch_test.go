package sim

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"

	"evclimate/internal/control"
	"evclimate/internal/drivecycle"
	"evclimate/internal/faults"
	"evclimate/internal/thermal"
)

// batchLaneConfigs builds n lane configurations over the named cycle
// that exercise the batch core's variation axes: different targets,
// constant and time-varying ambients, solar load, and fault-injected
// lanes. Lane i is deterministic in (cycle, i).
func batchLaneConfigs(t *testing.T, cycle string, n int) []Config {
	t.Helper()
	c, err := drivecycle.ByName(cycle)
	if err != nil {
		t.Fatal(err)
	}
	base := c.Profile(1)
	cfgs := make([]Config, n)
	for i := 0; i < n; i++ {
		var prof *drivecycle.Profile
		switch i % 4 {
		case 0:
			prof = base.WithAmbient(35).WithSolar(400)
		case 1:
			prof = base.WithAmbient(5)
		case 2:
			// Time-varying ambient: the EnvSampler's interpolating path.
			phase := float64(i)
			prof = base.WithAmbientFunc(func(tt float64) float64 {
				return 20 + 12*math.Sin(tt/60+phase)
			}).WithSolar(250)
		default:
			prof = base.WithAmbient(28).WithSolar(150)
		}
		cfg := DefaultConfig(prof.Truncate(240))
		cfg.TargetC = 21 + float64(i%3)*2.5
		switch i % 5 {
		case 3:
			cfg.Faults = &faults.Spec{
				Name:   "stuck-cabin",
				Sensor: []faults.SensorFault{{Signal: faults.CabinTemp, Mode: faults.StuckAt, Value: 24, Window: faults.Window{StartS: 60, EndS: 150}}},
			}
			cfg.FaultSeed = int64(1000 + i)
		case 4:
			cfg.Faults = &faults.Spec{
				Name:   "noisy-soc",
				Sensor: []faults.SensorFault{{Signal: faults.SoC, Mode: faults.Noise, Value: 0.5, Window: faults.Window{StartS: 30, EndS: 200}}},
			}
			cfg.FaultSeed = int64(2000 + i)
		}
		cfgs[i] = cfg
	}
	return cfgs
}

// batchControllers builds one controller per lane of the given kind.
func batchControllers(t *testing.T, kind string, n int) []control.Controller {
	t.Helper()
	out := make([]control.Controller, n)
	for i := range out {
		switch kind {
		case "onoff":
			out[i] = control.NewOnOff(hvacModel(t))
		case "fuzzy":
			out[i] = control.NewFuzzy(hvacModel(t))
		case "mixed":
			if i%2 == 0 {
				out[i] = control.NewOnOff(hvacModel(t))
			} else {
				out[i] = control.NewFuzzy(hvacModel(t))
			}
		default:
			t.Fatalf("unknown controller kind %q", kind)
		}
	}
	return out
}

// TestBatchMatchesScalarBitExact is the tentpole property pin: for
// on/off and fuzzy controllers across three drive cycles and batch
// sizes 1, 3, and 16 — with lanes varying target, ambient (constant and
// sinusoidal), solar, and fault injection — every lane of a batched run
// is bit-for-bit identical (full Result JSON, traces included) to the
// scalar Runner on the same configuration, and the batched results
// satisfy the physical invariants. The mixed-controller case pins the
// ScalarBatch fallback path.
func TestBatchMatchesScalarBitExact(t *testing.T) {
	cycles := []string{"ECE15", "UDDS", "US06"}
	kinds := []string{"onoff", "fuzzy", "mixed"}
	sizes := []int{1, 3, 16}
	for _, cyc := range cycles {
		for _, kind := range kinds {
			for _, size := range sizes {
				if kind == "mixed" && (size != 3 || cyc != "ECE15") {
					continue // the fallback needs one pin, not the grid
				}
				t.Run(fmt.Sprintf("%s/%s/%d", cyc, kind, size), func(t *testing.T) {
					cfgs := batchLaneConfigs(t, cyc, size)

					br, err := NewBatch(cfgs)
					if err != nil {
						t.Fatal(err)
					}
					bres, err := br.Run(control.Batch(batchControllers(t, kind, size)))
					if err != nil {
						t.Fatal(err)
					}

					for i, cfg := range cfgs {
						r, err := New(cfg)
						if err != nil {
							t.Fatal(err)
						}
						sres, err := r.Run(batchControllers(t, kind, size)[i])
						if err != nil {
							t.Fatal(err)
						}
						want, _ := json.Marshal(sres)
						got, _ := json.Marshal(bres[i])
						if string(want) != string(got) {
							t.Errorf("lane %d: batch result diverges from scalar", i)
						}
						// Fault-corrupted lanes can legitimately violate the
						// conformance rules (a stuck sensor makes the fuzzy
						// controller heat a hot cabin); clean lanes must not.
						if cfg.Faults.Empty() {
							tol := DefaultTolerances()
							if cyc == "US06" {
								tol.EnergyClosureRel = 0.25
							}
							if err := CheckInvariants(cfg, bres[i], tol); err != nil {
								t.Errorf("lane %d: batch result violates invariants: %v", i, err)
							}
						}
					}
				})
			}
		}
	}
}

// TestBatchCheckpointResumeBitExact pins batch durability: checkpoints
// emitted at a batch boundary round-trip through JSON and resume (a)
// a fresh batch and (b) a fresh scalar Runner per lane — both
// reproducing the uninterrupted batch bit for bit. A scalar-emitted
// checkpoint conversely resumes the batch, proving the formats are
// cross-compatible.
func TestBatchCheckpointResumeBitExact(t *testing.T) {
	const size = 4
	const at = 97
	cfgs := batchLaneConfigs(t, "ECE15", size)

	br, err := NewBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	cks := make([]*Checkpoint, size)
	ref, err := br.RunWith(control.Batch(batchControllers(t, "fuzzy", size)), BatchRunOptions{
		CheckpointEvery: at,
		OnCheckpoint: func(lane int, ck *Checkpoint) error {
			if cks[lane] == nil {
				raw, err := json.Marshal(ck) // round-trip as checkpoint files do
				if err != nil {
					return err
				}
				cks[lane] = new(Checkpoint)
				return json.Unmarshal(raw, cks[lane])
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, ck := range cks {
		if ck == nil || ck.Step != at {
			t.Fatalf("lane %d: missing checkpoint at step %d", i, at)
		}
	}
	refJSON := make([]string, size)
	for i := range ref {
		raw, _ := json.Marshal(ref[i])
		refJSON[i] = string(raw)
	}

	// (a) Batch resume on fresh runners and controllers.
	br2, err := NewBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := br2.RunWith(control.Batch(batchControllers(t, "fuzzy", size)), BatchRunOptions{Resume: cks})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		raw, _ := json.Marshal(res[i])
		if string(raw) != refJSON[i] {
			t.Errorf("lane %d: batch resume diverges from uninterrupted batch", i)
		}
	}

	// (b) Each batch checkpoint resumes the scalar Runner bit-exactly.
	for i, cfg := range cfgs {
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sres, err := r.RunWith(control.NewFuzzy(hvacModel(t)), RunOptions{Resume: cks[i]})
		if err != nil {
			t.Fatalf("lane %d: scalar resume from batch checkpoint: %v", i, err)
		}
		raw, _ := json.Marshal(sres)
		if string(raw) != refJSON[i] {
			t.Errorf("lane %d: scalar resume from batch checkpoint diverges", i)
		}
	}

	// (c) Scalar-emitted checkpoints resume the batch.
	scks := make([]*Checkpoint, size)
	for i, cfg := range cfgs {
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.RunWith(control.NewFuzzy(hvacModel(t)), RunOptions{
			CheckpointEvery: at,
			OnCheckpoint: func(ck *Checkpoint) error {
				if scks[i] == nil {
					scks[i] = ck
				}
				return nil
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	br3, err := NewBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	res3, err := br3.RunWith(control.Batch(batchControllers(t, "fuzzy", size)), BatchRunOptions{Resume: scks})
	if err != nil {
		t.Fatalf("batch resume from scalar checkpoints: %v", err)
	}
	for i := range res3 {
		raw, _ := json.Marshal(res3[i])
		if string(raw) != refJSON[i] {
			t.Errorf("lane %d: batch resume from scalar checkpoint diverges", i)
		}
	}
}

// TestBatchAbortFlushesCheckpoints pins the graceful-drain contract: a
// canceled context aborts the batch with one resumable checkpoint per
// lane, and resuming those checkpoints completes the run bit-exactly.
func TestBatchAbortFlushesCheckpoints(t *testing.T) {
	const size = 3
	cfgs := batchLaneConfigs(t, "ECE15", size)

	br, err := NewBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := br.Run(control.Batch(batchControllers(t, "onoff", size)))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	br2, err := NewBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	var flushed []*Checkpoint
	steps := 0
	_, err = br2.RunWith(control.Batch(batchControllers(t, "onoff", size)), BatchRunOptions{
		Context:         ctx,
		CheckpointEvery: 50,
		OnCheckpoint: func(lane int, ck *Checkpoint) error {
			if ck.Step >= 100 {
				flushed = append(flushed, ck)
			}
			if lane == size-1 && ck.Step == 100 {
				steps = ck.Step
				cancel()
			}
			return nil
		},
	})
	if err == nil || !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("canceled batch returned %v, want abort error", err)
	}
	// The drain flushes one extra checkpoint set at the abort step.
	if len(flushed) != 2*size {
		t.Fatalf("flushed %d checkpoints, want %d", len(flushed), 2*size)
	}
	resume := flushed[size:]
	if resume[0].Step != steps {
		t.Fatalf("drain checkpoint at step %d, want %d", resume[0].Step, steps)
	}

	br3, err := NewBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := br3.RunWith(control.Batch(batchControllers(t, "onoff", size)), BatchRunOptions{Resume: resume})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		want, _ := json.Marshal(ref[i])
		got, _ := json.Marshal(res[i])
		if string(want) != string(got) {
			t.Errorf("lane %d: resume after abort diverges from uninterrupted run", i)
		}
	}
}

// TestNewBatchValidation pins the grouping preconditions: thermal lanes,
// mismatched time grids, empty batches, and lane-count mismatches are
// rejected with diagnostics.
func TestNewBatchValidation(t *testing.T) {
	if _, err := NewBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
	cfgs := batchLaneConfigs(t, "ECE15", 2)

	th := cfgs[1]
	thc := thermal.DefaultThermal()
	th.Thermal = &thc
	if _, err := NewBatch([]Config{cfgs[0], th}); err == nil {
		t.Error("thermal lane accepted")
	}

	slow := cfgs[1]
	slow.ControlDt = 2
	if _, err := NewBatch([]Config{cfgs[0], slow}); err == nil {
		t.Error("mismatched ControlDt accepted")
	}

	short := cfgs[1]
	short.Profile = cfgs[1].Profile.Truncate(120)
	if _, err := NewBatch([]Config{cfgs[0], short}); err == nil {
		t.Error("mismatched step count accepted")
	}

	br, err := NewBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := br.Run(control.Batch(batchControllers(t, "onoff", 3))); err == nil {
		t.Error("lane-count mismatch accepted")
	}
}

// TestRunTracePreallocated pins the trace-regrowth fix: after a run,
// every trace column's capacity equals the step count — the per-step
// appends never regrew the preallocated slices.
func TestRunTracePreallocated(t *testing.T) {
	cfg := DefaultConfig(hotProfile().Truncate(200))
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(control.NewOnOff(hvacModel(t)))
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.Trace.Time)
	if n == 0 {
		t.Fatal("empty trace")
	}
	for name, c := range map[string]int{
		"Time":     cap(res.Trace.Time),
		"CabinC":   cap(res.Trace.CabinC),
		"OutsideC": cap(res.Trace.OutsideC),
		"MotorW":   cap(res.Trace.MotorW),
		"HeaterW":  cap(res.Trace.HeaterW),
		"CoolerW":  cap(res.Trace.CoolerW),
		"FanW":     cap(res.Trace.FanW),
		"HVACW":    cap(res.Trace.HVACW),
		"TotalW":   cap(res.Trace.TotalW),
		"SoC":      cap(res.Trace.SoC),
		"Inputs":   cap(res.Trace.Inputs),
	} {
		if c != n {
			t.Errorf("Trace.%s capacity %d != len %d: slice regrew or overallocated", name, c, n)
		}
	}
}

// TestRunAllocsBounded pins the allocation-free step loop: whole-run
// allocations stay O(1) (setup + result), not O(steps). Before the
// batched-core rework the 200-step loop allocated several slices and a
// closure per step (thousands per run).
func TestRunAllocsBounded(t *testing.T) {
	cfg := DefaultConfig(hotProfile().Truncate(200))
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := control.NewOnOff(hvacModel(t))
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := r.Run(ctrl); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 100 {
		t.Errorf("Run allocated %v objects for a 200-step profile; the step loop is allocating", allocs)
	}
}
