package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"evclimate/internal/bms"
	"evclimate/internal/cabin"
	"evclimate/internal/control"
	"evclimate/internal/drivecycle"
	"evclimate/internal/faults"
	"evclimate/internal/ode"
	"evclimate/internal/telemetry"
)

// BatchRunner steps N independent vehicles in lockstep over
// structure-of-arrays plant state: one time loop, one batched RK4
// integration over the concatenated cabin states, and one batched
// controller decision per control step. Each lane's trajectory is
// bit-for-bit identical to what the scalar Runner produces for the same
// configuration — RK4 on concatenated state is element-wise, the
// controller kernels are shared with the scalar path, and the per-lane
// arithmetic preserves the scalar evaluation order — so the batch core
// is a pure throughput optimization: it amortizes the time loop,
// eliminates per-step allocations, and keeps the lane states hot in
// cache, which is where the scalar sweep lost its cycles.
//
// Thermal-network lanes are rejected: the cold-climate plant couples a
// second state and per-step network stepping that the SoA core does not
// carry; those runs keep the scalar path.
type BatchRunner struct {
	lanes    []*Runner
	n        int     // control steps, equal across lanes
	dt       float64 // ControlDt, equal across lanes
	subSteps int     // PlantSubSteps, equal across lanes
}

// NewBatch validates the lane configurations and builds a lockstep
// batch. Every lane gets its own scalar Runner (so per-lane physics,
// drive cycles, targets, faults, and telemetry are free to differ), but
// the lanes must share a time grid: equal ControlDt, PlantSubSteps, and
// step count after defaulting. Thermal lanes are rejected — they keep
// the scalar path.
func NewBatch(cfgs []Config) (*BatchRunner, error) {
	if len(cfgs) == 0 {
		return nil, errors.New("sim: batch with no lanes")
	}
	br := &BatchRunner{lanes: make([]*Runner, len(cfgs))}
	validated := make(map[*drivecycle.Profile]bool, len(cfgs))
	for i, cfg := range cfgs {
		if cfg.Thermal != nil {
			return nil, fmt.Errorf("sim: batch lane %d has a thermal network; thermal lanes keep the scalar path", i)
		}
		r, err := buildRunnerShared(cfg, validated)
		if err != nil {
			return nil, fmt.Errorf("sim: batch lane %d: %w", i, err)
		}
		// Sweep grids vary environment and target over one cycle, so most
		// lanes drive the same speed trace with the same powertrain; the
		// traction power profile depends on nothing else, and computing it
		// once per motion group (instead of per lane) takes the dominant
		// per-lane setup cost off repeated batches.
		for j := 0; j < i; j++ {
			if sharesMotorBasis(br.lanes[j], r) {
				r.motor = br.lanes[j].motor
				break
			}
		}
		if r.motor == nil {
			r.motor = r.pt.PowerProfile(r.cfg.Profile)
		}
		n := r.stepCount()
		if n <= 0 {
			return nil, fmt.Errorf("sim: batch lane %d: profile too short for one control step", i)
		}
		if i == 0 {
			br.n, br.dt, br.subSteps = n, r.cfg.ControlDt, r.cfg.PlantSubSteps
		} else if r.cfg.ControlDt != br.dt || r.cfg.PlantSubSteps != br.subSteps || n != br.n {
			return nil, fmt.Errorf("sim: batch lane %d time grid (dt=%v sub=%d steps=%d) differs from lane 0 (dt=%v sub=%d steps=%d)",
				i, r.cfg.ControlDt, r.cfg.PlantSubSteps, n, br.dt, br.subSteps, br.n)
		}
		br.lanes[i] = r
	}
	return br, nil
}

// stepCount returns the run's control-step count for the configuration,
// the same n = ceil(duration/dt) the scalar RunWith computes.
func (r *Runner) stepCount() int {
	return int(math.Ceil(r.cfg.Profile.Duration() / r.cfg.ControlDt))
}

// sharesMotorBasis reports whether lane b's motor power profile is
// necessarily bit-identical to lane a's: equal powertrain parameters
// (pointer-equal efficiency map) and profiles with the same grid and the
// same motion fields per sample. PowerAt reads only speed, acceleration,
// slope, and wind, so the environment fields sweeps vary are free to
// differ.
func sharesMotorBasis(a, b *Runner) bool {
	if a.cfg.Powertrain != b.cfg.Powertrain {
		return false
	}
	pa, pb := a.cfg.Profile, b.cfg.Profile
	if pa == pb {
		return true
	}
	if pa.Dt != pb.Dt || len(pa.Samples) != len(pb.Samples) {
		return false
	}
	for i := range pa.Samples {
		sa, sb := &pa.Samples[i], &pb.Samples[i]
		if sa.Speed != sb.Speed || sa.Accel != sb.Accel ||
			sa.SlopePercent != sb.SlopePercent || sa.WindMs != sb.WindMs {
			return false
		}
	}
	return true
}

// Lanes returns the lane count.
func (br *BatchRunner) Lanes() int { return len(br.lanes) }

// Lane returns lane i's scalar Runner.
func (br *BatchRunner) Lane(i int) *Runner { return br.lanes[i] }

// Steps returns the shared control-step count.
func (br *BatchRunner) Steps() int { return br.n }

// BatchRunOptions are the durability controls of one batched run. The
// zero value reproduces Run exactly.
type BatchRunOptions struct {
	// Context, when non-nil, is checked once per control step; a canceled
	// context aborts the whole batch (after flushing per-lane checkpoints
	// when OnCheckpoint is set).
	Context context.Context
	// CheckpointEvery, with OnCheckpoint, emits one checkpoint per lane
	// after every CheckpointEvery-th completed control step — the same
	// boundaries, contents, and JSON bytes the scalar Runner's
	// checkpoints carry, so a batch checkpoint resumes a scalar run and
	// vice versa.
	CheckpointEvery int
	// OnCheckpoint receives lane checkpoints in lane order; a non-nil
	// error aborts the run.
	OnCheckpoint func(lane int, ck *Checkpoint) error
	// Resume, when non-nil, must hold one checkpoint per lane, all at the
	// same step; the batch resumes from that boundary bit-exactly.
	Resume []*Checkpoint
}

// rhsLane is one lane's slice of the batched plant right-hand side: the
// cabin parameters the derivative reads, the zero-order-held actuator
// inputs of the current control period, and the lane's environment. One
// 64-byte struct per lane keeps the integration inner loop to a single
// indexed load. prof is nil when the environment is constant over the
// profile (the sweep-grid common case), in which case ambC/solW hold the
// EnvSampler fast-path values.
type rhsLane struct {
	ua, cc, cp float64 // shell UA (W/K), capacitance (J/K), air cp (J/(kg·K))
	fcp, ts    float64 // ṁ·cp (W/K) and supply temp, rewritten every control step
	ambC, solW float64 // constant-environment fast path
	prof       *drivecycle.Profile
}

// integrateLanes advances the concatenated cabin states from t0 to t1
// with fixed substep dt: ode.BatchRK4.IntegrateInto with the cabin RHS
// inlined, each stage's derivative evaluation fused with the state
// combination that feeds the next stage. The per-lane arithmetic — the
// stage formulas, the shortened last step, and the post-step non-finite
// check — mirrors BatchRK4 exactly, so each lane remains bit-identical
// to a scalar one-lane integration (RK4 on concatenated state is
// element-wise). k1/k2/k3/tmp are caller-owned workspace of lane length.
//
// Each stage repeats the derivative body instead of calling a helper:
// cabin.Model.CabinDerivative over one rhsLane — the same expression
// tree ((solar + UA·(amb−T)) + (ṁ·cp)·(Ts−T)) / C in the same
// association, so every intermediate rounds identically to the scalar
// path; fcp carries the scalar path's ṁ·cp product, which that
// expression also forms first. (A shared helper exceeds the inlining
// budget because of the varying-environment EnvAt call, turning the
// innermost loops into four function calls per lane per substep.)
func integrateLanes(rhs []rhsLane, x, k1, k2, k3, tmp []float64, t0, t1, dt float64) error {
	x = x[:len(rhs)]
	k1 = k1[:len(rhs)]
	k2 = k2[:len(rhs)]
	k3 = k3[:len(rhs)]
	tmp = tmp[:len(rhs)]
	t := t0
	for t < t1 {
		h := dt
		if t+h > t1 {
			h = t1 - t
		}
		if h <= 0 {
			break
		}
		th := t + h/2
		for i := range rhs {
			l := &rhs[i]
			amb, sol := l.ambC, l.solW
			if l.prof != nil {
				amb, sol = l.prof.EnvAt(t)
			}
			xi := x[i]
			q := sol + l.ua*(amb-xi)
			d := (q + l.fcp*(l.ts-xi)) / l.cc
			k1[i] = d
			tmp[i] = xi + h/2*d
		}
		for i := range rhs {
			l := &rhs[i]
			amb, sol := l.ambC, l.solW
			if l.prof != nil {
				amb, sol = l.prof.EnvAt(th)
			}
			xi := tmp[i]
			q := sol + l.ua*(amb-xi)
			d := (q + l.fcp*(l.ts-xi)) / l.cc
			k2[i] = d
			tmp[i] = x[i] + h/2*d
		}
		for i := range rhs {
			l := &rhs[i]
			amb, sol := l.ambC, l.solW
			if l.prof != nil {
				amb, sol = l.prof.EnvAt(th)
			}
			xi := tmp[i]
			q := sol + l.ua*(amb-xi)
			d := (q + l.fcp*(l.ts-xi)) / l.cc
			k3[i] = d
			tmp[i] = x[i] + h*d
		}
		for i := range rhs {
			l := &rhs[i]
			amb, sol := l.ambC, l.solW
			if l.prof != nil {
				amb, sol = l.prof.EnvAt(t + h)
			}
			xi := tmp[i]
			q := sol + l.ua*(amb-xi)
			d := (q + l.fcp*(l.ts-xi)) / l.cc
			x[i] = x[i] + h/6*(k1[i]+2*k2[i]+2*k3[i]+d)
		}
		t += h
		for i, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return &ode.NonFiniteLaneError{Lane: i, T: t}
			}
		}
	}
	return nil
}

// batchLane is one lane's mutable run state: the scalar Runner's
// runState fields in per-lane form, plus the step scratch the fused
// loop's passes hand each other.
type batchLane struct {
	r   *Runner
	b   *bms.BMS
	inj *faults.Injector
	res *Result

	hvacJ, motorJ, totalJ              float64
	comfortViol, comfortCount, trackSq float64

	telOn      bool
	tel        telemetry.Sink
	telSteps   *telemetry.Counter
	telLatency *telemetry.Histogram
	solver     control.SolveReporter
	ladder     control.LadderReporter

	// Per-step scratch written by the pre-integration passes and read by
	// the post-integration pass. prevTz is the pre-step cabin
	// temperature, saved because the batched integration updates the SoA
	// state in place.
	amb, sol, pe, socBefore float64
	prevTz                  float64
	in                      cabin.Inputs
	pw                      cabin.Powers
	hvacW                   float64
}

// Run simulates every lane to completion under the batch controller and
// returns one Result per lane. The controller is Reset before the run.
func (br *BatchRunner) Run(bc control.BatchController) ([]*Result, error) {
	return br.RunWith(bc, BatchRunOptions{})
}

// RunWith simulates the lanes in lockstep with durability controls,
// mirroring the scalar Runner.RunWith per lane: each lane's Result,
// trace, checkpoints, and telemetry are bit-identical to a scalar run
// of the same configuration and controller.
func (br *BatchRunner) RunWith(bc control.BatchController, opts BatchRunOptions) ([]*Result, error) {
	nl := len(br.lanes)
	if bc.Lanes() != nl {
		return nil, fmt.Errorf("sim: batch controller has %d lanes, runner has %d", bc.Lanes(), nl)
	}
	bc.Reset()

	lanes := make([]batchLane, nl)
	// The SoA state and per-step context/decision arrays.
	x := make([]float64, nl)
	ctxs := make([]control.StepContext, nl)
	decs := make([]cabin.Inputs, nl)
	// SoA plant state for the fused RHS: the cabin derivative reads only
	// these per-lane scalars, so the integration inner loop touches one
	// contiguous array instead of chasing lane structs.
	rhs := make([]rhsLane, nl)
	for i := range lanes {
		ln := &lanes[i]
		r := br.lanes[i]
		cfg := r.cfg
		ln.r = r
		b, err := bms.New(cfg.BMS)
		if err != nil {
			return nil, fmt.Errorf("sim: batch lane %d: %w", i, err)
		}
		ln.b = b
		x[i] = cfg.InitialCabinC
		if cfg.UseAmbientStart {
			x[i] = cfg.Profile.Samples[0].AmbientC
		}
		ln.res = &Result{Controller: bc.Lane(i).Name()}
		if !cfg.Faults.Empty() {
			ln.inj = cfg.Faults.New(cfg.FaultSeed)
		}
		rl := &rhs[i]
		if ambC, solW, ok := drivecycle.NewEnvSampler(cfg.Profile).ConstantEnv(); ok {
			rl.ambC, rl.solW = ambC, solW
		} else {
			rl.prof = cfg.Profile
		}
		cp := r.hvac.Params()
		rl.ua = cp.ShellUAWK
		rl.cp = cp.AirCpJKgK
		rl.cc = cp.ThermalCapacitanceJK
		ln.tel = cfg.Telemetry
		ln.telOn = ln.tel != nil && ln.tel.Active()
		if ln.telOn {
			ln.telSteps = ln.tel.Counter("sim_steps_total")
			ln.telLatency = ln.tel.Histogram("sim_step_latency_seconds", telemetry.LatencyBuckets)
			ln.solver, _ = bc.Lane(i).(control.SolveReporter)
			ln.ladder, _ = bc.Lane(i).(control.LadderReporter)
			if tb, ok := bc.Lane(i).(control.TelemetryBinder); ok {
				tb.BindTelemetry(ln.tel)
			}
		}
	}

	k := 0 // the shared step index; lanes advance in lockstep
	if opts.Resume != nil {
		var err error
		k, err = br.restore(bc, lanes, x, opts.Resume)
		if err != nil {
			return nil, err
		}
	}

	// Preallocate every lane's trace and SoC trace to the known step
	// count so the per-step appends never regrow mid-run.
	for i := range lanes {
		growTrace(&lanes[i].res.Trace, br.n, false)
		lanes[i].b.Grow(br.n)
	}

	// Workspace for the fused batched RK4 (see integrateLanes).
	k1 := make([]float64, nl)
	k2 := make([]float64, nl)
	k3 := make([]float64, nl)
	tmp := make([]float64, nl)
	sub := br.dt / float64(br.subSteps)
	anyTel := false
	for i := range lanes {
		if lanes[i].telOn {
			anyTel = true
		}
	}

	for k < br.n {
		t := float64(k) * br.dt
		if opts.Context != nil {
			if cerr := opts.Context.Err(); cerr != nil {
				// Graceful drain: flush one checkpoint per lane so the
				// caller can resume the whole batch from this boundary.
				if opts.OnCheckpoint != nil {
					for i := range lanes {
						if ck, snapErr := br.laneCheckpoint(bc, &lanes[i], i, k, x[i]); snapErr == nil {
							_ = opts.OnCheckpoint(i, ck)
						}
					}
				}
				return nil, fmt.Errorf("sim: run aborted at step %d/%d: %w", k, br.n, cerr)
			}
		}

		// Pass 1: observe — per lane, sample the environment, motor
		// power, and SoC, and build the (possibly fault-corrupted)
		// controller context, exactly as the scalar loop does.
		for i := range lanes {
			ln := &lanes[i]
			cfg := &ln.r.cfg
			if rl := &rhs[i]; rl.prof != nil {
				ln.amb, ln.sol = rl.prof.EnvAt(t)
			} else {
				ln.amb, ln.sol = rl.ambC, rl.solW
			}
			ln.pe = ln.r.MotorPower(t)
			ln.socBefore = ln.b.SoC()
			// Field-wise writes instead of a composite literal: StepContext
			// is large enough that assigning a literal copies the whole
			// struct per lane per step. Every field is (re)written — the
			// fault injector may have corrupted any of them last step.
			c := &ctxs[i]
			c.Time = t
			c.Dt = cfg.ControlDt
			c.CabinTempC = x[i]
			c.OutsideC = ln.amb
			c.SolarW = ln.sol
			c.MotorPowerW = ln.pe
			c.SoC = ln.socBefore
			c.TargetC = cfg.TargetC
			c.ComfortLowC = cfg.TargetC - cfg.ComfortBandC
			c.ComfortHighC = cfg.TargetC + cfg.ComfortBandC
			c.SolverIterBudget = 0
			c.PackTempC = 0
			c.PackThermal = false
			if cfg.ForecastSteps > 0 {
				c.Forecast = ln.r.forecast(t, cfg.ForecastSteps)
			} else {
				c.Forecast = control.Forecast{}
			}
			if ln.inj != nil {
				ln.inj.Apply(k, c)
			}
		}

		// Pass 2: decide — one batched controller step, then per-lane
		// actuator clamping and power accounting. Controller latency is
		// wall-clock (non-deterministic, excluded from deterministic
		// telemetry comparisons); the batch attributes an equal share to
		// each lane.
		var stepStart time.Time
		if anyTel {
			stepStart = time.Now()
		}
		bc.DecideAll(ctxs, decs)
		for i := range lanes {
			ln := &lanes[i]
			ln.prevTz = x[i] // integration below overwrites x in place
			ln.in = decs[i]
			mix := ln.r.hvac.ClampForEnvironmentInPlace(&ln.in, ln.amb, x[i])
			// Zero-order-held RHS inputs for this control period, in the
			// scalar derivative's association: ṁ·cp first, then ·(Ts−T).
			rl := &rhs[i]
			rl.fcp = ln.in.AirFlowKgS * rl.cp
			rl.ts = ln.in.SupplyTempC
			ln.pw = ln.r.hvac.PowersFor(ln.in, mix)
			// Matches the scalar loop's heater accounting (which the
			// thermal branch rewrites; batch lanes are never thermal).
			heaterElecW := ln.pw.HeaterW
			ln.hvacW = ln.pw.Total() - ln.pw.HeaterW + heaterElecW
		}
		var stepLatency time.Duration
		if anyTel {
			stepLatency = time.Since(stepStart) / time.Duration(nl)
		}

		// Pass 3: integrate — one batched RK4 sweep over the concatenated
		// cabin states with the lanes' zero-order-held inputs.
		if err := integrateLanes(rhs, x, k1, k2, k3, tmp, t, t+br.dt, sub); err != nil {
			return nil, fmt.Errorf("sim: plant integration failed at t=%v: %w", t, err)
		}

		// Pass 4: account — per lane, battery step, telemetry, trace, and
		// metric accumulators, in the scalar loop's exact order. The
		// pre-step cabin temperature feeds the trace and comfort
		// statistics; the integrated state lands in ctxs[i].CabinTempC's
		// successor next iteration.
		for i := range lanes {
			ln := &lanes[i]
			cfg := &ln.r.cfg
			total := ln.pe + ln.hvacW + cfg.Powertrain.AccessoryW
			_, soc := ln.b.Step(total, cfg.ControlDt)

			if ln.telOn {
				ln.telSteps.Inc()
				ln.telLatency.Observe(stepLatency.Seconds())
				span := telemetry.StepSpan{
					Step:         k,
					TimeS:        t,
					CabinC:       ln.prevTz,
					OutsideC:     ln.amb,
					SoCPct:       soc,
					SoCDeltaPct:  soc - ln.socBefore,
					HVACW:        ln.hvacW,
					SupplyC:      ln.in.SupplyTempC,
					CoilC:        ln.in.CoilTempC,
					Recirc:       ln.in.Recirc,
					AirFlowKgS:   ln.in.AirFlowKgS,
					Rung:         -1,
					FaultsActive: ln.inj.ActiveAt(t),
					LatencyNs:    stepLatency.Nanoseconds(),
				}
				if ln.solver != nil {
					si := ln.solver.LastSolve()
					span.SolverIters = si.Iterations
					span.QPIters = si.QPIterations
					span.SolverStatus = si.Status
				}
				if ln.ladder != nil {
					span.Rung = ln.ladder.Level()
					span.Stage = ln.ladder.ActiveStage()
				}
				ln.tel.Step(&span)
			}

			tr := &ln.res.Trace
			tr.Time = append(tr.Time, t)
			tr.CabinC = append(tr.CabinC, ln.prevTz)
			tr.OutsideC = append(tr.OutsideC, ln.amb)
			tr.MotorW = append(tr.MotorW, ln.pe)
			tr.HeaterW = append(tr.HeaterW, ln.pw.HeaterW)
			tr.CoolerW = append(tr.CoolerW, ln.pw.CoolerW)
			tr.FanW = append(tr.FanW, ln.pw.FanW)
			tr.HVACW = append(tr.HVACW, ln.hvacW)
			tr.TotalW = append(tr.TotalW, total)
			tr.SoC = append(tr.SoC, soc)
			tr.Inputs = append(tr.Inputs, ln.in)

			ln.hvacJ += ln.hvacW * cfg.ControlDt
			ln.motorJ += ln.pe * cfg.ControlDt
			ln.totalJ += total * cfg.ControlDt

			// Comfort statistics use the true pre-step temperature against
			// the (possibly fault-widened) comfort band the controller saw.
			if t >= cfg.SettleS {
				ln.comfortCount++
				e := ln.prevTz - cfg.TargetC
				ln.trackSq += e * e
				if ln.prevTz < ctxs[i].ComfortLowC || ln.prevTz > ctxs[i].ComfortHighC {
					ln.comfortViol++
				}
			}
		}

		k++

		if opts.CheckpointEvery > 0 && opts.OnCheckpoint != nil && k < br.n && k%opts.CheckpointEvery == 0 {
			for i := range lanes {
				ck, err := br.laneCheckpoint(bc, &lanes[i], i, k, x[i])
				if err != nil {
					return nil, fmt.Errorf("sim: checkpoint at step %d: %w", k, err)
				}
				if err := opts.OnCheckpoint(i, ck); err != nil {
					return nil, fmt.Errorf("sim: checkpoint at step %d: %w", k, err)
				}
			}
		}
	}

	// Write SoA state back into the lane controllers so Lane(i) reflects
	// the run, then finalize per-lane results exactly as the scalar path.
	if ls, ok := bc.(control.LaneSyncer); ok {
		ls.SyncLanes()
	}
	out := make([]*Result, nl)
	for i := range lanes {
		ln := &lanes[i]
		cfg := &ln.r.cfg
		res := ln.res
		simT := float64(br.n) * cfg.ControlDt
		res.AvgHVACW = ln.hvacJ / simT
		res.AvgMotorW = ln.motorJ / simT
		res.AvgTotalW = ln.totalJ / simT
		res.HVACEnergyKWh = ln.hvacJ / 3.6e6
		res.FinalSoC = ln.b.SoC()
		res.Events = ln.b.Events()
		dev, avg, err := ln.b.CycleStats()
		if err != nil {
			return nil, fmt.Errorf("sim: batch lane %d: %w", i, err)
		}
		res.SoCDev, res.SoCAvg = dev, avg
		dsoh, err := ln.b.DeltaSoH()
		if err != nil {
			return nil, fmt.Errorf("sim: batch lane %d: %w", i, err)
		}
		res.DeltaSoH = dsoh
		if ln.comfortCount > 0 {
			res.ComfortViolationFrac = ln.comfortViol / ln.comfortCount
			res.RMSTrackingErrC = math.Sqrt(ln.trackSq / ln.comfortCount)
		}
		out[i] = res
	}
	return out, nil
}

// laneCheckpoint captures lane i's state at the current step boundary
// in the scalar Checkpoint format (same fields, same JSON), so batch
// checkpoints interoperate with scalar resume and vice versa.
func (br *BatchRunner) laneCheckpoint(bc control.BatchController, ln *batchLane, i, k int, tz float64) (*Checkpoint, error) {
	snap, ok := bc.(control.BatchSnapshotter)
	if !ok {
		return nil, fmt.Errorf("sim: controller %q does not support state snapshots", bc.Lane(i).Name())
	}
	ctrlState, err := snap.LaneSnapshot(i)
	if err != nil {
		return nil, fmt.Errorf("sim: controller snapshot: %w", err)
	}
	ck := &Checkpoint{
		Version:      CheckpointVersion,
		Controller:   bc.Lane(i).Name(),
		Step:         k,
		CabinC:       tz,
		HVACJ:        ln.hvacJ,
		MotorJ:       ln.motorJ,
		TotalJ:       ln.totalJ,
		ComfortViol:  ln.comfortViol,
		ComfortCount: ln.comfortCount,
		TrackSq:      ln.trackSq,
		Trace:        copyTrace(&ln.res.Trace),
		BMS:          ln.b.State(),
		CtrlState:    ctrlState,
	}
	if ln.inj != nil {
		fs := ln.inj.State()
		ck.Faults = &fs
	}
	return ck, nil
}

// restore loads one checkpoint per lane (all at the same step) into the
// batch state, mirroring the scalar Runner's restore validation per
// lane, and returns the resumed step index.
func (br *BatchRunner) restore(bc control.BatchController, lanes []batchLane, x []float64, cks []*Checkpoint) (int, error) {
	if len(cks) != len(lanes) {
		return 0, fmt.Errorf("sim: batch resume has %d checkpoints for %d lanes", len(cks), len(lanes))
	}
	snap, ok := bc.(control.BatchSnapshotter)
	if !ok {
		return 0, fmt.Errorf("sim: controller %q does not support state snapshots", bc.Lane(0).Name())
	}
	step := -1
	for i, ck := range cks {
		ln := &lanes[i]
		if ck == nil {
			return 0, fmt.Errorf("sim: batch resume lane %d: nil checkpoint", i)
		}
		if ck.Version != CheckpointVersion {
			return 0, fmt.Errorf("sim: checkpoint version %d, want %d", ck.Version, CheckpointVersion)
		}
		if ck.Controller != bc.Lane(i).Name() {
			return 0, fmt.Errorf("sim: checkpoint from controller %q cannot resume %q", ck.Controller, bc.Lane(i).Name())
		}
		if ck.Step < 0 || ck.Step > br.n {
			return 0, fmt.Errorf("sim: checkpoint step %d outside run of %d steps", ck.Step, br.n)
		}
		if step < 0 {
			step = ck.Step
		} else if ck.Step != step {
			return 0, fmt.Errorf("sim: batch resume lane %d at step %d, lane 0 at step %d; lanes must share a boundary", i, ck.Step, step)
		}
		if len(ck.Trace.Time) != ck.Step {
			return 0, fmt.Errorf("sim: checkpoint trace has %d steps, expected %d", len(ck.Trace.Time), ck.Step)
		}
		if (ck.Faults != nil) != (ln.inj != nil) {
			return 0, errors.New("sim: checkpoint fault state does not match the run's fault configuration")
		}
		if ck.Thermal != nil {
			return 0, errors.New("sim: checkpoint thermal state does not match the run's thermal configuration")
		}
		if len(ck.CtrlState) == 0 {
			return 0, errors.New("sim: checkpoint is missing the controller state")
		}
		if err := snap.RestoreLane(i, ck.CtrlState); err != nil {
			return 0, fmt.Errorf("sim: controller restore: %w", err)
		}
		if err := ln.b.SetState(ck.BMS); err != nil {
			return 0, err
		}
		if ln.inj != nil {
			ln.inj.SetState(*ck.Faults)
		}
		ln.res.Trace = copyTrace(&ck.Trace)
		x[i] = ck.CabinC
		ln.hvacJ, ln.motorJ, ln.totalJ = ck.HVACJ, ck.MotorJ, ck.TotalJ
		ln.comfortViol, ln.comfortCount, ln.trackSq = ck.ComfortViol, ck.ComfortCount, ck.TrackSq
	}
	return step, nil
}
