package sim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"evclimate/internal/battery"
	"evclimate/internal/bms"
	"evclimate/internal/cabin"
	"evclimate/internal/control"
	"evclimate/internal/faults"
	"evclimate/internal/thermal"
)

// CheckpointVersion is the checkpoint schema version; Restore refuses
// checkpoints written by a different schema.
const CheckpointVersion = 1

// RunOptions are the durability controls of one run. The zero value
// reproduces Run exactly.
type RunOptions struct {
	// Context, when non-nil, is checked once per control step: a canceled
	// or deadline-exceeded context aborts the run with the context's
	// error (wrapped). This is the per-job watchdog hook — wall-clock
	// deadlines become step-granular aborts without any goroutine
	// machinery in the hot loop.
	Context context.Context
	// CheckpointEvery, when positive together with OnCheckpoint, emits a
	// checkpoint after every CheckpointEvery-th completed control step
	// (never after the final step — a finished run needs no checkpoint).
	CheckpointEvery int
	// OnCheckpoint receives each emitted checkpoint; a non-nil error
	// aborts the run. When the Context cancels mid-run, a final
	// checkpoint is flushed through OnCheckpoint before the run returns,
	// so a graceful drain always leaves a resumable state behind.
	OnCheckpoint func(*Checkpoint) error
	// Resume, when non-nil, restores the run to the checkpointed step
	// before the loop starts; the remaining trajectory is bit-for-bit
	// identical to an uninterrupted run. The controller configuration
	// and run Config must match the checkpointing run's.
	Resume *Checkpoint
}

// Checkpoint is the complete serializable state of an in-flight run at a
// control-step boundary: the next step index, the cabin temperature, the
// metric accumulators, the trace so far, the BMS state, the fault
// injector's hold-last buffer, and the controller's opaque state blob.
// encoding/json round-trips finite float64 values exactly, so a
// checkpoint that passed through disk resumes the same bits.
type Checkpoint struct {
	// Version is the checkpoint schema version (CheckpointVersion).
	Version int `json:"version"`
	// Controller is the checkpointing controller's Name, matched on
	// restore so a checkpoint cannot resume under a different controller.
	Controller string `json:"controller"`
	// Step is the next control-step index to execute.
	Step int `json:"step"`
	// CabinC is the cabin temperature at the start of Step.
	CabinC float64 `json:"cabin_c"`
	// HVACJ, MotorJ, TotalJ are the energy accumulators.
	HVACJ  float64 `json:"hvac_j"`
	MotorJ float64 `json:"motor_j"`
	TotalJ float64 `json:"total_j"`
	// ComfortViol, ComfortCount, TrackSq are the comfort-statistics
	// accumulators.
	ComfortViol  float64 `json:"comfort_viol"`
	ComfortCount float64 `json:"comfort_count"`
	TrackSq      float64 `json:"track_sq"`
	// Trace is the trajectory recorded through step Step-1.
	Trace Trace `json:"trace"`
	// BMS is the battery-management state.
	BMS bms.State `json:"bms"`
	// Faults is the injector's hold-last state; nil when the run injects
	// no faults.
	Faults *faults.InjectorState `json:"faults,omitempty"`
	// Thermal is the thermal-network state plus the sim-side thermal
	// accumulators; nil when the run has no thermal network.
	Thermal *ThermalCheckpoint `json:"thermal,omitempty"`
	// CtrlState is the controller's Snapshotter blob.
	CtrlState json.RawMessage `json:"ctrl_state,omitempty"`
}

// ThermalCheckpoint is the serializable thermal-network slice of a
// checkpoint: the network node state plus the sim-side accumulators
// (calendar aging, heat-pump mode counters).
type ThermalCheckpoint struct {
	State       thermal.Snapshot `json:"state"`
	CalendarPct float64          `json:"calendar_pct"`
	HPSteps     int              `json:"hp_steps"`
	PTCSteps    int              `json:"ptc_steps"`
	COPSum      float64          `json:"cop_sum"`
}

// runState is the mutable loop state of an in-flight run, held on the
// Runner so Snapshot can capture it mid-run (from an OnCheckpoint hook).
type runState struct {
	ctrl control.Controller
	b    *bms.BMS
	inj  *faults.Injector
	res  *Result

	k, n                               int
	tz                                 float64
	hvacJ, motorJ, totalJ              float64
	comfortViol, comfortCount, trackSq float64

	// Thermal-network plant state and accumulators (nil/zero when the run
	// has no thermal network).
	th                *thermal.State
	cal               battery.CalendarParams
	calPct            float64
	hpSteps, ptcSteps int
	copSum            float64
}

// Snapshot captures the in-flight run's complete simulation state at the
// current control-step boundary. It is valid only while a run is
// executing (i.e. called from an OnCheckpoint hook or from code the run
// loop invokes); outside a run it returns an error. The returned
// checkpoint shares nothing with the run — it can be serialized or held
// across the run's end.
func (r *Runner) Snapshot() (*Checkpoint, error) {
	st := r.st
	if st == nil {
		return nil, errors.New("sim: Snapshot outside a run (no run in flight)")
	}
	snap, ok := st.ctrl.(control.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("sim: controller %q does not support state snapshots", st.ctrl.Name())
	}
	ctrlState, err := snap.StateSnapshot()
	if err != nil {
		return nil, fmt.Errorf("sim: controller snapshot: %w", err)
	}
	ck := &Checkpoint{
		Version:      CheckpointVersion,
		Controller:   st.ctrl.Name(),
		Step:         st.k,
		CabinC:       st.tz,
		HVACJ:        st.hvacJ,
		MotorJ:       st.motorJ,
		TotalJ:       st.totalJ,
		ComfortViol:  st.comfortViol,
		ComfortCount: st.comfortCount,
		TrackSq:      st.trackSq,
		Trace:        copyTrace(&st.res.Trace),
		BMS:          st.b.State(),
		CtrlState:    ctrlState,
	}
	if st.inj != nil {
		fs := st.inj.State()
		ck.Faults = &fs
	}
	if st.th != nil {
		ck.Thermal = &ThermalCheckpoint{
			State:       st.th.Snapshot(),
			CalendarPct: st.calPct,
			HPSteps:     st.hpSteps,
			PTCSteps:    st.ptcSteps,
			COPSum:      st.copSum,
		}
	}
	return ck, nil
}

// Restore primes the Runner's next Run/RunWith call to continue from ck,
// exactly as if RunOptions.Resume had been passed. It cannot be called
// while a run is in flight.
func (r *Runner) Restore(ck *Checkpoint) error {
	if ck == nil {
		return errors.New("sim: Restore with nil checkpoint")
	}
	if r.st != nil {
		return errors.New("sim: Restore while a run is in flight")
	}
	r.pendingResume = ck
	return nil
}

// restore validates ck against the run being started and loads it into
// the run state. The controller has already been Reset and had its
// telemetry bound.
func (r *Runner) restore(st *runState, ck *Checkpoint) error {
	if ck.Version != CheckpointVersion {
		return fmt.Errorf("sim: checkpoint version %d, want %d", ck.Version, CheckpointVersion)
	}
	if ck.Controller != st.ctrl.Name() {
		return fmt.Errorf("sim: checkpoint from controller %q cannot resume %q", ck.Controller, st.ctrl.Name())
	}
	if ck.Step < 0 || ck.Step > st.n {
		return fmt.Errorf("sim: checkpoint step %d outside run of %d steps", ck.Step, st.n)
	}
	if len(ck.Trace.Time) != ck.Step {
		return fmt.Errorf("sim: checkpoint trace has %d steps, expected %d", len(ck.Trace.Time), ck.Step)
	}
	if (ck.Faults != nil) != (st.inj != nil) {
		return errors.New("sim: checkpoint fault state does not match the run's fault configuration")
	}
	if (ck.Thermal != nil) != (st.th != nil) {
		return errors.New("sim: checkpoint thermal state does not match the run's thermal configuration")
	}
	snap, ok := st.ctrl.(control.Snapshotter)
	if !ok {
		return fmt.Errorf("sim: controller %q does not support state snapshots", st.ctrl.Name())
	}
	if len(ck.CtrlState) == 0 {
		return errors.New("sim: checkpoint is missing the controller state")
	}
	if err := snap.RestoreState(ck.CtrlState); err != nil {
		return fmt.Errorf("sim: controller restore: %w", err)
	}
	if err := st.b.SetState(ck.BMS); err != nil {
		return err
	}
	if st.inj != nil {
		st.inj.SetState(*ck.Faults)
	}
	if st.th != nil {
		if err := st.th.Restore(ck.Thermal.State); err != nil {
			return err
		}
		st.calPct = ck.Thermal.CalendarPct
		st.hpSteps, st.ptcSteps = ck.Thermal.HPSteps, ck.Thermal.PTCSteps
		st.copSum = ck.Thermal.COPSum
	}
	st.res.Trace = copyTrace(&ck.Trace)
	st.k = ck.Step
	st.tz = ck.CabinC
	st.hvacJ, st.motorJ, st.totalJ = ck.HVACJ, ck.MotorJ, ck.TotalJ
	st.comfortViol, st.comfortCount, st.trackSq = ck.ComfortViol, ck.ComfortCount, ck.TrackSq
	return nil
}

// copyTrace deep-copies a trace so checkpoints and runs never alias.
func copyTrace(t *Trace) Trace {
	return Trace{
		Time:     append([]float64(nil), t.Time...),
		CabinC:   append([]float64(nil), t.CabinC...),
		OutsideC: append([]float64(nil), t.OutsideC...),
		MotorW:   append([]float64(nil), t.MotorW...),
		HeaterW:  append([]float64(nil), t.HeaterW...),
		CoolerW:  append([]float64(nil), t.CoolerW...),
		FanW:     append([]float64(nil), t.FanW...),
		HVACW:    append([]float64(nil), t.HVACW...),
		TotalW:   append([]float64(nil), t.TotalW...),
		SoC:      append([]float64(nil), t.SoC...),
		PackC:    append([]float64(nil), t.PackC...),
		Inputs:   append([]cabin.Inputs(nil), t.Inputs...),
	}
}
