package sim

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"evclimate/internal/control"
	"evclimate/internal/core"
	"evclimate/internal/drivecycle"
	"evclimate/internal/thermal"
)

// coldThermalConfig assembles a cold-climate run: ECE15 at the given
// ambient, no solar, pack soaked overnight at ambient, MPC-rate control.
func coldThermalConfig(ambientC float64) Config {
	prof := drivecycle.ECE15().Profile(1).WithAmbient(ambientC)
	cfg := DefaultConfig(prof)
	cfg.ControlDt = core.DefaultConfig().Dt
	cfg.ForecastSteps = core.DefaultConfig().Horizon
	cfg.UseAmbientStart = true
	th := thermal.DefaultThermal()
	cfg.Thermal = &th
	return cfg
}

// thermalMPC builds the co-scheduling MPC matching the sim-side network.
func thermalMPC(t *testing.T) control.Controller {
	t.Helper()
	ccfg := core.DefaultConfig()
	ccfg.Thermal = core.DefaultThermalOptions()
	c, err := core.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestThermalColdEndToEnd drives the co-scheduling MPC through a −20 °C
// soak (PTC regime) and a −10 °C one (heat-pump regime) and checks the
// thermal plant's observable behavior: the pack warms off its soak
// temperature, the aging metrics populate, the network's energy ledger
// closes, and the heating mode matches the ambient.
func TestThermalColdEndToEnd(t *testing.T) {
	for _, tc := range []struct {
		ambientC float64
		wantPTC  bool
	}{
		{-20, true},
		{-10, false},
	} {
		cfg := coldThermalConfig(tc.ambientC)
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(thermalMPC(t))
		if err != nil {
			t.Fatal(err)
		}
		tr := &res.Trace
		if len(tr.PackC) != len(tr.CabinC) {
			t.Fatalf("%g °C: PackC trace length %d != %d", tc.ambientC, len(tr.PackC), len(tr.CabinC))
		}
		// The pack must warm off its overnight soak: battery heater plus
		// Joule self-heating both push it up.
		if res.PackFinalC <= tc.ambientC {
			t.Errorf("%g °C: pack never warmed: final %.2f °C", tc.ambientC, res.PackFinalC)
		}
		if res.PackMinC < tc.ambientC-0.5 {
			t.Errorf("%g °C: pack dropped below soak: min %.2f °C", tc.ambientC, res.PackMinC)
		}
		if res.PackMeanC <= res.PackMinC || res.PackMeanC >= 40 {
			t.Errorf("%g °C: implausible mean pack temperature %.2f °C", tc.ambientC, res.PackMeanC)
		}
		if res.CalendarDeltaSoH <= 0 {
			t.Errorf("%g °C: calendar aging did not accrue: %v", tc.ambientC, res.CalendarDeltaSoH)
		}
		if res.DeltaSoH <= 0 {
			t.Errorf("%g °C: cycle aging did not accrue: %v", tc.ambientC, res.DeltaSoH)
		}
		// Conservation: the network's closing ledger defect is roundoff on
		// megajoule-scale enthalpy flows.
		if math.Abs(res.ThermalEnergyDefectJ) > 1e-3 {
			t.Errorf("%g °C: thermal energy defect %v J", tc.ambientC, res.ThermalEnergyDefectJ)
		}
		switch {
		case tc.wantPTC && res.HeatPumpFrac != 0:
			t.Errorf("%g °C: below cutoff but heat pump served %.0f%% of heating steps",
				tc.ambientC, 100*res.HeatPumpFrac)
		case !tc.wantPTC && res.HeatPumpFrac != 1:
			t.Errorf("%g °C: above cutoff but PTC served %.0f%% of heating steps",
				tc.ambientC, 100*(1-res.HeatPumpFrac))
		case !tc.wantPTC && res.AvgCOP <= 1:
			t.Errorf("%g °C: heat-pump average conversion %.2f not better than resistive",
				tc.ambientC, res.AvgCOP)
		}
		// The cabin must still warm at full heating rate despite the pack
		// drawing shared heat. ECE15 is only 195 s — far less than the
		// cabin's thermal time constant — so the check is a warming rate,
		// not band entry.
		if final := tr.CabinC[len(tr.CabinC)-1]; final < tc.ambientC+5 {
			t.Errorf("%g °C: final cabin %.2f °C barely warmed", tc.ambientC, final)
		}
	}
}

// TestThermalCheckpointResumeBitExact extends the checkpoint property pin
// to thermal runs: snapshotting a cold co-scheduling run at a random
// step, JSON round-tripping, and resuming on fresh instances reproduces
// the remaining trajectory — including the pack temperature and aging
// accumulators — bit for bit.
func TestThermalCheckpointResumeBitExact(t *testing.T) {
	cfg := coldThermalConfig(-20)
	cfg.Profile = cfg.Profile.Truncate(180)
	steps := int(cfg.Profile.Duration() / cfg.ControlDt)
	rng := rand.New(rand.NewSource(20260808))
	at := 1 + rng.Intn(steps-1)

	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ckBytes []byte
	ref, err := r.RunWith(thermalMPC(t), RunOptions{
		CheckpointEvery: at,
		OnCheckpoint: func(ck *Checkpoint) error {
			if ckBytes == nil {
				if ck.Thermal == nil {
					t.Error("thermal run checkpoint has no thermal state")
				}
				ckBytes, err = json.Marshal(ck)
				return err
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ckBytes == nil {
		t.Fatalf("no checkpoint emitted at step %d of %d", at, steps)
	}

	var ck Checkpoint
	if err := json.Unmarshal(ckBytes, &ck); err != nil {
		t.Fatal(err)
	}
	r2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r2.RunWith(thermalMPC(t), RunOptions{Resume: &ck})
	if err != nil {
		t.Fatalf("resume from step %d/%d: %v", at, steps, err)
	}
	refJSON, _ := json.Marshal(ref)
	resJSON, _ := json.Marshal(res)
	if string(refJSON) != string(resJSON) {
		t.Errorf("thermal resume from step %d/%d diverges from uninterrupted run", at, steps)
	}

	// A thermal checkpoint cannot resume a non-thermal run and vice versa.
	plain := cfg
	plain.Thermal = nil
	r3, err := New(plain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r3.RunWith(thermalMPC(t), RunOptions{Resume: &ck}); err == nil {
		t.Error("thermal checkpoint resumed a run without a thermal network")
	}
}

// thermalTrajectoryHash pins the co-scheduling MPC's full closed-loop
// cold trajectory on ECE15 at −20 °C bitwise: per control step the four
// HVAC inputs, the two battery-branch commands, the cabin temperature,
// and the pack temperature. Computed on linux/amd64 (no FMA fusion; see
// mpcTrajectoryHash). Regenerate with -run TestThermalTrajectoryBitwise
// -v after an intended solver or model change.
const thermalTrajectoryHash = 0x15831f80da5710d4

// TestThermalTrajectoryBitwiseGolden pins the cold co-scheduling
// trajectory bitwise, the thermal counterpart of the cabin-only pin.
func TestThermalTrajectoryBitwiseGolden(t *testing.T) {
	cfg := coldThermalConfig(-20)
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(thermalMPC(t))
	if err != nil {
		t.Fatal(err)
	}
	tr := &res.Trace
	if len(tr.Inputs) == 0 || len(tr.Inputs) != len(tr.PackC) {
		t.Fatalf("trace shape: %d inputs, %d pack temps", len(tr.Inputs), len(tr.PackC))
	}
	const offset64 = 14695981039346656037
	h := uint64(offset64)
	for i, in := range tr.Inputs {
		h = fnv1a64(h, []float64{
			in.SupplyTempC, in.CoilTempC, in.Recirc, in.AirFlowKgS,
			in.BattHeatW, in.BattChillW, tr.CabinC[i], tr.PackC[i],
		})
	}
	if h != thermalTrajectoryHash {
		t.Fatalf("thermal MPC/ECE15@-20 trajectory hash = %#016x, golden %#016x (%d steps)",
			h, uint64(thermalTrajectoryHash), len(tr.Inputs))
	}
}
