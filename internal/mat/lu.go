package mat

import "math"

// LU holds an LU factorization with partial pivoting: P·A = L·U,
// where L is unit lower triangular and U is upper triangular, both packed
// into lu. It is produced by Factorize.
type LU struct {
	lu   *Dense
	piv  []int // row permutation: row i of the factorization came from row piv[i] of A
	sign int   // +1 or −1, the determinant of the permutation
}

// Reserve pre-sizes the factor storage for n×n factorizations so the
// first FactorizeInto call with that size performs no allocation.
func (f *LU) Reserve(n int) {
	if f.lu == nil || f.lu.rows != n {
		f.lu = NewDense(n, n)
	}
	f.piv = growInts(f.piv, n)
}

// Factorize computes the LU factorization of the square matrix a with
// partial (row) pivoting. It returns ErrSingular if a pivot is exactly
// zero; near-singular systems succeed here but may produce large residuals.
func Factorize(a *Dense) (*LU, error) {
	f := &LU{}
	if err := FactorizeInto(f, a); err != nil {
		return nil, err
	}
	return f, nil
}

// FactorizeInto computes the LU factorization of a into f, reusing f's
// storage when the dimensions match (allocation-free after the first call
// with a given size). On error the contents of f are unspecified.
func FactorizeInto(f *LU, a *Dense) error {
	n, c := a.Dims()
	if n != c {
		panic(ErrShape)
	}
	if f.lu == nil || f.lu.rows != n {
		f.lu = NewDense(n, n)
	}
	f.lu.CopyFrom(a)
	f.piv = growInts(f.piv, n)
	lu, piv := f.lu, f.piv
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	d := lu.data
	for k := 0; k < n; k++ {
		// Find the pivot row.
		p := k
		mx := math.Abs(d[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(d[i*n+k]); a > mx {
				mx, p = a, i
			}
		}
		if mx == 0 {
			return ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				d[p*n+j], d[k*n+j] = d[k*n+j], d[p*n+j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivVal := d[k*n+k]
		// Row-slice the elimination so the compiler can drop bounds
		// checks in the hot inner loop.
		rowK := d[k*n+k+1 : k*n+n]
		for i := k + 1; i < n; i++ {
			m := d[i*n+k] / pivVal
			d[i*n+k] = m
			if m == 0 {
				continue
			}
			rowI := d[i*n+k+1 : i*n+n]
			for j, rkj := range rowK {
				rowI[j] -= m * rkj
			}
		}
	}
	f.sign = sign
	return nil
}

// Solve solves A·x = b using the factorization. b is not modified.
func (f *LU) Solve(b []float64) []float64 {
	n, _ := f.lu.Dims()
	return f.SolveInto(b, make([]float64, n))
}

// SolveInto solves A·x = b into x using the factorization and returns x.
// b is not modified; x must not alias b.
func (f *LU) SolveInto(b, x []float64) []float64 {
	n, _ := f.lu.Dims()
	if len(b) != n || len(x) != n {
		panic(ErrShape)
	}
	d := f.lu.data
	// Apply permutation and forward-substitute through L.
	for i := 0; i < n; i++ {
		s := b[f.piv[i]]
		for j := 0; j < i; j++ {
			s -= d[i*n+j] * x[j]
		}
		x[i] = s
	}
	// Back-substitute through U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= d[i*n+j] * x[j]
		}
		x[i] = s / d[i*n+i]
	}
	return x
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	n, _ := f.lu.Dims()
	det := float64(f.sign)
	for i := 0; i < n; i++ {
		det *= f.lu.data[i*n+i]
	}
	return det
}

// Solve solves the square linear system a·x = b with LU factorization.
func Solve(a *Dense, b []float64) ([]float64, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Inverse returns a⁻¹, or ErrSingular.
func Inverse(a *Dense) (*Dense, error) {
	n, c := a.Dims()
	if n != c {
		panic(ErrShape)
	}
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	inv := NewDense(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := f.Solve(e)
		for i := 0; i < n; i++ {
			inv.data[i*n+j] = col[i]
		}
	}
	return inv, nil
}
