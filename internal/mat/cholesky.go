package mat

import "math"

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L·Lᵀ.
type Cholesky struct {
	l *Dense
}

// CholeskyFactorize computes the Cholesky factorization of the symmetric
// positive definite matrix a. Only the lower triangle of a is read.
// It returns ErrNotSPD if a pivot is non-positive.
func CholeskyFactorize(a *Dense) (*Cholesky, error) {
	n, c := a.Dims()
	if n != c {
		panic(ErrShape)
	}
	l := NewDense(n, n)
	ad, ld := a.data, l.data
	for j := 0; j < n; j++ {
		var diag float64
		for k := 0; k < j; k++ {
			diag += ld[j*n+k] * ld[j*n+k]
		}
		diag = ad[j*n+j] - diag
		if diag <= 0 || math.IsNaN(diag) {
			return nil, ErrNotSPD
		}
		ljj := math.Sqrt(diag)
		ld[j*n+j] = ljj
		for i := j + 1; i < n; i++ {
			var s float64
			for k := 0; k < j; k++ {
				s += ld[i*n+k] * ld[j*n+k]
			}
			ld[i*n+j] = (ad[i*n+j] - s) / ljj
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve solves A·x = b using the factorization. b is not modified.
func (c *Cholesky) Solve(b []float64) []float64 {
	n, _ := c.l.Dims()
	if len(b) != n {
		panic(ErrShape)
	}
	ld := c.l.data
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= ld[i*n+j] * y[j]
		}
		y[i] = s / ld[i*n+i]
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= ld[j*n+i] * x[j]
		}
		x[i] = s / ld[i*n+i]
	}
	return x
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Dense { return c.l.Clone() }

// SolveSPD solves A·x = b for symmetric positive definite A. If the plain
// Cholesky factorization fails, a diagonal ridge is added (scaled by the
// largest diagonal entry) and the factorization retried a few times; this
// regularized fallback is what the SQP solver relies on when a Hessian
// approximation drifts to the PSD boundary. It returns ErrNotSPD only if
// even the ridged matrix cannot be factorized.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	if ch, err := CholeskyFactorize(a); err == nil {
		return ch.Solve(b), nil
	}
	n, _ := a.Dims()
	var dmax float64
	for i := 0; i < n; i++ {
		if v := math.Abs(a.At(i, i)); v > dmax {
			dmax = v
		}
	}
	if dmax == 0 {
		dmax = 1
	}
	ridge := 1e-10 * dmax
	for k := 0; k < 12; k++ {
		reg := a.Clone()
		for i := 0; i < n; i++ {
			reg.Add(i, i, ridge)
		}
		if ch, err := CholeskyFactorize(reg); err == nil {
			return ch.Solve(b), nil
		}
		ridge *= 10
	}
	return nil, ErrNotSPD
}
