package mat

import "math"

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L·Lᵀ.
type Cholesky struct {
	l *Dense
}

// Reserve pre-sizes the factor storage for n×n factorizations so the
// first CholeskyFactorizeInto call with that size performs no allocation.
func (c *Cholesky) Reserve(n int) {
	if c.l == nil || c.l.rows != n {
		c.l = NewDense(n, n)
	}
}

// CholeskyFactorize computes the Cholesky factorization of the symmetric
// positive definite matrix a. Only the lower triangle of a is read.
// It returns ErrNotSPD if a pivot is non-positive.
func CholeskyFactorize(a *Dense) (*Cholesky, error) {
	ch := &Cholesky{}
	if err := CholeskyFactorizeInto(ch, a); err != nil {
		return nil, err
	}
	return ch, nil
}

// CholeskyFactorizeInto computes the Cholesky factorization of a into ch,
// reusing ch's storage when the dimensions match (allocation-free after
// the first call with a given size). On error the contents of ch are
// unspecified.
func CholeskyFactorizeInto(ch *Cholesky, a *Dense) error {
	n, c := a.Dims()
	if n != c {
		panic(ErrShape)
	}
	if ch.l == nil || ch.l.rows != n {
		ch.l = NewDense(n, n)
	} else {
		ch.l.Zero()
	}
	l := ch.l
	ad, ld := a.data, l.data
	for j := 0; j < n; j++ {
		var diag float64
		for k := 0; k < j; k++ {
			diag += ld[j*n+k] * ld[j*n+k]
		}
		diag = ad[j*n+j] - diag
		if diag <= 0 || math.IsNaN(diag) {
			return ErrNotSPD
		}
		ljj := math.Sqrt(diag)
		ld[j*n+j] = ljj
		for i := j + 1; i < n; i++ {
			var s float64
			for k := 0; k < j; k++ {
				s += ld[i*n+k] * ld[j*n+k]
			}
			ld[i*n+j] = (ad[i*n+j] - s) / ljj
		}
	}
	return nil
}

// Solve solves A·x = b using the factorization. b is not modified.
func (c *Cholesky) Solve(b []float64) []float64 {
	n, _ := c.l.Dims()
	return c.SolveInto(b, make([]float64, n))
}

// SolveInto solves A·x = b into x using the factorization and returns x.
// The forward substitution runs in place in x, so no intermediate buffer
// is needed. b is not modified; x must not alias b.
func (c *Cholesky) SolveInto(b, x []float64) []float64 {
	n, _ := c.l.Dims()
	if len(b) != n || len(x) != n {
		panic(ErrShape)
	}
	ld := c.l.data
	// Forward substitution L·y = b, y stored in x.
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= ld[i*n+j] * x[j]
		}
		x[i] = s / ld[i*n+i]
	}
	// Backward substitution Lᵀ·x = y, in place: position i only reads
	// positions j > i, which already hold final values.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= ld[j*n+i] * x[j]
		}
		x[i] = s / ld[i*n+i]
	}
	return x
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Dense { return c.l.Clone() }

// SolveSPD solves A·x = b for symmetric positive definite A. If the plain
// Cholesky factorization fails, a diagonal ridge is added (scaled by the
// largest diagonal entry) and the factorization retried a few times; this
// regularized fallback is what the SQP solver relies on when a Hessian
// approximation drifts to the PSD boundary. It returns ErrNotSPD only if
// even the ridged matrix cannot be factorized.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	if ch, err := CholeskyFactorize(a); err == nil {
		return ch.Solve(b), nil
	}
	n, _ := a.Dims()
	var dmax float64
	for i := 0; i < n; i++ {
		if v := math.Abs(a.At(i, i)); v > dmax {
			dmax = v
		}
	}
	if dmax == 0 {
		dmax = 1
	}
	ridge := 1e-10 * dmax
	for k := 0; k < 12; k++ {
		reg := a.Clone()
		for i := 0; i < n; i++ {
			reg.Add(i, i, ridge)
		}
		if ch, err := CholeskyFactorize(reg); err == nil {
			return ch.Solve(b), nil
		}
		ridge *= 10
	}
	return nil, ErrNotSPD
}
