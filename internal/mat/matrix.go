// Package mat implements the small dense linear-algebra kernel used by the
// QP and SQP solvers: a row-major dense matrix type, vector helpers, LU and
// Cholesky factorizations, and a Householder-QR least-squares solver.
//
// The package is deliberately scoped to the needs of the model-predictive
// controller: problems have at most a few hundred variables, so simple
// O(n³) dense algorithms with partial pivoting are both fast enough and
// easy to audit. All storage is float64.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned by factorizations and solvers when the matrix is
// singular (or numerically singular) to working precision.
var ErrSingular = errors.New("mat: matrix is singular")

// ErrNotSPD is returned by Cholesky when the matrix is not symmetric
// positive definite.
var ErrNotSPD = errors.New("mat: matrix is not symmetric positive definite")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mat: dimension mismatch")

// Dense is a dense, row-major matrix of float64 values.
type Dense struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// NewDense returns a zeroed rows×cols matrix. It panics if either
// dimension is not positive.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: NewDense(%d, %d): dimensions must be positive", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseData returns a rows×cols matrix backed by data (not copied).
// It panics if len(data) != rows*cols.
func NewDenseData(rows, cols int, data []float64) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: NewDenseData(%d, %d): dimensions must be positive", rows, cols))
	}
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: NewDenseData(%d, %d): data length %d != %d", rows, cols, len(data), rows*cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// FromRows builds a matrix from a slice of equal-length rows (copied).
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: FromRows: empty input")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("mat: FromRows: row %d has length %d, want %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []float64) *Dense {
	m := NewDense(len(d), len(d))
	for i, v := range d {
		m.data[i*len(d)+i] = v
	}
	return m
}

// Dims returns the number of rows and columns.
func (m *Dense) Dims() (rows, cols int) { return m.rows, m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d, %d) out of range for %d×%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range", i))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// SetRow copies r into row i.
func (m *Dense) SetRow(i int, r []float64) {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range", i))
	}
	if len(r) != m.cols {
		panic(ErrShape)
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], r)
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: column %d out of range", j))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	return m.TInto(NewDense(m.cols, m.rows))
}

// Scale multiplies every element of m by s in place and returns m.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// AddMat returns m + b as a new matrix.
func (m *Dense) AddMat(b *Dense) *Dense {
	if m.rows != b.rows || m.cols != b.cols {
		panic(ErrShape)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out
}

// SubMat returns m − b as a new matrix.
func (m *Dense) SubMat(b *Dense) *Dense {
	if m.rows != b.rows || m.cols != b.cols {
		panic(ErrShape)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out
}

// Mul returns the matrix product m·b as a new matrix.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(ErrShape)
	}
	return m.MulInto(b, NewDense(m.rows, b.cols))
}

// MulVec returns the matrix-vector product m·x as a new vector.
func (m *Dense) MulVec(x []float64) []float64 {
	return m.MulVecInto(x, make([]float64, m.rows))
}

// MulVecT returns mᵀ·x (x has length rows) without forming the transpose.
func (m *Dense) MulVecT(x []float64) []float64 {
	return m.MulVecTInto(x, make([]float64, m.cols))
}

// IsSymmetric reports whether m is square and symmetric to within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.data[i*m.cols+j]-m.data[j*m.cols+i]) > tol {
				return false
			}
		}
	}
	return true
}

// AllFinite reports whether every element is finite (no NaN or ±Inf).
func (m *Dense) AllFinite() bool {
	for _, v := range m.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// MaxAbs returns the largest absolute element value (the max norm).
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// EqualApprox reports whether m and b have the same shape and agree
// elementwise to within tol.
func (m *Dense) EqualApprox(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		sb.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%10.4g", m.data[i*m.cols+j])
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}
