package mat

import (
	"math"
	"math/rand"
	"testing"
)

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

// randomSPD returns a random symmetric positive definite matrix GᵀG + I.
func randomSPD(rng *rand.Rand, n int) *Dense {
	g := randomDense(rng, n, n)
	a := g.T().Mul(g)
	for i := 0; i < n; i++ {
		a.Add(i, i, 1)
	}
	return a
}

func TestNewDensePanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDense(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			NewDense(dims[0], dims[1])
		}()
	}
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	r, c := m.Dims()
	if r != 2 || c != 3 {
		t.Fatalf("Dims = %d,%d want 2,3", r, c)
	}
	want := [][]float64{{1, 2, 3}, {4, 5, 6}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != want[i][j] {
				t.Errorf("At(%d,%d) = %v, want %v", i, j, m.At(i, j), want[i][j])
			}
		}
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomDense(rng, 4, 4)
	i4 := Identity(4)
	if !a.Mul(i4).EqualApprox(a, 1e-14) || !i4.Mul(a).EqualApprox(a, 1e-14) {
		t.Error("identity is not multiplicative identity")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if got := a.Mul(b); !got.EqualApprox(want, 0) {
		t.Errorf("Mul:\n%v\nwant\n%v", got, want)
	}
}

func TestMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape-mismatched Mul did not panic")
		}
	}()
	NewDense(2, 3).Mul(NewDense(2, 3))
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomDense(rng, 3, 5)
	if !a.T().T().EqualApprox(a, 0) {
		t.Error("(Aᵀ)ᵀ != A")
	}
	if a.T().At(4, 2) != a.At(2, 4) {
		t.Error("transpose element mismatch")
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomDense(rng, 4, 6)
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	xm := NewDense(6, 1)
	for i, v := range x {
		xm.Set(i, 0, v)
	}
	got := a.MulVec(x)
	want := a.Mul(xm)
	for i := range got {
		if math.Abs(got[i]-want.At(i, 0)) > 1e-13 {
			t.Errorf("MulVec[%d] = %v, want %v", i, got[i], want.At(i, 0))
		}
	}
}

func TestMulVecT(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomDense(rng, 4, 6)
	y := make([]float64, 4)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	got := a.MulVecT(y)
	want := a.T().MulVec(y)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-13 {
			t.Errorf("MulVecT[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	if got := a.AddMat(b); !got.EqualApprox(FromRows([][]float64{{11, 22}, {33, 44}}), 0) {
		t.Errorf("AddMat wrong:\n%v", got)
	}
	if got := b.SubMat(a); !got.EqualApprox(FromRows([][]float64{{9, 18}, {27, 36}}), 0) {
		t.Errorf("SubMat wrong:\n%v", got)
	}
	if got := a.Clone().Scale(2); !got.EqualApprox(FromRows([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Errorf("Scale wrong:\n%v", got)
	}
}

func TestRowColSetRow(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	row := m.Row(1)
	if row[0] != 4 || row[2] != 6 {
		t.Errorf("Row(1) = %v", row)
	}
	// Row returns a copy.
	row[0] = 99
	if m.At(1, 0) != 4 {
		t.Error("Row did not copy")
	}
	col := m.Col(2)
	if col[0] != 3 || col[1] != 6 {
		t.Errorf("Col(2) = %v", col)
	}
	m.SetRow(0, []float64{7, 8, 9})
	if m.At(0, 1) != 8 {
		t.Error("SetRow did not write")
	}
}

func TestDiagIsSymmetric(t *testing.T) {
	d := Diag([]float64{1, 2, 3})
	if !d.IsSymmetric(0) {
		t.Error("diagonal matrix not symmetric")
	}
	if d.At(1, 1) != 2 || d.At(0, 1) != 0 {
		t.Error("Diag values wrong")
	}
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if a.IsSymmetric(0.5) {
		t.Error("asymmetric matrix reported symmetric")
	}
	if !a.IsSymmetric(2) {
		t.Error("tolerance not honored")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := a.Clone()
	b.Set(0, 0, 42)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage")
	}
}

func TestMaxAbs(t *testing.T) {
	a := FromRows([][]float64{{1, -7}, {3, 4}})
	if got := a.MaxAbs(); got != 7 {
		t.Errorf("MaxAbs = %v, want 7", got)
	}
}
