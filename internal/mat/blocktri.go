package mat

import "math"

// LDL holds an unpivoted LDLᵀ factorization A = L·D·Lᵀ of a symmetric
// matrix, with L unit lower triangular and D diagonal. Unlike Cholesky it
// admits negative pivots, which makes it the right factorization for the
// symmetric quasi-definite saddle-point blocks of an interior-point KKT
// system (Vanderbei: every symmetric permutation of a quasi-definite
// matrix factors as LDLᵀ with a nonsingular diagonal, no pivoting
// needed). Only the lower triangle of the input is read.
type LDL struct {
	l    *Dense    // unit lower triangular factor (diagonal implicitly 1)
	d    []float64 // pivots
	dinv []float64 // reciprocal pivots (solve-path fast path)
	t    []float64 // scaled-row scratch for the factorization
}

// Reserve pre-sizes the factor storage for n×n factorizations so the
// first LDLFactorizeInto call with that size performs no allocation.
func (f *LDL) Reserve(n int) {
	if f.l == nil || f.l.rows != n {
		f.l = NewDense(n, n)
	}
	f.d = growVec(f.d, n)
	f.dinv = growVec(f.dinv, n)
	f.t = growVec(f.t, n)
}

// LDLFactorizeInto computes the LDLᵀ factorization of a into f, reusing
// f's storage when the dimensions match (allocation-free after the first
// call with a given size). Only the lower triangle of a is read. signs,
// when non-nil, declares the expected sign of each pivot (+1 or −1, the
// quasi-definite inertia pattern); a pivot that is zero, non-finite, or
// of the wrong sign aborts with ErrNotSPD, signalling the caller to fall
// back to a pivoted factorization. A nil signs only rejects zero and
// non-finite pivots. On error the contents of f are unspecified.
func LDLFactorizeInto(f *LDL, a *Dense, signs []int8) error {
	n, c := a.Dims()
	if n != c {
		panic(ErrShape)
	}
	if signs != nil && len(signs) != n {
		panic(ErrShape)
	}
	f.Reserve(n)
	ad, ld, d, dinv, t := a.data, f.l.data, f.d[:n], f.dinv[:n], f.t[:n]
	for j := 0; j < n; j++ {
		// d_j = a_jj − Σ_k l_jk² d_k, with the scaled row t_k = l_jk·d_k
		// hoisted so the rank update below is a plain dot product.
		rowJ := ld[j*n : j*n+j]
		tj := t[:j]
		diag := ad[j*n+j]
		for k, ljk := range rowJ {
			tk := ljk * d[k]
			tj[k] = tk
			diag -= ljk * tk
		}
		if diag == 0 || math.IsNaN(diag) || math.IsInf(diag, 0) {
			return ErrNotSPD
		}
		if signs != nil && ((signs[j] > 0) != (diag > 0)) {
			return ErrNotSPD
		}
		d[j] = diag
		inv := 1 / diag
		dinv[j] = inv
		// l_ij = (a_ij − Σ_k l_ik t_k) / d_j
		for i := j + 1; i < n; i++ {
			rowI := ld[i*n : i*n+j]
			s := ad[i*n+j]
			for k, tk := range tj {
				s -= rowI[k] * tk
			}
			ld[i*n+j] = s * inv
		}
	}
	return nil
}

// SolveInto solves A·x = b into x using the factorization and returns x.
// b and x may alias (the solve runs in place when they do).
func (f *LDL) SolveInto(b, x []float64) []float64 {
	n, _ := f.l.Dims()
	if len(b) != n || len(x) != n {
		panic(ErrShape)
	}
	ld, dinv := f.l.data, f.dinv
	// Forward substitution L·y = b (unit diagonal), y stored in x; safe
	// in place because position i only reads positions j < i.
	for i := 0; i < n; i++ {
		row := ld[i*n : i*n+i]
		s := b[i]
		for j, l := range row {
			s -= l * x[j]
		}
		x[i] = s
	}
	// Diagonal solve D·z = y via the reciprocal pivots.
	for i := 0; i < n; i++ {
		x[i] *= dinv[i]
	}
	// Backward substitution Lᵀ·x = z in saxpy form: once x[j] is final,
	// subtract its column contribution from x[0..j−1]. Row j of L is the
	// column j of Lᵀ, so the sweep reads contiguous memory.
	for j := n - 1; j > 0; j-- {
		v := x[j]
		if v == 0 {
			continue
		}
		row := ld[j*n : j*n+j]
		for i, l := range row {
			x[i] -= l * v
		}
	}
	return x
}

// BlockTriDiag factors a symmetric block-tridiagonal matrix
//
//	M = ⎡ B_0  C_1ᵀ            ⎤
//	    ⎢ C_1  B_1  C_2ᵀ       ⎥
//	    ⎢      C_2  B_2   ⋱    ⎥
//	    ⎣            ⋱     ⋱   ⎦
//
// by the block LDLᵀ recursion S_0 = B_0, W_k = C_k·S_{k−1}⁻¹,
// S_k = B_k − W_k·C_kᵀ, with each Schur complement S_k factored by
// unpivoted scalar LDLᵀ. For a stage-structured interior-point KKT
// system this is the Riccati recursion: O(N·m³) instead of the dense
// O((N·m)³). All factor and scratch storage lives in the struct and is
// reused across Factorize calls — allocation-free once sized (or after
// Reserve).
type BlockTriDiag struct {
	dims []int
	off  []int    // prefix offsets into the full vector, len(dims)+1
	fact []LDL    // factor of S_k
	s    []*Dense // Schur complement scratch (lower triangle)
	w    []*Dense // W_k = C_k·S_{k−1}⁻¹, dims[k]×dims[k−1]; w[0] unused
}

// Reserve pre-sizes every internal buffer for block dimensions dims so
// the first Factorize with matching dimensions performs no allocation.
// dims must be positive.
func (f *BlockTriDiag) Reserve(dims []int) {
	if len(dims) == len(f.dims) {
		same := true
		for i, d := range dims {
			if f.dims[i] != d {
				same = false
				break
			}
		}
		if same && f.s != nil {
			return
		}
	}
	n := len(dims)
	f.dims = append(f.dims[:0], dims...)
	f.off = growInts(f.off, n+1)
	f.off[0] = 0
	for k, d := range dims {
		if d <= 0 {
			panic(ErrShape)
		}
		f.off[k+1] = f.off[k] + d
	}
	f.fact = make([]LDL, n)
	f.s = make([]*Dense, n)
	f.w = make([]*Dense, n)
	for k := 0; k < n; k++ {
		f.fact[k].Reserve(dims[k])
		f.s[k] = NewDense(dims[k], dims[k])
		if k > 0 {
			f.w[k] = NewDense(dims[k], dims[k-1])
		}
	}
}

// Factorize computes the factorization from the diagonal blocks diag[k]
// (dims[k]×dims[k] symmetric; only the lower triangle is read) and the
// sub-diagonal blocks sub[k] (dims[k]×dims[k−1] for k ≥ 1; sub[0] is
// ignored and may be nil). signs, when non-nil, is the full-length
// expected pivot sign pattern (see LDLFactorizeInto), sliced per block.
// The input blocks are not modified. Returns ErrNotSPD when any Schur
// complement fails to factor with the expected inertia, in which case the
// caller should fall back to a dense pivoted factorization.
func (f *BlockTriDiag) Factorize(diag, sub []*Dense, signs []int8) error {
	n := len(diag)
	if n == 0 || len(sub) != n {
		panic(ErrShape)
	}
	sized := len(f.dims) == n && f.s != nil
	for k, b := range diag {
		r, c := b.Dims()
		if r != c {
			panic(ErrShape)
		}
		if sized && f.dims[k] != r {
			sized = false
		}
	}
	if !sized {
		dims := make([]int, n)
		for k, b := range diag {
			dims[k], _ = b.Dims()
		}
		f.Reserve(dims)
	}
	dims := f.dims
	if signs != nil && len(signs) != f.off[n] {
		panic(ErrShape)
	}
	for k := 0; k < n; k++ {
		m := dims[k]
		sk := f.s[k]
		sk.CopyFrom(diag[k])
		if k > 0 {
			// W_k = C_k·S_{k−1}⁻¹ row by row: row r of W_k is
			// S_{k−1}⁻¹·(row r of C_k), S being symmetric.
			ck, wk := sub[k], f.w[k]
			mp := dims[k-1]
			if r, c := ck.Dims(); r != m || c != mp {
				panic(ErrShape)
			}
			for r := 0; r < m; r++ {
				f.fact[k-1].SolveInto(ck.RawRow(r), wk.RawRow(r))
			}
			// S_k = B_k − W_k·C_kᵀ, lower triangle only.
			for i := 0; i < m; i++ {
				wi, si := wk.RawRow(i), sk.RawRow(i)
				for j := 0; j <= i; j++ {
					cj := ck.RawRow(j)
					var acc float64
					for l := 0; l < mp; l++ {
						acc += wi[l] * cj[l]
					}
					si[j] -= acc
				}
			}
		}
		var sg []int8
		if signs != nil {
			sg = signs[f.off[k]:f.off[k+1]]
		}
		if err := LDLFactorizeInto(&f.fact[k], sk, sg); err != nil {
			return err
		}
	}
	return nil
}

// SolveInto solves M·x = b into x using the factorization and returns x.
// The last Factorize call's sub blocks are not needed again: W_k is
// retained internally. b and x may alias.
func (f *BlockTriDiag) SolveInto(b, x []float64) []float64 {
	n := len(f.dims)
	dim := f.off[n]
	if len(b) != dim || len(x) != dim {
		panic(ErrShape)
	}
	if &x[0] != &b[0] {
		copy(x, b)
	}
	// Forward: z_k = b_k − W_k·z_{k−1}.
	for k := 1; k < n; k++ {
		wk := f.w[k]
		xk := x[f.off[k]:f.off[k+1]]
		xp := x[f.off[k-1]:f.off[k]]
		for i := range xk {
			wi := wk.RawRow(i)
			var acc float64
			for l, v := range xp {
				acc += wi[l] * v
			}
			xk[i] -= acc
		}
	}
	// Diagonal: u_k = S_k⁻¹·z_k.
	for k := 0; k < n; k++ {
		xk := x[f.off[k]:f.off[k+1]]
		f.fact[k].SolveInto(xk, xk)
	}
	// Backward: x_k = u_k − W_{k+1}ᵀ·x_{k+1}.
	for k := n - 2; k >= 0; k-- {
		wn := f.w[k+1]
		xk := x[f.off[k]:f.off[k+1]]
		xn := x[f.off[k+1]:f.off[k+2]]
		for j, v := range xn {
			if v == 0 {
				continue
			}
			wj := wn.RawRow(j)
			for i := range xk {
				xk[i] -= wj[i] * v
			}
		}
	}
	return x
}
