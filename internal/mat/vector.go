package mat

import "math"

// Dot returns the inner product of x and y. It panics on length mismatch.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Two-pass scaling avoids overflow for large components.
	var mx float64
	for _, v := range x {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	if mx == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		r := v / mx
		s += r * r
	}
	return mx * math.Sqrt(s)
}

// NormInf returns the maximum absolute component of x.
func NormInf(x []float64) float64 {
	var mx float64
	for _, v := range x {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// CloneVec returns a copy of x.
func CloneVec(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// AddVec returns x + y as a new vector.
func AddVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] + y[i]
	}
	return out
}

// SubVec returns x − y as a new vector.
func SubVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}

// ScaleVec returns s·x as a new vector.
func ScaleVec(s float64, x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = s * v
	}
	return out
}

// Axpy computes y ← a·x + y in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Zeros returns a zero vector of length n.
func Zeros(n int) []float64 { return make([]float64, n) }

// Filled returns a vector of length n with every component set to v.
func Filled(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// AllFinite reports whether every component of x is finite.
func AllFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
