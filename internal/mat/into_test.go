package mat

import (
	"math"
	"math/rand"
	"testing"
)

// bitsEqual reports whether two vectors are identical to the last bit —
// the contract the -Into variants promise relative to their allocating
// counterparts.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestIntoVariantsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		r := 1 + rng.Intn(15)
		c := 1 + rng.Intn(15)
		k := 1 + rng.Intn(15)
		a := randomDense(rng, r, c)
		b := randomDense(rng, c, k)
		x := make([]float64, c)
		xr := make([]float64, r)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range xr {
			xr[i] = rng.NormFloat64()
		}

		got := NewDense(r, k)
		a.MulInto(b, got)
		if want := a.Mul(b); !bitsEqual(got.data, want.data) {
			t.Fatalf("trial %d: MulInto differs from Mul", trial)
		}

		gv := make([]float64, r)
		a.MulVecInto(x, gv)
		if !bitsEqual(gv, a.MulVec(x)) {
			t.Fatalf("trial %d: MulVecInto differs from MulVec", trial)
		}

		gt := make([]float64, c)
		a.MulVecTInto(xr, gt)
		if !bitsEqual(gt, a.MulVecT(xr)) {
			t.Fatalf("trial %d: MulVecTInto differs from MulVecT", trial)
		}

		tr := NewDense(c, r)
		a.TInto(tr)
		if !bitsEqual(tr.data, a.T().data) {
			t.Fatalf("trial %d: TInto differs from T", trial)
		}

		dst := make([]float64, c)
		if !bitsEqual(AddVecInto(dst, x, x), AddVec(x, x)) {
			t.Fatalf("trial %d: AddVecInto differs from AddVec", trial)
		}
		if !bitsEqual(SubVecInto(dst, x, x), SubVec(x, x)) {
			t.Fatalf("trial %d: SubVecInto differs from SubVec", trial)
		}
		s := rng.NormFloat64()
		if !bitsEqual(ScaleVecInto(dst, s, x), ScaleVec(s, x)) {
			t.Fatalf("trial %d: ScaleVecInto differs from ScaleVec", trial)
		}
	}
}

func TestLUSolveIntoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var lu LU
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(20)
		a := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want, err := Solve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := FactorizeInto(&lu, a); err != nil {
			t.Fatal(err)
		}
		got := make([]float64, n)
		lu.SolveInto(b, got)
		if !bitsEqual(got, want) {
			t.Fatalf("trial %d: LU SolveInto differs from Solve", trial)
		}
	}
}

func TestCholeskySolveIntoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var ch Cholesky
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(20)
		a := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		ref, err := CholeskyFactorize(a)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Solve(b)
		if err := CholeskyFactorizeInto(&ch, a); err != nil {
			t.Fatal(err)
		}
		got := make([]float64, n)
		ch.SolveInto(b, got)
		if !bitsEqual(got, want) {
			t.Fatalf("trial %d: Cholesky SolveInto differs from Solve", trial)
		}
	}
}

// The hot-path contract: once the factor objects are sized, the
// factorize/solve cycle performs zero allocations.
func TestLUFactorizeSolveIntoNoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := 24
	a := randomSPD(rng, n)
	b := make([]float64, n)
	x := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	var lu LU
	if err := FactorizeInto(&lu, a); err != nil { // size the buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := FactorizeInto(&lu, a); err != nil {
			t.Fatal(err)
		}
		lu.SolveInto(b, x)
	})
	if allocs != 0 {
		t.Fatalf("warm LU FactorizeInto+SolveInto allocates %v objects/op, want 0", allocs)
	}
}

func TestCholeskyFactorizeSolveIntoNoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	n := 24
	a := randomSPD(rng, n)
	b := make([]float64, n)
	x := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	var ch Cholesky
	if err := CholeskyFactorizeInto(&ch, a); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := CholeskyFactorizeInto(&ch, a); err != nil {
			t.Fatal(err)
		}
		ch.SolveInto(b, x)
	})
	if allocs != 0 {
		t.Fatalf("warm Cholesky FactorizeInto+SolveInto allocates %v objects/op, want 0", allocs)
	}
}

func TestRawRowAliasesStorage(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	row := a.RawRow(1)
	row[0] = 9
	if a.At(1, 0) != 9 {
		t.Fatal("RawRow does not alias the matrix storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RawRow out of range did not panic")
		}
	}()
	a.RawRow(2)
}
