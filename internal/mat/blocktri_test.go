package mat

import (
	"math"
	"math/rand"
	"testing"
)

// randSPD fills dst (lower triangle significant) with GᵀG + ridge·I for a
// random G, giving a symmetric positive definite block.
func randSPD(rng *rand.Rand, n int, ridge float64) *Dense {
	g := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			g.Set(i, j, rng.NormFloat64())
		}
	}
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += g.At(k, i) * g.At(k, j)
			}
			a.Set(i, j, s)
		}
		a.Add(i, i, ridge)
	}
	return a
}

// quasiDefBlock builds a symmetric quasi-definite block
// [K Aᵀ; A −δI] with K SPD (nv×nv) and ne equality-style rows.
func quasiDefBlock(rng *rand.Rand, nv, ne int, delta float64) (*Dense, []int8) {
	m := nv + ne
	b := NewDense(m, m)
	k := randSPD(rng, nv, 0.1)
	for i := 0; i < nv; i++ {
		for j := 0; j <= i; j++ {
			b.Set(i, j, k.At(i, j))
			b.Set(j, i, k.At(i, j))
		}
	}
	for r := 0; r < ne; r++ {
		for j := 0; j < nv; j++ {
			v := rng.NormFloat64()
			b.Set(nv+r, j, v)
			b.Set(j, nv+r, v)
		}
		b.Set(nv+r, nv+r, -delta)
	}
	signs := make([]int8, m)
	for i := 0; i < nv; i++ {
		signs[i] = 1
	}
	for i := nv; i < m; i++ {
		signs[i] = -1
	}
	return b, signs
}

func TestLDLMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nv := 1 + rng.Intn(5)
		ne := rng.Intn(4)
		a, signs := quasiDefBlock(rng, nv, ne, 1e-9)
		n := nv + ne
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		var f LDL
		if err := LDLFactorizeInto(&f, a, signs); err != nil {
			t.Fatalf("trial %d: LDL failed on quasi-definite block: %v", trial, err)
		}
		x := f.SolveInto(b, make([]float64, n))
		// The δ = 1e-9 block has condition ~1e9, so two different exact
		// factorizations legitimately differ by κ·ε in the solution;
		// judge by the residual, which must be small for both.
		ax := a.MulVec(x)
		scale := 1 + NormInf(b) + a.MaxAbs()*NormInf(x)
		for i := range ax {
			if math.Abs(ax[i]-b[i]) > 1e-10*scale {
				t.Fatalf("trial %d: residual[%d] = %g (scale %g)", trial, i, ax[i]-b[i], scale)
			}
		}
		want, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: LU reference failed: %v", trial, err)
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-5*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, x[i], want[i])
			}
		}
	}
}

func TestLDLSolveInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, signs := quasiDefBlock(rng, 4, 2, 1e-9)
	var f LDL
	if err := LDLFactorizeInto(&f, a, signs); err != nil {
		t.Fatal(err)
	}
	b := []float64{1, -2, 3, 0.5, -1, 2}
	sep := f.SolveInto(b, make([]float64, len(b)))
	inPlace := append([]float64{}, b...)
	f.SolveInto(inPlace, inPlace)
	for i := range sep {
		if sep[i] != inPlace[i] {
			t.Fatalf("in-place solve diverges at %d: %g vs %g", i, inPlace[i], sep[i])
		}
	}
}

func TestLDLRejectsWrongInertia(t *testing.T) {
	// An SPD matrix factored with an expected-negative pivot must fail.
	a := NewDense(2, 2)
	a.Set(0, 0, 2)
	a.Set(1, 1, 3)
	if err := LDLFactorizeInto(&LDL{}, a, []int8{1, -1}); err != ErrNotSPD {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
	// Zero pivot must fail regardless of signs.
	z := NewDense(2, 2)
	z.Set(1, 1, 1)
	if err := LDLFactorizeInto(&LDL{}, z, nil); err != ErrNotSPD {
		t.Fatalf("zero pivot: err = %v, want ErrNotSPD", err)
	}
}

// assembleBlockTri expands diagonal and sub-diagonal blocks into the full
// dense symmetric matrix for reference solves.
func assembleBlockTri(diag, sub []*Dense) *Dense {
	var dim int
	off := make([]int, len(diag)+1)
	for k, b := range diag {
		r, _ := b.Dims()
		off[k+1] = off[k] + r
		dim += r
	}
	m := NewDense(dim, dim)
	for k, b := range diag {
		r, _ := b.Dims()
		for i := 0; i < r; i++ {
			for j := 0; j <= i; j++ {
				m.Set(off[k]+i, off[k]+j, b.At(i, j))
				m.Set(off[k]+j, off[k]+i, b.At(i, j))
			}
		}
		if k > 0 {
			c := sub[k]
			cr, cc := c.Dims()
			for i := 0; i < cr; i++ {
				for j := 0; j < cc; j++ {
					m.Set(off[k]+i, off[k-1]+j, c.At(i, j))
					m.Set(off[k-1]+j, off[k]+i, c.At(i, j))
				}
			}
		}
	}
	return m
}

func TestBlockTriDiagMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		nStages := 2 + rng.Intn(6)
		diag := make([]*Dense, nStages)
		sub := make([]*Dense, nStages)
		var signs []int8
		dims := make([]int, nStages)
		for k := 0; k < nStages; k++ {
			nv := 1 + rng.Intn(4)
			ne := rng.Intn(3)
			b, sg := quasiDefBlock(rng, nv, ne, 1e-9)
			diag[k] = b
			signs = append(signs, sg...)
			dims[k] = nv + ne
			if k > 0 {
				c := NewDense(dims[k], dims[k-1])
				for i := 0; i < dims[k]; i++ {
					for j := 0; j < dims[k-1]; j++ {
						c.Set(i, j, 0.3*rng.NormFloat64())
					}
				}
				sub[k] = c
			}
		}
		var f BlockTriDiag
		if err := f.Factorize(diag, sub, signs); err != nil {
			// Random couplings can genuinely break quasi-definiteness of
			// the Schur complements; a clean error is the contract.
			continue
		}
		full := assembleBlockTri(diag, sub)
		dim, _ := full.Dims()
		b := make([]float64, dim)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := f.SolveInto(b, make([]float64, dim))
		want, err := Solve(full, b)
		if err != nil {
			t.Fatalf("trial %d: dense reference failed: %v", trial, err)
		}
		scale := 1 + NormInf(want)
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-6*scale {
				t.Fatalf("trial %d: x[%d] = %g, want %g (dim %d)", trial, i, x[i], want[i], dim)
			}
		}
	}
}

func TestBlockTriDiagReuseNoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nStages := 5
	diag := make([]*Dense, nStages)
	sub := make([]*Dense, nStages)
	var signs []int8
	for k := 0; k < nStages; k++ {
		b, sg := quasiDefBlock(rng, 4, 2, 1e-9)
		diag[k] = b
		signs = append(signs, sg...)
		if k > 0 {
			sub[k] = NewDense(6, 6)
			for i := 0; i < 6; i++ {
				sub[k].Set(i, (i+1)%6, 0.1)
			}
		}
	}
	var f BlockTriDiag
	if err := f.Factorize(diag, sub, signs); err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 30)
	x := make([]float64, 30)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := f.Factorize(diag, sub, signs); err != nil {
			t.Fatal(err)
		}
		f.SolveInto(b, x)
	})
	if allocs != 0 {
		t.Fatalf("warm Factorize+SolveInto allocates %.1f/op, want 0", allocs)
	}
}

func TestBlockTriDiagFallbackSignal(t *testing.T) {
	// A diagonal block with flipped inertia must surface ErrNotSPD so the
	// interior-point caller can fall back to its dense LU path.
	diag := []*Dense{NewDense(2, 2), NewDense(2, 2)}
	sub := []*Dense{nil, NewDense(2, 2)}
	diag[0].Set(0, 0, 1)
	diag[0].Set(1, 1, -1e-9)
	diag[1].Set(0, 0, -1) // expected positive
	diag[1].Set(1, 1, -1e-9)
	signs := []int8{1, -1, 1, -1}
	var f BlockTriDiag
	if err := f.Factorize(diag, sub, signs); err != ErrNotSPD {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
}
