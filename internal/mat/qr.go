package mat

import "math"

// QR holds a Householder QR factorization of an m×n matrix with m ≥ n:
// A = Q·R with Q orthogonal (m×m, stored implicitly) and R upper
// triangular (n×n).
type QR struct {
	qr   *Dense    // Householder vectors below the diagonal, R on and above
	rd   []float64 // diagonal of R
	m, n int
}

// QRFactorize computes the Householder QR factorization of a (m ≥ n).
func QRFactorize(a *Dense) *QR {
	m, n := a.Dims()
	if m < n {
		panic(ErrShape)
	}
	qr := a.Clone()
	rd := make([]float64, n)
	d := qr.data
	for k := 0; k < n; k++ {
		// Norm of the k-th column below (and including) the diagonal.
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, d[i*n+k])
		}
		if nrm == 0 {
			rd[k] = 0
			continue
		}
		if d[k*n+k] < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			d[i*n+k] /= nrm
		}
		d[k*n+k] += 1
		// Apply the transformation to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += d[i*n+k] * d[i*n+j]
			}
			s = -s / d[k*n+k]
			for i := k; i < m; i++ {
				d[i*n+j] += s * d[i*n+k]
			}
		}
		rd[k] = -nrm
	}
	return &QR{qr: qr, rd: rd, m: m, n: n}
}

// FullRank reports whether R has no zero diagonal entries (to within tol,
// relative to the largest diagonal magnitude).
func (f *QR) FullRank(tol float64) bool {
	var mx float64
	for _, v := range f.rd {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	if mx == 0 {
		return false
	}
	for _, v := range f.rd {
		if math.Abs(v) <= tol*mx {
			return false
		}
	}
	return true
}

// SolveLS returns the least-squares solution x minimizing ‖A·x − b‖₂.
// It returns ErrSingular if A is rank deficient.
func (f *QR) SolveLS(b []float64) ([]float64, error) {
	if len(b) != f.m {
		panic(ErrShape)
	}
	if !f.FullRank(1e-14) {
		return nil, ErrSingular
	}
	d := f.qr.data
	y := CloneVec(b)
	// Apply Householder reflections: y ← Qᵀ·b.
	for k := 0; k < f.n; k++ {
		if d[k*f.n+k] == 0 {
			continue
		}
		var s float64
		for i := k; i < f.m; i++ {
			s += d[i*f.n+k] * y[i]
		}
		s = -s / d[k*f.n+k]
		for i := k; i < f.m; i++ {
			y[i] += s * d[i*f.n+k]
		}
	}
	// Back-substitute R·x = y[:n].
	x := make([]float64, f.n)
	for i := f.n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < f.n; j++ {
			s -= d[i*f.n+j] * x[j]
		}
		x[i] = s / f.rd[i]
	}
	return x, nil
}

// LeastSquares solves min ‖A·x − b‖₂ via QR.
func LeastSquares(a *Dense, b []float64) ([]float64, error) {
	return QRFactorize(a).SolveLS(b)
}
