package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestLUSolveKnown(t *testing.T) {
	a := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b := []float64{8, -11, -3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestLUSolveRandomResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		a := randomDense(rng, n, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			continue // random singular matrix: astronomically unlikely but legal
		}
		r := SubVec(a.MulVec(x), b)
		if Norm2(r) > 1e-8*(1+Norm2(b)) {
			t.Errorf("trial %d: residual %v too large", trial, Norm2(r))
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{
		{1, 2},
		{2, 4},
	})
	if _, err := Solve(a, []float64{1, 1}); err != ErrSingular {
		t.Errorf("Solve on singular matrix: err = %v, want ErrSingular", err)
	}
}

func TestLUDet(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 2}})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-6) > 1e-12 {
		t.Errorf("Det = %v, want 6", d)
	}
	// Permutation sign: swap rows gives negative determinant.
	b := FromRows([][]float64{{0, 2}, {3, 0}})
	fb, err := Factorize(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := fb.Det(); math.Abs(d+6) > 1e-12 {
		t.Errorf("Det = %v, want -6", d)
	}
}

func TestInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(10)
		a := randomSPD(rng, n) // SPD: comfortably invertible
		inv, err := Inverse(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !a.Mul(inv).EqualApprox(Identity(n), 1e-8) {
			t.Errorf("trial %d: A·A⁻¹ != I", trial)
		}
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := FromRows([][]float64{
		{4, 12, -16},
		{12, 37, -43},
		{-16, -43, 98},
	})
	ch, err := CholeskyFactorize(a)
	if err != nil {
		t.Fatal(err)
	}
	wantL := FromRows([][]float64{
		{2, 0, 0},
		{6, 1, 0},
		{-8, 5, 3},
	})
	if !ch.L().EqualApprox(wantL, 1e-12) {
		t.Errorf("L =\n%v\nwant\n%v", ch.L(), wantL)
	}
}

func TestCholeskySolveMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(15)
		a := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		ch, err := CholeskyFactorize(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		xc := ch.Solve(b)
		xl, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range xc {
			if math.Abs(xc[i]-xl[i]) > 1e-7*(1+math.Abs(xl[i])) {
				t.Errorf("trial %d: Cholesky/LU mismatch at %d: %v vs %v", trial, i, xc[i], xl[i])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{
		{1, 0},
		{0, -1},
	})
	if _, err := CholeskyFactorize(a); err != ErrNotSPD {
		t.Errorf("CholeskyFactorize on indefinite: err = %v, want ErrNotSPD", err)
	}
}

func TestSolveSPDRegularizes(t *testing.T) {
	// Positive semidefinite (singular) matrix: plain Cholesky fails, the
	// ridged fallback must still return a finite solution.
	a := FromRows([][]float64{
		{1, 1},
		{1, 1},
	})
	x, err := SolveSPD(a, []float64{2, 2})
	if err != nil {
		t.Fatalf("SolveSPD failed: %v", err)
	}
	if !AllFinite(x) {
		t.Errorf("SolveSPD returned non-finite %v", x)
	}
	// The ridged solution of [1 1;1 1]x=[2;2] tends to x = [1,1].
	if math.Abs(x[0]-1) > 1e-3 || math.Abs(x[1]-1) > 1e-3 {
		t.Errorf("SolveSPD = %v, want approx [1 1]", x)
	}
}

func TestQRLeastSquaresExact(t *testing.T) {
	// Square nonsingular system: least squares equals exact solve.
	a := FromRows([][]float64{
		{2, 1},
		{1, 3},
	})
	b := []float64{5, 10}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestQRLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2t + 1 from noisy-free samples: exact recovery.
	a := FromRows([][]float64{
		{0, 1},
		{1, 1},
		{2, 1},
		{3, 1},
	})
	b := []float64{1, 3, 5, 7}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Errorf("fit = %v, want [2 1]", x)
	}
}

func TestQRLeastSquaresNormalEquations(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		m := 5 + rng.Intn(10)
		n := 1 + rng.Intn(4)
		a := randomDense(rng, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Residual must be orthogonal to the column space: Aᵀ(Ax−b) = 0.
		grad := a.MulVecT(SubVec(a.MulVec(x), b))
		if Norm2(grad) > 1e-9*(1+Norm2(b)) {
			t.Errorf("trial %d: normal-equation residual %v", trial, Norm2(grad))
		}
	}
}

func TestQRRankDeficient(t *testing.T) {
	a := FromRows([][]float64{
		{1, 2},
		{2, 4},
		{3, 6},
	})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); err != ErrSingular {
		t.Errorf("rank-deficient LS: err = %v, want ErrSingular", err)
	}
}

func TestVectorOps(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Dot(x, y); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := NormInf([]float64{-7, 3}); got != 7 {
		t.Errorf("NormInf = %v, want 7", got)
	}
	if got := AddVec(x, y); got[2] != 9 {
		t.Errorf("AddVec = %v", got)
	}
	if got := SubVec(y, x); got[0] != 3 {
		t.Errorf("SubVec = %v", got)
	}
	if got := ScaleVec(2, x); got[1] != 4 {
		t.Errorf("ScaleVec = %v", got)
	}
	z := CloneVec(x)
	Axpy(10, y, z)
	if z[0] != 41 || z[2] != 63 {
		t.Errorf("Axpy = %v", z)
	}
	if f := Filled(3, 2.5); f[0] != 2.5 || len(f) != 3 {
		t.Errorf("Filled = %v", f)
	}
	if !AllFinite(x) {
		t.Error("AllFinite false negative")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Error("AllFinite missed NaN")
	}
}

func TestNorm2Overflow(t *testing.T) {
	// Components near sqrt(MaxFloat64) must not overflow in Norm2.
	big := 1e200
	if got := Norm2([]float64{big, big}); math.IsInf(got, 0) {
		t.Error("Norm2 overflowed")
	} else if math.Abs(got-big*math.Sqrt2) > 1e186 {
		t.Errorf("Norm2 = %v", got)
	}
}

func TestLUDetProductProperty(t *testing.T) {
	// det(A·B) = det(A)·det(B) for random small matrices.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		a := randomDense(rng, n, n)
		b := randomDense(rng, n, n)
		fa, errA := Factorize(a)
		fb, errB := Factorize(b)
		fab, errAB := Factorize(a.Mul(b))
		if errA != nil || errB != nil || errAB != nil {
			continue // singular random draw
		}
		want := fa.Det() * fb.Det()
		got := fab.Det()
		if math.Abs(got-want) > 1e-8*(1+math.Abs(want)) {
			t.Errorf("trial %d: det(AB)=%v, det(A)det(B)=%v", trial, got, want)
		}
	}
}

func TestCholeskySolveSPDProperty(t *testing.T) {
	// A·x = b round-trips for random SPD systems via SolveSPD.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		a := randomSPD(rng, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		x, err := SolveSPD(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				t.Errorf("trial %d: x[%d] = %v, want %v", trial, i, x[i], want[i])
			}
		}
	}
}

func TestInverseOfInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomSPD(rng, 6)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Inverse(inv)
	if err != nil {
		t.Fatal(err)
	}
	if !back.EqualApprox(a, 1e-7*a.MaxAbs()) {
		t.Error("(A⁻¹)⁻¹ != A")
	}
}
