package mat

// In-place / "into" variants of the allocating kernels. These exist for
// the solver hot path: the MPC re-solves an SQP problem every control
// step, and the allocating APIs (Mul, MulVec, LU.Solve, ...) would churn
// the garbage collector with short-lived buffers of identical size on
// every iteration. Each -Into variant writes its result into a
// caller-provided buffer and performs the exact same floating-point
// operations in the exact same order as its allocating counterpart, so
// results are bit-for-bit identical — the allocating APIs are now thin
// wrappers over these.
//
// Unless noted otherwise, destination buffers must not alias the inputs.

// Zero sets every element of m to zero in place and returns m.
func (m *Dense) Zero() *Dense {
	for i := range m.data {
		m.data[i] = 0
	}
	return m
}

// CopyFrom copies b into m. The shapes must match.
func (m *Dense) CopyFrom(b *Dense) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(ErrShape)
	}
	copy(m.data, b.data)
}

// RawRow returns row i of m as a slice aliasing the matrix storage (no
// copy). Mutating the slice mutates the matrix. This is the escape hatch
// the solvers use to run row-sliced inner loops without per-element At/Set
// bounds checks; use Row for a safe copy.
func (m *Dense) RawRow(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(ErrShape)
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// MulInto computes the matrix product m·b into dst and returns dst.
// dst must be m.rows×b.cols and must not alias m or b.
func (m *Dense) MulInto(b, dst *Dense) *Dense {
	if m.cols != b.rows {
		panic(ErrShape)
	}
	if dst.rows != m.rows || dst.cols != b.cols {
		panic(ErrShape)
	}
	for i := range dst.data {
		dst.data[i] = 0
	}
	for i := 0; i < m.rows; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := dst.data[i*b.cols : (i+1)*b.cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return dst
}

// MulVecInto computes m·x into dst (length m.rows) and returns dst.
// dst must not alias x.
func (m *Dense) MulVecInto(x, dst []float64) []float64 {
	if m.cols != len(x) {
		panic(ErrShape)
	}
	if len(dst) != m.rows {
		panic(ErrShape)
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return dst
}

// MulVecTInto computes mᵀ·x into dst (length m.cols) without forming the
// transpose, and returns dst. dst must not alias x.
func (m *Dense) MulVecTInto(x, dst []float64) []float64 {
	if m.rows != len(x) {
		panic(ErrShape)
	}
	if len(dst) != m.cols {
		panic(ErrShape)
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			dst[j] += xi * v
		}
	}
	return dst
}

// TInto writes the transpose of m into dst (m.cols×m.rows) and returns
// dst. dst must not alias m.
func (m *Dense) TInto(dst *Dense) *Dense {
	if dst.rows != m.cols || dst.cols != m.rows {
		panic(ErrShape)
	}
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			dst.data[j*m.rows+i] = m.data[i*m.cols+j]
		}
	}
	return dst
}

// CopyVec copies src into dst. The lengths must match.
func CopyVec(dst, src []float64) {
	if len(dst) != len(src) {
		panic(ErrShape)
	}
	copy(dst, src)
}

// AddVecInto computes x + y into dst and returns dst.
func AddVecInto(dst, x, y []float64) []float64 {
	if len(x) != len(y) || len(dst) != len(x) {
		panic(ErrShape)
	}
	for i := range x {
		dst[i] = x[i] + y[i]
	}
	return dst
}

// SubVecInto computes x − y into dst and returns dst.
func SubVecInto(dst, x, y []float64) []float64 {
	if len(x) != len(y) || len(dst) != len(x) {
		panic(ErrShape)
	}
	for i := range x {
		dst[i] = x[i] - y[i]
	}
	return dst
}

// ScaleVecInto computes s·x into dst and returns dst.
func ScaleVecInto(dst []float64, s float64, x []float64) []float64 {
	if len(dst) != len(x) {
		panic(ErrShape)
	}
	for i, v := range x {
		dst[i] = s * v
	}
	return dst
}

// growVec returns v resized to length n, reusing its backing array when
// the capacity allows. Contents are unspecified.
func growVec(v []float64, n int) []float64 {
	if cap(v) >= n {
		return v[:n]
	}
	return make([]float64, n)
}

// growInts is growVec for int slices.
func growInts(v []int, n int) []int {
	if cap(v) >= n {
		return v[:n]
	}
	return make([]int, n)
}
