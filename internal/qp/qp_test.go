package qp

import (
	"math"
	"math/rand"
	"testing"

	"evclimate/internal/mat"
)

func vecApprox(t *testing.T, got, want []float64, tol float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > tol {
			t.Errorf("%s[%d] = %v, want %v (tol %v)", label, i, got[i], want[i], tol)
		}
	}
}

func TestUnconstrainedQuadratic(t *testing.T) {
	// min ½xᵀHx + cᵀx with H = diag(2, 4), c = (−2, −8) → x = (1, 2).
	p := &Problem{
		H: mat.Diag([]float64{2, 4}),
		C: []float64{-2, -8},
	}
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	vecApprox(t, res.X, []float64{1, 2}, 1e-8, "x")
	if math.Abs(res.Objective-(-9)) > 1e-8 {
		t.Errorf("objective = %v, want -9", res.Objective)
	}
}

func TestEqualityConstrainedQuadratic(t *testing.T) {
	// min ½(x₁²+x₂²) s.t. x₁+x₂ = 2 → x = (1, 1), dual y = −1 (for Hx+Aᵀy=0).
	p := &Problem{
		H:   mat.Identity(2),
		C:   []float64{0, 0},
		Aeq: mat.FromRows([][]float64{{1, 1}}),
		Beq: []float64{2},
	}
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	vecApprox(t, res.X, []float64{1, 1}, 1e-7, "x")
	// KKT: Hx + Aᵀy = 0 → y = −1.
	if math.Abs(res.EqDuals[0]+1) > 1e-6 {
		t.Errorf("dual = %v, want -1", res.EqDuals[0])
	}
}

func TestActiveInequality(t *testing.T) {
	// min ½‖x − (3,3)‖² s.t. x₁ + x₂ ≤ 2 → x = (1, 1).
	p := &Problem{
		H:   mat.Identity(2),
		C:   []float64{-3, -3},
		Ain: mat.FromRows([][]float64{{1, 1}}),
		Bin: []float64{2},
	}
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v after %d iters", res.Status, res.Iterations)
	}
	vecApprox(t, res.X, []float64{1, 1}, 1e-6, "x")
	// Active constraint: multiplier z = 2 (from x − 3 + z·1 = 0).
	if math.Abs(res.InDuals[0]-2) > 1e-5 {
		t.Errorf("inequality dual = %v, want 2", res.InDuals[0])
	}
}

func TestInactiveInequality(t *testing.T) {
	// Same objective but constraint x₁+x₂ ≤ 100 is slack → unconstrained optimum (3,3).
	p := &Problem{
		H:   mat.Identity(2),
		C:   []float64{-3, -3},
		Ain: mat.FromRows([][]float64{{1, 1}}),
		Bin: []float64{100},
	}
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	vecApprox(t, res.X, []float64{3, 3}, 1e-6, "x")
	if res.InDuals[0] > 1e-5 {
		t.Errorf("slack constraint has dual %v, want ~0", res.InDuals[0])
	}
}

func TestBoxConstrainedQP(t *testing.T) {
	// min ½xᵀx − 10·1ᵀx s.t. 0 ≤ x ≤ 1 (4 vars) → all at upper bound 1.
	n := 4
	ain := mat.NewDense(2*n, n)
	bin := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		ain.Set(i, i, 1) // x_i ≤ 1
		bin[i] = 1
		ain.Set(n+i, i, -1) // −x_i ≤ 0
		bin[n+i] = 0
	}
	p := &Problem{
		H:   mat.Identity(n),
		C:   mat.Filled(n, -10),
		Ain: ain,
		Bin: bin,
	}
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	vecApprox(t, res.X, mat.Filled(n, 1), 1e-6, "x")
}

func TestMixedEqualityInequality(t *testing.T) {
	// min ½(x₁² + x₂² + x₃²)  s.t.  x₁ + x₂ + x₃ = 3,  x₁ ≤ 0.5.
	// Without the inequality: x = (1,1,1). With x₁ ≤ 0.5: x = (0.5, 1.25, 1.25).
	p := &Problem{
		H:   mat.Identity(3),
		C:   []float64{0, 0, 0},
		Aeq: mat.FromRows([][]float64{{1, 1, 1}}),
		Beq: []float64{3},
		Ain: mat.FromRows([][]float64{{1, 0, 0}}),
		Bin: []float64{0.5},
	}
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	vecApprox(t, res.X, []float64{0.5, 1.25, 1.25}, 1e-6, "x")
}

func TestSemidefiniteHessian(t *testing.T) {
	// H has a zero eigenvalue along (1,−1); the constraint set still pins
	// the solution: min ½(x₁+x₂)² − (x₁+x₂) s.t. x₁ − x₂ = 0, 0 ≤ x.
	h := mat.FromRows([][]float64{{1, 1}, {1, 1}})
	p := &Problem{
		H:   h,
		C:   []float64{-1, -1},
		Aeq: mat.FromRows([][]float64{{1, -1}}),
		Beq: []float64{0},
		Ain: mat.FromRows([][]float64{{-1, 0}, {0, -1}}),
		Bin: []float64{0, 0},
	}
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Optimum: x₁ = x₂ = t with minimized 2t² − 2t → t = ½.
	vecApprox(t, res.X, []float64{0.5, 0.5}, 1e-5, "x")
}

func TestKKTResidualsRandomProblems(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(8)
		meq := rng.Intn(n) // fewer equalities than variables
		min := 1 + rng.Intn(2*n)

		g := mat.NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				g.Set(i, j, rng.NormFloat64())
			}
		}
		h := g.T().Mul(g)
		for i := 0; i < n; i++ {
			h.Add(i, i, 0.5)
		}
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		// Build constraints guaranteed feasible at a random point x*.
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		var aeq *mat.Dense
		var beq []float64
		if meq > 0 {
			aeq = mat.NewDense(meq, n)
			for i := 0; i < meq; i++ {
				for j := 0; j < n; j++ {
					aeq.Set(i, j, rng.NormFloat64())
				}
			}
			beq = aeq.MulVec(xs)
		}
		ain := mat.NewDense(min, n)
		for i := 0; i < min; i++ {
			for j := 0; j < n; j++ {
				ain.Set(i, j, rng.NormFloat64())
			}
		}
		bin := ain.MulVec(xs)
		for i := range bin {
			bin[i] += rng.Float64() // strictly feasible margin
		}

		p := &Problem{H: h, C: c, Aeq: aeq, Beq: beq, Ain: ain, Bin: bin}
		res, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Status != Optimal {
			t.Errorf("trial %d: status %v (iters %d)", trial, res.Status, res.Iterations)
			continue
		}
		// KKT checks.
		// Stationarity.
		grad := mat.AddVec(h.MulVec(res.X), c)
		if aeq != nil {
			mat.Axpy(1, aeq.MulVecT(res.EqDuals), grad)
		}
		mat.Axpy(1, ain.MulVecT(res.InDuals), grad)
		if mat.NormInf(grad) > 1e-5*(1+mat.NormInf(c)) {
			t.Errorf("trial %d: stationarity residual %v", trial, mat.NormInf(grad))
		}
		// Primal feasibility.
		if aeq != nil {
			r := mat.SubVec(aeq.MulVec(res.X), beq)
			if mat.NormInf(r) > 1e-5 {
				t.Errorf("trial %d: equality violation %v", trial, mat.NormInf(r))
			}
		}
		av := ain.MulVec(res.X)
		for i := range av {
			if av[i] > bin[i]+1e-5 {
				t.Errorf("trial %d: inequality %d violated by %v", trial, i, av[i]-bin[i])
			}
			if res.InDuals[i] < -1e-9 {
				t.Errorf("trial %d: negative dual %v", trial, res.InDuals[i])
			}
			// Complementarity.
			if comp := res.InDuals[i] * (bin[i] - av[i]); math.Abs(comp) > 1e-4*(1+math.Abs(bin[i])) {
				t.Errorf("trial %d: complementarity %v", trial, comp)
			}
		}
	}
}

func TestWarmishLargeProblem(t *testing.T) {
	// A 60-variable separable box QP, similar in size to one MPC step.
	n := 60
	h := mat.Identity(n)
	// c chosen so no constraint is degenerate (active with zero dual):
	// unconstrained optimum is i%7 + 1.5, so the x ≤ 2 bound is either
	// strictly slack (i%7 == 0) or active with dual ≥ 0.5.
	c := make([]float64, n)
	for i := range c {
		c[i] = -float64(i%7) - 1.5
	}
	ain := mat.NewDense(2*n, n)
	bin := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		ain.Set(i, i, 1)
		bin[i] = 2
		ain.Set(n+i, i, -1)
		bin[n+i] = 0
	}
	res, err := Solve(&Problem{H: h, C: c, Ain: ain, Bin: bin}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	for i, x := range res.X {
		want := math.Min(2, float64(i%7)+1.5)
		if math.Abs(x-want) > 1e-5 {
			t.Errorf("x[%d] = %v, want %v", i, x, want)
		}
	}
	if res.Iterations > 40 {
		t.Errorf("took %d iterations; interior point should converge in ~10", res.Iterations)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Solve(&Problem{H: nil, C: nil}, Options{}); err == nil {
		t.Error("nil Hessian accepted")
	}
	if _, err := Solve(&Problem{H: mat.Identity(2), C: []float64{1}}, Options{}); err == nil {
		t.Error("mismatched C accepted")
	}
	if _, err := Solve(&Problem{
		H: mat.Identity(2), C: []float64{0, 0},
		Ain: mat.FromRows([][]float64{{1, 1}}), Bin: []float64{1, 2},
	}, Options{}); err == nil {
		t.Error("mismatched Bin accepted")
	}
	if _, err := Solve(&Problem{
		H: mat.Identity(2), C: []float64{0, math.NaN()},
	}, Options{}); err == nil {
		t.Error("NaN cost accepted")
	}
	if _, err := Solve(&Problem{H: mat.Identity(1), C: []float64{0}, Beq: []float64{1}}, Options{}); err == nil {
		t.Error("Beq without Aeq accepted")
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || MaxIterations.String() != "max-iterations" ||
		NumericalFailure.String() != "numerical-failure" {
		t.Error("Status.String values wrong")
	}
	if Status(99).String() == "" {
		t.Error("unknown status renders empty")
	}
}
