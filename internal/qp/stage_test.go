package qp

import (
	"math"
	"math/rand"
	"testing"

	"evclimate/internal/mat"
)

// randStageQP builds a random stage-structured QP that satisfies the
// StageStructure contract: block-tridiagonal SPD-ish Hessian, stage
// constraint rows supported on stages k−1..k, and a feasible point with a
// tunable mix of tight and slack inequalities so active sets vary across
// seeds. ridge controls how close the stage Hessian blocks are to
// singular.
func randStageQP(rng *rand.Rand, nst int, ridge float64) (*Problem, *StageStructure) {
	ss := &StageStructure{NV: make([]int, nst), NE: make([]int, nst), NI: make([]int, nst)}
	for k := 0; k < nst; k++ {
		ss.NV[k] = 1 + rng.Intn(4)
		ss.NE[k] = rng.Intn(2)
		ss.NI[k] = 1 + rng.Intn(3)
	}
	// Stage 0 rows have no previous stage; keep its equality count below
	// its variable count so the rows stay independent.
	if ss.NE[0] >= ss.NV[0] {
		ss.NE[0] = ss.NV[0] - 1
	}
	var n, meq, min int
	voff := make([]int, nst+1)
	for k := 0; k < nst; k++ {
		voff[k+1] = voff[k] + ss.NV[k]
		n += ss.NV[k]
		meq += ss.NE[k]
		min += ss.NI[k]
	}

	h := mat.NewDense(n, n)
	for k := 0; k < nst; k++ {
		nv, vo := ss.NV[k], voff[k]
		// SPD diagonal block GᵀG + ridge·I.
		g := make([]float64, nv*nv)
		for i := range g {
			g[i] = rng.NormFloat64()
		}
		for i := 0; i < nv; i++ {
			for j := 0; j <= i; j++ {
				var s float64
				for r := 0; r < nv; r++ {
					s += g[r*nv+i] * g[r*nv+j]
				}
				if i == j {
					s += ridge + 2 // diagonal dominance headroom for couplings
				}
				h.Set(vo+i, vo+j, s)
				h.Set(vo+j, vo+i, s)
			}
		}
		// Small symmetric coupling to the previous stage.
		if k > 0 {
			nvp, vop := ss.NV[k-1], voff[k-1]
			for i := 0; i < nv; i++ {
				for j := 0; j < nvp; j++ {
					v := 0.2 * rng.NormFloat64()
					h.Set(vo+i, vop+j, v)
					h.Set(vop+j, vo+i, v)
				}
			}
		}
	}

	c := make([]float64, n)
	xf := make([]float64, n)
	for i := range c {
		c[i] = rng.NormFloat64()
		xf[i] = rng.NormFloat64()
	}

	var aeq *mat.Dense
	var beq []float64
	if meq > 0 {
		aeq = mat.NewDense(meq, n)
		beq = make([]float64, meq)
		r := 0
		for k := 0; k < nst; k++ {
			lo := voff[k]
			if k > 0 {
				lo = voff[k-1]
			}
			for e := 0; e < ss.NE[k]; e++ {
				var dot float64
				for j := lo; j < voff[k+1]; j++ {
					v := rng.NormFloat64()
					aeq.Set(r, j, v)
					dot += v * xf[j]
				}
				beq[r] = dot // xf is equality-feasible
				r++
			}
		}
	}

	ain := mat.NewDense(min, n)
	bin := make([]float64, min)
	r := 0
	for k := 0; k < nst; k++ {
		lo := voff[k]
		if k > 0 {
			lo = voff[k-1]
		}
		for e := 0; e < ss.NI[k]; e++ {
			var dot float64
			for j := lo; j < voff[k+1]; j++ {
				v := rng.NormFloat64()
				ain.Set(r, j, v)
				dot += v * xf[j]
			}
			// Half the rows are nearly tight at xf, half are slack, so the
			// optimizer sees varied active sets across seeds.
			slack := 2 * rng.Float64()
			if rng.Intn(2) == 0 {
				slack = 1e-3
			}
			bin[r] = dot + slack
			r++
		}
	}

	return &Problem{H: h, C: c, Aeq: aeq, Beq: beq, Ain: ain, Bin: bin, Stages: ss}, ss
}

// TestStageBackendMatchesDense is the equivalence property suite: over a
// spread of random stage-structured QPs (varying stage counts and sizes,
// active sets, and near-singular stage Hessians), the Riccati backend
// must reproduce the dense reference solution and multipliers to tight
// tolerance, because both paths solve the identical regularized Newton
// systems.
func TestStageBackendMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 60; trial++ {
		nst := 2 + rng.Intn(8)
		ridge := 1e-1
		if trial%3 == 0 {
			ridge = 1e-8 // near-singular stage Hessians
		}
		p, _ := randStageQP(rng, nst, ridge)

		dense, err := Solve(p, Options{Backend: BackendDense})
		if err != nil {
			t.Fatalf("trial %d: dense solve failed: %v", trial, err)
		}
		str, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: structured solve failed: %v", trial, err)
		}
		if dense.Structured {
			t.Fatalf("trial %d: BackendDense reported Structured", trial)
		}
		if !str.Structured {
			t.Fatalf("trial %d: conforming problem did not use structured backend", trial)
		}
		if dense.Status != Optimal || str.Status != Optimal {
			t.Fatalf("trial %d: status dense=%v structured=%v", trial, dense.Status, str.Status)
		}
		for i := range dense.X {
			if d := math.Abs(str.X[i] - dense.X[i]); d > 1e-6*(1+math.Abs(dense.X[i])) {
				t.Fatalf("trial %d: X[%d] = %.12g, dense %.12g (Δ %g)", trial, i, str.X[i], dense.X[i], d)
			}
		}
		for i := range dense.EqDuals {
			if d := math.Abs(str.EqDuals[i] - dense.EqDuals[i]); d > 1e-5*(1+math.Abs(dense.EqDuals[i])) {
				t.Fatalf("trial %d: EqDuals[%d] = %.12g, dense %.12g", trial, i, str.EqDuals[i], dense.EqDuals[i])
			}
		}
		for i := range dense.InDuals {
			if d := math.Abs(str.InDuals[i] - dense.InDuals[i]); d > 1e-5*(1+math.Abs(dense.InDuals[i])) {
				t.Fatalf("trial %d: InDuals[%d] = %.12g, dense %.12g", trial, i, str.InDuals[i], dense.InDuals[i])
			}
		}
		if d := math.Abs(str.Objective - dense.Objective); d > 1e-7*(1+math.Abs(dense.Objective)) {
			t.Fatalf("trial %d: objective %.15g vs dense %.15g", trial, str.Objective, dense.Objective)
		}
	}
}

// TestStageBackendNonConforming: declared structure whose matrix data
// breaks the band contract must silently use the dense path and still
// solve correctly.
func TestStageBackendNonConforming(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p, ss := randStageQP(rng, 4, 1e-1)
	// Poison an out-of-band Hessian entry: stage 0 coupled to the last stage.
	lastLo := p.H.RawRow(0) // row 0 belongs to stage 0
	lastLo[len(lastLo)-1] = 0.5
	last := p.H.RawRow(len(lastLo) - 1)
	last[0] = 0.5

	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatalf("solve failed: %v", err)
	}
	if res.Structured {
		t.Fatal("non-conforming problem reported Structured")
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	// Reference: same matrices with no declaration.
	p2 := *p
	p2.Stages = nil
	ref, err := Solve(&p2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.X {
		if math.Abs(res.X[i]-ref.X[i]) > 1e-9*(1+math.Abs(ref.X[i])) {
			t.Fatalf("X[%d] = %g, want %g", i, res.X[i], ref.X[i])
		}
	}
	_ = ss
}

// TestStageBackendDemotesOnLostQuasiDefiniteness: an indefinite stage
// Hessian block defeats the structured factorization's pivot-sign check;
// the solver must demote to the dense path mid-solve, report
// Structured=false, and still terminate cleanly.
func TestStageBackendDemotesOnLostQuasiDefiniteness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p, _ := randStageQP(rng, 3, 1e-1)
	// Make one stage block strongly indefinite while keeping the band.
	p.H.Set(0, 0, -50)
	res, _ := Solve(p, Options{})
	if res == nil {
		t.Fatal("nil result")
	}
	if res.Structured {
		t.Fatal("indefinite problem reported Structured")
	}
	for _, v := range res.X {
		if math.IsNaN(v) {
			t.Fatal("NaN in solution after demotion")
		}
	}
}

func TestStageStructureCheck(t *testing.T) {
	ss := UniformStages(3, 2, 1, 4)
	if err := ss.Check(6, 3, 12); err != nil {
		t.Fatalf("valid structure rejected: %v", err)
	}
	if err := ss.Check(7, 3, 12); err == nil {
		t.Fatal("wrong variable sum accepted")
	}
	if err := (&StageStructure{NV: []int{2}, NE: []int{1}}).Check(2, 1, 0); err == nil {
		t.Fatal("missing NI accepted")
	}
	if err := (&StageStructure{NV: []int{0}, NE: []int{0}, NI: []int{0}}).Check(0, 0, 0); err == nil {
		t.Fatal("zero-variable stage accepted")
	}
	// A bad declaration must surface from Solve as ErrBadProblem.
	p := &Problem{
		H:      mat.NewDense(2, 2),
		C:      []float64{0, 0},
		Stages: UniformStages(1, 3, 0, 0),
	}
	p.H.Set(0, 0, 1)
	p.H.Set(1, 1, 1)
	if _, err := Solve(p, Options{}); err == nil {
		t.Fatal("Solve accepted inconsistent stage declaration")
	}
}

func TestBackendString(t *testing.T) {
	if BackendAuto.String() != "auto" || BackendDense.String() != "dense" || BackendStructured.String() != "structured" {
		t.Fatal("Backend.String mismatch")
	}
}
