package qp

import "fmt"

// Backend selects the KKT factorization path.
type Backend int

const (
	// BackendAuto (the default) uses the stage-structured Riccati path
	// when the problem declares a conforming StageStructure and has
	// inequality constraints, and the dense Cholesky/LU reference path
	// otherwise.
	BackendAuto Backend = iota
	// BackendDense forces the dense reference path, ignoring any declared
	// structure. The dense path is the golden reference the structured
	// backend is tested against.
	BackendDense
	// BackendStructured behaves like BackendAuto: the structured path
	// still requires a conforming declaration, and the solver still falls
	// back to dense when a stage factorization loses quasi-definiteness.
	BackendStructured
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendDense:
		return "dense"
	case BackendStructured:
		return "structured"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// StageStructure declares receding-horizon stage structure on a Problem:
// the decision vector, the equality rows, and the inequality rows are
// each partitioned into N contiguous stages (stage k owning NV[k]
// variables, NE[k] equality rows, NI[k] inequality rows, in order).
//
// The structural contract is the one a multiple-shooting MPC
// transcription satisfies naturally:
//
//   - H is zero outside the block-tridiagonal band: H[i][j] = 0 unless
//     the stages of i and j are equal or adjacent.
//   - A stage-k constraint row (equality or inequality) has support only
//     in the variables of stages k−1 and k.
//
// When a Problem declares a structure, Solve verifies the contract
// against the actual matrix data (a cheap scan of the out-of-band
// entries) and, if it holds, solves the interior-point KKT system with a
// block-tridiagonal LDLᵀ (Riccati) recursion in O(N·m³) instead of the
// dense O((N·m)³) — with the same static regularization, so the computed
// step solves the identical linear system as the dense reference up to
// roundoff. Non-conforming data silently falls back to the dense path
// (Result.Structured reports which path ran).
type StageStructure struct {
	// NV[k] is the number of primal variables owned by stage k (≥ 1).
	NV []int
	// NE[k] is the number of equality rows owned by stage k (≥ 0).
	NE []int
	// NI[k] is the number of inequality rows owned by stage k (≥ 0).
	NI []int
}

// UniformStages builds the common fixed-size case: n stages, each with
// nv variables, ne equality rows, and ni inequality rows.
func UniformStages(n, nv, ne, ni int) *StageStructure {
	s := &StageStructure{NV: make([]int, n), NE: make([]int, n), NI: make([]int, n)}
	for k := 0; k < n; k++ {
		s.NV[k], s.NE[k], s.NI[k] = nv, ne, ni
	}
	return s
}

// Stages returns the number of stages.
func (s *StageStructure) Stages() int { return len(s.NV) }

// Check validates the declaration against problem dimensions: per-stage
// counts must be nonnegative (variables ≥ 1) and sum to n, meq, and min.
func (s *StageStructure) Check(n, meq, min int) error {
	ns := len(s.NV)
	if ns == 0 || len(s.NE) != ns || len(s.NI) != ns {
		return fmt.Errorf("%w: stage structure with %d/%d/%d stage counts", ErrBadProblem, len(s.NV), len(s.NE), len(s.NI))
	}
	var sv, se, si int
	for k := 0; k < ns; k++ {
		if s.NV[k] < 1 || s.NE[k] < 0 || s.NI[k] < 0 {
			return fmt.Errorf("%w: stage %d has NV=%d NE=%d NI=%d", ErrBadProblem, k, s.NV[k], s.NE[k], s.NI[k])
		}
		sv += s.NV[k]
		se += s.NE[k]
		si += s.NI[k]
	}
	if sv != n || se != meq || si != min {
		return fmt.Errorf("%w: stage sums %d/%d/%d, problem dims %d/%d/%d", ErrBadProblem, sv, se, si, n, meq, min)
	}
	return nil
}
