package qp

import "evclimate/internal/mat"

// Workspace holds every buffer the interior-point iteration needs: the
// iterate and residual vectors, the reduced KKT block, the structured
// Cholesky/Schur factors (reused across the predictor and corrector
// solves of one iteration and re-factorized in place across iterations),
// and the dense LU fallback. Pass it via Options.Work to make repeated
// Solve calls with same-shaped problems allocation-free — the MPC solves
// an identically-shaped QP subproblem on every SQP iteration of every
// control step, so the workspace is sized once and reused for the life of
// the controller.
//
// A Workspace is not safe for concurrent use. When Options.Work is
// non-nil, the slices in the returned Result alias the workspace and are
// only valid until the next Solve call with that workspace; callers that
// retain them must copy.
type Workspace struct {
	n, meq, min int

	x, y, s, z []float64

	rd, rp, rc, rsz []float64
	hx, ax, aeqx    []float64
	tmpN            []float64

	kBlock *mat.Dense
	kf     kktFactor

	// Dense LU fallback and equality-only path, sized lazily since the
	// structured Cholesky path normally wins.
	kkt      *mat.Dense
	lu       mat.LU
	rhs, sol []float64

	tmpMin, r1, aindx  []float64
	rhs1, rhs2         []float64
	dxA, dyA, dsA, dzA []float64
	dx, dy, ds, dz     []float64

	// Stage-structured KKT backend, created on first use when the
	// problem declares a StageStructure. It re-sizes itself when the
	// stage layout changes, so it survives ensure untouched.
	stage *stageKKT

	res Result
}

// NewWorkspace returns an empty workspace; buffers are sized on first
// use and re-sized only when the problem dimensions change.
func NewWorkspace() *Workspace { return &Workspace{} }

// NewWorkspaceFor returns a workspace pre-sized for p — including the
// dense fallback factors and, when p declares stage structure, the
// block-tridiagonal backend — so even the first Solve performs no
// allocation. An invalid problem yields an empty workspace that sizes
// itself lazily like NewWorkspace.
func NewWorkspaceFor(p *Problem) *Workspace {
	w := NewWorkspace()
	n, meq, min, err := p.validate()
	if err != nil {
		return w
	}
	w.ensure(n, meq, min)
	w.ensureKKT(n + meq)
	w.lu.Reserve(n + meq)
	w.kf.reserve(n, meq)
	if p.Stages != nil {
		w.stage = &stageKKT{}
		w.stage.ensure(p.Stages, n, meq, min)
	}
	return w
}

// ensure sizes the workspace for an n-variable problem with meq equality
// and min inequality constraints. It is cheap when the dimensions are
// unchanged from the previous call.
func (w *Workspace) ensure(n, meq, min int) {
	if w.n == n && w.meq == meq && w.min == min && w.x != nil {
		return
	}
	w.n, w.meq, w.min = n, meq, min
	w.x = make([]float64, n)
	w.y = make([]float64, meq)
	w.s = make([]float64, min)
	w.z = make([]float64, min)
	w.rd = make([]float64, n)
	w.rp = make([]float64, meq)
	w.rc = make([]float64, min)
	w.rsz = make([]float64, min)
	w.hx = make([]float64, n)
	w.ax = make([]float64, min)
	w.aeqx = make([]float64, meq)
	w.tmpN = make([]float64, n)
	w.kBlock = mat.NewDense(n, n)
	w.tmpMin = make([]float64, min)
	w.r1 = make([]float64, n)
	w.aindx = make([]float64, min)
	w.rhs1 = make([]float64, n)
	w.rhs2 = make([]float64, meq)
	w.dxA = make([]float64, n)
	w.dyA = make([]float64, meq)
	w.dsA = make([]float64, min)
	w.dzA = make([]float64, min)
	w.dx = make([]float64, n)
	w.dy = make([]float64, meq)
	w.ds = make([]float64, min)
	w.dz = make([]float64, min)
	w.kkt = nil // lazily re-sized by ensureKKT
}

// ensureKKT sizes the dense (n+meq)² saddle-point system used by the
// equality-only path and the LU fallback.
func (w *Workspace) ensureKKT(dim int) {
	if w.kkt != nil {
		if r, _ := w.kkt.Dims(); r == dim {
			return
		}
	}
	w.kkt = mat.NewDense(dim, dim)
	w.rhs = make([]float64, dim)
	w.sol = make([]float64, dim)
}
