package qp

import (
	"errors"

	"evclimate/internal/mat"
)

// kktFactor solves the interior-point Newton system
//
//	[ K    Aᵀ  ] [dx]   [r1]
//	[ A   −δI  ] [dy] = [r2]
//
// with K symmetric positive definite, via block elimination: a Cholesky
// factorization of K, the thick solve Y = K⁻¹Aᵀ, and a Cholesky
// factorization of the (small) Schur complement S = A·Y + δI. This is
// ~1.5× cheaper than an LU of the full (n+meq) system and reuses the
// factorization across the predictor and corrector solves. When K is not
// numerically SPD (extreme barrier weights), the caller falls back to the
// dense LU path. All factor and scratch buffers live in the struct and
// are reused across iterations and Solve calls — factorize is
// allocation-free once sized.
type kktFactor struct {
	chK   mat.Cholesky
	chS   mat.Cholesky
	aeq   *mat.Dense // nil when meq == 0
	y     *mat.Dense // K⁻¹Aᵀ, n×meq
	sMat  *mat.Dense // Schur complement scratch, meq×meq
	col   []float64  // length n: one Aᵀ column, then its K⁻¹ solve
	t     []float64  // length meq
	yd    []float64  // length n
	delta float64
	n, mq int
}

// errNotSPD signals the caller to fall back to LU.
var errNotSPD = errors.New("qp: KKT K-block not SPD")

// reserve pre-sizes every factor and scratch buffer for an n-variable
// problem with meq equality rows so the first factorize call performs no
// allocation.
func (f *kktFactor) reserve(n, meq int) {
	f.chK.Reserve(n)
	f.n = n
	f.mq = meq
	if meq > 0 {
		f.y = mat.NewDense(n, meq)
		f.sMat = mat.NewDense(meq, meq)
		f.col = make([]float64, n)
		f.t = make([]float64, meq)
		f.yd = make([]float64, n)
		f.chS.Reserve(meq)
	} else {
		f.y = nil
	}
}

// factorize computes the factorization of K (n×n, dense symmetric) and,
// when aeq is non-nil, the Schur complement for the equality block,
// reusing the receiver's buffers.
func (f *kktFactor) factorize(k *mat.Dense, aeq *mat.Dense, delta float64) error {
	n, _ := k.Dims()
	if err := mat.CholeskyFactorizeInto(&f.chK, k); err != nil {
		return errNotSPD
	}
	f.delta = delta
	f.aeq = aeq
	if f.n != n {
		f.n = n
		f.y = nil // meq-dependent buffers resized below
	}
	if aeq == nil {
		f.mq = 0
		return nil
	}
	meq, _ := aeq.Dims()
	if f.y == nil || f.mq != meq {
		f.mq = meq
		f.y = mat.NewDense(n, meq)
		f.sMat = mat.NewDense(meq, meq)
		f.col = make([]float64, n)
		f.t = make([]float64, meq)
		f.yd = make([]float64, n)
	}
	// Y = K⁻¹Aᵀ, one triangular solve pair per equality row.
	for i := 0; i < meq; i++ {
		f.chK.SolveInto(aeq.RawRow(i), f.col)
		for j := 0; j < n; j++ {
			f.y.Set(j, i, f.col[j])
		}
	}
	// S = A·Y + δI (meq×meq, SPD for full-row-rank A).
	aeq.MulInto(f.y, f.sMat)
	for i := 0; i < meq; i++ {
		f.sMat.Add(i, i, delta)
	}
	if err := mat.CholeskyFactorizeInto(&f.chS, f.sMat); err != nil {
		return errNotSPD
	}
	return nil
}

// solveInto computes dx, dy for right-hand sides r1 (length n) and r2
// (length meq; ignored when there are no equalities).
func (f *kktFactor) solveInto(r1, r2, dx, dy []float64) {
	f.chK.SolveInto(r1, dx) // x0
	if f.aeq == nil {
		return
	}
	// S·dy = A·x0 − r2.
	f.aeq.MulVecInto(dx, f.t)
	for i := range f.t {
		f.t[i] -= r2[i]
	}
	f.chS.SolveInto(f.t, dy)
	// dx = x0 − Y·dy.
	f.y.MulVecInto(dy, f.yd)
	for i := range dx {
		dx[i] -= f.yd[i]
	}
}
