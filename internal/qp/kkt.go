package qp

import (
	"errors"

	"evclimate/internal/mat"
)

// kktFactor solves the interior-point Newton system
//
//	[ K    Aᵀ  ] [dx]   [r1]
//	[ A   −δI  ] [dy] = [r2]
//
// with K symmetric positive definite, via block elimination: a Cholesky
// factorization of K, the thick solve Y = K⁻¹Aᵀ, and a Cholesky
// factorization of the (small) Schur complement S = A·Y + δI. This is
// ~1.5× cheaper than an LU of the full (n+meq) system and reuses the
// factorization across the predictor and corrector solves. When K is not
// numerically SPD (extreme barrier weights), the caller falls back to the
// dense LU path.
type kktFactor struct {
	chK   *mat.Cholesky
	aeq   *mat.Dense // nil when meq == 0
	y     *mat.Dense // K⁻¹Aᵀ, n×meq
	chS   *mat.Cholesky
	delta float64
	n, mq int
}

// errNotSPD signals the caller to fall back to LU.
var errNotSPD = errors.New("qp: KKT K-block not SPD")

// newKKTFactor factorizes K (n×n, dense symmetric) and, when aeq is
// non-nil, the Schur complement for the equality block.
func newKKTFactor(k *mat.Dense, aeq *mat.Dense, delta float64) (*kktFactor, error) {
	n, _ := k.Dims()
	chK, err := mat.CholeskyFactorize(k)
	if err != nil {
		return nil, errNotSPD
	}
	f := &kktFactor{chK: chK, delta: delta, n: n}
	if aeq == nil {
		return f, nil
	}
	meq, _ := aeq.Dims()
	f.aeq = aeq
	f.mq = meq
	// Y = K⁻¹Aᵀ, one triangular solve pair per equality row.
	f.y = mat.NewDense(n, meq)
	col := make([]float64, n)
	for i := 0; i < meq; i++ {
		for j := 0; j < n; j++ {
			col[j] = aeq.At(i, j)
		}
		sol := chK.Solve(col)
		for j := 0; j < n; j++ {
			f.y.Set(j, i, sol[j])
		}
	}
	// S = A·Y + δI (meq×meq, SPD for full-row-rank A).
	s := aeq.Mul(f.y)
	for i := 0; i < meq; i++ {
		s.Add(i, i, delta)
	}
	chS, err := mat.CholeskyFactorize(s)
	if err != nil {
		return nil, errNotSPD
	}
	f.chS = chS
	return f, nil
}

// solve returns dx, dy for right-hand sides r1 (length n) and r2
// (length meq; ignored when there are no equalities).
func (f *kktFactor) solve(r1, r2 []float64) (dx, dy []float64) {
	x0 := f.chK.Solve(r1)
	if f.aeq == nil {
		return x0, nil
	}
	// S·dy = A·x0 − r2.
	t := f.aeq.MulVec(x0)
	for i := range t {
		t[i] -= r2[i]
	}
	dy = f.chS.Solve(t)
	// dx = x0 − Y·dy.
	dx = x0
	yd := f.y.MulVec(dy)
	for i := range dx {
		dx[i] -= yd[i]
	}
	return dx, dy
}
