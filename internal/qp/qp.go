// Package qp solves convex quadratic programs
//
//	minimize    ½ xᵀH x + cᵀx
//	subject to  Aeq·x = beq
//	            Ain·x ≤ bin
//
// with a primal-dual interior-point method using Mehrotra's
// predictor-corrector. This is the workhorse under the SQP solver: each SQP
// iteration linearizes the HVAC dynamics and hands the resulting QP here.
// An interior-point method was chosen over active-set because it needs no
// feasible starting point — SQP subproblems are frequently infeasible at
// the current iterate — and its iteration count is nearly independent of
// the number of inequality constraints (the MPC has ten per horizon step).
package qp

import (
	"errors"
	"fmt"
	"math"

	"evclimate/internal/mat"
)

// Status describes how Solve terminated.
type Status int

const (
	// Optimal means all KKT residuals met the tolerance.
	Optimal Status = iota
	// MaxIterations means the iteration limit was hit; Result.X holds the
	// best iterate and may still be useful as a warm start.
	MaxIterations
	// NumericalFailure means a linear solve failed irrecoverably.
	NumericalFailure
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case MaxIterations:
		return "max-iterations"
	case NumericalFailure:
		return "numerical-failure"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// ErrBadProblem is returned for structurally invalid problems
// (dimension mismatches, missing Hessian, non-finite data).
var ErrBadProblem = errors.New("qp: invalid problem")

// Problem is a convex QP. H must be symmetric positive semidefinite.
// Aeq/Beq and Ain/Bin may be nil/empty for unconstrained directions.
type Problem struct {
	H   *mat.Dense
	C   []float64
	Aeq *mat.Dense
	Beq []float64
	Ain *mat.Dense
	Bin []float64
	// Stages, when non-nil, declares receding-horizon stage structure
	// (see StageStructure): Solve then factors the interior-point KKT
	// system with a block-tridiagonal Riccati recursion instead of the
	// dense reference path, after verifying the declared sparsity against
	// the matrix data. A structurally inconsistent declaration (counts
	// not summing to the problem dimensions) is ErrBadProblem; declared
	// but non-conforming matrix data silently uses the dense path.
	Stages *StageStructure
}

// Options tunes the solver. The zero value selects defaults.
type Options struct {
	// MaxIter is the iteration limit (default 60).
	MaxIter int
	// Tol is the KKT residual and complementarity tolerance (default 1e-8).
	Tol float64
	// Reg is the static diagonal regularization added to the KKT system
	// (default 1e-9) — it keeps the factorization well-posed when H is
	// only positive semidefinite. Both KKT backends use the same Reg, so
	// the structured path solves the identical linear system as the dense
	// reference.
	Reg float64
	// Backend selects the KKT factorization path (default BackendAuto:
	// structured when the problem declares conforming stage structure,
	// dense otherwise). BackendDense forces the dense reference path —
	// equivalence tests solve the same problem both ways.
	Backend Backend
	// Work, when non-nil, is a reusable solver workspace: repeated Solve
	// calls with same-shaped problems perform no allocation, and the
	// slices in the returned Result alias the workspace (valid until the
	// next Solve with that workspace). Nil keeps the allocating behaviour.
	Work *Workspace
}

func (o *Options) fill() {
	if o.MaxIter <= 0 {
		o.MaxIter = 60
	}
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.Reg <= 0 {
		o.Reg = 1e-9
	}
}

// Result is the solver output.
type Result struct {
	// X is the primal solution.
	X []float64
	// EqDuals are the multipliers of the equality constraints.
	EqDuals []float64
	// InDuals are the (nonnegative) multipliers of the inequalities.
	InDuals []float64
	// Objective is ½xᵀHx + cᵀx at X.
	Objective float64
	// Iterations is the number of interior-point iterations performed.
	Iterations int
	// Status reports the termination condition.
	Status Status
	// PrimalInfeas and DualInfeas are the final scaled residual norms.
	PrimalInfeas, DualInfeas float64
	// Structured reports that every KKT factorization of the solve used
	// the stage-structured Riccati backend. It is false when no structure
	// was declared or selected, when the declared structure did not
	// conform to the matrix data, or when a stage factorization lost
	// quasi-definiteness mid-solve and the solver demoted to the dense
	// path for the remaining iterations.
	Structured bool
}

func (p *Problem) validate() (n, meq, min int, err error) {
	if p.H == nil {
		return 0, 0, 0, fmt.Errorf("%w: nil Hessian", ErrBadProblem)
	}
	hr, hc := p.H.Dims()
	if hr != hc {
		return 0, 0, 0, fmt.Errorf("%w: Hessian %d×%d not square", ErrBadProblem, hr, hc)
	}
	n = hr
	if len(p.C) != n {
		return 0, 0, 0, fmt.Errorf("%w: len(C)=%d, want %d", ErrBadProblem, len(p.C), n)
	}
	if p.Aeq != nil {
		r, c := p.Aeq.Dims()
		if c != n || len(p.Beq) != r {
			return 0, 0, 0, fmt.Errorf("%w: equality block %d×%d / %d", ErrBadProblem, r, c, len(p.Beq))
		}
		meq = r
	} else if len(p.Beq) != 0 {
		return 0, 0, 0, fmt.Errorf("%w: Beq without Aeq", ErrBadProblem)
	}
	if p.Ain != nil {
		r, c := p.Ain.Dims()
		if c != n || len(p.Bin) != r {
			return 0, 0, 0, fmt.Errorf("%w: inequality block %d×%d / %d", ErrBadProblem, r, c, len(p.Bin))
		}
		min = r
	} else if len(p.Bin) != 0 {
		return 0, 0, 0, fmt.Errorf("%w: Bin without Ain", ErrBadProblem)
	}
	if !mat.AllFinite(p.C) || !mat.AllFinite(p.Beq) || !mat.AllFinite(p.Bin) {
		return 0, 0, 0, fmt.Errorf("%w: non-finite data", ErrBadProblem)
	}
	// Matrix data must be finite too: a NaN in H or a constraint row
	// poisons the KKT factorization and surfaces as a confusing
	// NumericalFailure deep in the iteration loop.
	if !p.H.AllFinite() {
		return 0, 0, 0, fmt.Errorf("%w: non-finite Hessian", ErrBadProblem)
	}
	if p.Aeq != nil && !p.Aeq.AllFinite() {
		return 0, 0, 0, fmt.Errorf("%w: non-finite equality matrix", ErrBadProblem)
	}
	if p.Ain != nil && !p.Ain.AllFinite() {
		return 0, 0, 0, fmt.Errorf("%w: non-finite inequality matrix", ErrBadProblem)
	}
	if p.Stages != nil {
		if err := p.Stages.Check(n, meq, min); err != nil {
			return 0, 0, 0, err
		}
	}
	return n, meq, min, nil
}

// Objective evaluates ½xᵀHx + cᵀx.
func (p *Problem) objective(x []float64) float64 {
	return 0.5*mat.Dot(x, p.H.MulVec(x)) + mat.Dot(p.C, x)
}

// objectiveInto evaluates ½xᵀHx + cᵀx using hx as the H·x scratch buffer.
func (p *Problem) objectiveInto(x, hx []float64) float64 {
	return 0.5*mat.Dot(x, p.H.MulVecInto(x, hx)) + mat.Dot(p.C, x)
}

// Solve minimizes the QP. See the package comment for the method.
func Solve(p *Problem, opt Options) (*Result, error) {
	opt.fill()
	n, meq, min, err := p.validate()
	if err != nil {
		return nil, err
	}
	ws := opt.Work
	if ws == nil {
		ws = NewWorkspace()
	}
	ws.ensure(n, meq, min)

	// No inequalities: the problem reduces to a single KKT solve.
	if min == 0 {
		return solveEquality(p, n, meq, opt, ws)
	}

	// Stage-structured backend selection. banded (constant for the whole
	// solve) says the declared structure conforms to the matrix data, so
	// the banded matvecs are valid; stageActive starts equal and is
	// demoted to false — for the remaining iterations — if a stage
	// factorization loses quasi-definiteness.
	var st *stageKKT
	banded := false
	if p.Stages != nil && opt.Backend != BackendDense {
		if ws.stage == nil {
			ws.stage = &stageKKT{}
		}
		st = ws.stage
		st.ensure(p.Stages, n, meq, min)
		banded = st.conforms(p)
	}
	stageActive := banded

	// Interior-point state.
	x := ws.x
	y := ws.y
	s := ws.s // slacks for Ain·x + s = bin
	z := ws.z // inequality duals
	for i := range x {
		x[i] = 0
	}
	for i := range y {
		y[i] = 0
	}
	for i := range s {
		s[i] = 1
		z[i] = 1
	}

	// Warm-ish start: shift slacks so s = max(bin − Ain·x, 1).
	ax := p.Ain.MulVecInto(x, ws.ax)
	for i := 0; i < min; i++ {
		if v := p.Bin[i] - ax[i]; v > 1 {
			s[i] = v
		}
	}

	scale := 1 + mat.NormInf(p.C) + p.H.MaxAbs()
	bScale := 1 + mat.NormInf(p.Beq) + mat.NormInf(p.Bin)

	rd := ws.rd
	rp := ws.rp
	rc := ws.rc
	rsz := ws.rsz

	res := &ws.res
	*res = Result{Status: MaxIterations}
	for iter := 0; iter < opt.MaxIter; iter++ {
		res.Iterations = iter + 1

		// Residuals (banded matvecs when the structure conforms: the
		// stage windows skip the zero blocks the dense products wade
		// through, which matters once the factorization is cheap).
		var hx []float64
		if banded {
			hx = st.mulH(p.H, x, ws.hx)
		} else {
			hx = p.H.MulVecInto(x, ws.hx)
		}
		for i := 0; i < n; i++ {
			rd[i] = hx[i] + p.C[i]
		}
		if meq > 0 {
			var aty, aeqx []float64
			if banded {
				aty = st.mulAT(p.Aeq, st.eoff, y, ws.tmpN)
				aeqx = st.mulA(p.Aeq, st.eoff, x, ws.aeqx)
			} else {
				aty = p.Aeq.MulVecTInto(y, ws.tmpN)
				aeqx = p.Aeq.MulVecInto(x, ws.aeqx)
			}
			mat.Axpy(1, aty, rd)
			for i := 0; i < meq; i++ {
				rp[i] = aeqx[i] - p.Beq[i]
			}
		}
		var atz, ainx []float64
		if banded {
			atz = st.mulAT(p.Ain, st.ioff, z, ws.tmpN)
			ainx = st.mulA(p.Ain, st.ioff, x, ws.ax)
		} else {
			atz = p.Ain.MulVecTInto(z, ws.tmpN)
			ainx = p.Ain.MulVecInto(x, ws.ax)
		}
		mat.Axpy(1, atz, rd)
		for i := 0; i < min; i++ {
			rc[i] = ainx[i] + s[i] - p.Bin[i]
		}
		mu := mat.Dot(s, z) / float64(min)

		res.DualInfeas = mat.NormInf(rd) / scale
		res.PrimalInfeas = math.Max(mat.NormInf(rp), mat.NormInf(rc)) / bScale
		if res.DualInfeas < opt.Tol && res.PrimalInfeas < opt.Tol && mu < opt.Tol {
			res.Status = Optimal
			break
		}

		// The barrier weights d = z/s feed every backend; a nonpositive
		// or non-finite ratio means the iterate is beyond repair.
		badD := false
		for k := 0; k < min; k++ {
			d := z[k] / s[k]
			if d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				badD = true
				break
			}
		}
		if badD {
			res.Status = NumericalFailure
			break
		}

		// Assemble and factor the reduced KKT matrix
		//   [ H + AinᵀD Ain + regI    Aeqᵀ      ] [dx]   [−r1]
		//   [ Aeq                     −regI     ] [dy] = [−rp]
		// with D = diag(z/s). Structured path first; a stage block that
		// loses quasi-definiteness demotes this and all later iterations
		// of the solve to the dense reference path.
		if stageActive {
			st.assemble(p, z, s, opt.Reg)
			if st.factorize() != nil {
				stageActive = false
			}
		}
		useLU := false
		if !stageActive {
			kBlock := ws.kBlock
			kBlock.CopyFrom(p.H)
			for i := 0; i < n; i++ {
				kBlock.Add(i, i, opt.Reg)
			}
			for k := 0; k < min; k++ {
				d := z[k] / s[k]
				arow := p.Ain.RawRow(k)
				for i, aki := range arow {
					if aki == 0 {
						continue
					}
					krow := kBlock.RawRow(i)
					for j, akj := range arow {
						if akj != 0 {
							krow[j] += d * aki * akj
						}
					}
				}
			}

			// Preferred dense path: structured Cholesky + Schur
			// factorization. Fallback: dense LU of the full saddle-point
			// system when the K-block is not numerically SPD (extreme
			// barrier weights).
			if kerr := ws.kf.factorize(kBlock, p.Aeq, opt.Reg); kerr != nil {
				useLU = true
				ws.ensureKKT(n + meq)
				kkt := ws.kkt.Zero()
				for i := 0; i < n; i++ {
					copy(kkt.RawRow(i)[:n], kBlock.RawRow(i))
				}
				for i := 0; i < meq; i++ {
					arow := p.Aeq.RawRow(i)
					krow := kkt.RawRow(n + i)
					for j, v := range arow {
						krow[j] = v
						kkt.Set(j, n+i, v)
					}
					krow[n+i] = -opt.Reg
				}
				if ferr := mat.FactorizeInto(&ws.lu, kkt); ferr != nil {
					res.Status = NumericalFailure
					break
				}
			}
		}

		solveStep := func(rszLocal, dx, dy, ds, dz []float64) {
			// r1 = rd + Ainᵀ S⁻¹ (Z·rc − rsz)
			tmp := ws.tmpMin
			for k := 0; k < min; k++ {
				tmp[k] = (z[k]*rc[k] - rszLocal[k]) / s[k]
			}
			var r1 []float64
			if banded {
				r1 = st.mulAT(p.Ain, st.ioff, tmp, ws.r1)
			} else {
				r1 = p.Ain.MulVecTInto(tmp, ws.r1)
			}
			mat.Axpy(1, rd, r1)
			if stageActive {
				rhs1 := mat.ScaleVecInto(ws.rhs1, -1, r1)
				rhs2 := mat.ScaleVecInto(ws.rhs2, -1, rp)
				st.solveInto(rhs1, rhs2, dx, dy)
			} else if !useLU {
				rhs1 := mat.ScaleVecInto(ws.rhs1, -1, r1)
				rhs2 := mat.ScaleVecInto(ws.rhs2, -1, rp)
				ws.kf.solveInto(rhs1, rhs2, dx, dy)
			} else {
				rhs := ws.rhs
				for i := 0; i < n; i++ {
					rhs[i] = -r1[i]
				}
				for i := 0; i < meq; i++ {
					rhs[n+i] = -rp[i]
				}
				ws.lu.SolveInto(rhs, ws.sol)
				copy(dx, ws.sol[:n])
				copy(dy, ws.sol[n:])
			}
			var aindx []float64
			if banded {
				aindx = st.mulA(p.Ain, st.ioff, dx, ws.aindx)
			} else {
				aindx = p.Ain.MulVecInto(dx, ws.aindx)
			}
			for k := 0; k < min; k++ {
				ds[k] = -rc[k] - aindx[k]
				dz[k] = -(rszLocal[k] + z[k]*ds[k]) / s[k]
			}
		}

		// Affine (predictor) step: rsz = s∘z.
		for k := 0; k < min; k++ {
			rsz[k] = s[k] * z[k]
		}
		dsA, dzA := ws.dsA, ws.dzA
		solveStep(rsz, ws.dxA, ws.dyA, dsA, dzA)
		alphaP := maxStep(s, dsA)
		alphaD := maxStep(z, dzA)
		var muAff float64
		for k := 0; k < min; k++ {
			muAff += (s[k] + alphaP*dsA[k]) * (z[k] + alphaD*dzA[k])
		}
		muAff /= float64(min)
		sigma := math.Pow(muAff/mu, 3)
		if math.IsNaN(sigma) || sigma > 1 {
			sigma = 1
		}

		// Corrector step: rsz = s∘z + dsA∘dzA − σμ.
		for k := 0; k < min; k++ {
			rsz[k] = s[k]*z[k] + dsA[k]*dzA[k] - sigma*mu
		}
		dx, dy, ds, dz := ws.dx, ws.dy, ws.ds, ws.dz
		solveStep(rsz, dx, dy, ds, dz)
		if !mat.AllFinite(dx) || !mat.AllFinite(ds) || !mat.AllFinite(dz) {
			res.Status = NumericalFailure
			break
		}

		alphaP = 0.995 * maxStep(s, ds)
		alphaD = 0.995 * maxStep(z, dz)
		alphaP = math.Min(1, alphaP)
		alphaD = math.Min(1, alphaD)

		mat.Axpy(alphaP, dx, x)
		mat.Axpy(alphaP, ds, s)
		if meq > 0 {
			mat.Axpy(alphaD, dy, y)
		}
		mat.Axpy(alphaD, dz, z)
	}

	res.X = x
	res.EqDuals = y
	res.InDuals = z
	res.Structured = stageActive
	res.Objective = p.objectiveInto(x, ws.hx)
	if res.Status == NumericalFailure {
		return res, fmt.Errorf("qp: numerical failure after %d iterations", res.Iterations)
	}
	return res, nil
}

// maxStep returns the largest α in (0, 1e30] with v + α·dv ≥ 0 componentwise.
func maxStep(v, dv []float64) float64 {
	alpha := 1e30
	for i, d := range dv {
		if d < 0 {
			if a := -v[i] / d; a < alpha {
				alpha = a
			}
		}
	}
	return alpha
}

// solveEquality handles the inequality-free case by solving the KKT system
//
//	[H    Aeqᵀ] [x]   [−c ]
//	[Aeq  0   ] [y] = [beq]
func solveEquality(p *Problem, n, meq int, opt Options, ws *Workspace) (*Result, error) {
	dim := n + meq
	ws.ensureKKT(dim)
	kkt := ws.kkt.Zero()
	for i := 0; i < n; i++ {
		copy(kkt.RawRow(i)[:n], p.H.RawRow(i))
		kkt.Add(i, i, opt.Reg)
	}
	for i := 0; i < meq; i++ {
		arow := p.Aeq.RawRow(i)
		krow := kkt.RawRow(n + i)
		for j, v := range arow {
			krow[j] = v
			kkt.Set(j, n+i, v)
		}
		krow[n+i] = -opt.Reg
	}
	rhs := ws.rhs
	for i := 0; i < n; i++ {
		rhs[i] = -p.C[i]
	}
	for i := 0; i < meq; i++ {
		rhs[n+i] = p.Beq[i]
	}
	res := &ws.res
	if err := mat.FactorizeInto(&ws.lu, kkt); err != nil {
		*res = Result{Status: NumericalFailure}
		return res, fmt.Errorf("qp: singular KKT system: %w", err)
	}
	sol := ws.lu.SolveInto(rhs, ws.sol)
	copy(ws.x, sol[:n])
	copy(ws.y, sol[n:])
	*res = Result{
		X:          ws.x,
		EqDuals:    ws.y,
		InDuals:    nil,
		Iterations: 1,
		Status:     Optimal,
	}
	res.Objective = p.objectiveInto(res.X, ws.hx)
	return res, nil
}
