package qp

import (
	"math"
	"testing"

	"evclimate/internal/mat"
)

// splitmix64 is a tiny deterministic PRNG so one fuzz-input seed expands
// into a whole stage QP reproducibly.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit returns a uniform draw in [−1, 1).
func (s *splitmix64) unit() float64 {
	return float64(int64(s.next()>>11))/(1<<52) - 1
}

// Poison flags for FuzzStageKKT: each bit injects one pathology into an
// otherwise well-posed stage-structured QP.
const (
	pzZeroH     = 1 << iota // zero Hessian (not strictly convex)
	pzNegBlock              // negated diagonal block (non-SPD → demotion)
	pzDupRow                // duplicated inequality row (degenerate active set)
	pzOutOfBand             // out-of-band H entry (non-conforming → dense)
	pzHugeScale             // 1e150 scale on the Hessian
	pzZeroEqRow             // all-zero equality row (rank-deficient Aeq)
	pzTinyScale             // 1e-150 scale (underflow-prone barrier terms)
)

// buildStageQP expands (seed, nst, scale, poison) into a stage QP with
// nv=2, ne=1, ni=2 per stage, band-conforming unless pzOutOfBand.
func buildStageQP(seed uint64, nst int, scale float64, poison uint8) *Problem {
	const nv, ne, ni = 2, 1, 2
	rng := splitmix64(seed)
	n, meq, min := nst*nv, nst*ne, nst*ni
	h := mat.NewDense(n, n)
	for k := 0; k < nst; k++ {
		o := k * nv
		// SPD diagonal block G·Gᵀ + I, then the stage coupling.
		var g [nv][nv]float64
		for i := 0; i < nv; i++ {
			for j := 0; j < nv; j++ {
				g[i][j] = rng.unit()
			}
		}
		for i := 0; i < nv; i++ {
			for j := 0; j < nv; j++ {
				var acc float64
				for l := 0; l < nv; l++ {
					acc += g[i][l] * g[j][l]
				}
				if i == j {
					acc++
				}
				h.Set(o+i, o+j, acc*scale)
			}
		}
		if k > 0 {
			for i := 0; i < nv; i++ {
				for j := 0; j < nv; j++ {
					v := 0.3 * rng.unit() * scale
					h.Set(o+i, o-nv+j, v)
					h.Set(o-nv+j, o+i, v)
				}
			}
		}
	}
	if poison&pzZeroH != 0 {
		h.Zero()
	}
	if poison&pzNegBlock != 0 {
		o := (nst / 2) * nv
		for i := 0; i < nv; i++ {
			for j := 0; j < nv; j++ {
				h.Set(o+i, o+j, -h.At(o+i, o+j))
			}
		}
	}
	if poison&pzOutOfBand != 0 && nst >= 3 {
		h.Set(0, n-1, 1e-3)
		h.Set(n-1, 0, 1e-3)
	}
	c := make([]float64, n)
	for i := range c {
		c[i] = rng.unit()
	}
	aeq := mat.NewDense(meq, n)
	beq := make([]float64, meq)
	for k := 0; k < nst; k++ {
		lo := 0
		if k > 0 {
			lo = (k - 1) * nv
		}
		for j := lo; j < (k+1)*nv; j++ {
			aeq.Set(k, j, rng.unit())
		}
		beq[k] = 0.1 * rng.unit()
	}
	if poison&pzZeroEqRow != 0 {
		for j := 0; j < n; j++ {
			aeq.Set(meq-1, j, 0)
		}
		beq[meq-1] = 0
	}
	ain := mat.NewDense(min, n)
	bin := make([]float64, min)
	for k := 0; k < nst; k++ {
		for r := 0; r < ni; r++ {
			row := k*ni + r
			lo := 0
			if k > 0 {
				lo = (k - 1) * nv
			}
			for j := lo; j < (k+1)*nv; j++ {
				ain.Set(row, j, rng.unit())
			}
			bin[row] = 1 + rng.unit() // slack at x = 0
		}
	}
	if poison&pzDupRow != 0 && min >= 2 {
		for j := 0; j < n; j++ {
			ain.Set(1, j, ain.At(0, j))
		}
		bin[1] = bin[0]
	}
	return &Problem{
		H: h, C: c, Aeq: aeq, Beq: beq, Ain: ain, Bin: bin,
		Stages: UniformStages(nst, nv, ne, ni),
	}
}

// FuzzStageKKT throws seeded stage-structured QPs — including
// ill-conditioned, non-SPD, degenerate, and band-violating ones — at the
// structured backend. Properties: Solve never panics, an Optimal status
// always carries a finite X, a band-violating problem never reports
// Structured (the fallback is silent but honest), and whatever the
// structured attempt decides, the dense backend on the same problem also
// returns without panicking.
func FuzzStageKKT(f *testing.F) {
	f.Add(uint64(1), uint8(3), 1.0, uint8(0))
	f.Add(uint64(2), uint8(5), 1.0, uint8(pzZeroH))
	f.Add(uint64(3), uint8(4), 1.0, uint8(pzNegBlock))
	f.Add(uint64(4), uint8(4), 1.0, uint8(pzDupRow))
	f.Add(uint64(5), uint8(4), 1.0, uint8(pzOutOfBand))
	f.Add(uint64(6), uint8(3), 1e150, uint8(pzHugeScale))
	f.Add(uint64(7), uint8(3), 1e-150, uint8(pzTinyScale))
	f.Add(uint64(8), uint8(6), 1.0, uint8(pzNegBlock|pzDupRow|pzZeroEqRow))
	f.Add(uint64(9), uint8(12), 1.0, uint8(0))

	f.Fuzz(func(t *testing.T, seed uint64, nstRaw uint8, scale float64, poison uint8) {
		nst := 2 + int(nstRaw)%11 // 2..12 stages
		if math.IsNaN(scale) || math.IsInf(scale, 0) {
			scale = 1
		}
		if poison&pzHugeScale != 0 {
			scale *= 1e150
		}
		if poison&pzTinyScale != 0 {
			scale *= 1e-150
		}
		p := buildStageQP(seed, nst, scale, poison)

		res, err := Solve(p, Options{MaxIter: 40})
		if err == nil {
			if res.Status == Optimal && !mat.AllFinite(res.X) {
				t.Fatalf("Optimal status with non-finite X = %v", res.X)
			}
			if poison&pzOutOfBand != 0 && nst >= 3 && res.Structured {
				t.Fatalf("band-violating problem reported Structured")
			}
		}

		// The dense reference must accept/reject the same data without
		// panicking either; its Structured flag must stay false.
		dres, derr := Solve(p, Options{MaxIter: 40, Backend: BackendDense})
		if derr == nil && dres.Structured {
			t.Fatalf("BackendDense reported Structured")
		}
		_ = err
	})
}
