package qp

import (
	"math"
	"math/rand"
	"testing"

	"evclimate/internal/mat"
)

// randomQP builds a strictly convex QP with box inequalities and an
// optional equality row, feasible by construction.
func randomQP(rng *rand.Rand, n int, withEq bool) *Problem {
	g := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			g.Set(i, j, rng.NormFloat64())
		}
	}
	h := g.T().Mul(g)
	for i := 0; i < n; i++ {
		h.Add(i, i, 1)
	}
	c := make([]float64, n)
	for i := range c {
		c[i] = rng.NormFloat64()
	}
	ain := mat.NewDense(2*n, n)
	bin := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		ain.Set(i, i, 1)
		bin[i] = 2 + rng.Float64()
		ain.Set(n+i, i, -1)
		bin[n+i] = 2 + rng.Float64()
	}
	p := &Problem{H: h, C: c, Ain: ain, Bin: bin}
	if withEq {
		row := make([]float64, n)
		for i := range row {
			row[i] = 1
		}
		p.Aeq = mat.FromRows([][]float64{row})
		p.Beq = []float64{0.5}
	}
	return p
}

// bits64 compares two vectors to the last bit.
func bits64(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// A reused workspace must not change a single bit of any result relative
// to the allocating path, across problems of several shapes solved
// back-to-back through the same workspace.
func TestWorkspaceReuseBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ws := NewWorkspace()
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(12)
		p := randomQP(rng, n, trial%2 == 0)
		ref, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: allocating solve: %v", trial, err)
		}
		got, err := Solve(p, Options{Work: ws})
		if err != nil {
			t.Fatalf("trial %d: workspace solve: %v", trial, err)
		}
		if got.Status != ref.Status || got.Iterations != ref.Iterations {
			t.Fatalf("trial %d: status/iters (%v, %d) != (%v, %d)",
				trial, got.Status, got.Iterations, ref.Status, ref.Iterations)
		}
		if !bits64(got.X, ref.X) {
			t.Fatalf("trial %d: X differs bitwise", trial)
		}
		if !bits64(got.EqDuals, ref.EqDuals) || !bits64(got.InDuals, ref.InDuals) {
			t.Fatalf("trial %d: duals differ bitwise", trial)
		}
		if math.Float64bits(got.Objective) != math.Float64bits(ref.Objective) {
			t.Fatalf("trial %d: objective differs bitwise", trial)
		}
	}
}

// Warm solves through a sized workspace are allocation-free — the MPC
// re-solves an identically-shaped subproblem every SQP iteration.
func TestWarmSolveNoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	p := randomQP(rng, 20, true)
	ws := NewWorkspace()
	opt := Options{Work: ws}
	if _, err := Solve(p, opt); err != nil { // size the workspace
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := Solve(p, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm qp.Solve allocates %v objects/op, want 0", allocs)
	}
}

// The equality-only shortcut shares the workspace's dense KKT buffers.
func TestWarmEqualityOnlySolveNoAllocs(t *testing.T) {
	p := &Problem{
		H:   mat.Identity(4),
		C:   []float64{1, -1, 2, -2},
		Aeq: mat.FromRows([][]float64{{1, 1, 1, 1}}),
		Beq: []float64{1},
	}
	ws := NewWorkspace()
	opt := Options{Work: ws}
	if _, err := Solve(p, opt); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := Solve(p, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm equality-only qp.Solve allocates %v objects/op, want 0", allocs)
	}
}
