package qp

import (
	"math"
	"testing"

	"evclimate/internal/mat"
)

// FuzzSolve throws arbitrary 2-variable problems — including non-finite,
// indefinite, and inconsistent data — at the interior-point solver. The
// properties under test: Solve never panics, structurally invalid data is
// rejected as an error (never iterated on), and an Optimal status always
// carries a finite solution.
func FuzzSolve(f *testing.F) {
	// Seed corpus: a well-posed QP, an infeasible one, degenerate zeros,
	// non-finite poison in each block, and extreme scales.
	f.Add(2.0, 0.0, 2.0, 1.0, 1.0, 1.0, 1.0, 1.0, uint8(0))
	f.Add(2.0, 0.0, 2.0, 1.0, 1.0, 1.0, 1.0, -5.0, uint8(3))
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, uint8(3))
	f.Add(math.NaN(), 0.0, 2.0, 1.0, 1.0, 1.0, 1.0, 1.0, uint8(0))
	f.Add(2.0, 0.0, 2.0, math.Inf(1), 1.0, 1.0, 1.0, 1.0, uint8(1))
	f.Add(2.0, 0.0, 2.0, 1.0, 1.0, math.NaN(), 1.0, 1.0, uint8(2))
	f.Add(-4.0, 1.0, -4.0, 1.0, -1.0, 0.5, -0.5, 2.0, uint8(3))
	f.Add(1e300, 0.0, 1e-300, 1e150, -1e150, 1e10, -1e10, 1e-10, uint8(3))

	f.Fuzz(func(t *testing.T, h00, h01, h11, c0, c1, a0, a1, b0 float64, flags uint8) {
		p := &Problem{
			H: mat.FromRows([][]float64{{h00, h01}, {h01, h11}}),
			C: []float64{c0, c1},
		}
		if flags&1 != 0 {
			p.Aeq = mat.FromRows([][]float64{{a0, a1}})
			p.Beq = []float64{b0}
		}
		if flags&2 != 0 {
			p.Ain = mat.FromRows([][]float64{{a1, a0}})
			p.Bin = []float64{b0}
		}

		hasNonFinite := false
		for _, v := range []float64{h00, h01, h11, c0, c1} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				hasNonFinite = true
			}
		}
		// Constraint data only invalidates the problem when a constraint
		// block actually uses it.
		if flags&3 != 0 {
			for _, v := range []float64{a0, a1, b0} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					hasNonFinite = true
				}
			}
		}

		res, err := Solve(p, Options{MaxIter: 30})
		if hasNonFinite && err == nil {
			t.Fatalf("non-finite problem accepted: %+v", p)
		}
		if err != nil {
			return
		}
		if res.Status == Optimal && !mat.AllFinite(res.X) {
			t.Fatalf("Optimal status with non-finite X = %v", res.X)
		}
	})
}
