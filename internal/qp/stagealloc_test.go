package qp

import (
	"math/rand"
	"testing"
)

// Warm solves through the structured backend are allocation-free, same
// contract as the dense path (TestWarmSolveNoAllocs): every control step
// the MPC re-solves an identically-shaped stage QP on the same arena.
func TestStructuredWarmSolveNoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p, _ := randStageQP(rng, 8, 0)
	ws := NewWorkspace()
	opt := Options{Work: ws}
	res, err := Solve(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Structured {
		t.Fatal("stage QP did not take the structured path")
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := Solve(p, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm structured qp.Solve allocates %v objects/op, want 0", allocs)
	}
}

// The very first solve through a NewWorkspaceFor-sized workspace is
// allocation-free: pre-sizing moves every buffer acquisition out of the
// solve path, so a controller can allocate at construction and then run
// its first control step on the real-time path. AllocsPerRun burns its
// warm-up call on a fresh workspace too, so every measured call is a
// true first solve.
func TestNewWorkspaceForFirstSolveNoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, tc := range []struct {
		name       string
		structured bool
	}{
		{"structured", true},
		{"dense", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, _ := randStageQP(rng, 6, 0)
			if !tc.structured {
				p.Stages = nil
			}
			const runs = 50
			wss := make([]*Workspace, runs+1)
			for i := range wss {
				wss[i] = NewWorkspaceFor(p)
			}
			i := 0
			allocs := testing.AllocsPerRun(runs, func() {
				if _, err := Solve(p, Options{Work: wss[i]}); err != nil {
					t.Fatal(err)
				}
				i++
			})
			if allocs != 0 {
				t.Fatalf("first solve through NewWorkspaceFor allocates %v objects/op, want 0", allocs)
			}
		})
	}
}

// Transitioning between the structured path and the dense fallback (a
// band violation appears, then clears) is allocation-free end to end
// once both paths are sized — the demotion an MPC might hit mid-drive
// must not wake the allocator on the real-time path.
func TestStructuredFallbackTransitionNoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	p, _ := randStageQP(rng, 6, 0)
	n, _ := p.H.Dims()
	ws := NewWorkspaceFor(p)
	opt := Options{Work: ws}

	poison := func(on bool) {
		v := 0.0
		if on {
			v = 1e-3
		}
		p.H.Set(0, n-1, v)
		p.H.Set(n-1, 0, v)
	}
	// Size both paths: one structured solve, one band-violating solve.
	for _, on := range []bool{false, true} {
		poison(on)
		res, err := Solve(p, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Structured == on {
			t.Fatalf("poison=%v: Structured=%v", on, res.Structured)
		}
	}
	flip := false
	allocs := testing.AllocsPerRun(50, func() {
		flip = !flip
		poison(flip)
		if _, err := Solve(p, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("structured↔dense transition allocates %v objects/op, want 0", allocs)
	}
}
