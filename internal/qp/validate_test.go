package qp

import (
	"errors"
	"math"
	"testing"

	"evclimate/internal/mat"
)

func TestValidateRejectsNonFiniteMatrices(t *testing.T) {
	base := func() *Problem {
		return &Problem{
			H:   mat.FromRows([][]float64{{2, 0}, {0, 2}}),
			C:   []float64{1, 1},
			Aeq: mat.FromRows([][]float64{{1, 1}}),
			Beq: []float64{1},
			Ain: mat.FromRows([][]float64{{1, 0}}),
			Bin: []float64{2},
		}
	}

	cases := []struct {
		name   string
		poison func(p *Problem)
	}{
		{"NaN in H", func(p *Problem) { p.H.Set(0, 1, math.NaN()) }},
		{"Inf in H", func(p *Problem) { p.H.Set(1, 1, math.Inf(1)) }},
		{"NaN in Aeq", func(p *Problem) { p.Aeq.Set(0, 0, math.NaN()) }},
		{"Inf in Ain", func(p *Problem) { p.Ain.Set(0, 1, math.Inf(-1)) }},
		{"NaN in C", func(p *Problem) { p.C[0] = math.NaN() }},
		{"NaN in Beq", func(p *Problem) { p.Beq[0] = math.NaN() }},
		{"Inf in Bin", func(p *Problem) { p.Bin[0] = math.Inf(1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base()
			tc.poison(p)
			_, err := Solve(p, Options{})
			if !errors.Is(err, ErrBadProblem) {
				t.Fatalf("err = %v, want ErrBadProblem", err)
			}
		})
	}

	// The clean problem must still solve.
	if _, err := Solve(base(), Options{}); err != nil {
		t.Fatalf("clean problem rejected: %v", err)
	}
}
