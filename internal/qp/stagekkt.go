package qp

import "evclimate/internal/mat"

// stageKKT is the stage-structured interior-point KKT backend. For a
// problem declaring a conforming StageStructure it solves the same
// regularized Newton system as the dense kktFactor path,
//
//	[ H + AinᵀD Ain + regI    Aeqᵀ  ] [dx]   [r1]
//	[ Aeq                    −regI  ] [dy] = [r2]
//
// but permuted into stage-interleaved order [v_0, e_0, v_1, e_1, …],
// where it is symmetric block-tridiagonal with superblocks of size
// NV[k]+NE[k]. The permuted matrix is symmetric quasi-definite (K-block
// SPD, −regI dual block), so the unpivoted block LDLᵀ recursion in
// mat.BlockTriDiag factors it stably with a known pivot sign pattern;
// a sign violation (numerically lost quasi-definiteness under extreme
// barrier weights) surfaces as an error and the caller demotes to the
// dense path for the remainder of the solve. Because the same static
// regularization is used, the structured and dense paths solve the
// identical linear system and agree to roundoff.
//
// The backend also provides banded matrix-vector products restricted to
// each stage's support window; without them the dense residual matvecs
// would dominate once the factorization is cheap.
//
// All storage lives in the struct and is reused across iterations and
// Solve calls — allocation-free once sized.
type stageKKT struct {
	n, meq, min int
	nst         int
	nv, ne, ni  []int // per-stage counts (copied from the declaration)
	voff        []int // variable offset per stage, len nst+1
	eoff        []int // equality-row offset per stage
	ioff        []int // inequality-row offset per stage

	diag  []*mat.Dense // assembled superblocks (lower triangle)
	sub   []*mat.Dense // sub-diagonal coupling blocks
	signs []int8       // quasi-definite pivot sign pattern
	bt    mat.BlockTriDiag

	pvar, peq  []int // dense index → permuted index
	prhs, psol []float64
}

// ensure sizes the backend for the given structure and problem
// dimensions. It is cheap when the stage dimensions are unchanged.
func (f *stageKKT) ensure(ss *StageStructure, n, meq, min int) {
	nst := ss.Stages()
	if f.n == n && f.meq == meq && f.min == min && f.nst == nst && f.prhs != nil {
		same := true
		for k := 0; k < nst; k++ {
			if f.nv[k] != ss.NV[k] || f.ne[k] != ss.NE[k] || f.ni[k] != ss.NI[k] {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	f.n, f.meq, f.min, f.nst = n, meq, min, nst
	f.nv = append(f.nv[:0], ss.NV...)
	f.ne = append(f.ne[:0], ss.NE...)
	f.ni = append(f.ni[:0], ss.NI...)
	f.voff = make([]int, nst+1)
	f.eoff = make([]int, nst+1)
	f.ioff = make([]int, nst+1)
	for k := 0; k < nst; k++ {
		f.voff[k+1] = f.voff[k] + f.nv[k]
		f.eoff[k+1] = f.eoff[k] + f.ne[k]
		f.ioff[k+1] = f.ioff[k] + f.ni[k]
	}
	f.diag = make([]*mat.Dense, nst)
	f.sub = make([]*mat.Dense, nst)
	f.signs = make([]int8, n+meq)
	f.pvar = make([]int, n)
	f.peq = make([]int, meq)
	dims := make([]int, nst)
	p := 0
	for k := 0; k < nst; k++ {
		m := f.nv[k] + f.ne[k]
		dims[k] = m
		f.diag[k] = mat.NewDense(m, m)
		if k > 0 {
			f.sub[k] = mat.NewDense(m, dims[k-1])
		}
		for i := 0; i < f.nv[k]; i++ {
			f.signs[p+i] = 1
			f.pvar[f.voff[k]+i] = p + i
		}
		for j := 0; j < f.ne[k]; j++ {
			f.signs[p+f.nv[k]+j] = -1
			f.peq[f.eoff[k]+j] = p + f.nv[k] + j
		}
		p += m
	}
	f.bt.Reserve(dims)
	f.prhs = make([]float64, n+meq)
	f.psol = make([]float64, n+meq)
}

// loV returns the lower bound of stage k's constraint-support window
// (stage k rows may touch the variables of stages k−1 and k).
func (f *stageKKT) loV(k int) int {
	if k == 0 {
		return 0
	}
	return f.voff[k-1]
}

// hiH returns the upper bound of stage k's Hessian band window (H rows
// of stage k may additionally touch stage k+1, by symmetry).
func (f *stageKKT) hiH(k int) int {
	if k+2 > f.nst {
		return f.voff[f.nst]
	}
	return f.voff[k+2]
}

// conforms scans the out-of-band entries of H, Aeq, and Ain and reports
// whether the declared structural contract actually holds for the
// problem data. A false return means the caller must use the dense path.
func (f *stageKKT) conforms(p *Problem) bool {
	for k := 0; k < f.nst; k++ {
		lo, hiB := f.loV(k), f.hiH(k)
		for i := f.voff[k]; i < f.voff[k+1]; i++ {
			row := p.H.RawRow(i)
			if !allZero(row[:lo]) || !allZero(row[hiB:]) {
				return false
			}
		}
		hi := f.voff[k+1]
		for r := f.eoff[k]; r < f.eoff[k+1]; r++ {
			row := p.Aeq.RawRow(r)
			if !allZero(row[:lo]) || !allZero(row[hi:]) {
				return false
			}
		}
		for r := f.ioff[k]; r < f.ioff[k+1]; r++ {
			row := p.Ain.RawRow(r)
			if !allZero(row[:lo]) || !allZero(row[hi:]) {
				return false
			}
		}
	}
	return true
}

func allZero(v []float64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// assemble fills the superblocks from H, Aeq, and the barrier weights
// d_r = z[r]/s[r] of the inequality rows. Only the lower triangle of
// each diagonal block is written (all the factorization reads).
func (f *stageKKT) assemble(p *Problem, z, s []float64, reg float64) {
	for k := 0; k < f.nst; k++ {
		nv, vo := f.nv[k], f.voff[k]
		blk := f.diag[k].Zero()
		// K diagonal block: H[v_k, v_k] + reg·I.
		for i := 0; i < nv; i++ {
			hrow := p.H.RawRow(vo + i)
			brow := blk.RawRow(i)
			for j := 0; j <= i; j++ {
				brow[j] = hrow[vo+j]
			}
			brow[i] += reg
		}
		// Equality rows of stage k restricted to stage-k variables, and
		// the −reg dual diagonal.
		for e := 0; e < f.ne[k]; e++ {
			arow := p.Aeq.RawRow(f.eoff[k] + e)
			brow := blk.RawRow(nv + e)
			copy(brow[:nv], arow[vo:vo+nv])
			brow[nv+e] = -reg
		}
		if k > 0 {
			nvp, vop := f.nv[k-1], f.voff[k-1]
			cb := f.sub[k].Zero()
			// K coupling block H[v_k, v_{k−1}].
			for i := 0; i < nv; i++ {
				hrow := p.H.RawRow(vo + i)
				copy(cb.RawRow(i)[:nvp], hrow[vop:vop+nvp])
			}
			// Equality rows of stage k restricted to stage-(k−1)
			// variables. (Stage-(k−1) rows cannot touch stage-k
			// variables under the backward-support contract, so the
			// dual columns of the coupling block stay zero.)
			for e := 0; e < f.ne[k]; e++ {
				arow := p.Aeq.RawRow(f.eoff[k] + e)
				copy(cb.RawRow(nv + e)[:nvp], arow[vop:vop+nvp])
			}
		}
	}
	// Barrier terms: each inequality row r in stage k contributes the
	// rank-one update d_r·a·aᵀ over its support window, split between
	// the two diagonal blocks and the coupling block it straddles.
	for k := 0; k < f.nst; k++ {
		lo, vo := f.loV(k), f.voff[k]
		hi := f.voff[k+1]
		var dk, dkp, ck *mat.Dense
		dk = f.diag[k]
		if k > 0 {
			dkp = f.diag[k-1]
			ck = f.sub[k]
		}
		vop := lo
		for r := f.ioff[k]; r < f.ioff[k+1]; r++ {
			d := z[r] / s[r]
			arow := p.Ain.RawRow(r)[lo:hi]
			for i, ai := range arow {
				if ai == 0 {
					continue
				}
				a := lo + i
				for j, aj := range arow[:i+1] {
					if aj == 0 {
						continue
					}
					b := lo + j
					v := d * ai * aj
					switch {
					case b >= vo:
						dk.Add(a-vo, b-vo, v)
					case a >= vo:
						ck.Add(a-vo, b-vop, v)
					default:
						dkp.Add(a-vop, b-vop, v)
					}
				}
			}
		}
	}
}

// factorize runs the block LDLᵀ recursion on the assembled blocks. A
// non-nil error means quasi-definiteness was lost numerically; the
// caller falls back to the dense path.
func (f *stageKKT) factorize() error {
	return f.bt.Factorize(f.diag, f.sub, f.signs)
}

// solveInto solves the KKT system for right-hand sides r1 (length n) and
// r2 (length meq) into dx, dy, permuting through the stage ordering.
func (f *stageKKT) solveInto(r1, r2, dx, dy []float64) {
	for i, p := range f.pvar {
		f.prhs[p] = r1[i]
	}
	for r, p := range f.peq {
		f.prhs[p] = r2[r]
	}
	f.bt.SolveInto(f.prhs, f.psol)
	for i, p := range f.pvar {
		dx[i] = f.psol[p]
	}
	for r, p := range f.peq {
		dy[r] = f.psol[p]
	}
}

// mulH computes dst = H·x exploiting the block-tridiagonal band.
func (f *stageKKT) mulH(h *mat.Dense, x, dst []float64) []float64 {
	for k := 0; k < f.nst; k++ {
		lo, hi := f.loV(k), f.hiH(k)
		xw := x[lo:hi]
		for i := f.voff[k]; i < f.voff[k+1]; i++ {
			row := h.RawRow(i)[lo:hi]
			var acc float64
			for j, v := range row {
				acc += v * xw[j]
			}
			dst[i] = acc
		}
	}
	return dst
}

// mulA computes dst = A·x for a stage-partitioned constraint matrix
// (roff = f.eoff for Aeq, f.ioff for Ain).
func (f *stageKKT) mulA(a *mat.Dense, roff []int, x, dst []float64) []float64 {
	for k := 0; k < f.nst; k++ {
		lo, hi := f.loV(k), f.voff[k+1]
		xw := x[lo:hi]
		for r := roff[k]; r < roff[k+1]; r++ {
			row := a.RawRow(r)[lo:hi]
			var acc float64
			for j, v := range row {
				acc += v * xw[j]
			}
			dst[r] = acc
		}
	}
	return dst
}

// mulAT computes dst = Aᵀ·y for a stage-partitioned constraint matrix.
func (f *stageKKT) mulAT(a *mat.Dense, roff []int, y, dst []float64) []float64 {
	for i := range dst {
		dst[i] = 0
	}
	for k := 0; k < f.nst; k++ {
		lo, hi := f.loV(k), f.voff[k+1]
		dw := dst[lo:hi]
		for r := roff[k]; r < roff[k+1]; r++ {
			yr := y[r]
			if yr == 0 {
				continue
			}
			row := a.RawRow(r)[lo:hi]
			for j, v := range row {
				dw[j] += v * yr
			}
		}
	}
	return dst
}
