package powertrain

import (
	"fmt"
	"math"

	"evclimate/internal/units"
)

// EfficiencyMap models the motor efficiency η_m as a function of the
// operating point, represented as a grid over vehicle speed (m/s) and
// mechanical power fraction |P|/P_rated with bilinear interpolation —
// the "components' efficiency map" the paper's BMS consults. Queries
// outside the grid clamp to the boundary.
type EfficiencyMap struct {
	// SpeedsMs are the grid speeds, strictly increasing.
	SpeedsMs []float64
	// LoadFracs are the grid |P|/P_rated values, strictly increasing.
	LoadFracs []float64
	// Eta[i][j] is the efficiency at SpeedsMs[i], LoadFracs[j]; all in
	// (0, 1].
	Eta [][]float64
	// RatedPowerW normalizes the power axis.
	RatedPowerW float64
}

// Validate checks the grid structure.
func (m *EfficiencyMap) Validate() error {
	if len(m.SpeedsMs) < 2 || len(m.LoadFracs) < 2 {
		return fmt.Errorf("powertrain: efficiency map needs ≥ 2×2 grid")
	}
	if m.RatedPowerW <= 0 {
		return fmt.Errorf("powertrain: efficiency map rated power must be positive")
	}
	for i := 1; i < len(m.SpeedsMs); i++ {
		if m.SpeedsMs[i] <= m.SpeedsMs[i-1] {
			return fmt.Errorf("powertrain: efficiency map speeds not increasing")
		}
	}
	for j := 1; j < len(m.LoadFracs); j++ {
		if m.LoadFracs[j] <= m.LoadFracs[j-1] {
			return fmt.Errorf("powertrain: efficiency map load fractions not increasing")
		}
	}
	if len(m.Eta) != len(m.SpeedsMs) {
		return fmt.Errorf("powertrain: efficiency map rows %d != speeds %d", len(m.Eta), len(m.SpeedsMs))
	}
	for i, row := range m.Eta {
		if len(row) != len(m.LoadFracs) {
			return fmt.Errorf("powertrain: efficiency map row %d has %d cols, want %d", i, len(row), len(m.LoadFracs))
		}
		for j, v := range row {
			if v <= 0 || v > 1 {
				return fmt.Errorf("powertrain: efficiency map [%d][%d] = %v outside (0, 1]", i, j, v)
			}
		}
	}
	return nil
}

// At returns η_m at vehicle speed v (m/s) and mechanical power pMech (W,
// sign ignored), clamping to the grid boundary.
func (m *EfficiencyMap) At(v, pMech float64) float64 {
	if pMech < 0 {
		pMech = -pMech
	}
	frac := pMech / m.RatedPowerW
	i, wi := gridIndex(m.SpeedsMs, v)
	j, wj := gridIndex(m.LoadFracs, frac)
	e00 := m.Eta[i][j]
	e01 := m.Eta[i][j+1]
	e10 := m.Eta[i+1][j]
	e11 := m.Eta[i+1][j+1]
	return units.Lerp(units.Lerp(e00, e01, wj), units.Lerp(e10, e11, wj), wi)
}

// gridIndex returns the lower cell index and interpolation weight for x in
// the grid, clamped to the boundary cells.
func gridIndex(grid []float64, x float64) (int, float64) {
	n := len(grid)
	if x <= grid[0] {
		return 0, 0
	}
	if x >= grid[n-1] {
		return n - 2, 1
	}
	for i := 0; i < n-1; i++ {
		if x <= grid[i+1] {
			return i, (x - grid[i]) / (grid[i+1] - grid[i])
		}
	}
	return n - 2, 1
}

// DefaultLeafEfficiency builds the 80 kW PM-synchronous-motor map used by
// the Nissan Leaf parameter set: efficiency peaks around mid speed and
// mid-to-high load (≈ 0.93) and falls off at very low speed (high-slip,
// inverter-dominated losses) and very light load.
func DefaultLeafEfficiency() *EfficiencyMap {
	speeds := []float64{0, 3, 8, 15, 25, 40}
	loads := []float64{0, 0.05, 0.15, 0.35, 0.65, 1.0}
	peak := 0.93
	eta := make([][]float64, len(speeds))
	for i, v := range speeds {
		eta[i] = make([]float64, len(loads))
		for j, f := range loads {
			// Speed factor: poor at standstill, best near 15–25 m/s.
			sf := 1 - 0.25*gauss(v, 0, 6) - 0.05*gauss(v, 40, 25)
			// Load factor: light loads are inefficient, best near 50 %.
			lf := 1 - 0.45*gauss(f, 0, 0.08) - 0.04*gauss(f, 1, 0.8)
			e := peak * sf * lf
			if e < 0.05 {
				e = 0.05
			}
			eta[i][j] = e
		}
	}
	return &EfficiencyMap{SpeedsMs: speeds, LoadFracs: loads, Eta: eta, RatedPowerW: 80e3}
}

// gauss is an unnormalized Gaussian bump used to shape the default map.
func gauss(x, mu, sigma float64) float64 {
	d := (x - mu) / sigma
	return math.Exp(-d * d / 2)
}
