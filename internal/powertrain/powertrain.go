// Package powertrain implements the EV longitudinal power-train model of
// paper Sec. II-B: road-load forces (aerodynamic drag, gravity, rolling
// resistance, Eqs. 1–4), tractive force (Eq. 5), and electrical motor
// power with an efficiency map and regenerative braking (Eq. 6). The
// default parameter set follows the Nissan Leaf specification the paper
// calibrated against [12].
package powertrain

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"evclimate/internal/drivecycle"
	"evclimate/internal/units"
)

// Params defines a vehicle power train.
type Params struct {
	// MassKg is the total vehicle mass including payload.
	MassKg float64
	// Cx is the aerodynamic drag coefficient.
	Cx float64
	// FrontalAreaM2 is the effective frontal area A in m².
	FrontalAreaM2 float64
	// AirDensity is ρ_air in kg/m³.
	AirDensity float64
	// C0 and C1 are the rolling-resistance coefficients of Eq. 4:
	// F_roll = m·g·(c0 + c1·v²).
	C0, C1 float64
	// MaxMotorPowerW is the peak electrical motor power (motoring).
	MaxMotorPowerW float64
	// MaxRegenPowerW is the maximum electrical power recovered during
	// regenerative braking (a positive number).
	MaxRegenPowerW float64
	// Efficiency maps operating point to motor efficiency η_m.
	Efficiency *EfficiencyMap
	// AccessoryW is the constant accessory load (infotainment, pumps,
	// 12 V systems) the paper treats as fixed.
	AccessoryW float64
}

// Validate reports structurally invalid parameters.
func (p *Params) Validate() error {
	switch {
	case p.MassKg <= 0:
		return fmt.Errorf("powertrain: mass %v must be positive", p.MassKg)
	case p.Cx <= 0 || p.FrontalAreaM2 <= 0:
		return fmt.Errorf("powertrain: drag parameters must be positive")
	case p.AirDensity <= 0:
		return fmt.Errorf("powertrain: air density %v must be positive", p.AirDensity)
	case p.C0 < 0 || p.C1 < 0:
		return errors.New("powertrain: rolling-resistance coefficients must be nonnegative")
	case p.MaxMotorPowerW <= 0:
		return errors.New("powertrain: max motor power must be positive")
	case p.MaxRegenPowerW < 0:
		return errors.New("powertrain: max regen power must be nonnegative")
	case p.Efficiency == nil:
		return errors.New("powertrain: efficiency map required")
	}
	return p.Efficiency.Validate()
}

// NissanLeaf returns the parameter set used throughout the paper's
// experiments: a 2013 Nissan Leaf (1521 kg curb + 80 kg payload, Cx 0.29,
// A 2.27 m², 80 kW motor) with a PM-synchronous-motor efficiency map.
func NissanLeaf() Params {
	return Params{
		MassKg:         1601,
		Cx:             0.29,
		FrontalAreaM2:  2.27,
		AirDensity:     units.AirDensity,
		C0:             0.008,
		C1:             1.6e-6,
		MaxMotorPowerW: 80e3,
		MaxRegenPowerW: 30e3,
		Efficiency:     DefaultLeafEfficiency(),
		AccessoryW:     300,
	}
}

// Model evaluates the power-train equations for a parameter set.
type Model struct {
	p Params
}

// New builds a Model, validating the parameters.
func New(p Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{p: p}, nil
}

// Params returns the model parameters.
func (m *Model) Params() Params { return m.p }

// AeroDrag returns F_aero (Eq. 2) for vehicle speed v and headwind
// vwind, both m/s.
func (m *Model) AeroDrag(v, vwind float64) float64 {
	rel := v + vwind
	return 0.5 * m.p.AirDensity * m.p.Cx * m.p.FrontalAreaM2 * rel * rel * sign(rel)
}

// GravityForce returns F_gr (Eq. 3) for a road slope in percent.
func (m *Model) GravityForce(slopePercent float64) float64 {
	return m.p.MassKg * units.Gravity * math.Sin(units.SlopePercentToAngle(slopePercent))
}

// RollingResistance returns F_roll (Eq. 4); zero when the vehicle is
// stationary.
func (m *Model) RollingResistance(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return m.p.MassKg * units.Gravity * (m.p.C0 + m.p.C1*v*v)
}

// RoadLoad returns F_rd = F_gr + F_aero + F_roll (Eq. 1).
func (m *Model) RoadLoad(v, slopePercent, vwind float64) float64 {
	return m.GravityForce(slopePercent) + m.AeroDrag(v, vwind) + m.RollingResistance(v)
}

// TractiveForce returns F_tr = F_rd + m·a (Eq. 5).
func (m *Model) TractiveForce(v, accel, slopePercent, vwind float64) float64 {
	return m.RoadLoad(v, slopePercent, vwind) + m.p.MassKg*accel
}

// ElectricalPower returns the electrical motor power P_e (Eq. 6) in watts
// for a driving state. Positive values drain the battery; negative values
// (regenerative braking) charge it. Motoring power is limited to
// MaxMotorPowerW and recovered power to MaxRegenPowerW; braking demand
// beyond the regen limit is assumed to go to the friction brakes.
func (m *Model) ElectricalPower(v, accel, slopePercent, vwind float64) float64 {
	ftr := m.TractiveForce(v, accel, slopePercent, vwind)
	pMech := ftr * v
	eta := m.p.Efficiency.At(v, pMech)
	if pMech >= 0 {
		pe := pMech / eta
		return math.Min(pe, m.p.MaxMotorPowerW)
	}
	// Generator mode: only a fraction η of the mechanical braking power
	// comes back as electrical power.
	pe := pMech * eta
	if -pe > m.p.MaxRegenPowerW {
		pe = -m.p.MaxRegenPowerW
	}
	return pe
}

// PowerAt evaluates P_e for one drive-profile sample, including its
// headwind.
func (m *Model) PowerAt(s drivecycle.Sample) float64 {
	return m.ElectricalPower(s.Speed, s.Accel, s.SlopePercent, s.WindMs)
}

// PowerProfile returns P_e for every sample of a drive profile (paper
// Algorithm 1, lines 3–5). The result is memoized process-wide: sweep
// expansion rebuilds profiles and runners per job, but a grid's jobs
// share a handful of (powertrain, motion trace) bases and P_e depends on
// nothing else — so repeated sweeps hit the cache instead of re-running
// the powertrain model over the cycle. Callers must treat the returned
// slice as read-only (the simulation paths only ever sample it).
func (m *Model) PowerProfile(p *drivecycle.Profile) []float64 {
	if out := lookupPowerProfile(m.p, p); out != nil {
		return out
	}
	out := make([]float64, p.Len())
	for i, s := range p.Samples {
		out[i] = m.PowerAt(s)
	}
	storePowerProfile(m.p, p, out)
	return out
}

// powerProfileCache holds the memoized PowerProfile results, most
// recently used first. Lookups verify the full motion trace against the
// stored copy — no hashing, so a hit is exact by construction, never
// probabilistic. Params is comparable (the efficiency map enters by
// pointer), which also means an efficiency map mutated in place after a
// cache fill would alias stale powers; the model treats maps as
// immutable after construction.
var powerProfileCache struct {
	sync.Mutex
	entries []*powerProfileEntry
}

// powerProfileCacheMax bounds the cache; a sweep grid reuses a few
// cycle × powertrain bases, so a small MRU list captures them.
const powerProfileCacheMax = 8

type powerProfileEntry struct {
	params Params
	dt     float64
	motion []motionPoint
	power  []float64
}

// motionPoint is the subset of a profile sample PowerAt reads.
type motionPoint struct{ speed, accel, slope, wind float64 }

func (e *powerProfileEntry) matches(params Params, p *drivecycle.Profile) bool {
	if e.params != params || e.dt != p.Dt || len(e.motion) != len(p.Samples) {
		return false
	}
	for i := range e.motion {
		s, q := &p.Samples[i], &e.motion[i]
		if q.speed != s.Speed || q.accel != s.Accel || q.slope != s.SlopePercent || q.wind != s.WindMs {
			return false
		}
	}
	return true
}

func lookupPowerProfile(params Params, p *drivecycle.Profile) []float64 {
	if len(p.Samples) == 0 {
		return nil
	}
	c := &powerProfileCache
	c.Lock()
	defer c.Unlock()
	for i, e := range c.entries {
		if e.matches(params, p) {
			copy(c.entries[1:i+1], c.entries[:i]) // move to front
			c.entries[0] = e
			return e.power
		}
	}
	return nil
}

func storePowerProfile(params Params, p *drivecycle.Profile, power []float64) {
	if len(p.Samples) == 0 {
		return
	}
	e := &powerProfileEntry{params: params, dt: p.Dt, motion: make([]motionPoint, len(p.Samples)), power: power}
	for i := range p.Samples {
		s := &p.Samples[i]
		e.motion[i] = motionPoint{s.Speed, s.Accel, s.SlopePercent, s.WindMs}
	}
	c := &powerProfileCache
	c.Lock()
	defer c.Unlock()
	if len(c.entries) < powerProfileCacheMax {
		c.entries = append(c.entries, nil)
	}
	copy(c.entries[1:], c.entries)
	c.entries[0] = e
}

// CycleEnergy summarizes the traction energy of a drive profile.
type CycleEnergy struct {
	// TractionKWh is the net electrical energy drawn by the motor
	// (consumption minus regeneration).
	TractionKWh float64
	// RegenKWh is the recovered braking energy.
	RegenKWh float64
	// AccessoryKWh is the constant accessory energy.
	AccessoryKWh float64
	// DistanceKm is the driven distance.
	DistanceKm float64
	// ConsumptionWhKm is (traction + accessory) energy per km.
	ConsumptionWhKm float64
	// PeakPowerW is the maximum instantaneous motor draw.
	PeakPowerW float64
}

// Energy integrates the motor power over a profile.
func (m *Model) Energy(p *drivecycle.Profile) CycleEnergy {
	var e CycleEnergy
	if p.Len() == 0 {
		return e
	}
	var tractionJ, regenJ float64
	for i, s := range p.Samples {
		pe := m.PowerAt(s)
		dt := p.Dt
		if i == p.Len()-1 {
			dt = 0
		}
		if pe >= 0 {
			tractionJ += pe * dt
		} else {
			regenJ += -pe * dt
		}
		if pe > e.PeakPowerW {
			e.PeakPowerW = pe
		}
	}
	dur := p.Duration()
	e.TractionKWh = units.JToKWh(tractionJ - regenJ)
	e.RegenKWh = units.JToKWh(regenJ)
	e.AccessoryKWh = units.JToKWh(m.p.AccessoryW * dur)
	e.DistanceKm = p.Stats().DistanceKm
	if e.DistanceKm > 0 {
		e.ConsumptionWhKm = (e.TractionKWh + e.AccessoryKWh) * 1000 / e.DistanceKm
	}
	return e
}

// RangeKm estimates driving range for a usable battery energy (kWh) plus
// a constant auxiliary load auxW (e.g. HVAC) by prorating the profile's
// per-km consumption, the estimation approach of [12].
func (m *Model) RangeKm(p *drivecycle.Profile, usableKWh, auxW float64) float64 {
	e := m.Energy(p)
	if e.DistanceKm <= 0 {
		return 0
	}
	avgSpeedMs := e.DistanceKm * 1000 / p.Duration()
	if avgSpeedMs <= 0 {
		return 0
	}
	auxWhKm := auxW / avgSpeedMs / 3.6 // W / (km/h) = Wh/km
	whPerKm := e.ConsumptionWhKm + auxWhKm
	if whPerKm <= 0 {
		return 0
	}
	return usableKWh * 1000 / whPerKm
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}
