package powertrain

import (
	"math"
	"testing"
	"testing/quick"

	"evclimate/internal/drivecycle"
	"evclimate/internal/units"
)

func leafModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(NissanLeaf())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestValidateCatchesBadParams(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.MassKg = 0 },
		func(p *Params) { p.Cx = -1 },
		func(p *Params) { p.FrontalAreaM2 = 0 },
		func(p *Params) { p.AirDensity = 0 },
		func(p *Params) { p.C0 = -0.1 },
		func(p *Params) { p.MaxMotorPowerW = 0 },
		func(p *Params) { p.MaxRegenPowerW = -1 },
		func(p *Params) { p.Efficiency = nil },
	}
	for i, mutate := range cases {
		p := NissanLeaf()
		mutate(&p)
		if _, err := New(p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestAeroDragQuadratic(t *testing.T) {
	m := leafModel(t)
	// Doubling speed quadruples drag.
	d1 := m.AeroDrag(10, 0)
	d2 := m.AeroDrag(20, 0)
	if math.Abs(d2/d1-4) > 1e-9 {
		t.Errorf("drag ratio = %v, want 4", d2/d1)
	}
	// Known value: ½·1.204·0.29·2.27·20² = 158.5 N.
	want := 0.5 * 1.204 * 0.29 * 2.27 * 400
	if math.Abs(d2-want) > 0.1 {
		t.Errorf("drag at 20 m/s = %v, want %v", d2, want)
	}
	// Headwind adds to the relative speed.
	if m.AeroDrag(10, 5) <= m.AeroDrag(10, 0) {
		t.Error("headwind did not increase drag")
	}
	// Strong tailwind can make drag negative (pushes the car).
	if m.AeroDrag(5, -20) >= 0 {
		t.Error("tailwind drag should be negative")
	}
}

func TestGravityForce(t *testing.T) {
	m := leafModel(t)
	if g := m.GravityForce(0); g != 0 {
		t.Errorf("flat-road gravity force = %v", g)
	}
	// 100 % slope = 45°: F = m·g·sin(45°).
	want := 1601 * units.Gravity * math.Sin(math.Pi/4)
	if g := m.GravityForce(100); math.Abs(g-want) > 1e-6 {
		t.Errorf("45° gravity force = %v, want %v", g, want)
	}
	// Downhill is negative (antisymmetric).
	if m.GravityForce(-5) != -m.GravityForce(5) {
		t.Error("gravity force not antisymmetric")
	}
}

func TestRollingResistance(t *testing.T) {
	m := leafModel(t)
	if r := m.RollingResistance(0); r != 0 {
		t.Errorf("rolling resistance at standstill = %v", r)
	}
	// At low speed ≈ m·g·c0.
	want := 1601 * units.Gravity * 0.008
	if r := m.RollingResistance(0.1); math.Abs(r-want) > 1 {
		t.Errorf("rolling resistance = %v, want ≈ %v", r, want)
	}
	if m.RollingResistance(30) <= m.RollingResistance(10) {
		t.Error("rolling resistance must grow with speed (c1 term)")
	}
}

func TestTractiveForceNewton(t *testing.T) {
	m := leafModel(t)
	// F_tr − F_rd = m·a exactly (Eq. 5).
	v, slope := 15.0, 2.0
	frd := m.RoadLoad(v, slope, 0)
	for _, a := range []float64{-2, 0, 1.5} {
		ftr := m.TractiveForce(v, a, slope, 0)
		if math.Abs(ftr-frd-1601*a) > 1e-9 {
			t.Errorf("a=%v: F_tr − F_rd = %v, want %v", a, ftr-frd, 1601*a)
		}
	}
}

func TestElectricalPowerSignsAndLimits(t *testing.T) {
	m := leafModel(t)
	// Cruising consumes power.
	if p := m.ElectricalPower(25, 0, 0, 0); p <= 0 {
		t.Errorf("cruise power = %v, want > 0", p)
	}
	// Hard braking regenerates (negative) but no more than the limit.
	p := m.ElectricalPower(25, -3, 0, 0)
	if p >= 0 {
		t.Errorf("braking power = %v, want < 0", p)
	}
	if -p > m.Params().MaxRegenPowerW+1e-9 {
		t.Errorf("regen power %v exceeds limit %v", -p, m.Params().MaxRegenPowerW)
	}
	// Full-throttle uphill cannot exceed the motor rating.
	if p := m.ElectricalPower(30, 3, 10, 0); p > m.Params().MaxMotorPowerW+1e-9 {
		t.Errorf("motor power %v exceeds rating", p)
	}
	// Standstill on flat ground: zero traction power.
	if p := m.ElectricalPower(0, 0, 0, 0); p != 0 {
		t.Errorf("standstill power = %v", p)
	}
}

func TestElectricalPowerExceedsMechanical(t *testing.T) {
	// Motoring: electrical > mechanical (η < 1). Regen: electrical < mech.
	m := leafModel(t)
	v, a := 20.0, 1.0
	pMech := m.TractiveForce(v, a, 0, 0) * v
	pe := m.ElectricalPower(v, a, 0, 0)
	if pe <= pMech {
		t.Errorf("motoring: electrical %v should exceed mechanical %v", pe, pMech)
	}
	a = -0.8 // gentle braking within regen limit
	pMech = m.TractiveForce(v, a, 0, 0) * v
	pe = m.ElectricalPower(v, a, 0, 0)
	if pMech >= 0 {
		t.Skip("braking point is not regenerating at these parameters")
	}
	if pe < pMech { // pe = pMech·η, both negative: pe is closer to zero
		t.Errorf("regen: recovered %v should be less than mechanical %v in magnitude", pe, pMech)
	}
}

func TestPowerMonotoneInSlope(t *testing.T) {
	m := leafModel(t)
	f := func(raw float64) bool {
		slope := math.Mod(math.Abs(raw), 10)
		p0 := m.ElectricalPower(20, 0, slope, 0)
		p1 := m.ElectricalPower(20, 0, slope+1, 0)
		return p1 >= p0-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLeafNEDCConsumptionPlausible(t *testing.T) {
	// The paper verified its model against Nissan Leaf range data [12].
	// Published Leaf NEDC figures: ≈ 150 Wh/km at the battery (traction
	// only, no HVAC) and 175 km range on 21.3 kWh usable.
	m := leafModel(t)
	p := drivecycle.NEDC().Profile(1)
	e := m.Energy(p)
	if e.ConsumptionWhKm < 90 || e.ConsumptionWhKm > 180 {
		t.Errorf("NEDC consumption = %.1f Wh/km, want 90–180", e.ConsumptionWhKm)
	}
	rng := m.RangeKm(p, 21.3, 0)
	if rng < 130 || rng < 0 || rng > 230 {
		t.Errorf("NEDC range = %.0f km, want 130–230", rng)
	}
	// Regen must recover a meaningful share on an urban cycle.
	if e.RegenKWh <= 0 {
		t.Error("no regenerated energy on NEDC")
	}
}

func TestHVACLoadHalvesRangeAtSixKW(t *testing.T) {
	// Paper intro: HVAC at up to 6 kW can cut range by up to 50 %. On an
	// urban cycle (low traction power) a 6 kW constant load must cost at
	// least a third of the range.
	m := leafModel(t)
	p := drivecycle.UDDS().Profile(1)
	base := m.RangeKm(p, 21.3, 0)
	withHVAC := m.RangeKm(p, 21.3, 6000)
	if withHVAC >= base {
		t.Fatalf("HVAC load increased range: %v vs %v", withHVAC, base)
	}
	drop := 1 - withHVAC/base
	if drop < 0.3 || drop > 0.7 {
		t.Errorf("range drop with 6 kW HVAC = %.0f%%, want 30–70%% (paper: up to 50%%)", drop*100)
	}
}

func TestUS06DemandsMorePowerThanUDDS(t *testing.T) {
	m := leafModel(t)
	us06 := m.Energy(drivecycle.US06().Profile(1))
	udds := m.Energy(drivecycle.UDDS().Profile(1))
	if us06.ConsumptionWhKm <= udds.ConsumptionWhKm {
		t.Errorf("US06 (%.0f Wh/km) should out-consume UDDS (%.0f Wh/km)",
			us06.ConsumptionWhKm, udds.ConsumptionWhKm)
	}
	if us06.PeakPowerW <= udds.PeakPowerW {
		t.Errorf("US06 peak power %v should exceed UDDS %v", us06.PeakPowerW, udds.PeakPowerW)
	}
}

func TestPowerProfileLengthMatches(t *testing.T) {
	m := leafModel(t)
	p := drivecycle.ECE15().Profile(1)
	pw := m.PowerProfile(p)
	if len(pw) != p.Len() {
		t.Fatalf("power profile length %d != %d", len(pw), p.Len())
	}
	// Idle samples draw zero traction power.
	if pw[0] != 0 {
		t.Errorf("initial idle power = %v", pw[0])
	}
}

func TestEfficiencyMapInterpolation(t *testing.T) {
	em := &EfficiencyMap{
		SpeedsMs:    []float64{0, 10},
		LoadFracs:   []float64{0, 1},
		Eta:         [][]float64{{0.5, 0.7}, {0.6, 0.9}},
		RatedPowerW: 1000,
	}
	if err := em.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corners.
	if got := em.At(0, 0); got != 0.5 {
		t.Errorf("corner (0,0) = %v", got)
	}
	if got := em.At(10, 1000); got != 0.9 {
		t.Errorf("corner (10,1) = %v", got)
	}
	// Center: average of four corners.
	if got := em.At(5, 500); math.Abs(got-0.675) > 1e-12 {
		t.Errorf("center = %v, want 0.675", got)
	}
	// Clamping beyond grid.
	if got := em.At(100, 5000); got != 0.9 {
		t.Errorf("clamped corner = %v", got)
	}
	if got := em.At(-5, 0); got != 0.5 {
		t.Errorf("clamped origin = %v", got)
	}
	// Negative power uses its magnitude.
	if got, want := em.At(0, -1000), em.At(0, 1000); got != want {
		t.Errorf("negative power lookup %v != positive %v", got, want)
	}
}

func TestEfficiencyMapValidate(t *testing.T) {
	bad := &EfficiencyMap{SpeedsMs: []float64{0}, LoadFracs: []float64{0, 1}, RatedPowerW: 1}
	if bad.Validate() == nil {
		t.Error("1-row grid accepted")
	}
	bad2 := &EfficiencyMap{
		SpeedsMs: []float64{0, 1}, LoadFracs: []float64{0, 1},
		Eta: [][]float64{{0.5, 1.5}, {0.6, 0.9}}, RatedPowerW: 1,
	}
	if bad2.Validate() == nil {
		t.Error("η > 1 accepted")
	}
	bad3 := &EfficiencyMap{
		SpeedsMs: []float64{0, 0}, LoadFracs: []float64{0, 1},
		Eta: [][]float64{{0.5, 0.7}, {0.6, 0.9}}, RatedPowerW: 1,
	}
	if bad3.Validate() == nil {
		t.Error("non-increasing speeds accepted")
	}
}

func TestDefaultLeafEfficiencyShape(t *testing.T) {
	em := DefaultLeafEfficiency()
	if err := em.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mid-speed mid-load beats low-speed light-load.
	good := em.At(20, 40e3)
	bad := em.At(1, 2e3)
	if good <= bad {
		t.Errorf("efficiency shape wrong: mid %v ≤ low %v", good, bad)
	}
	if good < 0.85 || good > 0.95 {
		t.Errorf("peak-region efficiency = %v, want ≈ 0.9", good)
	}
	// Everything within (0, 1].
	for _, v := range []float64{0, 5, 20, 40} {
		for _, p := range []float64{0, 10e3, 40e3, 80e3} {
			e := em.At(v, p)
			if e <= 0 || e > 1 {
				t.Errorf("η(%v, %v) = %v outside (0, 1]", v, p, e)
			}
		}
	}
}

func TestRangeKmDegradesWithAux(t *testing.T) {
	m := leafModel(t)
	p := drivecycle.NEDC().Profile(1)
	f := func(rawAux float64) bool {
		aux := math.Mod(math.Abs(rawAux), 6000)
		r0 := m.RangeKm(p, 24, aux)
		r1 := m.RangeKm(p, 24, aux+500)
		return r1 < r0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeadwindRaisesCycleEnergy(t *testing.T) {
	m := leafModel(t)
	calm := drivecycle.EUDC().Profile(1)
	windy := calm.WithWind(8) // stiff headwind
	eCalm := m.Energy(calm)
	eWindy := m.Energy(windy)
	if eWindy.TractionKWh <= eCalm.TractionKWh {
		t.Errorf("headwind did not raise energy: %v vs %v kWh", eWindy.TractionKWh, eCalm.TractionKWh)
	}
	// Tailwind helps.
	tail := calm.WithWind(-8)
	if m.Energy(tail).TractionKWh >= eCalm.TractionKWh {
		t.Error("tailwind did not reduce energy")
	}
}

// TestPowerProfileMemo pins the PowerProfile cache: a repeated call over
// an equal motion trace returns the identical powers, and any change to
// the motion or the parameters misses (full-trace verification, so a hit
// is exact, never probabilistic).
func TestPowerProfileMemo(t *testing.T) {
	m, err := New(NissanLeaf())
	if err != nil {
		t.Fatal(err)
	}
	cyc, err := drivecycle.ByName("UDDS")
	if err != nil {
		t.Fatal(err)
	}
	p := cyc.Profile(1).Truncate(120)
	first := m.PowerProfile(p)
	again := m.PowerProfile(p.Clone()) // equal content, distinct backing
	if len(first) != len(again) {
		t.Fatalf("lengths differ: %d vs %d", len(first), len(again))
	}
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("sample %d: %v != %v", i, first[i], again[i])
		}
	}

	// A motion change must not alias the cached powers.
	alt := p.Clone()
	alt.Samples[3].Speed += 1
	altPow := m.PowerProfile(alt)
	if altPow[3] == first[3] {
		t.Fatalf("changed motion returned the cached power %v", altPow[3])
	}

	// A parameter change (heavier vehicle) must miss as well.
	hp := NissanLeaf()
	hp.MassKg += 500
	m2, err := New(hp)
	if err != nil {
		t.Fatal(err)
	}
	heavier := m2.PowerProfile(p)
	same := true
	for i := range first {
		if heavier[i] != first[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("heavier powertrain returned the cached light-vehicle powers")
	}
}
