package comfort

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPMVNeutralNearComfortTemperature(t *testing.T) {
	// A seated driver in summer clothes is near-neutral around 24–26 °C.
	pmv, err := PMV(DriverSummer(25))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pmv) > 0.6 {
		t.Errorf("PMV at 25 °C summer = %v, want near 0", pmv)
	}
}

func TestPMVKnownISOCase(t *testing.T) {
	// ISO 7730 Table D.1 case: ta = tr = 22 °C, vel 0.1 m/s, RH 60 %,
	// 1.2 met, 0.5 clo → PMV ≈ −0.75 (±0.1).
	pmv, err := PMV(Conditions{
		AirTempC: 22, RadiantTempC: 22, AirVelocityMs: 0.1,
		RelHumidity: 0.6, MetabolicMet: 1.2, ClothingClo: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pmv-(-0.75)) > 0.12 {
		t.Errorf("ISO case PMV = %v, want ≈ -0.75", pmv)
	}
}

func TestPMVMonotoneInTemperature(t *testing.T) {
	prev := -10.0
	for ta := 16.0; ta <= 34; ta++ {
		pmv, err := PMV(DriverSummer(ta))
		if err != nil {
			t.Fatalf("ta=%v: %v", ta, err)
		}
		if pmv <= prev {
			t.Errorf("PMV not increasing at %v °C: %v ≤ %v", ta, pmv, prev)
		}
		prev = pmv
	}
}

func TestPMVSignsAtExtremes(t *testing.T) {
	hot, err := PMV(DriverSummer(35))
	if err != nil {
		t.Fatal(err)
	}
	if hot <= 0.5 {
		t.Errorf("35 °C PMV = %v, want clearly warm", hot)
	}
	cold, err := PMV(DriverSummer(14))
	if err != nil {
		t.Fatal(err)
	}
	if cold >= -0.5 {
		t.Errorf("14 °C PMV = %v, want clearly cold", cold)
	}
}

func TestClothingShiftsNeutralPoint(t *testing.T) {
	// Winter clothing makes the same temperature feel warmer.
	summer, err := PMV(DriverSummer(20))
	if err != nil {
		t.Fatal(err)
	}
	winter, err := PMV(DriverWinter(20))
	if err != nil {
		t.Fatal(err)
	}
	if winter <= summer {
		t.Errorf("winter clothing PMV %v should exceed summer %v at 20 °C", winter, summer)
	}
}

func TestAirVelocityCools(t *testing.T) {
	still := DriverSummer(28)
	still.AirVelocityMs = 0.05
	breezy := DriverSummer(28)
	breezy.AirVelocityMs = 0.8
	pStill, err := PMV(still)
	if err != nil {
		t.Fatal(err)
	}
	pBreezy, err := PMV(breezy)
	if err != nil {
		t.Fatal(err)
	}
	if pBreezy >= pStill {
		t.Errorf("air movement should cool: %v vs %v", pBreezy, pStill)
	}
}

func TestPPDProperties(t *testing.T) {
	// Minimum 5 % at neutral.
	if p := PPD(0); math.Abs(p-5) > 1e-9 {
		t.Errorf("PPD(0) = %v, want 5", p)
	}
	// Symmetric.
	if PPD(1.5) != PPD(-1.5) {
		t.Error("PPD not symmetric")
	}
	// Monotone in |PMV| and bounded by 100.
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		pmv := math.Mod(raw, 3)
		p := PPD(pmv)
		return p >= 5-1e-9 && p <= 100 && PPD(pmv*1.1) >= p-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// ISO: PMV ±1 → PPD ≈ 26 %.
	if p := PPD(1); math.Abs(p-26.1) > 1.5 {
		t.Errorf("PPD(1) = %v, want ≈ 26", p)
	}
}

func TestValidate(t *testing.T) {
	cases := []Conditions{
		{AirTempC: 99, MetabolicMet: 1, ClothingClo: 0.5},
		{AirTempC: 24, AirVelocityMs: -1, MetabolicMet: 1},
		{AirTempC: 24, RelHumidity: 2, MetabolicMet: 1},
		{AirTempC: 24, MetabolicMet: 0},
		{AirTempC: 24, MetabolicMet: 1, ClothingClo: -1},
	}
	for i, c := range cases {
		if _, err := PMV(c); err == nil {
			t.Errorf("case %d: invalid conditions accepted", i)
		}
	}
}

func TestScoreTrace(t *testing.T) {
	// A well-controlled trace: tight around 24.5 °C.
	good := []float64{24.4, 24.5, 24.6, 24.5, 24.4, 24.5}
	gs, err := ScoreTrace(good, DriverSummer(0))
	if err != nil {
		t.Fatal(err)
	}
	// An On/Off-style trace swinging across the band.
	bad := []float64{22, 27, 21.5, 26.5, 22, 27}
	bs, err := ScoreTrace(bad, DriverSummer(0))
	if err != nil {
		t.Fatal(err)
	}
	if bs.MeanPPD <= gs.MeanPPD {
		t.Errorf("swinging trace PPD %v should exceed tight trace %v", bs.MeanPPD, gs.MeanPPD)
	}
	if math.Abs(bs.WorstPMV) <= math.Abs(gs.WorstPMV) {
		t.Errorf("swinging trace worst PMV %v should exceed %v", bs.WorstPMV, gs.WorstPMV)
	}
	if _, err := ScoreTrace(nil, DriverSummer(0)); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestNeutralTemperature(t *testing.T) {
	tn, err := NeutralTemperature(DriverSummer(0))
	if err != nil {
		t.Fatal(err)
	}
	if tn < 22 || tn > 28 {
		t.Errorf("summer neutral temperature = %v, want 22–28 °C", tn)
	}
	// Verify it is actually neutral.
	pmv, err := PMV(DriverSummer(tn))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pmv) > 0.01 {
		t.Errorf("PMV at neutral temperature = %v", pmv)
	}
	// Winter clothing lowers the neutral temperature.
	tw, err := NeutralTemperature(DriverWinter(0))
	if err != nil {
		t.Fatal(err)
	}
	if tw >= tn {
		t.Errorf("winter neutral %v should be below summer %v", tw, tn)
	}
}
