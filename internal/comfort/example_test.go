package comfort_test

import (
	"fmt"

	"evclimate/internal/comfort"
)

// ExamplePMV scores two cabin temperatures for a summer-clothed driver.
func ExamplePMV() {
	for _, tz := range []float64{21.0, 25.0} {
		pmv, err := comfort.PMV(comfort.DriverSummer(tz))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%.0f °C: PMV %+.1f, %.0f %% dissatisfied\n", tz, pmv, comfort.PPD(pmv))
	}
	// Output:
	// 21 °C: PMV -1.3, 41 % dissatisfied
	// 25 °C: PMV -0.1, 5 % dissatisfied
}
