// Package comfort implements Fanger's Predicted Mean Vote (PMV) and
// Predicted Percentage Dissatisfied (PPD) thermal-comfort model
// (ISO 7730). The paper evaluates comfort as a fixed temperature band
// (constraint C2, comfort zone per [11]); this package is the richer
// extension: it scores a cabin-temperature trajectory by occupant
// physiology — metabolic rate, clothing insulation, air speed, and
// humidity — so controllers can be compared on predicted passenger
// satisfaction, not just band violations.
package comfort

import (
	"errors"
	"fmt"
	"math"
)

// Conditions describes the thermal environment and occupant for one PMV
// evaluation.
type Conditions struct {
	// AirTempC is the air (dry-bulb) temperature, °C.
	AirTempC float64
	// RadiantTempC is the mean radiant temperature, °C. If zero it is
	// taken equal to the air temperature.
	RadiantTempC float64
	// AirVelocityMs is the relative air speed, m/s (cabin vents:
	// ≈ 0.1–0.4).
	AirVelocityMs float64
	// RelHumidity is the relative humidity fraction in [0, 1].
	RelHumidity float64
	// MetabolicMet is the activity level in met (seated driver ≈ 1.2).
	MetabolicMet float64
	// ClothingClo is the clothing insulation in clo (summer ≈ 0.5,
	// winter ≈ 1.0).
	ClothingClo float64
}

// DriverSummer returns typical conditions for a seated driver in summer
// clothing with vents at low speed; only the cabin temperature remains to
// be filled in per sample.
func DriverSummer(airTempC float64) Conditions {
	return Conditions{
		AirTempC:      airTempC,
		AirVelocityMs: 0.15,
		RelHumidity:   0.5,
		MetabolicMet:  1.2,
		ClothingClo:   0.5,
	}
}

// DriverWinter is the winter-clothing variant.
func DriverWinter(airTempC float64) Conditions {
	c := DriverSummer(airTempC)
	c.ClothingClo = 1.0
	return c
}

// Validate reports out-of-domain conditions.
func (c *Conditions) Validate() error {
	switch {
	case c.AirTempC < -40 || c.AirTempC > 60:
		return fmt.Errorf("comfort: air temperature %v outside model domain", c.AirTempC)
	case c.AirVelocityMs < 0:
		return errors.New("comfort: negative air velocity")
	case c.RelHumidity < 0 || c.RelHumidity > 1:
		return fmt.Errorf("comfort: relative humidity %v outside [0, 1]", c.RelHumidity)
	case c.MetabolicMet <= 0:
		return errors.New("comfort: metabolic rate must be positive")
	case c.ClothingClo < 0:
		return errors.New("comfort: negative clothing insulation")
	}
	return nil
}

// saturationPressurePa returns the water-vapour saturation pressure at
// temperature t (°C), per the Antoine-style fit used by ISO 7730.
func saturationPressurePa(t float64) float64 {
	return math.Exp(16.6536-4030.183/(t+235)) * 1000
}

// PMV computes the Predicted Mean Vote on the 7-point scale
// (−3 cold … 0 neutral … +3 hot), following the ISO 7730 algorithm with
// the standard iterative clothing-surface-temperature solution.
func PMV(c Conditions) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	ta := c.AirTempC
	tr := c.RadiantTempC
	if tr == 0 {
		tr = ta
	}
	vel := math.Max(c.AirVelocityMs, 0.0001)
	pa := c.RelHumidity * saturationPressurePa(ta) // vapour pressure, Pa

	icl := 0.155 * c.ClothingClo // clo → m²K/W
	m := c.MetabolicMet * 58.15  // met → W/m²
	w := 0.0                     // external work
	mw := m - w

	var fcl float64 // clothing area factor
	if icl <= 0.078 {
		fcl = 1 + 1.29*icl
	} else {
		fcl = 1.05 + 0.645*icl
	}

	// Iterate for the clothing surface temperature tcl.
	taa := ta + 273
	tra := tr + 273
	tcla := taa + (35.5-ta)/(3.5*icl+0.1) // initial guess

	p1 := icl * fcl
	p2 := p1 * 3.96
	p3 := p1 * 100
	p4 := p1 * taa
	p5 := 308.7 - 0.028*mw + p2*math.Pow(tra/100, 4)
	xn := tcla / 100
	xf := xn
	hcf := 12.1 * math.Sqrt(vel)
	const eps = 1e-5
	var hc float64
	for i := 0; ; i++ {
		xf = (xf + xn) / 2
		hcn := 2.38 * math.Pow(math.Abs(100*xf-taa), 0.25)
		if hcf > hcn {
			hc = hcf
		} else {
			hc = hcn
		}
		xn = (p5 + p4*hc - p2*math.Pow(xf, 4)) / (100 + p3*hc)
		if math.Abs(xn-xf) <= eps {
			break
		}
		if i > 150 {
			return 0, errors.New("comfort: PMV clothing-temperature iteration did not converge")
		}
	}
	tcl := 100*xn - 273

	// Heat-loss components (W/m²).
	hl1 := 3.05 * 0.001 * (5733 - 6.99*mw - pa) // skin diffusion
	hl2 := 0.0
	if mw > 58.15 {
		hl2 = 0.42 * (mw - 58.15) // sweating
	}
	hl3 := 1.7 * 0.00001 * m * (5867 - pa) // latent respiration
	hl4 := 0.0014 * m * (34 - ta)          // dry respiration
	hl5 := 3.96 * fcl * (math.Pow(xn, 4) - math.Pow(tra/100, 4))
	hl6 := fcl * hc * (tcl - ta)

	ts := 0.303*math.Exp(-0.036*m) + 0.028
	pmv := ts * (mw - hl1 - hl2 - hl3 - hl4 - hl5 - hl6)
	return pmv, nil
}

// PPD converts a PMV value to the Predicted Percentage Dissatisfied
// (5 % minimum at neutral, ISO 7730).
func PPD(pmv float64) float64 {
	return 100 - 95*math.Exp(-0.03353*math.Pow(pmv, 4)-0.2179*pmv*pmv)
}

// TraceScore summarizes a cabin-temperature trajectory.
type TraceScore struct {
	// MeanPMV and MeanPPD are time averages.
	MeanPMV, MeanPPD float64
	// WorstPMV is the PMV farthest from neutral.
	WorstPMV float64
	// DissatisfiedFrac is the fraction of samples with PPD > 10 %
	// (ISO 7730 category B).
	DissatisfiedFrac float64
}

// ScoreTrace evaluates a cabin-temperature trace with the given base
// conditions (the per-sample temperature replaces base.AirTempC).
func ScoreTrace(cabinC []float64, base Conditions) (TraceScore, error) {
	if len(cabinC) == 0 {
		return TraceScore{}, errors.New("comfort: empty trace")
	}
	var s TraceScore
	var dissatisfied int
	for _, tz := range cabinC {
		c := base
		c.AirTempC = tz
		pmv, err := PMV(c)
		if err != nil {
			return TraceScore{}, err
		}
		ppd := PPD(pmv)
		s.MeanPMV += pmv
		s.MeanPPD += ppd
		if math.Abs(pmv) > math.Abs(s.WorstPMV) {
			s.WorstPMV = pmv
		}
		if ppd > 10 {
			dissatisfied++
		}
	}
	n := float64(len(cabinC))
	s.MeanPMV /= n
	s.MeanPPD /= n
	s.DissatisfiedFrac = float64(dissatisfied) / n
	return s, nil
}

// NeutralTemperature searches for the cabin temperature giving PMV ≈ 0
// under the base conditions — useful for picking climate-control targets
// per season.
func NeutralTemperature(base Conditions) (float64, error) {
	lo, hi := 10.0, 40.0
	cLo := base
	cLo.AirTempC = lo
	pLo, err := PMV(cLo)
	if err != nil {
		return 0, err
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		c := base
		c.AirTempC = mid
		p, err := PMV(c)
		if err != nil {
			return 0, err
		}
		if (p < 0) == (pLo < 0) {
			lo, pLo = mid, p
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
