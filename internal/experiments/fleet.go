package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"evclimate/internal/core"
	"evclimate/internal/drivecycle"
	"evclimate/internal/geodata"
	"evclimate/internal/runner"
)

// This file adds a fleet-scale Monte-Carlo evaluation beyond the paper's
// five fixed cycles: many synthesized commutes across climates, terrains,
// and departure times (via internal/geodata), each driven under On/Off and
// under the lifetime-aware MPC, aggregated into distributional statistics
// of the SoH and power savings. This answers the robustness question the
// paper's fixed-cycle evaluation leaves open: how does the improvement
// distribute over realistic usage, not just regulatory cycles?
//
// Trip parameters are sampled up front from the config seed; the route
// synthesis and both controller runs of every trip then execute as
// independent jobs on the parallel sweep engine, with each trip's terrain
// seeded from the runner's derived per-cycle seed (no RNG shared between
// jobs).

// FleetConfig parameterizes the Monte-Carlo sweep.
type FleetConfig struct {
	// Trips is the number of synthesized commutes (default 12).
	Trips int
	// Seed makes the sweep reproducible (default 1).
	Seed int64
	// Zones are the climate zones sampled (default all four).
	Zones []geodata.ClimateZone
	// MaxProfileS truncates each trip (0 = full; tests set this).
	MaxProfileS float64
	// MPC overrides the controller configuration.
	MPC *core.Config
	// Workers sets the sweep parallelism (0 = GOMAXPROCS).
	Workers int
	// Ctx, when non-nil, cancels the sweep between jobs.
	Ctx context.Context
	// Journal enables the crash-safe job journal for the sweep.
	Journal *runner.JournalConfig
	// JobTimeout is the per-job watchdog deadline (0 = none).
	JobTimeout time.Duration
	// Retry bounds re-execution of crashed or timed-out jobs.
	Retry runner.RetryPolicy
}

// FleetTrip is one sampled commute's outcome.
type FleetTrip struct {
	// Label describes the sample ("coastal m7 h8 14km").
	Label string
	// OnOffDeltaSoH, MPCDeltaSoH are the per-cycle degradations.
	OnOffDeltaSoH, MPCDeltaSoH float64
	// OnOffHVACW, MPCHVACW are the average HVAC powers.
	OnOffHVACW, MPCHVACW float64
	// SoHSavingPct is the MPC's relative improvement.
	SoHSavingPct float64
}

// FleetSummary aggregates the sweep.
type FleetSummary struct {
	// Trips holds the individual outcomes.
	Trips []FleetTrip
	// MeanSoHSavingPct, MedianSoHSavingPct, MinSoHSavingPct,
	// MaxSoHSavingPct summarize the distribution of SoH savings.
	MeanSoHSavingPct, MedianSoHSavingPct, MinSoHSavingPct, MaxSoHSavingPct float64
	// WinFraction is the share of trips where the MPC degraded the
	// battery less than On/Off.
	WinFraction float64
}

// fleetTripParams is one pre-sampled commute description; the route
// itself is synthesized inside the trip's sweep job.
type fleetTripParams struct {
	zone    geodata.ClimateZone
	month   int
	hour    float64
	reliefM float64
	wps     []geodata.Waypoint
	totalKm float64
}

// fill applies the sweep defaults in place.
func (cfg *FleetConfig) fill() {
	if cfg.Trips <= 0 {
		cfg.Trips = 12
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if len(cfg.Zones) == 0 {
		cfg.Zones = []geodata.ClimateZone{
			geodata.Temperate, geodata.Desert, geodata.Coastal, geodata.Continental,
		}
	}
}

// fleetSpec expands a filled config into the sweep spec and the sampled
// trip parameters. The builder is pure in the config: equal configs
// always sample identical trips and expand identical jobs, which lets
// the fabric registry rebuild the sweep from wire parameters.
func fleetSpec(cfg FleetConfig) (runner.Spec, []fleetTripParams) {
	// Phase 1: sample every trip's parameters sequentially from the
	// config seed (cheap and reproducible).
	rng := rand.New(rand.NewSource(cfg.Seed))
	trips := make([]fleetTripParams, cfg.Trips)
	for i := range trips {
		tp := fleetTripParams{
			zone:    cfg.Zones[rng.Intn(len(cfg.Zones))],
			month:   1 + rng.Intn(12),
			hour:    []float64{7.5, 8, 12, 17.5, 22}[rng.Intn(5)],
			reliefM: 60 + rng.Float64()*180,
		}
		// A commute of 2–5 legs, 5–25 km total.
		legs := 2 + rng.Intn(4)
		tp.wps = make([]geodata.Waypoint, legs)
		for j := range tp.wps {
			tp.wps[j] = geodata.Waypoint{
				LengthKm:    1 + rng.Float64()*7,
				FreeFlowKmh: []float64{40, 60, 80, 110}[rng.Intn(4)],
				Stop:        rng.Float64() < 0.5,
			}
			tp.totalKm += tp.wps[j].LengthKm
		}
		trips[i] = tp
	}

	mpcCfg := core.DefaultConfig()
	if cfg.MPC != nil {
		mpcCfg = *cfg.MPC
	}

	// Phase 2: one sweep cycle per trip; the Gen hook plans the route
	// from the runner's derived per-trip seed.
	cycles := make([]runner.CycleSpec, cfg.Trips)
	for i := range cycles {
		tp := trips[i]
		name := fmt.Sprintf("fleet-%d", i)
		cycles[i] = runner.CycleSpec{
			Label: name,
			Gen: func(seed int64) (*drivecycle.Profile, error) {
				planner := &geodata.Planner{
					Terrain: &geodata.Terrain{Seed: seed, ReliefM: tp.reliefM},
					Climate: &geodata.Climate{Zone: tp.zone},
					Traffic: &geodata.Traffic{},
				}
				route, err := planner.Plan(name, tp.wps, tp.month, tp.hour)
				if err != nil {
					return nil, err
				}
				return route.Profile(1)
			},
		}
	}
	return runner.Spec{
		Controllers: []runner.ControllerSpec{
			runner.OnOffSpec(0),
			runner.MPCSpec(mpcCfg, 0),
		},
		Cycles:      cycles,
		MaxProfileS: cfg.MaxProfileS,
		BaseSeed:    cfg.Seed,
	}, trips
}

// FleetParams encodes the Monte-Carlo sweep's variability as wire
// parameters for the fabric (see DistParams).
func FleetParams(cfg FleetConfig) map[string]string {
	cfg.fill()
	return map[string]string{
		"trips": strconv.Itoa(cfg.Trips),
		"seed":  strconv.FormatInt(cfg.Seed, 10),
		"max_s": strconv.FormatFloat(cfg.MaxProfileS, 'g', -1, 64),
	}
}

// FleetSpec rebuilds the distributable Monte-Carlo sweep from wire
// parameters: default climate zones and controller configs, with the
// trip sampling and route synthesis fully determined by the seed.
func FleetSpec(params map[string]string) (runner.Spec, error) {
	trips, err := strconv.Atoi(params["trips"])
	if err != nil {
		return runner.Spec{}, fmt.Errorf("experiments: fleet trips param: %w", err)
	}
	seed, err := strconv.ParseInt(params["seed"], 10, 64)
	if err != nil {
		return runner.Spec{}, fmt.Errorf("experiments: fleet seed param: %w", err)
	}
	maxS, err := strconv.ParseFloat(params["max_s"], 64)
	if err != nil {
		return runner.Spec{}, fmt.Errorf("experiments: fleet max_s param: %w", err)
	}
	cfg := FleetConfig{Trips: trips, Seed: seed, MaxProfileS: maxS}
	cfg.fill()
	spec, _ := fleetSpec(cfg)
	return spec, nil
}

// RunFleet executes the Monte-Carlo sweep on the parallel runner.
func RunFleet(cfg FleetConfig) (*FleetSummary, error) {
	cfg.fill()
	spec, trips := fleetSpec(cfg)
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	sw, err := runner.Run(ctx, spec, runner.Options{
		Workers:       cfg.Workers,
		Journal:       cfg.Journal,
		JobTimeout:    cfg.JobTimeout,
		Retry:         cfg.Retry,
		ManifestLabel: "fleet",
	})
	if err != nil {
		return nil, err
	}
	if err := sw.JobErrors(); err != nil {
		return nil, err
	}

	summary := &FleetSummary{MinSoHSavingPct: 1e9, MaxSoHSavingPct: -1e9}
	for i, cell := range sw.Cells() {
		results := runner.CellMap(cell)
		onoff, aware := results[NameOnOff], results[NameMPC]
		tp := trips[i]
		saving := 100 * (1 - aware.DeltaSoH/onoff.DeltaSoH)
		ft := FleetTrip{
			Label:         fmt.Sprintf("%s m%02d h%04.1f %4.1fkm", tp.zone, tp.month, tp.hour, tp.totalKm),
			OnOffDeltaSoH: onoff.DeltaSoH,
			MPCDeltaSoH:   aware.DeltaSoH,
			OnOffHVACW:    onoff.AvgHVACW,
			MPCHVACW:      aware.AvgHVACW,
			SoHSavingPct:  saving,
		}
		summary.Trips = append(summary.Trips, ft)
		summary.MeanSoHSavingPct += saving
		if saving < summary.MinSoHSavingPct {
			summary.MinSoHSavingPct = saving
		}
		if saving > summary.MaxSoHSavingPct {
			summary.MaxSoHSavingPct = saving
		}
		if aware.DeltaSoH < onoff.DeltaSoH {
			summary.WinFraction++
		}
	}
	n := float64(len(summary.Trips))
	summary.MeanSoHSavingPct /= n
	summary.WinFraction /= n
	savings := make([]float64, len(summary.Trips))
	for i, tr := range summary.Trips {
		savings[i] = tr.SoHSavingPct
	}
	sort.Float64s(savings)
	summary.MedianSoHSavingPct = savings[len(savings)/2]
	return summary, nil
}

// RenderFleet formats the sweep.
func RenderFleet(s *FleetSummary) string {
	var sb strings.Builder
	sb.WriteString("Fleet Monte-Carlo — SoH saving of the lifetime-aware MPC vs On/Off\n")
	for _, tr := range s.Trips {
		fmt.Fprintf(&sb, "  %-28s OnOff %5.2f kW / %.5f %%   MPC %5.2f kW / %.5f %%   saving %+6.1f %%\n",
			tr.Label, tr.OnOffHVACW/1000, tr.OnOffDeltaSoH,
			tr.MPCHVACW/1000, tr.MPCDeltaSoH, tr.SoHSavingPct)
	}
	fmt.Fprintf(&sb, "trips %d   mean %+.1f %%   median %+.1f %%   range [%+.1f, %+.1f] %%   wins %.0f %%\n",
		len(s.Trips), s.MeanSoHSavingPct, s.MedianSoHSavingPct,
		s.MinSoHSavingPct, s.MaxSoHSavingPct, 100*s.WinFraction)
	return sb.String()
}
