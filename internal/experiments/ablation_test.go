package experiments

import (
	"strings"
	"testing"

	"evclimate/internal/core"
	"evclimate/internal/sqp"
)

// ablationOpts: minimal MPC runs for the sweep tests.
func ablationOpts() Options {
	cfg := core.DefaultConfig()
	cfg.SQP = sqp.Options{MaxIter: 10, Tol: 1e-4}
	return Options{MaxProfileS: 120, MPC: &cfg}
}

func TestAblateHorizon(t *testing.T) {
	rows, err := AblateHorizon(ablationOpts(), []int{4, 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Label != "N=4" || rows[1].Label != "N=12" {
		t.Errorf("labels = %v, %v", rows[0].Label, rows[1].Label)
	}
	for _, r := range rows {
		if r.AvgHVACW <= 0 || r.DeltaSoH <= 0 {
			t.Errorf("%s: empty metrics %+v", r.Label, r)
		}
		if r.SolveTimeMs <= 0 {
			t.Errorf("%s: no solve-time measurement", r.Label)
		}
	}
	// A longer horizon costs more per solve.
	if rows[1].SolveTimeMs <= rows[0].SolveTimeMs {
		t.Errorf("N=12 (%v ms) should cost more than N=4 (%v ms)",
			rows[1].SolveTimeMs, rows[0].SolveTimeMs)
	}
}

func TestAblateSoCDevWeightZeroIsPlainMPC(t *testing.T) {
	rows, err := AblateSoCDevWeight(ablationOpts(), []float64{0, 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Both configurations must produce valid runs; the w2=200 run couples
	// to the motor forecast, typically increasing SoC flatness (not
	// asserted strictly on a 120 s window — just structural validity).
	for _, r := range rows {
		if r.DeltaSoH <= 0 || r.SoCDev <= 0 {
			t.Errorf("%s: degenerate run %+v", r.Label, r)
		}
	}
	if rows[0].Label != "w2=0" {
		t.Errorf("label = %s", rows[0].Label)
	}
}

func TestAblateSQPBudget(t *testing.T) {
	rows, err := AblateSQPBudget(ablationOpts(), []int{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	// The single-QP controller must still produce a sane closed loop
	// (graceful degradation), and the 10-iteration budget should track
	// no worse than the single-QP one.
	singleQP, full := rows[0], rows[1]
	if singleQP.ComfortViolationFrac > 0.5 {
		t.Errorf("single-QP controller lost the cabin: %+v", singleQP)
	}
	if full.RMSTrackingErrC > singleQP.RMSTrackingErrC*1.5+0.2 {
		t.Errorf("more SQP iterations worsened tracking: %v vs %v",
			full.RMSTrackingErrC, singleQP.RMSTrackingErrC)
	}
}

func TestAblateControlPeriod(t *testing.T) {
	rows, err := AblateControlPeriod(ablationOpts(), []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.AvgHVACW <= 0 {
			t.Errorf("%s: empty metrics", r.Label)
		}
	}
	if rows[1].Label != "dt=10s" {
		t.Errorf("label = %s", rows[1].Label)
	}
}

func TestRenderAblation(t *testing.T) {
	rows := []AblationRow{{Label: "N=4", AvgHVACW: 2000, DeltaSoH: 0.01, SoCDev: 1.5, RMSTrackingErrC: 0.3, SolveTimeMs: 12}}
	out := RenderAblation("test sweep", rows)
	if !strings.Contains(out, "N=4") || !strings.Contains(out, "test sweep") {
		t.Errorf("render missing content:\n%s", out)
	}
}
