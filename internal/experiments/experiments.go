// Package experiments reproduces every figure and table of the paper's
// evaluation (Sec. IV): the motivational EV/ICE power breakdown (Fig. 1),
// the cabin-temperature traces of the three controllers (Fig. 5), the
// precool illustration (Fig. 6), the battery-lifetime comparison over the
// five drive profiles (Fig. 7), the average HVAC power comparison
// (Fig. 8), and the ambient-temperature analysis (Table I). The cmd/evbench
// binary and the repository-level benchmarks drive these harnesses.
package experiments

import (
	"context"
	"time"

	"evclimate/internal/core"
	"evclimate/internal/runner"
	"evclimate/internal/sim"
	"evclimate/internal/telemetry"
)

// Options configures an experiment run. The zero value reproduces the
// paper's setup.
type Options struct {
	// AmbientC is the outside temperature for the hot-day experiments
	// (Figs. 5–8). Default 35 °C.
	AmbientC float64
	// SolarW is the constant solar thermal load. Default 400 W.
	SolarW float64
	// TargetC is the cabin target temperature. Default 24 °C.
	TargetC float64
	// ComfortBandC is the comfort-zone half width. Default 3 °C.
	ComfortBandC float64
	// MPCControlDt is the MPC control period in seconds. Default 5.
	MPCControlDt float64
	// BaselineControlDt is the baseline control period. Default 1.
	BaselineControlDt float64
	// MPC overrides the MPC configuration. Zero value → core.DefaultConfig.
	MPC *core.Config
	// MaxProfileS truncates drive profiles to this many seconds
	// (0 = full length) — used to keep unit tests fast.
	MaxProfileS float64
	// Workers is the scenario-sweep worker-pool size (0 = GOMAXPROCS).
	Workers int
	// BatchSize is the lockstep-batch lane count for eligible sweep jobs
	// (0 = runner.DefaultBatchSize, negative disables batching). Batched
	// lanes are bit-identical to scalar runs, so this is purely a
	// throughput knob.
	BatchSize int
	// Cache, when non-nil, reuses simulation results across harnesses
	// keyed by scenario fingerprint (cmd/evbench shares one cache so
	// e.g. Fig. 5 and Fig. 6 run their common scenarios once).
	Cache *runner.Cache
	// Telemetry, when non-nil, is the metric registry shared by every
	// sweep the harnesses run (cmd/evbench wires it from -metrics).
	Telemetry *telemetry.Registry
	// TraceLog, when non-nil, accumulates per-step trace spans across
	// the harnesses' sweeps, in job order within each sweep.
	TraceLog *telemetry.TraceLog
	// TraceSteps caps each job's trace ring (0 = telemetry default).
	TraceSteps int
	// Manifest, when non-nil, records every sweep's seeds and scenario
	// fingerprints for the deterministic run manifest.
	Manifest *telemetry.Manifest
	// Ctx, when non-nil, is threaded into every sweep: cancellation
	// drains the worker pool between jobs (cmd/evbench wires its
	// SIGINT/SIGTERM handler here).
	Ctx context.Context
	// Journal, when non-nil, enables the crash-safe job journal on
	// every sweep the harnesses run (see runner.JournalConfig).
	Journal *runner.JournalConfig
	// JobTimeout is the per-job watchdog deadline (0 = none).
	JobTimeout time.Duration
	// Retry bounds re-execution of crashed or timed-out jobs.
	Retry runner.RetryPolicy
}

// runnerOptions assembles the sweep-engine options for one labeled
// harness sweep, carrying the shared cache and telemetry wiring.
func (o *Options) runnerOptions(label string) runner.Options {
	return runner.Options{
		Workers:       o.Workers,
		BatchSize:     o.BatchSize,
		Cache:         o.Cache,
		Telemetry:     o.Telemetry,
		TraceLog:      o.TraceLog,
		TraceSteps:    o.TraceSteps,
		Manifest:      o.Manifest,
		ManifestLabel: label,
		Journal:       o.Journal,
		JobTimeout:    o.JobTimeout,
		Retry:         o.Retry,
	}
}

// ctx returns the options' context (Background when unset).
func (o *Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o *Options) fill() {
	if o.AmbientC == 0 {
		o.AmbientC = 35
	}
	if o.SolarW == 0 {
		o.SolarW = 400
	}
	if o.TargetC == 0 {
		o.TargetC = 24
	}
	if o.ComfortBandC == 0 {
		o.ComfortBandC = 3
	}
	if o.MPCControlDt == 0 {
		o.MPCControlDt = 5
	}
	if o.BaselineControlDt == 0 {
		o.BaselineControlDt = 1
	}
}

func (o *Options) mpcConfig() core.Config {
	if o.MPC != nil {
		return *o.MPC
	}
	return core.DefaultConfig()
}

// ControllerName identifies the three compared methodologies.
const (
	NameOnOff = "On/Off"
	NameFuzzy = "Fuzzy-based"
	NameMPC   = "Battery Lifetime-aware"
)

// controllerSpecs returns the paper's three methodologies for the sweep
// engine: baselines at the fine control period, the MPC at its own period
// with preview enabled.
func (o *Options) controllerSpecs() []runner.ControllerSpec {
	return []runner.ControllerSpec{
		runner.OnOffSpec(o.BaselineControlDt),
		runner.FuzzySpec(o.BaselineControlDt),
		runner.MPCSpec(o.mpcConfig(), o.MPCControlDt),
	}
}

// sweep executes one scenario grid — the given cycles × environments
// under the given controllers — on the options' worker pool and cache,
// failing on the first job error.
func (o *Options) sweep(controllers []runner.ControllerSpec, cycles []runner.CycleSpec, envs []runner.Env) (*runner.Sweep, error) {
	spec := runner.Spec{
		Controllers:  controllers,
		Cycles:       cycles,
		Envs:         envs,
		Targets:      []float64{o.TargetC},
		ComfortBandC: o.ComfortBandC,
		MaxProfileS:  o.MaxProfileS,
	}
	label := "sweep"
	if len(cycles) > 0 {
		if cycles[0].Label != "" {
			label = cycles[0].Label
		} else if cycles[0].Name != "" {
			label = cycles[0].Name
		}
	}
	sw, err := runner.Run(o.ctx(), spec, o.runnerOptions(label))
	if err != nil {
		return nil, err
	}
	if err := sw.JobErrors(); err != nil {
		return nil, err
	}
	return sw, nil
}

// runStandard runs the three controllers on one registry cycle at the
// given ambient conditions and returns the results keyed by controller
// name.
func (o *Options) runStandard(cycleName string, ambientC, solarW float64) (map[string]*sim.Result, error) {
	sw, err := o.sweep(o.controllerSpecs(),
		[]runner.CycleSpec{{Name: cycleName}},
		[]runner.Env{{AmbientC: ambientC, SolarW: solarW}})
	if err != nil {
		return nil, err
	}
	return runner.CellMap(sw.Jobs), nil
}
