// Package experiments reproduces every figure and table of the paper's
// evaluation (Sec. IV): the motivational EV/ICE power breakdown (Fig. 1),
// the cabin-temperature traces of the three controllers (Fig. 5), the
// precool illustration (Fig. 6), the battery-lifetime comparison over the
// five drive profiles (Fig. 7), the average HVAC power comparison
// (Fig. 8), and the ambient-temperature analysis (Table I). The cmd/evbench
// binary and the repository-level benchmarks drive these harnesses.
package experiments

import (
	"fmt"

	"evclimate/internal/cabin"
	"evclimate/internal/control"
	"evclimate/internal/core"
	"evclimate/internal/drivecycle"
	"evclimate/internal/sim"
)

// Options configures an experiment run. The zero value reproduces the
// paper's setup.
type Options struct {
	// AmbientC is the outside temperature for the hot-day experiments
	// (Figs. 5–8). Default 35 °C.
	AmbientC float64
	// SolarW is the constant solar thermal load. Default 400 W.
	SolarW float64
	// TargetC is the cabin target temperature. Default 24 °C.
	TargetC float64
	// ComfortBandC is the comfort-zone half width. Default 3 °C.
	ComfortBandC float64
	// MPCControlDt is the MPC control period in seconds. Default 5.
	MPCControlDt float64
	// BaselineControlDt is the baseline control period. Default 1.
	BaselineControlDt float64
	// MPC overrides the MPC configuration. Zero value → core.DefaultConfig.
	MPC *core.Config
	// MaxProfileS truncates drive profiles to this many seconds
	// (0 = full length) — used to keep unit tests fast.
	MaxProfileS float64
}

func (o *Options) fill() {
	if o.AmbientC == 0 {
		o.AmbientC = 35
	}
	if o.SolarW == 0 {
		o.SolarW = 400
	}
	if o.TargetC == 0 {
		o.TargetC = 24
	}
	if o.ComfortBandC == 0 {
		o.ComfortBandC = 3
	}
	if o.MPCControlDt == 0 {
		o.MPCControlDt = 5
	}
	if o.BaselineControlDt == 0 {
		o.BaselineControlDt = 1
	}
}

func (o *Options) mpcConfig() core.Config {
	if o.MPC != nil {
		return *o.MPC
	}
	return core.DefaultConfig()
}

// truncate limits a profile to maxS seconds.
func truncate(p *drivecycle.Profile, maxS float64) *drivecycle.Profile {
	if maxS <= 0 || p.Duration() <= maxS {
		return p
	}
	out := &drivecycle.Profile{Name: p.Name, Dt: p.Dt}
	for _, s := range p.Samples {
		if s.Time > maxS {
			break
		}
		out.Samples = append(out.Samples, s)
	}
	return out
}

// prepare builds the experiment profile for a cycle at the options'
// ambient conditions.
func (o *Options) prepare(c *drivecycle.Cycle, ambientC, solarW float64) *drivecycle.Profile {
	p := c.Profile(1).WithAmbient(ambientC).WithSolar(solarW)
	return truncate(p, o.MaxProfileS)
}

// ControllerName identifies the three compared methodologies.
const (
	NameOnOff = "On/Off"
	NameFuzzy = "Fuzzy-based"
	NameMPC   = "Battery Lifetime-aware"
)

// runAll simulates the three controllers on one profile and returns the
// results keyed by controller name. Baselines run at the fine control
// period; the MPC at its own period with preview enabled.
func (o *Options) runAll(p *drivecycle.Profile) (map[string]*sim.Result, error) {
	hvac, err := cabin.New(cabin.Default())
	if err != nil {
		return nil, err
	}

	out := make(map[string]*sim.Result, 3)

	baseCfg := sim.DefaultConfig(p)
	baseCfg.TargetC = o.TargetC
	baseCfg.ComfortBandC = o.ComfortBandC
	baseCfg.InitialCabinC = o.TargetC
	baseCfg.ControlDt = o.BaselineControlDt
	baseRunner, err := sim.New(baseCfg)
	if err != nil {
		return nil, err
	}
	for _, ctrl := range []control.Controller{control.NewOnOff(hvac), control.NewFuzzy(hvac)} {
		res, err := baseRunner.Run(ctrl)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s on %s: %w", ctrl.Name(), p.Name, err)
		}
		out[ctrl.Name()] = res
	}

	mcfg := o.mpcConfig()
	mpcSimCfg := baseCfg
	mpcSimCfg.ControlDt = o.MPCControlDt
	mpcSimCfg.ForecastSteps = mcfg.Horizon * int(mcfg.Dt/o.MPCControlDt+0.5)
	if mpcSimCfg.ForecastSteps < mcfg.Horizon {
		mpcSimCfg.ForecastSteps = mcfg.Horizon
	}
	mpcRunner, err := sim.New(mpcSimCfg)
	if err != nil {
		return nil, err
	}
	mpc, err := core.New(mcfg)
	if err != nil {
		return nil, err
	}
	res, err := mpcRunner.Run(mpc)
	if err != nil {
		return nil, fmt.Errorf("experiments: MPC on %s: %w", p.Name, err)
	}
	out[NameMPC] = res
	return out, nil
}
