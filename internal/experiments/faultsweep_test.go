package experiments

import (
	"strings"
	"testing"
)

func TestFaultSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep runs supervised MPC simulations")
	}
	opts := quickOpts()
	rows, err := FaultSweep(opts, []string{"stuck"})
	if err != nil {
		t.Fatal(err)
	}
	// 2 scenarios (none + stuck) × 3 controllers.
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	scenarios := map[string]int{}
	for _, r := range rows {
		scenarios[r.Scenario]++
		if r.AvgHVACKW <= 0 {
			t.Errorf("%s/%s: non-positive HVAC power %v", r.Scenario, r.Controller, r.AvgHVACKW)
		}
		if r.DeltaSoH <= 0 {
			t.Errorf("%s/%s: non-positive SoH degradation %v", r.Scenario, r.Controller, r.DeltaSoH)
		}
	}
	if scenarios["none"] != 3 || scenarios["stuck"] != 3 {
		t.Fatalf("scenario grouping wrong: %v", scenarios)
	}

	out := RenderFaultSweep(rows)
	for _, want := range []string{"Fault sweep", "stuck", NameSupervisedMPC} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered sweep missing %q:\n%s", want, out)
		}
	}

	if _, err := FaultSweep(opts, []string{"no-such"}); err == nil {
		t.Fatal("unknown scenario name accepted")
	}
}
