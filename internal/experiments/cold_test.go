package experiments

import (
	"strings"
	"testing"

	"evclimate/internal/runner"
)

// TestColdSpecPure pins the fabric contract: two builds from the same
// wire parameters expand identical jobs (coordinator and joining
// workers must agree on the shard map), and the spec carries the
// thermal plant into every job.
func TestColdSpecPure(t *testing.T) {
	params := ColdParams(Options{MaxProfileS: 120})
	a, err := ColdSpec(params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ColdSpec(params)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := runner.Expand(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := runner.Expand(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(ja) != len(jb) || len(ja) == 0 {
		t.Fatalf("job counts %d vs %d", len(ja), len(jb))
	}
	if fa, fb := runner.SweepFingerprint(ja), runner.SweepFingerprint(jb); fa != fb {
		t.Fatalf("sweep fingerprints differ: %x vs %x", fa, fb)
	}
	if a.Base == nil || a.Base.Thermal == nil {
		t.Fatal("cold spec must carry the thermal plant template")
	}
	if !a.StartFromAmbient {
		t.Fatal("cold spec must soak the cabin at ambient")
	}
	// The four methodologies, in ladder order.
	want := []string{NameOnOff, NameFuzzy, NameMPC, NameThermalMPC}
	if len(a.Controllers) != len(want) {
		t.Fatalf("controllers = %d, want %d", len(a.Controllers), len(want))
	}
	for i, c := range a.Controllers {
		if c.Label != want[i] {
			t.Errorf("controller %d = %q, want %q", i, c.Label, want[i])
		}
	}
}

// TestColdSpecRegistered checks the fabric registry resolves the cold
// sweep by name — the path `evbench -serve`/-join workers take.
func TestColdSpecRegistered(t *testing.T) {
	spec, err := FabricSpecs().Build("cold", ColdParams(Options{MaxProfileS: 60}))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := runner.Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := len(ColdCycles) * len(ColdAmbients) * len(spec.Controllers)
	if len(jobs) != want {
		t.Fatalf("registry expanded %d jobs, want %d", len(jobs), want)
	}
}

// TestRunColdQuick runs the truncated sweep end-to-end and reduces it to
// table rows: one per (cycle, ambient) cell, each carrying all four
// controllers and a plausible cold-pack trajectory.
func TestRunColdQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full cold sweep in -short mode")
	}
	sw, err := RunCold(Options{MaxProfileS: 120})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ColdRows(sw)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(rows), len(ColdCycles)*len(ColdAmbients); got != want {
		t.Fatalf("rows = %d, want %d", got, want)
	}
	for _, r := range rows {
		if r.MPCDeltaSoH <= 0 || r.ThermalDeltaSoH <= 0 {
			t.Errorf("%s@%g: degenerate ΔSoH %+v", r.Cycle, r.AmbientC, r)
		}
		// The pack starts soaked at ambient and the drive cannot cool it
		// below that soak.
		if r.ThermalPackMinC < r.AmbientC-0.5 {
			t.Errorf("%s@%g: pack min %.2f °C below soak", r.Cycle, r.AmbientC, r.ThermalPackMinC)
		}
	}
	out := RenderCold(rows)
	if !strings.Contains(out, "ECE15") || !strings.Contains(out, "UDDS") {
		t.Errorf("render missing cycles:\n%s", out)
	}
}
