package experiments

import (
	"fmt"
	"strings"

	"evclimate/internal/powertrain"
)

// The paper's second objective besides battery lifetime is driving range
// ("improve the battery lifetime and driving range"). The evaluation
// section reports range only implicitly through average HVAC power; this
// harness makes it explicit: each controller's measured average HVAC
// power is converted into a driving-range estimate with the prorating
// approach of [12] (the same reference the paper verifies its power-train
// model against).

// RangeRow is one drive profile's range comparison.
type RangeRow struct {
	// Cycle is the profile name.
	Cycle string
	// NoHVACKm is the reference range with the HVAC off.
	NoHVACKm float64
	// OnOffKm, FuzzyKm, MPCKm are ranges under each controller's
	// measured average HVAC power.
	OnOffKm, FuzzyKm, MPCKm float64
	// MPCGainKm is the range the lifetime-aware controller recovers
	// versus On/Off.
	MPCGainKm float64
}

// RangeComparison derives range rows from cycle runs, using the given
// usable battery energy in kWh. Ranges are estimated on the profiles the
// sweep actually evaluated (post-processing only; no re-simulation).
func RangeComparison(cycles []CycleResult, usableKWh float64) ([]RangeRow, error) {
	pt, err := powertrain.New(powertrain.NissanLeaf())
	if err != nil {
		return nil, err
	}
	rows := make([]RangeRow, 0, len(cycles))
	for _, c := range cycles {
		p := c.Profile
		row := RangeRow{
			Cycle:    c.Cycle,
			NoHVACKm: pt.RangeKm(p, usableKWh, 0),
			OnOffKm:  pt.RangeKm(p, usableKWh, c.Results[NameOnOff].AvgHVACW),
			FuzzyKm:  pt.RangeKm(p, usableKWh, c.Results[NameFuzzy].AvgHVACW),
			MPCKm:    pt.RangeKm(p, usableKWh, c.Results[NameMPC].AvgHVACW),
		}
		row.MPCGainKm = row.MPCKm - row.OnOffKm
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderRange formats the range comparison.
func RenderRange(rows []RangeRow) string {
	var sb strings.Builder
	sb.WriteString("Driving range (km on 21.3 kWh usable) under each controller's HVAC load\n")
	sb.WriteString("Cycle      no HVAC  On/Off  Fuzzy-based  Lifetime-aware  recovered\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %7.0f %7.0f %12.0f %15.0f %+9.0f\n",
			r.Cycle, r.NoHVACKm, r.OnOffKm, r.FuzzyKm, r.MPCKm, r.MPCGainKm)
	}
	return sb.String()
}
