package experiments

import (
	"fmt"
	"strings"

	"evclimate/internal/core"
	"evclimate/internal/runner"
	"evclimate/internal/sqp"
)

// This file implements the ablation studies DESIGN.md §7 calls out for the
// design choices behind the MPC controller: horizon length, the
// SoC-deviation weight w2 (the term that distinguishes the paper's
// controller from a plain comfort+energy MPC), the SQP iteration budget
// (down to a single-QP controller), and the plant/controller time-step
// ratio (model-mismatch sensitivity).

// AblationRow is one configuration's outcome.
type AblationRow struct {
	// Label names the configuration, e.g. "N=20".
	Label string
	// AvgHVACW, DeltaSoH, SoCDev, RMSTrackingErrC, ComfortViolationFrac
	// are the run metrics.
	AvgHVACW, DeltaSoH, SoCDev, RMSTrackingErrC, ComfortViolationFrac float64
	// SolveTimeMs is the mean wall-clock time per MPC step.
	SolveTimeMs float64
}

// solveCounter is the diagnostics surface the MPC exposes; the ablation
// uses it to normalize wall-clock time per solve.
type solveCounter interface {
	Stats() core.Stats
}

// runMPCSpecs simulates one MPC configuration per spec on the hot-day
// ECE_EUDC profile — all configurations in parallel on the sweep engine —
// and collects one ablation row per spec, in spec order.
func (o *Options) runMPCSpecs(specs []runner.ControllerSpec) ([]AblationRow, error) {
	sw, err := o.sweep(specs,
		[]runner.CycleSpec{{Name: "ECE_EUDC"}},
		[]runner.Env{{AmbientC: o.AmbientC, SolarW: o.SolarW}})
	if err != nil {
		return nil, err
	}
	rows := make([]AblationRow, 0, len(specs))
	for i := range sw.Jobs {
		jr := &sw.Jobs[i]
		res := jr.Result
		row := AblationRow{
			Label:                jr.Job.Controller.Label,
			AvgHVACW:             res.AvgHVACW,
			DeltaSoH:             res.DeltaSoH,
			SoCDev:               res.SoCDev,
			RMSTrackingErrC:      res.RMSTrackingErrC,
			ComfortViolationFrac: res.ComfortViolationFrac,
		}
		if mpc, ok := jr.Instance.(solveCounter); ok {
			if solves := mpc.Stats().Solves; solves > 0 {
				row.SolveTimeMs = float64(jr.Elapsed.Milliseconds()) / float64(solves)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// mpcSpec labels one MPC configuration for the ablation sweep.
func (o *Options) mpcSpec(label string, mcfg core.Config, controlDt float64) runner.ControllerSpec {
	spec := runner.MPCSpec(mcfg, controlDt)
	spec.Label = label
	return spec
}

// AblateHorizon sweeps the MPC horizon length N.
func AblateHorizon(opts Options, horizons []int) ([]AblationRow, error) {
	opts.fill()
	if len(horizons) == 0 {
		horizons = []int{4, 8, 12, 20}
	}
	specs := make([]runner.ControllerSpec, 0, len(horizons))
	for _, n := range horizons {
		mcfg := opts.mpcConfig()
		mcfg.Horizon = n
		specs = append(specs, opts.mpcSpec(fmt.Sprintf("N=%d", n), mcfg, opts.MPCControlDt))
	}
	return opts.runMPCSpecs(specs)
}

// AblateSoCDevWeight sweeps w2. w2 = 0 reduces the controller to a plain
// comfort+energy MPC — the configuration that isolates the paper's
// battery-lifetime term.
func AblateSoCDevWeight(opts Options, weights []float64) ([]AblationRow, error) {
	opts.fill()
	if len(weights) == 0 {
		weights = []float64{0, 10, 50, 200}
	}
	specs := make([]runner.ControllerSpec, 0, len(weights))
	for _, w2 := range weights {
		mcfg := opts.mpcConfig()
		mcfg.Weights.SoCDev = w2
		specs = append(specs, opts.mpcSpec(fmt.Sprintf("w2=%g", w2), mcfg, opts.MPCControlDt))
	}
	return opts.runMPCSpecs(specs)
}

// AblateSQPBudget sweeps the per-step SQP iteration limit. MaxIter = 1 is
// the "single-QP" controller: one linearization of the bilinear dynamics,
// no outer iterations.
func AblateSQPBudget(opts Options, budgets []int) ([]AblationRow, error) {
	opts.fill()
	if len(budgets) == 0 {
		budgets = []int{1, 5, 15, 30}
	}
	specs := make([]runner.ControllerSpec, 0, len(budgets))
	for _, it := range budgets {
		mcfg := opts.mpcConfig()
		mcfg.SQP = sqp.Options{MaxIter: it, Tol: 1e-4}
		specs = append(specs, opts.mpcSpec(fmt.Sprintf("sqp=%d", it), mcfg, opts.MPCControlDt))
	}
	return opts.runMPCSpecs(specs)
}

// AblateControlPeriod sweeps the controller period against the fixed
// plant integration (PlantSubSteps keeps the plant step ≈ 1 s), probing
// sensitivity to plant/controller rate mismatch.
func AblateControlPeriod(opts Options, periods []float64) ([]AblationRow, error) {
	opts.fill()
	if len(periods) == 0 {
		periods = []float64{2, 5, 10}
	}
	specs := make([]runner.ControllerSpec, 0, len(periods))
	for _, dt := range periods {
		mcfg := opts.mpcConfig()
		mcfg.Dt = dt
		specs = append(specs, opts.mpcSpec(fmt.Sprintf("dt=%gs", dt), mcfg, dt))
	}
	return opts.runMPCSpecs(specs)
}

// RenderAblation formats ablation rows under a title.
func RenderAblation(title string, rows []AblationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation — %s (ECE_EUDC, hot day)\n", title)
	sb.WriteString("config     HVAC kW    ΔSoH %   SoC dev   RMS °C  viol %  ms/solve\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %7.2f %9.5f %9.3f %8.2f %7.1f %9.1f\n",
			r.Label, r.AvgHVACW/1000, r.DeltaSoH, r.SoCDev,
			r.RMSTrackingErrC, 100*r.ComfortViolationFrac, r.SolveTimeMs)
	}
	return sb.String()
}
