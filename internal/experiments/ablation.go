package experiments

import (
	"fmt"
	"strings"
	"time"

	"evclimate/internal/core"
	"evclimate/internal/drivecycle"
	"evclimate/internal/sim"
	"evclimate/internal/sqp"
)

// This file implements the ablation studies DESIGN.md §7 calls out for the
// design choices behind the MPC controller: horizon length, the
// SoC-deviation weight w2 (the term that distinguishes the paper's
// controller from a plain comfort+energy MPC), the SQP iteration budget
// (down to a single-QP controller), and the plant/controller time-step
// ratio (model-mismatch sensitivity).

// AblationRow is one configuration's outcome.
type AblationRow struct {
	// Label names the configuration, e.g. "N=20".
	Label string
	// AvgHVACW, DeltaSoH, SoCDev, RMSTrackingErrC, ComfortViolationFrac
	// are the run metrics.
	AvgHVACW, DeltaSoH, SoCDev, RMSTrackingErrC, ComfortViolationFrac float64
	// SolveTimeMs is the mean wall-clock time per MPC step.
	SolveTimeMs float64
}

// runMPCConfig simulates one MPC configuration on the hot-day ECE_EUDC
// profile and collects metrics.
func (o *Options) runMPCConfig(label string, mcfg core.Config) (AblationRow, error) {
	p := o.prepare(drivecycle.ECEEUDC(), o.AmbientC, o.SolarW)
	cfg := sim.DefaultConfig(p)
	cfg.TargetC = o.TargetC
	cfg.ComfortBandC = o.ComfortBandC
	cfg.InitialCabinC = o.TargetC
	cfg.ControlDt = o.MPCControlDt
	cfg.ForecastSteps = mcfg.Horizon
	runner, err := sim.New(cfg)
	if err != nil {
		return AblationRow{}, err
	}
	mpc, err := core.New(mcfg)
	if err != nil {
		return AblationRow{}, err
	}
	start := time.Now()
	res, err := runner.Run(mpc)
	if err != nil {
		return AblationRow{}, fmt.Errorf("experiments: ablation %s: %w", label, err)
	}
	elapsed := time.Since(start)
	row := AblationRow{
		Label:                label,
		AvgHVACW:             res.AvgHVACW,
		DeltaSoH:             res.DeltaSoH,
		SoCDev:               res.SoCDev,
		RMSTrackingErrC:      res.RMSTrackingErrC,
		ComfortViolationFrac: res.ComfortViolationFrac,
	}
	if solves := mpc.Stats().Solves; solves > 0 {
		row.SolveTimeMs = float64(elapsed.Milliseconds()) / float64(solves)
	}
	return row, nil
}

// AblateHorizon sweeps the MPC horizon length N.
func AblateHorizon(opts Options, horizons []int) ([]AblationRow, error) {
	opts.fill()
	if len(horizons) == 0 {
		horizons = []int{4, 8, 12, 20}
	}
	rows := make([]AblationRow, 0, len(horizons))
	for _, n := range horizons {
		mcfg := opts.mpcConfig()
		mcfg.Horizon = n
		row, err := opts.runMPCConfig(fmt.Sprintf("N=%d", n), mcfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblateSoCDevWeight sweeps w2. w2 = 0 reduces the controller to a plain
// comfort+energy MPC — the configuration that isolates the paper's
// battery-lifetime term.
func AblateSoCDevWeight(opts Options, weights []float64) ([]AblationRow, error) {
	opts.fill()
	if len(weights) == 0 {
		weights = []float64{0, 10, 50, 200}
	}
	rows := make([]AblationRow, 0, len(weights))
	for _, w2 := range weights {
		mcfg := opts.mpcConfig()
		mcfg.Weights.SoCDev = w2
		row, err := opts.runMPCConfig(fmt.Sprintf("w2=%g", w2), mcfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblateSQPBudget sweeps the per-step SQP iteration limit. MaxIter = 1 is
// the "single-QP" controller: one linearization of the bilinear dynamics,
// no outer iterations.
func AblateSQPBudget(opts Options, budgets []int) ([]AblationRow, error) {
	opts.fill()
	if len(budgets) == 0 {
		budgets = []int{1, 5, 15, 30}
	}
	rows := make([]AblationRow, 0, len(budgets))
	for _, it := range budgets {
		mcfg := opts.mpcConfig()
		mcfg.SQP = sqp.Options{MaxIter: it, Tol: 1e-4}
		row, err := opts.runMPCConfig(fmt.Sprintf("sqp=%d", it), mcfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblateControlPeriod sweeps the controller period against the fixed
// plant integration (PlantSubSteps keeps the plant step ≈ 1 s), probing
// sensitivity to plant/controller rate mismatch.
func AblateControlPeriod(opts Options, periods []float64) ([]AblationRow, error) {
	opts.fill()
	if len(periods) == 0 {
		periods = []float64{2, 5, 10}
	}
	rows := make([]AblationRow, 0, len(periods))
	for _, dt := range periods {
		o := opts
		o.MPCControlDt = dt
		mcfg := o.mpcConfig()
		mcfg.Dt = dt
		row, err := o.runMPCConfig(fmt.Sprintf("dt=%gs", dt), mcfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderAblation formats ablation rows under a title.
func RenderAblation(title string, rows []AblationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation — %s (ECE_EUDC, hot day)\n", title)
	sb.WriteString("config     HVAC kW    ΔSoH %   SoC dev   RMS °C  viol %  ms/solve\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %7.2f %9.5f %9.3f %8.2f %7.1f %9.1f\n",
			r.Label, r.AvgHVACW/1000, r.DeltaSoH, r.SoCDev,
			r.RMSTrackingErrC, 100*r.ComfortViolationFrac, r.SolveTimeMs)
	}
	return sb.String()
}
