package experiments

import (
	"context"
	"fmt"
	"strings"

	"evclimate/internal/core"
	"evclimate/internal/faults"
	"evclimate/internal/runner"
)

// NameSupervisedMPC labels the lifetime-aware MPC wrapped in the
// degradation ladder, as swept by the fault experiment.
const NameSupervisedMPC = "Supervised MPC"

// FaultRow is one (fault scenario, controller) cell of the fault sweep.
type FaultRow struct {
	// Scenario is the built-in fault-scenario name, or "none" for the
	// clean baseline.
	Scenario string
	// Controller is the controller label.
	Controller string
	// AvgHVACKW is the mean HVAC electrical power.
	AvgHVACKW float64
	// DeltaSoH is the battery SoH degradation over the cycle, percent.
	DeltaSoH float64
	// ComfortViolationFrac is the post-settling fraction of time outside
	// the comfort zone.
	ComfortViolationFrac float64
	// RMSTrackingErrC is the post-settling RMS tracking error.
	RMSTrackingErrC float64
}

// FaultSweep runs the baselines and the supervised MPC through the named
// built-in fault scenarios — all of them when names is empty — plus a
// clean control run, on the ECE_EUDC profile, and reports how much
// comfort and battery life each failure mode costs. Profiles are capped
// at 600 s by default — every built-in fault window closes by 480 s — so
// the sweep measures fault response plus recovery, not a long clean tail.
func FaultSweep(opts Options, names []string) ([]FaultRow, error) {
	opts.fill()
	if opts.MaxProfileS == 0 {
		opts.MaxProfileS = 600
	}
	if len(names) == 0 {
		names = faults.BuiltinNames()
	}

	fltSpecs := []faults.Spec{{Name: "none"}}
	for _, name := range names {
		flt, err := faults.Builtin(name)
		if err != nil {
			return nil, err
		}
		fltSpecs = append(fltSpecs, flt)
	}

	controllers := []runner.ControllerSpec{
		runner.OnOffSpec(opts.BaselineControlDt),
		runner.FuzzySpec(opts.BaselineControlDt),
		runner.SupervisedMPCSpec(core.SupervisedConfig{MPC: opts.mpcConfig()}, opts.MPCControlDt),
	}
	spec := runner.Spec{
		Controllers:  controllers,
		Cycles:       []runner.CycleSpec{{Name: "ECE_EUDC"}},
		Envs:         []runner.Env{{AmbientC: opts.AmbientC, SolarW: opts.SolarW}},
		Targets:      []float64{opts.TargetC},
		ComfortBandC: opts.ComfortBandC,
		MaxProfileS:  opts.MaxProfileS,
		Faults:       fltSpecs,
	}
	sw, err := runner.Run(context.Background(), spec, opts.runnerOptions("faultsweep"))
	if err != nil {
		return nil, err
	}
	if err := sw.FirstErr(); err != nil {
		return nil, err
	}

	var rows []FaultRow
	for i := range sw.Jobs {
		jr := &sw.Jobs[i]
		scenario := "none"
		if jr.Job.Fault != nil {
			scenario = jr.Job.Fault.Name
		}
		res := jr.Result
		rows = append(rows, FaultRow{
			Scenario:             scenario,
			Controller:           jr.Job.Controller.Label,
			AvgHVACKW:            res.AvgHVACW / 1000,
			DeltaSoH:             res.DeltaSoH,
			ComfortViolationFrac: res.ComfortViolationFrac,
			RMSTrackingErrC:      res.RMSTrackingErrC,
		})
	}
	return rows, nil
}

// RenderFaultSweep formats the fault sweep grouped by scenario.
func RenderFaultSweep(rows []FaultRow) string {
	var sb strings.Builder
	sb.WriteString("Fault sweep — controller robustness under injected faults (ECE_EUDC)\n")
	sb.WriteString("Scenario       Controller              HVAC kW   ΔSoH %   discomfort   RMS °C\n")
	prev := ""
	for _, r := range rows {
		name := r.Scenario
		if name == prev {
			name = ""
		} else {
			prev = name
		}
		fmt.Fprintf(&sb, "%-14s %-22s %8.2f %8.4f %12.3f %8.2f\n",
			name, r.Controller, r.AvgHVACKW, r.DeltaSoH, r.ComfortViolationFrac, r.RMSTrackingErrC)
	}
	return sb.String()
}
