package experiments

import (
	"strings"
	"testing"

	"evclimate/internal/core"
	"evclimate/internal/sqp"
)

// quickOpts keeps MPC runs short: truncated profiles and a reduced SQP
// budget. Profiles must stay ≥ 300 s — the On/Off thermostat's cycle
// period — or the baseline never engages. The full-length experiments run
// in cmd/evbench and the repository benchmarks.
func quickOpts() Options {
	cfg := core.DefaultConfig()
	cfg.SQP = sqp.Options{MaxIter: 12, Tol: 1e-4}
	return Options{MaxProfileS: 300, MPC: &cfg}
}

func TestFig1Shape(t *testing.T) {
	rows, err := Fig1(Fig1Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		evSum := r.EVMotorPct + r.EVHVACPct + r.EVAccPct
		iceSum := r.ICEEnginePct + r.ICEHVACPct + r.ICEAccPct
		if evSum < 99.9 || evSum > 100.1 || iceSum < 99.9 || iceSum > 100.1 {
			t.Errorf("ambient %v: percentages don't sum to 100 (EV %v, ICE %v)", r.AmbientC, evSum, iceSum)
		}
		if r.EVHVACPct < 0 || r.ICEHVACPct < 0 {
			t.Errorf("ambient %v: negative HVAC share", r.AmbientC)
		}
	}
	cold, mild, hot := rows[0], rows[3], rows[5]
	// Paper Fig. 1: the EV pays for HVAC at BOTH temperature extremes
	// (V-shape); the ICE vehicle heats for free.
	if !(cold.EVHVACPct > mild.EVHVACPct && hot.EVHVACPct > mild.EVHVACPct) {
		t.Errorf("EV HVAC share not V-shaped: cold %v, mild %v, hot %v",
			cold.EVHVACPct, mild.EVHVACPct, hot.EVHVACPct)
	}
	if cold.ICEHVACPct > 5 {
		t.Errorf("ICE heats with waste engine heat; HVAC share at −10 °C = %v%%", cold.ICEHVACPct)
	}
	// EV HVAC share dominates ICE share at the cold extreme (paper: up to
	// 20 % vs 9 %).
	if cold.EVHVACPct < 2*cold.ICEHVACPct {
		t.Errorf("EV/ICE HVAC share contrast missing: %v vs %v", cold.EVHVACPct, cold.ICEHVACPct)
	}
	if cold.EVHVACPct < 10 || cold.EVHVACPct > 35 {
		t.Errorf("EV HVAC share at −10 °C = %v%%, want 10–35%%", cold.EVHVACPct)
	}
	out := RenderFig1(rows)
	if !strings.Contains(out, "Fig. 1") || strings.Count(out, "\n") < 7 {
		t.Errorf("render too short:\n%s", out)
	}
}

func TestFig5ControllerCharacters(t *testing.T) {
	traces, err := Fig5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 {
		t.Fatalf("traces = %d, want 3", len(traces))
	}
	byName := map[string]*Trace{}
	for i := range traces {
		byName[traces[i].Name] = &traces[i]
	}
	onoff, fuzzy, mpc := byName[NameOnOff], byName[NameFuzzy], byName[NameMPC]
	if onoff == nil || fuzzy == nil || mpc == nil {
		t.Fatalf("missing controllers: %v", traces)
	}
	// Paper Fig. 5: On/Off fluctuates the most; fuzzy and MPC are tight.
	settle := 60.0
	if onoff.TemperatureRippleC(settle) <= fuzzy.TemperatureRippleC(settle) {
		t.Errorf("On/Off ripple %v should exceed fuzzy %v",
			onoff.TemperatureRippleC(settle), fuzzy.TemperatureRippleC(settle))
	}
	if onoff.TemperatureRippleC(settle) <= mpc.TemperatureRippleC(settle) {
		t.Errorf("On/Off ripple %v should exceed MPC %v",
			onoff.TemperatureRippleC(settle), mpc.TemperatureRippleC(settle))
	}
	out := RenderFig5(traces)
	if !strings.Contains(out, NameMPC) {
		t.Errorf("render missing controller:\n%s", out)
	}
}

func TestFig6PrecoolShape(t *testing.T) {
	// The precool schedule needs a full SQP budget to express; this is a
	// single MPC run, so use the default 30-iteration budget.
	opts := quickOpts()
	cfg := core.DefaultConfig()
	opts.MPC = &cfg
	pts, err := Fig6(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	peak, valley := PeakValleyHVAC(pts)
	// The defining behaviour (paper Fig. 6): HVAC effort concentrates in
	// motor-power valleys.
	if valley <= peak {
		t.Errorf("no precool: valley %v W ≤ peak %v W", valley, peak)
	}
	out := RenderFig6(pts)
	if !strings.Contains(out, "precool confirmed") {
		t.Errorf("render did not confirm precool:\n%s", out)
	}
}

func TestFig7Fig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("five MPC runs; skipped in -short mode")
	}
	cycles, err := RunCycles(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(cycles) != 5 {
		t.Fatalf("cycles = %d, want 5", len(cycles))
	}
	f7 := Fig7(cycles)
	f8 := Fig8(cycles)
	// On truncated profiles the On/Off thermostat coasts through its
	// initial free-drift period, so the authoritative MPC-vs-On/Off
	// ordering is asserted on a full-length run (TestFullLengthOrdering)
	// and by cmd/evbench. Here we check structure and the MPC-vs-fuzzy
	// relation, which is fair at any length (both act continuously).
	winsSoH, winsPower := 0, 0
	for i, r := range f7 {
		if r.OnOffPct != 100 {
			t.Errorf("%s: OnOff reference %v != 100", r.Cycle, r.OnOffPct)
		}
		// Loose bounds: truncation cuts off the precool payback phase,
		// inflating the MPC's apparent power on short windows.
		if r.MPCPct <= r.FuzzyPct*1.05 {
			winsSoH++
		}
		if f8[i].MPCKW <= f8[i].FuzzyKW*1.6 {
			winsPower++
		}
		if f8[i].OnOffKW <= 0 || f8[i].MPCKW <= 0 || f8[i].FuzzyKW <= 0 {
			t.Errorf("%s: non-positive power", r.Cycle)
		}
	}
	if winsSoH < 4 {
		t.Errorf("MPC ΔSoH beat fuzzy on only %d/5 cycles:\n%s", winsSoH, RenderFig7(f7))
	}
	if winsPower < 4 {
		t.Errorf("MPC power competitive with fuzzy on only %d/5 cycles:\n%s", winsPower, RenderFig8(f8))
	}
}

// TestFullLengthOrdering asserts the paper's headline ordering — MPC
// beats On/Off on both average HVAC power and ΔSoH — on one full-length
// ECE_EUDC hot-day run.
func TestFullLengthOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("full-length MPC run; skipped in -short mode")
	}
	opts := quickOpts()
	opts.MaxProfileS = 0 // full length
	rows, err := Table1(opts, []float64{35})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.MPCKW >= r.OnOffKW {
		t.Errorf("MPC %v kW ≥ On/Off %v kW at 35 °C", r.MPCKW, r.OnOffKW)
	}
	if r.ImpOnOffPct <= 2 {
		t.Errorf("SoH improvement vs On/Off = %v%%, want > 2%%", r.ImpOnOffPct)
	}
	// Table I scale: On/Off around 3 kW, MPC around 2 kW at 35 °C.
	if r.OnOffKW < 1.5 || r.OnOffKW > 5.5 {
		t.Errorf("On/Off power %v kW outside Table I scale", r.OnOffKW)
	}
	if r.MPCKW < 1 || r.MPCKW > 4 {
		t.Errorf("MPC power %v kW outside Table I scale", r.MPCKW)
	}
}

func TestTable1HotAndCold(t *testing.T) {
	rows, err := Table1(quickOpts(), []float64{35, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	hot, cold := rows[0], rows[1]
	// Structural checks on truncated profiles (the On/Off ordering is
	// asserted full-length in TestFullLengthOrdering): powers positive,
	// MPC in the kilowatt band at both extremes, cold row heavier than
	// 21 °C would be.
	for _, r := range rows {
		if r.OnOffKW <= 0 || r.FuzzyKW <= 0 || r.MPCKW <= 0 {
			t.Errorf("%v °C: non-positive power row %+v", r.AmbientC, r)
		}
	}
	if hot.MPCKW < 1 || hot.MPCKW > 5 {
		t.Errorf("MPC power at 35 °C = %v kW, want 1–5", hot.MPCKW)
	}
	if cold.MPCKW < 1.5 || cold.MPCKW > 6 {
		t.Errorf("MPC power at 0 °C = %v kW, want 1.5–6", cold.MPCKW)
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "Table I") || strings.Count(out, "°C") < 2 {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.fill()
	if o.AmbientC != 35 || o.SolarW != 400 || o.TargetC != 24 || o.ComfortBandC != 3 {
		t.Errorf("defaults wrong: %+v", o)
	}
	if o.MPCControlDt != 5 || o.BaselineControlDt != 1 {
		t.Errorf("control periods wrong: %+v", o)
	}
	cfg := o.mpcConfig()
	if cfg.Horizon != core.DefaultConfig().Horizon {
		t.Error("mpcConfig default mismatch")
	}
}

func TestRunFleetSmall(t *testing.T) {
	mcfg := core.DefaultConfig()
	mcfg.SQP = sqp.Options{MaxIter: 10, Tol: 1e-4}
	s, err := RunFleet(FleetConfig{Trips: 3, Seed: 7, MaxProfileS: 150, MPC: &mcfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Trips) != 3 {
		t.Fatalf("trips = %d", len(s.Trips))
	}
	for _, tr := range s.Trips {
		if tr.OnOffDeltaSoH <= 0 || tr.MPCDeltaSoH <= 0 {
			t.Errorf("%s: degenerate ΔSoH %+v", tr.Label, tr)
		}
	}
	if s.MinSoHSavingPct > s.MedianSoHSavingPct || s.MedianSoHSavingPct > s.MaxSoHSavingPct {
		t.Errorf("distribution stats inconsistent: %+v", s)
	}
	// Deterministic under the same seed.
	s2, err := RunFleet(FleetConfig{Trips: 3, Seed: 7, MaxProfileS: 150, MPC: &mcfg})
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanSoHSavingPct != s2.MeanSoHSavingPct {
		t.Errorf("fleet sweep not reproducible: %v vs %v", s.MeanSoHSavingPct, s2.MeanSoHSavingPct)
	}
	out := RenderFleet(s)
	if !strings.Contains(out, "Fleet Monte-Carlo") || !strings.Contains(out, "wins") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestRangeComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("needs cycle runs")
	}
	cycles, err := RunCycles(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RangeComparison(cycles, 21.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// HVAC always costs range; the no-HVAC reference is the ceiling.
		if r.OnOffKm >= r.NoHVACKm || r.MPCKm >= r.NoHVACKm {
			t.Errorf("%s: HVAC-on ranges exceed the no-HVAC ceiling: %+v", r.Cycle, r)
		}
		if r.OnOffKm <= 0 || r.MPCKm <= 0 {
			t.Errorf("%s: non-positive range", r.Cycle)
		}
	}
	out := RenderRange(rows)
	if !strings.Contains(out, "Driving range") {
		t.Errorf("render malformed:\n%s", out)
	}
}
