package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"evclimate/internal/core"
	"evclimate/internal/runner"
	"evclimate/internal/sim"
	"evclimate/internal/thermal"
)

// The cold-climate sweep is the paper's evaluation pushed into the regime
// it left out: deep sub-zero ambients where cabin heating competes with
// battery lifetime directly (a cold-soaked pack cycles under lithium-
// plating stress until it warms). Four controllers run over the same
// thermal plant — the two baselines with the thermostatic battery rules,
// the DAC'15 cabin-only MPC, and the co-scheduling MPC that decides the
// battery heater/chiller jointly with the HVAC — so the table isolates
// what co-scheduling itself buys in energy, comfort, ΔSoH, and range.

// NameThermalMPC labels the co-scheduling controller in sweep results.
const NameThermalMPC = "Thermal Co-scheduling"

// ColdAmbients are the swept deep-cold outside temperatures, °C.
var ColdAmbients = []float64{-20, -15, -10, -5, 0}

// ColdCycles are the swept drive profiles: the paper's urban reference
// and the longer EPA urban cycle.
var ColdCycles = []string{"ECE15", "UDDS"}

// coldSeed pins the cold sweep's base seed.
const coldSeed = 20260808

// ColdParams encodes the cold sweep's variability as wire parameters for
// the fabric (see DistParams).
func ColdParams(o Options) map[string]string {
	o.fill()
	return map[string]string{
		"seed":  strconv.FormatInt(coldSeed, 10),
		"max_s": strconv.FormatFloat(o.MaxProfileS, 'g', -1, 64),
	}
}

// coldBase is the cold sweep's simulation template: the default plant
// with the battery thermal network attached, pack soaked at ambient.
func coldBase() *sim.Config {
	base := sim.DefaultConfig(nil)
	th := thermal.DefaultThermal()
	base.Thermal = &th
	return &base
}

// ColdSpec is the distributable cold-climate sweep: ColdCycles ×
// ColdAmbients (no solar — overnight/winter) × four controllers on the
// thermal plant, every run soaked at ambient. The builder is pure so
// coordinator and joining workers expand identical jobs.
func ColdSpec(params map[string]string) (runner.Spec, error) {
	seed, err := strconv.ParseInt(params["seed"], 10, 64)
	if err != nil {
		return runner.Spec{}, fmt.Errorf("experiments: cold seed param: %w", err)
	}
	maxS, err := strconv.ParseFloat(params["max_s"], 64)
	if err != nil {
		return runner.Spec{}, fmt.Errorf("experiments: cold max_s param: %w", err)
	}
	cycles := make([]runner.CycleSpec, len(ColdCycles))
	for i, name := range ColdCycles {
		cycles[i] = runner.CycleSpec{Name: name}
	}
	envs := make([]runner.Env, len(ColdAmbients))
	for i, amb := range ColdAmbients {
		envs[i] = runner.Env{AmbientC: amb}
	}
	return runner.Spec{
		Controllers: []runner.ControllerSpec{
			runner.OnOffSpec(1),
			runner.FuzzySpec(1),
			runner.MPCSpec(core.DefaultConfig(), 5),
			runner.ThermalMPCSpec(core.DefaultConfig(), 5),
		},
		Cycles:           cycles,
		Envs:             envs,
		Targets:          []float64{22},
		BaseSeed:         seed,
		MaxProfileS:      maxS,
		StartFromAmbient: true,
		Base:             coldBase(),
	}, nil
}

// RunCold executes the cold-climate sweep single-process.
func RunCold(o Options) (*runner.Sweep, error) {
	o.fill()
	spec, err := ColdSpec(ColdParams(o))
	if err != nil {
		return nil, err
	}
	sw, err := runner.Run(o.ctx(), spec, o.runnerOptions("cold"))
	if err != nil {
		return nil, err
	}
	if err := sw.JobErrors(); err != nil {
		return nil, err
	}
	return sw, nil
}

// ColdRow is one (cycle, ambient) cell of the cold table, comparing the
// co-scheduling MPC against the cabin-only lifetime-aware MPC with the
// baselines' HVAC energy for context.
type ColdRow struct {
	// Cycle and AmbientC identify the scenario.
	Cycle    string
	AmbientC float64
	// OnOffKWh, FuzzyKWh are the baselines' HVAC energies.
	OnOffKWh, FuzzyKWh float64
	// MPCKWh and ThermalKWh are the cabin-only and co-scheduling MPC
	// HVAC energies (heater electrical, through the heat pump).
	MPCKWh, ThermalKWh float64
	// MPCComfortPct, ThermalComfortPct are post-settling comfort
	// violation fractions, percent.
	MPCComfortPct, ThermalComfortPct float64
	// MPCDeltaSoH and ThermalDeltaSoH are the total per-cycle capacity
	// losses (cycle stress × temperature factor + calendar), percent.
	MPCDeltaSoH, ThermalDeltaSoH float64
	// SoHSavingPct is the co-scheduling MPC's ΔSoH reduction vs the
	// cabin-only MPC.
	SoHSavingPct float64
	// MPCRangeKm and ThermalRangeKm extrapolate the cycle's distance per
	// SoC consumed to a full charge.
	MPCRangeKm, ThermalRangeKm float64
	// ThermalPackMinC and ThermalPackFinalC summarize the pack's
	// trajectory under co-scheduling.
	ThermalPackMinC, ThermalPackFinalC float64
}

// totalDeltaSoH is a result's full per-cycle capacity loss: the cycle
// term (already temperature-scaled for thermal runs) plus calendar aging.
func totalDeltaSoH(r *sim.Result) float64 {
	return r.DeltaSoH + r.CalendarDeltaSoH
}

// rangeKm extrapolates distance per SoC consumed to a full charge.
func rangeKm(distKm, initialSoC, finalSoC float64) float64 {
	if d := initialSoC - finalSoC; d > 0 {
		return distKm * 100 / d
	}
	return 0
}

// ColdRows reduces a cold sweep into its table rows, one per
// (cycle, ambient) cell.
func ColdRows(sw *runner.Sweep) ([]ColdRow, error) {
	cells := sw.Cells()
	rows := make([]ColdRow, 0, len(cells))
	for _, cell := range cells {
		if len(cell) == 0 {
			continue
		}
		job := &cell[0].Job
		results := runner.CellMap(cell)
		oo, fz := results[NameOnOff], results[NameFuzzy]
		mpc, th := results[NameMPC], results[NameThermalMPC]
		if oo == nil || fz == nil || mpc == nil || th == nil {
			return nil, fmt.Errorf("experiments: cold cell %s@%g missing a controller result",
				job.Cycle, job.Env.AmbientC)
		}
		distKm := job.Config.Profile.Stats().DistanceKm
		initSoC := job.Config.BMS.InitialSoC
		row := ColdRow{
			Cycle:             job.Cycle,
			AmbientC:          job.Env.AmbientC,
			OnOffKWh:          oo.HVACEnergyKWh,
			FuzzyKWh:          fz.HVACEnergyKWh,
			MPCKWh:            mpc.HVACEnergyKWh,
			ThermalKWh:        th.HVACEnergyKWh,
			MPCComfortPct:     100 * mpc.ComfortViolationFrac,
			ThermalComfortPct: 100 * th.ComfortViolationFrac,
			MPCDeltaSoH:       totalDeltaSoH(mpc),
			ThermalDeltaSoH:   totalDeltaSoH(th),
			MPCRangeKm:        rangeKm(distKm, initSoC, mpc.FinalSoC),
			ThermalRangeKm:    rangeKm(distKm, initSoC, th.FinalSoC),
			ThermalPackMinC:   th.PackMinC,
			ThermalPackFinalC: th.PackFinalC,
		}
		if row.MPCDeltaSoH > 0 {
			row.SoHSavingPct = 100 * (1 - row.ThermalDeltaSoH/row.MPCDeltaSoH)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderCold formats the cold-climate table: co-scheduling vs cabin-only
// MPC per scenario, baselines for context.
func RenderCold(rows []ColdRow) string {
	var sb strings.Builder
	sb.WriteString("Cold-climate sweep — co-scheduling MPC vs cabin-only MPC (pack soaked at ambient)\n")
	sb.WriteString("cycle    ambient  HVAC energy (kWh)                comfort viol (%)   ΔSoH total (%)        SoH    range (km)\n")
	sb.WriteString("                  On/Off  Fuzzy    MPC  Thermal      MPC  Thermal       MPC   Thermal     saved    MPC  Thermal\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %5.0f °C %7.3f %6.3f %6.3f %8.3f %8.1f %8.1f  %9.6f %9.6f %8.2f%% %6.0f %8.0f\n",
			r.Cycle, r.AmbientC, r.OnOffKWh, r.FuzzyKWh, r.MPCKWh, r.ThermalKWh,
			r.MPCComfortPct, r.ThermalComfortPct,
			r.MPCDeltaSoH, r.ThermalDeltaSoH, r.SoHSavingPct,
			r.MPCRangeKm, r.ThermalRangeKm)
	}
	return sb.String()
}
