package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"evclimate/internal/core"
	"evclimate/internal/runner"
)

// Table1Row is one ambient-temperature row of Table I.
type Table1Row struct {
	// AmbientC is the outside temperature.
	AmbientC float64
	// OnOffKW, FuzzyKW, MPCKW are the average HVAC powers.
	OnOffKW, FuzzyKW, MPCKW float64
	// ImpOnOffPct and ImpFuzzyPct are the SoH-degradation improvements
	// of the lifetime-aware controller relative to each baseline.
	ImpOnOffPct, ImpFuzzyPct float64
}

// Table1Ambients are the paper's evaluated outside temperatures.
var Table1Ambients = []float64{43, 35, 32, 21, 10, 0}

// Table1Params encodes the paper's Table I grid as wire parameters for
// the fabric (see DistParams).
func Table1Params(o Options) map[string]string {
	o.fill()
	return map[string]string{
		"seed":  strconv.FormatInt(distSeed, 10),
		"max_s": strconv.FormatFloat(o.MaxProfileS, 'g', -1, 64),
	}
}

// Table1Spec is the paper's Table I grid as a pure, fabric-distributable
// spec builder: ECE_EUDC × the six evaluated ambients under the three
// methodologies, seasonal solar (400 W on warm days, none below 15 °C).
func Table1Spec(params map[string]string) (runner.Spec, error) {
	seed, err := strconv.ParseInt(params["seed"], 10, 64)
	if err != nil {
		return runner.Spec{}, fmt.Errorf("experiments: table1 seed param: %w", err)
	}
	maxS, err := strconv.ParseFloat(params["max_s"], 64)
	if err != nil {
		return runner.Spec{}, fmt.Errorf("experiments: table1 max_s param: %w", err)
	}
	envs := make([]runner.Env, len(Table1Ambients))
	for i, amb := range Table1Ambients {
		envs[i] = runner.Env{AmbientC: amb, SolarW: 400}
		if amb < 15 {
			envs[i].SolarW = 0
		}
	}
	return runner.Spec{
		Controllers: []runner.ControllerSpec{
			runner.OnOffSpec(1),
			runner.FuzzySpec(1),
			runner.MPCSpec(core.DefaultConfig(), 5),
		},
		Cycles:      []runner.CycleSpec{{Name: "ECE_EUDC"}},
		Envs:        envs,
		Targets:     []float64{24},
		BaseSeed:    seed,
		MaxProfileS: maxS,
	}, nil
}

// Table1 reproduces the ambient-temperature analysis on the ECE_EUDC
// profile: average HVAC power per methodology and the SoH improvement of
// the lifetime-aware controller. Solar load follows the season: the
// options' SolarW on warm days (ambient ≥ 15 °C), zero on cold days.
func Table1(opts Options, ambients []float64) ([]Table1Row, error) {
	opts.fill()
	if len(ambients) == 0 {
		ambients = Table1Ambients
	}
	envs := make([]runner.Env, len(ambients))
	for i, amb := range ambients {
		envs[i] = runner.Env{AmbientC: amb, SolarW: opts.SolarW}
		if amb < 15 {
			envs[i].SolarW = 0
		}
	}
	sw, err := opts.sweep(opts.controllerSpecs(),
		[]runner.CycleSpec{{Name: "ECE_EUDC"}}, envs)
	if err != nil {
		return nil, err
	}
	rows := make([]Table1Row, 0, len(ambients))
	for i, cell := range sw.Cells() {
		results := runner.CellMap(cell)
		oo, fz, mpc := results[NameOnOff], results[NameFuzzy], results[NameMPC]
		row := Table1Row{
			AmbientC: ambients[i],
			OnOffKW:  oo.AvgHVACW / 1000,
			FuzzyKW:  fz.AvgHVACW / 1000,
			MPCKW:    mpc.AvgHVACW / 1000,
		}
		if oo.DeltaSoH > 0 {
			row.ImpOnOffPct = 100 * (1 - mpc.DeltaSoH/oo.DeltaSoH)
		}
		if fz.DeltaSoH > 0 {
			row.ImpFuzzyPct = 100 * (1 - mpc.DeltaSoH/fz.DeltaSoH)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable1 formats the rows like the paper's Table I.
func RenderTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table I — HVAC power and SoH-degradation improvement by ambient temperature (ECE_EUDC)\n")
	sb.WriteString("Ambient   avg HVAC power (kW)            SoH improvement (%)\n")
	sb.WriteString("          On/Off  Fuzzy  Lifetime-aware  vs On/Off  vs Fuzzy\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%5.0f °C  %6.2f %6.2f %15.2f  %9.2f %9.2f\n",
			r.AmbientC, r.OnOffKW, r.FuzzyKW, r.MPCKW, r.ImpOnOffPct, r.ImpFuzzyPct)
	}
	return sb.String()
}
