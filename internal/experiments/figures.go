package experiments

import (
	"fmt"
	"strings"

	"evclimate/internal/comfort"
	"evclimate/internal/drivecycle"
	"evclimate/internal/runner"
	"evclimate/internal/sim"
)

// Trace is one controller's cabin-temperature trajectory (Fig. 5).
type Trace struct {
	// Name is the controller name.
	Name string
	// Time and CabinC are the sampled trajectory.
	Time, CabinC []float64
	// AvgHVACW and RMSTrackingErrC summarize the run.
	AvgHVACW, RMSTrackingErrC float64
	// Comfort is the Fanger PMV/PPD score of the trajectory (extension
	// beyond the paper's fixed comfort band; see internal/comfort).
	Comfort comfort.TraceScore
}

// Fig5 reproduces the cabin-temperature analysis: the three controllers
// on the ECE_EUDC profile at the options' ambient conditions. The paper's
// qualitative result: On/Off swings across the band, fuzzy is nearly
// flat, and the MPC shows small controlled modulation.
func Fig5(opts Options) ([]Trace, error) {
	opts.fill()
	results, err := opts.runStandard("ECE_EUDC", opts.AmbientC, opts.SolarW)
	if err != nil {
		return nil, err
	}
	traces := make([]Trace, 0, 3)
	for _, name := range []string{NameOnOff, NameFuzzy, NameMPC} {
		r := results[name]
		tr := Trace{
			Name:            name,
			Time:            r.Trace.Time,
			CabinC:          r.Trace.CabinC,
			AvgHVACW:        r.AvgHVACW,
			RMSTrackingErrC: r.RMSTrackingErrC,
		}
		score, err := comfort.ScoreTrace(r.Trace.CabinC, comfort.DriverSummer(0))
		if err != nil {
			return nil, err
		}
		tr.Comfort = score
		traces = append(traces, tr)
	}
	return traces, nil
}

// TemperatureRippleC returns max − min cabin temperature after the
// settling period — the fluctuation amplitude Fig. 5 compares.
func (t *Trace) TemperatureRippleC(settleS float64) float64 {
	lo, hi := 1e9, -1e9
	for i, tt := range t.Time {
		if tt < settleS {
			continue
		}
		v := t.CabinC[i]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// RenderFig5 summarizes the traces (ripple amplitude and RMS error),
// plus a coarse ASCII series per controller.
func RenderFig5(traces []Trace) string {
	var sb strings.Builder
	sb.WriteString("Fig. 5 — Cabin temperature analysis (ECE_EUDC)\n")
	for _, t := range traces {
		fmt.Fprintf(&sb, "%-24s ripple=%.2f °C  rms=%.2f °C  avgHVAC=%.2f kW  PPD=%.1f%%\n",
			t.Name, t.TemperatureRippleC(120), t.RMSTrackingErrC, t.AvgHVACW/1000,
			t.Comfort.MeanPPD)
	}
	sb.WriteString("samples (°C every ~60 s):\n")
	for _, t := range traces {
		fmt.Fprintf(&sb, "%-24s", t.Name)
		step := len(t.Time) / 10
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(t.Time); i += step {
			fmt.Fprintf(&sb, " %5.2f", t.CabinC[i])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Fig6Point is one sample of the precool illustration.
type Fig6Point struct {
	// Time in seconds.
	Time float64
	// MotorKW is the electric-motor power.
	MotorKW float64
	// HVACW is the HVAC power chosen by the MPC.
	HVACW float64
	// CabinC is the cabin temperature.
	CabinC float64
}

// Fig6 reproduces the precool illustration: the MPC's HVAC power and
// cabin temperature against the motor power on ECE_EUDC. The paper's
// qualitative result: HVAC power drops during motor peaks and rises
// (precooling) during valleys.
func Fig6(opts Options) ([]Fig6Point, error) {
	opts.fill()
	results, err := opts.runStandard("ECE_EUDC", opts.AmbientC, opts.SolarW)
	if err != nil {
		return nil, err
	}
	r := results[NameMPC]
	pts := make([]Fig6Point, len(r.Trace.Time))
	for i := range r.Trace.Time {
		pts[i] = Fig6Point{
			Time:    r.Trace.Time[i],
			MotorKW: r.Trace.MotorW[i] / 1000,
			HVACW:   r.Trace.HVACW[i],
			CabinC:  r.Trace.CabinC[i],
		}
	}
	return pts, nil
}

// PeakValleyHVAC splits the Fig. 6 samples at the median motor power and
// returns the mean HVAC power during high-motor and low-motor periods.
// Precooling shows as valleyHVAC > peakHVAC.
func PeakValleyHVAC(pts []Fig6Point) (peakHVACW, valleyHVACW float64) {
	if len(pts) == 0 {
		return 0, 0
	}
	var mean float64
	for _, p := range pts {
		mean += p.MotorKW
	}
	mean /= float64(len(pts))
	var hiSum, loSum float64
	var hiN, loN int
	for _, p := range pts {
		if p.MotorKW > mean {
			hiSum += p.HVACW
			hiN++
		} else {
			loSum += p.HVACW
			loN++
		}
	}
	if hiN > 0 {
		peakHVACW = hiSum / float64(hiN)
	}
	if loN > 0 {
		valleyHVACW = loSum / float64(loN)
	}
	return peakHVACW, valleyHVACW
}

// RenderFig6 formats the precool analysis.
func RenderFig6(pts []Fig6Point) string {
	peak, valley := PeakValleyHVAC(pts)
	var sb strings.Builder
	sb.WriteString("Fig. 6 — Precool process under the battery lifetime-aware MPC (ECE_EUDC)\n")
	fmt.Fprintf(&sb, "mean HVAC power during motor-power peaks:   %7.1f W\n", peak)
	fmt.Fprintf(&sb, "mean HVAC power during motor-power valleys: %7.1f W\n", valley)
	if valley > peak {
		fmt.Fprintf(&sb, "→ precool confirmed: HVAC shifts %.1f%% of its effort into motor valleys\n",
			100*(valley-peak)/(valley+1e-9))
	} else {
		sb.WriteString("→ precool NOT observed\n")
	}
	sb.WriteString("t(s)  motor(kW)  HVAC(W)  cabin(°C):\n")
	step := len(pts) / 16
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(pts); i += step {
		p := pts[i]
		fmt.Fprintf(&sb, "%5.0f %9.1f %8.0f %9.2f\n", p.Time, p.MotorKW, p.HVACW, p.CabinC)
	}
	return sb.String()
}

// CycleResult is one drive profile's three-controller comparison, the
// shared data behind Figs. 7 and 8.
type CycleResult struct {
	// Cycle is the drive-profile name.
	Cycle string
	// Profile is the evaluated drive profile (ambient applied, possibly
	// truncated).
	Profile *drivecycle.Profile
	// Results holds the per-controller outcomes.
	Results map[string]*sim.Result
}

// RunCycles runs the three controllers over the paper's five evaluation
// profiles (NEDC, US06, ECE_EUDC, SC03, UDDS) at the options' conditions.
// The 15 scenario cells execute in parallel on the sweep engine.
func RunCycles(opts Options) ([]CycleResult, error) {
	opts.fill()
	cycles := make([]runner.CycleSpec, 0, 5)
	for _, c := range drivecycle.EvaluationCycles() {
		cycles = append(cycles, runner.CycleSpec{Name: c.Name})
	}
	sw, err := opts.sweep(opts.controllerSpecs(), cycles,
		[]runner.Env{{AmbientC: opts.AmbientC, SolarW: opts.SolarW}})
	if err != nil {
		return nil, err
	}
	out := make([]CycleResult, 0, len(cycles))
	for _, cell := range sw.Cells() {
		out = append(out, CycleResult{
			Cycle:   cell[0].Job.Cycle,
			Profile: cell[0].Job.Config.Profile,
			Results: runner.CellMap(cell),
		})
	}
	return out, nil
}

// Fig7Row is one bar group of Fig. 7: SoH degradation normalized to the
// On/Off controller (= 100).
type Fig7Row struct {
	// Cycle is the profile name.
	Cycle string
	// OnOffPct is 100 by construction.
	OnOffPct float64
	// FuzzyPct and MPCPct are the relative degradations.
	FuzzyPct, MPCPct float64
}

// Fig7 derives the battery-lifetime comparison from cycle runs.
func Fig7(cycles []CycleResult) []Fig7Row {
	rows := make([]Fig7Row, 0, len(cycles))
	for _, c := range cycles {
		base := c.Results[NameOnOff].DeltaSoH
		rows = append(rows, Fig7Row{
			Cycle:    c.Cycle,
			OnOffPct: 100,
			FuzzyPct: 100 * c.Results[NameFuzzy].DeltaSoH / base,
			MPCPct:   100 * c.Results[NameMPC].DeltaSoH / base,
		})
	}
	return rows
}

// RenderFig7 formats the comparison.
func RenderFig7(rows []Fig7Row) string {
	var sb strings.Builder
	sb.WriteString("Fig. 7 — SoH degradation relative to On/Off (%), per drive profile\n")
	sb.WriteString("Cycle      On/Off  Fuzzy-based  Lifetime-aware   improvement vs On/Off\n")
	var sum float64
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %6.1f %12.1f %15.1f   %14.1f%%\n",
			r.Cycle, r.OnOffPct, r.FuzzyPct, r.MPCPct, 100-r.MPCPct)
		sum += 100 - r.MPCPct
	}
	fmt.Fprintf(&sb, "average improvement vs On/Off: %.1f%% (paper: 14%% on average)\n", sum/float64(len(rows)))
	return sb.String()
}

// Fig8Row is one bar group of Fig. 8: average HVAC power in kW.
type Fig8Row struct {
	// Cycle is the profile name.
	Cycle string
	// OnOffKW, FuzzyKW, MPCKW are the average HVAC powers.
	OnOffKW, FuzzyKW, MPCKW float64
}

// Fig8 derives the average-HVAC-power comparison from cycle runs.
func Fig8(cycles []CycleResult) []Fig8Row {
	rows := make([]Fig8Row, 0, len(cycles))
	for _, c := range cycles {
		rows = append(rows, Fig8Row{
			Cycle:   c.Cycle,
			OnOffKW: c.Results[NameOnOff].AvgHVACW / 1000,
			FuzzyKW: c.Results[NameFuzzy].AvgHVACW / 1000,
			MPCKW:   c.Results[NameMPC].AvgHVACW / 1000,
		})
	}
	return rows
}

// RenderFig8 formats the comparison.
func RenderFig8(rows []Fig8Row) string {
	var sb strings.Builder
	sb.WriteString("Fig. 8 — Average HVAC power (kW), per drive profile\n")
	sb.WriteString("Cycle      On/Off  Fuzzy-based  Lifetime-aware   reduction vs On/Off\n")
	var sum float64
	valid := 0
	for _, r := range rows {
		// A near-zero On/Off average means the thermostat never engaged
		// (truncated quick runs): the ratio is meaningless there.
		if r.OnOffKW < 0.05 {
			fmt.Fprintf(&sb, "%-10s %6.2f %12.2f %15.2f   %13s\n",
				r.Cycle, r.OnOffKW, r.FuzzyKW, r.MPCKW, "n/a")
			continue
		}
		red := 100 * (1 - r.MPCKW/r.OnOffKW)
		fmt.Fprintf(&sb, "%-10s %6.2f %12.2f %15.2f   %13.1f%%\n",
			r.Cycle, r.OnOffKW, r.FuzzyKW, r.MPCKW, red)
		sum += red
		valid++
	}
	if valid > 0 {
		fmt.Fprintf(&sb, "average reduction vs On/Off: %.1f%% (paper: 39%% on average)\n", sum/float64(valid))
	} else {
		sb.WriteString("average reduction vs On/Off: n/a (On/Off idle on truncated profiles; run full-length)\n")
	}
	return sb.String()
}
