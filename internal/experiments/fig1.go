package experiments

import (
	"fmt"
	"strings"

	"evclimate/internal/cabin"
	"evclimate/internal/powertrain"
	"evclimate/internal/units"
)

// Fig1Row is one ambient-temperature column of Fig. 1: the percentage
// split of total power consumption among propulsion, HVAC, and
// accessories, for an EV and an ICE vehicle.
type Fig1Row struct {
	// AmbientC is the outside temperature.
	AmbientC float64
	// EVMotorPct, EVHVACPct, EVAccPct sum to 100 for the EV.
	EVMotorPct, EVHVACPct, EVAccPct float64
	// ICEEnginePct, ICEHVACPct, ICEAccPct sum to 100 for the ICE
	// vehicle (fuel-power basis).
	ICEEnginePct, ICEHVACPct, ICEAccPct float64
}

// Fig1Config parameterizes the motivational analysis.
type Fig1Config struct {
	// CruiseKmh is the evaluation speed (default 110 km/h, highway).
	CruiseKmh float64
	// Ambients are the evaluated outside temperatures (default −10…40).
	Ambients []float64
	// SolarW is the solar load (default 300 W).
	SolarW float64
	// TargetC is the cabin setpoint (default 24 °C).
	TargetC float64
	// EngineEfficiency is the ICE tank-to-shaft efficiency (default 0.28).
	EngineEfficiency float64
	// CompressorCOP is the ICE belt-driven A/C coefficient of
	// performance (default 2.5).
	CompressorCOP float64
	// AccessoryW is the accessory electrical load (default 300 W).
	AccessoryW float64
}

func (c *Fig1Config) fill() {
	if c.CruiseKmh == 0 {
		c.CruiseKmh = 110
	}
	if len(c.Ambients) == 0 {
		c.Ambients = []float64{-10, 0, 10, 20, 30, 40}
	}
	if c.SolarW == 0 {
		c.SolarW = 300
	}
	if c.TargetC == 0 {
		c.TargetC = 24
	}
	if c.EngineEfficiency == 0 {
		c.EngineEfficiency = 0.28
	}
	if c.CompressorCOP == 0 {
		c.CompressorCOP = 2.5
	}
	if c.AccessoryW == 0 {
		c.AccessoryW = 300
	}
}

// Fig1 regenerates the Fig. 1 breakdown from the models. The EV HVAC
// follows the paper's Eq. 10–12 power model; the ICE vehicle burns fuel
// for propulsion (engine efficiency) and for the A/C compressor in
// cooling, while heating uses engine waste heat (fan only) — the
// asymmetry that motivates the paper.
func Fig1(cfg Fig1Config) ([]Fig1Row, error) {
	cfg.fill()
	pt, err := powertrain.New(powertrain.NissanLeaf())
	if err != nil {
		return nil, err
	}
	hv, err := cabin.New(cabin.Default())
	if err != nil {
		return nil, err
	}
	v := units.KmhToMs(cfg.CruiseKmh)
	evMotorW := pt.ElectricalPower(v, 0, 0, 0)
	mechW := pt.TractiveForce(v, 0, 0, 0) * v

	rows := make([]Fig1Row, 0, len(cfg.Ambients))
	for _, amb := range cfg.Ambients {
		pw := hv.SteadyStatePower(cfg.TargetC, amb, cfg.SolarW, 0.5)
		evHVAC := pw.Total()

		evTotal := evMotorW + evHVAC + cfg.AccessoryW

		// ICE vehicle, fuel-power basis.
		engineFuel := mechW / cfg.EngineEfficiency
		accFuel := cfg.AccessoryW / (cfg.EngineEfficiency * 0.6) // via alternator
		var hvacFuel float64
		if pw.CoolerW > 0 {
			// Compressor shaft power from the thermal duty implied by the
			// EV's electrical cooler model (duty = Pc·ηc), then to fuel.
			thermal := pw.CoolerW * hv.Params().EtaCool
			hvacFuel = thermal / cfg.CompressorCOP / cfg.EngineEfficiency
		}
		// Heating is engine waste heat: only the blower costs fuel.
		hvacFuel += pw.FanW / (cfg.EngineEfficiency * 0.6)
		iceTotal := engineFuel + hvacFuel + accFuel

		rows = append(rows, Fig1Row{
			AmbientC:     amb,
			EVMotorPct:   100 * evMotorW / evTotal,
			EVHVACPct:    100 * evHVAC / evTotal,
			EVAccPct:     100 * cfg.AccessoryW / evTotal,
			ICEEnginePct: 100 * engineFuel / iceTotal,
			ICEHVACPct:   100 * hvacFuel / iceTotal,
			ICEAccPct:    100 * accFuel / iceTotal,
		})
	}
	return rows, nil
}

// RenderFig1 formats the rows as the paper's stacked-percentage series.
func RenderFig1(rows []Fig1Row) string {
	var sb strings.Builder
	sb.WriteString("Fig. 1 — Power-consumption percentages, EV vs ICE, by ambient temperature\n")
	sb.WriteString("Ambient   EV: motor  HVAC   acc  | ICE: engine  HVAC   acc\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%5.0f °C     %5.1f%% %5.1f%% %4.1f%% |      %5.1f%% %5.1f%% %4.1f%%\n",
			r.AmbientC, r.EVMotorPct, r.EVHVACPct, r.EVAccPct,
			r.ICEEnginePct, r.ICEHVACPct, r.ICEAccPct)
	}
	return sb.String()
}
