package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"evclimate/internal/fabric"
	"evclimate/internal/runner"
)

// distSeed pins the distributable sweep's base seed; coordinator and
// every worker must expand the identical job list.
const distSeed = 20150601

// DistParams encodes the distributable sweep's variability as wire
// parameters — everything a joining worker needs to rebuild the exact
// spec from its local builder.
func DistParams(o Options) map[string]string {
	o.fill()
	return map[string]string{
		"seed":  strconv.FormatInt(distSeed, 10),
		"max_s": strconv.FormatFloat(o.MaxProfileS, 'g', -1, 64),
	}
}

// DistSpec is the distributable robustness sweep: every standard drive
// cycle × 5 ambients × 3 cabin targets under both baseline controllers
// — 7×5×3×2 = 210 cheap scenarios, the fabric's acceptance workload.
// The builder is pure: equal params always expand to equal jobs, which
// is what lets coordinator and workers agree on the sweep fingerprint.
func DistSpec(params map[string]string) (runner.Spec, error) {
	seed, err := strconv.ParseInt(params["seed"], 10, 64)
	if err != nil {
		return runner.Spec{}, fmt.Errorf("experiments: dist seed param: %w", err)
	}
	maxS, err := strconv.ParseFloat(params["max_s"], 64)
	if err != nil {
		return runner.Spec{}, fmt.Errorf("experiments: dist max_s param: %w", err)
	}
	return runner.Spec{
		Controllers: []runner.ControllerSpec{runner.OnOffSpec(1), runner.FuzzySpec(1)},
		Cycles: []runner.CycleSpec{
			{Name: "ECE15"}, {Name: "EUDC"}, {Name: "NEDC"}, {Name: "ECE_EUDC"},
			{Name: "US06"}, {Name: "SC03"}, {Name: "UDDS"},
		},
		Envs: []runner.Env{
			{AmbientC: -10}, {AmbientC: 0}, {AmbientC: 20},
			{AmbientC: 35, SolarW: 400}, {AmbientC: 40, SolarW: 600},
		},
		Targets:     []float64{22, 24, 26},
		BaseSeed:    seed,
		MaxProfileS: maxS,
	}, nil
}

// FabricSpecs is the spec-builder registry both evbench roles share:
// `evbench -serve` resolves names out of it when coordinating, and
// `evbench -join` resolves the same names when rebuilding a sweep
// locally. Coordinator and workers normally run the same binary, which
// is what keeps the two registries identical.
func FabricSpecs() *fabric.Registry {
	specs := fabric.NewSpecRegistry()
	specs.Register("dist", DistSpec)
	specs.Register("cold", ColdSpec)
	specs.Register("table1", Table1Spec)
	specs.Register("fleet", FleetSpec)
	return specs
}

// RunDist executes the distributable sweep single-process — the
// baseline the fabric's topologies are measured (and byte-compared)
// against.
func RunDist(o Options) (*runner.Sweep, error) {
	o.fill()
	spec, err := DistSpec(DistParams(o))
	if err != nil {
		return nil, err
	}
	return runner.Run(o.ctx(), spec, o.runnerOptions("dist"))
}

// RenderDist summarizes the distributable sweep per controller: one row
// per methodology with scenario counts and mean power/health outcomes.
func RenderDist(sw *runner.Sweep) string {
	type agg struct {
		jobs, failed  int
		hvacW, dSoHe9 float64
	}
	byCtrl := map[string]*agg{}
	var order []string
	for i := range sw.Jobs {
		jr := &sw.Jobs[i]
		label := jr.Job.Controller.Label
		a := byCtrl[label]
		if a == nil {
			a = &agg{}
			byCtrl[label] = a
			order = append(order, label)
		}
		a.jobs++
		switch {
		case jr.Err != nil:
			a.failed++
		case jr.Result != nil:
			a.hvacW += jr.Result.AvgHVACW
			a.dSoHe9 += jr.Result.DeltaSoH * 1e9
		}
	}
	sort.Strings(order)

	var sb strings.Builder
	fmt.Fprintf(&sb, "Distributable sweep: %d scenarios (%d cycles × envs × targets)\n",
		len(sw.Jobs), len(sw.Spec.Cycles))
	fmt.Fprintf(&sb, "%-14s %9s %9s %14s %14s\n", "controller", "jobs", "failed", "mean HVAC (W)", "mean ΔSoH (1e-9)")
	for _, label := range order {
		a := byCtrl[label]
		ok := a.jobs - a.failed
		meanW, meanSoH := 0.0, 0.0
		if ok > 0 {
			meanW = a.hvacW / float64(ok)
			meanSoH = a.dSoHe9 / float64(ok)
		}
		fmt.Fprintf(&sb, "%-14s %9d %9d %14.1f %14.3f\n", label, a.jobs, a.failed, meanW, meanSoH)
	}
	return sb.String()
}
