package sqp

import (
	"errors"
	"testing"
	"time"
)

// rosenbrock needs dozens of iterations from a cold start — a good
// victim for budget cutoffs.
func rosenbrockProblem() *Problem {
	return &Problem{
		N: 2,
		Objective: func(x []float64) float64 {
			a := 1 - x[0]
			b := x[1] - x[0]*x[0]
			return a*a + 100*b*b
		},
	}
}

func TestHardIterCap(t *testing.T) {
	res, err := Solve(rosenbrockProblem(), []float64{-1.2, 1}, Options{HardIterCap: 3})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if res == nil || res.Status != BudgetExceeded {
		t.Fatalf("res = %+v, want BudgetExceeded status", res)
	}
	if res.Iterations > 3 {
		t.Fatalf("ran %d iterations past the cap of 3", res.Iterations)
	}
	if len(res.X) != 2 {
		t.Fatal("budget-stopped result lost the iterate")
	}
}

func TestHardIterCapAboveMaxIterIsSilent(t *testing.T) {
	// MaxIter truncation stays a normal real-time stop, not a budget
	// error, when the hard cap is looser.
	res, err := Solve(rosenbrockProblem(), []float64{-1.2, 1}, Options{MaxIter: 2, HardIterCap: 50})
	if err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	if res.Status != MaxIterations {
		t.Fatalf("status = %v, want MaxIterations", res.Status)
	}
}

func TestMaxTimeBudget(t *testing.T) {
	// A deadline already in the past must stop before the first QP
	// subproblem with the typed error.
	p := rosenbrockProblem()
	res, err := Solve(p, []float64{-1.2, 1}, Options{MaxTime: time.Nanosecond})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if res.Status != BudgetExceeded {
		t.Fatalf("status = %v, want BudgetExceeded", res.Status)
	}
}

func TestBudgetExceededIterateStaysUsable(t *testing.T) {
	// A generous-but-binding cap: the returned iterate must be an
	// improvement over the start, not garbage.
	p := rosenbrockProblem()
	start := []float64{-1.2, 1}
	res, err := Solve(p, start, Options{HardIterCap: 10})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if res.F >= p.Objective(start) {
		t.Fatalf("budget-truncated objective %v no better than start %v", res.F, p.Objective(start))
	}
}
