package sqp

import (
	"evclimate/internal/mat"
	"evclimate/internal/qp"
)

// Workspace is the SQP solver's arena: every vector and matrix the major
// iteration touches — the Lagrangian gradient scratch, the double-buffered
// iterate/gradient/constraint/Jacobian pairs that swap on each accepted
// step, the BFGS Hessian and its update scratch, the line-search trial
// point, the QP subproblem views, and the (lazily sized) elastic-fallback
// problem. Pass it via Options.Work to make repeated Solve calls with
// same-shaped problems allocation-free; the MPC controller owns one per
// instance and reuses it every control step.
//
// A Workspace is not safe for concurrent use. When Options.Work is
// non-nil, the slices in the returned Result alias the workspace and are
// only valid until the next Solve call with that workspace; callers that
// retain them must copy.
type Workspace struct {
	n, meq, min int

	// Double-buffered iterate state: locals swap on accepted steps.
	x, xNew    []float64
	g, gNew    []float64
	ce, ceNew  []float64
	ci, ciNew  []float64
	je, jeNew  *mat.Dense // nil when meq == 0
	ji, jiNew  *mat.Dense // nil when min == 0
	lam, lamNV []float64  // multipliers + incoming QP duals
	mu, muNV   []float64

	lagGrad, tmpN []float64
	d             []float64 // QP step copy (stable across the elastic fallback)
	yVec, sVec    []float64
	bs, bfgsR     []float64 // updateBFGS scratch
	b             *mat.Dense
	voff          []int // stage variable offsets (structured mode)

	// Finite-difference / evaluator scratch.
	xt             []float64
	fdBase, fdPert []float64

	// QP subproblem: the Problem view is rebuilt each iteration (the
	// Hessian, gradient and Jacobians swap buffers), the negated
	// right-hand sides and the inner workspace persist.
	sub            qp.Problem
	beqNeg, binNeg []float64
	qpWork         *qp.Workspace

	// Elastic fallback arena, sized on first use.
	el *elasticArena

	res Result
}

// NewWorkspace returns an empty workspace; buffers are sized on first
// use and re-sized only when the problem dimensions change.
func NewWorkspace() *Workspace { return &Workspace{} }

// ensure sizes the workspace for problem p.
func (w *Workspace) ensure(p *Problem) {
	n, meq, min := p.N, p.MEq, p.MIneq
	if w.n == n && w.meq == meq && w.min == min && w.x != nil {
		return
	}
	w.n, w.meq, w.min = n, meq, min
	w.x = make([]float64, n)
	w.xNew = make([]float64, n)
	w.g = make([]float64, n)
	w.gNew = make([]float64, n)
	w.ce = make([]float64, meq)
	w.ceNew = make([]float64, meq)
	w.ci = make([]float64, min)
	w.ciNew = make([]float64, min)
	w.je, w.jeNew = nil, nil
	if meq > 0 {
		w.je = mat.NewDense(meq, n)
		w.jeNew = mat.NewDense(meq, n)
	}
	w.ji, w.jiNew = nil, nil
	if min > 0 {
		w.ji = mat.NewDense(min, n)
		w.jiNew = mat.NewDense(min, n)
	}
	w.lam = make([]float64, meq)
	w.lamNV = make([]float64, meq)
	w.mu = make([]float64, min)
	w.muNV = make([]float64, min)
	w.lagGrad = make([]float64, n)
	w.tmpN = make([]float64, n)
	w.d = make([]float64, n)
	w.yVec = make([]float64, n)
	w.sVec = make([]float64, n)
	w.bs = make([]float64, n)
	w.bfgsR = make([]float64, n)
	w.b = mat.NewDense(n, n)
	w.xt = make([]float64, n)
	m := meq
	if min > m {
		m = min
	}
	if m > 0 {
		w.fdBase = make([]float64, m)
		w.fdPert = make([]float64, m)
	}
	w.beqNeg = make([]float64, meq)
	w.binNeg = make([]float64, min)
	if w.qpWork == nil {
		w.qpWork = qp.NewWorkspace()
	}
	w.el = nil
}

// elasticArena holds the slack-augmented fallback QP (see solveElastic):
// the augmented Hessian, gradient, constraint blocks, and a dedicated QP
// workspace (the elastic problem has different dimensions than the main
// subproblem, so it cannot share the main QP workspace).
type elasticArena struct {
	nTot, rows int
	h          *mat.Dense
	c          []float64
	aeq        *mat.Dense // nil when meq == 0
	ain        *mat.Dense
	bin        []float64
	qpWork     *qp.Workspace
	out        qp.Result
}

// ensure sizes the arena for an elastic problem with nTot variables, meq
// equality rows and rows inequality rows.
func (a *elasticArena) ensure(nTot, meq, rows int) {
	ar := rows
	if ar < 1 {
		ar = 1
	}
	if a.nTot == nTot && a.rows == rows && a.h != nil {
		a.h.Zero()
		if a.aeq != nil {
			a.aeq.Zero()
		}
		a.ain.Zero()
		return
	}
	a.nTot, a.rows = nTot, rows
	a.h = mat.NewDense(nTot, nTot)
	a.c = make([]float64, nTot)
	a.aeq = nil
	if meq > 0 {
		a.aeq = mat.NewDense(meq, nTot)
	}
	a.ain = mat.NewDense(ar, nTot)
	a.bin = make([]float64, ar)
	if a.qpWork == nil {
		a.qpWork = qp.NewWorkspace()
	}
}
