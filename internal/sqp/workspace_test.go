package sqp

import (
	"math"
	"testing"

	"evclimate/internal/mat"
	"evclimate/internal/qp"
)

// hs71Problem is the bilinear HS71-style NLP used across the suite.
func hs71Problem() *Problem {
	return &Problem{
		N: 4,
		Objective: func(x []float64) float64 {
			return x[0]*x[3]*(x[0]+x[1]+x[2]) + x[2]
		},
		MEq: 1,
		Eq: func(x, out []float64) {
			out[0] = x[0]*x[0] + x[1]*x[1] + x[2]*x[2] + x[3]*x[3] - 40
		},
		MIneq: 9,
		Ineq: func(x, out []float64) {
			out[0] = 25 - x[0]*x[1]*x[2]*x[3]
			for i := 0; i < 4; i++ {
				out[1+i] = 1 - x[i]
				out[5+i] = x[i] - 5
			}
		},
	}
}

func bitsSame(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// A reused workspace must reproduce the allocating path bit for bit:
// same iterates, same iteration counts, same duals — across repeated
// solves through the same workspace.
func TestWorkspaceReuseBitIdentical(t *testing.T) {
	p := hs71Problem()
	x0 := []float64{1, 5, 5, 1}
	ref, err := Solve(p, x0, Options{MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace()
	for round := 0; round < 3; round++ {
		got, err := Solve(p, x0, Options{MaxIter: 200, Work: ws})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got.Status != ref.Status || got.Iterations != ref.Iterations || got.QPIterations != ref.QPIterations {
			t.Fatalf("round %d: (status, iters, qpIters) = (%v, %d, %d), want (%v, %d, %d)",
				round, got.Status, got.Iterations, got.QPIterations, ref.Status, ref.Iterations, ref.QPIterations)
		}
		if !bitsSame(got.X, ref.X) {
			t.Fatalf("round %d: X differs bitwise: %v vs %v", round, got.X, ref.X)
		}
		if !bitsSame(got.EqDuals, ref.EqDuals) || !bitsSame(got.InDuals, ref.InDuals) {
			t.Fatalf("round %d: duals differ bitwise", round)
		}
		if math.Float64bits(got.F) != math.Float64bits(ref.F) ||
			math.Float64bits(got.KKTResidual) != math.Float64bits(ref.KKTResidual) ||
			math.Float64bits(got.MaxViolation) != math.Float64bits(ref.MaxViolation) {
			t.Fatalf("round %d: scalar diagnostics differ bitwise", round)
		}
	}
}

// The workspace must re-size transparently when problem dimensions
// change between Solve calls.
func TestWorkspaceResizesAcrossShapes(t *testing.T) {
	ws := NewWorkspace()
	small := &Problem{
		N:         2,
		Objective: func(x []float64) float64 { return (x[0] - 1) * (x[0] - 1) * (x[1] + 2) * (x[1] + 2) },
	}
	if _, err := Solve(small, []float64{0, 0}, Options{Work: ws}); err != nil {
		t.Fatal(err)
	}
	res, err := Solve(hs71Problem(), []float64{1, 5, 5, 1}, Options{MaxIter: 200, Work: ws})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.F-17.014) > 0.05 {
		t.Fatalf("after resize f = %v, want ≈ 17.014", res.F)
	}
}

// Result slices alias the workspace: the next Solve with the same
// workspace overwrites them. This pins the documented contract.
func TestWorkspaceResultAliasing(t *testing.T) {
	ws := NewWorkspace()
	p := hs71Problem()
	res1, err := Solve(p, []float64{1, 5, 5, 1}, Options{MaxIter: 200, Work: ws})
	if err != nil {
		t.Fatal(err)
	}
	x1 := mat.CloneVec(res1.X)
	if _, err := Solve(p, []float64{2, 4, 4, 2}, Options{MaxIter: 200, Work: ws}); err != nil {
		t.Fatal(err)
	}
	// res1.X may have been overwritten (different start → different
	// trajectory); the retained copy must still hold the first solution.
	if math.Abs(x1[1]-4.743) > 0.05 {
		t.Fatalf("retained copy corrupted: %v", x1)
	}
	_ = res1
}

// Regression for the elastic-fallback options bug: solveElastic used to
// call qp.Solve with zero Options, discarding the caller's tolerance and
// iteration budget — a real-time MPC step could burn an unbounded number
// of interior-point iterations inside the fallback. The budget must be
// honored.
func TestSolveElasticHonorsIterationBudget(t *testing.T) {
	// An infeasible subproblem of MPC-like shape: contradictory bounds
	// d₀ ≤ −1, −d₀ ≤ −1 force the elastic relaxation to do real work.
	n := 6
	h := mat.Identity(n)
	c := make([]float64, n)
	for i := range c {
		c[i] = 1
	}
	ain := mat.NewDense(2, n)
	ain.Set(0, 0, 1)
	ain.Set(1, 0, -1)
	sub := &qp.Problem{H: h, C: c, Ain: ain, Bin: []float64{-1, -1}}

	ar := &elasticArena{}
	free, err := solveElastic(sub, 100, qp.Options{}, ar)
	if err != nil {
		t.Fatal(err)
	}
	if free.Iterations <= 1 {
		t.Fatalf("elastic problem solved in %d iterations; budget test needs a harder problem", free.Iterations)
	}
	capped, err := solveElastic(sub, 100, qp.Options{MaxIter: 1}, ar)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Iterations > 1 {
		t.Fatalf("elastic fallback ignored MaxIter budget: %d iterations, want ≤ 1", capped.Iterations)
	}
}

// The elastic arena is reused across calls: repeated fallbacks with the
// same shape must produce bit-identical steps.
func TestSolveElasticArenaReuseBitIdentical(t *testing.T) {
	n := 4
	h := mat.Identity(n)
	c := []float64{1, 1, 1, 1}
	ain := mat.NewDense(2, n)
	ain.Set(0, 0, 1)
	ain.Set(1, 0, -1)
	sub := &qp.Problem{H: h, C: c, Ain: ain, Bin: []float64{-1, -1}}

	ref, err := solveElastic(sub, 100, qp.Options{}, &elasticArena{})
	if err != nil {
		t.Fatal(err)
	}
	want := mat.CloneVec(ref.X)
	ar := &elasticArena{}
	for round := 0; round < 3; round++ {
		got, err := solveElastic(sub, 100, qp.Options{}, ar)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !bitsSame(got.X, want) {
			t.Fatalf("round %d: reused arena changed the elastic step", round)
		}
	}
}

// Warm SQP solves with analytic derivatives and a reused workspace are
// allocation-free (the evaluator, line search, BFGS update, and QP
// subproblems all run on the arena).
func TestWarmSolveNoAllocs(t *testing.T) {
	p := &Problem{
		N:         3,
		Objective: func(x []float64) float64 { return x[0]*x[0] + 2*x[1]*x[1] + 3*x[2]*x[2] + x[0]*x[1] },
		Gradient: func(x, g []float64) {
			g[0] = 2*x[0] + x[1]
			g[1] = 4*x[1] + x[0]
			g[2] = 6 * x[2]
		},
		MEq: 1,
		Eq:  func(x, out []float64) { out[0] = x[0] + x[1] + x[2] - 1 },
		EqJac: func(x []float64, jac *mat.Dense) {
			jac.Set(0, 0, 1)
			jac.Set(0, 1, 1)
			jac.Set(0, 2, 1)
		},
		MIneq: 3,
		Ineq: func(x, out []float64) {
			out[0] = -x[0]
			out[1] = -x[1]
			out[2] = -x[2]
		},
		IneqJac: func(x []float64, jac *mat.Dense) {
			jac.Set(0, 0, -1)
			jac.Set(1, 1, -1)
			jac.Set(2, 2, -1)
		},
	}
	x0 := []float64{0.3, 0.3, 0.4}
	ws := NewWorkspace()
	opt := Options{Work: ws}
	if _, err := Solve(p, x0, opt); err != nil { // size the workspace
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := Solve(p, x0, opt); err != nil {
			t.Fatal(err)
		}
	})
	// The only remaining allocation is the evaluator header; everything
	// in the iteration loop runs on the workspace.
	if allocs > 2 {
		t.Fatalf("warm sqp.Solve allocates %v objects/op, want ≤ 2", allocs)
	}
}

// Warm solves with a declared stage structure — block-diagonal BFGS plus
// the structured QP backend — meet the same allocation contract as the
// dense path. This is the exact configuration the MPC runs every control
// step.
func TestWarmStructuredSolveNoAllocs(t *testing.T) {
	// Two stages of two variables; one equality and two bound rows per
	// stage, every row supported on its own stage (trivially in-band).
	p := &Problem{
		N: 4,
		Objective: func(x []float64) float64 {
			return x[0]*x[0] + 2*x[1]*x[1] + 3*x[2]*x[2] + x[3]*x[3] + x[0]*x[1] + 0.5*x[1]*x[2]
		},
		Gradient: func(x, g []float64) {
			g[0] = 2*x[0] + x[1]
			g[1] = 4*x[1] + x[0] + 0.5*x[2]
			g[2] = 6*x[2] + 0.5*x[1]
			g[3] = 2 * x[3]
		},
		MEq: 2,
		Eq: func(x, out []float64) {
			out[0] = x[0] + x[1] - 1
			out[1] = x[2] + x[3] - 1
		},
		EqJac: func(x []float64, jac *mat.Dense) {
			jac.Set(0, 0, 1)
			jac.Set(0, 1, 1)
			jac.Set(1, 2, 1)
			jac.Set(1, 3, 1)
		},
		MIneq: 4,
		Ineq: func(x, out []float64) {
			out[0] = -x[0]
			out[1] = -x[1]
			out[2] = -x[2]
			out[3] = -x[3]
		},
		IneqJac: func(x []float64, jac *mat.Dense) {
			jac.Set(0, 0, -1)
			jac.Set(1, 1, -1)
			jac.Set(2, 2, -1)
			jac.Set(3, 3, -1)
		},
		Stages: qp.UniformStages(2, 2, 1, 2),
	}
	x0 := []float64{0.4, 0.6, 0.5, 0.5}
	ws := NewWorkspace()
	opt := Options{Work: ws}
	if res, err := Solve(p, x0, opt); err != nil { // size the workspace
		t.Fatal(err)
	} else if res.Status != Converged {
		t.Fatalf("structured warm-up did not converge: %v", res.Status)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := Solve(p, x0, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("warm structured sqp.Solve allocates %v objects/op, want ≤ 2", allocs)
	}
}
