package sqp

import (
	"math"
	"testing"

	"evclimate/internal/mat"
)

func checkVec(t *testing.T, got, want []float64, tol float64, label string) {
	t.Helper()
	for i := range want {
		if math.Abs(got[i]-want[i]) > tol {
			t.Errorf("%s[%d] = %v, want %v", label, i, got[i], want[i])
		}
	}
}

func TestUnconstrainedQuadratic(t *testing.T) {
	// min (x−1)² + (y+2)².
	p := &Problem{
		N: 2,
		Objective: func(x []float64) float64 {
			return (x[0]-1)*(x[0]-1) + (x[1]+2)*(x[1]+2)
		},
	}
	res, err := Solve(p, []float64{5, 5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Converged {
		t.Fatalf("status %v after %d iters", res.Status, res.Iterations)
	}
	checkVec(t, res.X, []float64{1, -2}, 1e-5, "x")
}

func TestRosenbrock(t *testing.T) {
	// The classic banana function; tests the BFGS machinery.
	p := &Problem{
		N: 2,
		Objective: func(x []float64) float64 {
			a := 1 - x[0]
			b := x[1] - x[0]*x[0]
			return a*a + 100*b*b
		},
	}
	res, err := Solve(p, []float64{-1.2, 1}, Options{MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	checkVec(t, res.X, []float64{1, 1}, 1e-3, "x")
}

func TestEqualityConstrained(t *testing.T) {
	// min x² + y² s.t. x + y = 2 → (1, 1).
	p := &Problem{
		N:         2,
		Objective: func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] },
		MEq:       1,
		Eq:        func(x, out []float64) { out[0] = x[0] + x[1] - 2 },
	}
	res, err := Solve(p, []float64{3, -1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Converged {
		t.Fatalf("status %v", res.Status)
	}
	checkVec(t, res.X, []float64{1, 1}, 1e-5, "x")
	if res.MaxViolation > 1e-6 {
		t.Errorf("violation %v", res.MaxViolation)
	}
}

func TestNonlinearEquality(t *testing.T) {
	// min x + y s.t. x² + y² = 2 → (−1, −1).
	p := &Problem{
		N:         2,
		Objective: func(x []float64) float64 { return x[0] + x[1] },
		MEq:       1,
		Eq:        func(x, out []float64) { out[0] = x[0]*x[0] + x[1]*x[1] - 2 },
	}
	res, err := Solve(p, []float64{1.5, 0.5}, Options{MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	checkVec(t, res.X, []float64{-1, -1}, 1e-4, "x")
}

func TestInequalityConstrained(t *testing.T) {
	// min (x−3)² + (y−3)² s.t. x + y ≤ 2 → (1, 1).
	p := &Problem{
		N: 2,
		Objective: func(x []float64) float64 {
			return (x[0]-3)*(x[0]-3) + (x[1]-3)*(x[1]-3)
		},
		MIneq: 1,
		Ineq:  func(x, out []float64) { out[0] = x[0] + x[1] - 2 },
	}
	res, err := Solve(p, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkVec(t, res.X, []float64{1, 1}, 1e-4, "x")
	if res.InDuals[0] < 0 {
		t.Errorf("negative inequality dual %v", res.InDuals[0])
	}
}

func TestInactiveInequality(t *testing.T) {
	// Constraint never binds: behaves like the unconstrained problem.
	p := &Problem{
		N: 1,
		Objective: func(x []float64) float64 {
			return (x[0] - 1) * (x[0] - 1)
		},
		MIneq: 1,
		Ineq:  func(x, out []float64) { out[0] = x[0] - 100 },
	}
	res, err := Solve(p, []float64{50}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkVec(t, res.X, []float64{1}, 1e-5, "x")
}

func TestHS71StyleProblem(t *testing.T) {
	// A bilinear problem of the kind the HVAC model produces:
	// min x₁x₄(x₁+x₂+x₃) + x₃
	// s.t. x₁x₂x₃x₄ ≥ 25  (as 25 − Πx ≤ 0)
	//      x₁²+x₂²+x₃²+x₄² = 40, 1 ≤ x ≤ 5.
	// Known optimum ≈ (1, 4.743, 3.821, 1.379), f* ≈ 17.014.
	p := &Problem{
		N: 4,
		Objective: func(x []float64) float64 {
			return x[0]*x[3]*(x[0]+x[1]+x[2]) + x[2]
		},
		MEq: 1,
		Eq: func(x, out []float64) {
			out[0] = x[0]*x[0] + x[1]*x[1] + x[2]*x[2] + x[3]*x[3] - 40
		},
		MIneq: 9,
		Ineq: func(x, out []float64) {
			out[0] = 25 - x[0]*x[1]*x[2]*x[3]
			for i := 0; i < 4; i++ {
				out[1+i] = 1 - x[i] // x ≥ 1
				out[5+i] = x[i] - 5 // x ≤ 5
			}
		},
	}
	res, err := Solve(p, []float64{1, 5, 5, 1}, Options{MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.F-17.014) > 0.05 {
		t.Errorf("f = %v, want ≈ 17.014 (status %v, viol %v)", res.F, res.Status, res.MaxViolation)
	}
	if res.MaxViolation > 1e-4 {
		t.Errorf("violation %v", res.MaxViolation)
	}
}

func TestAnalyticGradientMatchesFD(t *testing.T) {
	// Same problem solved with and without analytic derivatives should
	// agree.
	obj := func(x []float64) float64 { return x[0]*x[0] + 2*x[1]*x[1] + x[0]*x[1] - x[0] }
	grad := func(x, g []float64) {
		g[0] = 2*x[0] + x[1] - 1
		g[1] = 4*x[1] + x[0]
	}
	pFD := &Problem{N: 2, Objective: obj}
	pAn := &Problem{N: 2, Objective: obj, Gradient: grad}
	rFD, err := Solve(pFD, []float64{1, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rAn, err := Solve(pAn, []float64{1, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkVec(t, rAn.X, rFD.X, 1e-5, "x(analytic) vs x(fd)")
}

func TestAnalyticJacobians(t *testing.T) {
	p := &Problem{
		N:         2,
		Objective: func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] },
		Gradient:  func(x, g []float64) { g[0], g[1] = 2*x[0], 2*x[1] },
		MEq:       1,
		Eq:        func(x, out []float64) { out[0] = x[0] + 2*x[1] - 5 },
		EqJac: func(x []float64, jac *mat.Dense) {
			jac.Set(0, 0, 1)
			jac.Set(0, 1, 2)
		},
		MIneq: 1,
		Ineq:  func(x, out []float64) { out[0] = -x[0] },
		IneqJac: func(x []float64, jac *mat.Dense) {
			jac.Set(0, 0, -1)
			jac.Set(0, 1, 0)
		},
	}
	res, err := Solve(p, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// min x²+y² on x+2y=5 → (1, 2); x ≥ 0 inactive.
	checkVec(t, res.X, []float64{1, 2}, 1e-5, "x")
}

func TestInfeasibleStartRecovers(t *testing.T) {
	// Start far outside the feasible set; elastic mode / merit function
	// must drag the iterate in.
	p := &Problem{
		N:         2,
		Objective: func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] },
		MIneq:     2,
		Ineq: func(x, out []float64) {
			out[0] = 1 - x[0] // x₀ ≥ 1
			out[1] = 1 - x[1] // x₁ ≥ 1
		},
	}
	res, err := Solve(p, []float64{-10, -10}, Options{MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	checkVec(t, res.X, []float64{1, 1}, 1e-4, "x")
}

func TestMaxIterationsReported(t *testing.T) {
	p := &Problem{
		N: 2,
		Objective: func(x []float64) float64 {
			a := 1 - x[0]
			b := x[1] - x[0]*x[0]
			return a*a + 100*b*b
		},
	}
	res, err := Solve(p, []float64{-1.2, 1}, Options{MaxIter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == Converged {
		t.Error("cannot converge on Rosenbrock in 2 iterations")
	}
	if res.Iterations != 2 {
		t.Errorf("iterations = %d, want 2", res.Iterations)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Solve(&Problem{N: 0}, nil, Options{}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Solve(&Problem{N: 2, Objective: func([]float64) float64 { return 0 }}, []float64{1}, Options{}); err == nil {
		t.Error("short x0 accepted")
	}
	if _, err := Solve(&Problem{N: 1, Objective: func([]float64) float64 { return 0 }, MEq: 1}, []float64{0}, Options{}); err == nil {
		t.Error("MEq without Eq accepted")
	}
	if _, err := Solve(&Problem{N: 1, Objective: func([]float64) float64 { return 0 }, MIneq: 1}, []float64{0}, Options{}); err == nil {
		t.Error("MIneq without Ineq accepted")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Converged: "converged", MaxIterations: "max-iterations",
		Stalled: "stalled", Failed: "failed",
	} {
		if s.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

// TestBilinearMPCShape exercises a miniature version of the real MPC step:
// bilinear dynamics constraint over a 3-step horizon with box bounds.
func TestBilinearMPCShape(t *testing.T) {
	// States T0..T3, controls u0..u2 (heat flow), bilinear-ish dynamics
	// T_{k+1} = T_k + u_k·(Ts − T_k)·dt with Ts = 10, dt = 0.5.
	// Objective: track T=5 while penalizing u.
	const (
		ns = 4
		nu = 3
	)
	idxT := func(k int) int { return k }
	idxU := func(k int) int { return ns + k }
	p := &Problem{
		N: ns + nu,
		Objective: func(x []float64) float64 {
			var c float64
			for k := 1; k < ns; k++ {
				d := x[idxT(k)] - 5
				c += d * d
			}
			for k := 0; k < nu; k++ {
				c += 0.01 * x[idxU(k)] * x[idxU(k)]
			}
			return c
		},
		MEq: ns, // 3 dynamics constraints + initial condition
		Eq: func(x, out []float64) {
			out[0] = x[idxT(0)] - 0 // T0 = 0
			for k := 0; k < nu; k++ {
				out[k+1] = x[idxT(k+1)] - x[idxT(k)] - x[idxU(k)]*(10-x[idxT(k)])*0.5
			}
		},
		MIneq: 2 * nu, // 0 ≤ u ≤ 1
		Ineq: func(x, out []float64) {
			for k := 0; k < nu; k++ {
				out[2*k] = -x[idxU(k)]
				out[2*k+1] = x[idxU(k)] - 1
			}
		},
	}
	x0 := make([]float64, ns+nu)
	res, err := Solve(p, x0, Options{MaxIter: 150})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxViolation > 1e-5 {
		t.Fatalf("violation %v (status %v)", res.MaxViolation, res.Status)
	}
	// The controller should drive the temperature toward 5 within bounds.
	if res.X[idxT(3)] < 3 {
		t.Errorf("final temperature %v too low; controls %v", res.X[idxT(3)], res.X[ns:])
	}
	for k := 0; k < nu; k++ {
		u := res.X[idxU(k)]
		if u < -1e-6 || u > 1+1e-6 {
			t.Errorf("control %d = %v outside [0, 1]", k, u)
		}
	}
}

func TestMinMeritDecreaseEarlyExit(t *testing.T) {
	// A well-conditioned problem: with the stagnation exit enabled the
	// solver stops earlier yet lands on (numerically) the same optimum.
	mk := func() *Problem {
		return &Problem{
			N: 3,
			Objective: func(x []float64) float64 {
				return (x[0]-1)*(x[0]-1) + 2*(x[1]+2)*(x[1]+2) + 0.5*x[2]*x[2]
			},
			MIneq: 1,
			Ineq:  func(x, out []float64) { out[0] = -x[2] }, // x₂ ≥ 0
		}
	}
	full, err := Solve(mk(), []float64{5, 5, 5}, Options{MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	early, err := Solve(mk(), []float64{5, 5, 5}, Options{MaxIter: 200, MinMeritDecrease: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if early.Iterations > full.Iterations {
		t.Errorf("early exit used more iterations: %d vs %d", early.Iterations, full.Iterations)
	}
	if math.Abs(early.F-full.F) > 1e-3*(1+math.Abs(full.F)) {
		t.Errorf("early exit objective %v differs from full %v", early.F, full.F)
	}
	if early.Status != Converged {
		t.Errorf("early exit status = %v", early.Status)
	}
}

func TestMinMeritDecreaseRespectsFeasibility(t *testing.T) {
	// The stagnation exit must not fire while the iterate is infeasible:
	// start far outside and verify the final violation meets Tol anyway.
	p := &Problem{
		N:         2,
		Objective: func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] },
		MEq:       1,
		Eq:        func(x, out []float64) { out[0] = x[0] + x[1] - 4 },
	}
	res, err := Solve(p, []float64{-20, -20}, Options{MaxIter: 300, MinMeritDecrease: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxViolation > 1e-4 {
		t.Errorf("stagnation exit left violation %v", res.MaxViolation)
	}
	checkVec(t, res.X, []float64{2, 2}, 1e-3, "x")
}
