// Package sqp implements a Sequential Quadratic Programming solver for
// smooth nonlinear programs
//
//	minimize    f(x)
//	subject to  ce(x) = 0
//	            ci(x) ≤ 0
//
// using a damped-BFGS approximation of the Lagrangian Hessian, convex QP
// subproblems (internal/qp), an ℓ₁ merit function with backtracking line
// search, and an elastic (slack-penalized) fallback for infeasible
// subproblems. The paper prescribes exactly this algorithm class for the
// MPC step ("the best option might be to apply Sequential Quadratic
// Programming (SQP) as the optimization algorithm for the MPC in each
// time step", Sec. III, citing Kelman & Borrelli).
package sqp

import (
	"errors"
	"fmt"
	"math"
	"time"

	"evclimate/internal/mat"
	"evclimate/internal/qp"
)

// Status describes how Solve terminated.
type Status int

const (
	// Converged means the KKT conditions were met to tolerance.
	Converged Status = iota
	// MaxIterations means the iteration budget ran out; X holds the best
	// iterate found.
	MaxIterations
	// Stalled means the line search could not make progress. The iterate
	// is usually still useful (MPC treats it as a warm start).
	Stalled
	// Failed means a subproblem failed irrecoverably.
	Failed
	// BudgetExceeded means the wall-clock or hard iteration budget ran
	// out (Options.MaxTime / Options.HardIterCap); X holds the best
	// iterate found and Solve additionally returns ErrBudgetExceeded.
	BudgetExceeded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Converged:
		return "converged"
	case MaxIterations:
		return "max-iterations"
	case Stalled:
		return "stalled"
	case Failed:
		return "failed"
	case BudgetExceeded:
		return "budget-exceeded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// ErrBadProblem reports a structurally invalid problem definition.
var ErrBadProblem = errors.New("sqp: invalid problem")

// ErrBudgetExceeded reports that Solve stopped because the wall-clock or
// hard iteration budget ran out. The accompanying Result still holds the
// best iterate, so real-time callers can decide whether the partial
// solution is usable; supervisory layers get a typed watchdog signal
// instead of inferring overload from Stalled.
var ErrBudgetExceeded = errors.New("sqp: budget exceeded")

// Problem defines the NLP. Objective is required. Eq/Ineq may be nil when
// MEq/MIneq are zero. Jacobian callbacks are optional; when nil, forward
// finite differences are used.
type Problem struct {
	// N is the number of decision variables.
	N int
	// Objective evaluates f(x).
	Objective func(x []float64) float64
	// Gradient writes ∇f(x) into grad. Optional.
	Gradient func(x []float64, grad []float64)
	// MEq is the number of equality constraints ce(x) = 0.
	MEq int
	// Eq writes ce(x) into out (length MEq).
	Eq func(x []float64, out []float64)
	// EqJac writes the MEq×N Jacobian of Eq into jac. Optional.
	EqJac func(x []float64, jac *mat.Dense)
	// MIneq is the number of inequality constraints ci(x) ≤ 0.
	MIneq int
	// Ineq writes ci(x) into out (length MIneq).
	Ineq func(x []float64, out []float64)
	// IneqJac writes the MIneq×N Jacobian of Ineq into jac. Optional.
	IneqJac func(x []float64, jac *mat.Dense)
}

// Options tunes the solver; the zero value selects defaults.
type Options struct {
	// MaxIter limits major (SQP) iterations. Default 100.
	MaxIter int
	// Tol is the KKT tolerance. Default 1e-6.
	Tol float64
	// FDStep is the finite-difference step scale. Default 1e-7.
	FDStep float64
	// PenaltyInit seeds the ℓ₁ merit penalty. Default 1.
	PenaltyInit float64
	// ElasticWeight is the slack penalty used when a subproblem is
	// infeasible. Default 1e4.
	ElasticWeight float64
	// MinMeritDecrease, when positive, stops the iteration early once
	// the relative merit-function decrease stays below it for two
	// consecutive accepted steps AND the iterate is feasible to Tol.
	// Real-time MPC sets this to trade optimality for speed; the default
	// 0 disables it.
	MinMeritDecrease float64
	// MaxTime, when positive, bounds Solve's wall clock. The deadline is
	// honored mid-iteration (before the QP subproblem and inside the line
	// search), so a single expensive iteration cannot blow far past the
	// budget. Exceeding it stops with Status BudgetExceeded and
	// ErrBudgetExceeded. Wall-clock budgets are inherently
	// nondeterministic; deterministic replay must use HardIterCap.
	MaxTime time.Duration
	// HardIterCap, when positive, is a hard major-iteration budget:
	// unlike MaxIter (a normal real-time truncation, Status
	// MaxIterations), exceeding it reports Status BudgetExceeded and
	// ErrBudgetExceeded. When both are set the tighter one applies.
	HardIterCap int
}

func (o *Options) fill() {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	if o.FDStep <= 0 {
		o.FDStep = 1e-7
	}
	if o.PenaltyInit <= 0 {
		o.PenaltyInit = 1
	}
	if o.ElasticWeight <= 0 {
		o.ElasticWeight = 1e4
	}
}

// Result is the solver output.
type Result struct {
	// X is the final iterate.
	X []float64
	// F is the objective at X.
	F float64
	// EqDuals and InDuals are the Lagrange multiplier estimates.
	EqDuals, InDuals []float64
	// Iterations counts major iterations performed.
	Iterations int
	// QPIterations accumulates the interior-point iterations of every QP
	// subproblem solved (including elastic fallbacks) — the telemetry
	// layer's measure of per-solve work below the major-iteration count.
	QPIterations int
	// Status reports the termination condition.
	Status Status
	// KKTResidual is the final stationarity residual (∞-norm).
	KKTResidual float64
	// MaxViolation is the final constraint violation (∞-norm).
	MaxViolation float64
}

type evaluator struct {
	p   *Problem
	opt *Options
}

func (e *evaluator) gradient(x []float64) []float64 {
	g := make([]float64, e.p.N)
	if e.p.Gradient != nil {
		e.p.Gradient(x, g)
		return g
	}
	// Central differences on the objective.
	xt := mat.CloneVec(x)
	for i := range x {
		h := e.opt.FDStep * (1 + math.Abs(x[i]))
		xt[i] = x[i] + h
		fp := e.p.Objective(xt)
		xt[i] = x[i] - h
		fm := e.p.Objective(xt)
		xt[i] = x[i]
		g[i] = (fp - fm) / (2 * h)
	}
	return g
}

func (e *evaluator) eq(x []float64) []float64 {
	if e.p.MEq == 0 {
		return nil
	}
	out := make([]float64, e.p.MEq)
	e.p.Eq(x, out)
	return out
}

func (e *evaluator) ineq(x []float64) []float64 {
	if e.p.MIneq == 0 {
		return nil
	}
	out := make([]float64, e.p.MIneq)
	e.p.Ineq(x, out)
	return out
}

func (e *evaluator) eqJac(x []float64) *mat.Dense {
	if e.p.MEq == 0 {
		return nil
	}
	jac := mat.NewDense(e.p.MEq, e.p.N)
	if e.p.EqJac != nil {
		e.p.EqJac(x, jac)
		return jac
	}
	e.fdJac(x, e.p.Eq, e.p.MEq, jac)
	return jac
}

func (e *evaluator) ineqJac(x []float64) *mat.Dense {
	if e.p.MIneq == 0 {
		return nil
	}
	jac := mat.NewDense(e.p.MIneq, e.p.N)
	if e.p.IneqJac != nil {
		e.p.IneqJac(x, jac)
		return jac
	}
	e.fdJac(x, e.p.Ineq, e.p.MIneq, jac)
	return jac
}

func (e *evaluator) fdJac(x []float64, fn func([]float64, []float64), m int, jac *mat.Dense) {
	base := make([]float64, m)
	fn(x, base)
	pert := make([]float64, m)
	xt := mat.CloneVec(x)
	for j := 0; j < e.p.N; j++ {
		h := e.opt.FDStep * (1 + math.Abs(x[j]))
		xt[j] = x[j] + h
		fn(xt, pert)
		xt[j] = x[j]
		for i := 0; i < m; i++ {
			jac.Set(i, j, (pert[i]-base[i])/h)
		}
	}
}

// violation returns the ℓ∞ constraint violation.
func violation(ce, ci []float64) float64 {
	v := mat.NormInf(ce)
	for _, c := range ci {
		if c > v {
			v = c
		}
	}
	return v
}

// merit evaluates the ℓ₁ exact penalty function f + ν·(‖ce‖₁ + Σ max(ci, 0)).
func merit(f float64, ce, ci []float64, nu float64) float64 {
	var pen float64
	for _, c := range ce {
		pen += math.Abs(c)
	}
	for _, c := range ci {
		if c > 0 {
			pen += c
		}
	}
	return f + nu*pen
}

// Solve runs the SQP iteration from x0.
func Solve(p *Problem, x0 []float64, opt Options) (*Result, error) {
	opt.fill()
	if p.N <= 0 || p.Objective == nil {
		return nil, fmt.Errorf("%w: need N > 0 and an Objective", ErrBadProblem)
	}
	if len(x0) != p.N {
		return nil, fmt.Errorf("%w: len(x0)=%d, want %d", ErrBadProblem, len(x0), p.N)
	}
	if p.MEq > 0 && p.Eq == nil {
		return nil, fmt.Errorf("%w: MEq=%d but Eq is nil", ErrBadProblem, p.MEq)
	}
	if p.MIneq > 0 && p.Ineq == nil {
		return nil, fmt.Errorf("%w: MIneq=%d but Ineq is nil", ErrBadProblem, p.MIneq)
	}
	ev := &evaluator{p: p, opt: &opt}

	x := mat.CloneVec(x0)
	f := p.Objective(x)
	g := ev.gradient(x)
	ce := ev.eq(x)
	ci := ev.ineq(x)
	je := ev.eqJac(x)
	ji := ev.ineqJac(x)

	// Damped-BFGS Hessian approximation, seeded with a scaled identity.
	b := mat.Identity(p.N)
	hScale := 1 + mat.NormInf(g)
	b.Scale(hScale)

	lam := make([]float64, p.MEq)
	mu := make([]float64, p.MIneq)
	nu := opt.PenaltyInit

	var deadline time.Time
	if opt.MaxTime > 0 {
		deadline = time.Now().Add(opt.MaxTime)
	}
	overTime := func() bool { return opt.MaxTime > 0 && time.Now().After(deadline) }

	res := &Result{Status: MaxIterations}
	stagnant := 0
	for iter := 0; iter < opt.MaxIter; iter++ {
		if opt.HardIterCap > 0 && iter >= opt.HardIterCap {
			res.Status = BudgetExceeded
			break
		}
		res.Iterations = iter + 1

		// Convergence check: KKT stationarity + feasibility + complementarity.
		lagGrad := mat.CloneVec(g)
		if je != nil {
			mat.Axpy(1, je.MulVecT(lam), lagGrad)
		}
		if ji != nil {
			mat.Axpy(1, ji.MulVecT(mu), lagGrad)
		}
		kkt := mat.NormInf(lagGrad)
		viol := violation(ce, ci)
		var comp float64
		for i, m := range mu {
			if c := math.Abs(m * ci[i]); c > comp {
				comp = c
			}
		}
		res.KKTResidual = kkt
		res.MaxViolation = viol
		gScale := 1 + mat.NormInf(g)
		if kkt < opt.Tol*gScale && viol < opt.Tol && comp < opt.Tol*gScale {
			res.Status = Converged
			break
		}

		if overTime() {
			res.Status = BudgetExceeded
			break
		}

		// QP subproblem: min ½dᵀBd + gᵀd  s.t.  Je·d = −ce, Ji·d ≤ −ci.
		sub := &qp.Problem{H: b, C: g}
		if je != nil {
			sub.Aeq = je
			sub.Beq = mat.ScaleVec(-1, ce)
		}
		if ji != nil {
			sub.Ain = ji
			sub.Bin = mat.ScaleVec(-1, ci)
		}
		// Subproblem tolerance: two orders tighter than the NLP tolerance
		// is enough for SQP convergence; floor at 1e-8 for high-accuracy
		// callers. (Solving subproblems to 1e-8 when the NLP only needs
		// 1e-4 wastes interior-point iterations in the MPC hot path.)
		qpTol := opt.Tol * 1e-2
		if qpTol < 1e-8 {
			qpTol = 1e-8
		}
		qr, err := qp.Solve(sub, qp.Options{Tol: qpTol})
		if qr != nil {
			res.QPIterations += qr.Iterations
		}
		if err != nil || qr.Status == qp.NumericalFailure || !mat.AllFinite(qr.X) {
			// Elastic fallback: relax constraints with penalized slacks.
			qr, err = solveElastic(sub, opt.ElasticWeight)
			if qr != nil {
				res.QPIterations += qr.Iterations
			}
			if err != nil {
				res.Status = Failed
				break
			}
		}
		d := qr.X
		newLam := qr.EqDuals
		newMu := qr.InDuals

		// Penalty update: ν must dominate the multipliers for the ℓ₁
		// merit to be exact.
		maxDual := mat.NormInf(newLam)
		if m := mat.NormInf(newMu); m > maxDual {
			maxDual = m
		}
		if nu < 1.1*maxDual {
			nu = 1.5*maxDual + 1
		}

		// Directional derivative of the merit function.
		dirDeriv := mat.Dot(g, d)
		var pen float64
		for _, c := range ce {
			pen += math.Abs(c)
		}
		for _, c := range ci {
			if c > 0 {
				pen += c
			}
		}
		dirDeriv -= nu * pen

		// Backtracking Armijo line search on the merit function.
		phi0 := merit(f, ce, ci, nu)
		alpha := 1.0
		var xNew []float64
		var fNew float64
		var ceNew, ciNew []float64
		accepted := false
		timedOut := false
		for ls := 0; ls < 30; ls++ {
			xNew = mat.AddVec(x, mat.ScaleVec(alpha, d))
			fNew = p.Objective(xNew)
			ceNew = ev.eq(xNew)
			ciNew = ev.ineq(xNew)
			phi := merit(fNew, ceNew, ciNew, nu)
			if phi <= phi0+1e-4*alpha*dirDeriv || phi < phi0-1e-12*math.Abs(phi0) {
				accepted = true
				break
			}
			// Honor the wall-clock budget mid-iteration: abandoning the
			// backtracking search keeps the last accepted iterate.
			if overTime() {
				timedOut = true
				break
			}
			alpha *= 0.5
		}
		if timedOut {
			res.Status = BudgetExceeded
			break
		}
		if !accepted {
			res.Status = Stalled
			break
		}
		stepNorm := alpha * mat.Norm2(d)

		// Early exit for real-time callers: two consecutive steps with
		// negligible merit progress at a feasible iterate mean further
		// polishing is not worth the time budget.
		if opt.MinMeritDecrease > 0 {
			phiNew := merit(fNew, ceNew, ciNew, nu)
			relDec := (phi0 - phiNew) / math.Max(1, math.Abs(phi0))
			if relDec < opt.MinMeritDecrease && violation(ceNew, ciNew) < opt.Tol {
				stagnant++
				if stagnant >= 2 {
					res.Status = Converged
					x, f, ce, ci = xNew, fNew, ceNew, ciNew
					lam, mu = newLam, newMu
					if lam == nil {
						lam = make([]float64, p.MEq)
					}
					if mu == nil {
						mu = make([]float64, p.MIneq)
					}
					break
				}
			} else {
				stagnant = 0
			}
		}

		// BFGS update with Powell damping on the Lagrangian gradient.
		gNew := ev.gradient(xNew)
		jeNew := ev.eqJac(xNew)
		jiNew := ev.ineqJac(xNew)
		yVec := mat.SubVec(gNew, g)
		if jeNew != nil {
			mat.Axpy(1, jeNew.MulVecT(newLam), yVec)
			mat.Axpy(-1, je.MulVecT(newLam), yVec)
		}
		if jiNew != nil {
			mat.Axpy(1, jiNew.MulVecT(newMu), yVec)
			mat.Axpy(-1, ji.MulVecT(newMu), yVec)
		}
		sVec := mat.SubVec(xNew, x)
		updateBFGS(b, sVec, yVec)

		x, f, g, ce, ci, je, ji = xNew, fNew, gNew, ceNew, ciNew, jeNew, jiNew
		lam, mu = newLam, newMu
		if lam == nil {
			lam = make([]float64, p.MEq)
		}
		if mu == nil {
			mu = make([]float64, p.MIneq)
		}

		// Tiny accepted steps near feasibility mean we are done to the
		// achievable precision.
		if stepNorm < 1e-12*(1+mat.Norm2(x)) && viol < opt.Tol {
			res.Status = Converged
			break
		}
	}

	res.X = x
	res.F = p.Objective(x)
	res.EqDuals = lam
	res.InDuals = mu
	ceF := ev.eq(x)
	ciF := ev.ineq(x)
	res.MaxViolation = violation(ceF, ciF)
	if res.Status == Failed {
		return res, fmt.Errorf("sqp: subproblem failure at iteration %d", res.Iterations)
	}
	if res.Status == BudgetExceeded {
		return res, fmt.Errorf("%w after %d iterations", ErrBudgetExceeded, res.Iterations)
	}
	return res, nil
}

// updateBFGS applies the damped BFGS update (Powell 1978) to b in place,
// keeping it positive definite.
func updateBFGS(b *mat.Dense, s, y []float64) {
	bs := b.MulVec(s)
	sBs := mat.Dot(s, bs)
	if sBs <= 0 {
		return
	}
	sy := mat.Dot(s, y)
	theta := 1.0
	if sy < 0.2*sBs {
		theta = 0.8 * sBs / (sBs - sy)
	}
	// r = θ·y + (1−θ)·B·s guarantees sᵀr ≥ 0.2·sᵀBs > 0.
	r := make([]float64, len(s))
	for i := range r {
		r[i] = theta*y[i] + (1-theta)*bs[i]
	}
	sr := mat.Dot(s, r)
	if sr <= 1e-14*mat.Norm2(s)*mat.Norm2(r) {
		return
	}
	n, _ := b.Dims()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Add(i, j, r[i]*r[j]/sr-bs[i]*bs[j]/sBs)
		}
	}
}

// solveElastic relaxes the QP with slacks: equalities become
// Je·d + sp − sm = beq with sp, sm ≥ 0, inequalities get a slack t ≥ 0,
// all slacks penalized linearly by weight w. The elastic problem is always
// feasible, so the SQP step degrades gracefully into a feasibility-
// restoration direction.
func solveElastic(sub *qp.Problem, w float64) (*qp.Result, error) {
	n, _ := sub.H.Dims()
	meq, min := 0, 0
	if sub.Aeq != nil {
		meq, _ = sub.Aeq.Dims()
	}
	if sub.Ain != nil {
		min, _ = sub.Ain.Dims()
	}
	nTot := n + 2*meq + min

	h := mat.NewDense(nTot, nTot)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			h.Set(i, j, sub.H.At(i, j))
		}
	}
	// Small quadratic regularization keeps the elastic Hessian PD in the
	// slack directions.
	for i := n; i < nTot; i++ {
		h.Set(i, i, 1e-8*w)
	}
	c := make([]float64, nTot)
	copy(c, sub.C)
	for i := n; i < nTot; i++ {
		c[i] = w
	}

	var aeq *mat.Dense
	var beq []float64
	if meq > 0 {
		aeq = mat.NewDense(meq, nTot)
		for i := 0; i < meq; i++ {
			for j := 0; j < n; j++ {
				aeq.Set(i, j, sub.Aeq.At(i, j))
			}
			aeq.Set(i, n+2*i, 1)
			aeq.Set(i, n+2*i+1, -1)
		}
		beq = sub.Beq
	}

	// Inequalities: Ain·d − t ≤ bin, plus nonnegativity of all slacks.
	rows := min + 2*meq + min
	ain := mat.NewDense(maxInt(rows, 1), nTot)
	bin := make([]float64, maxInt(rows, 1))
	r := 0
	for i := 0; i < min; i++ {
		for j := 0; j < n; j++ {
			ain.Set(r, j, sub.Ain.At(i, j))
		}
		ain.Set(r, n+2*meq+i, -1)
		bin[r] = sub.Bin[i]
		r++
	}
	for i := 0; i < 2*meq; i++ { // −sp ≤ 0, −sm ≤ 0
		ain.Set(r, n+i, -1)
		bin[r] = 0
		r++
	}
	for i := 0; i < min; i++ { // −t ≤ 0
		ain.Set(r, n+2*meq+i, -1)
		bin[r] = 0
		r++
	}

	ep := &qp.Problem{H: h, C: c, Aeq: aeq, Beq: beq}
	if r > 0 {
		ep.Ain = ain
		ep.Bin = bin
	}
	er, err := qp.Solve(ep, qp.Options{})
	if err != nil {
		return nil, err
	}
	// Project the result back to the original variable space.
	out := &qp.Result{
		X:          er.X[:n],
		EqDuals:    er.EqDuals,
		Iterations: er.Iterations,
		Status:     er.Status,
	}
	if min > 0 {
		out.InDuals = er.InDuals[:min]
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
