// Package sqp implements a Sequential Quadratic Programming solver for
// smooth nonlinear programs
//
//	minimize    f(x)
//	subject to  ce(x) = 0
//	            ci(x) ≤ 0
//
// using a damped-BFGS approximation of the Lagrangian Hessian, convex QP
// subproblems (internal/qp), an ℓ₁ merit function with backtracking line
// search, and an elastic (slack-penalized) fallback for infeasible
// subproblems. The paper prescribes exactly this algorithm class for the
// MPC step ("the best option might be to apply Sequential Quadratic
// Programming (SQP) as the optimization algorithm for the MPC in each
// time step", Sec. III, citing Kelman & Borrelli).
package sqp

import (
	"errors"
	"fmt"
	"math"
	"time"

	"evclimate/internal/mat"
	"evclimate/internal/qp"
)

// Status describes how Solve terminated.
type Status int

const (
	// Converged means the KKT conditions were met to tolerance.
	Converged Status = iota
	// MaxIterations means the iteration budget ran out; X holds the best
	// iterate found.
	MaxIterations
	// Stalled means the line search could not make progress. The iterate
	// is usually still useful (MPC treats it as a warm start).
	Stalled
	// Failed means a subproblem failed irrecoverably.
	Failed
	// BudgetExceeded means the wall-clock or hard iteration budget ran
	// out (Options.MaxTime / Options.HardIterCap); X holds the best
	// iterate found and Solve additionally returns ErrBudgetExceeded.
	BudgetExceeded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Converged:
		return "converged"
	case MaxIterations:
		return "max-iterations"
	case Stalled:
		return "stalled"
	case Failed:
		return "failed"
	case BudgetExceeded:
		return "budget-exceeded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// ErrBadProblem reports a structurally invalid problem definition.
var ErrBadProblem = errors.New("sqp: invalid problem")

// ErrBudgetExceeded reports that Solve stopped because the wall-clock or
// hard iteration budget ran out. The accompanying Result still holds the
// best iterate, so real-time callers can decide whether the partial
// solution is usable; supervisory layers get a typed watchdog signal
// instead of inferring overload from Stalled.
var ErrBudgetExceeded = errors.New("sqp: budget exceeded")

// Problem defines the NLP. Objective is required. Eq/Ineq may be nil when
// MEq/MIneq are zero. Jacobian callbacks are optional; when nil, forward
// finite differences are used.
type Problem struct {
	// N is the number of decision variables.
	N int
	// Objective evaluates f(x).
	Objective func(x []float64) float64
	// Gradient writes ∇f(x) into grad. Optional.
	Gradient func(x []float64, grad []float64)
	// MEq is the number of equality constraints ce(x) = 0.
	MEq int
	// Eq writes ce(x) into out (length MEq).
	Eq func(x []float64, out []float64)
	// EqJac writes the MEq×N Jacobian of Eq into jac. Optional.
	EqJac func(x []float64, jac *mat.Dense)
	// MIneq is the number of inequality constraints ci(x) ≤ 0.
	MIneq int
	// Ineq writes ci(x) into out (length MIneq).
	Ineq func(x []float64, out []float64)
	// IneqJac writes the MIneq×N Jacobian of Ineq into jac. Optional.
	IneqJac func(x []float64, jac *mat.Dense)
	// Stages, when non-nil, declares receding-horizon stage structure on
	// the variables and constraints (see qp.StageStructure). It is
	// forwarded to every QP subproblem so the interior-point KKT systems
	// factor block-tridiagonally, and it switches the BFGS Hessian
	// approximation to per-stage block-diagonal updates — a dense rank-two
	// update would immediately destroy the band the declaration promises.
	// The constraint Jacobians must honor the stage support contract;
	// rows that stray out of band silently demote the subproblems to the
	// dense path.
	Stages *qp.StageStructure
}

// Options tunes the solver; the zero value selects defaults.
type Options struct {
	// MaxIter limits major (SQP) iterations. Default 100.
	MaxIter int
	// Tol is the KKT tolerance. Default 1e-6.
	Tol float64
	// FDStep is the finite-difference step scale. Default 1e-7.
	FDStep float64
	// PenaltyInit seeds the ℓ₁ merit penalty. Default 1.
	PenaltyInit float64
	// ElasticWeight is the slack penalty used when a subproblem is
	// infeasible. Default 1e4.
	ElasticWeight float64
	// MinMeritDecrease, when positive, stops the iteration early once
	// the relative merit-function decrease stays below it for two
	// consecutive accepted steps AND the iterate is feasible to Tol.
	// Real-time MPC sets this to trade optimality for speed; the default
	// 0 disables it.
	MinMeritDecrease float64
	// MaxTime, when positive, bounds Solve's wall clock. The deadline is
	// honored mid-iteration (before the QP subproblem and inside the line
	// search), so a single expensive iteration cannot blow far past the
	// budget. Exceeding it stops with Status BudgetExceeded and
	// ErrBudgetExceeded. Wall-clock budgets are inherently
	// nondeterministic; deterministic replay must use HardIterCap.
	MaxTime time.Duration
	// HardIterCap, when positive, is a hard major-iteration budget:
	// unlike MaxIter (a normal real-time truncation, Status
	// MaxIterations), exceeding it reports Status BudgetExceeded and
	// ErrBudgetExceeded. When both are set the tighter one applies.
	HardIterCap int
	// Solver is the KKT backend hint passed to the QP subproblems
	// (default qp.BackendAuto: structured whenever Problem.Stages is
	// declared and conforming). qp.BackendDense forces the dense
	// reference path and dense BFGS updates — useful for A/B equivalence
	// runs against the structured backend.
	Solver qp.Backend
	// Work, when non-nil, is a reusable solver workspace: repeated Solve
	// calls with same-shaped problems perform no per-iteration allocation,
	// and the slices in the returned Result alias the workspace (valid
	// until the next Solve with that workspace). Nil keeps the allocating
	// behaviour.
	Work *Workspace
}

func (o *Options) fill() {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	if o.FDStep <= 0 {
		o.FDStep = 1e-7
	}
	if o.PenaltyInit <= 0 {
		o.PenaltyInit = 1
	}
	if o.ElasticWeight <= 0 {
		o.ElasticWeight = 1e4
	}
}

// Result is the solver output.
type Result struct {
	// X is the final iterate.
	X []float64
	// F is the objective at X.
	F float64
	// EqDuals and InDuals are the Lagrange multiplier estimates.
	EqDuals, InDuals []float64
	// Iterations counts major iterations performed.
	Iterations int
	// QPIterations accumulates the interior-point iterations of every QP
	// subproblem solved (including elastic fallbacks) — the telemetry
	// layer's measure of per-solve work below the major-iteration count.
	QPIterations int
	// Status reports the termination condition.
	Status Status
	// KKTResidual is the final stationarity residual (∞-norm).
	KKTResidual float64
	// MaxViolation is the final constraint violation (∞-norm).
	MaxViolation float64
	// Structured reports that every QP subproblem of the solve (elastic
	// fallbacks included) took the stage-structured KKT path — the
	// signal MPC-level tests use to prove the block-tridiagonal backend
	// actually engaged on the declared horizon structure.
	Structured bool
}

type evaluator struct {
	p   *Problem
	opt *Options
	ws  *Workspace
}

// gradientInto writes ∇f(x) into g (a workspace buffer). The buffer is
// zeroed before a user Gradient callback runs, preserving the original
// fresh-slice contract.
func (e *evaluator) gradientInto(x, g []float64) []float64 {
	if e.p.Gradient != nil {
		for i := range g {
			g[i] = 0
		}
		e.p.Gradient(x, g)
		return g
	}
	// Central differences on the objective.
	xt := e.ws.xt
	copy(xt, x)
	for i := range x {
		h := e.opt.FDStep * (1 + math.Abs(x[i]))
		xt[i] = x[i] + h
		fp := e.p.Objective(xt)
		xt[i] = x[i] - h
		fm := e.p.Objective(xt)
		xt[i] = x[i]
		g[i] = (fp - fm) / (2 * h)
	}
	return g
}

// eqInto evaluates ce(x) into out; it returns nil when there are no
// equality constraints.
func (e *evaluator) eqInto(x, out []float64) []float64 {
	if e.p.MEq == 0 {
		return nil
	}
	for i := range out {
		out[i] = 0
	}
	e.p.Eq(x, out)
	return out
}

// ineqInto evaluates ci(x) into out; it returns nil when there are no
// inequality constraints.
func (e *evaluator) ineqInto(x, out []float64) []float64 {
	if e.p.MIneq == 0 {
		return nil
	}
	for i := range out {
		out[i] = 0
	}
	e.p.Ineq(x, out)
	return out
}

// eqJacInto writes the equality Jacobian into jac (a workspace matrix,
// zeroed first so sparse callbacks keep their fresh-matrix contract).
func (e *evaluator) eqJacInto(x []float64, jac *mat.Dense) *mat.Dense {
	if e.p.MEq == 0 {
		return nil
	}
	jac.Zero()
	if e.p.EqJac != nil {
		e.p.EqJac(x, jac)
		return jac
	}
	e.fdJac(x, e.p.Eq, e.p.MEq, jac)
	return jac
}

// ineqJacInto writes the inequality Jacobian into jac.
func (e *evaluator) ineqJacInto(x []float64, jac *mat.Dense) *mat.Dense {
	if e.p.MIneq == 0 {
		return nil
	}
	jac.Zero()
	if e.p.IneqJac != nil {
		e.p.IneqJac(x, jac)
		return jac
	}
	e.fdJac(x, e.p.Ineq, e.p.MIneq, jac)
	return jac
}

func (e *evaluator) fdJac(x []float64, fn func([]float64, []float64), m int, jac *mat.Dense) {
	base := e.ws.fdBase[:m]
	fn(x, base)
	pert := e.ws.fdPert[:m]
	xt := e.ws.xt
	copy(xt, x)
	for j := 0; j < e.p.N; j++ {
		h := e.opt.FDStep * (1 + math.Abs(x[j]))
		xt[j] = x[j] + h
		fn(xt, pert)
		xt[j] = x[j]
		for i := 0; i < m; i++ {
			jac.Set(i, j, (pert[i]-base[i])/h)
		}
	}
}

// violation returns the ℓ∞ constraint violation.
func violation(ce, ci []float64) float64 {
	v := mat.NormInf(ce)
	for _, c := range ci {
		if c > v {
			v = c
		}
	}
	return v
}

// merit evaluates the ℓ₁ exact penalty function f + ν·(‖ce‖₁ + Σ max(ci, 0)).
func merit(f float64, ce, ci []float64, nu float64) float64 {
	var pen float64
	for _, c := range ce {
		pen += math.Abs(c)
	}
	for _, c := range ci {
		if c > 0 {
			pen += c
		}
	}
	return f + nu*pen
}

// kktResidual computes the ∞-norm of the Lagrangian gradient
// ∇f + Jeᵀλ + Jiᵀμ using workspace scratch.
func kktResidual(ws *Workspace, g []float64, je, ji *mat.Dense, lam, mu []float64) float64 {
	copy(ws.lagGrad, g)
	if je != nil {
		je.MulVecTInto(lam, ws.tmpN)
		mat.Axpy(1, ws.tmpN, ws.lagGrad)
	}
	if ji != nil {
		ji.MulVecTInto(mu, ws.tmpN)
		mat.Axpy(1, ws.tmpN, ws.lagGrad)
	}
	return mat.NormInf(ws.lagGrad)
}

// Solve runs the SQP iteration from x0.
func Solve(p *Problem, x0 []float64, opt Options) (*Result, error) {
	opt.fill()
	if p.N <= 0 || p.Objective == nil {
		return nil, fmt.Errorf("%w: need N > 0 and an Objective", ErrBadProblem)
	}
	if len(x0) != p.N {
		return nil, fmt.Errorf("%w: len(x0)=%d, want %d", ErrBadProblem, len(x0), p.N)
	}
	if p.MEq > 0 && p.Eq == nil {
		return nil, fmt.Errorf("%w: MEq=%d but Eq is nil", ErrBadProblem, p.MEq)
	}
	if p.MIneq > 0 && p.Ineq == nil {
		return nil, fmt.Errorf("%w: MIneq=%d but Ineq is nil", ErrBadProblem, p.MIneq)
	}
	if p.Stages != nil {
		if err := p.Stages.Check(p.N, p.MEq, p.MIneq); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadProblem, err)
		}
	}
	ws := opt.Work
	if ws == nil {
		ws = NewWorkspace()
	}
	ws.ensure(p)
	ev := &evaluator{p: p, opt: &opt, ws: ws}

	// Stage-structured mode: per-stage variable offsets drive the
	// block-diagonal BFGS updates below.
	structured := p.Stages != nil && opt.Solver != qp.BackendDense
	var voff []int
	if structured {
		nst := p.Stages.Stages()
		if cap(ws.voff) < nst+1 {
			ws.voff = make([]int, nst+1)
		}
		voff = ws.voff[:nst+1]
		voff[0] = 0
		for k := 0; k < nst; k++ {
			voff[k+1] = voff[k] + p.Stages.NV[k]
		}
	}

	// Double-buffered iterate state: the locals holding the current point
	// and its derivatives swap with their *New partners on every accepted
	// step, so the two workspace buffers of each pair alternate roles and
	// nothing is reallocated.
	x, xNew := ws.x, ws.xNew
	copy(x, x0)
	f := p.Objective(x)
	g, gNew := ev.gradientInto(x, ws.g), ws.gNew
	ce, ceNew := ev.eqInto(x, ws.ce), ws.ceNew
	ci, ciNew := ev.ineqInto(x, ws.ci), ws.ciNew
	je, jeNew := ev.eqJacInto(x, ws.je), ws.jeNew
	ji, jiNew := ev.ineqJacInto(x, ws.ji), ws.jiNew
	if p.MEq == 0 {
		ceNew = nil
	}
	if p.MIneq == 0 {
		ciNew = nil
	}

	// Damped-BFGS Hessian approximation, seeded with a scaled identity.
	b := ws.b
	b.Zero()
	hScale := 1 + mat.NormInf(g)
	for i := 0; i < p.N; i++ {
		b.Set(i, i, hScale)
	}

	lam, lamNew := ws.lam, ws.lamNV
	mu, muNew := ws.mu, ws.muNV
	for i := range lam {
		lam[i] = 0
	}
	for i := range mu {
		mu[i] = 0
	}
	nu := opt.PenaltyInit

	var deadline time.Time
	if opt.MaxTime > 0 {
		deadline = time.Now().Add(opt.MaxTime)
	}
	overTime := func() bool { return opt.MaxTime > 0 && time.Now().After(deadline) }

	res := &ws.res
	// Structured starts true when the stage backend can engage and is
	// cleared by the first subproblem that solved densely; a solve with
	// zero QP subproblems reports false.
	*res = Result{Status: MaxIterations, Structured: structured}
	qpSolves := 0
	stagnant := 0
	for iter := 0; iter < opt.MaxIter; iter++ {
		if opt.HardIterCap > 0 && iter >= opt.HardIterCap {
			res.Status = BudgetExceeded
			break
		}
		res.Iterations = iter + 1

		// Convergence check: KKT stationarity + feasibility + complementarity.
		kkt := kktResidual(ws, g, je, ji, lam, mu)
		viol := violation(ce, ci)
		var comp float64
		for i, m := range mu {
			if c := math.Abs(m * ci[i]); c > comp {
				comp = c
			}
		}
		res.KKTResidual = kkt
		res.MaxViolation = viol
		gScale := 1 + mat.NormInf(g)
		if kkt < opt.Tol*gScale && viol < opt.Tol && comp < opt.Tol*gScale {
			res.Status = Converged
			break
		}

		if overTime() {
			res.Status = BudgetExceeded
			break
		}

		// QP subproblem: min ½dᵀBd + gᵀd  s.t.  Je·d = −ce, Ji·d ≤ −ci.
		sub := &ws.sub
		*sub = qp.Problem{H: b, C: g, Stages: p.Stages}
		if je != nil {
			sub.Aeq = je
			sub.Beq = mat.ScaleVecInto(ws.beqNeg, -1, ce)
		}
		if ji != nil {
			sub.Ain = ji
			sub.Bin = mat.ScaleVecInto(ws.binNeg, -1, ci)
		}
		// Subproblem tolerance: two orders tighter than the NLP tolerance
		// is enough for SQP convergence; floor at 1e-8 for high-accuracy
		// callers. (Solving subproblems to 1e-8 when the NLP only needs
		// 1e-4 wastes interior-point iterations in the MPC hot path.)
		qpTol := opt.Tol * 1e-2
		if qpTol < 1e-8 {
			qpTol = 1e-8
		}
		qpOpts := qp.Options{Tol: qpTol, Backend: opt.Solver, Work: ws.qpWork}
		qr, err := qp.Solve(sub, qpOpts)
		if qr != nil {
			res.QPIterations += qr.Iterations
			qpSolves++
			if !qr.Structured {
				res.Structured = false
			}
		}
		if err != nil || qr.Status == qp.NumericalFailure || !mat.AllFinite(qr.X) {
			// Elastic fallback: relax constraints with penalized slacks.
			// The subproblem options (tolerance, iteration budget) are
			// threaded through: the fallback must respect the same
			// real-time budget as the primary solve.
			if ws.el == nil {
				ws.el = &elasticArena{}
			}
			qr, err = solveElastic(sub, opt.ElasticWeight, qpOpts, ws.el)
			if qr != nil {
				res.QPIterations += qr.Iterations
				if !qr.Structured {
					res.Structured = false
				}
			}
			if err != nil {
				res.Status = Failed
				break
			}
		}
		// Copy the step and duals out of the QP workspace: qr's slices
		// alias it and the elastic fallback (or the next iteration's
		// solve) would overwrite them.
		d := ws.d
		copy(d, qr.X)
		for i := range lamNew {
			lamNew[i] = 0
		}
		copy(lamNew, qr.EqDuals)
		for i := range muNew {
			muNew[i] = 0
		}
		copy(muNew, qr.InDuals)

		// Penalty update: ν must dominate the multipliers for the ℓ₁
		// merit to be exact.
		maxDual := mat.NormInf(lamNew)
		if m := mat.NormInf(muNew); m > maxDual {
			maxDual = m
		}
		if nu < 1.1*maxDual {
			nu = 1.5*maxDual + 1
		}

		// Directional derivative of the merit function.
		dirDeriv := mat.Dot(g, d)
		var pen float64
		for _, c := range ce {
			pen += math.Abs(c)
		}
		for _, c := range ci {
			if c > 0 {
				pen += c
			}
		}
		dirDeriv -= nu * pen

		// Backtracking Armijo line search on the merit function.
		phi0 := merit(f, ce, ci, nu)
		alpha := 1.0
		var fNew float64
		accepted := false
		timedOut := false
		for ls := 0; ls < 30; ls++ {
			mat.ScaleVecInto(xNew, alpha, d)
			mat.Axpy(1, x, xNew)
			fNew = p.Objective(xNew)
			ceNew = ev.eqInto(xNew, ceNew)
			ciNew = ev.ineqInto(xNew, ciNew)
			phi := merit(fNew, ceNew, ciNew, nu)
			if phi <= phi0+1e-4*alpha*dirDeriv || phi < phi0-1e-12*math.Abs(phi0) {
				accepted = true
				break
			}
			// Honor the wall-clock budget mid-iteration: abandoning the
			// backtracking search keeps the last accepted iterate.
			if overTime() {
				timedOut = true
				break
			}
			alpha *= 0.5
		}
		if timedOut {
			res.Status = BudgetExceeded
			break
		}
		if !accepted {
			res.Status = Stalled
			break
		}
		stepNorm := alpha * mat.Norm2(d)

		// Early exit for real-time callers: two consecutive steps with
		// negligible merit progress at a feasible iterate mean further
		// polishing is not worth the time budget.
		if opt.MinMeritDecrease > 0 {
			phiNew := merit(fNew, ceNew, ciNew, nu)
			relDec := (phi0 - phiNew) / math.Max(1, math.Abs(phi0))
			if relDec < opt.MinMeritDecrease && violation(ceNew, ciNew) < opt.Tol {
				stagnant++
				if stagnant >= 2 {
					res.Status = Converged
					x, xNew = xNew, x
					f = fNew
					ce, ceNew = ceNew, ce
					ci, ciNew = ciNew, ci
					lam, lamNew = lamNew, lam
					mu, muNew = muNew, mu
					// Refresh the derivatives so the reported KKT
					// residual describes the accepted iterate, not the
					// one before the step.
					g = ev.gradientInto(x, gNew)
					je = ev.eqJacInto(x, jeNew)
					ji = ev.ineqJacInto(x, jiNew)
					res.KKTResidual = kktResidual(ws, g, je, ji, lam, mu)
					break
				}
			} else {
				stagnant = 0
			}
		}

		// BFGS update with Powell damping on the Lagrangian gradient.
		ev.gradientInto(xNew, gNew)
		jeNew = ev.eqJacInto(xNew, jeNew)
		jiNew = ev.ineqJacInto(xNew, jiNew)
		yVec := mat.SubVecInto(ws.yVec, gNew, g)
		if jeNew != nil {
			jeNew.MulVecTInto(lamNew, ws.tmpN)
			mat.Axpy(1, ws.tmpN, yVec)
			je.MulVecTInto(lamNew, ws.tmpN)
			mat.Axpy(-1, ws.tmpN, yVec)
		}
		if jiNew != nil {
			jiNew.MulVecTInto(muNew, ws.tmpN)
			mat.Axpy(1, ws.tmpN, yVec)
			ji.MulVecTInto(muNew, ws.tmpN)
			mat.Axpy(-1, ws.tmpN, yVec)
		}
		sVec := mat.SubVecInto(ws.sVec, xNew, x)
		if structured {
			updateBFGSBlocks(b, voff, sVec, yVec, ws.bs, ws.bfgsR)
		} else {
			updateBFGS(b, sVec, yVec, ws.bs, ws.bfgsR)
		}

		x, xNew = xNew, x
		f = fNew
		g, gNew = gNew, g
		ce, ceNew = ceNew, ce
		ci, ciNew = ciNew, ci
		je, jeNew = jeNew, je
		ji, jiNew = jiNew, ji
		lam, lamNew = lamNew, lam
		mu, muNew = muNew, mu

		// Tiny accepted steps near feasibility mean we are done to the
		// achievable precision. The feasibility test uses the accepted
		// iterate's constraint values (post-swap ce/ci), not the stale
		// pre-step violation, and the reported KKT residual is recomputed
		// at the accepted iterate.
		if stepNorm < 1e-12*(1+mat.Norm2(x)) && violation(ce, ci) < opt.Tol {
			res.Status = Converged
			res.KKTResidual = kktResidual(ws, g, je, ji, lam, mu)
			break
		}
	}

	// Every exit path maintains the invariant that f, ce and ci were
	// evaluated at x, so the cached values are the final ones — no
	// re-evaluation of the objective or constraints is needed here.
	res.X = x
	res.F = f
	res.EqDuals = lam
	res.InDuals = mu
	res.MaxViolation = violation(ce, ci)
	if qpSolves == 0 {
		res.Structured = false
	}
	if res.Status == Failed {
		return res, fmt.Errorf("sqp: subproblem failure at iteration %d", res.Iterations)
	}
	if res.Status == BudgetExceeded {
		return res, fmt.Errorf("%w after %d iterations", ErrBudgetExceeded, res.Iterations)
	}
	return res, nil
}

// updateBFGS applies the damped BFGS update (Powell 1978) to b in place,
// keeping it positive definite. bs and r are caller scratch (length n).
func updateBFGS(b *mat.Dense, s, y, bs, r []float64) {
	n, _ := b.Dims()
	updateBFGSBlock(b, 0, n, s, y, bs, r)
}

// updateBFGSBlocks applies the damped update independently to each
// diagonal stage block of b, leaving off-block entries untouched (zero
// from the scaled-identity seed). Each block update preserves positive
// definiteness of its block, so the block-diagonal approximation stays PD
// and — unlike a dense rank-two update — inside the block-tridiagonal
// band the stage declaration promises to the QP backend. Curvature
// between stages is discarded; that costs some BFGS accuracy but keeps
// the subproblems structured, which is the better trade in the MPC hot
// path.
func updateBFGSBlocks(b *mat.Dense, voff []int, s, y, bs, r []float64) {
	for k := 0; k+1 < len(voff); k++ {
		lo, hi := voff[k], voff[k+1]
		updateBFGSBlock(b, lo, hi, s[lo:hi], y[lo:hi], bs[lo:hi], r[lo:hi])
	}
}

// updateBFGSBlock runs the damped update on the diagonal sub-block
// b[lo:hi, lo:hi]; s, y, bs, r are the corresponding slices (length
// hi−lo). The rank-two update runs on raw row slices so the inner loop
// carries no per-element bounds-check or method-call overhead.
func updateBFGSBlock(b *mat.Dense, lo, hi int, s, y, bs, r []float64) {
	m := hi - lo
	for i := 0; i < m; i++ {
		row := b.RawRow(lo + i)[lo:hi]
		var acc float64
		for j, v := range row {
			acc += v * s[j]
		}
		bs[i] = acc
	}
	sBs := mat.Dot(s, bs)
	if sBs <= 0 {
		return
	}
	sy := mat.Dot(s, y)
	theta := 1.0
	if sy < 0.2*sBs {
		theta = 0.8 * sBs / (sBs - sy)
	}
	// r = θ·y + (1−θ)·B·s guarantees sᵀr ≥ 0.2·sᵀBs > 0.
	for i := range r {
		r[i] = theta*y[i] + (1-theta)*bs[i]
	}
	sr := mat.Dot(s, r)
	if sr <= 1e-14*mat.Norm2(s)*mat.Norm2(r) {
		return
	}
	for i := 0; i < m; i++ {
		row := b.RawRow(lo + i)[lo:hi]
		ri, bi := r[i], bs[i]
		for j := 0; j < m; j++ {
			row[j] += ri*r[j]/sr - bi*bs[j]/sBs
		}
	}
}

// solveElastic relaxes the QP with slacks: equalities become
// Je·d + sp − sm = beq with sp, sm ≥ 0, inequalities get a slack t ≥ 0,
// all slacks penalized linearly by weight w. The elastic problem is always
// feasible, so the SQP step degrades gracefully into a feasibility-
// restoration direction. The caller's subproblem options (tolerance and
// iteration budget) apply to the fallback solve too — only the workspace
// is swapped for the arena's, since the elastic problem has different
// dimensions than the main subproblem. The returned Result aliases the
// arena and is valid until the next call with it.
func solveElastic(sub *qp.Problem, w float64, qopt qp.Options, ar *elasticArena) (*qp.Result, error) {
	n, _ := sub.H.Dims()
	meq, min := 0, 0
	if sub.Aeq != nil {
		meq, _ = sub.Aeq.Dims()
	}
	if sub.Ain != nil {
		min, _ = sub.Ain.Dims()
	}
	nTot := n + 2*meq + min
	// Inequalities: Ain·d − t ≤ bin, plus nonnegativity of all slacks.
	rows := min + 2*meq + min
	ar.ensure(nTot, meq, rows)

	h := ar.h
	for i := 0; i < n; i++ {
		copy(h.RawRow(i)[:n], sub.H.RawRow(i))
	}
	// Small quadratic regularization keeps the elastic Hessian PD in the
	// slack directions.
	for i := n; i < nTot; i++ {
		h.Set(i, i, 1e-8*w)
	}
	c := ar.c
	copy(c, sub.C)
	for i := n; i < nTot; i++ {
		c[i] = w
	}

	var aeq *mat.Dense
	var beq []float64
	if meq > 0 {
		aeq = ar.aeq
		for i := 0; i < meq; i++ {
			copy(aeq.RawRow(i)[:n], sub.Aeq.RawRow(i))
			aeq.Set(i, n+2*i, 1)
			aeq.Set(i, n+2*i+1, -1)
		}
		beq = sub.Beq
	}

	ain := ar.ain
	bin := ar.bin
	r := 0
	for i := 0; i < min; i++ {
		copy(ain.RawRow(r)[:n], sub.Ain.RawRow(i))
		ain.Set(r, n+2*meq+i, -1)
		bin[r] = sub.Bin[i]
		r++
	}
	for i := 0; i < 2*meq; i++ { // −sp ≤ 0, −sm ≤ 0
		ain.Set(r, n+i, -1)
		bin[r] = 0
		r++
	}
	for i := 0; i < min; i++ { // −t ≤ 0
		ain.Set(r, n+2*meq+i, -1)
		bin[r] = 0
		r++
	}

	ep := &qp.Problem{H: h, C: c, Aeq: aeq, Beq: beq}
	if r > 0 {
		ep.Ain = ain
		ep.Bin = bin
	}
	qopt.Work = ar.qpWork
	er, err := qp.Solve(ep, qopt)
	if err != nil {
		return nil, err
	}
	// Project the result back to the original variable space.
	out := &ar.out
	*out = qp.Result{
		X:          er.X[:n],
		EqDuals:    er.EqDuals,
		Iterations: er.Iterations,
		Status:     er.Status,
	}
	if min > 0 {
		out.InDuals = er.InDuals[:min]
	}
	return out, nil
}
