// Package geodata synthesizes the route information the paper's drive
// profiles are built from (Sec. II-A): road slope from elevation data
// (the paper uses the Google Maps APIs [17]), ambient temperature from
// climate records (NOAA NCDC [18]), and average segment speeds from
// traffic data. Those services need network access and licenses; this
// package provides deterministic procedural substitutes with the same
// interfaces — a terrain model, a seasonal/diurnal climate model, and a
// rush-hour traffic model — and a planner that compiles a waypoint route
// into a drivecycle.Route. The substitution is documented in DESIGN.md §3.
package geodata

import (
	"errors"
	"fmt"
	"math"

	"evclimate/internal/drivecycle"
)

// Terrain is a deterministic procedural elevation model: a sum of
// sinusoids at several wavelengths, seeded so distinct regions differ.
type Terrain struct {
	// Seed selects the region.
	Seed int64
	// ReliefM scales the total elevation variation (default 120 m).
	ReliefM float64
}

// ElevationM returns the terrain elevation at a distance along the route
// in kilometers.
func (t *Terrain) ElevationM(xKm float64) float64 {
	relief := t.ReliefM
	if relief <= 0 {
		relief = 120
	}
	s := float64(t.Seed%977) * 0.61803
	// Three octaves: long rolling hills, mid features, local undulation.
	e := 0.55*math.Sin(xKm/9.7+s) +
		0.3*math.Sin(xKm/2.9+2.3*s) +
		0.15*math.Sin(xKm/0.83+4.1*s)
	return relief * e / 2
}

// SlopePercentAt returns the road grade (percent) at xKm using a central
// difference over ±100 m.
func (t *Terrain) SlopePercentAt(xKm float64) float64 {
	const h = 0.1 // km
	dElev := t.ElevationM(xKm+h) - t.ElevationM(xKm-h)
	return dElev / (2 * h * 1000) * 100
}

// ClimateZone selects the seasonal/diurnal temperature model.
type ClimateZone int

const (
	// Temperate: mild summers, cold winters (continental Europe).
	Temperate ClimateZone = iota
	// Desert: hot summers, large diurnal swing (Phoenix-like).
	Desert
	// Coastal: damped seasons and days (San Francisco-like).
	Coastal
	// Continental: hot summers AND very cold winters (Minneapolis-like).
	Continental
)

// String implements fmt.Stringer.
func (z ClimateZone) String() string {
	switch z {
	case Temperate:
		return "temperate"
	case Desert:
		return "desert"
	case Coastal:
		return "coastal"
	case Continental:
		return "continental"
	default:
		return fmt.Sprintf("zone(%d)", int(z))
	}
}

// zoneParams: annual mean, seasonal amplitude, diurnal amplitude (°C).
func (z ClimateZone) params() (mean, seasonal, diurnal float64) {
	switch z {
	case Desert:
		return 23, 12, 9
	case Coastal:
		return 14, 4, 3
	case Continental:
		return 9, 16, 6
	default: // Temperate
		return 11, 9, 5
	}
}

// Climate is the procedural stand-in for a climate database: temperature
// as a function of month and hour, plus a clear-sky solar-load model.
type Climate struct {
	// Zone selects the regional parameters.
	Zone ClimateZone
}

// AmbientC returns the typical outside temperature for month (1–12) and
// hour (0–23, local solar time). The seasonal peak is late July; the
// diurnal peak 15:00.
func (c *Climate) AmbientC(month int, hour float64) float64 {
	mean, seasonal, diurnal := c.Zone.params()
	seasonPhase := 2 * math.Pi * (float64(month) - 7.5) / 12
	dayPhase := 2 * math.Pi * (hour - 15) / 24
	return mean + seasonal*math.Cos(seasonPhase) + diurnal*math.Cos(dayPhase)
}

// SolarLoadW returns the solar thermal load on a parked/driving car's
// cabin for month and hour: zero at night, peaking near solar noon,
// stronger in summer.
func (c *Climate) SolarLoadW(month int, hour float64) float64 {
	// Day length varies with season: 8 h winter to 16 h summer.
	seasonPhase := 2 * math.Pi * (float64(month) - 6.5) / 12
	halfDay := (12 + 4*math.Cos(seasonPhase)) / 2
	fromNoon := math.Abs(hour - 12.5)
	if fromNoon > halfDay {
		return 0
	}
	peak := 350 + 250*math.Cos(seasonPhase)
	return peak * math.Cos(fromNoon/halfDay*math.Pi/2)
}

// Traffic models rush-hour slowdowns: a multiplicative factor on
// free-flow speed by hour of day.
type Traffic struct {
	// PeakSlowdown is the worst-case speed factor during rush hour
	// (default 0.55).
	PeakSlowdown float64
}

// SpeedFactor returns the fraction of free-flow speed achievable at the
// given hour (0–23). Morning rush peaks at 08:00, evening at 17:30.
func (t *Traffic) SpeedFactor(hour float64) float64 {
	slow := t.PeakSlowdown
	if slow <= 0 {
		slow = 0.55
	}
	rush := func(center, width float64) float64 {
		d := (hour - center) / width
		return math.Exp(-d * d)
	}
	congestion := math.Max(rush(8, 1.2), rush(17.5, 1.5))
	return 1 - (1-slow)*congestion
}

// Waypoint is one leg of a planned route in the planner's input form:
// distance and free-flow speed, as a navigation service would report.
type Waypoint struct {
	// LengthKm is the leg length.
	LengthKm float64
	// FreeFlowKmh is the uncongested speed.
	FreeFlowKmh float64
	// Stop marks a junction/light at the end of the leg.
	Stop bool
}

// Planner compiles waypoints plus models into a drive profile's route.
type Planner struct {
	// Terrain, Climate, Traffic supply the environment; nil fields get
	// defaults (seed-0 terrain, temperate climate, default traffic).
	Terrain *Terrain
	Climate *Climate
	Traffic *Traffic
}

// Plan builds a drivecycle.Route for a trip departing in the given month
// (1–12) at the given hour (0–24). Slopes are sampled at each leg's
// midpoint, speeds are scaled by the traffic factor at departure, and
// ambient/solar come from the climate model (advanced along the trip's
// rough timeline).
func (pl *Planner) Plan(name string, wps []Waypoint, month int, hour float64) (*drivecycle.Route, error) {
	if len(wps) == 0 {
		return nil, errors.New("geodata: no waypoints")
	}
	if month < 1 || month > 12 {
		return nil, fmt.Errorf("geodata: month %d outside 1–12", month)
	}
	if hour < 0 || hour >= 24 {
		return nil, fmt.Errorf("geodata: hour %v outside [0, 24)", hour)
	}
	terrain := pl.Terrain
	if terrain == nil {
		terrain = &Terrain{}
	}
	climate := pl.Climate
	if climate == nil {
		climate = &Climate{}
	}
	traffic := pl.Traffic
	if traffic == nil {
		traffic = &Traffic{}
	}

	route := &drivecycle.Route{Name: name}
	distKm := 0.0
	tripHour := hour
	for i, wp := range wps {
		if wp.LengthKm <= 0 || wp.FreeFlowKmh <= 0 {
			return nil, fmt.Errorf("geodata: waypoint %d: length and speed must be positive", i)
		}
		speed := wp.FreeFlowKmh * traffic.SpeedFactor(tripHour)
		if speed < 5 {
			speed = 5
		}
		mid := distKm + wp.LengthKm/2
		seg := drivecycle.RouteSegment{
			LengthKm:     wp.LengthKm,
			SpeedKmh:     speed,
			SlopePercent: terrain.SlopePercentAt(mid),
			AmbientC:     climate.AmbientC(month, tripHour),
			SolarW:       climate.SolarLoadW(month, tripHour),
			StopAtEnd:    wp.Stop,
		}
		route.Segments = append(route.Segments, seg)
		distKm += wp.LengthKm
		tripHour += wp.LengthKm / speed // advance the clock
		if tripHour >= 24 {
			tripHour -= 24
		}
	}
	return route, nil
}
