package geodata

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTerrainDeterministicAndBounded(t *testing.T) {
	tr := &Terrain{Seed: 42, ReliefM: 100}
	if tr.ElevationM(5) != tr.ElevationM(5) {
		t.Error("terrain not deterministic")
	}
	// Different seeds give different terrain.
	tr2 := &Terrain{Seed: 43, ReliefM: 100}
	same := true
	for x := 0.0; x < 50; x += 5 {
		if math.Abs(tr.ElevationM(x)-tr2.ElevationM(x)) > 1e-9 {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical terrain")
	}
	// Elevation bounded by the relief.
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		x := math.Mod(raw, 1000)
		e := tr.ElevationM(x)
		return e >= -100 && e <= 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTerrainSlopesRealistic(t *testing.T) {
	tr := &Terrain{Seed: 7}
	var maxAbs float64
	for x := 0.0; x < 100; x += 0.25 {
		s := tr.SlopePercentAt(x)
		if a := math.Abs(s); a > maxAbs {
			maxAbs = a
		}
	}
	// Real roads: grades rarely exceed 10 %; the default relief must stay
	// well within that, but produce *some* hills.
	if maxAbs > 10 {
		t.Errorf("max grade %v %% too steep", maxAbs)
	}
	if maxAbs < 0.5 {
		t.Errorf("max grade %v %% — terrain is flat", maxAbs)
	}
}

func TestClimateSeasons(t *testing.T) {
	c := &Climate{Zone: Temperate}
	july := c.AmbientC(7, 15)
	jan := c.AmbientC(1, 15)
	if july <= jan {
		t.Errorf("July (%v) should be warmer than January (%v)", july, jan)
	}
	// Afternoon warmer than pre-dawn.
	if c.AmbientC(7, 15) <= c.AmbientC(7, 4) {
		t.Error("afternoon should be warmer than night")
	}
}

func TestClimateZonesDiffer(t *testing.T) {
	desert := (&Climate{Zone: Desert}).AmbientC(7, 15)
	coastal := (&Climate{Zone: Coastal}).AmbientC(7, 15)
	continentalWinter := (&Climate{Zone: Continental}).AmbientC(1, 5)
	if desert < 38 || desert > 48 {
		t.Errorf("desert July afternoon = %v, want ≈ 43 (the paper's Table I extreme)", desert)
	}
	if coastal > 25 {
		t.Errorf("coastal July afternoon = %v, want mild", coastal)
	}
	if continentalWinter > -2 {
		t.Errorf("continental January night = %v, want below freezing", continentalWinter)
	}
}

func TestClimateZoneStrings(t *testing.T) {
	for z, want := range map[ClimateZone]string{
		Temperate: "temperate", Desert: "desert", Coastal: "coastal", Continental: "continental",
	} {
		if z.String() != want {
			t.Errorf("%d.String() = %q", z, z.String())
		}
	}
	if ClimateZone(99).String() == "" {
		t.Error("unknown zone renders empty")
	}
}

func TestSolarLoad(t *testing.T) {
	c := &Climate{Zone: Temperate}
	// Zero at night, peak near noon, summer > winter.
	if c.SolarLoadW(7, 2) != 0 {
		t.Error("solar at 02:00 should be zero")
	}
	noonSummer := c.SolarLoadW(7, 12.5)
	noonWinter := c.SolarLoadW(1, 12.5)
	if noonSummer <= noonWinter {
		t.Errorf("summer noon (%v) should out-sun winter (%v)", noonSummer, noonWinter)
	}
	if noonSummer < 300 || noonSummer > 700 {
		t.Errorf("summer noon load = %v W, want 300–700", noonSummer)
	}
	// Morning below noon.
	if c.SolarLoadW(7, 9) >= noonSummer {
		t.Error("morning sun should be below noon")
	}
}

func TestTrafficRushHours(t *testing.T) {
	tr := &Traffic{}
	rush := tr.SpeedFactor(8)
	night := tr.SpeedFactor(2)
	if rush >= 0.8 {
		t.Errorf("rush-hour factor = %v, want congestion", rush)
	}
	if night < 0.95 {
		t.Errorf("night factor = %v, want free flow", night)
	}
	// Factors always in (0, 1].
	for h := 0.0; h < 24; h += 0.5 {
		f := tr.SpeedFactor(h)
		if f <= 0 || f > 1 {
			t.Fatalf("factor at %v = %v", h, f)
		}
	}
}

func TestPlannerBuildsValidRoute(t *testing.T) {
	pl := &Planner{
		Terrain: &Terrain{Seed: 3},
		Climate: &Climate{Zone: Desert},
		Traffic: &Traffic{},
	}
	wps := []Waypoint{
		{LengthKm: 2, FreeFlowKmh: 50, Stop: true},
		{LengthKm: 8, FreeFlowKmh: 110},
		{LengthKm: 1.5, FreeFlowKmh: 40, Stop: true},
	}
	route, err := pl.Plan("desert-commute", wps, 7, 8) // July, morning rush
	if err != nil {
		t.Fatal(err)
	}
	if len(route.Segments) != 3 {
		t.Fatalf("segments = %d", len(route.Segments))
	}
	// Rush hour slows the trip below free flow.
	if route.Segments[1].SpeedKmh >= 110 {
		t.Errorf("highway speed %v not slowed by rush hour", route.Segments[1].SpeedKmh)
	}
	// July desert morning is already warm.
	if route.Segments[0].AmbientC < 25 {
		t.Errorf("desert July morning = %v °C", route.Segments[0].AmbientC)
	}
	// The route renders into a valid drive profile.
	p, err := route.Profile(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if math.Abs(st.DistanceKm-11.5) > 0.8 {
		t.Errorf("distance %v, want ≈ 11.5", st.DistanceKm)
	}
}

func TestPlannerDefaults(t *testing.T) {
	pl := &Planner{}
	route, err := pl.Plan("defaults", []Waypoint{{LengthKm: 5, FreeFlowKmh: 80}}, 4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(route.Segments) != 1 {
		t.Fatal("no segments")
	}
	if _, err := route.Profile(1); err != nil {
		t.Fatal(err)
	}
}

func TestPlannerValidation(t *testing.T) {
	pl := &Planner{}
	if _, err := pl.Plan("x", nil, 7, 8); err == nil {
		t.Error("empty waypoints accepted")
	}
	if _, err := pl.Plan("x", []Waypoint{{LengthKm: 1, FreeFlowKmh: 50}}, 0, 8); err == nil {
		t.Error("month 0 accepted")
	}
	if _, err := pl.Plan("x", []Waypoint{{LengthKm: 1, FreeFlowKmh: 50}}, 7, 24); err == nil {
		t.Error("hour 24 accepted")
	}
	if _, err := pl.Plan("x", []Waypoint{{LengthKm: 0, FreeFlowKmh: 50}}, 7, 8); err == nil {
		t.Error("zero-length waypoint accepted")
	}
}
