package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"testing"
	"time"

	"evclimate/internal/runner"
	"evclimate/internal/telemetry"
)

// gridBuilder is the test sweep: a 2 cycles × 2 envs × 2 controllers
// grid (8 cheap jobs), parameterized by seed and profile truncation the
// way a real distributable experiment would be.
func gridBuilder(params map[string]string) (runner.Spec, error) {
	seed, err := strconv.ParseInt(params["seed"], 10, 64)
	if err != nil {
		return runner.Spec{}, fmt.Errorf("fabric test: bad seed param: %w", err)
	}
	maxS, err := strconv.ParseFloat(params["max_s"], 64)
	if err != nil {
		return runner.Spec{}, fmt.Errorf("fabric test: bad max_s param: %w", err)
	}
	return runner.Spec{
		Controllers: []runner.ControllerSpec{runner.OnOffSpec(1), runner.FuzzySpec(1)},
		Cycles:      []runner.CycleSpec{{Name: "ECE15"}, {Name: "UDDS"}},
		Envs:        []runner.Env{{AmbientC: 35, SolarW: 400}, {AmbientC: 0}},
		MaxProfileS: maxS,
		BaseSeed:    seed,
	}, nil
}

var gridParams = map[string]string{"seed": "42", "max_s": "120"}

func testSpecs(t *testing.T) *Registry {
	t.Helper()
	specs := NewSpecRegistry()
	specs.Register("grid", gridBuilder)
	return specs
}

func mustSpec(t *testing.T) runner.Spec {
	t.Helper()
	spec, err := gridBuilder(gridParams)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestShardUnitsPartition(t *testing.T) {
	spec := mustSpec(t)
	jobs, err := runner.Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	units := shardUnits(jobs, 3)
	seen := make(map[int]int)
	for u, idxs := range units {
		if len(idxs) == 0 {
			t.Errorf("unit %d empty", u)
		}
		for k := 1; k < len(idxs); k++ {
			if idxs[k-1] >= idxs[k] {
				t.Errorf("unit %d not sorted: %v", u, idxs)
			}
		}
		for _, i := range idxs {
			seen[i]++
		}
	}
	if len(seen) != len(jobs) {
		t.Errorf("sharding covered %d of %d jobs", len(seen), len(jobs))
	}
	for i, n := range seen {
		if n != 1 {
			t.Errorf("job %d sharded %d times", i, n)
		}
	}
	// Content-addressed: a second expansion shards identically.
	again := shardUnits(jobs, 3)
	if fmt.Sprint(units) != fmt.Sprint(again) {
		t.Errorf("sharding not deterministic:\n%v\nvs\n%v", units, again)
	}
	// One giant unit still covers everything.
	if one := shardUnits(jobs, 1000); len(one) != 1 || len(one[0]) != len(jobs) {
		t.Errorf("oversized unitSize: %v", one)
	}
}

// artifacts are the byte-exact outputs the determinism contract covers.
type artifacts struct {
	metrics  []byte // deterministic metric snapshot, JSON
	trace    []byte // stitched step spans, JSONL without timing
	manifest []byte // finalized manifest (resume lineage stripped)
	results  []byte // per-job results, JSON
}

// collect freezes one run's artifacts. Resume lineage is stripped
// before comparison: it is the only section a resumed run may differ
// in (the manifest contract from the durability PR).
func collect(t *testing.T, reg *telemetry.Registry, tl *telemetry.TraceLog, man *telemetry.Manifest, sw *runner.Sweep) artifacts {
	t.Helper()
	var a artifacts
	var err error
	snap := reg.Snapshot(telemetry.DeterministicFilter)
	if a.metrics, err = json.Marshal(snap); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tl.WriteJSONL(&buf, false); err != nil {
		t.Fatal(err)
	}
	a.trace = buf.Bytes()
	man.Finalize("test", snap)
	man.Resume = nil
	if a.manifest, err = json.Marshal(man); err != nil {
		t.Fatal(err)
	}
	type rj struct {
		Index    int             `json:"index"`
		Err      string          `json:"err,omitempty"`
		Attempts int             `json:"attempts"`
		Result   json.RawMessage `json:"result,omitempty"`
	}
	rows := make([]rj, len(sw.Jobs))
	for i := range sw.Jobs {
		jr := &sw.Jobs[i]
		rows[i] = rj{Index: jr.Job.Index, Attempts: jr.Attempts}
		if jr.Err != nil {
			rows[i].Err = jr.Err.Error()
		}
		if jr.Result != nil {
			res, err := json.Marshal(jr.Result)
			if err != nil {
				t.Fatal(err)
			}
			rows[i].Result = res
		}
	}
	if a.results, err = json.Marshal(rows); err != nil {
		t.Fatal(err)
	}
	return a
}

// runFabric executes the grid sweep through a loopback coordinator with
// n in-process workers and returns the stitched artifacts.
func runFabric(t *testing.T, label string, n int) artifacts {
	t.Helper()
	reg := telemetry.NewRegistry()
	tl := &telemetry.TraceLog{}
	man := telemetry.NewManifest("evbench")
	coord, err := NewCoordinator(CoordinatorConfig{
		Spec:      mustSpec(t),
		SpecName:  "grid",
		Params:    gridParams,
		Label:     label,
		UnitSize:  2,
		LeaseTTL:  2 * time.Second,
		Telemetry: reg,
		TraceLog:  tl,
		Manifest:  man,
		Git:       "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	specs := testSpecs(t)
	errc := make(chan error, n)
	for w := 0; w < n; w++ {
		go func(w int) {
			wk := NewWorker(WorkerConfig{
				URL:     "http://" + coord.Addr,
				ID:      fmt.Sprintf("w%d", w),
				Specs:   specs,
				Workers: 2,
				Connect: runner.RetryPolicy{BaseBackoff: 20 * time.Millisecond, MaxBackoff: 200 * time.Millisecond},
				Git:     "test",
			})
			_, err := wk.Run(ctx)
			errc <- err
		}(w)
	}
	if err := coord.Wait(ctx); err != nil {
		t.Fatalf("coordinator wait: %v (progress %+v)", err, coord.Snapshot())
	}
	for w := 0; w < n; w++ {
		if err := <-errc; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	sw, err := coord.Stitch()
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.FirstErr(); err != nil {
		t.Fatal(err)
	}
	return collect(t, reg, tl, man, sw)
}

// TestFabricTopologyDeterminism extends the runner's worker-count
// determinism proof across process topologies: the stitched metrics,
// traces, manifest, and per-job results of a fabric run must be
// byte-identical to the single-process run, at any worker count.
func TestFabricTopologyDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates real cycles")
	}
	label := "fabric-grid"
	reg := telemetry.NewRegistry()
	tl := &telemetry.TraceLog{}
	man := telemetry.NewManifest("evbench")
	sw, err := runner.Run(context.Background(), mustSpec(t), runner.Options{
		Workers: 4, Telemetry: reg, TraceLog: tl, Manifest: man, ManifestLabel: label,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.FirstErr(); err != nil {
		t.Fatal(err)
	}
	ref := collect(t, reg, tl, man, sw)

	for _, workers := range []int{1, 3} {
		got := runFabric(t, label, workers)
		for _, cmp := range []struct {
			name     string
			got, ref []byte
		}{
			{"metrics", got.metrics, ref.metrics},
			{"trace", got.trace, ref.trace},
			{"manifest", got.manifest, ref.manifest},
			{"results", got.results, ref.results},
		} {
			if !bytes.Equal(cmp.got, cmp.ref) {
				t.Errorf("%d workers: %s differs from single-process run\nfabric: %.400s\nref:    %.400s",
					workers, cmp.name, cmp.got, cmp.ref)
			}
		}
	}
}

// TestWorkerSpecMismatchRefused: a worker whose local expansion hashes
// differently (different seed here — a drifted binary in production)
// must be refused before it simulates anything.
func TestWorkerSpecMismatchRefused(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{
		Spec: mustSpec(t), SpecName: "grid", Params: gridParams,
		Label: "mismatch", Git: "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// A registry whose "grid" builder ignores the wire params' seed.
	specs := NewSpecRegistry()
	specs.Register("grid", func(params map[string]string) (runner.Spec, error) {
		p := map[string]string{"seed": "43", "max_s": params["max_s"]}
		return gridBuilder(p)
	})
	wk := NewWorker(WorkerConfig{
		URL: "http://" + coord.Addr, ID: "drifted", Specs: specs, Git: "test",
		Connect: runner.RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := wk.Run(ctx); !errorsIsSpecMismatch(err) {
		t.Fatalf("drifted worker joined: %v", err)
	}
	// A worker from a different build is refused too.
	wk2 := NewWorker(WorkerConfig{
		URL: "http://" + coord.Addr, ID: "otherbuild", Specs: testSpecs(t), Git: "other",
		Connect: runner.RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
	})
	if _, err := wk2.Run(ctx); !errorsIsSpecMismatch(err) {
		t.Fatalf("mismatched build joined: %v", err)
	}
}

func errorsIsSpecMismatch(err error) bool {
	return errors.Is(err, ErrSpecMismatch)
}

// TestLeaseExpiryQuarantine drives the poisoned-unit path with raw
// protocol calls: two distinct workers lease the single unit and
// vanish; their leases expire, the unit quarantines, the sweep
// completes, and every job reports ErrUnitQuarantined.
func TestLeaseExpiryQuarantine(t *testing.T) {
	reg := telemetry.NewRegistry()
	coord, err := NewCoordinator(CoordinatorConfig{
		Spec: mustSpec(t), SpecName: "grid", Params: gridParams,
		Label:           "quarantine",
		UnitSize:        1000, // one unit holds the whole sweep
		LeaseTTL:        60 * time.Millisecond,
		QuarantineAfter: 2,
		Reclaim:         runner.RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
		Telemetry:       reg,
		Git:             "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	lease := func(worker string) LeaseReply {
		t.Helper()
		body, _ := json.Marshal(LeaseRequest{Worker: worker, SweepFingerprint: coord.SweepFingerprint()})
		resp, err := http.Post("http://"+coord.Addr+"/lease", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rep LeaseReply
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	// Worker "a" takes the unit and dies.
	deadline := time.Now().Add(10 * time.Second)
	if rep := lease("a"); rep.Lease == 0 {
		t.Fatalf("no lease granted: %+v", rep)
	}
	// Worker "b" polls until the reclaimed unit is re-leased, then dies too.
	for {
		rep := lease("b")
		if rep.Lease != 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("unit never reclaimed: %+v", coord.Snapshot())
		}
		time.Sleep(10 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := coord.Wait(ctx); err != nil {
		t.Fatalf("sweep never quarantined: %v (%+v)", err, coord.Snapshot())
	}
	p := coord.Snapshot()
	if p.UnitsQuarantined != 1 || !p.Done {
		t.Fatalf("progress = %+v, want 1 quarantined unit, done", p)
	}
	sw, err := coord.Stitch()
	if err != nil {
		t.Fatal(err)
	}
	for i := range sw.Jobs {
		if !errors.Is(sw.Jobs[i].Err, ErrUnitQuarantined) {
			t.Fatalf("job %d err = %v, want ErrUnitQuarantined", i, sw.Jobs[i].Err)
		}
	}
	if got := reg.Counter("fabric_units_quarantined_total").Value(); got != 1 {
		t.Errorf("fabric_units_quarantined_total = %v, want 1", got)
	}
	// A third worker asking for work is told the sweep is done.
	if rep := lease("c"); !rep.Done {
		t.Errorf("post-quarantine lease = %+v, want Done", rep)
	}
}

// TestCacheEndpointSharesResults: a coordinator with a shared cache
// serves every collected result over /cache, and a joining worker's
// primed cache turns repeat fingerprints into hits.
func TestCacheEndpointSharesResults(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates real cycles")
	}
	cache := runner.NewCache()
	reg := telemetry.NewRegistry()
	coord, err := NewCoordinator(CoordinatorConfig{
		Spec: mustSpec(t), SpecName: "grid", Params: gridParams,
		Label: "cache", UnitSize: 2, LeaseTTL: 2 * time.Second,
		Telemetry: reg, Cache: cache, Git: "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	wk := NewWorker(WorkerConfig{
		URL: "http://" + coord.Addr, ID: "w0", Specs: testSpecs(t), Workers: 2, Git: "test",
		Connect: runner.RetryPolicy{BaseBackoff: 20 * time.Millisecond, MaxBackoff: 200 * time.Millisecond},
	})
	if _, err := wk.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if err := coord.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, entries := cache.Stats(); entries != 8 {
		t.Fatalf("coordinator cache holds %d entries, want 8", entries)
	}
	// A late worker priming from /cache inherits all eight results.
	late := runner.NewCache()
	wk2 := NewWorker(WorkerConfig{
		URL: "http://" + coord.Addr, ID: "w1", Specs: testSpecs(t), Cache: late, Git: "test",
		Connect: runner.RetryPolicy{BaseBackoff: 20 * time.Millisecond, MaxBackoff: 200 * time.Millisecond},
	})
	if _, err := wk2.Run(ctx); err != nil { // sweep already done; join still primes
		t.Fatal(err)
	}
	if _, _, entries := late.Stats(); entries != 8 {
		t.Fatalf("late worker cache holds %d entries, want 8", entries)
	}
}
