package fabric

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"evclimate/internal/netchaos"
	"evclimate/internal/runner"
	"evclimate/internal/telemetry"
)

// chaosScenario is one cell of the network-chaos matrix: a seeded fault
// schedule per worker, the transport knobs under test, and what must
// have happened for the scenario to count as exercised.
type chaosScenario struct {
	name string
	// schedules faults worker w's transport (len = worker count).
	schedules []netchaos.Schedule
	// spill runs the coordinator on the disk-spilling record store.
	spill bool
	// callTimeout overrides the workers' per-request deadline.
	callTimeout time.Duration
	// wantFaults must each have fired on at least one worker.
	wantFaults []netchaos.Fault
	// wantCounter, when set, is a coordinator counter that must be > 0.
	wantCounter string
}

// runChaosFabric executes the grid sweep with per-worker fault
// transports and returns the stitched artifacts plus the coordinator's
// registry for counter assertions.
func runChaosFabric(t *testing.T, label string, sc *chaosScenario) (artifacts, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	tl := &telemetry.TraceLog{}
	man := telemetry.NewManifest("evbench")
	cfg := CoordinatorConfig{
		Spec:      mustSpec(t),
		SpecName:  "grid",
		Params:    gridParams,
		Label:     label,
		UnitSize:  2,
		LeaseTTL:  2 * time.Second,
		Reclaim:   runner.RetryPolicy{BaseBackoff: 20 * time.Millisecond, MaxBackoff: 200 * time.Millisecond},
		Telemetry: reg,
		TraceLog:  tl,
		Manifest:  man,
		Git:       "test",
	}
	if sc.spill {
		cfg.Spill = &SpillConfig{Dir: t.TempDir(), SegmentBytes: 8 << 10}
	}
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	specs := testSpecs(t)
	n := len(sc.schedules)
	transports := make([]*netchaos.Transport, n)
	errc := make(chan error, n)
	for w := 0; w < n; w++ {
		transports[w] = netchaos.NewTransport(sc.schedules[w], nil)
		go func(w int) {
			wk := NewWorker(WorkerConfig{
				URL:         "http://" + coord.Addr,
				ID:          fmt.Sprintf("w%d", w),
				Specs:       specs,
				Workers:     2,
				Transport:   transports[w],
				CallTimeout: sc.callTimeout,
				Connect:     runner.RetryPolicy{BaseBackoff: 20 * time.Millisecond, MaxBackoff: 200 * time.Millisecond},
				Git:         "test",
			})
			_, err := wk.Run(ctx)
			errc <- err
		}(w)
	}
	if err := coord.Wait(ctx); err != nil {
		t.Fatalf("coordinator wait: %v (progress %+v)", err, coord.Snapshot())
	}
	for w := 0; w < n; w++ {
		if err := <-errc; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	for _, want := range sc.wantFaults {
		fired := 0
		for _, tr := range transports {
			fired += tr.Injected()[want]
		}
		if fired == 0 {
			t.Errorf("scenario %s: fault %v never fired — the pathology was not exercised", sc.name, want)
		}
	}
	if sc.wantCounter != "" {
		if got := reg.Counter(sc.wantCounter).Value(); got <= 0 {
			t.Errorf("scenario %s: %s = %v, want > 0", sc.name, sc.wantCounter, got)
		}
	}
	sw, err := coord.Stitch()
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.FirstErr(); err != nil {
		t.Fatal(err)
	}
	return collect(t, reg, tl, man, sw), reg
}

// TestNetChaosMatrix drives the fabric through seeded network-fault
// schedules — flaky links, torn completion responses, corrupted
// payloads, duplicated deliveries, and a black-holed partition — and
// requires the stitched metrics, trace, manifest, and per-job results
// to stay byte-identical to a single-process run of the same spec.
// Every schedule is deterministic (netchaos's splitmix64 draws), so a
// failing cell replays exactly.
func TestNetChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates real cycles")
	}
	label := "fabric-netchaos"
	reg := telemetry.NewRegistry()
	tl := &telemetry.TraceLog{}
	man := telemetry.NewManifest("evbench")
	sw, err := runner.Run(context.Background(), mustSpec(t), runner.Options{
		Workers: 4, Telemetry: reg, TraceLog: tl, Manifest: man, ManifestLabel: label,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.FirstErr(); err != nil {
		t.Fatal(err)
	}
	ref := collect(t, reg, tl, man, sw)

	scenarios := []chaosScenario{
		{
			// A flaky link: random latency on every path, plus a
			// guaranteed connection reset on the first lease call. The
			// spill store runs underneath to prove fault recovery
			// composes with it.
			name:  "flaky-link",
			spill: true,
			schedules: []netchaos.Schedule{
				{Seed: 101, Rules: []netchaos.Rule{
					{Fault: netchaos.Reset, Path: "/lease", Rate: 1, From: 0, To: 1},
					{Fault: netchaos.Latency, Rate: 0.4, Delay: 25 * time.Millisecond},
				}},
				{Seed: 102, Rules: []netchaos.Rule{
					{Fault: netchaos.Latency, Rate: 0.4, Delay: 25 * time.Millisecond},
				}},
			},
			wantFaults: []netchaos.Fault{netchaos.Reset, netchaos.Latency},
		},
		{
			// A torn /complete response: the coordinator processed the
			// records but the worker never learns; the retried delivery
			// must replay from the idempotency cache, not re-count.
			name: "torn-complete-response",
			schedules: []netchaos.Schedule{
				{Seed: 201, Rules: []netchaos.Rule{
					{Fault: netchaos.TornBody, Path: "/complete", Rate: 1, From: 0, To: 1, KeepBytes: 3},
				}},
				{Seed: 202},
			},
			wantFaults:  []netchaos.Fault{netchaos.TornBody},
			wantCounter: "fabric_complete_replayed_total",
		},
		{
			// A corrupted /complete payload: one flipped byte in transit.
			// The checksum pass rejects it 422 and the intact retry lands.
			name: "corrupt-complete-payload",
			schedules: []netchaos.Schedule{
				{Seed: 301, Rules: []netchaos.Rule{
					{Fault: netchaos.CorruptRequest, Path: "/complete", Rate: 1, From: 0, To: 1},
				}},
				{Seed: 302},
			},
			wantFaults:  []netchaos.Fault{netchaos.CorruptRequest},
			wantCounter: "fabric_complete_corrupt_total",
		},
		{
			// Every completion delivered twice, back to back, from both
			// workers: deterministic request ids make the second copy a
			// replay, and first-wins keeps stitching deterministic.
			name: "duplicate-deliveries",
			schedules: []netchaos.Schedule{
				{Seed: 401, Rules: []netchaos.Rule{
					{Fault: netchaos.Duplicate, Path: "/complete", Rate: 1},
				}},
				{Seed: 402, Rules: []netchaos.Rule{
					{Fault: netchaos.Duplicate, Path: "/complete", Rate: 1},
				}},
			},
			wantFaults:  []netchaos.Fault{netchaos.Duplicate},
			wantCounter: "fabric_complete_replayed_total",
		},
		{
			// A transient partition around worker w1: heartbeats and its
			// first completion are black-holed. Per-call deadlines turn
			// the holes into bounded timeouts and the retries land; the
			// spill store again runs underneath.
			name:        "partition-window",
			spill:       true,
			callTimeout: 300 * time.Millisecond,
			schedules: []netchaos.Schedule{
				{Seed: 501},
				{Seed: 502, Rules: []netchaos.Rule{
					{Fault: netchaos.BlackHole, Path: "/heartbeat", Rate: 1, From: 0, To: 2},
					{Fault: netchaos.BlackHole, Path: "/complete", Rate: 1, From: 0, To: 1},
				}},
			},
			wantFaults: []netchaos.Fault{netchaos.BlackHole},
		},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			got, _ := runChaosFabric(t, label, &sc)
			for _, cmp := range []struct {
				name     string
				got, ref []byte
			}{
				{"metrics", got.metrics, ref.metrics},
				{"trace", got.trace, ref.trace},
				{"manifest", got.manifest, ref.manifest},
				{"results", got.results, ref.results},
			} {
				if !bytes.Equal(cmp.got, cmp.ref) {
					t.Errorf("%s differs from single-process run\nchaos: %.400s\nref:   %.400s",
						cmp.name, cmp.got, cmp.ref)
				}
			}
		})
	}
}
