package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"evclimate/internal/runner"
	"evclimate/internal/telemetry"
)

// Defaults for the lease machinery.
const (
	// DefaultUnitSize is the target number of jobs per leased unit.
	DefaultUnitSize = 8
	// DefaultLeaseTTL is the heartbeat deadline before a lease expires.
	DefaultLeaseTTL = 10 * time.Second
	// DefaultQuarantineAfter is the number of distinct workers a unit
	// must fail on before it is quarantined.
	DefaultQuarantineAfter = 3
	// DefaultFlapLimit is how many expired leases one worker may
	// accumulate before the flap breaker quarantines it.
	DefaultFlapLimit = 8
	// DefaultMaxCompleteBytes caps a /complete request body — large
	// enough for a full-fidelity unit (records with traces and metric
	// snapshots), small enough that a corrupt length or a hostile
	// client cannot OOM the coordinator.
	DefaultMaxCompleteBytes = 256 << 20
	// maxControlBytes caps the small control-plane bodies (/lease,
	// /heartbeat) — kilobytes of JSON at most.
	maxControlBytes = 1 << 20
	// leasePollWait is the wait hint handed to workers when no unit is
	// leasable right now.
	leasePollWait = 250 * time.Millisecond
)

// CoordinatorConfig configures one sweep's coordinator.
type CoordinatorConfig struct {
	// Spec is the sweep to distribute; the coordinator expands it once.
	Spec runner.Spec
	// SpecName and Params are the wire identity workers rebuild the spec
	// from (via their local builder registry).
	SpecName string
	Params   map[string]string
	// Label names the sweep in the manifest and the journal file.
	Label string
	// UnitSize is the target jobs per leased unit (0 = DefaultUnitSize).
	UnitSize int
	// LeaseTTL is the heartbeat deadline (0 = DefaultLeaseTTL).
	LeaseTTL time.Duration
	// QuarantineAfter quarantines a unit once its lease has been lost on
	// this many distinct workers (0 = DefaultQuarantineAfter).
	QuarantineAfter int
	// FlapLimit is the per-worker flap breaker: a worker whose leases
	// expired mid-flight this many times is quarantined — refused
	// further leases — instead of being allowed to keep churning units
	// (0 = DefaultFlapLimit, negative = breaker off).
	FlapLimit int
	// MaxCompleteBytes caps a /complete request body; oversize bodies
	// are rejected with a typed 413 workers treat as terminal
	// (0 = DefaultMaxCompleteBytes).
	MaxCompleteBytes int64
	// Spill, when non-nil, stores completed records in rotating disk
	// segments with only a compact index in memory, bounding
	// coordinator RSS on cluster-scale sweeps. Stitching streams the
	// records back in expansion order.
	Spill *SpillConfig
	// Reclaim paces re-leasing of an expired unit: attempt n waits
	// Reclaim.Delay(unitSeed, n) — the exact backoff policy job retry
	// uses, so the two paths cannot drift.
	Reclaim runner.RetryPolicy
	// Journal, when non-nil, journals every lease event and completion
	// through the runner's append-only journal, making a coordinator
	// crash resumable (open with Resume to pick a journal back up).
	Journal *runner.JournalConfig
	// Telemetry, when non-nil, carries the fabric counters live and
	// receives every job's merged metric contribution at Stitch.
	Telemetry *telemetry.Registry
	// TraceLog, when non-nil, receives every job's step spans at Stitch,
	// in expansion order; workers are asked to collect spans.
	TraceLog *telemetry.TraceLog
	// TraceSteps caps each job's span ring on the workers.
	TraceSteps int
	// Manifest, when non-nil, records the stitched run and any journal
	// resume lineage.
	Manifest *telemetry.Manifest
	// Cache, when non-nil, is the content-addressed shared result cache:
	// served to joining workers over /cache, fed by every successful
	// completion, so results deduplicate by scenario fingerprint across
	// the whole fleet.
	Cache *runner.Cache
	// Git overrides the build stamp (tests pin it; "" = git describe).
	Git string
}

// completionKey identifies one logical completion across duplicated
// deliveries: the unit, the lease it ran under, and the worker-derived
// request id.
type completionKey struct {
	unit  int
	lease uint64
	reqID uint64
}

// unit lease states.
const (
	unitPending = iota
	unitLeased
	unitDone
	unitQuarantined
)

// unit is one leased shard of the expansion.
type unit struct {
	id   int
	jobs []int // expansion indexes, ascending
	// seed derives the unit's reclaim-backoff jitter stream.
	seed int64

	state   int
	lease   uint64
	worker  string
	expires time.Time
	// notBefore delays re-leasing after an expiry (reclaim backoff).
	notBefore time.Time
	// failedOn is the set of distinct workers that lost this unit's
	// lease; reaching QuarantineAfter quarantines the unit.
	failedOn map[string]bool
}

// Coordinator shards one expanded sweep into leased units and serves
// them to workers until every unit is done or quarantined.
type Coordinator struct {
	cfg  CoordinatorConfig
	jobs []runner.Job
	fps  []string // per-job fingerprints, hex, index-aligned
	fp   string   // sweep fingerprint, hex
	git  string

	mu       sync.Mutex
	units    []*unit
	byLease  map[uint64]*unit
	store    recordStore
	workers  map[string]time.Time // worker id -> last seen
	flaps    map[string]int       // worker id -> mid-flight lease losses
	benched  map[string]bool      // workers the flap breaker quarantined
	seen     map[completionKey]*CompleteReply
	leaseSeq uint64
	done     chan struct{}
	resumed  int // jobs replayed from the journal at open

	jnl *runner.Journal

	// fabric_* instruments (excluded from deterministic snapshots).
	cGranted, cExpired, cReclaimed, cQuarantined *telemetry.Counter
	cRecords, cDuplicates                        *telemetry.Counter
	cCorrupt, cReplayed, cWorkersQuarantined     *telemetry.Counter
	gWorkersLive, gUnitsDone, gJobsDone          *telemetry.Gauge

	srv *http.Server
	ln  net.Listener
	// Addr is the bound listen address once Serve returns.
	Addr string

	reapStop chan struct{}
}

// NewCoordinator expands the spec, shards it into units, and (when
// configured) opens or resumes the journal, replaying completed jobs.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.UnitSize <= 0 {
		cfg.UnitSize = DefaultUnitSize
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.QuarantineAfter <= 0 {
		cfg.QuarantineAfter = DefaultQuarantineAfter
	}
	if cfg.FlapLimit == 0 {
		cfg.FlapLimit = DefaultFlapLimit
	}
	if cfg.MaxCompleteBytes <= 0 {
		cfg.MaxCompleteBytes = DefaultMaxCompleteBytes
	}
	jobs, err := runner.Expand(cfg.Spec)
	if err != nil {
		return nil, err
	}
	var store recordStore = newMemStore()
	if cfg.Spill != nil {
		if store, err = newSpillStore(*cfg.Spill); err != nil {
			return nil, err
		}
	}
	c := &Coordinator{
		cfg:      cfg,
		jobs:     jobs,
		fps:      make([]string, len(jobs)),
		fp:       telemetry.FormatFingerprint(runner.SweepFingerprint(jobs)),
		git:      cfg.Git,
		byLease:  make(map[uint64]*unit),
		store:    store,
		workers:  make(map[string]time.Time),
		flaps:    make(map[string]int),
		benched:  make(map[string]bool),
		seen:     make(map[completionKey]*CompleteReply),
		done:     make(chan struct{}),
		reapStop: make(chan struct{}),
	}
	if c.git == "" {
		c.git = telemetry.GitDescribe("")
	}
	for i := range jobs {
		c.fps[i] = telemetry.FormatFingerprint(jobs[i].Fingerprint())
	}
	for id, idxs := range shardUnits(jobs, cfg.UnitSize) {
		c.units = append(c.units, &unit{
			id: id, jobs: idxs, seed: jobs[idxs[0]].Seed,
			failedOn: make(map[string]bool),
		})
	}
	c.resolveCounters()

	if cfg.Journal != nil {
		jc := *cfg.Journal
		if jc.Git == "" {
			jc.Git = c.git
		}
		jnl, err := runner.OpenJournal(&jc, cfg.Label, jobs)
		if err != nil {
			return nil, err
		}
		c.jnl = jnl
		// Replay completions; failed records are re-run, mirroring the
		// pool's resume semantics.
		for i := range jobs {
			rec := jnl.Replayed(i)
			if rec == nil || rec.Err != "" {
				continue
			}
			if rec.Fingerprint != c.fps[i] {
				jnl.Close()
				return nil, fmt.Errorf("%w: journal record for job %d has fingerprint %s, this expansion has %s",
					runner.ErrJournalMismatch, i, rec.Fingerprint, c.fps[i])
			}
			if err := c.store.Put(i, rec); err != nil {
				jnl.Close()
				return nil, err
			}
			c.resumed++
			c.publishCache(&jobs[i], rec)
		}
		for _, u := range c.units {
			if c.unitComplete(u) {
				u.state = unitDone
			}
		}
		if c.resumed > 0 && cfg.Manifest != nil {
			cfg.Manifest.AddResume(telemetry.ResumeInfo{
				Journal:          jnl.Path(),
				SweepFingerprint: jnl.Header().SweepFingerprint,
				ReplayedJobs:     c.resumed,
				Git:              jnl.Header().Git,
			})
		}
	}
	c.refreshGauges()
	c.checkDone()
	return c, nil
}

// resolveCounters registers the fabric instruments once, up front. All
// fabric_* series are topology-dependent bookkeeping; the deterministic
// filter excludes them from manifests.
func (c *Coordinator) resolveCounters() {
	reg := c.cfg.Telemetry
	if reg == nil {
		return
	}
	c.cGranted = reg.Counter("fabric_leases_granted_total")
	c.cExpired = reg.Counter("fabric_leases_expired_total")
	c.cReclaimed = reg.Counter("fabric_leases_reclaimed_total")
	c.cQuarantined = reg.Counter("fabric_units_quarantined_total")
	c.cRecords = reg.Counter("fabric_records_total")
	c.cDuplicates = reg.Counter("fabric_records_duplicate_total")
	c.cCorrupt = reg.Counter("fabric_complete_corrupt_total")
	c.cReplayed = reg.Counter("fabric_complete_replayed_total")
	c.cWorkersQuarantined = reg.Counter("fabric_workers_quarantined_total")
	c.gWorkersLive = reg.Gauge("fabric_workers_live")
	c.gUnitsDone = reg.Gauge("fabric_units_done")
	c.gJobsDone = reg.Gauge("fabric_jobs_completed")
}

// unitComplete reports whether every job of a unit has a record
// (caller holds mu, or is still constructing).
func (c *Coordinator) unitComplete(u *unit) bool {
	for _, i := range u.jobs {
		if !c.store.Has(i) {
			return false
		}
	}
	return true
}

// publishCache shares a successful, non-escalated record's result under
// its scenario fingerprint (caller holds mu, or is still constructing).
func (c *Coordinator) publishCache(job *runner.Job, rec *runner.JournalRecord) {
	if c.cfg.Cache == nil || rec.Err != "" || rec.EscalatedTo != "" || rec.Result == nil {
		return
	}
	c.cfg.Cache.Put(job.Fingerprint(), rec.Result, time.Duration(rec.ElapsedNs))
}

// refreshGauges updates the progress gauges (caller holds mu, or is
// still constructing).
func (c *Coordinator) refreshGauges() {
	if c.cfg.Telemetry == nil {
		return
	}
	doneUnits := 0
	for _, u := range c.units {
		if u.state == unitDone {
			doneUnits++
		}
	}
	c.gUnitsDone.Set(float64(doneUnits))
	c.gJobsDone.Set(float64(c.store.Len()))
	live := 0
	cut := time.Now().Add(-2 * c.cfg.LeaseTTL)
	for _, seen := range c.workers {
		if seen.After(cut) {
			live++
		}
	}
	c.gWorkersLive.Set(float64(live))
}

// checkDone closes the done channel once every unit is done or
// quarantined (caller holds mu, or is still constructing).
func (c *Coordinator) checkDone() {
	for _, u := range c.units {
		if u.state != unitDone && u.state != unitQuarantined {
			return
		}
	}
	select {
	case <-c.done:
	default:
		close(c.done)
	}
}

// reap expires overdue leases: the unit returns to pending behind a
// seeded-jitter reclaim backoff, the loss is journaled, and a unit that
// has now failed on QuarantineAfter distinct workers is quarantined
// (caller holds mu).
func (c *Coordinator) reap(now time.Time) {
	for _, u := range c.units {
		if u.state != unitLeased || now.Before(u.expires) {
			continue
		}
		delete(c.byLease, u.lease)
		u.failedOn[u.worker] = true
		c.cExpired.Inc()
		c.journalLease("expire", u)
		// Flap breaker: a worker that keeps losing leases mid-flight (a
		// flapping link, a host that wedges under load) is benched rather
		// than allowed to keep churning units toward unit quarantine.
		if c.cfg.FlapLimit > 0 && !c.benched[u.worker] {
			c.flaps[u.worker]++
			if c.flaps[u.worker] >= c.cfg.FlapLimit {
				c.benched[u.worker] = true
				c.cWorkersQuarantined.Inc()
				delete(c.workers, u.worker)
			}
		}
		if len(u.failedOn) >= c.cfg.QuarantineAfter {
			u.state = unitQuarantined
			c.cQuarantined.Inc()
			c.journalLease("quarantine", u)
			continue
		}
		u.state = unitPending
		u.notBefore = now.Add(c.cfg.Reclaim.Delay(u.seed, len(u.failedOn)))
		c.cReclaimed.Inc()
	}
	c.refreshGauges()
	c.checkDone()
}

// journalLease appends one lease event (best-effort: lease records are
// audit data, not correctness data).
func (c *Coordinator) journalLease(event string, u *unit) {
	if c.jnl == nil {
		return
	}
	c.jnl.AppendLease(&runner.LeaseRecord{Event: event, Unit: u.id, Worker: u.worker, Lease: u.lease})
}

// Serve binds addr (e.g. "127.0.0.1:0") and starts the fabric protocol
// endpoints plus a background lease reaper. The bound address is in
// c.Addr.
func (c *Coordinator) Serve(addr string) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/spec", c.handleSpec)
	mux.HandleFunc("/lease", c.handleLease)
	mux.HandleFunc("/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/complete", c.handleComplete)
	mux.HandleFunc("/snapshot", c.handleSnapshot)
	mux.HandleFunc("/cache", c.handleCache)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	c.ln = ln
	c.Addr = ln.Addr().String()
	// Server-side deadlines derived from the lease TTL: a peer that
	// stalls mid-request (black-holed link, wedged client) is cut loose
	// well before its lease machinery would notice, so coordinator
	// connections cannot accumulate behind dead transports.
	ttl := c.cfg.LeaseTTL
	c.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: ttl,
		ReadTimeout:       3 * ttl,
		WriteTimeout:      3 * ttl,
		IdleTimeout:       6 * ttl,
	}
	go c.srv.Serve(ln)
	go c.reapLoop()
	return nil
}

// reapLoop expires leases even while no requests arrive.
func (c *Coordinator) reapLoop() {
	t := time.NewTicker(c.cfg.LeaseTTL / 4)
	defer t.Stop()
	for {
		select {
		case <-c.reapStop:
			return
		case now := <-t.C:
			c.mu.Lock()
			c.reap(now)
			c.mu.Unlock()
		}
	}
}

// Wait blocks until the sweep completes (every unit done or
// quarantined) or the context cancels.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops the listener, the reaper, and the journal. Idempotent
// enough for defer-after-Serve-failure (nil fields are skipped).
func (c *Coordinator) Close() error {
	var errs []error
	if c.srv != nil {
		errs = append(errs, c.srv.Close())
		c.srv = nil
	}
	select {
	case <-c.reapStop:
	default:
		close(c.reapStop)
	}
	if c.jnl != nil {
		errs = append(errs, c.jnl.Close())
		c.jnl = nil
	}
	if c.store != nil {
		// The store stays set (Snapshot after Close must not panic);
		// spill Close is idempotent and releases the segments.
		errs = append(errs, c.store.Close())
	}
	return errors.Join(errs...)
}

// Drain blocks until every recently-seen worker has been told the sweep
// is done (workers exit on that reply) or the timeout passes. Closing
// the coordinator immediately after Wait would strand the other workers
// — the ones that didn't deliver the final completion — retrying a dead
// port through their whole connect budget before giving up with an
// error; draining first lets them all exit promptly and cleanly.
func (c *Coordinator) Drain(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		live := c.progressLocked().WorkersLive
		c.mu.Unlock()
		if live == 0 || !time.Now().Before(deadline) {
			return
		}
		time.Sleep(leasePollWait / 2)
	}
}

// Resumed returns the number of jobs replayed from the journal when the
// coordinator opened.
func (c *Coordinator) Resumed() int { return c.resumed }

// SweepFingerprint returns the expansion's identity in hex.
func (c *Coordinator) SweepFingerprint() string { return c.fp }

// Snapshot returns the live progress (also served at /snapshot).
func (c *Coordinator) Snapshot() Progress {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.progressLocked()
}

func (c *Coordinator) progressLocked() Progress {
	p := Progress{
		SweepFingerprint:   c.fp,
		Jobs:               len(c.jobs),
		Units:              len(c.units),
		Completed:          c.store.Len(),
		Failed:             c.store.Failed(),
		WorkersQuarantined: len(c.benched),
	}
	for _, u := range c.units {
		switch u.state {
		case unitDone:
			p.UnitsDone++
		case unitLeased:
			p.UnitsLeased++
		case unitQuarantined:
			p.UnitsQuarantined++
		}
	}
	cut := time.Now().Add(-2 * c.cfg.LeaseTTL)
	for _, seen := range c.workers {
		if seen.After(cut) {
			p.WorkersLive++
		}
	}
	select {
	case <-c.done:
		p.Done = true
	default:
	}
	return p
}

// StitchEach streams the stitched results in expansion order, one
// record at a time: each job's record is loaded from the store (a
// spill-backed store reads exactly one record into memory per call),
// rebuilt via the journal replay path, its metric snapshot merged into
// the registry, its step spans appended to the trace log, and the
// resulting JobResult handed to fn; the run is recorded in the manifest
// at the end. Artifacts are byte-identical to a single-process run of
// the same spec, whatever topology executed it. Jobs of quarantined
// units carry ErrUnitQuarantined. fn must not retain the JobResult
// pointer across calls.
func (c *Coordinator) StitchEach(fn func(*runner.JobResult) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.jobs {
		rec, err := c.store.Get(i)
		if err != nil {
			return err
		}
		var jr runner.JobResult
		switch {
		case rec == nil:
			jr = runner.JobResult{Job: c.jobs[i],
				Err: fmt.Errorf("job %d: %w", i, ErrUnitQuarantined)}
			if err := fn(&jr); err != nil {
				return err
			}
			continue
		case rec.Err != "":
			jr = runner.JobResult{
				Job:      c.jobs[i],
				Err:      errors.New(rec.Err),
				Elapsed:  time.Duration(rec.ElapsedNs),
				Attempts: rec.Attempts,
				Replayed: true,
			}
		default:
			if jr, err = runner.ReplayRecord(&c.jobs[i], rec); err != nil {
				return err
			}
		}
		if c.cfg.Telemetry != nil {
			if err := c.cfg.Telemetry.Merge(rec.Metrics); err != nil {
				return fmt.Errorf("fabric: stitch job %d: %w", i, err)
			}
		}
		if c.cfg.TraceLog != nil && len(rec.Spans) > 0 {
			spans := make([]telemetry.StepSpan, len(rec.Spans))
			copy(spans, rec.Spans)
			for k := range spans {
				spans[k].Job = i
			}
			c.cfg.TraceLog.Append(spans...)
		}
		if err := fn(&jr); err != nil {
			return err
		}
	}
	if c.cfg.Manifest != nil {
		c.cfg.Manifest.AddRun(runner.ManifestRunInfo(c.cfg.Label, c.cfg.Spec.BaseSeed, c.jobs))
	}
	return nil
}

// Stitch folds the collected records into a Sweep via StitchEach —
// convenient when the caller wants the whole result set in memory
// anyway. Pipelines that only reduce over results should use StitchEach
// directly and keep the coordinator's O(index) memory bound.
func (c *Coordinator) Stitch() (*runner.Sweep, error) {
	out := make([]runner.JobResult, 0, len(c.jobs))
	if err := c.StitchEach(func(jr *runner.JobResult) error {
		out = append(out, *jr)
		return nil
	}); err != nil {
		return nil, err
	}
	sw := &runner.Sweep{Spec: c.cfg.Spec, Jobs: out}
	if c.cfg.Telemetry != nil {
		sw.Metrics = c.cfg.Telemetry.Snapshot(nil)
	}
	return sw, nil
}

// --- HTTP handlers ---

// writeJSON writes v as the response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// httpError writes a JSON error with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (c *Coordinator) handleSpec(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, SpecDesc{
		Name:             c.cfg.SpecName,
		Params:           c.cfg.Params,
		SweepFingerprint: c.fp,
		Jobs:             len(c.jobs),
		Units:            len(c.units),
		LeaseTTLMs:       c.cfg.LeaseTTL.Milliseconds(),
		Trace:            c.cfg.TraceLog != nil,
		TraceSteps:       c.cfg.TraceSteps,
		Cache:            c.cfg.Cache != nil,
		Git:              c.git,
		GoVersion:        runtime.Version(),
	})
}

// decodeBody decodes a capped JSON request body into v, distinguishing
// an over-cap body (ErrBodyTooLarge, 413, terminal for the worker) from
// bytes that did not parse (ErrCorruptPayload, 422, retryable — the
// next delivery may arrive intact). corrupt reports which rejection was
// written when ok is false.
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) (ok, corrupt bool) {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "%v: limit %d bytes", ErrBodyTooLarge, tooBig.Limit)
			return false, false
		}
		httpError(w, http.StatusUnprocessableEntity, "%v: %v", ErrCorruptPayload, err)
		return false, true
	}
	return true, false
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if ok, _ := decodeBody(w, r, maxControlBytes, &req); !ok {
		return
	}
	if req.SweepFingerprint != c.fp {
		httpError(w, http.StatusConflict,
			"fabric: worker expansion %s does not match sweep %s (mismatched binary, flags, or seed)",
			req.SweepFingerprint, c.fp)
		return
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.benched[req.Worker] {
		httpError(w, http.StatusForbidden, "%v: worker %s", ErrWorkerQuarantined, req.Worker)
		return
	}
	c.workers[req.Worker] = now
	c.reap(now)
	select {
	case <-c.done:
		// The worker exits on this reply; drop it from the live set so
		// Drain knows it has been told.
		delete(c.workers, req.Worker)
		writeJSON(w, LeaseReply{Done: true})
		return
	default:
	}
	var pick *unit
	for _, u := range c.units {
		if u.state == unitPending && !now.Before(u.notBefore) {
			pick = u
			break
		}
	}
	if pick == nil {
		writeJSON(w, LeaseReply{WaitMs: leasePollWait.Milliseconds()})
		return
	}
	c.leaseSeq++
	pick.state = unitLeased
	pick.lease = c.leaseSeq
	pick.worker = req.Worker
	pick.expires = now.Add(c.cfg.LeaseTTL)
	c.byLease[pick.lease] = pick
	c.cGranted.Inc()
	c.journalLease("grant", pick)
	fps := make([]string, len(pick.jobs))
	for i, idx := range pick.jobs {
		fps[i] = c.fps[idx]
	}
	writeJSON(w, LeaseReply{
		Lease:        pick.lease,
		Unit:         pick.id,
		Jobs:         pick.jobs,
		Fingerprints: fps,
		TTLMs:        c.cfg.LeaseTTL.Milliseconds(),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if ok, _ := decodeBody(w, r, maxControlBytes, &req); !ok {
		return
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers[req.Worker] = now
	u := c.byLease[req.Lease]
	if u == nil || u.state != unitLeased || u.worker != req.Worker {
		writeJSON(w, HeartbeatReply{OK: false})
		return
	}
	u.expires = now.Add(c.cfg.LeaseTTL)
	writeJSON(w, HeartbeatReply{OK: true, TTLMs: c.cfg.LeaseTTL.Milliseconds()})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if ok, corrupt := decodeBody(w, r, c.cfg.MaxCompleteBytes, &req); !ok {
		if corrupt {
			// A completion that does not even parse is in-transit
			// corruption, same as a checksum mismatch.
			c.cCorrupt.Inc()
		}
		return
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers[req.Worker] = now

	// Idempotency: a torn response or a duplicated delivery makes the
	// worker re-send the same logical completion (same RequestID). The
	// first processing's reply is cached and replayed verbatim — the
	// records were already accepted, so re-processing them would only
	// inflate the duplicate counters.
	key := completionKey{unit: req.Unit, lease: req.Lease, reqID: req.RequestID}
	if req.RequestID != 0 {
		if cached, ok := c.seen[key]; ok {
			rep := *cached
			rep.Replayed = true
			select {
			case <-c.done:
				rep.Done = true
				delete(c.workers, req.Worker)
			default:
			}
			c.cReplayed.Inc()
			writeJSON(w, rep)
			return
		}
	}

	// Validate everything before accepting anything: a fingerprint
	// mismatch means a drifted binary, and none of its results can be
	// trusted.
	for _, rec := range req.Records {
		if rec == nil || rec.Index < 0 || rec.Index >= len(c.jobs) {
			httpError(w, http.StatusBadRequest, "fabric: completion with out-of-range job index")
			return
		}
		if rec.Fingerprint != c.fps[rec.Index] {
			httpError(w, http.StatusConflict,
				"fabric: record for job %d has fingerprint %s, this sweep has %s (mismatched binary or spec)",
				rec.Index, rec.Fingerprint, c.fps[rec.Index])
			return
		}
	}
	// Payload checksums: recompute each record's FNV sum from what was
	// decoded and compare against what the worker computed before the
	// bytes hit the wire. A mismatch is in-transit corruption — reject
	// the whole completion as retryable; an intact re-send will land.
	if len(req.Sums) > 0 {
		if len(req.Sums) != len(req.Records) {
			c.cCorrupt.Inc()
			httpError(w, http.StatusUnprocessableEntity,
				"%v: %d checksums for %d records", ErrCorruptPayload, len(req.Sums), len(req.Records))
			return
		}
		for k, rec := range req.Records {
			sum, err := runner.ChecksumRecord(rec)
			if err != nil {
				httpError(w, http.StatusInternalServerError, "fabric: checksum record %d: %v", k, err)
				return
			}
			if sum != req.Sums[k] {
				c.cCorrupt.Inc()
				httpError(w, http.StatusUnprocessableEntity,
					"%v: record %d (job %d) sums %s on the wire, %s as sent",
					ErrCorruptPayload, k, rec.Index, sum, req.Sums[k])
				return
			}
		}
	}
	rep := CompleteReply{}
	for _, rec := range req.Records {
		if c.store.Has(rec.Index) {
			// A reassigned unit finishing twice: first completion wins,
			// so stitching stays deterministic.
			rep.Duplicates++
			c.cDuplicates.Inc()
			continue
		}
		if err := c.store.Put(rec.Index, rec); err != nil {
			httpError(w, http.StatusInternalServerError, "fabric: store record: %v", err)
			return
		}
		rep.Accepted++
		c.cRecords.Inc()
		c.publishCache(&c.jobs[rec.Index], rec)
		if c.jnl != nil {
			if err := c.jnl.Append(rec); err != nil {
				// Journal failure is fatal for crash-safety claims; back
				// the record out so a retry can land it.
				c.store.Delete(rec.Index)
				httpError(w, http.StatusInternalServerError, "fabric: journal append: %v", err)
				return
			}
		}
	}
	// Mark any units this completion finished (normally req.Unit, but a
	// restarted coordinator may have resharded state, so recheck all
	// non-done units touched by these records).
	touched := map[int]bool{}
	for _, rec := range req.Records {
		touched[rec.Index] = true
	}
	for _, u := range c.units {
		if u.state == unitDone || u.state == unitQuarantined {
			continue
		}
		hit := false
		for _, i := range u.jobs {
			if touched[i] {
				hit = true
				break
			}
		}
		if hit && c.unitComplete(u) {
			if u.state == unitLeased {
				delete(c.byLease, u.lease)
			}
			u.state = unitDone
		}
	}
	c.refreshGauges()
	c.checkDone()
	if req.RequestID != 0 {
		// Cache the outcome (Done is recomputed per delivery) so a
		// duplicated or retried delivery replays instead of re-counting.
		cached := rep
		c.seen[key] = &cached
	}
	select {
	case <-c.done:
		rep.Done = true
		// The worker exits on a Done completion reply, like on a Done
		// lease reply; drop it from the live set for Drain.
		delete(c.workers, req.Worker)
	default:
	}
	writeJSON(w, rep)
}

func (c *Coordinator) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	p := c.progressLocked()
	c.mu.Unlock()
	writeJSON(w, p)
}

// handleCache serves the shared result cache's wire form so joining
// workers inherit every collected result; without a cache it reports
// 404 and workers simply run everything.
func (c *Coordinator) handleCache(w http.ResponseWriter, r *http.Request) {
	if c.cfg.Cache == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	c.cfg.Cache.Save(w)
}
