package fabric

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"evclimate/internal/runner"
)

// DefaultSpillSegmentBytes is the spill store's segment rotation
// threshold.
const DefaultSpillSegmentBytes = 64 << 20

// SpillConfig enables the coordinator's disk-spilling record store:
// completed job records are appended to spill segments on disk and
// only a compact per-job index (segment, offset, length, failure flag)
// stays in memory, so coordinator RSS is O(index), not O(records) —
// a cluster-scale sweep streams through a coordinator whose memory no
// longer grows with the payload it collects.
type SpillConfig struct {
	// Dir holds the spill segments; created if missing. Segments are
	// scratch — the journal (when configured) is the durable record —
	// and are removed when the coordinator closes.
	Dir string
	// SegmentBytes rotates the active segment past this size
	// (0 = DefaultSpillSegmentBytes).
	SegmentBytes int64
}

// recordStore is the coordinator's completed-record collection. The
// coordinator's mutex serializes all access; implementations need no
// locking of their own.
type recordStore interface {
	// Put stores the record for a job index (overwriting any previous).
	Put(i int, rec *runner.JournalRecord) error
	// Get loads the record for a job index, or nil when absent.
	Get(i int) (*runner.JournalRecord, error)
	// Has reports whether a record exists for the index without
	// loading it.
	Has(i int) bool
	// Delete forgets the record for an index (journal-append backout).
	Delete(i int)
	// Len is the number of stored records.
	Len() int
	// Failed is the number of stored records with a non-empty Err.
	Failed() int
	// Close releases the store's resources.
	Close() error
}

// memStore holds every record in memory — the default, exactly the
// pre-spill coordinator behavior.
type memStore struct {
	m      map[int]*runner.JournalRecord
	failed int
}

func newMemStore() *memStore { return &memStore{m: make(map[int]*runner.JournalRecord)} }

func (s *memStore) Put(i int, rec *runner.JournalRecord) error {
	if old := s.m[i]; old != nil && old.Err != "" {
		s.failed--
	}
	if rec.Err != "" {
		s.failed++
	}
	s.m[i] = rec
	return nil
}

func (s *memStore) Get(i int) (*runner.JournalRecord, error) { return s.m[i], nil }
func (s *memStore) Has(i int) bool                           { return s.m[i] != nil }

func (s *memStore) Delete(i int) {
	if old := s.m[i]; old != nil {
		if old.Err != "" {
			s.failed--
		}
		delete(s.m, i)
	}
}

func (s *memStore) Len() int     { return len(s.m) }
func (s *memStore) Failed() int  { return s.failed }
func (s *memStore) Close() error { return nil }

// spillEntry locates one record inside the spill segments — the only
// per-record state the spill store keeps in memory (~32 bytes).
type spillEntry struct {
	seg    int32
	length int32
	off    int64
	failed bool
}

// spillStore appends record payloads to rotating disk segments and
// keeps a compact in-memory index. Records read back byte-identical
// (JSON round trip); random access uses ReadAt, so streaming Stitch in
// expansion order touches one record at a time.
type spillStore struct {
	dir      string
	segBytes int64

	index  map[int]spillEntry
	segs   []*os.File // every segment, open for ReadAt; last is active
	active int64      // active segment's current size
	failed int
	// spilled tallies payload bytes written, for telemetry/tests.
	spilled int64
}

// newSpillStore creates the spill directory and its first segment.
func newSpillStore(cfg SpillConfig) (*spillStore, error) {
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	segBytes := cfg.SegmentBytes
	if segBytes <= 0 {
		segBytes = DefaultSpillSegmentBytes
	}
	s := &spillStore{
		dir:      cfg.Dir,
		segBytes: segBytes,
		index:    make(map[int]spillEntry),
	}
	if err := s.rotate(); err != nil {
		return nil, err
	}
	return s, nil
}

// segPath names segment n.
func (s *spillStore) segPath(n int) string {
	return filepath.Join(s.dir, fmt.Sprintf("spill-%06d.seg", n))
}

// rotate opens the next append segment.
func (s *spillStore) rotate() error {
	f, err := os.OpenFile(s.segPath(len(s.segs)), os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	s.segs = append(s.segs, f)
	s.active = 0
	return nil
}

func (s *spillStore) Put(i int, rec *runner.JournalRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if s.active > 0 && s.active+int64(len(data)) > s.segBytes {
		if err := s.rotate(); err != nil {
			return err
		}
	}
	seg := len(s.segs) - 1
	f := s.segs[seg]
	off := s.active
	if _, err := f.WriteAt(data, off); err != nil {
		return err
	}
	s.active += int64(len(data))
	s.spilled += int64(len(data))
	if old, ok := s.index[i]; ok && old.failed {
		s.failed--
	}
	e := spillEntry{seg: int32(seg), off: off, length: int32(len(data)), failed: rec.Err != ""}
	if e.failed {
		s.failed++
	}
	s.index[i] = e
	return nil
}

func (s *spillStore) Get(i int) (*runner.JournalRecord, error) {
	e, ok := s.index[i]
	if !ok {
		return nil, nil
	}
	buf := make([]byte, e.length)
	if _, err := s.segs[e.seg].ReadAt(buf, e.off); err != nil {
		return nil, fmt.Errorf("fabric: spill read job %d: %w", i, err)
	}
	rec := new(runner.JournalRecord)
	if err := json.Unmarshal(buf, rec); err != nil {
		return nil, fmt.Errorf("fabric: spill decode job %d: %w", i, err)
	}
	return rec, nil
}

func (s *spillStore) Has(i int) bool { _, ok := s.index[i]; return ok }

func (s *spillStore) Delete(i int) {
	if e, ok := s.index[i]; ok {
		if e.failed {
			s.failed--
		}
		delete(s.index, i) // the spilled bytes become unreferenced garbage
	}
}

func (s *spillStore) Len() int    { return len(s.index) }
func (s *spillStore) Failed() int { return s.failed }

// Segments reports how many spill segments exist and the payload bytes
// written — the disk side of the O(index) memory claim.
func (s *spillStore) Segments() (n int, bytes int64) { return len(s.segs), s.spilled }

// Close closes and removes the spill segments (scratch data; the
// journal is the durable record).
func (s *spillStore) Close() error {
	var first error
	for i, f := range s.segs {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		if err := os.Remove(s.segPath(i)); err != nil && first == nil {
			first = err
		}
	}
	s.segs = nil
	return first
}
