package fabric

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"evclimate/internal/runner"
	"evclimate/internal/sim"
	"evclimate/internal/telemetry"
)

// synthRecord builds a record fat enough (~1 KiB of metrics) that the
// spill store's disk-vs-index ratio is measurable.
func synthRecord(i int, fail bool) *runner.JournalRecord {
	rec := &runner.JournalRecord{
		Kind:        "job",
		Index:       i,
		Fingerprint: telemetry.FormatFingerprint(uint64(i) * 0x9E3779B9),
		Seed:        int64(i),
		Attempts:    1,
		ElapsedNs:   int64(i) * 1000,
	}
	if fail {
		rec.Err = fmt.Sprintf("synthetic failure %d", i)
		return rec
	}
	rec.Result = &sim.Result{AvgHVACW: float64(i) * 1.25, DeltaSoH: float64(i) * 1e-6}
	for k := 0; k < 24; k++ {
		rec.Metrics = append(rec.Metrics, telemetry.Metric{
			Name: fmt.Sprintf("synthetic_series_%02d_total", k), Kind: "counter", Value: float64(i*100 + k),
		})
	}
	return rec
}

// storeOps exercises the recordStore contract shared by both
// implementations: round-trip fidelity, overwrite, delete, and
// failure accounting.
func storeOps(t *testing.T, s recordStore) {
	t.Helper()
	const n = 64
	for i := 0; i < n; i++ {
		if err := s.Put(i, synthRecord(i, i%8 == 3)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if got := s.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	if got := s.Failed(); got != n/8 {
		t.Fatalf("Failed = %d, want %d", got, n/8)
	}
	// Byte-identical round trip for every record.
	for i := 0; i < n; i++ {
		got, err := s.Get(i)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		want, _ := json.Marshal(synthRecord(i, i%8 == 3))
		have, _ := json.Marshal(got)
		if string(want) != string(have) {
			t.Fatalf("record %d round trip:\n got %s\nwant %s", i, have, want)
		}
	}
	if s.Has(n) {
		t.Fatal("Has reports a record that was never put")
	}
	if rec, err := s.Get(n); err != nil || rec != nil {
		t.Fatalf("Get(absent) = %v, %v, want nil, nil", rec, err)
	}
	// Overwriting a failed record with a success drops the failure tally.
	if err := s.Put(3, synthRecord(3, false)); err != nil {
		t.Fatal(err)
	}
	if got := s.Failed(); got != n/8-1 {
		t.Fatalf("Failed after overwrite = %d, want %d", got, n/8-1)
	}
	// Delete forgets the record and its failure flag.
	s.Put(11, synthRecord(11, true))
	before := s.Failed()
	s.Delete(11)
	if s.Has(11) {
		t.Fatal("deleted record still present")
	}
	if got := s.Failed(); got != before-1 {
		t.Fatalf("Failed after delete = %d, want %d", got, before-1)
	}
}

func TestMemStoreOps(t *testing.T) {
	s := newMemStore()
	defer s.Close()
	storeOps(t, s)
}

func TestSpillStoreOps(t *testing.T) {
	s, err := newSpillStore(SpillConfig{Dir: filepath.Join(t.TempDir(), "spill"), SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	storeOps(t, s)
	if n, _ := s.Segments(); n < 2 {
		t.Errorf("SegmentBytes=4KiB held %d segments, want rotation", n)
	}
}

// TestSpillStoreBoundedMemory is the O(index) claim: the store streams
// through far more record bytes than its in-memory index holds. With
// ~1 KiB records and ~32-byte index entries the ratio clears 10x with
// a wide margin — the acceptance bar for the disk-spilling coordinator.
func TestSpillStoreBoundedMemory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spill")
	s, err := newSpillStore(SpillConfig{Dir: dir, SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 512
	for i := 0; i < n; i++ {
		if err := s.Put(i, synthRecord(i, false)); err != nil {
			t.Fatal(err)
		}
	}
	segs, diskBytes := s.Segments()
	// The index is the only per-record memory: ~32 bytes of locator per
	// entry (plus map overhead, counted generously at 4x).
	indexBytes := int64(s.Len()) * 32 * 4
	if diskBytes < 10*indexBytes {
		t.Fatalf("spilled %d bytes across %d segments vs ~%d index bytes; want >= 10x index",
			diskBytes, segs, indexBytes)
	}
	// Random access after heavy spilling still round-trips.
	for _, i := range []int{0, 1, n / 2, n - 1} {
		rec, err := s.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil || rec.Index != i {
			t.Fatalf("Get(%d) = %+v", i, rec)
		}
	}
	// Close removes the scratch segments.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	left, _ := filepath.Glob(filepath.Join(dir, "spill-*.seg"))
	if len(left) != 0 {
		t.Errorf("Close left segments behind: %v", left)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Errorf("second Close: %v", err)
	}
	_ = os.Remove(dir)
}
