package fabric

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"evclimate/internal/runner"
	"evclimate/internal/telemetry"
)

// defaultConnectAttempts bounds how often one protocol call is retried
// before the worker gives up on the coordinator.
const defaultConnectAttempts = 8

// defaultCallTimeout bounds protocol calls made before the lease TTL is
// known (the /spec fetch at join).
const defaultCallTimeout = 30 * time.Second

// WorkerConfig configures one joining worker.
type WorkerConfig struct {
	// URL is the coordinator's base URL (e.g. "http://127.0.0.1:7070").
	URL string
	// ID is the worker's stable identity ("" = "host:pid").
	ID string
	// Specs resolves the coordinator's spec name to a local builder.
	Specs *Registry
	// Workers is the per-unit pool size (0 = GOMAXPROCS).
	Workers int
	// JobTimeout and Retry configure the local pool's watchdog and job
	// retry, exactly as a single-process sweep would.
	JobTimeout time.Duration
	Retry      runner.RetryPolicy
	// Connect paces retries of failed protocol calls — the same backoff
	// policy job retry and lease reclaim use — and ConnectAttempts bounds
	// them (0 = defaultConnectAttempts). A worker therefore rides out a
	// coordinator restart instead of dying with it.
	Connect         runner.RetryPolicy
	ConnectAttempts int
	// CallTimeout bounds each protocol request end to end. Without it, a
	// black-holed connection (a dead switch, a partitioned coordinator)
	// would stall the worker forever — TCP alone can take minutes to
	// notice. 0 derives the deadline from the lease TTL after join
	// (2x TTL, at least 2s) and uses defaultCallTimeout before it.
	CallTimeout time.Duration
	// Transport overrides the HTTP transport (nil = default). Chaos
	// tests inject netchaos.Transport here.
	Transport http.RoundTripper
	// Cache, when non-nil, is primed from the coordinator's /cache
	// endpoint at join, so already-collected results are never
	// re-simulated here.
	Cache *runner.Cache
	// Git overrides the local build stamp (tests pin it; "" = git
	// describe). It must match the coordinator's.
	Git string
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Worker runs a lease loop against one coordinator.
type Worker struct {
	cfg  WorkerConfig
	id   string
	git  string
	seed int64 // jitter stream for connection backoff

	client *http.Client

	spec runner.Spec
	jobs []runner.Job
	// byIndex maps expansion index -> position in jobs.
	byIndex map[int]int
	fps     []string
	desc    SpecDesc
}

// NewWorker prepares a worker. Nothing touches the network until Run.
func NewWorker(cfg WorkerConfig) *Worker {
	id := cfg.ID
	if id == "" {
		host, _ := os.Hostname()
		id = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	git := cfg.Git
	if git == "" {
		git = telemetry.GitDescribe("")
	}
	w := &Worker{cfg: cfg, id: id, git: git, client: &http.Client{Transport: cfg.Transport}}
	for _, b := range []byte(id) {
		w.seed = w.seed*131 + int64(b)
	}
	if w.cfg.ConnectAttempts <= 0 {
		w.cfg.ConnectAttempts = defaultConnectAttempts
	}
	return w
}

// logf emits one progress line when logging is configured.
func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// terminalError marks protocol rejections that retrying cannot fix:
// mismatched builds, unknown specs, malformed requests, over-cap
// bodies. err, when set, is the typed cause (errors.Is-able).
type terminalError struct {
	msg string
	err error
}

func (e *terminalError) Error() string { return e.msg }
func (e *terminalError) Unwrap() error { return e.err }

// callTimeout is the per-request deadline: configured, or derived from
// the joined sweep's lease TTL (2x, floored at 2s), or the pre-join
// default. It bounds every protocol call so a black-holed peer costs
// one deadline, not a wedged worker.
func (w *Worker) callTimeout() time.Duration {
	if w.cfg.CallTimeout > 0 {
		return w.cfg.CallTimeout
	}
	if ttl := time.Duration(w.desc.LeaseTTLMs) * time.Millisecond; ttl > 0 {
		d := 2 * ttl
		if d < 2*time.Second {
			d = 2 * time.Second
		}
		return d
	}
	return defaultCallTimeout
}

// call POSTs (or GETs, when req is nil) one protocol endpoint with
// bounded, seeded-jitter backoff on connection failures and 5xx — the
// shared RetryPolicy.Delay stream, so worker reconnects pace exactly
// like job retries. 4xx responses are terminal.
func (w *Worker) call(ctx context.Context, path string, req, rep any) error {
	var lastErr error
	for attempt := 1; attempt <= w.cfg.ConnectAttempts; attempt++ {
		if attempt > 1 {
			select {
			case <-time.After(w.cfg.Connect.Delay(w.seed, attempt-1)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		lastErr = w.callOnce(ctx, path, req, rep)
		if lastErr == nil || ctx.Err() != nil {
			return lastErr
		}
		var term *terminalError
		if errors.As(lastErr, &term) {
			return lastErr
		}
		w.logf("fabric worker %s: %s attempt %d: %v", w.id, path, attempt, lastErr)
	}
	return fmt.Errorf("fabric: %s failed after %d attempts: %w", path, w.cfg.ConnectAttempts, lastErr)
}

func (w *Worker) callOnce(ctx context.Context, path string, req, rep any) error {
	cctx, cancel := context.WithTimeout(ctx, w.callTimeout())
	defer cancel()
	var body io.Reader
	method := http.MethodGet
	if req != nil {
		data, err := json.Marshal(req)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
		method = http.MethodPost
	}
	hr, err := http.NewRequestWithContext(cctx, method, w.cfg.URL+path, body)
	if err != nil {
		return err
	}
	if req != nil {
		hr.Header.Set("Content-Type", "application/json")
	}
	resp, err := w.client.Do(hr)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		switch {
		case resp.StatusCode == http.StatusUnprocessableEntity:
			// Corrupt-in-transit: retryable — the next delivery of the
			// same bytes may arrive intact.
			return fmt.Errorf("%w: %s", ErrCorruptPayload, e.Error)
		case resp.StatusCode == http.StatusRequestEntityTooLarge:
			// Over the coordinator's cap: the same body would be rejected
			// again, so retrying cannot help.
			return &terminalError{msg: e.Error, err: ErrBodyTooLarge}
		case resp.StatusCode == http.StatusForbidden:
			return &terminalError{msg: e.Error, err: ErrWorkerQuarantined}
		case resp.StatusCode >= 400 && resp.StatusCode < 500:
			return &terminalError{msg: e.Error}
		}
		return errors.New(e.Error)
	}
	if rep == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(rep)
}

// join fetches the spec, rebuilds it locally, and verifies that this
// binary expands to the exact sweep the coordinator is serving.
func (w *Worker) join(ctx context.Context) error {
	if err := w.call(ctx, "/spec", nil, &w.desc); err != nil {
		return err
	}
	if w.desc.GoVersion != runtime.Version() {
		return fmt.Errorf("%w: coordinator built with %s, worker with %s",
			ErrSpecMismatch, w.desc.GoVersion, runtime.Version())
	}
	if w.desc.Git != w.git {
		return fmt.Errorf("%w: coordinator at %q, worker at %q — results must not mix builds",
			ErrSpecMismatch, w.desc.Git, w.git)
	}
	if w.cfg.Specs == nil {
		return fmt.Errorf("%w: worker has no spec registry", ErrSpecMismatch)
	}
	spec, err := w.cfg.Specs.Build(w.desc.Name, w.desc.Params)
	if err != nil {
		return err
	}
	jobs, err := runner.Expand(spec)
	if err != nil {
		return err
	}
	fp := telemetry.FormatFingerprint(runner.SweepFingerprint(jobs))
	if fp != w.desc.SweepFingerprint {
		return fmt.Errorf("%w: local expansion %s, coordinator %s", ErrSpecMismatch, fp, w.desc.SweepFingerprint)
	}
	w.spec, w.jobs = spec, jobs
	w.byIndex = make(map[int]int, len(jobs))
	w.fps = make([]string, len(jobs))
	for i := range jobs {
		w.byIndex[jobs[i].Index] = i
		w.fps[i] = telemetry.FormatFingerprint(jobs[i].Fingerprint())
	}
	// Caching follows the coordinator's mode: a hit skips the simulation
	// (no per-step spans or metrics in the record), which is only sound
	// when the whole fleet — coordinator included — runs cache mode.
	if !w.desc.Cache {
		w.cfg.Cache = nil
	}
	if w.cfg.Cache != nil {
		w.primeCache(ctx)
	}
	w.logf("fabric worker %s: joined sweep %s (%d jobs, %d units)", w.id, fp, w.desc.Jobs, w.desc.Units)
	return nil
}

// primeCache pulls the coordinator's shared result cache (best-effort:
// a coordinator without a cache 404s, and a cacheless join just means
// re-simulating).
func (w *Worker) primeCache(ctx context.Context) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, w.cfg.URL+"/cache", nil)
	if err != nil {
		return
	}
	resp, err := w.client.Do(hr)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		w.cfg.Cache.Load(resp.Body)
	}
}

// Run joins the coordinator and works the lease loop until the sweep
// completes, the context cancels, or the coordinator stays unreachable
// past the connection retry budget. Jobs executed: the second return
// value counts completions this worker streamed back.
func (w *Worker) Run(ctx context.Context) (int, error) {
	if err := w.join(ctx); err != nil {
		return 0, err
	}
	completed := 0
	for {
		if ctx.Err() != nil {
			return completed, ctx.Err()
		}
		var lease LeaseReply
		err := w.call(ctx, "/lease", &LeaseRequest{Worker: w.id, SweepFingerprint: w.desc.SweepFingerprint}, &lease)
		if err != nil {
			return completed, err
		}
		if lease.Done {
			w.logf("fabric worker %s: sweep done after %d jobs", w.id, completed)
			return completed, nil
		}
		if lease.Lease == 0 {
			wait := time.Duration(lease.WaitMs) * time.Millisecond
			if wait <= 0 {
				wait = leasePollWait
			}
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return completed, ctx.Err()
			}
			continue
		}
		n, done, err := w.runUnit(ctx, &lease)
		completed += n
		if err != nil {
			return completed, err
		}
		if done {
			// The completion reply already said the sweep is finished —
			// don't poll /lease again; the coordinator may be stitching
			// and shutting down by now.
			w.logf("fabric worker %s: sweep done after %d jobs", w.id, completed)
			return completed, nil
		}
	}
}

// runUnit executes one leased unit through the ordinary pool, renewing
// the lease from a heartbeat goroutine, and streams the journal-form
// records back. A lost lease cancels the unit mid-flight; whatever
// records were already collected are still offered (the coordinator
// deduplicates), and the loop moves on.
func (w *Worker) runUnit(ctx context.Context, lease *LeaseReply) (int, bool, error) {
	unitJobs := make([]runner.Job, 0, len(lease.Jobs))
	for k, idx := range lease.Jobs {
		pos, ok := w.byIndex[idx]
		if !ok || w.fps[pos] != lease.Fingerprints[k] {
			return 0, false, fmt.Errorf("%w: leased job %d not in local expansion", ErrSpecMismatch, idx)
		}
		unitJobs = append(unitJobs, w.jobs[pos])
	}

	uctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Heartbeat until the unit finishes; a rejected renewal means the
	// lease expired and the unit now belongs to someone else.
	ttl := time.Duration(lease.TTLMs) * time.Millisecond
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	hbDone := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-hbDone:
				return
			case <-uctx.Done():
				return
			case <-t.C:
				var rep HeartbeatReply
				err := w.call(uctx, "/heartbeat", &HeartbeatRequest{Worker: w.id, Lease: lease.Lease}, &rep)
				if err == nil && !rep.OK {
					w.logf("fabric worker %s: lease %d lost, abandoning unit %d", w.id, lease.Lease, lease.Unit)
					cancel()
					return
				}
			}
		}
	}()

	var mu sync.Mutex
	var records []*runner.JournalRecord
	opts := runner.Options{
		Workers:    w.cfg.Workers,
		Telemetry:  telemetry.NewRegistry(),
		JobTimeout: w.cfg.JobTimeout,
		Retry:      w.cfg.Retry,
		Cache:      w.cfg.Cache,
		OnRecord: func(rec *runner.JournalRecord) {
			mu.Lock()
			records = append(records, rec)
			mu.Unlock()
		},
	}
	if w.desc.Trace {
		// Spans only enter records while a trace log is attached; the
		// log itself is scratch — the coordinator stitches from records.
		opts.TraceLog = &telemetry.TraceLog{}
		opts.TraceSteps = w.desc.TraceSteps
	}
	_, runErr := runner.RunJobs(uctx, unitJobs, opts)
	close(hbDone)
	hbWG.Wait()

	if len(records) == 0 {
		if uctx.Err() != nil && ctx.Err() == nil {
			return 0, false, nil // lost lease before finishing anything
		}
		return 0, false, runErr
	}
	// Checksum each record before it hits the wire, and stamp the
	// delivery with a deterministic request id so retried or duplicated
	// deliveries of this completion are recognized and replayed.
	sums := make([]string, len(records))
	for k, rec := range records {
		sum, err := runner.ChecksumRecord(rec)
		if err != nil {
			return 0, false, fmt.Errorf("fabric: checksum record %d: %w", k, err)
		}
		sums[k] = sum
	}
	req := &CompleteRequest{
		Worker:    w.id,
		Lease:     lease.Lease,
		Unit:      lease.Unit,
		RequestID: completionRequestID(w.id, lease.Lease, lease.Unit),
		Records:   records,
		Sums:      sums,
	}
	var rep CompleteReply
	// Completion for a lost lease is best-effort: the records are valid
	// (fingerprint-checked) even if the unit was reassigned, and the
	// coordinator deduplicates by job index.
	cctx := ctx
	if err := w.call(cctx, "/complete", req, &rep); err != nil {
		if uctx.Err() != nil && ctx.Err() == nil {
			return 0, false, nil
		}
		return 0, false, err
	}
	w.logf("fabric worker %s: unit %d complete (%d accepted, %d duplicate)",
		w.id, lease.Unit, rep.Accepted, rep.Duplicates)
	return rep.Accepted, rep.Done, runErr
}

// completionRequestID derives the idempotency key for one logical
// completion. It hashes (worker, lease, unit) — stable across network
// retries of the same delivery, distinct across re-leases (a new lease
// id is a genuinely new completion the coordinator must process).
func completionRequestID(worker string, lease uint64, unit int) uint64 {
	h := fnv.New64a()
	io.WriteString(h, worker)
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], lease)
	binary.LittleEndian.PutUint64(b[8:], uint64(unit))
	h.Write(b[:])
	id := h.Sum64()
	if id == 0 {
		id = 1 // 0 means "no id" on the wire
	}
	return id
}
