// Package fabric is the distributed sweep fabric: a crash-tolerant
// coordinator/worker split over the journaled runner, so one sweep spec
// executes across processes and machines and survives any single node
// dying.
//
// The coordinator expands a runner.Spec, shards the jobs by FNV
// scenario fingerprint into leased work units, and serves them over an
// HTTP+JSON protocol (/spec, /lease, /heartbeat, /complete, /snapshot,
// /cache). Workers rebuild the identical spec locally from a shared
// builder registry — function-valued spec fields cannot travel over the
// wire, so the protocol ships job indexes and fingerprints, never jobs —
// run their leased units through the ordinary pool (watchdog, retry,
// ladder escalation included), and stream back journal-form records
// carrying each job's result, step spans, and private metric snapshot.
//
// Failure semantics:
//
//   - Worker death: its lease expires (heartbeats stop), the unit is
//     reclaimed after a seeded-jitter backoff and reassigned.
//   - Coordinator death: every lease/completion is journaled through the
//     runner's append-only journal format; a restarted coordinator
//     resumes from the journal and accepts in-flight completions from
//     workers it never leased to (validated by fingerprint, deduplicated
//     by job index).
//   - Poisoned unit: a unit whose lease is lost on K distinct workers is
//     quarantined instead of wedging the sweep; its jobs report
//     ErrUnitQuarantined.
//
// Determinism is the contract: stitching completed units in expansion
// order produces byte-identical traces, metrics, and manifests for any
// worker x machine topology — including topologies where workers were
// killed and units reassigned mid-run (see TestFabricTopologyDeterminism
// and the chaos test).
package fabric

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"evclimate/internal/runner"
)

// ErrSpecMismatch reports a worker whose locally built spec does not
// expand to the sweep the coordinator is serving — a different binary,
// flag set, or seed. Running such a worker would stitch results from
// two different experiments, so the join is refused.
var ErrSpecMismatch = errors.New("fabric: worker spec does not match coordinator sweep")

// ErrUnitQuarantined marks the jobs of a work unit that failed on too
// many distinct workers and was quarantined so the rest of the sweep
// could finish.
var ErrUnitQuarantined = errors.New("fabric: unit quarantined (lease lost on too many distinct workers)")

// ErrCorruptPayload reports a completion whose record bytes failed the
// FNV payload checksum (or did not parse at all) — in-transit
// corruption. The rejection is retryable: the worker re-marshals and
// re-sends, and an intact delivery is accepted.
var ErrCorruptPayload = errors.New("fabric: completion payload corrupt in transit")

// ErrBodyTooLarge reports a request body over the coordinator's cap.
// Unlike corruption it is terminal for the worker: the same body would
// be rejected again, so retrying cannot help.
var ErrBodyTooLarge = errors.New("fabric: request body exceeds coordinator cap")

// ErrWorkerQuarantined reports a worker the flap breaker has benched:
// its leases died mid-flight too many times (a flapping link or a
// wedged host), so the coordinator stops granting it work rather than
// let it keep churning units toward unit quarantine.
var ErrWorkerQuarantined = errors.New("fabric: worker quarantined (leases repeatedly lost mid-flight)")

// SpecBuilder constructs a sweep spec from wire parameters. Builders
// must be pure: the same params always produce a spec that expands to
// the same jobs, or coordinator and worker cannot agree on the work.
type SpecBuilder func(params map[string]string) (runner.Spec, error)

// Registry maps spec names to builders — the contract that lets a
// joining worker reconstruct the coordinator's job list locally. Both
// sides must register the same builders (they normally share a binary).
type Registry struct {
	mu sync.Mutex
	m  map[string]SpecBuilder
}

// NewSpecRegistry returns an empty builder registry.
func NewSpecRegistry() *Registry {
	return &Registry{m: make(map[string]SpecBuilder)}
}

// Register adds a named builder (last registration wins).
func (r *Registry) Register(name string, b SpecBuilder) {
	r.mu.Lock()
	r.m[name] = b
	r.mu.Unlock()
}

// Build constructs the named spec from wire parameters.
func (r *Registry) Build(name string, params map[string]string) (runner.Spec, error) {
	r.mu.Lock()
	b := r.m[name]
	r.mu.Unlock()
	if b == nil {
		return runner.Spec{}, fmt.Errorf("%w: this binary has no spec builder %q (mismatched binaries?)", ErrSpecMismatch, name)
	}
	return b(params)
}

// SpecDesc is /spec's response: everything a worker needs to rebuild
// and verify the sweep, plus the lease parameters it must honor.
type SpecDesc struct {
	// Name and Params select the builder in the worker's registry.
	Name   string            `json:"name"`
	Params map[string]string `json:"params,omitempty"`
	// SweepFingerprint is the coordinator expansion's identity; the
	// worker's local expansion must hash identically.
	SweepFingerprint string `json:"sweep_fingerprint"`
	// Jobs and Units describe the sharding.
	Jobs  int `json:"jobs"`
	Units int `json:"units"`
	// LeaseTTLMs is the heartbeat deadline workers must renew within.
	LeaseTTLMs int64 `json:"lease_ttl_ms"`
	// Trace, when true, asks workers to collect step spans into their
	// records (TraceSteps caps each job's ring; 0 = default).
	Trace      bool `json:"trace,omitempty"`
	TraceSteps int  `json:"trace_steps,omitempty"`
	// Cache, when true, means the coordinator runs the shared
	// content-addressed result cache (/cache is live). Workers only use
	// their local caches when the coordinator does: a cache hit skips
	// the simulation and emits no per-step series, so cache mode and
	// full-fidelity (trace/metrics) mode must not be mixed per-node.
	Cache bool `json:"cache,omitempty"`
	// Git and GoVersion stamp the coordinator's build; a worker built
	// differently refuses to join (results must not mix builds).
	Git       string `json:"git"`
	GoVersion string `json:"go_version"`
}

// LeaseRequest asks for one work unit.
type LeaseRequest struct {
	// Worker is the requester's self-reported stable identity.
	Worker string `json:"worker"`
	// SweepFingerprint is the worker's local expansion hash; leases are
	// only granted when it matches the coordinator's.
	SweepFingerprint string `json:"sweep_fingerprint"`
}

// LeaseReply grants a unit, asks the worker to wait, or reports the
// sweep done.
type LeaseReply struct {
	// Done: every unit is complete (or quarantined); the worker should
	// exit its lease loop.
	Done bool `json:"done,omitempty"`
	// WaitMs, when positive, means nothing is leasable right now (units
	// in flight or backing off); poll again after this long.
	WaitMs int64 `json:"wait_ms,omitempty"`
	// Lease is the grant's id, echoed in heartbeats and completion.
	Lease uint64 `json:"lease,omitempty"`
	// Unit is the granted unit's index.
	Unit int `json:"unit"`
	// Jobs are the unit's job indexes in the expansion.
	Jobs []int `json:"jobs,omitempty"`
	// Fingerprints are the coordinator's per-job scenario fingerprints
	// (hex), aligned with Jobs — the worker cross-checks its own
	// expansion before simulating anything.
	Fingerprints []string `json:"fingerprints,omitempty"`
	// TTLMs is the lease's heartbeat deadline.
	TTLMs int64 `json:"ttl_ms,omitempty"`
}

// HeartbeatRequest renews a lease.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	Lease  uint64 `json:"lease"`
}

// HeartbeatReply acknowledges a renewal. OK=false means the lease
// expired and was reclaimed — the worker should abandon the unit.
type HeartbeatReply struct {
	OK    bool  `json:"ok"`
	TTLMs int64 `json:"ttl_ms,omitempty"`
}

// CompleteRequest streams a finished unit's records back.
type CompleteRequest struct {
	Worker string `json:"worker"`
	Lease  uint64 `json:"lease"`
	Unit   int    `json:"unit"`
	// RequestID identifies this logical completion across deliveries:
	// the worker derives it deterministically from (worker, lease,
	// unit), so a duplicated or retried delivery carries the same id
	// and the coordinator replays its original reply instead of
	// re-processing the records.
	RequestID uint64 `json:"request_id,omitempty"`
	// Records are the unit's journal-form job records, exactly what the
	// runner's journal mode would have appended locally.
	Records []*runner.JournalRecord `json:"records"`
	// Sums are FNV-1a checksums over each record's canonical JSON
	// (runner.ChecksumRecord), index-aligned with Records. The
	// coordinator recomputes them from what it decoded; a mismatch is
	// in-transit corruption and the whole completion is rejected.
	Sums []string `json:"sums,omitempty"`
}

// CompleteReply reports how many records were accepted; duplicates (a
// reassigned unit completed twice) are counted, not errors.
type CompleteReply struct {
	Accepted   int  `json:"accepted"`
	Duplicates int  `json:"duplicates"`
	Done       bool `json:"done,omitempty"`
	// Replayed marks a reply served from the idempotency cache: the
	// same RequestID already landed, so this delivery changed nothing.
	Replayed bool `json:"replayed,omitempty"`
}

// Progress is /snapshot's response: the coordinator's live state.
type Progress struct {
	SweepFingerprint string `json:"sweep_fingerprint"`
	Jobs             int    `json:"jobs"`
	Completed        int    `json:"completed"`
	Failed           int    `json:"failed"`
	Units            int    `json:"units"`
	UnitsDone        int    `json:"units_done"`
	UnitsLeased      int    `json:"units_leased"`
	UnitsQuarantined int    `json:"units_quarantined"`
	WorkersLive      int    `json:"workers_live"`
	// WorkersQuarantined counts workers the flap breaker has benched.
	WorkersQuarantined int  `json:"workers_quarantined,omitempty"`
	Done               bool `json:"done"`
}

// shardUnits shards job indexes into units by FNV scenario fingerprint:
// job i lands in unit Fingerprint(i) mod n, with n sized so units hold
// about unitSize jobs. Sharding is content-addressed — two expansions of
// the same spec shard identically, whatever machine computes them — and
// each unit's job list stays sorted in expansion order.
func shardUnits(jobs []runner.Job, unitSize int) [][]int {
	if unitSize <= 0 {
		unitSize = DefaultUnitSize
	}
	n := (len(jobs) + unitSize - 1) / unitSize
	if n < 1 {
		n = 1
	}
	units := make([][]int, n)
	for i := range jobs {
		u := int(jobs[i].Fingerprint() % uint64(n))
		units[u] = append(units[u], i)
	}
	// Drop empty shards (fingerprints are uniform but not perfect) and
	// keep a deterministic unit order.
	out := units[:0]
	for _, u := range units {
		if len(u) > 0 {
			sort.Ints(u)
			out = append(out, u)
		}
	}
	return out
}
