package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"evclimate/internal/netchaos"
	"evclimate/internal/runner"
	"evclimate/internal/telemetry"
)

// hardenedCoord starts a coordinator for raw-protocol hardening tests.
func hardenedCoord(t *testing.T, mutate func(*CoordinatorConfig)) (*Coordinator, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	cfg := CoordinatorConfig{
		Spec: mustSpec(t), SpecName: "grid", Params: gridParams,
		Label: "hardening", UnitSize: 1000, LeaseTTL: time.Second,
		Telemetry: reg, Git: "test",
	}
	if mutate != nil {
		mutate(&cfg)
	}
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord, reg
}

// postComplete delivers one raw completion and returns the HTTP status
// plus the decoded reply (when 200).
func postComplete(t *testing.T, addr string, req *CompleteRequest) (int, CompleteReply, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/complete", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, CompleteReply{}, e.Error
	}
	var rep CompleteReply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, rep, ""
}

// failedRecord builds a valid-for-this-sweep record carrying an error
// (no Result needed), with its wire checksum.
func failedRecord(t *testing.T, coord *Coordinator, idx, attempts int) (*runner.JournalRecord, string) {
	t.Helper()
	rec := &runner.JournalRecord{
		Kind: "job", Index: idx, Fingerprint: coord.fps[idx],
		Seed: coord.jobs[idx].Seed, Attempts: attempts,
		ElapsedNs: int64(attempts) * 1000, Err: "synthetic hardening failure",
	}
	sum, err := runner.ChecksumRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	return rec, sum
}

// TestCompleteBodyCap: a /complete body over MaxCompleteBytes is
// rejected with a typed 413 that the worker treats as terminal —
// retrying an oversize body cannot succeed, so the retry budget must
// not be burned on it.
func TestCompleteBodyCap(t *testing.T) {
	coord, _ := hardenedCoord(t, func(cfg *CoordinatorConfig) { cfg.MaxCompleteBytes = 1 << 10 })
	rec, sum := failedRecord(t, coord, 0, 1)
	rec.Err = strings.Repeat("x", 4<<10) // inflate past the cap
	status, _, msg := postComplete(t, coord.Addr, &CompleteRequest{
		Worker: "big", Lease: 1, Unit: 0, Records: []*runner.JournalRecord{rec}, Sums: []string{sum},
	})
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize completion: status %d (%s), want 413", status, msg)
	}
	if !strings.Contains(msg, ErrBodyTooLarge.Error()) {
		t.Errorf("413 body %q does not carry the typed error", msg)
	}
	if coord.Snapshot().Completed != 0 {
		t.Error("oversize completion stored records")
	}

	// The worker's protocol client maps the 413 onto the terminal typed
	// error without consuming retry attempts.
	w := NewWorker(WorkerConfig{
		URL: "http://" + coord.Addr, ID: "big", Git: "test",
		Connect:         runner.RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
		ConnectAttempts: 4,
	})
	err := w.call(context.Background(), "/complete", &CompleteRequest{
		Worker: "big", Lease: 1, Unit: 0, Records: []*runner.JournalRecord{rec}, Sums: []string{sum},
	}, &CompleteReply{})
	if !errors.Is(err, ErrBodyTooLarge) {
		t.Fatalf("worker call error = %v, want ErrBodyTooLarge", err)
	}
	// Control-plane endpoints are capped too.
	resp, err := http.Post("http://"+coord.Addr+"/lease", "application/json",
		bytes.NewReader(append(bytes.Repeat([]byte(" "), maxControlBytes+1), []byte("{}")...)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize lease: status %d, want 413", resp.StatusCode)
	}
}

// TestCompleteChecksumRejectsCorruption: a completion whose payload
// checksums do not match what arrived is rejected 422 (retryable),
// counted, and leaves no records behind; the intact re-send lands.
func TestCompleteChecksumRejectsCorruption(t *testing.T) {
	coord, reg := hardenedCoord(t, nil)
	rec, sum := failedRecord(t, coord, 0, 1)

	// Corrupt: the worker's sums describe different bytes.
	bad := "0000000000000000"
	status, _, msg := postComplete(t, coord.Addr, &CompleteRequest{
		Worker: "w", Lease: 1, Unit: 0, RequestID: 77,
		Records: []*runner.JournalRecord{rec}, Sums: []string{bad},
	})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt completion: status %d (%s), want 422", status, msg)
	}
	if !strings.Contains(msg, ErrCorruptPayload.Error()) {
		t.Errorf("422 body %q does not carry the typed error", msg)
	}
	if got := reg.Counter("fabric_complete_corrupt_total").Value(); got != 1 {
		t.Errorf("fabric_complete_corrupt_total = %v, want 1", got)
	}
	if coord.Snapshot().Completed != 0 {
		t.Fatal("corrupt completion stored records")
	}
	// Mismatched sums/records arity is corruption too.
	status, _, _ = postComplete(t, coord.Addr, &CompleteRequest{
		Worker: "w", Lease: 1, Unit: 0, RequestID: 77,
		Records: []*runner.JournalRecord{rec}, Sums: []string{sum, sum},
	})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("arity-mismatched completion: status %d, want 422", status)
	}
	// The intact re-send (same RequestID — a retry, not a new
	// completion) is accepted normally: the rejections never entered the
	// idempotency cache.
	status, rep, _ := postComplete(t, coord.Addr, &CompleteRequest{
		Worker: "w", Lease: 1, Unit: 0, RequestID: 77,
		Records: []*runner.JournalRecord{rec}, Sums: []string{sum},
	})
	if status != http.StatusOK || rep.Accepted != 1 || rep.Replayed {
		t.Fatalf("intact re-send: status %d rep %+v, want accepted", status, rep)
	}
	if coord.Snapshot().Completed != 1 {
		t.Fatal("intact re-send did not store the record")
	}
}

// TestDuplicateCompletionIdempotent: re-delivering the same logical
// completion (same RequestID) replays the cached reply; delivering the
// same records under a new id counts duplicates; stitching stays
// first-wins whatever arrives later.
func TestDuplicateCompletionIdempotent(t *testing.T) {
	coord, reg := hardenedCoord(t, nil)
	rec, sum := failedRecord(t, coord, 0, 1)
	first := &CompleteRequest{
		Worker: "w", Lease: 1, Unit: 0, RequestID: 42,
		Records: []*runner.JournalRecord{rec}, Sums: []string{sum},
	}
	status, rep, _ := postComplete(t, coord.Addr, first)
	if status != http.StatusOK || rep.Accepted != 1 || rep.Replayed {
		t.Fatalf("first delivery: status %d rep %+v", status, rep)
	}

	// Same RequestID: the duplicated delivery replays, re-counting
	// nothing.
	status, rep, _ = postComplete(t, coord.Addr, first)
	if status != http.StatusOK || !rep.Replayed || rep.Accepted != 1 || rep.Duplicates != 0 {
		t.Fatalf("replayed delivery: status %d rep %+v, want replayed accepted=1", status, rep)
	}
	if got := reg.Counter("fabric_complete_replayed_total").Value(); got != 1 {
		t.Errorf("fabric_complete_replayed_total = %v, want 1", got)
	}
	if got := reg.Counter("fabric_records_duplicate_total").Value(); got != 0 {
		t.Errorf("fabric_records_duplicate_total = %v after replay, want 0", got)
	}

	// New RequestID, same job (a reassigned unit finishing twice): the
	// record-level dedup counts it and the original record wins.
	later, laterSum := failedRecord(t, coord, 0, 7) // would differ if it replaced the original
	status, rep, _ = postComplete(t, coord.Addr, &CompleteRequest{
		Worker: "other", Lease: 2, Unit: 0, RequestID: 43,
		Records: []*runner.JournalRecord{later}, Sums: []string{laterSum},
	})
	if status != http.StatusOK || rep.Duplicates != 1 || rep.Accepted != 0 {
		t.Fatalf("reassigned delivery: status %d rep %+v, want 1 duplicate", status, rep)
	}
	if got := reg.Counter("fabric_records_duplicate_total").Value(); got != 1 {
		t.Errorf("fabric_records_duplicate_total = %v, want 1", got)
	}
	stored, err := coord.store.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if stored.Attempts != 1 {
		t.Fatalf("stored record attempts = %d, want the first delivery's 1 (first-wins)", stored.Attempts)
	}
}

// TestFlapBreakerBenchesWorker: a worker whose leases repeatedly die
// mid-flight is refused further leases with a typed 403, while healthy
// workers keep leasing.
func TestFlapBreakerBenchesWorker(t *testing.T) {
	coord, reg := hardenedCoord(t, func(cfg *CoordinatorConfig) {
		cfg.LeaseTTL = 50 * time.Millisecond
		cfg.FlapLimit = 2
		cfg.QuarantineAfter = 100 // keep the unit alive; the worker is what gets benched
		cfg.Reclaim = runner.RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
	})
	lease := func(worker string) (int, LeaseReply) {
		t.Helper()
		body, _ := json.Marshal(LeaseRequest{Worker: worker, SweepFingerprint: coord.SweepFingerprint()})
		resp, err := http.Post("http://"+coord.Addr+"/lease", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rep LeaseReply
		json.NewDecoder(resp.Body).Decode(&rep)
		return resp.StatusCode, rep
	}
	deadline := time.Now().Add(10 * time.Second)
	granted := 0
	for granted < 2 {
		status, rep := lease("flappy")
		if status == http.StatusForbidden {
			t.Fatalf("benched after %d grants, want 2", granted)
		}
		if rep.Lease != 0 {
			granted++ // never heartbeat: let it expire
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease never re-granted: %+v", coord.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Wait for the second expiry to trip the breaker.
	for {
		if status, _ := lease("flappy"); status == http.StatusForbidden {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flappy worker never benched: %+v", coord.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := reg.Counter("fabric_workers_quarantined_total").Value(); got != 1 {
		t.Errorf("fabric_workers_quarantined_total = %v, want 1", got)
	}
	if p := coord.Snapshot(); p.WorkersQuarantined != 1 {
		t.Errorf("progress WorkersQuarantined = %d, want 1", p.WorkersQuarantined)
	}
	// A healthy worker still leases.
	if status, rep := lease("steady"); status != http.StatusOK || (rep.Lease == 0 && rep.WaitMs == 0 && !rep.Done) {
		t.Errorf("healthy worker refused: status %d rep %+v", status, rep)
	}
	// The worker client surfaces the bench as the typed terminal error.
	w := NewWorker(WorkerConfig{
		URL: "http://" + coord.Addr, ID: "flappy", Git: "test",
		Connect:         runner.RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
		ConnectAttempts: 3,
	})
	err := w.call(context.Background(), "/lease",
		&LeaseRequest{Worker: "flappy", SweepFingerprint: coord.SweepFingerprint()}, &LeaseReply{})
	if !errors.Is(err, ErrWorkerQuarantined) {
		t.Fatalf("benched lease error = %v, want ErrWorkerQuarantined", err)
	}
}

// TestCallDeadlineUnsticksBlackHole is the untimed-client regression
// test: before per-request deadlines, a black-holed connection stalled
// the worker forever (an http.Client with no Timeout waits on TCP
// alone). Now every call carries a deadline, so a partitioned
// coordinator costs one CallTimeout per attempt, bounded by the retry
// budget.
func TestCallDeadlineUnsticksBlackHole(t *testing.T) {
	coord, _ := hardenedCoord(t, nil)
	chaos := netchaos.NewTransport(netchaos.Schedule{
		Seed:  7,
		Rules: []netchaos.Rule{{Fault: netchaos.BlackHole, Path: "/spec", Rate: 1}},
	}, nil)
	w := NewWorker(WorkerConfig{
		URL: "http://" + coord.Addr, ID: "stuck", Specs: testSpecs(t), Git: "test",
		Transport:       chaos,
		CallTimeout:     150 * time.Millisecond,
		Connect:         runner.RetryPolicy{BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
		ConnectAttempts: 2,
	})
	start := time.Now()
	_, err := w.Run(context.Background())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("black-holed join succeeded?")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("black-holed join error = %v, want deadline exceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("black-holed join took %v — per-call deadline not applied", elapsed)
	}
	if got := chaos.Injected()[netchaos.BlackHole]; got != 2 {
		t.Errorf("black-hole fired %d times, want 2 (every attempt)", got)
	}
}
