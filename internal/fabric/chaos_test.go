package fabric

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"evclimate/internal/cabin"
	"evclimate/internal/control"
	"evclimate/internal/runner"
	"evclimate/internal/telemetry"
)

// chaosEnvURL and chaosEnvID hand the coordinator address and worker
// identity to re-executed worker subprocesses.
const (
	chaosEnvURL = "EVCLIMATE_FABRIC_CHAOS_URL"
	chaosEnvID  = "EVCLIMATE_FABRIC_CHAOS_ID"
)

// paced wraps a controller with a per-Decide sleep, slowing jobs down
// without perturbing the trajectory — so SIGKILLs land mid-sweep.
type paced struct {
	inner control.Controller
	delay time.Duration
}

func (c *paced) Name() string { return c.inner.Name() }
func (c *paced) Reset()       { c.inner.Reset() }
func (c *paced) Decide(sc control.StepContext) cabin.Inputs {
	time.Sleep(c.delay)
	return c.inner.Decide(sc)
}

// pacedSpec slows a controller family down (distinct label, so the
// fingerprints stay honest about what ran).
func pacedSpec(inner runner.ControllerSpec, delay time.Duration) runner.ControllerSpec {
	s := inner
	s.Label = inner.Label + "+paced"
	s.New = func() (control.Controller, error) {
		c, err := inner.New()
		if err != nil {
			return nil, err
		}
		return &paced{inner: c, delay: delay}, nil
	}
	return s
}

// chaosBuilder is the acceptance sweep: 2 cycles × 7 ambients × 5
// targets × 3 controllers = 210 jobs, one controller family paced so
// the sweep takes long enough to kill things mid-run.
func chaosBuilder(params map[string]string) (runner.Spec, error) {
	return runner.Spec{
		Controllers: []runner.ControllerSpec{
			runner.OnOffSpec(1),
			runner.FuzzySpec(1),
			pacedSpec(runner.OnOffSpec(1), 1500*time.Microsecond),
		},
		Cycles: []runner.CycleSpec{{Name: "ECE15"}, {Name: "UDDS"}},
		Envs: []runner.Env{
			{AmbientC: -10}, {AmbientC: 0}, {AmbientC: 10}, {AmbientC: 20},
			{AmbientC: 28, SolarW: 300}, {AmbientC: 35, SolarW: 400}, {AmbientC: 40, SolarW: 600},
		},
		Targets:     []float64{22, 23, 24, 25, 26},
		MaxProfileS: 40,
		BaseSeed:    20150601,
	}, nil
}

func chaosSpecs() *Registry {
	specs := NewSpecRegistry()
	specs.Register("chaos", chaosBuilder)
	return specs
}

// TestFabricChaosWorkerHelper is not a test: it is the worker process
// the chaos test spawns (and kills). It joins the coordinator named in
// the environment and works until the sweep completes.
func TestFabricChaosWorkerHelper(t *testing.T) {
	url := os.Getenv(chaosEnvURL)
	if url == "" {
		t.Skip("helper: run by TestFabricChaosKillWorkerAndCoordinator")
	}
	wk := NewWorker(WorkerConfig{
		URL:     url,
		ID:      os.Getenv(chaosEnvID),
		Specs:   chaosSpecs(),
		Workers: 2,
		// Generous retry budget: workers must ride out the coordinator
		// restart, not die with it.
		Connect:         runner.RetryPolicy{BaseBackoff: 50 * time.Millisecond, MaxBackoff: 500 * time.Millisecond},
		ConnectAttempts: 20,
		Git:             "test",
	})
	if _, err := wk.Run(context.Background()); err != nil {
		t.Fatalf("worker %s: %v", os.Getenv(chaosEnvID), err)
	}
}

// spawnChaosWorker re-executes the test binary as one fabric worker.
func spawnChaosWorker(t *testing.T, url, id string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestFabricChaosWorkerHelper$")
	cmd.Env = append(os.Environ(), chaosEnvURL+"="+url, chaosEnvID+"="+id)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// chaosCoordinator builds (or rebuilds, with resume) the acceptance
// sweep's coordinator over the given journal directory.
func chaosCoordinator(t *testing.T, dir string, resume bool, reg *telemetry.Registry, tl *telemetry.TraceLog, man *telemetry.Manifest) *Coordinator {
	t.Helper()
	spec, err := chaosBuilder(nil)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		Spec:     spec,
		SpecName: "chaos",
		Label:    "chaos",
		UnitSize: 8,
		// Short TTL so the killed worker's leases reclaim quickly.
		LeaseTTL:  1 * time.Second,
		Reclaim:   runner.RetryPolicy{BaseBackoff: 20 * time.Millisecond, MaxBackoff: 100 * time.Millisecond},
		Journal:   &runner.JournalConfig{Dir: dir, Resume: resume, FsyncEvery: 4, Git: "test"},
		Telemetry: reg,
		TraceLog:  tl,
		Manifest:  man,
		Git:       "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	return coord
}

// TestFabricChaosKillWorkerAndCoordinator is the acceptance chaos run:
// a coordinator and three worker processes execute a 210-scenario
// sweep; one worker is SIGKILLed mid-run and the coordinator itself is
// stopped and restarted from its journal. The sweep must still finish
// with zero lost and zero duplicated jobs, and the stitched metrics,
// traces, manifest, and results must be byte-identical to a
// single-process run of the same spec — the worker-count determinism
// guarantee extended across process topologies, kills included.
func TestFabricChaosKillWorkerAndCoordinator(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos run")
	}

	// Golden single-process artifacts.
	spec, err := chaosBuilder(nil)
	if err != nil {
		t.Fatal(err)
	}
	refReg := telemetry.NewRegistry()
	refTL := &telemetry.TraceLog{}
	refMan := telemetry.NewManifest("evbench")
	refSw, err := runner.Run(context.Background(), spec, runner.Options{
		Workers: 8, Telemetry: refReg, TraceLog: refTL, Manifest: refMan, ManifestLabel: "chaos",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := refSw.FirstErr(); err != nil {
		t.Fatal(err)
	}
	ref := collect(t, refReg, refTL, refMan, refSw)

	// Phase 1: coordinator + three workers; kill one worker mid-run.
	dir := t.TempDir()
	reg1 := telemetry.NewRegistry()
	// The phase-1 trace log is scratch (stitching happens after the
	// restart, from journaled records), but it must exist so /spec asks
	// workers to collect spans from the start.
	coord := chaosCoordinator(t, dir, false, reg1, &telemetry.TraceLog{}, nil)
	if err := coord.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := coord.Addr
	url := "http://" + addr

	var workers []*exec.Cmd
	for i := 0; i < 3; i++ {
		workers = append(workers, spawnChaosWorker(t, url, fmt.Sprintf("chaos-w%d", i)))
	}
	defer func() {
		for _, w := range workers {
			if w.Process != nil {
				w.Process.Kill()
			}
			w.Wait()
		}
	}()

	// Wait for real progress, then SIGKILL worker 0.
	deadline := time.Now().Add(90 * time.Second)
	for {
		p := coord.Snapshot()
		if p.Completed >= 20 {
			break
		}
		if p.Done || time.Now().After(deadline) {
			t.Fatalf("no kill window: %+v", p)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err := workers[0].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	workers[0].Wait()
	t.Logf("killed worker 0 at %+v", coord.Snapshot())

	// Now kill the coordinator itself and restart it from the journal,
	// on the same address, with fresh telemetry/trace/manifest sinks.
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	reg2 := telemetry.NewRegistry()
	tl2 := &telemetry.TraceLog{}
	man2 := telemetry.NewManifest("evbench")
	coord2 := chaosCoordinator(t, dir, true, reg2, tl2, man2)
	defer coord2.Close()
	if coord2.Resumed() == 0 {
		t.Error("restarted coordinator replayed nothing from the journal")
	}
	// The old port may linger in TIME_WAIT; retry briefly.
	var serveErr error
	for i := 0; i < 100; i++ {
		if serveErr = coord2.Serve(addr); serveErr == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if serveErr != nil {
		t.Fatalf("restart on %s: %v", addr, serveErr)
	}
	t.Logf("restarted coordinator: replayed %d jobs", coord2.Resumed())

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := coord2.Wait(ctx); err != nil {
		t.Fatalf("sweep never finished: %v (%+v)", err, coord2.Snapshot())
	}
	for _, w := range workers[1:] {
		if err := w.Wait(); err != nil {
			t.Fatalf("surviving worker failed: %v", err)
		}
	}

	// Zero lost, zero duplicated: every job completed exactly once.
	p := coord2.Snapshot()
	if p.Completed != p.Jobs || p.Failed != 0 || p.UnitsQuarantined != 0 {
		t.Fatalf("progress = %+v, want all %d jobs completed cleanly", p, p.Jobs)
	}

	sw, err := coord2.Stitch()
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.FirstErr(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, reg2, tl2, man2, sw)
	for _, cmp := range []struct {
		name     string
		got, ref []byte
	}{
		{"metrics", got.metrics, ref.metrics},
		{"trace", got.trace, ref.trace},
		{"manifest", got.manifest, ref.manifest},
		{"results", got.results, ref.results},
	} {
		if !bytes.Equal(cmp.got, cmp.ref) {
			a, b := cmp.got, cmp.ref
			t.Errorf("%s differs from single-process run after chaos\nfabric: %.300s\nref:    %.300s",
				cmp.name, a, b)
		}
	}

	// The journal on disk tells the story: lease grants, expiries from
	// the killed worker, and exactly 210 distinct job records.
	files, err := filepath.Glob(filepath.Join(dir, "*.journal"))
	if err != nil || len(files) != 1 {
		t.Fatalf("journal files = %v (%v)", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	rep, err := runner.ParseJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != p.Jobs {
		t.Errorf("journal holds %d distinct jobs, want %d", len(rep.Records), p.Jobs)
	}
	if len(rep.Leases) == 0 {
		t.Error("journal recorded no lease events")
	}
}
