// Package ode provides fixed-step and adaptive explicit integrators for
// ordinary differential equations. It plays the role of the Simulink /
// AMESim solver in the paper's co-simulation: the EV plant (power train,
// cabin thermal model, battery) is integrated with these routines at a
// finer time step than the model-predictive controller's sample period.
package ode

import (
	"errors"
	"fmt"
	"math"
)

// System is the right-hand side of an ODE ẋ = f(t, x). Implementations
// must write f(t, x) into dxdt (len(dxdt) == len(x)) and must not retain
// either slice.
type System func(t float64, x []float64, dxdt []float64)

// Integrator advances a state by one step of size dt.
type Integrator interface {
	// Step writes the state at t+dt into next, given state x at time t.
	// x and next must have equal length and may not alias.
	Step(sys System, t float64, x, next []float64, dt float64)
	// Name identifies the method ("euler", "heun", "rk4").
	Name() string
	// Order is the classical order of accuracy of the method.
	Order() int
}

// Euler is the explicit first-order Euler method.
type Euler struct{ scratch []float64 }

// Name implements Integrator.
func (*Euler) Name() string { return "euler" }

// Order implements Integrator.
func (*Euler) Order() int { return 1 }

// Step implements Integrator.
func (e *Euler) Step(sys System, t float64, x, next []float64, dt float64) {
	n := len(x)
	if len(next) != n {
		panic("ode: state length mismatch")
	}
	e.scratch = resize(e.scratch, n)
	sys(t, x, e.scratch)
	for i := 0; i < n; i++ {
		next[i] = x[i] + dt*e.scratch[i]
	}
}

// Heun is the explicit second-order trapezoidal (Heun) method.
type Heun struct{ k1, k2, tmp []float64 }

// Name implements Integrator.
func (*Heun) Name() string { return "heun" }

// Order implements Integrator.
func (*Heun) Order() int { return 2 }

// Step implements Integrator.
func (h *Heun) Step(sys System, t float64, x, next []float64, dt float64) {
	n := len(x)
	if len(next) != n {
		panic("ode: state length mismatch")
	}
	h.k1 = resize(h.k1, n)
	h.k2 = resize(h.k2, n)
	h.tmp = resize(h.tmp, n)
	sys(t, x, h.k1)
	for i := 0; i < n; i++ {
		h.tmp[i] = x[i] + dt*h.k1[i]
	}
	sys(t+dt, h.tmp, h.k2)
	for i := 0; i < n; i++ {
		next[i] = x[i] + dt/2*(h.k1[i]+h.k2[i])
	}
}

// RK4 is the classical fourth-order Runge–Kutta method.
type RK4 struct{ k1, k2, k3, k4, tmp []float64 }

// Name implements Integrator.
func (*RK4) Name() string { return "rk4" }

// Order implements Integrator.
func (*RK4) Order() int { return 4 }

// Step implements Integrator.
func (r *RK4) Step(sys System, t float64, x, next []float64, dt float64) {
	n := len(x)
	if len(next) != n {
		panic("ode: state length mismatch")
	}
	r.k1 = resize(r.k1, n)
	r.k2 = resize(r.k2, n)
	r.k3 = resize(r.k3, n)
	r.k4 = resize(r.k4, n)
	r.tmp = resize(r.tmp, n)

	sys(t, x, r.k1)
	for i := 0; i < n; i++ {
		r.tmp[i] = x[i] + dt/2*r.k1[i]
	}
	sys(t+dt/2, r.tmp, r.k2)
	for i := 0; i < n; i++ {
		r.tmp[i] = x[i] + dt/2*r.k2[i]
	}
	sys(t+dt/2, r.tmp, r.k3)
	for i := 0; i < n; i++ {
		r.tmp[i] = x[i] + dt*r.k3[i]
	}
	sys(t+dt, r.tmp, r.k4)
	for i := 0; i < n; i++ {
		next[i] = x[i] + dt/6*(r.k1[i]+2*r.k2[i]+2*r.k3[i]+r.k4[i])
	}
}

func resize(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Observer is called after every accepted step with the current time and
// state. The state slice is reused between calls; copy it to retain it.
type Observer func(t float64, x []float64)

// Integrate advances x0 from t0 to t1 with fixed step dt using integ,
// invoking obs (if non-nil) after every step, and returns the final state.
// The last step is shortened to land exactly on t1. It returns an error if
// the state becomes non-finite, which indicates a model or step-size
// problem in the plant.
func Integrate(sys System, x0 []float64, t0, t1, dt float64, integ Integrator, obs Observer) ([]float64, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("ode: step size %v must be positive", dt)
	}
	if t1 < t0 {
		return nil, fmt.Errorf("ode: t1 %v < t0 %v", t1, t0)
	}
	x := make([]float64, len(x0))
	next := make([]float64, len(x0))
	copy(x, x0)
	t := t0
	if obs != nil {
		obs(t, x)
	}
	for t < t1 {
		h := dt
		if t+h > t1 {
			h = t1 - t
		}
		if h <= 0 {
			break
		}
		integ.Step(sys, t, x, next, h)
		x, next = next, x
		t += h
		for _, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("ode: non-finite state at t=%v", t)
			}
		}
		if obs != nil {
			obs(t, x)
		}
	}
	return x, nil
}

// ErrStepTooSmall is returned by the adaptive integrator when the error
// controller drives the step below its minimum.
var ErrStepTooSmall = errors.New("ode: adaptive step size underflow")

// AdaptiveConfig tunes IntegrateAdaptive.
type AdaptiveConfig struct {
	// AbsTol and RelTol define the per-component error tolerance
	// tol_i = AbsTol + RelTol·|x_i|. Defaults: 1e-8 and 1e-6.
	AbsTol, RelTol float64
	// InitialStep is the first attempted step. Default (t1−t0)/100.
	InitialStep float64
	// MinStep aborts integration when the controller needs smaller steps.
	// Default 1e-12·(t1−t0).
	MinStep float64
	// MaxStep caps the step size. Default t1−t0.
	MaxStep float64
}

// IntegrateAdaptive integrates with the embedded Bogacki–Shampine 3(2)
// pair (the method behind MATLAB's ode23), adapting the step to the
// requested tolerance, and returns the final state.
func IntegrateAdaptive(sys System, x0 []float64, t0, t1 float64, cfg AdaptiveConfig, obs Observer) ([]float64, error) {
	if t1 < t0 {
		return nil, fmt.Errorf("ode: t1 %v < t0 %v", t1, t0)
	}
	span := t1 - t0
	if cfg.AbsTol <= 0 {
		cfg.AbsTol = 1e-8
	}
	if cfg.RelTol <= 0 {
		cfg.RelTol = 1e-6
	}
	if cfg.InitialStep <= 0 {
		cfg.InitialStep = span / 100
	}
	if cfg.MinStep <= 0 {
		cfg.MinStep = 1e-12 * span
	}
	if cfg.MaxStep <= 0 {
		cfg.MaxStep = span
	}
	n := len(x0)
	x := make([]float64, n)
	copy(x, x0)
	k1 := make([]float64, n)
	k2 := make([]float64, n)
	k3 := make([]float64, n)
	k4 := make([]float64, n)
	tmp := make([]float64, n)
	x3 := make([]float64, n)

	t := t0
	h := cfg.InitialStep
	if obs != nil {
		obs(t, x)
	}
	sys(t, x, k1) // FSAL: k1 holds f(t, x)
	for t < t1 {
		if t+h > t1 {
			h = t1 - t
		}
		// Bogacki–Shampine stages.
		for i := 0; i < n; i++ {
			tmp[i] = x[i] + h/2*k1[i]
		}
		sys(t+h/2, tmp, k2)
		for i := 0; i < n; i++ {
			tmp[i] = x[i] + 3*h/4*k2[i]
		}
		sys(t+3*h/4, tmp, k3)
		for i := 0; i < n; i++ {
			x3[i] = x[i] + h*(2.0/9*k1[i]+1.0/3*k2[i]+4.0/9*k3[i])
		}
		sys(t+h, x3, k4)
		// Error estimate: difference between 3rd- and 2nd-order solutions.
		var errNorm float64
		for i := 0; i < n; i++ {
			x2i := x[i] + h*(7.0/24*k1[i]+1.0/4*k2[i]+1.0/3*k3[i]+1.0/8*k4[i])
			tol := cfg.AbsTol + cfg.RelTol*math.Abs(x3[i])
			e := math.Abs(x3[i]-x2i) / tol
			if e > errNorm {
				errNorm = e
			}
		}
		if errNorm <= 1 {
			// Accept.
			t += h
			copy(x, x3)
			copy(k1, k4) // FSAL
			for _, v := range x {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, fmt.Errorf("ode: non-finite state at t=%v", t)
				}
			}
			if obs != nil {
				obs(t, x)
			}
		}
		// Step-size controller (both on accept and reject).
		fac := 0.9 * math.Pow(math.Max(errNorm, 1e-10), -1.0/3)
		fac = math.Min(5, math.Max(0.2, fac))
		h *= fac
		if h > cfg.MaxStep {
			h = cfg.MaxStep
		}
		if h < cfg.MinStep {
			return nil, ErrStepTooSmall
		}
	}
	return x, nil
}
