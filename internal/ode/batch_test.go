package ode

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// laneRHS builds a family of independent one-state plants shaped like the
// cabin thermal model: dx/dt = (q + a·(amb − x) + b·(ts − x)) / m, with
// time-varying forcing so every RK4 stage matters.
type laneRHS struct {
	q, a, amb, b, ts, m float64
}

func (l *laneRHS) eval(t, x float64) float64 {
	amb := l.amb + math.Sin(t/7)
	return (l.q + l.a*(amb-x) + l.b*(l.ts-x)) / l.m
}

// TestBatchRK4MatchesScalarIntegrate pins the tentpole's foundation: a
// batched IntegrateInto over N concatenated lanes produces, per lane,
// bit-identical state to scalar Integrate with RK4 on that lane alone —
// including the shortened final step when the span is not a multiple of
// dt.
func TestBatchRK4MatchesScalarIntegrate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, lanes := range []int{1, 3, 16} {
		for _, span := range []struct{ t0, t1, dt float64 }{
			{0, 1, 0.2},
			{3, 4, 0.3}, // 0.3 does not divide 1: exercises the shortened last step
			{10, 10.5, 0.1},
		} {
			rhs := make([]laneRHS, lanes)
			x := make([]float64, lanes)
			for i := range rhs {
				rhs[i] = laneRHS{
					q:   rng.Float64() * 500,
					a:   20 + rng.Float64()*30,
					amb: -10 + rng.Float64()*50,
					b:   100 + rng.Float64()*200,
					ts:  5 + rng.Float64()*40,
					m:   1e4 + rng.Float64()*1e5,
				}
				x[i] = -5 + rng.Float64()*40
			}

			// Scalar reference, one lane at a time.
			want := make([]float64, lanes)
			for i := range rhs {
				l := rhs[i]
				sys := func(tt float64, xs, dxdt []float64) { dxdt[0] = l.eval(tt, xs[0]) }
				out, err := Integrate(sys, []float64{x[i]}, span.t0, span.t1, span.dt, &RK4{}, nil)
				if err != nil {
					t.Fatal(err)
				}
				want[i] = out[0]
			}

			var br BatchRK4
			bsys := func(tt float64, xs, dxdt []float64) {
				for i := range xs {
					dxdt[i] = rhs[i].eval(tt, xs[i])
				}
			}
			if err := br.IntegrateInto(bsys, x, span.t0, span.t1, span.dt); err != nil {
				t.Fatal(err)
			}
			for i := range x {
				if x[i] != want[i] {
					t.Errorf("lanes=%d span=%+v lane %d: batch %v != scalar %v (diff %g)",
						lanes, span, i, x[i], want[i], x[i]-want[i])
				}
			}
		}
	}
}

// TestBatchRK4WorkspaceReuse pins that repeated calls reuse the
// workspace: after warm-up, IntegrateInto allocates nothing.
func TestBatchRK4WorkspaceReuse(t *testing.T) {
	var br BatchRK4
	x := make([]float64, 16)
	sys := func(tt float64, xs, dxdt []float64) {
		for i := range xs {
			dxdt[i] = -0.1 * xs[i]
		}
	}
	run := func() {
		if err := br.IntegrateInto(sys, x, 0, 1, 0.2); err != nil {
			t.Fatal(err)
		}
	}
	run() // size the workspace
	allocs := testing.AllocsPerRun(100, run)
	if allocs != 0 {
		t.Errorf("IntegrateInto allocated %v times per call after warm-up, want 0", allocs)
	}
}

// TestBatchRK4NonFiniteLane pins lane attribution: when one lane
// diverges, the error names it and the message matches the scalar shape.
func TestBatchRK4NonFiniteLane(t *testing.T) {
	var br BatchRK4
	x := []float64{1, 1, 1}
	sys := func(tt float64, xs, dxdt []float64) {
		dxdt[0] = 0
		dxdt[1] = math.NaN()
		dxdt[2] = 0
	}
	err := br.IntegrateInto(sys, x, 0, 1, 0.5)
	var nf *NonFiniteLaneError
	if !errors.As(err, &nf) {
		t.Fatalf("want *NonFiniteLaneError, got %v", err)
	}
	if nf.Lane != 1 {
		t.Errorf("lane = %d, want 1", nf.Lane)
	}
}

// TestBatchRK4ArgErrors mirrors Integrate's argument validation.
func TestBatchRK4ArgErrors(t *testing.T) {
	var br BatchRK4
	sys := func(tt float64, xs, dxdt []float64) { dxdt[0] = 0 }
	if err := br.IntegrateInto(sys, []float64{0}, 0, 1, 0); err == nil {
		t.Error("dt=0 accepted")
	}
	if err := br.IntegrateInto(sys, []float64{0}, 1, 0, 0.1); err == nil {
		t.Error("t1 < t0 accepted")
	}
}
