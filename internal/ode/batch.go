package ode

import (
	"fmt"
	"math"
)

// This file is the batched (structure-of-arrays) integration path: N
// independent one-state plants stepped in lockstep by a single RK4 time
// loop. The classical RK4 update is element-wise — each state component's
// next value depends only on its own k-stages — so integrating a
// concatenated state vector produces, per lane, exactly the bits the
// scalar path produces for that lane alone. The batch simulation core
// leans on that identity for its batch-vs-scalar equivalence contract.

// BatchSystem is the right-hand side of a batched ODE over
// structure-of-arrays state: one slot per vehicle lane. Implementations
// must write f(t, x) into dxdt (len(dxdt) == len(x)) and must not retain
// either slice. It is the same signature as System; the distinct type
// documents that slot i is lane i of an N-vehicle batch, not component i
// of one coupled system.
type BatchSystem func(t float64, x, dxdt []float64)

// NonFiniteLaneError reports which lane's state went non-finite during a
// batched integration, so the caller can attribute the failure to one
// scenario and re-run the rest.
type NonFiniteLaneError struct {
	// Lane is the index of the offending state slot.
	Lane int
	// T is the integration time after the step that produced the
	// non-finite value.
	T float64
}

// Error implements error, matching the scalar Integrate message shape.
func (e *NonFiniteLaneError) Error() string {
	return fmt.Sprintf("ode: non-finite state at t=%v (lane %d)", e.T, e.Lane)
}

// BatchRK4 is the classical fourth-order Runge–Kutta method over batched
// SoA state, with a workspace sized once and reused across every step of
// a sweep — the batch loop's integration is allocation-free after the
// first call.
type BatchRK4 struct {
	k1, k2, k3, k4, tmp []float64
}

// IntegrateInto advances x in place from t0 to t1 with fixed step dt,
// mirroring Integrate's time loop exactly: t accumulates by h, the last
// step is shortened to land on t1, and the state is checked for
// non-finite values after every step. The per-lane arithmetic is
// bit-identical to Integrate(..., &RK4{}, ...) on that lane alone. On a
// non-finite state it returns a *NonFiniteLaneError naming the lane.
func (r *BatchRK4) IntegrateInto(sys BatchSystem, x []float64, t0, t1, dt float64) error {
	if dt <= 0 {
		return fmt.Errorf("ode: step size %v must be positive", dt)
	}
	if t1 < t0 {
		return fmt.Errorf("ode: t1 %v < t0 %v", t1, t0)
	}
	n := len(x)
	r.k1 = resize(r.k1, n)
	r.k2 = resize(r.k2, n)
	r.k3 = resize(r.k3, n)
	r.k4 = resize(r.k4, n)
	r.tmp = resize(r.tmp, n)
	// Reslice to the loop bound so the compiler can prove every stage
	// access in range and drop the bounds checks.
	k1, k2, k3, k4, tmp := r.k1[:n], r.k2[:n], r.k3[:n], r.k4[:n], r.tmp[:n]

	t := t0
	for t < t1 {
		h := dt
		if t+h > t1 {
			h = t1 - t
		}
		if h <= 0 {
			break
		}
		sys(t, x, k1)
		for i := 0; i < n; i++ {
			tmp[i] = x[i] + h/2*k1[i]
		}
		sys(t+h/2, tmp, k2)
		for i := 0; i < n; i++ {
			tmp[i] = x[i] + h/2*k2[i]
		}
		sys(t+h/2, tmp, k3)
		for i := 0; i < n; i++ {
			tmp[i] = x[i] + h*k3[i]
		}
		sys(t+h, tmp, k4)
		// In-place update is safe: every stage derivative is already
		// computed, and lane i reads only its own slots.
		for i := 0; i < n; i++ {
			x[i] = x[i] + h/6*(k1[i]+2*k2[i]+2*k3[i]+k4[i])
		}
		t += h
		for i, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return &NonFiniteLaneError{Lane: i, T: t}
			}
		}
	}
	return nil
}
