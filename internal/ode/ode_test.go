package ode

import (
	"math"
	"testing"
)

// expDecay: ẋ = −x, x(0)=1, exact x(t)=e^{−t}.
func expDecay(t float64, x, dxdt []float64) { dxdt[0] = -x[0] }

// harmonic: ẍ = −x as a 2-state system; exact x(t)=cos t with x(0)=1, v(0)=0.
func harmonic(t float64, x, dxdt []float64) {
	dxdt[0] = x[1]
	dxdt[1] = -x[0]
}

func TestEulerExpDecay(t *testing.T) {
	x, err := Integrate(expDecay, []float64{1}, 0, 1, 1e-4, &Euler{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-1)
	if math.Abs(x[0]-want) > 1e-3 {
		t.Errorf("euler: x(1) = %v, want %v", x[0], want)
	}
}

func TestRK4ExpDecayHighAccuracy(t *testing.T) {
	x, err := Integrate(expDecay, []float64{1}, 0, 1, 0.01, &RK4{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-1)
	if math.Abs(x[0]-want) > 1e-9 {
		t.Errorf("rk4: x(1) = %v, want %v (err %v)", x[0], want, x[0]-want)
	}
}

func TestHeunBetweenEulerAndRK4(t *testing.T) {
	want := math.Exp(-1)
	dt := 0.05
	xe, _ := Integrate(expDecay, []float64{1}, 0, 1, dt, &Euler{}, nil)
	xh, _ := Integrate(expDecay, []float64{1}, 0, 1, dt, &Heun{}, nil)
	xr, _ := Integrate(expDecay, []float64{1}, 0, 1, dt, &RK4{}, nil)
	ee := math.Abs(xe[0] - want)
	eh := math.Abs(xh[0] - want)
	er := math.Abs(xr[0] - want)
	if !(er < eh && eh < ee) {
		t.Errorf("error ordering violated: euler %v, heun %v, rk4 %v", ee, eh, er)
	}
}

// TestConvergenceOrders verifies the empirical order of accuracy of each
// method by halving the step and measuring the error ratio.
func TestConvergenceOrders(t *testing.T) {
	for _, tc := range []struct {
		integ Integrator
		// Expected error ratio when halving dt is 2^order; accept a band.
		lo, hi float64
	}{
		{&Euler{}, 1.8, 2.2},
		{&Heun{}, 3.6, 4.4},
		{&RK4{}, 14, 18},
	} {
		errAt := func(dt float64) float64 {
			x, err := Integrate(expDecay, []float64{1}, 0, 1, dt, tc.integ, nil)
			if err != nil {
				t.Fatal(err)
			}
			return math.Abs(x[0] - math.Exp(-1))
		}
		e1 := errAt(0.02)
		e2 := errAt(0.01)
		ratio := e1 / e2
		if ratio < tc.lo || ratio > tc.hi {
			t.Errorf("%s: error ratio %v outside [%v, %v]", tc.integ.Name(), ratio, tc.lo, tc.hi)
		}
	}
}

func TestHarmonicEnergyRK4(t *testing.T) {
	// Over one period the RK4 solution should return near the start and
	// conserve energy to high accuracy.
	x, err := Integrate(harmonic, []float64{1, 0}, 0, 2*math.Pi, 0.001, &RK4{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-8 || math.Abs(x[1]) > 1e-8 {
		t.Errorf("harmonic after one period: %v", x)
	}
}

func TestIntegrateObserverAndExactLanding(t *testing.T) {
	var times []float64
	_, err := Integrate(expDecay, []float64{1}, 0, 1, 0.3, &RK4{}, func(tt float64, x []float64) {
		times = append(times, tt)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Steps: 0, .3, .6, .9, 1.0 (last shortened).
	if len(times) != 5 {
		t.Fatalf("observer called %d times, want 5 (%v)", len(times), times)
	}
	if times[len(times)-1] != 1 {
		t.Errorf("did not land on t1 exactly: %v", times)
	}
}

func TestIntegrateRejectsBadArgs(t *testing.T) {
	if _, err := Integrate(expDecay, []float64{1}, 0, 1, -0.1, &Euler{}, nil); err == nil {
		t.Error("negative dt accepted")
	}
	if _, err := Integrate(expDecay, []float64{1}, 1, 0, 0.1, &Euler{}, nil); err == nil {
		t.Error("t1 < t0 accepted")
	}
}

func TestIntegrateDetectsBlowup(t *testing.T) {
	blowup := func(t float64, x, dxdt []float64) { dxdt[0] = x[0] * x[0] }
	// ẋ = x² with x(0)=1 blows up at t=1; crossing it must be detected.
	if _, err := Integrate(blowup, []float64{1}, 0, 2, 0.01, &RK4{}, nil); err == nil {
		t.Error("finite-time blowup not detected")
	}
}

func TestZeroSpanIntegration(t *testing.T) {
	x, err := Integrate(expDecay, []float64{5}, 2, 2, 0.1, &RK4{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 5 {
		t.Errorf("zero-span integration changed state: %v", x)
	}
}

func TestAdaptiveExpDecay(t *testing.T) {
	x, err := IntegrateAdaptive(expDecay, []float64{1}, 0, 5, AdaptiveConfig{AbsTol: 1e-9, RelTol: 1e-9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-5)
	if math.Abs(x[0]-want) > 1e-6 {
		t.Errorf("adaptive: x(5) = %v, want %v", x[0], want)
	}
}

func TestAdaptiveHarmonic(t *testing.T) {
	x, err := IntegrateAdaptive(harmonic, []float64{1, 0}, 0, 2*math.Pi, AdaptiveConfig{AbsTol: 1e-10, RelTol: 1e-8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-5 || math.Abs(x[1]) > 1e-5 {
		t.Errorf("adaptive harmonic after one period: %v", x)
	}
}

func TestAdaptiveUsesFewerStepsForSmoothProblem(t *testing.T) {
	var steps int
	_, err := IntegrateAdaptive(expDecay, []float64{1}, 0, 10, AdaptiveConfig{AbsTol: 1e-6, RelTol: 1e-4}, func(float64, []float64) { steps++ })
	if err != nil {
		t.Fatal(err)
	}
	if steps > 200 {
		t.Errorf("adaptive integrator used %d steps for a smooth decay; controller not adapting", steps)
	}
}

func TestStepDoesNotAliasInput(t *testing.T) {
	x := []float64{1}
	next := []float64{0}
	(&RK4{}).Step(expDecay, 0, x, next, 0.1)
	if x[0] != 1 {
		t.Error("Step modified the input state")
	}
	if next[0] == 0 {
		t.Error("Step did not write the output state")
	}
}

func TestIntegratorMetadata(t *testing.T) {
	for _, tc := range []struct {
		i     Integrator
		name  string
		order int
	}{
		{&Euler{}, "euler", 1},
		{&Heun{}, "heun", 2},
		{&RK4{}, "rk4", 4},
	} {
		if tc.i.Name() != tc.name || tc.i.Order() != tc.order {
			t.Errorf("metadata wrong for %T: %s/%d", tc.i, tc.i.Name(), tc.i.Order())
		}
	}
}
