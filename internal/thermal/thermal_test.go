package thermal

import (
	"math"
	"math/rand"
	"testing"
)

func TestValidate(t *testing.T) {
	cfg := DefaultThermal()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Network.PackHeatCapJK = 0 },
		func(c *Config) { c.Network.UAPackCabinWK = -1 },
		func(c *Config) { c.Network.HeaterEff = 1.5 },
		func(c *Config) { c.Network.ChillerCOP = 0 },
		func(c *Config) { c.Network.MaxHeaterW = -1 },
		func(c *Config) { c.HeatPump.COPAt7C = 0 },
		func(c *Config) { c.HeatPump.COPMin = 2; c.HeatPump.COPMax = 1 },
		func(c *Config) { c.HeatPump.PTCEff = 0 },
		func(c *Config) { c.PackFromAmbient = false; c.InitialPackC = math.NaN() },
	}
	for i, mut := range bad {
		c := DefaultThermal()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestHeatPumpCurve(t *testing.T) {
	hp := DefaultHeatPump()
	if got := hp.COP(7); math.Abs(got-3.0) > 1e-12 {
		t.Errorf("COP(7) = %v, want 3.0 (rated point)", got)
	}
	if hp.COP(-10) >= hp.COP(0) || hp.COP(0) >= hp.COP(10) {
		t.Error("COP must increase with ambient")
	}
	if got := hp.COP(-100); got != hp.COPMin {
		t.Errorf("COP(-100) = %v, want clamp at %v", got, hp.COPMin)
	}
	if got := hp.COP(100); got != hp.COPMax {
		t.Errorf("COP(100) = %v, want clamp at %v", got, hp.COPMax)
	}
	// Mode decision: PTC strictly below cutoff, heat pump at and above.
	if eff, ptc := hp.Heating(-20); !ptc || eff != hp.PTCEff {
		t.Errorf("Heating(-20) = (%v, %v), want PTC fallback at %v", eff, ptc, hp.PTCEff)
	}
	if eff, ptc := hp.Heating(hp.CutoffC); ptc || eff != hp.COP(hp.CutoffC) {
		t.Errorf("Heating(cutoff) = (%v, %v), want heat pump", eff, ptc)
	}
	if eff, ptc := hp.Heating(0); ptc || eff <= 1 {
		t.Errorf("Heating(0) = (%v, %v), want heat-pump COP > 1", eff, ptc)
	}
}

func TestPackResistanceCold(t *testing.T) {
	net := DefaultNetwork()
	if got := net.PackResistanceOhm(25); math.Abs(got-net.PackResistance25Ohm) > 1e-15 {
		t.Errorf("R(25) = %v, want reference %v", got, net.PackResistance25Ohm)
	}
	r20 := net.PackResistanceOhm(-20)
	if ratio := r20 / net.PackResistance25Ohm; ratio < 2 || ratio > 2.5 {
		t.Errorf("R(-20)/R(25) = %v, want ≈ 2.2 (cold-electrolyte penalty)", ratio)
	}
	if net.PackResistanceOhm(40) >= net.PackResistance25Ohm {
		t.Error("resistance must fall above the reference temperature")
	}
}

func TestEffectivePackAmbientUA(t *testing.T) {
	net := DefaultNetwork()
	got := net.EffectivePackAmbientUA()
	series := net.UAPackCoolantWK * net.UACoolantAmbientWK / (net.UAPackCoolantWK + net.UACoolantAmbientWK)
	want := net.UAPackAmbientWK + series
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("effective UA = %v, want %v", got, want)
	}
	// Degenerate loop: no coolant path leaves only the direct conductance.
	net.UAPackCoolantWK, net.UACoolantAmbientWK = 0, 0
	if got := net.EffectivePackAmbientUA(); got != net.UAPackAmbientWK {
		t.Errorf("effective UA without loop = %v, want %v", got, net.UAPackAmbientWK)
	}
}

// TestEnergyConservationProperty drives the network through random
// schedules (cabin/ambient excursions, Joule heat bursts, heater/chiller
// commands beyond their clamps, irregular step sizes) and checks the
// enthalpy balance: the change in stored energy must equal the
// integrated boundary heat to roundoff.
func TestEnergyConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 50; trial++ {
		cfg := DefaultThermal()
		cfg.PackFromAmbient = false
		cfg.InitialPackC = -30 + 70*rng.Float64()
		s, err := NewState(cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		var absFlowJ float64
		steps := 200 + rng.Intn(400)
		for i := 0; i < steps; i++ {
			cab := -10 + 40*rng.Float64()
			amb := -30 + 60*rng.Float64()
			joule := 3000 * rng.Float64()
			bh := -500 + 6000*rng.Float64() // exercises both clamps
			bc := -500 + 3000*rng.Float64()
			dt := 0.5 + 9.5*rng.Float64()
			f := s.Step(cab, amb, joule, bh, bc, dt)
			absFlowJ += (math.Abs(f.PackJouleW) + f.HeaterHeatW + f.ChillerHeatW +
				math.Abs(f.PackToCabinW) + math.Abs(f.PackToAmbientW) + math.Abs(f.CoolantToAmbientW)) * dt
			if f.HeaterElecW < 0 || f.HeaterElecW > cfg.Network.MaxHeaterW {
				t.Fatalf("heater electrical %v outside [0, %v]", f.HeaterElecW, cfg.Network.MaxHeaterW)
			}
			if f.ChillerElecW < 0 || f.ChillerElecW > cfg.Network.MaxChillerW {
				t.Fatalf("chiller electrical %v outside [0, %v]", f.ChillerElecW, cfg.Network.MaxChillerW)
			}
		}
		tol := 1e-9 * (absFlowJ + math.Abs(s.storedJ()))
		if defect := math.Abs(s.EnergyDefectJ()); defect > tol {
			t.Fatalf("trial %d: energy defect %v J exceeds roundoff tolerance %v J", trial, defect, tol)
		}
	}
}

// TestSnapshotBitExact interleaves snapshot/restore at random steps with
// an uninterrupted reference run and requires bit-identical state.
func TestSnapshotBitExact(t *testing.T) {
	cfg := DefaultThermal()
	ref, err := NewState(cfg, -20)
	if err != nil {
		t.Fatal(err)
	}
	live, _ := NewState(cfg, -20)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		cab := -5 + 25*rng.Float64()
		amb := -20 + 10*rng.Float64()
		joule := 2000 * rng.Float64()
		bh := 4000 * rng.Float64()
		bc := 1000 * rng.Float64()
		ref.Step(cab, amb, joule, bh, bc, 5)
		live.Step(cab, amb, joule, bh, bc, 5)
		if rng.Intn(20) == 0 {
			fresh, _ := NewState(cfg, -20)
			if err := fresh.Restore(live.Snapshot()); err != nil {
				t.Fatal(err)
			}
			live = fresh
		}
	}
	if ref.Snapshot() != live.Snapshot() {
		t.Fatalf("state diverged after snapshot/restore:\nref  %+v\nlive %+v", ref.Snapshot(), live.Snapshot())
	}
}

func TestRestoreRejectsNonFinite(t *testing.T) {
	s, err := NewState(DefaultThermal(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sn := s.Snapshot()
	sn.PackC = math.Inf(1)
	if err := s.Restore(sn); err == nil {
		t.Fatal("non-finite snapshot accepted")
	}
}

// TestColdSoakEquilibrium pins the physics direction: an idle pack parked
// at −20 °C relaxes toward ambient; a heated pack climbs.
func TestColdSoakEquilibrium(t *testing.T) {
	cfg := DefaultThermal()
	cfg.PackFromAmbient = false
	cfg.InitialPackC = 20
	s, _ := NewState(cfg, -20)
	for i := 0; i < 3600; i++ { // 10 h park, 10 s steps
		s.Step(-20, -20, 0, 0, 0, 10)
	}
	if s.PackC() > 0 || s.PackC() < -20 {
		t.Errorf("parked pack at %v °C, want relaxed toward −20", s.PackC())
	}
	heated, _ := NewState(cfg, -20)
	start := heated.PackC()
	for i := 0; i < 360; i++ { // 1 h with the 4 kW heater
		heated.Step(-20, -20, 0, 4000, 0, 10)
	}
	if heated.PackC() <= start {
		t.Errorf("heated pack fell from %v to %v °C", start, heated.PackC())
	}
	if heated.MinPackC() > start || heated.MaxPackC() < heated.PackC() {
		t.Errorf("envelope [%v, %v] inconsistent", heated.MinPackC(), heated.MaxPackC())
	}
}
