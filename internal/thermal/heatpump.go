package thermal

import "errors"

// HeatPumpParams models the heat-pump HVAC heating actuator: an
// air-source heat pump whose COP falls linearly with ambient temperature
// (evaporator capacity loss, defrost duty) until, below CutoffC, the
// compressor is abandoned for the resistive PTC element. The cooling
// side is unchanged from the paper's vapor-compression model
// (cabin.Params.EtaCool); only heating mode differs.
type HeatPumpParams struct {
	// COPAt7C is the rated heating COP at the EN 14511 7 °C test point.
	COPAt7C float64
	// COPSlopePerK is the COP change per kelvin of ambient.
	COPSlopePerK float64
	// COPMin and COPMax clamp the curve (COPMin ≈ 1 is resistive parity).
	COPMin, COPMax float64
	// CutoffC is the ambient below which the heat pump cannot run
	// (refrigerant density/defrost limits) and heating falls back to the
	// PTC resistive element.
	CutoffC float64
	// PTCEff is the PTC fallback efficiency (heat per electrical watt).
	// The default equals cabin.Default().EtaHeat so the PTC mode is
	// exactly the paper's resistive heater.
	PTCEff float64
}

// DefaultHeatPump returns a production-typical R1234yf automotive heat
// pump: COP 3.0 at 7 °C falling 0.09/K, floor at resistive parity,
// compressor cutoff at −15 °C.
func DefaultHeatPump() HeatPumpParams {
	return HeatPumpParams{
		COPAt7C:      3.0,
		COPSlopePerK: 0.09,
		COPMin:       1.0,
		COPMax:       4.5,
		CutoffC:      -15,
		PTCEff:       0.9,
	}
}

// Validate reports invalid heat-pump parameters.
func (p *HeatPumpParams) Validate() error {
	switch {
	case p.COPAt7C <= 0:
		return errors.New("thermal: heat-pump rated COP must be positive")
	case p.COPSlopePerK < 0:
		return errors.New("thermal: heat-pump COP slope must be nonnegative")
	case p.COPMin <= 0 || p.COPMax < p.COPMin:
		return errors.New("thermal: heat-pump COP clamp must satisfy 0 < min ≤ max")
	case p.PTCEff <= 0 || p.PTCEff > 1:
		return errors.New("thermal: PTC efficiency must be in (0, 1]")
	}
	return nil
}

// COP returns the clamped heat-pump heating COP at the given ambient.
// It does not apply the cutoff — use Heating for the mode decision.
func (p *HeatPumpParams) COP(ambientC float64) float64 {
	cop := p.COPAt7C + p.COPSlopePerK*(ambientC-7)
	if cop < p.COPMin {
		cop = p.COPMin
	}
	if cop > p.COPMax {
		cop = p.COPMax
	}
	return cop
}

// Heating returns the effective heating conversion factor (heat delivered
// per electrical watt) at the given ambient and whether the PTC fallback
// is active: below CutoffC the heat pump cannot run and eff = PTCEff;
// otherwise eff = COP(ambient).
func (p *HeatPumpParams) Heating(ambientC float64) (eff float64, ptc bool) {
	if ambientC < p.CutoffC {
		return p.PTCEff, true
	}
	return p.COP(ambientC), false
}
