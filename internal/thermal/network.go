// Package thermal implements the cold-climate thermal network the paper
// scopes out (Sec. II-D): a lumped-parameter cabin ↔ pack ↔ coolant loop
// ↔ ambient model with UA conductances, an electric battery
// heater/chiller branch, and a heat-pump HVAC actuator with a
// COP-vs-ambient curve degrading to a resistive PTC fallback below
// ≈ −15 °C. The conductance and heat-capacity coefficients follow the
// V2G-Sim battery-degradation model (SNIPPETS.md): M_b = 182 000 J/K pack
// heat capacity, K_ab = 4.343 W/K pack↔ambient, K_bc = 3.468 W/K
// pack↔cabin. The network keeps an explicit energy ledger so the
// conservation property (Δ stored enthalpy = net boundary heat) holds to
// roundoff and is testable over arbitrary schedules.
package thermal

import (
	"errors"
	"fmt"
	"math"
)

// NetworkParams defines the lumped thermal network around the battery
// pack: two dynamic nodes (pack, coolant loop) exchanging heat with the
// cabin and ambient (both exogenous to the network) through constant UA
// conductances, plus the electric battery heater/chiller branch attached
// to the pack node.
type NetworkParams struct {
	// PackHeatCapJK is the pack lumped heat capacity (V2G-Sim M_b).
	PackHeatCapJK float64
	// CoolantHeatCapJK is the coolant-loop heat capacity (fluid + plates).
	CoolantHeatCapJK float64
	// UAPackAmbientWK is the direct pack↔ambient conductance through the
	// enclosure (V2G-Sim K_ab).
	UAPackAmbientWK float64
	// UAPackCabinWK is the pack↔cabin conductance through the floor pan
	// (V2G-Sim K_bc).
	UAPackCabinWK float64
	// UAPackCoolantWK couples the pack to the coolant loop (cold plates).
	UAPackCoolantWK float64
	// UACoolantAmbientWK couples the coolant loop to ambient (front
	// radiator, passive — no active refrigeration on this path).
	UACoolantAmbientWK float64
	// PackResistance25Ohm is the pack DC resistance at 25 °C; Joule heat
	// is I²·R(T) with R rising exponentially as the electrolyte cools.
	PackResistance25Ohm float64
	// ResistanceTempCoef is the per-kelvin exponential growth rate of the
	// pack resistance below (and shrink above) 25 °C: R(T) = R25 ·
	// exp(coef·(25 − T)). At the default 0.018/K the resistance is ≈2.2×
	// at −20 °C — the cold-cranking penalty that makes pack
	// preconditioning worth grid energy.
	ResistanceTempCoef float64
	// HeaterEff is the electric pack heater efficiency (heat delivered
	// per electrical watt; resistive film heaters are near-unity).
	HeaterEff float64
	// ChillerCOP is the pack chiller coefficient of performance (heat
	// removed per electrical watt).
	ChillerCOP float64
	// MaxHeaterW and MaxChillerW bound the branch electrical commands.
	MaxHeaterW, MaxChillerW float64
}

// DefaultNetwork returns the 24 kWh-pack network used in the cold-climate
// experiments. Heat capacities and the pack↔ambient / pack↔cabin
// conductances are the V2G-Sim coefficients; the coolant-loop values are
// sized for a small glycol loop with passive radiator.
func DefaultNetwork() NetworkParams {
	return NetworkParams{
		PackHeatCapJK:       182000, // V2G-Sim M_b
		CoolantHeatCapJK:    25000,
		UAPackAmbientWK:     4.343, // V2G-Sim K_ab
		UAPackCabinWK:       3.468, // V2G-Sim K_bc
		UAPackCoolantWK:     220,
		UACoolantAmbientWK:  15,
		PackResistance25Ohm: 0.09,
		ResistanceTempCoef:  0.018,
		HeaterEff:           0.92,
		ChillerCOP:          2.0,
		MaxHeaterW:          4000,
		MaxChillerW:         1500,
	}
}

// Validate reports invalid network parameters.
func (p *NetworkParams) Validate() error {
	switch {
	case p.PackHeatCapJK <= 0 || p.CoolantHeatCapJK <= 0:
		return errors.New("thermal: node heat capacities must be positive")
	case p.UAPackAmbientWK < 0 || p.UAPackCabinWK < 0 || p.UAPackCoolantWK < 0 || p.UACoolantAmbientWK < 0:
		return errors.New("thermal: UA conductances must be nonnegative")
	case p.PackResistance25Ohm < 0:
		return errors.New("thermal: pack resistance must be nonnegative")
	case p.ResistanceTempCoef < 0:
		return errors.New("thermal: resistance temperature coefficient must be nonnegative")
	case p.HeaterEff <= 0 || p.HeaterEff > 1:
		return errors.New("thermal: heater efficiency must be in (0, 1]")
	case p.ChillerCOP <= 0:
		return errors.New("thermal: chiller COP must be positive")
	case p.MaxHeaterW < 0 || p.MaxChillerW < 0:
		return errors.New("thermal: branch power limits must be nonnegative")
	}
	return nil
}

// PackResistanceOhm returns the temperature-dependent pack DC resistance
// R(T) = R25 · exp(coef · (25 − T)).
func (p *NetworkParams) PackResistanceOhm(tempC float64) float64 {
	return p.PackResistance25Ohm * math.Exp(p.ResistanceTempCoef*(25-tempC))
}

// EffectivePackAmbientUA folds the coolant loop into a single steady-state
// pack↔ambient conductance: the direct enclosure path in parallel with
// the series pack↔coolant↔ambient path. The MPC's prediction model uses
// this two-node reduction so the pack-temperature dynamics stay one
// state per stage.
func (p *NetworkParams) EffectivePackAmbientUA() float64 {
	series := 0.0
	if s := p.UAPackCoolantWK + p.UACoolantAmbientWK; s > 0 {
		series = p.UAPackCoolantWK * p.UACoolantAmbientWK / s
	}
	return p.UAPackAmbientWK + series
}

// Config bundles everything the simulator needs to run the thermal
// subsystem: the network, the heat-pump HVAC actuator, and the pack's
// initial condition. The struct is pointer-free so %+v formatting (the
// runner's fingerprint and cache-key scheme) is deterministic.
type Config struct {
	Network  NetworkParams
	HeatPump HeatPumpParams
	// InitialPackC is the pack temperature at drive start. Ignored when
	// PackFromAmbient is set, in which case the pack starts soaked at the
	// scenario ambient (the overnight-parking condition).
	InitialPackC    float64
	PackFromAmbient bool
}

// DefaultThermal returns the cold-climate default: V2G-Sim network,
// production heat-pump curve, pack soaked at ambient.
func DefaultThermal() Config {
	return Config{
		Network:         DefaultNetwork(),
		HeatPump:        DefaultHeatPump(),
		PackFromAmbient: true,
	}
}

// Validate reports an invalid configuration.
func (c *Config) Validate() error {
	if err := c.Network.Validate(); err != nil {
		return err
	}
	if err := c.HeatPump.Validate(); err != nil {
		return err
	}
	if !c.PackFromAmbient && (math.IsNaN(c.InitialPackC) || math.IsInf(c.InitialPackC, 0)) {
		return fmt.Errorf("thermal: initial pack temperature %v must be finite", c.InitialPackC)
	}
	return nil
}
