package thermal

import (
	"fmt"
	"math"
)

// State is the mutable thermal-network state: the two dynamic node
// temperatures plus the accumulators (pack statistics and the energy
// ledger). Cabin and ambient temperatures are exogenous inputs to Step —
// the cabin has its own ODE in internal/cabin, and ambient is the
// scenario boundary condition.
type State struct {
	net NetworkParams
	hp  HeatPumpParams

	packC    float64
	coolantC float64

	packTimeIntegral float64
	elapsedS         float64
	packMinC         float64
	packMaxC         float64

	// Energy ledger: boundaryJ integrates every heat flow crossing the
	// network boundary (Joule heat, heater/chiller branch heat, cabin and
	// ambient conduction) with exactly the fluxes the explicit-Euler
	// update uses, so stored-enthalpy change minus boundaryJ is zero to
	// roundoff — the conservation property the tests pin.
	boundaryJ  float64
	storedRefJ float64
}

// NewState validates the configuration and initializes the network with
// the pack (and coolant loop) at the configured initial temperature, or
// soaked at ambientC when PackFromAmbient is set.
func NewState(cfg Config, ambientC float64) (*State, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t0 := cfg.InitialPackC
	if cfg.PackFromAmbient {
		t0 = ambientC
	}
	s := &State{net: cfg.Network, hp: cfg.HeatPump, packC: t0, coolantC: t0, packMinC: t0, packMaxC: t0}
	s.storedRefJ = s.storedJ()
	return s, nil
}

// storedJ returns the network's stored enthalpy relative to 0 °C.
func (s *State) storedJ() float64 {
	return s.net.PackHeatCapJK*s.packC + s.net.CoolantHeatCapJK*s.coolantC
}

// Flows reports one step's heat and electrical flows in watts, sign
// conventions as named (PackToCabinW > 0 means the pack heats the cabin).
type Flows struct {
	PackJouleW        float64
	PackToCabinW      float64
	PackToAmbientW    float64
	PackToCoolantW    float64
	CoolantToAmbientW float64
	// HeaterHeatW is heat delivered into the pack by the electric
	// heater; ChillerHeatW is heat pumped out of the pack by the chiller.
	HeaterHeatW, ChillerHeatW float64
	// HeaterElecW and ChillerElecW are the clamped electrical draws.
	HeaterElecW, ChillerElecW float64
}

// Step advances the network by dt seconds under the given cabin and
// ambient temperatures, pack Joule heat (I²·R, W), and battery
// heater/chiller electrical commands (W, clamped to the configured
// limits). It uses a single explicit-Euler step — the pack time constant
// (≈ C/ΣUA ~ hours) is far above any control period used here.
func (s *State) Step(cabinC, ambientC, jouleW, heaterElecW, chillerElecW, dt float64) Flows {
	bh := math.Min(math.Max(heaterElecW, 0), s.net.MaxHeaterW)
	bc := math.Min(math.Max(chillerElecW, 0), s.net.MaxChillerW)

	f := Flows{
		PackJouleW:        jouleW,
		PackToCabinW:      s.net.UAPackCabinWK * (s.packC - cabinC),
		PackToAmbientW:    s.net.UAPackAmbientWK * (s.packC - ambientC),
		PackToCoolantW:    s.net.UAPackCoolantWK * (s.packC - s.coolantC),
		CoolantToAmbientW: s.net.UACoolantAmbientWK * (s.coolantC - ambientC),
		HeaterHeatW:       s.net.HeaterEff * bh,
		ChillerHeatW:      s.net.ChillerCOP * bc,
		HeaterElecW:       bh,
		ChillerElecW:      bc,
	}

	qPack := jouleW + f.HeaterHeatW - f.ChillerHeatW - f.PackToCabinW - f.PackToAmbientW - f.PackToCoolantW
	qCool := f.PackToCoolantW - f.CoolantToAmbientW
	s.packC += qPack * dt / s.net.PackHeatCapJK
	s.coolantC += qCool * dt / s.net.CoolantHeatCapJK

	// Boundary heat: everything except the internal pack↔coolant flow,
	// which cancels between the two node updates.
	s.boundaryJ += (jouleW + f.HeaterHeatW - f.ChillerHeatW - f.PackToCabinW - f.PackToAmbientW - f.CoolantToAmbientW) * dt

	s.packTimeIntegral += s.packC * dt
	s.elapsedS += dt
	if s.packC < s.packMinC {
		s.packMinC = s.packC
	}
	if s.packC > s.packMaxC {
		s.packMaxC = s.packC
	}
	return f
}

// PackC returns the current pack temperature.
func (s *State) PackC() float64 { return s.packC }

// CoolantC returns the current coolant-loop temperature.
func (s *State) CoolantC() float64 { return s.coolantC }

// MinPackC and MaxPackC return the pack temperature envelope so far.
func (s *State) MinPackC() float64 { return s.packMinC }
func (s *State) MaxPackC() float64 { return s.packMaxC }

// MeanPackC returns the time-averaged pack temperature (the initial
// temperature before any step).
func (s *State) MeanPackC() float64 {
	if s.elapsedS == 0 {
		return s.packC
	}
	return s.packTimeIntegral / s.elapsedS
}

// PackResistanceOhm returns the pack DC resistance at the current pack
// temperature.
func (s *State) PackResistanceOhm() float64 { return s.net.PackResistanceOhm(s.packC) }

// Heating returns the HVAC heating conversion factor and PTC mode at the
// given ambient (delegates to the heat-pump curve).
func (s *State) Heating(ambientC float64) (eff float64, ptc bool) { return s.hp.Heating(ambientC) }

// EnergyDefectJ returns stored-enthalpy change minus integrated boundary
// heat — identically zero in exact arithmetic, and within a few ULPs of
// the ledger magnitude in floating point (the conservation invariant).
func (s *State) EnergyDefectJ() float64 {
	return (s.storedJ() - s.storedRefJ) - s.boundaryJ
}

// Snapshot is the serializable mutable state of the network: everything
// Step touches. Parameters are not captured — a snapshot restores into a
// State built from the same Config, after which Step continues
// bit-for-bit.
type Snapshot struct {
	PackC            float64 `json:"pack_c"`
	CoolantC         float64 `json:"coolant_c"`
	PackTimeIntegral float64 `json:"pack_time_integral"`
	ElapsedS         float64 `json:"elapsed_s"`
	PackMinC         float64 `json:"pack_min_c"`
	PackMaxC         float64 `json:"pack_max_c"`
	BoundaryJ        float64 `json:"boundary_j"`
	StoredRefJ       float64 `json:"stored_ref_j"`
}

// Snapshot captures the network state for checkpointing.
func (s *State) Snapshot() Snapshot {
	return Snapshot{
		PackC: s.packC, CoolantC: s.coolantC,
		PackTimeIntegral: s.packTimeIntegral, ElapsedS: s.elapsedS,
		PackMinC: s.packMinC, PackMaxC: s.packMaxC,
		BoundaryJ: s.boundaryJ, StoredRefJ: s.storedRefJ,
	}
}

// Restore replaces the mutable state with a snapshot. Non-finite node
// temperatures are rejected (a corrupt checkpoint must not poison the
// co-simulation).
func (s *State) Restore(sn Snapshot) error {
	for _, v := range []float64{sn.PackC, sn.CoolantC} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("thermal: snapshot node temperature %v is not finite", v)
		}
	}
	s.packC, s.coolantC = sn.PackC, sn.CoolantC
	s.packTimeIntegral, s.elapsedS = sn.PackTimeIntegral, sn.ElapsedS
	s.packMinC, s.packMaxC = sn.PackMinC, sn.PackMaxC
	s.boundaryJ, s.storedRefJ = sn.BoundaryJ, sn.StoredRefJ
	return nil
}
