package cabin

import (
	"math"
	"testing"
	"testing/quick"

	"evclimate/internal/ode"
)

func defaultModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDefaultParamsValid(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.ThermalCapacitanceJK = 0 },
		func(p *Params) { p.AirCpJKgK = -1 },
		func(p *Params) { p.ShellUAWK = -1 },
		func(p *Params) { p.EtaHeat = 0 },
		func(p *Params) { p.EtaCool = 1.2 },
		func(p *Params) { p.FanCoeffW = -1 },
		func(p *Params) { p.MaxAirFlowKgS = p.MinAirFlowKgS },
		func(p *Params) { p.MaxHeaterTempC = p.MinCoilTempC },
		func(p *Params) { p.MaxRecirc = 1.5 },
		func(p *Params) { p.MaxFanPowerW = 0 },
	}
	for i, mutate := range cases {
		p := Default()
		mutate(&p)
		if _, err := New(p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestMixTempConvexCombination(t *testing.T) {
	m := defaultModel(t)
	if got := m.MixTemp(30, 20, 0); got != 30 {
		t.Errorf("dr=0 should give outside temp, got %v", got)
	}
	if got := m.MixTemp(30, 20, 1); got != 20 {
		t.Errorf("dr=1 should give cabin temp, got %v", got)
	}
	if got := m.MixTemp(30, 20, 0.5); got != 25 {
		t.Errorf("dr=0.5 mix = %v, want 25", got)
	}
	// Property: always between the two inlet temperatures.
	f := func(to, tz, rawDr float64) bool {
		if math.IsNaN(to) || math.IsNaN(tz) || math.IsInf(to, 0) || math.IsInf(tz, 0) {
			return true
		}
		dr := math.Mod(math.Abs(rawDr), 1)
		tm := m.MixTemp(to, tz, dr)
		lo, hi := math.Min(to, tz), math.Max(to, tz)
		return tm >= lo-1e-9 && tm <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowersEquations(t *testing.T) {
	m := defaultModel(t)
	p := m.Params()
	in := Inputs{SupplyTempC: 40, CoilTempC: 20, Recirc: 0.5, AirFlowKgS: 0.1}
	mix := 25.0
	pw := m.PowersFor(in, mix)
	// Eq. 10: Ph = cp/ηh·mz·(Ts−Tc).
	wantH := p.AirCpJKgK / p.EtaHeat * 0.1 * 20
	if math.Abs(pw.HeaterW-wantH) > 1e-9 {
		t.Errorf("heater = %v, want %v", pw.HeaterW, wantH)
	}
	// Eq. 11: Pc = cp/ηc·mz·(Tm−Tc).
	wantC := p.AirCpJKgK / p.EtaCool * 0.1 * 5
	if math.Abs(pw.CoolerW-wantC) > 1e-9 {
		t.Errorf("cooler = %v, want %v", pw.CoolerW, wantC)
	}
	// Eq. 12: Pf = kf·mz².
	wantF := p.FanCoeffW * 0.01
	if math.Abs(pw.FanW-wantF) > 1e-9 {
		t.Errorf("fan = %v, want %v", pw.FanW, wantF)
	}
	if math.Abs(pw.Total()-(wantH+wantC+wantF)) > 1e-9 {
		t.Errorf("total mismatch")
	}
}

func TestPowersNeverNegative(t *testing.T) {
	m := defaultModel(t)
	f := func(ts, tc, mixRaw, mzRaw float64) bool {
		for _, v := range []float64{ts, tc, mixRaw, mzRaw} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		in := Inputs{
			SupplyTempC: math.Mod(ts, 80),
			CoilTempC:   math.Mod(tc, 80),
			AirFlowKgS:  math.Abs(math.Mod(mzRaw, 0.25)),
		}
		pw := m.PowersFor(in, math.Mod(mixRaw, 50))
		return pw.HeaterW >= 0 && pw.CoolerW >= 0 && pw.FanW >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFanPowerQuadratic(t *testing.T) {
	m := defaultModel(t)
	in1 := Inputs{SupplyTempC: 24, CoilTempC: 24, AirFlowKgS: 0.1}
	in2 := in1
	in2.AirFlowKgS = 0.2
	p1 := m.PowersFor(in1, 24).FanW
	p2 := m.PowersFor(in2, 24).FanW
	if math.Abs(p2/p1-4) > 1e-9 {
		t.Errorf("fan power ratio = %v, want 4", p2/p1)
	}
}

func TestThermalLoadDirection(t *testing.T) {
	m := defaultModel(t)
	// Hot outside heats the cabin; cold outside cools it; solar adds.
	if q := m.ThermalLoad(24, 35, 0); q <= 0 {
		t.Errorf("hot-day load = %v, want > 0", q)
	}
	if q := m.ThermalLoad(24, 0, 0); q >= 0 {
		t.Errorf("cold-day load = %v, want < 0", q)
	}
	if q1, q2 := m.ThermalLoad(24, 35, 0), m.ThermalLoad(24, 35, 400); q2-q1 != 400 {
		t.Errorf("solar offset: %v → %v", q1, q2)
	}
	// At equal temperatures the only load is solar.
	if q := m.ThermalLoad(24, 24, 250); q != 250 {
		t.Errorf("equal-temp load = %v, want 250", q)
	}
}

func TestCabinDerivativeSigns(t *testing.T) {
	m := defaultModel(t)
	// Cold supply air on a hot day must cool the cabin.
	cool := Inputs{SupplyTempC: 10, CoilTempC: 10, Recirc: 0.5, AirFlowKgS: 0.2}
	if d := m.CabinDerivative(30, cool, 35, 0); d >= 0 {
		t.Errorf("cooling derivative = %v, want < 0", d)
	}
	// Warm supply air on a cold day must heat it.
	heat := Inputs{SupplyTempC: 50, CoilTempC: 0, Recirc: 0.5, AirFlowKgS: 0.2}
	if d := m.CabinDerivative(15, heat, 0, 0); d <= 0 {
		t.Errorf("heating derivative = %v, want > 0", d)
	}
}

func TestCabinEquilibrium(t *testing.T) {
	// With supply at cabin temperature and no loads, dTz/dt = 0.
	m := defaultModel(t)
	in := Inputs{SupplyTempC: 24, CoilTempC: 24, Recirc: 0.5, AirFlowKgS: 0.1}
	if d := m.CabinDerivative(24, in, 24, 0); math.Abs(d) > 1e-15 {
		t.Errorf("equilibrium derivative = %v", d)
	}
}

func TestPullDownTime(t *testing.T) {
	// Integrating the cabin ODE with strong cooling must pull the cabin
	// from 35 °C to ≤ 26 °C within 10 minutes (matching the vehicle
	// pull-down behaviour the paper's parameters were fit to [15][22]).
	m := defaultModel(t)
	in := Inputs{SupplyTempC: 8, CoilTempC: 8, Recirc: 0.6, AirFlowKgS: 0.22}
	sys := func(t float64, x, dxdt []float64) {
		dxdt[0] = m.CabinDerivative(x[0], in, 38, 400)
	}
	x, err := ode.Integrate(sys, []float64{35}, 0, 600, 1, &ode.RK4{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] > 26 {
		t.Errorf("cabin after 10 min of max cooling = %.1f °C, want ≤ 26", x[0])
	}
	if x[0] < 5 {
		t.Errorf("cabin cooled implausibly fast to %.1f °C", x[0])
	}
}

func TestWarmUpTime(t *testing.T) {
	// Heating from 0 °C: reach ≥ 18 °C within 10 minutes.
	m := defaultModel(t)
	in := Inputs{SupplyTempC: 55, CoilTempC: 0, Recirc: 0.5, AirFlowKgS: 0.2}
	sys := func(t float64, x, dxdt []float64) {
		dxdt[0] = m.CabinDerivative(x[0], in, 0, 0)
	}
	x, err := ode.Integrate(sys, []float64{0}, 0, 600, 1, &ode.RK4{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] < 18 {
		t.Errorf("cabin after 10 min of max heating = %.1f °C, want ≥ 18", x[0])
	}
}

func TestClampInputsEnforcesOrdering(t *testing.T) {
	m := defaultModel(t)
	p := m.Params()
	raw := Inputs{SupplyTempC: -20, CoilTempC: 90, Recirc: 2, AirFlowKgS: 9}
	mix := 25.0
	c := m.ClampInputs(raw, mix)
	if c.AirFlowKgS != p.MaxAirFlowKgS {
		t.Errorf("flow not clamped: %v", c.AirFlowKgS)
	}
	if c.Recirc != p.MaxRecirc {
		t.Errorf("recirc not clamped: %v", c.Recirc)
	}
	if c.CoilTempC > mix || c.CoilTempC < p.MinCoilTempC {
		t.Errorf("coil temp %v outside [%v, %v]", c.CoilTempC, p.MinCoilTempC, mix)
	}
	if c.SupplyTempC < c.CoilTempC {
		t.Errorf("supply %v < coil %v (C3)", c.SupplyTempC, c.CoilTempC)
	}
	if err := m.CheckInputs(c, mix, 1e-9); err != nil {
		t.Errorf("clamped inputs still violate constraints: %v", err)
	}
}

func TestClampProperty(t *testing.T) {
	m := defaultModel(t)
	f := func(ts, tc, dr, mz, mixRaw float64) bool {
		for _, v := range []float64{ts, tc, dr, mz, mixRaw} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		mix := math.Mod(mixRaw, 50)
		in := m.ClampInputs(Inputs{
			SupplyTempC: math.Mod(ts, 200),
			CoilTempC:   math.Mod(tc, 200),
			Recirc:      math.Mod(dr, 3),
			AirFlowKgS:  math.Mod(mz, 1),
		}, mix)
		// Clamped inputs satisfy C1, C3–C7 (power limits C8–C10 can still
		// bind at extreme flow × ΔT combinations, which the MPC handles).
		return in.AirFlowKgS >= m.Params().MinAirFlowKgS &&
			in.AirFlowKgS <= m.Params().MaxAirFlowKgS &&
			in.CoilTempC <= in.SupplyTempC &&
			in.Recirc >= 0 && in.Recirc <= m.Params().MaxRecirc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCheckInputsViolations(t *testing.T) {
	m := defaultModel(t)
	mix := 25.0
	good := Inputs{SupplyTempC: 24, CoilTempC: 15, Recirc: 0.5, AirFlowKgS: 0.1}
	if err := m.CheckInputs(good, mix, 1e-9); err != nil {
		t.Fatalf("valid inputs rejected: %v", err)
	}
	cases := []Inputs{
		{SupplyTempC: 24, CoilTempC: 15, Recirc: 0.5, AirFlowKgS: 0.5}, // C1
		{SupplyTempC: 10, CoilTempC: 15, Recirc: 0.5, AirFlowKgS: 0.1}, // C3
		{SupplyTempC: 30, CoilTempC: 28, Recirc: 0.5, AirFlowKgS: 0.1}, // C4
		{SupplyTempC: 24, CoilTempC: 1, Recirc: 0.5, AirFlowKgS: 0.1},  // C5
		{SupplyTempC: 70, CoilTempC: 15, Recirc: 0.5, AirFlowKgS: 0.1}, // C6
		{SupplyTempC: 24, CoilTempC: 15, Recirc: 0.9, AirFlowKgS: 0.1}, // C7
	}
	for i, in := range cases {
		if err := m.CheckInputs(in, mix, 1e-9); err == nil {
			t.Errorf("case %d: violation not detected", i)
		}
	}
}

func TestSteadyStatePowerMagnitudes(t *testing.T) {
	// Steady-state holding power must land in the ranges the paper's
	// Table I reports for the MPC controller (which approaches the
	// steady-state optimum): ≈ 1.5–4 kW at 35 °C, ≈ 2–6 kW at 0 °C,
	// ≈ 0–1 kW near 21 °C.
	m := defaultModel(t)
	hot := m.SteadyStatePower(24, 35, 400, 0.5).Total()
	if hot < 500 || hot > 4000 {
		t.Errorf("hold power at 35 °C = %.0f W, want 0.5–4 kW", hot)
	}
	cold := m.SteadyStatePower(24, 0, 0, 0.5).Total()
	if cold < 1000 || cold > 6000 {
		t.Errorf("hold power at 0 °C = %.0f W, want 1–6 kW", cold)
	}
	mild := m.SteadyStatePower(24, 21, 200, 0.5).Total()
	if mild > 1000 {
		t.Errorf("hold power at 21 °C = %.0f W, want < 1 kW", mild)
	}
	// Hotter is harder.
	hotter := m.SteadyStatePower(24, 43, 400, 0.5).Total()
	if hotter <= hot {
		t.Errorf("43 °C power %.0f should exceed 35 °C power %.0f", hotter, hot)
	}
}

func TestRecircReducesCoolingPower(t *testing.T) {
	// Recirculating cool cabin air lowers the mixer temperature on a hot
	// day, so the cooling coil works less.
	m := defaultModel(t)
	fresh := m.SteadyStatePower(24, 38, 400, 0).Total()
	recirc := m.SteadyStatePower(24, 38, 400, 0.8).Total()
	if recirc >= fresh {
		t.Errorf("recirculation did not reduce power: %v vs %v", recirc, fresh)
	}
}
