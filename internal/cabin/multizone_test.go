package cabin

import (
	"math"
	"testing"

	"evclimate/internal/ode"
)

func twoZone(t *testing.T) *MultiZoneModel {
	t.Helper()
	m, err := NewMultiZone(TwoZoneDefault())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTwoZoneDefaultValid(t *testing.T) {
	p := TwoZoneDefault()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := twoZone(t).Zones(); got != 2 {
		t.Errorf("zones = %d", got)
	}
}

func TestMultiZoneValidation(t *testing.T) {
	cases := []func(*MultiZoneParams){
		func(p *MultiZoneParams) { p.Zones = nil },
		func(p *MultiZoneParams) { p.Zones[0].CapacitanceJK = 0 },
		func(p *MultiZoneParams) { p.Zones[0].ShellUAWK = -1 },
		func(p *MultiZoneParams) { p.Zones[0].SupplyFrac = 0.9 }, // sum ≠ 1
		func(p *MultiZoneParams) { p.Zones[0].SolarFrac = 0.9 },  // sum ≠ 1
		func(p *MultiZoneParams) { p.CouplingWK = [][]float64{{0}} },
		func(p *MultiZoneParams) { p.CouplingWK[0][0] = 5 },
		func(p *MultiZoneParams) { p.CouplingWK[0][1] = 99 }, // asymmetric
		func(p *MultiZoneParams) { p.CouplingWK[0][1] = -1; p.CouplingWK[1][0] = -1 },
		func(p *MultiZoneParams) { p.Unit.EtaCool = 2 },
	}
	for i, mutate := range cases {
		p := TwoZoneDefault()
		mutate(&p)
		if _, err := NewMultiZone(p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestReturnTempWeighted(t *testing.T) {
	m := twoZone(t)
	// front 0.65, rear 0.35.
	got := m.ReturnTemp([]float64{20, 30})
	want := 0.65*20 + 0.35*30
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("return temp = %v, want %v", got, want)
	}
}

func TestFrontZoneCoolsFaster(t *testing.T) {
	// The front zone receives 65 % of the supply air: under cooling from
	// a uniform hot start, it must lead the pull-down.
	m := twoZone(t)
	in := Inputs{SupplyTempC: 8, CoilTempC: 8, Recirc: 0.5, AirFlowKgS: 0.2}
	sys := func(t float64, x, dxdt []float64) {
		m.Derivatives(x, in, 38, 400, dxdt)
	}
	x, err := ode.Integrate(sys, []float64{35, 35}, 0, 120, 1, &ode.RK4{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] >= x[1] {
		t.Errorf("front %v should be cooler than rear %v after 2 min", x[0], x[1])
	}
}

func TestCouplingEqualizesZones(t *testing.T) {
	// With no HVAC and no loads, coupled zones starting apart relax
	// toward each other.
	p := TwoZoneDefault()
	for i := range p.Zones {
		p.Zones[i].ShellUAWK = 0
		p.Zones[i].SolarFrac = 0.5
	}
	m, err := NewMultiZone(p)
	if err != nil {
		t.Fatal(err)
	}
	in := Inputs{SupplyTempC: 0, CoilTempC: 0, Recirc: 0, AirFlowKgS: 0}
	sys := func(t float64, x, dxdt []float64) {
		m.Derivatives(x, in, 0, 0, dxdt)
	}
	x, err := ode.Integrate(sys, []float64{30, 20}, 0, 3600, 1, &ode.RK4{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-x[1]) > 0.5 {
		t.Errorf("zones did not equalize: %v vs %v", x[0], x[1])
	}
	// Energy-weighted mean is conserved (no external exchange):
	// 0.6·30 + 0.4·20 = 26.
	mean := (0.6*x[0]*1 + 0.4*x[1]) // capacitances 0.6/0.4 of the total
	if math.Abs(mean-26) > 0.1 {
		t.Errorf("energy not conserved: weighted mean %v, want 26", mean)
	}
}

func TestStrongCouplingMatchesSingleZone(t *testing.T) {
	// With near-infinite inter-zone coupling, the two-zone model must
	// reproduce the single-zone model with the summed capacitance and
	// conductance.
	p := TwoZoneDefault()
	p.CouplingWK = [][]float64{{0, 1e7}, {1e7, 0}}
	mz, err := NewMultiZone(p)
	if err != nil {
		t.Fatal(err)
	}
	single, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	in := Inputs{SupplyTempC: 10, CoilTempC: 10, Recirc: 0.5, AirFlowKgS: 0.15}

	// Multi-zone with a stiff solver step (the coupling is stiff).
	sysM := func(t float64, x, dxdt []float64) {
		mz.Derivatives(x, in, 35, 400, dxdt)
	}
	xm, err := ode.Integrate(sysM, []float64{30, 30}, 0, 300, 0.001, &ode.RK4{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sysS := func(t float64, x, dxdt []float64) {
		dxdt[0] = single.CabinDerivative(x[0], in, 35, 400)
	}
	xs, err := ode.Integrate(sysS, []float64{30}, 0, 300, 0.1, &ode.RK4{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(xm[0]-xs[0]) > 0.2 {
		t.Errorf("strongly coupled two-zone %v ≠ single-zone %v", xm[0], xs[0])
	}
}

func TestMultiZonePowersUseReturnMix(t *testing.T) {
	m := twoZone(t)
	in := Inputs{SupplyTempC: 12, CoilTempC: 12, Recirc: 0.8, AirFlowKgS: 0.2}
	// Cooler zones → cooler return air → lower cooling-coil duty.
	hot := m.PowersFor(in, 38, []float64{32, 32}).CoolerW
	cool := m.PowersFor(in, 38, []float64{24, 24}).CoolerW
	if cool >= hot {
		t.Errorf("cooler return air should reduce coil duty: %v vs %v", cool, hot)
	}
}

func TestDerivativesPanicsOnBadLength(t *testing.T) {
	m := twoZone(t)
	defer func() {
		if recover() == nil {
			t.Error("length mismatch not detected")
		}
	}()
	m.Derivatives([]float64{1}, Inputs{}, 0, 0, make([]float64, 2))
}
