package cabin

import (
	"errors"
	"fmt"
)

// The paper assumes a single-zone HVAC ("In this paper, we assume a
// single-zone HVAC", Sec. II-C) while noting VAV systems support
// multi-zone control. This file provides the multi-zone extension: N
// cabin zones (e.g. front/rear) with individual thermal capacitances,
// shell conductances, and supply-air shares, coupled by inter-zone heat
// exchange. The single HVAC unit conditions one supply stream that the
// duct system splits between zones; the return air is the supply-weighted
// zone mix.

// ZoneParams describes one cabin zone.
type ZoneParams struct {
	// Name labels the zone ("front", "rear").
	Name string
	// CapacitanceJK is the zone's lumped thermal capacitance.
	CapacitanceJK float64
	// ShellUAWK is the zone's conductance to outside.
	ShellUAWK float64
	// SupplyFrac is the share of supply air routed to the zone; shares
	// must sum to 1.
	SupplyFrac float64
	// SolarFrac is the share of the solar load hitting the zone; shares
	// must sum to 1.
	SolarFrac float64
}

// MultiZoneParams assembles a multi-zone cabin around a base single-zone
// HVAC unit (coil limits, fan, efficiencies from Params).
type MultiZoneParams struct {
	// Unit supplies the HVAC hardware parameters (coils, fan, damper).
	Unit Params
	// Zones lists the cabin zones (≥ 1).
	Zones []ZoneParams
	// CouplingWK[i][j] is the heat-exchange conductance between zones i
	// and j in W/K (symmetric, zero diagonal).
	CouplingWK [][]float64
}

// TwoZoneDefault splits the default cabin into a front zone (60 % of the
// capacitance, most of the supply air and sun) and a rear zone, coupled
// across the seat row.
func TwoZoneDefault() MultiZoneParams {
	base := Default()
	return MultiZoneParams{
		Unit: base,
		Zones: []ZoneParams{
			{Name: "front", CapacitanceJK: 0.6 * base.ThermalCapacitanceJK, ShellUAWK: 0.55 * base.ShellUAWK, SupplyFrac: 0.65, SolarFrac: 0.6},
			{Name: "rear", CapacitanceJK: 0.4 * base.ThermalCapacitanceJK, ShellUAWK: 0.45 * base.ShellUAWK, SupplyFrac: 0.35, SolarFrac: 0.4},
		},
		CouplingWK: [][]float64{
			{0, 45},
			{45, 0},
		},
	}
}

// Validate reports invalid configurations.
func (p *MultiZoneParams) Validate() error {
	if err := p.Unit.Validate(); err != nil {
		return err
	}
	n := len(p.Zones)
	if n == 0 {
		return errors.New("cabin: multi-zone needs at least one zone")
	}
	var supplySum, solarSum float64
	for i, z := range p.Zones {
		if z.CapacitanceJK <= 0 {
			return fmt.Errorf("cabin: zone %d capacitance must be positive", i)
		}
		if z.ShellUAWK < 0 {
			return fmt.Errorf("cabin: zone %d shell conductance must be nonnegative", i)
		}
		if z.SupplyFrac < 0 || z.SolarFrac < 0 {
			return fmt.Errorf("cabin: zone %d fractions must be nonnegative", i)
		}
		supplySum += z.SupplyFrac
		solarSum += z.SolarFrac
	}
	if supplySum < 0.999 || supplySum > 1.001 {
		return fmt.Errorf("cabin: zone supply fractions sum to %v, want 1", supplySum)
	}
	if solarSum < 0.999 || solarSum > 1.001 {
		return fmt.Errorf("cabin: zone solar fractions sum to %v, want 1", solarSum)
	}
	if len(p.CouplingWK) != n {
		return fmt.Errorf("cabin: coupling matrix has %d rows, want %d", len(p.CouplingWK), n)
	}
	for i := range p.CouplingWK {
		if len(p.CouplingWK[i]) != n {
			return fmt.Errorf("cabin: coupling row %d has %d cols, want %d", i, len(p.CouplingWK[i]), n)
		}
		if p.CouplingWK[i][i] != 0 {
			return fmt.Errorf("cabin: coupling diagonal [%d][%d] must be zero", i, i)
		}
		for j := range p.CouplingWK[i] {
			if p.CouplingWK[i][j] < 0 {
				return fmt.Errorf("cabin: coupling [%d][%d] negative", i, j)
			}
			if p.CouplingWK[i][j] != p.CouplingWK[j][i] {
				return fmt.Errorf("cabin: coupling matrix asymmetric at [%d][%d]", i, j)
			}
		}
	}
	return nil
}

// MultiZoneModel evaluates the multi-zone cabin dynamics.
type MultiZoneModel struct {
	p    MultiZoneParams
	unit *Model
}

// NewMultiZone builds the model after validation.
func NewMultiZone(p MultiZoneParams) (*MultiZoneModel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	unit, err := New(p.Unit)
	if err != nil {
		return nil, err
	}
	return &MultiZoneModel{p: p, unit: unit}, nil
}

// Zones returns the number of zones.
func (m *MultiZoneModel) Zones() int { return len(m.p.Zones) }

// Unit returns the underlying single-unit HVAC model (coils, fan,
// clamping).
func (m *MultiZoneModel) Unit() *Model { return m.unit }

// ReturnTemp is the supply-weighted mean zone temperature — the return
// air the damper recirculates (generalizes Tz in Eq. 9).
func (m *MultiZoneModel) ReturnTemp(zonesC []float64) float64 {
	var t float64
	for i, z := range m.p.Zones {
		t += z.SupplyFrac * zonesC[i]
	}
	return t
}

// Derivatives writes dTz/dt for every zone (the Eq. 7 generalization:
// per-zone supply share, shell exchange, solar share, plus inter-zone
// coupling) into dzdt.
func (m *MultiZoneModel) Derivatives(zonesC []float64, in Inputs, outsideC, solarW float64, dzdt []float64) {
	if len(zonesC) != len(m.p.Zones) || len(dzdt) != len(m.p.Zones) {
		panic(fmt.Sprintf("cabin: zone state length %d/%d, want %d", len(zonesC), len(dzdt), len(m.p.Zones)))
	}
	cp := m.p.Unit.AirCpJKgK
	for i, z := range m.p.Zones {
		q := z.SolarFrac*solarW + z.ShellUAWK*(outsideC-zonesC[i])
		supply := z.SupplyFrac * in.AirFlowKgS * cp * (in.SupplyTempC - zonesC[i])
		coupling := 0.0
		for j := range m.p.Zones {
			if j != i {
				coupling += m.p.CouplingWK[i][j] * (zonesC[j] - zonesC[i])
			}
		}
		dzdt[i] = (q + supply + coupling) / z.CapacitanceJK
	}
}

// PowersFor evaluates the HVAC unit powers for the given zone state: the
// mixer blends outside air with the multi-zone return air.
func (m *MultiZoneModel) PowersFor(in Inputs, outsideC float64, zonesC []float64) Powers {
	mix := m.unit.MixTemp(outsideC, m.ReturnTemp(zonesC), in.Recirc)
	return m.unit.PowersFor(in, mix)
}
