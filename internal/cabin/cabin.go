// Package cabin implements the single-zone Variable-Air-Volume HVAC model
// of paper Sec. II-C: the cabin energy balance (Eqs. 7–8), the
// outside/recirculated air mixer (Eq. 9), the cooling and heating coil
// powers (Eqs. 10–11), and the fan power (Eq. 12), plus the actuator
// limits that become the MPC constraints C1–C10.
//
// Air path: mixer (damper blends outside air at To with cabin return air
// at Tz, giving Tm) → cooling coil (Tm → Tc) → heating coil (Tc → Ts) →
// fan → cabin supply at Ts and mass flow mz.
package cabin

import (
	"errors"
	"fmt"
	"math"

	"evclimate/internal/units"
)

// Params defines the HVAC plant and its actuator limits.
type Params struct {
	// ThermalCapacitanceJK is Mc in Eq. 7: the lumped heat capacity of
	// the cabin air, walls, and seats, J/K.
	ThermalCapacitanceJK float64
	// AirCpJKgK is the specific heat of air c_p, J/(kg·K).
	AirCpJKgK float64
	// ShellUAWK is c_x·A_x in Eq. 8: the cabin shell heat-exchange
	// conductance, W/K.
	ShellUAWK float64
	// EtaHeat and EtaCool are the heating/cooling process efficiencies
	// η_h and η_c of Eqs. 10–11.
	EtaHeat, EtaCool float64
	// FanCoeffW is k_f in Eq. 12: P_f = k_f·mz², W/(kg/s)².
	FanCoeffW float64

	// MinAirFlowKgS and MaxAirFlowKgS bound the supply air flow (C1).
	MinAirFlowKgS, MaxAirFlowKgS float64
	// MinCoilTempC is the lowest cooling-coil outlet temperature (C5).
	MinCoilTempC float64
	// MaxHeaterTempC is the highest heater outlet temperature (C6).
	MaxHeaterTempC float64
	// MaxRecirc bounds the recirculated-air fraction d_r (C7); fresh-air
	// regulations keep it below 1.
	MaxRecirc float64
	// MaxHeaterPowerW, MaxCoolerPowerW, MaxFanPowerW are the actuator
	// power limits (C8–C10).
	MaxHeaterPowerW, MaxCoolerPowerW, MaxFanPowerW float64
}

// Default returns the single-zone EV HVAC parameter set used in the
// experiments, sized for a compact EV (≈ 6 kW peak, i-MiEV/Leaf class
// [8][9]) and matched to the pull-down behaviour reported in [15][22]
// (≈ 6 °C in five minutes at mid flow).
func Default() Params {
	return Params{
		ThermalCapacitanceJK: 140e3,
		AirCpJKgK:            units.AirCp,
		ShellUAWK:            100,
		EtaHeat:              0.9,
		EtaCool:              0.85,
		FanCoeffW:            4800,
		MinAirFlowKgS:        0.02,
		MaxAirFlowKgS:        0.25,
		MinCoilTempC:         3,
		MaxHeaterTempC:       60,
		MaxRecirc:            0.8,
		MaxHeaterPowerW:      6000,
		MaxCoolerPowerW:      6000,
		MaxFanPowerW:         350,
	}
}

// Validate reports invalid parameter combinations.
func (p *Params) Validate() error {
	switch {
	case p.ThermalCapacitanceJK <= 0:
		return errors.New("cabin: thermal capacitance must be positive")
	case p.AirCpJKgK <= 0:
		return errors.New("cabin: air heat capacity must be positive")
	case p.ShellUAWK < 0:
		return errors.New("cabin: shell conductance must be nonnegative")
	case p.EtaHeat <= 0 || p.EtaHeat > 1 || p.EtaCool <= 0 || p.EtaCool > 1:
		return errors.New("cabin: coil efficiencies must be in (0, 1]")
	case p.FanCoeffW < 0:
		return errors.New("cabin: fan coefficient must be nonnegative")
	case p.MinAirFlowKgS < 0 || p.MaxAirFlowKgS <= p.MinAirFlowKgS:
		return fmt.Errorf("cabin: air-flow bounds [%v, %v] invalid", p.MinAirFlowKgS, p.MaxAirFlowKgS)
	case p.MaxHeaterTempC <= p.MinCoilTempC:
		return errors.New("cabin: heater max must exceed coil min")
	case p.MaxRecirc < 0 || p.MaxRecirc > 1:
		return fmt.Errorf("cabin: max recirculation %v outside [0, 1]", p.MaxRecirc)
	case p.MaxHeaterPowerW <= 0 || p.MaxCoolerPowerW <= 0 || p.MaxFanPowerW <= 0:
		return errors.New("cabin: actuator power limits must be positive")
	}
	return nil
}

// Inputs is the HVAC control input vector i = [Ts, Tc, dr, mz]
// (paper Sec. III-A).
type Inputs struct {
	// SupplyTempC is T_s, the supply (heater outlet) temperature, °C.
	SupplyTempC float64
	// CoilTempC is T_c, the cooling-coil outlet temperature, °C.
	CoilTempC float64
	// Recirc is d_r, the recirculated-air fraction in [0, MaxRecirc].
	Recirc float64
	// AirFlowKgS is mz, the supply air mass flow, kg/s.
	AirFlowKgS float64
	// BattHeatW and BattChillW are the electric battery heater/chiller
	// commands in watts (the cold-climate thermal-network branch). They
	// are zero — and ignored by the plant — unless the simulation runs
	// with the internal/thermal subsystem enabled; the thermal network
	// clamps them to its configured branch limits.
	BattHeatW, BattChillW float64
}

// Powers holds the three HVAC power consumers.
type Powers struct {
	// HeaterW is P_h (Eq. 10).
	HeaterW float64
	// CoolerW is P_c (Eq. 11).
	CoolerW float64
	// FanW is P_f (Eq. 12).
	FanW float64
}

// Total returns P_h + P_c + P_f.
func (pw Powers) Total() float64 { return pw.HeaterW + pw.CoolerW + pw.FanW }

// Model evaluates the HVAC equations.
type Model struct {
	p Params

	// Derived constants precomputed at construction; ClampInputs sits on
	// the per-step hot path of every simulation and these spare it a
	// square root and two multiplications per call. Each is the exact
	// subexpression the inline form computed, so clamp results are
	// bit-identical.
	maxFlowByFan float64 // √(MaxFanPowerW / FanCoeffW), the C10 flow cap
	coolPowNum   float64 // MaxCoolerPowerW · EtaCool, the C9 numerator
	heatPowNum   float64 // MaxHeaterPowerW · EtaHeat, the C8 numerator
}

// New builds a Model after validating the parameters.
func New(p Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{
		p:            p,
		maxFlowByFan: math.Sqrt(p.MaxFanPowerW / p.FanCoeffW),
		coolPowNum:   p.MaxCoolerPowerW * p.EtaCool,
		heatPowNum:   p.MaxHeaterPowerW * p.EtaHeat,
	}, nil
}

// Params returns the model parameters.
func (m *Model) Params() Params { return m.p }

// MixTemp returns T_m (Eq. 9): the damper blend of outside air at
// outsideC and cabin return air at cabinC with recirculation fraction dr.
func (m *Model) MixTemp(outsideC, cabinC, dr float64) float64 {
	return (1-dr)*outsideC + dr*cabinC
}

// PowersFor evaluates Eqs. 10–12 for inputs in with mixer inlet mixC.
// Negative coil temperature differences (physically impossible operating
// points excluded by C3/C4) are clamped to zero power.
func (m *Model) PowersFor(in Inputs, mixC float64) Powers {
	cp := m.p.AirCpJKgK
	var pw Powers
	if d := in.SupplyTempC - in.CoilTempC; d > 0 {
		pw.HeaterW = cp / m.p.EtaHeat * in.AirFlowKgS * d
	}
	if d := mixC - in.CoilTempC; d > 0 {
		pw.CoolerW = cp / m.p.EtaCool * in.AirFlowKgS * d
	}
	pw.FanW = m.p.FanCoeffW * in.AirFlowKgS * in.AirFlowKgS
	return pw
}

// ThermalLoad returns Q (Eq. 8): solar gain plus shell heat exchange with
// outside.
func (m *Model) ThermalLoad(cabinC, outsideC, solarW float64) float64 {
	return solarW + m.p.ShellUAWK*(outsideC-cabinC)
}

// CabinDerivative returns dTz/dt (Eq. 7) for cabin temperature cabinC
// under inputs in, outside temperature outsideC and solar load solarW.
func (m *Model) CabinDerivative(cabinC float64, in Inputs, outsideC, solarW float64) float64 {
	q := m.ThermalLoad(cabinC, outsideC, solarW)
	supply := in.AirFlowKgS * m.p.AirCpJKgK * (in.SupplyTempC - cabinC)
	return (q + supply) / m.p.ThermalCapacitanceJK
}

// ClampInputs projects raw inputs onto the actuator limits C1, C3–C10 and
// returns the result. It enforces the coil ordering T_c ≤ T_s and
// T_c ≤ T_m for the given mixer temperature, caps the fan flow so P_f
// stays within its limit, raises T_c if the cooling coil would exceed its
// power limit, and lowers T_s if the heater would exceed its limit — the
// behaviour of the real actuators when commanded beyond capacity.
func (m *Model) ClampInputs(in Inputs, mixC float64) Inputs {
	m.ClampInputsInPlace(&in, mixC)
	return in
}

// ClampInputsInPlace is ClampInputs mutating in directly — the per-step
// control and batch paths call it twice per vehicle step, where the
// by-value copies of ClampInputs dominate the clamping arithmetic. Each
// field is read before it is written, so the results are bit-identical
// to the by-value form.
func (m *Model) ClampInputsInPlace(in *Inputs, mixC float64) {
	in.AirFlowKgS = units.Clamp(in.AirFlowKgS, m.p.MinAirFlowKgS, m.p.MaxAirFlowKgS)
	// C10: fan power limit caps the achievable flow.
	if in.AirFlowKgS > m.maxFlowByFan {
		in.AirFlowKgS = m.maxFlowByFan
	}
	in.Recirc = units.Clamp(in.Recirc, 0, m.p.MaxRecirc)
	// C4/C5: the coil outlet lies between the coil minimum and the mixer
	// temperature; when the mix is already below the coil minimum the
	// cooling coil is inactive and passes the air through (T_c = T_m).
	lo := math.Min(m.p.MinCoilTempC, mixC)
	hiC := mixC
	in.CoilTempC = units.Clamp(in.CoilTempC, lo, hiC)
	// C9: cooler power limit bounds how far below T_m the coil can pull.
	if in.AirFlowKgS > 0 {
		maxDrop := m.coolPowNum / (m.p.AirCpJKgK * in.AirFlowKgS)
		if mixC-in.CoilTempC > maxDrop {
			in.CoilTempC = mixC - maxDrop
			if in.CoilTempC > hiC {
				in.CoilTempC = hiC
			}
		}
	}
	in.SupplyTempC = units.Clamp(in.SupplyTempC, in.CoilTempC, m.p.MaxHeaterTempC)
	// C8: heater power limit bounds the rise above the coil temperature.
	if in.AirFlowKgS > 0 {
		maxRise := m.heatPowNum / (m.p.AirCpJKgK * in.AirFlowKgS)
		if in.SupplyTempC-in.CoilTempC > maxRise {
			in.SupplyTempC = in.CoilTempC + maxRise
		}
	}
}

// ClampForEnvironment clamps the recirculation fraction first, computes
// the resulting mixer temperature for the given outside and cabin
// temperatures, then clamps the remaining inputs against it. Controllers
// should use this instead of calling MixTemp with unclamped inputs.
func (m *Model) ClampForEnvironment(in Inputs, outsideC, cabinC float64) (Inputs, float64) {
	mix := m.ClampForEnvironmentInPlace(&in, outsideC, cabinC)
	return in, mix
}

// ClampForEnvironmentInPlace is ClampForEnvironment mutating in
// directly, returning the mixer temperature. See ClampInputsInPlace.
func (m *Model) ClampForEnvironmentInPlace(in *Inputs, outsideC, cabinC float64) float64 {
	in.Recirc = units.Clamp(in.Recirc, 0, m.p.MaxRecirc)
	mix := m.MixTemp(outsideC, cabinC, in.Recirc)
	m.ClampInputsInPlace(in, mix)
	return mix
}

// CheckInputs verifies the constraint set C1, C3–C10 for inputs in at
// mixer temperature mixC, returning a descriptive error for the first
// violation (tolerance tol in the natural units of each constraint).
func (m *Model) CheckInputs(in Inputs, mixC, tol float64) error {
	if in.AirFlowKgS < m.p.MinAirFlowKgS-tol || in.AirFlowKgS > m.p.MaxAirFlowKgS+tol {
		return fmt.Errorf("cabin: C1 violated: air flow %v outside [%v, %v]", in.AirFlowKgS, m.p.MinAirFlowKgS, m.p.MaxAirFlowKgS)
	}
	if in.CoilTempC > in.SupplyTempC+tol {
		return fmt.Errorf("cabin: C3 violated: coil %v > supply %v", in.CoilTempC, in.SupplyTempC)
	}
	if in.CoilTempC > mixC+tol {
		return fmt.Errorf("cabin: C4 violated: coil %v > mix %v", in.CoilTempC, mixC)
	}
	if effLo := math.Min(m.p.MinCoilTempC, mixC); in.CoilTempC < effLo-tol {
		return fmt.Errorf("cabin: C5 violated: coil %v < %v", in.CoilTempC, effLo)
	}
	if in.SupplyTempC > m.p.MaxHeaterTempC+tol {
		return fmt.Errorf("cabin: C6 violated: supply %v > %v", in.SupplyTempC, m.p.MaxHeaterTempC)
	}
	if in.Recirc < -tol || in.Recirc > m.p.MaxRecirc+tol {
		return fmt.Errorf("cabin: C7 violated: recirculation %v outside [0, %v]", in.Recirc, m.p.MaxRecirc)
	}
	pw := m.PowersFor(in, mixC)
	if pw.HeaterW > m.p.MaxHeaterPowerW*(1+tol)+tol {
		return fmt.Errorf("cabin: C8 violated: heater %v W > %v W", pw.HeaterW, m.p.MaxHeaterPowerW)
	}
	if pw.CoolerW > m.p.MaxCoolerPowerW*(1+tol)+tol {
		return fmt.Errorf("cabin: C9 violated: cooler %v W > %v W", pw.CoolerW, m.p.MaxCoolerPowerW)
	}
	if pw.FanW > m.p.MaxFanPowerW*(1+tol)+tol {
		return fmt.Errorf("cabin: C10 violated: fan %v W > %v W", pw.FanW, m.p.MaxFanPowerW)
	}
	return nil
}

// SteadyStatePower estimates the HVAC electrical power needed to hold the
// cabin at holdC against outside temperature outsideC and solar load
// solarW, assuming recirculation dr and a mid-range air flow. It is used
// for sizing sanity checks and the Fig. 1 motivational analysis.
func (m *Model) SteadyStatePower(holdC, outsideC, solarW, dr float64) Powers {
	q := m.ThermalLoad(holdC, outsideC, solarW)
	tm := m.MixTemp(outsideC, holdC, dr)
	cp := m.p.AirCpJKgK
	var in Inputs
	// Pick the smallest flow that can carry the load with the coil
	// limits, then split coil duties.
	if q > 0 {
		// Cooling: supply below cabin temperature.
		ts := holdC - 8
		if ts < m.p.MinCoilTempC {
			ts = m.p.MinCoilTempC
		}
		mz := q / (cp * (holdC - ts))
		in = Inputs{SupplyTempC: ts, CoilTempC: ts, Recirc: dr, AirFlowKgS: mz}
	} else if q < 0 {
		// Heating: supply above cabin temperature.
		ts := holdC + 15
		if ts > m.p.MaxHeaterTempC {
			ts = m.p.MaxHeaterTempC
		}
		mz := -q / (cp * (ts - holdC))
		tc := tm // no cooling while heating
		if tc > ts {
			tc = ts
		}
		in = Inputs{SupplyTempC: ts, CoilTempC: tc, Recirc: dr, AirFlowKgS: mz}
	} else {
		in = Inputs{SupplyTempC: holdC, CoilTempC: holdC, Recirc: dr, AirFlowKgS: m.p.MinAirFlowKgS}
	}
	in = m.ClampInputs(in, tm)
	return m.PowersFor(in, tm)
}
