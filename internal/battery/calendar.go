package battery

import (
	"errors"
	"math"

	"evclimate/internal/units"
)

// V2G-Sim battery-degradation coefficients (SNIPPETS.md, coefLoss dict).
// The cycle/calendar loss model there couples an Arrhenius temperature
// kernel (E, R, pre-exponential f) with an SoC-level sensitivity (d) and
// a quadratic cold-side temperature polynomial (a, b, c). The literals
// are pinned verbatim by TestV2GSimCoefficients so any drift from the
// reference is a deliberate, reviewed change.
const (
	V2GSimLossA = 8.888888888889532e-6 // quadratic cold-stress coefficient, 1/°C²
	V2GSimLossB = -0.005288888888889   // linear cold-stress coefficient, 1/°C
	V2GSimLossC = 0.787113333333394    // cold-stress constant term
	V2GSimLossD = -0.0067              // SoC-level sensitivity, 1/percent
	V2GSimLossE = 2.35                 // cycle-depth exponent (documented; the
	// paper's Eq. 15 SoC-deviation exponential plays this role here)
	V2GSimLossF       = 8720.0  // calendar pre-exponential, percent/√day
	V2GSimActivationJ = 24500.0 // calendar activation energy, J/mol
	V2GSimGasConstant = 8.314   // universal gas constant, J/(mol·K)
)

// CycleStressFactor returns the multiplicative temperature acceleration
// of *cycle* aging at mean pack temperature tempC, normalized to 1 at
// the 25 °C reference. It is U-shaped: above 25 °C the existing
// Arrhenius factor applies (SEI growth accelerates with heat); below,
// the V2G-Sim quadratic a·T² + b·T + c — a lithium-plating proxy that
// rises as the electrolyte cools — normalized by its 25 °C value
// (≈ 1.36 at −20 °C). The two branches meet continuously at the
// reference, where both equal 1.
func CycleStressFactor(tempC float64) float64 {
	if tempC > ArrheniusRefC {
		return ThermalFactor(tempC)
	}
	ref := V2GSimLossA*ArrheniusRefC*ArrheniusRefC + V2GSimLossB*ArrheniusRefC + V2GSimLossC
	v := V2GSimLossA*tempC*tempC + V2GSimLossB*tempC + V2GSimLossC
	return v / ref
}

// DeltaSoHAtPackTemp evaluates the paper's Eq. 15 cycle degradation and
// scales it by the U-shaped CycleStressFactor — the cold-climate
// counterpart of DeltaSoHAtTemp (which is hot-side Arrhenius only and is
// kept for the original lifetime sensitivity analysis).
func (p *SoHParams) DeltaSoHAtPackTemp(socDev, socAvg, meanPackC float64) float64 {
	return p.DeltaSoH(socDev, socAvg) * CycleStressFactor(meanPackC)
}

// CalendarParams defines the V2G-Sim-style calendar-aging term: capacity
// fade that accrues with storage time regardless of cycling, Arrhenius
// in pack temperature and exponential in SoC level, with the √t kernel
// standard for SEI-limited calendar loss.
//
//	Loss% = f · exp(−E/(R·T)) · exp(s·(SoC − SoCref)) · (√(age+Δt) − √age)
type CalendarParams struct {
	// PreExponential is f, in percent per √day.
	PreExponential float64
	// ActivationJMol is E and GasConstant is R in the Arrhenius kernel.
	ActivationJMol, GasConstant float64
	// SoCSlopePerPct is s: fade sensitivity to storage SoC (high SoC
	// ages faster). SoCRefPct anchors the exponential.
	SoCSlopePerPct, SoCRefPct float64
	// AgeDays is the pack age entering the √t kernel — fade per day
	// shrinks as the pack ages.
	AgeDays float64
}

// DefaultCalendarParams returns the V2G-Sim coefficient set for a
// one-year-old pack.
func DefaultCalendarParams() CalendarParams {
	return CalendarParams{
		PreExponential: V2GSimLossF,
		ActivationJMol: V2GSimActivationJ,
		GasConstant:    V2GSimGasConstant,
		SoCSlopePerPct: -V2GSimLossD, // +0.0067: high storage SoC ages faster
		SoCRefPct:      50,
		AgeDays:        365,
	}
}

// Validate reports invalid calendar parameters.
func (p *CalendarParams) Validate() error {
	switch {
	case p.PreExponential < 0:
		return errors.New("battery: calendar pre-exponential must be nonnegative")
	case p.ActivationJMol <= 0 || p.GasConstant <= 0:
		return errors.New("battery: calendar Arrhenius parameters must be positive")
	case p.AgeDays < 0:
		return errors.New("battery: pack age must be nonnegative")
	}
	return nil
}

// LossPercent returns the calendar capacity fade (percent of nominal)
// accrued over dtS seconds at pack temperature tempC and state of charge
// socPct.
func (p *CalendarParams) LossPercent(tempC, socPct, dtS float64) float64 {
	tK := units.CToK(tempC)
	if tK <= 0 {
		return math.Inf(1)
	}
	arr := p.PreExponential * math.Exp(-p.ActivationJMol/(p.GasConstant*tK))
	socf := math.Exp(p.SoCSlopePerPct * (socPct - p.SoCRefPct))
	dDays := dtS / units.SecondsPerDay
	return arr * socf * (math.Sqrt(p.AgeDays+dDays) - math.Sqrt(p.AgeDays))
}
