package battery

import (
	"math"
	"testing"

	"evclimate/internal/units"
)

// TestV2GSimCoefficients pins every coefficient literal against the
// V2G-Sim BatteryDegradation reference (SNIPPETS.md coefLoss). A failure
// here means the reproduction has drifted from the cited model — update
// only with the reference in hand.
func TestV2GSimCoefficients(t *testing.T) {
	pins := []struct {
		name      string
		got, want float64
	}{
		{"a", V2GSimLossA, 8.888888888889532e-6},
		{"b", V2GSimLossB, -0.005288888888889},
		{"c", V2GSimLossC, 0.787113333333394},
		{"d", V2GSimLossD, -0.0067},
		{"e", V2GSimLossE, 2.35},
		{"f", V2GSimLossF, 8720},
		{"E", V2GSimActivationJ, 24500},
		{"R", V2GSimGasConstant, 8.314},
	}
	for _, p := range pins {
		if p.got != p.want {
			t.Errorf("coefLoss[%s] = %v, want %v (V2G-Sim reference)", p.name, p.got, p.want)
		}
	}
	// The defaults must be wired from the pinned literals, not retyped.
	d := DefaultCalendarParams()
	if d.PreExponential != V2GSimLossF || d.ActivationJMol != V2GSimActivationJ ||
		d.GasConstant != V2GSimGasConstant || d.SoCSlopePerPct != -V2GSimLossD {
		t.Errorf("DefaultCalendarParams not wired from V2G-Sim literals: %+v", d)
	}
}

func TestCycleStressFactor(t *testing.T) {
	if f := CycleStressFactor(ArrheniusRefC); math.Abs(f-1) > 1e-12 {
		t.Errorf("factor at reference = %v, want 1", f)
	}
	// U-shape: both cold and hot excursions accelerate cycle aging.
	cold := CycleStressFactor(-20)
	if cold < 1.3 || cold > 1.45 {
		t.Errorf("factor(-20) = %v, want ≈ 1.36 (V2G-Sim polynomial ratio)", cold)
	}
	if hot := CycleStressFactor(45); hot <= 1 {
		t.Errorf("factor(45) = %v, want > 1 (Arrhenius branch)", hot)
	}
	// Monotone on each branch: colder is worse below the reference.
	prev := CycleStressFactor(-20)
	for _, tc := range []float64{-10, 0, 10, 25} {
		f := CycleStressFactor(tc)
		if f >= prev {
			t.Errorf("cold branch not decreasing: factor(%v) = %v ≥ %v", tc, f, prev)
		}
		prev = f
	}
	// Continuity across the branch switch.
	if d := math.Abs(CycleStressFactor(25.0001) - CycleStressFactor(24.9999)); d > 1e-3 {
		t.Errorf("branch discontinuity %v at the reference", d)
	}
	// The exact −20 °C ratio from the pinned polynomial.
	ref := V2GSimLossA*625 + V2GSimLossB*25 + V2GSimLossC
	want := (V2GSimLossA*400 - V2GSimLossB*20 + V2GSimLossC) / ref
	if got := CycleStressFactor(-20); math.Abs(got-want) > 1e-12 {
		t.Errorf("factor(-20) = %v, want %v from pinned coefficients", got, want)
	}
}

func TestDeltaSoHAtPackTemp(t *testing.T) {
	p := DefaultSoHParams()
	base := p.DeltaSoH(5, 70)
	if got := p.DeltaSoHAtPackTemp(5, 70, ArrheniusRefC); math.Abs(got-base) > 1e-15 {
		t.Errorf("reference temperature must not scale ΔSoH: %v vs %v", got, base)
	}
	if p.DeltaSoHAtPackTemp(5, 70, -20) <= base {
		t.Error("cold cycling must accelerate fade (plating proxy)")
	}
	if p.DeltaSoHAtPackTemp(5, 70, 45) <= base {
		t.Error("hot cycling must accelerate fade (Arrhenius)")
	}
}

func TestCalendarLoss(t *testing.T) {
	p := DefaultCalendarParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	day := p.LossPercent(25, 50, units.SecondsPerDay)
	// ≈ 0.0116 %/day at 25 °C / 50 % SoC for a one-year-old pack —
	// the V2G-Sim magnitude (a few percent per year).
	if day < 0.005 || day > 0.03 {
		t.Errorf("daily calendar loss %v %% at 25 °C, want O(0.01)", day)
	}
	// Arrhenius: cold storage preserves the pack.
	if cold := p.LossPercent(-20, 50, units.SecondsPerDay); cold >= day/5 {
		t.Errorf("calendar loss at -20 °C = %v, want ≪ %v", cold, day)
	}
	// High storage SoC ages faster.
	if p.LossPercent(25, 90, 3600) <= p.LossPercent(25, 30, 3600) {
		t.Error("calendar loss must increase with storage SoC")
	}
	// √t kernel: an older pack fades slower per day.
	old := p
	old.AgeDays = 8 * 365
	if old.LossPercent(25, 50, units.SecondsPerDay) >= day {
		t.Error("calendar fade per day must shrink with pack age")
	}
	// Additivity over sub-intervals (the accumulation the simulator does).
	split := p.LossPercent(25, 50, 1800)
	p2 := p
	p2.AgeDays += 1800.0 / units.SecondsPerDay
	split += p2.LossPercent(25, 50, 1800)
	whole := p.LossPercent(25, 50, 3600)
	if math.Abs(split-whole) > 1e-12*whole {
		t.Errorf("sub-interval accumulation %v != whole-interval %v", split, whole)
	}

	bad := CalendarParams{PreExponential: -1, ActivationJMol: 1, GasConstant: 1}
	if err := bad.Validate(); err == nil {
		t.Error("negative pre-exponential accepted")
	}
}

func TestThermalSinkThreading(t *testing.T) {
	// LeafThermalAt anchors the sink at the scenario ambient.
	if p := LeafThermalAt(-20); p.SinkC != -20 {
		t.Errorf("LeafThermalAt(-20).SinkC = %v", p.SinkC)
	}
	if p := LeafThermal(); p.SinkC != 25 {
		t.Errorf("LeafThermal().SinkC = %v, want the 25 °C calibration default", p.SinkC)
	}
	// An idle pack at 25 °C with a −20 °C sink must cool, not hold.
	s, err := NewThermalState(LeafThermalAt(-20), 25)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		s.Step(0, 10)
	}
	if s.TempC >= 24 {
		t.Errorf("pack held %v °C against a −20 °C sink", s.TempC)
	}
	// SetSink retargets mid-run and survives Snapshot/Restore bit-exactly.
	s.SetSink(5)
	sn := s.Snapshot()
	if sn.SinkC != 5 {
		t.Errorf("snapshot sink = %v, want 5", sn.SinkC)
	}
	r, _ := NewThermalState(LeafThermalAt(-20), 25)
	r.Restore(sn)
	if r.SinkC() != 5 || r.Snapshot() != sn {
		t.Errorf("restored snapshot %+v != %+v", r.Snapshot(), sn)
	}
	s.Step(10, 10)
	r.Step(10, 10)
	if s.TempC != r.TempC {
		t.Errorf("post-restore step diverged: %v vs %v", s.TempC, r.TempC)
	}
}
