package battery

import (
	"math"
	"testing"
	"testing/quick"
)

func newLeaf(t *testing.T, soc float64) *Pack {
	t.Helper()
	pk, err := NewPack(LeafPack(), soc)
	if err != nil {
		t.Fatal(err)
	}
	return pk
}

func TestLeafPackEnergy(t *testing.T) {
	p := LeafPack()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// 66.2 Ah × 360 V ≈ 23.8 kWh.
	if e := p.EnergyKWh(); math.Abs(e-23.8) > 0.1 {
		t.Errorf("pack energy = %v kWh, want ≈ 23.8", e)
	}
}

func TestParamsValidation(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.NominalCapacityAh = 0 },
		func(p *Params) { p.NominalCurrentA = -1 },
		func(p *Params) { p.NominalVoltageV = 0 },
		func(p *Params) { p.PeukertConst = 0.9 },
		func(p *Params) { p.ChargeEfficiency = 0 },
		func(p *Params) { p.ChargeEfficiency = 1.1 },
	}
	for i, mutate := range cases {
		p := LeafPack()
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
	if _, err := NewPack(LeafPack(), 130); err == nil {
		t.Error("SoC > 100 accepted")
	}
	if _, err := NewPack(LeafPack(), -1); err == nil {
		t.Error("negative SoC accepted")
	}
}

func TestEffectiveCurrentPeukert(t *testing.T) {
	pk := newLeaf(t, 100)
	in := pk.Params().NominalCurrentA
	// At the nominal current, I_eff == I exactly.
	if got := pk.EffectiveCurrent(in); math.Abs(got-in) > 1e-12 {
		t.Errorf("I_eff at nominal = %v, want %v", got, in)
	}
	// Above nominal, the effective current exceeds the actual current.
	if got := pk.EffectiveCurrent(2 * in); got <= 2*in {
		t.Errorf("I_eff at 2·I_n = %v, want > %v (rate-capacity effect)", got, 2*in)
	}
	// Known value: I_eff = 2In·2^(pc−1) = 2In·2^0.1.
	want := 2 * in * math.Pow(2, 0.1)
	if got := pk.EffectiveCurrent(2 * in); math.Abs(got-want) > 1e-9 {
		t.Errorf("I_eff = %v, want %v", got, want)
	}
	// Below nominal, discharge is cheaper than face value.
	if got := pk.EffectiveCurrent(in / 2); got >= in/2 {
		t.Errorf("I_eff at I_n/2 = %v, want < %v", got, in/2)
	}
	// Charging applies only the charge efficiency.
	if got := pk.EffectiveCurrent(-10); math.Abs(got-(-10*0.95)) > 1e-12 {
		t.Errorf("charge I_eff = %v, want -9.5", got)
	}
}

func TestEffectiveCurrentMonotone(t *testing.T) {
	pk := newLeaf(t, 100)
	f := func(raw float64) bool {
		i := math.Abs(math.Mod(raw, 300))
		return pk.EffectiveCurrent(i+1) > pk.EffectiveCurrent(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStepDischargeBookkeeping(t *testing.T) {
	pk := newLeaf(t, 100)
	// Drain at exactly the nominal current for one hour: SoC falls by
	// 100·I_n/C_n percent.
	p := pk.Params()
	powerW := p.NominalCurrentA * p.NominalVoltageV
	for i := 0; i < 3600; i++ {
		pk.Step(powerW, 1)
	}
	wantDrop := 100 * p.NominalCurrentA / p.NominalCapacityAh
	if math.Abs((100-pk.SoC())-wantDrop) > 0.01 {
		t.Errorf("SoC drop = %v, want %v", 100-pk.SoC(), wantDrop)
	}
}

func TestHighRateDischargeCostsMore(t *testing.T) {
	// Same energy at double rate for half time drains more SoC
	// (rate-capacity / Peukert effect).
	slow := newLeaf(t, 100)
	fast := newLeaf(t, 100)
	p := slow.Params()
	base := 2 * p.NominalCurrentA * p.NominalVoltageV
	for i := 0; i < 1000; i++ {
		slow.Step(base, 1)
	}
	for i := 0; i < 500; i++ {
		fast.Step(2*base, 1)
	}
	if fast.SoC() >= slow.SoC() {
		t.Errorf("fast discharge SoC %v should be below slow %v", fast.SoC(), slow.SoC())
	}
}

func TestStepChargeAndClamp(t *testing.T) {
	pk := newLeaf(t, 50)
	pk.Step(-100e3, 60) // strong regen
	if pk.SoC() <= 50 {
		t.Error("charging did not raise SoC")
	}
	// Clamp at 100.
	for i := 0; i < 10000; i++ {
		pk.Step(-100e3, 60)
	}
	if pk.SoC() != 100 {
		t.Errorf("SoC = %v, want clamp at 100", pk.SoC())
	}
	// Clamp at 0 and Empty.
	for i := 0; i < 100000; i++ {
		pk.Step(500e3, 60)
	}
	if pk.SoC() != 0 || !pk.Empty() {
		t.Errorf("SoC = %v, want 0/empty", pk.SoC())
	}
}

func TestRemainingKWh(t *testing.T) {
	pk := newLeaf(t, 50)
	want := pk.Params().EnergyKWh() / 2
	if got := pk.RemainingKWh(); math.Abs(got-want) > 1e-9 {
		t.Errorf("remaining = %v, want %v", got, want)
	}
}

func TestCycleStatsKnown(t *testing.T) {
	// Constant trace: zero deviation.
	dev, avg, err := CycleStats([]float64{80, 80, 80, 80})
	if err != nil {
		t.Fatal(err)
	}
	if dev != 0 || avg != 80 {
		t.Errorf("constant trace: dev=%v avg=%v", dev, avg)
	}
	// Two-level trace 60/80: avg 70, dev 10.
	dev, avg, err = CycleStats([]float64{60, 80, 60, 80})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg-70) > 1e-12 || math.Abs(dev-10) > 1e-12 {
		t.Errorf("two-level trace: dev=%v avg=%v, want 10/70", dev, avg)
	}
	if _, _, err := CycleStats([]float64{80}); err == nil {
		t.Error("single-sample trace accepted")
	}
}

func TestCycleStatsProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		trace := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			trace[i] = math.Abs(math.Mod(v, 100))
		}
		dev, avg, err := CycleStats(trace)
		if err != nil {
			return false
		}
		// Deviation is nonnegative and bounded by the range; average is
		// within the sample range.
		lo, hi := trace[0], trace[0]
		for _, v := range trace {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		return dev >= 0 && dev <= hi-lo+1e-9 && avg >= lo-1e-9 && avg <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeltaSoHMonotonicity(t *testing.T) {
	p := DefaultSoHParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// More SoC deviation → more degradation.
	if p.DeltaSoH(8, 70) <= p.DeltaSoH(4, 70) {
		t.Error("ΔSoH not increasing in SoCdev")
	}
	// Higher average SoC → more degradation.
	if p.DeltaSoH(4, 90) <= p.DeltaSoH(4, 60) {
		t.Error("ΔSoH not increasing in SoCavg")
	}
	// Always positive.
	if p.DeltaSoH(0, 0) <= 0 {
		t.Error("ΔSoH must be positive")
	}
}

func TestDeltaSoHCalibration(t *testing.T) {
	// A typical commute (dev ≈ 5 %, avg ≈ 70 %) should cost on the order
	// of 0.01 % SoH → a plausible 1000–4000 cycle life.
	p := DefaultSoHParams()
	d := p.DeltaSoH(5, 70)
	cycles := LifetimeCycles(d)
	if cycles < 800 || cycles > 6000 {
		t.Errorf("lifetime = %.0f cycles at ΔSoH %.4f %%, want 800–6000", cycles, d)
	}
}

func TestDeltaSoHFromTrace(t *testing.T) {
	p := DefaultSoHParams()
	flat := []float64{70, 70, 70, 70}
	ripple := []float64{60, 80, 60, 80}
	dFlat, err := p.DeltaSoHFromTrace(flat)
	if err != nil {
		t.Fatal(err)
	}
	dRipple, err := p.DeltaSoHFromTrace(ripple)
	if err != nil {
		t.Fatal(err)
	}
	if dRipple <= dFlat {
		t.Errorf("rippled SoC (%v) must degrade more than flat (%v)", dRipple, dFlat)
	}
	if _, err := p.DeltaSoHFromTrace([]float64{1}); err == nil {
		t.Error("short trace accepted")
	}
}

func TestSoHParamsValidation(t *testing.T) {
	cases := []func(*SoHParams){
		func(p *SoHParams) { p.A1 = 0 },
		func(p *SoHParams) { p.A2 = -1 },
		func(p *SoHParams) { p.A3 = 0 },
		func(p *SoHParams) { p.Alpha = 0 },
		func(p *SoHParams) { p.Beta = -0.1 },
		func(p *SoHParams) { p.ChargeDevOffset = -1 },
	}
	for i, mutate := range cases {
		p := DefaultSoHParams()
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestLifetimeCycles(t *testing.T) {
	if got := LifetimeCycles(0.01); math.Abs(got-2000) > 1e-9 {
		t.Errorf("LifetimeCycles(0.01) = %v, want 2000", got)
	}
	if !math.IsInf(LifetimeCycles(0), 1) {
		t.Error("zero degradation should give infinite life")
	}
}

func TestProjectLifetimeCompounds(t *testing.T) {
	p := DefaultSoHParams()
	proj, err := ProjectLifetime(p, 5, 70)
	if err != nil {
		t.Fatal(err)
	}
	// The compounding projection must be strictly shorter than the
	// constant-rate estimate, but in the same order of magnitude.
	if float64(proj.CyclesToEOL) >= proj.NaiveCycles {
		t.Errorf("compounding (%d) not shorter than naive (%.0f)", proj.CyclesToEOL, proj.NaiveCycles)
	}
	if float64(proj.CyclesToEOL) < proj.NaiveCycles/3 {
		t.Errorf("compounding (%d) implausibly far below naive (%.0f)", proj.CyclesToEOL, proj.NaiveCycles)
	}
	// Stops at the EOL threshold.
	if proj.FinalSoHPct > 100-EndOfLifeFadePercent+0.1 {
		t.Errorf("stopped above EOL: %v", proj.FinalSoHPct)
	}
	// The curve is monotone decreasing from 100.
	if proj.SoHCurve[0] != 100 {
		t.Errorf("curve starts at %v", proj.SoHCurve[0])
	}
	for i := 1; i < len(proj.SoHCurve); i++ {
		if proj.SoHCurve[i] >= proj.SoHCurve[i-1] {
			t.Fatalf("SoH curve not decreasing at %d", i)
		}
	}
}

func TestProjectLifetimeGentlerCycleLastsLonger(t *testing.T) {
	p := DefaultSoHParams()
	gentle, err := ProjectLifetime(p, 3, 60)
	if err != nil {
		t.Fatal(err)
	}
	harsh, err := ProjectLifetime(p, 7, 85)
	if err != nil {
		t.Fatal(err)
	}
	if gentle.CyclesToEOL <= harsh.CyclesToEOL {
		t.Errorf("gentle cycle (%d) should outlast harsh (%d)", gentle.CyclesToEOL, harsh.CyclesToEOL)
	}
}

func TestProjectLifetimeValidation(t *testing.T) {
	p := DefaultSoHParams()
	if _, err := ProjectLifetime(p, 0, 70); err == nil {
		t.Error("dev0 = 0 accepted")
	}
	if _, err := ProjectLifetime(p, 5, 120); err == nil {
		t.Error("avg0 > 100 accepted")
	}
	bad := p
	bad.Alpha = 0
	if _, err := ProjectLifetime(bad, 5, 70); err == nil {
		t.Error("invalid SoH params accepted")
	}
}
