package battery

import (
	"math"
	"testing"
)

func TestThermalParamsValidate(t *testing.T) {
	p := LeafThermal()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*ThermalParams){
		func(p *ThermalParams) { p.MassKg = 0 },
		func(p *ThermalParams) { p.CpJKgK = -1 },
		func(p *ThermalParams) { p.InternalResistanceOhm = -0.1 },
		func(p *ThermalParams) { p.CoolingUAWK = -1 },
	}
	for i, mutate := range cases {
		q := LeafThermal()
		mutate(&q)
		if q.Validate() == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
	if _, err := NewThermalState(ThermalParams{}, 25); err == nil {
		t.Error("zero params accepted")
	}
}

func TestThermalHeatingUnderLoad(t *testing.T) {
	s, err := NewThermalState(LeafThermal(), 25)
	if err != nil {
		t.Fatal(err)
	}
	// Sustained 100 A (36 kW at 360 V) heats the pack.
	for i := 0; i < 600; i++ {
		s.Step(100, 1)
	}
	if s.TempC <= 25 {
		t.Errorf("pack did not heat under load: %v", s.TempC)
	}
	// Joule heating at 100 A: I²R = 900 W against UA·ΔT; equilibrium at
	// ΔT = 900/35 ≈ 25.7 K. Ten minutes gets partway there.
	if s.TempC > 51 {
		t.Errorf("pack heated beyond equilibrium: %v", s.TempC)
	}
}

func TestThermalCoolingAtRest(t *testing.T) {
	s, err := NewThermalState(LeafThermal(), 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3600; i++ {
		s.Step(0, 1)
	}
	// Relaxes toward the 25 °C sink.
	if s.TempC >= 40 || s.TempC < 25 {
		t.Errorf("pack at rest: %v, want between sink and start", s.TempC)
	}
}

func TestThermalEquilibrium(t *testing.T) {
	s, err := NewThermalState(LeafThermal(), 25)
	if err != nil {
		t.Fatal(err)
	}
	// Run to equilibrium at 50 A: ΔT* = I²R/UA = 225/35 ≈ 6.43 K.
	for i := 0; i < 200000; i++ {
		s.Step(50, 1)
	}
	want := 25 + 50*50*0.09/35
	if math.Abs(s.TempC-want) > 0.1 {
		t.Errorf("equilibrium %v, want %v", s.TempC, want)
	}
}

func TestMeanTemperature(t *testing.T) {
	s, err := NewThermalState(LeafThermal(), 30)
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanC() != 30 {
		t.Errorf("mean before steps = %v", s.MeanC())
	}
	for i := 0; i < 100; i++ {
		s.Step(0, 1)
	}
	// Mean lies between the sink and the start.
	if s.MeanC() > 30 || s.MeanC() < 25 {
		t.Errorf("mean = %v", s.MeanC())
	}
}

func TestThermalFactor(t *testing.T) {
	// Unity at the reference temperature.
	if f := ThermalFactor(ArrheniusRefC); math.Abs(f-1) > 1e-12 {
		t.Errorf("factor at reference = %v", f)
	}
	// Monotone increasing in temperature.
	if ThermalFactor(35) <= ThermalFactor(25) || ThermalFactor(45) <= ThermalFactor(35) {
		t.Error("thermal factor not increasing")
	}
	// Roughly doubles per ~13 °C near room temperature.
	ratio := ThermalFactor(38) / ThermalFactor(25)
	if ratio < 1.6 || ratio > 2.6 {
		t.Errorf("13 °C acceleration ratio = %v, want ≈ 2", ratio)
	}
	// Cold slows degradation in this model regime.
	if ThermalFactor(10) >= 1 {
		t.Errorf("cold factor = %v, want < 1", ThermalFactor(10))
	}
}

func TestDeltaSoHAtTemp(t *testing.T) {
	p := DefaultSoHParams()
	base := p.DeltaSoH(5, 70)
	if got := p.DeltaSoHAtTemp(5, 70, ArrheniusRefC); math.Abs(got-base) > 1e-15 {
		t.Errorf("reference-temperature ΔSoH altered: %v vs %v", got, base)
	}
	if p.DeltaSoHAtTemp(5, 70, 45) <= base {
		t.Error("hot pack should degrade faster")
	}
	if p.DeltaSoHAtTemp(5, 70, 10) >= base {
		t.Error("cool pack should degrade slower")
	}
}
