package battery_test

import (
	"fmt"

	"evclimate/internal/battery"
)

// ExampleSoHParams_DeltaSoH evaluates the paper's Eq. 15 degradation
// model for one discharging/charging cycle and converts it into a
// battery lifetime.
func ExampleSoHParams_DeltaSoH() {
	soh := battery.DefaultSoHParams()
	// A gentle cycle and a stressful one (SoC deviation and average in
	// percent, Eqs. 16–17).
	gentle := soh.DeltaSoH(3, 60)
	harsh := soh.DeltaSoH(8, 85)
	fmt.Printf("gentle cycle: %.0f cycles to end of life\n", battery.LifetimeCycles(gentle))
	fmt.Printf("harsh cycle:  %.0f cycles to end of life\n", battery.LifetimeCycles(harsh))
	fmt.Printf("harsh/gentle degradation ratio: %.1f×\n", harsh/gentle)
	// Output:
	// gentle cycle: 2872 cycles to end of life
	// harsh cycle:  161 cycles to end of life
	// harsh/gentle degradation ratio: 17.9×
}

// ExamplePack_Step drains a pack and shows the Peukert rate-capacity
// effect: the same energy at a higher rate costs more state of charge.
func ExamplePack_Step() {
	pack, err := battery.NewPack(battery.LeafPack(), 100)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 600; i++ {
		pack.Step(20e3, 1) // 20 kW for 10 minutes
	}
	fmt.Printf("SoC after 3.3 kWh at 20 kW: %.1f %%\n", pack.SoC())
	// Output:
	// SoC after 3.3 kWh at 20 kW: 84.7 %
}
