package battery

import (
	"errors"
	"math"

	"evclimate/internal/units"
)

// The paper treats battery temperature as constant and folds it into the
// SoH model's a3 coefficient ("Consideration of the battery temperature
// for estimating ΔSoH is out of the scope of the paper", Sec. II-D).
// This file implements the natural extension: a lumped thermal model of
// the pack (Joule heating against a coolant/ambient sink) and an
// Arrhenius acceleration factor that scales ΔSoH with the cycle's mean
// pack temperature. It is optional — nothing in the reproduction path
// depends on it — and is exercised by the thermal-extension tests and the
// lifetime example's sensitivity analysis.

// ThermalParams describes the lumped pack thermal model.
type ThermalParams struct {
	// MassKg is the pack mass.
	MassKg float64
	// CpJKgK is the effective specific heat (≈ 1000 J/(kg·K) for Li-ion
	// modules with housing).
	CpJKgK float64
	// InternalResistanceOhm is the DC resistance used for Joule heating
	// Q = I²·R.
	InternalResistanceOhm float64
	// CoolingUAWK is the conductance to the coolant/ambient sink, W/K.
	CoolingUAWK float64
	// SinkC is the coolant/ambient sink temperature, °C.
	SinkC float64
}

// LeafThermal returns a plausible thermal parameter set for the 24 kWh
// pack (air-cooled, ≈ 294 kg including enclosure). The sink defaults to
// the 25 °C room-temperature calibration point — scenario code should
// prefer LeafThermalAt, which anchors the sink at the actual ambient.
func LeafThermal() ThermalParams {
	return LeafThermalAt(25)
}

// LeafThermalAt returns the Leaf pack thermal parameters with the
// coolant/ambient sink at the given scenario ambient. An air-cooled pack
// rejects heat to outside air, not to a 25 °C laboratory: a cold sweep
// that keeps the default sink silently simulates a warm garage.
func LeafThermalAt(ambientC float64) ThermalParams {
	return ThermalParams{
		MassKg:                294,
		CpJKgK:                1000,
		InternalResistanceOhm: 0.09, // pack-level DC resistance
		CoolingUAWK:           35,
		SinkC:                 ambientC,
	}
}

// Validate reports invalid parameters.
func (p *ThermalParams) Validate() error {
	switch {
	case p.MassKg <= 0 || p.CpJKgK <= 0:
		return errors.New("battery: thermal mass parameters must be positive")
	case p.InternalResistanceOhm < 0:
		return errors.New("battery: internal resistance must be nonnegative")
	case p.CoolingUAWK < 0:
		return errors.New("battery: cooling conductance must be nonnegative")
	}
	return nil
}

// ThermalState tracks the pack temperature during a drive.
type ThermalState struct {
	p ThermalParams
	// TempC is the current lumped pack temperature.
	TempC float64
	// sinkC is the live sink temperature. It starts at the parameter
	// value and follows SetSink as the environment changes — mutable
	// state, so it rides through Snapshot/Restore rather than being
	// frozen into the parameters.
	sinkC float64
	// heatJ and time accumulate mean-temperature statistics.
	tempTimeIntegral float64
	elapsedS         float64
}

// NewThermalState starts the pack at initialC.
func NewThermalState(p ThermalParams, initialC float64) (*ThermalState, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &ThermalState{p: p, TempC: initialC, sinkC: p.SinkC}, nil
}

// SetSink retargets the coolant/ambient sink — the per-scenario (or
// per-step, for time-varying weather) ambient threading that keeps a
// cold sweep from silently rejecting heat into a 25 °C laboratory.
func (s *ThermalState) SetSink(ambientC float64) { s.sinkC = ambientC }

// SinkC returns the live sink temperature.
func (s *ThermalState) SinkC() float64 { return s.sinkC }

// Step advances the pack temperature by dt seconds under pack current
// currentA (sign irrelevant: Joule heating is I²R) and returns the new
// temperature.
func (s *ThermalState) Step(currentA, dt float64) float64 {
	q := currentA*currentA*s.p.InternalResistanceOhm - s.p.CoolingUAWK*(s.TempC-s.sinkC)
	s.TempC += q * dt / (s.p.MassKg * s.p.CpJKgK)
	s.tempTimeIntegral += s.TempC * dt
	s.elapsedS += dt
	return s.TempC
}

// ThermalSnapshot is the serializable mutable state of a ThermalState:
// everything Step touches. Parameters are not part of it — a snapshot is
// restored into a state built from the same ThermalParams.
type ThermalSnapshot struct {
	TempC            float64 `json:"temp_c"`
	SinkC            float64 `json:"sink_c"`
	TempTimeIntegral float64 `json:"temp_time_integral"`
	ElapsedS         float64 `json:"elapsed_s"`
}

// Snapshot captures the thermal state for checkpointing, including the
// live sink temperature (SetSink retargets are mutable state).
func (s *ThermalState) Snapshot() ThermalSnapshot {
	return ThermalSnapshot{TempC: s.TempC, SinkC: s.sinkC, TempTimeIntegral: s.tempTimeIntegral, ElapsedS: s.elapsedS}
}

// Restore replaces the thermal state with a snapshot taken from a state
// with the same parameters; Step then continues bit-for-bit.
func (s *ThermalState) Restore(sn ThermalSnapshot) {
	s.TempC = sn.TempC
	s.sinkC = sn.SinkC
	s.tempTimeIntegral = sn.TempTimeIntegral
	s.elapsedS = sn.ElapsedS
}

// MeanC returns the time-averaged pack temperature so far (the initial
// temperature if no steps have been taken).
func (s *ThermalState) MeanC() float64 {
	if s.elapsedS == 0 {
		return s.TempC
	}
	return s.tempTimeIntegral / s.elapsedS
}

// ArrheniusRefC is the reference temperature at which the thermal factor
// is 1 — the constant temperature the paper's calibration assumes.
const ArrheniusRefC = 25.0

// ArrheniusActivationK is Ea/R for Li-ion capacity fade (≈ 4 500 K,
// i.e. fade roughly doubles per ~13 °C near room temperature).
const ArrheniusActivationK = 4500.0

// ThermalFactor returns the multiplicative acceleration of ΔSoH at pack
// temperature tempC relative to the 25 °C reference.
func ThermalFactor(tempC float64) float64 {
	tRef := units.CToK(ArrheniusRefC)
	t := units.CToK(tempC)
	if t <= 0 {
		return math.Inf(1)
	}
	return math.Exp(ArrheniusActivationK * (1/tRef - 1/t))
}

// DeltaSoHAtTemp evaluates Eq. 15 and scales it by the Arrhenius thermal
// factor for the given mean pack temperature — the extension of the
// paper's constant-temperature assumption.
func (p *SoHParams) DeltaSoHAtTemp(socDev, socAvg, meanPackC float64) float64 {
	return p.DeltaSoH(socDev, socAvg) * ThermalFactor(meanPackC)
}
