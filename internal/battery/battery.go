// Package battery implements the lithium-ion battery model of paper
// Sec. II-D: Peukert rate-capacity SoC accounting (Eqs. 13–14) and the
// SoH (State-of-Health) degradation model driven by SoC deviation and SoC
// average over a discharging/charging cycle (Eqs. 15–17, after Millner
// [6]). SoC and SoH are expressed in percent throughout, as in the paper.
package battery

import (
	"errors"
	"fmt"
	"math"

	"evclimate/internal/units"
)

// Params defines a battery pack.
type Params struct {
	// NominalCapacityAh is C_n, measured at the nominal current.
	NominalCapacityAh float64
	// NominalCurrentA is I_n, the manufacturer's rated current.
	NominalCurrentA float64
	// NominalVoltageV is the pack voltage used to convert power to
	// current.
	NominalVoltageV float64
	// PeukertConst is p_c in Eq. 14 (≈ 1.05–1.2 for Li-ion).
	PeukertConst float64
	// ChargeEfficiency scales current during charging (regeneration);
	// the rate-capacity effect applies to discharge only.
	ChargeEfficiency float64
}

// LeafPack returns the 24 kWh Nissan Leaf pack: 360 V nominal, 66.2 Ah.
func LeafPack() Params {
	return Params{
		NominalCapacityAh: 66.2,
		NominalCurrentA:   22, // C/3 rating
		NominalVoltageV:   360,
		PeukertConst:      1.1,
		ChargeEfficiency:  0.95,
	}
}

// Validate reports invalid parameters.
func (p *Params) Validate() error {
	switch {
	case p.NominalCapacityAh <= 0:
		return errors.New("battery: nominal capacity must be positive")
	case p.NominalCurrentA <= 0:
		return errors.New("battery: nominal current must be positive")
	case p.NominalVoltageV <= 0:
		return errors.New("battery: nominal voltage must be positive")
	case p.PeukertConst < 1:
		return fmt.Errorf("battery: Peukert constant %v must be ≥ 1", p.PeukertConst)
	case p.ChargeEfficiency <= 0 || p.ChargeEfficiency > 1:
		return errors.New("battery: charge efficiency must be in (0, 1]")
	}
	return nil
}

// EnergyKWh returns the nominal pack energy.
func (p Params) EnergyKWh() float64 {
	return p.NominalCapacityAh * p.NominalVoltageV / 1000
}

// Pack tracks the SoC of one battery pack during a drive.
type Pack struct {
	p   Params
	soc float64 // percent
}

// NewPack creates a pack at the given initial SoC (percent).
func NewPack(p Params, initialSoC float64) (*Pack, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if initialSoC < 0 || initialSoC > 100 {
		return nil, fmt.Errorf("battery: initial SoC %v outside [0, 100]", initialSoC)
	}
	return &Pack{p: p, soc: initialSoC}, nil
}

// Params returns the pack parameters.
func (pk *Pack) Params() Params { return pk.p }

// SoC returns the state of charge in percent.
func (pk *Pack) SoC() float64 { return pk.soc }

// SetSoC overwrites the state of charge (percent) — the checkpoint/restore
// path. Normal operation evolves SoC through Step only.
func (pk *Pack) SetSoC(soc float64) error {
	if soc < 0 || soc > 100 {
		return fmt.Errorf("battery: SoC %v outside [0, 100]", soc)
	}
	pk.soc = soc
	return nil
}

// Current converts an electrical power draw (W, positive = discharge)
// into pack current (A).
func (pk *Pack) Current(powerW float64) float64 {
	return powerW / pk.p.NominalVoltageV
}

// EffectiveCurrent applies Peukert's law (Eq. 14):
// I_eff = I·(I/I_n)^(p_c − 1) for discharge. Charging current passes
// through scaled by the charge efficiency.
func (pk *Pack) EffectiveCurrent(i float64) float64 {
	if i <= 0 {
		return i * pk.p.ChargeEfficiency
	}
	return i * math.Pow(i/pk.p.NominalCurrentA, pk.p.PeukertConst-1)
}

// Step drains (or charges) the pack with electrical power powerW for dt
// seconds, updating SoC per Eq. 13, and returns the new SoC. SoC is
// clamped to [0, 100]; hitting either rail is the BMS's concern.
func (pk *Pack) Step(powerW, dt float64) float64 {
	ieff := pk.EffectiveCurrent(pk.Current(powerW))
	pk.soc -= 100 * ieff * dt / (units.SecondsPerHour * pk.p.NominalCapacityAh)
	pk.soc = units.Clamp(pk.soc, 0, 100)
	return pk.soc
}

// Empty reports whether the pack is fully discharged.
func (pk *Pack) Empty() bool { return pk.soc <= 0 }

// RemainingKWh returns the energy left at nominal voltage.
func (pk *Pack) RemainingKWh() float64 {
	return pk.p.EnergyKWh() * pk.soc / 100
}
