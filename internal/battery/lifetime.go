package battery

import (
	"errors"
	"math"
)

// LifetimeCycles (soh.go) assumes every cycle costs the same ΔSoH. In
// reality capacity fade compounds: as the pack fades to SoH·C_n, the same
// daily trip drains a larger SoC fraction, raising SoCdev and hence the
// next cycle's degradation (Eq. 15 is exponential in SoCdev). This file
// projects the full feedback loop day by day — the long-horizon view the
// paper's per-cycle metric implies but does not compute.

// Projection is the day-by-day SoH trajectory of a pack under a repeated
// daily cycle.
type Projection struct {
	// CyclesToEOL is the number of cycles until the 80 % threshold.
	CyclesToEOL int
	// FinalSoHPct is the SoH when the projection stopped.
	FinalSoHPct float64
	// SoHCurve samples the SoH (percent) every SampleEvery cycles,
	// starting at cycle 0.
	SoHCurve []float64
	// SampleEvery is the curve's sampling stride in cycles.
	SampleEvery int
	// NaiveCycles is the constant-rate estimate (LifetimeCycles) for
	// comparison; the compounding projection is always shorter.
	NaiveCycles float64
}

// ProjectLifetime iterates the degradation feedback: each cycle's SoC
// deviation scales inversely with the current SoH (the same energy spans
// a larger fraction of the faded capacity), the cycle's ΔSoH follows
// Eq. 15, and the fade accumulates until the 80 % end-of-life threshold.
// dev0 and avg0 are the cycle statistics measured at full health.
func ProjectLifetime(p SoHParams, dev0, avg0 float64) (*Projection, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if dev0 <= 0 || avg0 < 0 || avg0 > 100 {
		return nil, errors.New("battery: projection needs dev0 > 0 and avg0 in [0, 100]")
	}
	const maxCycles = 200000
	proj := &Projection{SampleEvery: 25, NaiveCycles: LifetimeCycles(p.DeltaSoH(dev0, avg0))}
	soh := 100.0
	for cycle := 0; cycle < maxCycles; cycle++ {
		if cycle%proj.SampleEvery == 0 {
			proj.SoHCurve = append(proj.SoHCurve, soh)
		}
		if soh <= 100-EndOfLifeFadePercent {
			proj.CyclesToEOL = cycle
			proj.FinalSoHPct = soh
			return proj, nil
		}
		// The same daily energy spans a larger SoC swing on the faded
		// capacity (Eq. 13's denominator shrinks with SoH).
		dev := dev0 * 100 / soh
		soh -= p.DeltaSoH(dev, avg0)
		if math.IsNaN(soh) || soh <= 0 {
			break
		}
	}
	proj.CyclesToEOL = maxCycles
	proj.FinalSoHPct = soh
	return proj, nil
}
