package battery

import (
	"errors"
	"fmt"
	"math"
)

// SoHParams parameterizes the degradation model of Eq. 15:
//
//	ΔSoH = (a1·e^(α·SoCdev) + a2) · (a3·e^(β·SoCavg))
//
// with SoCdev and SoCavg in percent over one discharging/charging cycle.
// Battery temperature is treated as constant (out of the paper's scope)
// and folded into a3.
type SoHParams struct {
	// A1, A2, A3, Alpha, Beta are the fit parameters of Eq. 15.
	A1, A2, A3, Alpha, Beta float64
	// ChargeDevOffset and ChargeAvgWeight fold the fixed charging part
	// of the cycle into the stress statistics, per the paper's
	// assumption that charging has a fixed pattern modeled as constants:
	// SoCdev_cycle = SoCdev_drive + ChargeDevOffset and
	// SoCavg_cycle = SoCavg_drive (the drive dominates the average
	// weighting when the charge pattern is fixed).
	ChargeDevOffset float64
}

// DefaultSoHParams returns the calibration used in the experiments.
// It reproduces the qualitative Millner [6] behaviour — exponential
// growth of capacity fade with both cycle depth (SoCdev) and mean SoC —
// and is scaled so a typical commute cycle costs ≈ 0.01 % SoH,
// i.e. a ≈ 2000-cycle life to the 80 % end-of-life threshold.
func DefaultSoHParams() SoHParams {
	return SoHParams{
		A1:              2.5e-4,
		A2:              2.5e-4,
		A3:              1.0,
		Alpha:           0.5,
		Beta:            0.02,
		ChargeDevOffset: 1.0,
	}
}

// Validate reports invalid parameters.
func (p *SoHParams) Validate() error {
	switch {
	case p.A1 <= 0 || p.A2 < 0 || p.A3 <= 0:
		return errors.New("battery: SoH amplitudes must be positive (A2 nonnegative)")
	case p.Alpha <= 0 || p.Beta <= 0:
		return errors.New("battery: SoH exponents must be positive")
	case p.ChargeDevOffset < 0:
		return errors.New("battery: charge deviation offset must be nonnegative")
	}
	return nil
}

// CycleStats computes SoCdev and SoCavg (Eqs. 16–17) from a uniformly
// sampled SoC trace (percent).
func CycleStats(socTrace []float64) (dev, avg float64, err error) {
	if len(socTrace) < 2 {
		return 0, 0, fmt.Errorf("battery: SoC trace needs ≥ 2 samples, got %d", len(socTrace))
	}
	var sum float64
	for _, s := range socTrace {
		sum += s
	}
	avg = sum / float64(len(socTrace))
	var varSum float64
	for _, s := range socTrace {
		d := s - avg
		varSum += d * d
	}
	dev = math.Sqrt(varSum / float64(len(socTrace)))
	return dev, avg, nil
}

// DeltaSoH evaluates Eq. 15 for the drive-cycle statistics, folding in
// the fixed charging part, and returns the SoH loss in percent for one
// discharging/charging cycle.
func (p *SoHParams) DeltaSoH(socDev, socAvg float64) float64 {
	dev := socDev + p.ChargeDevOffset
	return (p.A1*math.Exp(p.Alpha*dev) + p.A2) * (p.A3 * math.Exp(p.Beta*socAvg))
}

// DeltaSoHFromTrace computes cycle statistics from a SoC trace and
// evaluates the degradation model.
func (p *SoHParams) DeltaSoHFromTrace(socTrace []float64) (float64, error) {
	dev, avg, err := CycleStats(socTrace)
	if err != nil {
		return 0, err
	}
	return p.DeltaSoH(dev, avg), nil
}

// EndOfLifeFadePercent is the capacity fade at which the paper considers
// the battery useless (Sec. I / II-D).
const EndOfLifeFadePercent = 20.0

// LifetimeCycles converts a per-cycle SoH loss (percent) into the number
// of discharging/charging cycles until end of life.
func LifetimeCycles(deltaSoHPercent float64) float64 {
	if deltaSoHPercent <= 0 {
		return math.Inf(1)
	}
	return EndOfLifeFadePercent / deltaSoHPercent
}
