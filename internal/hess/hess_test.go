package hess

import (
	"math"
	"testing"

	"evclimate/internal/battery"
	"evclimate/internal/drivecycle"
	"evclimate/internal/powertrain"
)

func TestUltracapParamsValidate(t *testing.T) {
	p := DefaultUltracap()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*UltracapParams){
		func(p *UltracapParams) { p.CapacitanceF = 0 },
		func(p *UltracapParams) { p.MinVoltageV = p.MaxVoltageV },
		func(p *UltracapParams) { p.MinVoltageV = -1 },
		func(p *UltracapParams) { p.ESROhm = -1 },
		func(p *UltracapParams) { p.MaxCurrentA = 0 },
	}
	for i, mutate := range cases {
		q := DefaultUltracap()
		mutate(&q)
		if q.Validate() == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
	if _, err := NewUltracap(DefaultUltracap(), 1.5); err == nil {
		t.Error("SoC > 1 accepted")
	}
}

func TestUsableEnergy(t *testing.T) {
	p := DefaultUltracap()
	// ½·63·(125² − 62.5²) = 369 kJ.
	want := 0.5 * 63 * (125*125 - 62.5*62.5)
	if got := p.UsableEnergyJ(); math.Abs(got-want) > 1 {
		t.Errorf("usable energy = %v, want %v", got, want)
	}
}

func TestUltracapSoCVoltageRoundTrip(t *testing.T) {
	for _, soc := range []float64{0, 0.25, 0.5, 1} {
		uc, err := NewUltracap(DefaultUltracap(), soc)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(uc.SoCFrac()-soc) > 1e-9 {
			t.Errorf("SoC %v round-tripped to %v", soc, uc.SoCFrac())
		}
		if uc.Voltage() < 62.5-1e-9 || uc.Voltage() > 125+1e-9 {
			t.Errorf("voltage %v outside window", uc.Voltage())
		}
	}
}

func TestUltracapEnergyBookkeeping(t *testing.T) {
	uc, err := NewUltracap(DefaultUltracap(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Discharge 10 kW for 10 s = 100 kJ plus ESR losses.
	var delivered float64
	for i := 0; i < 10; i++ {
		delivered += uc.Step(10e3, 1) * 1
	}
	if math.Abs(delivered-100e3) > 1e-6 {
		t.Fatalf("delivered %v J, want 100 kJ", delivered)
	}
	// Remaining usable energy ≈ 369 kJ − 100 kJ − losses.
	remaining := uc.SoCFrac() * DefaultUltracap().UsableEnergyJ()
	if remaining > 369e3-100e3 {
		t.Errorf("no ESR loss accounted: remaining %v", remaining)
	}
	if remaining < 369e3-100e3-5e3 {
		t.Errorf("implausible ESR loss: remaining %v", remaining)
	}
}

func TestUltracapFloorsAndCeilings(t *testing.T) {
	uc, err := NewUltracap(DefaultUltracap(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Empty bank cannot discharge.
	if got := uc.Step(10e3, 1); got != 0 {
		t.Errorf("empty bank discharged %v W", got)
	}
	// Charge to full, then refuse more.
	for i := 0; i < 10000; i++ {
		uc.Step(-50e3, 1)
	}
	if uc.SoCFrac() < 0.999 {
		t.Fatalf("bank did not fill: %v", uc.SoCFrac())
	}
	if got := uc.Step(-10e3, 1); got != 0 {
		t.Errorf("full bank absorbed %v W", got)
	}
}

func TestUltracapCurrentLimit(t *testing.T) {
	uc, err := NewUltracap(DefaultUltracap(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// At 125 V and 750 A the limit is 93.75 kW.
	got := uc.Step(500e3, 0.1)
	if got > 125*750+1 {
		t.Errorf("current limit violated: %v W", got)
	}
	if got <= 0 {
		t.Error("no power delivered under the limit")
	}
}

func TestThresholdSplitShavesPeaks(t *testing.T) {
	sys, err := NewSystem(DefaultUltracap(), 0.8, &ThresholdSplit{ThresholdW: 20e3})
	if err != nil {
		t.Fatal(err)
	}
	// A 50 kW peak: battery should see ≈ 20 kW.
	batt := sys.Step(50e3, 1)
	if batt > 21e3 {
		t.Errorf("battery saw %v W during peak, want ≈ 20 kW", batt)
	}
	// Regen goes to the cap.
	batt = sys.Step(-30e3, 1)
	if batt < -1e3 {
		t.Errorf("battery saw %v W during regen, want ≈ 0", batt)
	}
	dis, chg := sys.UltracapThroughputKWh()
	if dis <= 0 || chg <= 0 {
		t.Errorf("throughput accounting: %v, %v", dis, chg)
	}
}

func TestThresholdSplitRechargesWhenLow(t *testing.T) {
	sys, err := NewSystem(DefaultUltracap(), 0.1, &ThresholdSplit{ThresholdW: 20e3})
	if err != nil {
		t.Fatal(err)
	}
	// Light load, low cap: battery carries the load plus a recharge.
	batt := sys.Step(5e3, 1)
	if batt <= 5e3 {
		t.Errorf("battery %v W should exceed the 5 kW load while recharging the cap", batt)
	}
}

func TestFilterSplitSmoothsBatteryPower(t *testing.T) {
	sys, err := NewSystem(DefaultUltracap(), 0.5, &FilterSplit{TauS: 15})
	if err != nil {
		t.Fatal(err)
	}
	// A pulse train: 30 kW for 10 s, 0 for 10 s, repeated.
	var raw, smoothed []float64
	for i := 0; i < 200; i++ {
		var req float64
		if (i/10)%2 == 0 {
			req = 30e3
		}
		raw = append(raw, req)
		smoothed = append(smoothed, sys.Step(req, 1))
	}
	if variance(smoothed) >= variance(raw)*0.8 {
		t.Errorf("filter split did not smooth: var %v vs raw %v", variance(smoothed), variance(raw))
	}
}

func variance(xs []float64) float64 {
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	return v / float64(len(xs))
}

// TestHESSReducesBatteryStressOnUS06 is the integration check: routing
// the aggressive US06 traction profile through a HESS must cut the
// battery's peak power and smooth its power profile — the hardware
// counterpart of the paper's software peak shaving. (The bank's 0.24 kWh
// cannot flatten the cycle's multi-kWh discharge trend, so SoC deviation
// barely moves; the stress relief shows in the power domain and in the
// final SoC via the Peukert rate-capacity effect.)
func TestHESSReducesBatteryStressOnUS06(t *testing.T) {
	pt, err := powertrain.New(powertrain.NissanLeaf())
	if err != nil {
		t.Fatal(err)
	}
	profile := drivecycle.US06().Profile(1)
	powers := pt.PowerProfile(profile)

	type outcome struct {
		varW, finalSoC float64
		overThreshold  int // samples where the battery sees > 40 kW
	}
	run := func(split Splitter) outcome {
		pack, err := battery.NewPack(battery.LeafPack(), 90)
		if err != nil {
			t.Fatal(err)
		}
		var sys *System
		if split != nil {
			sys, err = NewSystem(DefaultUltracap(), 0.7, split)
			if err != nil {
				t.Fatal(err)
			}
		}
		var o outcome
		var battPowers []float64
		for _, p := range powers {
			w := p + 300 // accessories
			if sys != nil {
				w = sys.Step(w, 1)
			}
			if w > 40e3 {
				o.overThreshold++
			}
			battPowers = append(battPowers, w)
			pack.Step(w, 1)
		}
		o.varW = variance(battPowers)
		o.finalSoC = pack.SoC()
		return o
	}

	alone := run(nil)
	filt := run(&FilterSplit{TauS: 25})
	thresh := run(&ThresholdSplit{ThresholdW: 40e3})

	// The low-pass split halves the battery power variance.
	if filt.varW >= alone.varW*0.7 {
		t.Errorf("filter split did not smooth battery power: var %v vs %v", filt.varW, alone.varW)
	}
	// The threshold split eliminates most above-threshold exposure.
	if thresh.overThreshold >= alone.overThreshold/2 {
		t.Errorf("threshold split left %d/%d peak samples", thresh.overThreshold, alone.overThreshold)
	}
	// Gentler currents → less Peukert loss: the threshold split ends with
	// MORE charge despite ESR losses; the filter split within a small
	// margin.
	if thresh.finalSoC <= alone.finalSoC {
		t.Errorf("threshold split did not save charge: %v vs %v", thresh.finalSoC, alone.finalSoC)
	}
	if filt.finalSoC < alone.finalSoC-0.2 {
		t.Errorf("filter split cost too much SoC: %v vs %v", filt.finalSoC, alone.finalSoC)
	}
}
